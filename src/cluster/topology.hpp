// Physical topology of the prototype machine (Section II-A).
//
//   2 racks x 4 chassis x 9 blades = 72 blades; 15 SoC nodes per blade
//   = 1080 nodes.  One full chassis (9 blades) was dedicated to another
//   study, 9 nodes served as login nodes, and a handful had permanent
//   hardware failures, leaving 923 nodes continuously monitored.
//
// Nodes are addressed as "<blade>-<soc>" (e.g. the paper's nodes 02-04,
// 04-05 and 58-02), with blade numbering restricted to the 63 blades that
// took part in the study, matching the layout of Figs 1-3.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace unp::cluster {

constexpr int kRacks = 2;
constexpr int kChassisPerRack = 4;
constexpr int kBladesPerChassis = 9;
constexpr int kTotalBlades = kRacks * kChassisPerRack * kBladesPerChassis;  // 72
constexpr int kSocsPerBlade = 15;
constexpr int kTotalNodes = kTotalBlades * kSocsPerBlade;  // 1080

/// Blades participating in the memory study (one chassis excluded).
constexpr int kStudyBlades = kTotalBlades - kBladesPerChassis;  // 63
constexpr int kStudyNodeSlots = kStudyBlades * kSocsPerBlade;   // 945

/// The SoC slot with rack-position heat problems (turned off mid-study).
constexpr int kOverheatingSoc = 12;

/// Memory per node: 4 GB LPDDR, of which at most 3 GB is scannable.
constexpr std::uint64_t kNodeMemoryBytes = 4ULL << 30;
constexpr std::uint64_t kScannableBytes = 3ULL << 30;

/// Identity of a node within the study grid.
struct NodeId {
  int blade = 0;  ///< 0 .. kStudyBlades-1
  int soc = 0;    ///< 0 .. kSocsPerBlade-1

  friend bool operator==(const NodeId&, const NodeId&) = default;
  friend auto operator<=>(const NodeId&, const NodeId&) = default;
};

/// Dense index of a node in [0, kStudyNodeSlots).
[[nodiscard]] constexpr int node_index(NodeId id) noexcept {
  return id.blade * kSocsPerBlade + id.soc;
}
[[nodiscard]] constexpr NodeId node_from_index(int index) noexcept {
  return NodeId{index / kSocsPerBlade, index % kSocsPerBlade};
}

/// "BB-SS" rendering used in the paper and in the telemetry host field.
[[nodiscard]] std::string node_name(NodeId id);

/// Parse "BB-SS".  Throws ContractViolation on malformed input.
[[nodiscard]] NodeId parse_node_name(const std::string& name);

/// Role of a node slot within the study.
enum class NodeRole : std::uint8_t {
  kCompute,      ///< monitored by the scanner when idle
  kLogin,        ///< login node: never scanned
  kDeadOnArrival ///< permanent hardware failure: never powered/scanned
};

[[nodiscard]] const char* to_string(NodeRole role) noexcept;

/// Static description of the study population.
class Topology {
 public:
  struct Config {
    /// Number of login nodes (SoC 0 of the first N blades).
    int login_nodes = 9;
    /// Nodes that never worked; drawn deterministically from the seed.
    int dead_nodes = 13;
    std::uint64_t seed = 42;
  };

  Topology() : Topology(Config{}) {}
  explicit Topology(const Config& config);

  [[nodiscard]] NodeRole role(NodeId id) const;
  [[nodiscard]] bool is_monitored(NodeId id) const {
    return role(id) == NodeRole::kCompute;
  }
  /// True for slots in the overheating SoC column.
  [[nodiscard]] static bool is_overheating_slot(NodeId id) noexcept {
    return id.soc == kOverheatingSoc;
  }

  /// All monitored (compute) nodes, ascending by index.
  [[nodiscard]] const std::vector<NodeId>& monitored_nodes() const noexcept {
    return monitored_;
  }
  [[nodiscard]] int monitored_count() const noexcept {
    return static_cast<int>(monitored_.size());
  }

  /// Chassis index (0..6 within the study; used for locality analyses).
  [[nodiscard]] static int chassis_of(NodeId id) noexcept {
    return id.blade / kBladesPerChassis;
  }
  /// Rack index (0 or 1).  The excluded chassis is the last one of rack 1,
  /// so study blades 0..62 keep their physical position.
  [[nodiscard]] static int rack_of(NodeId id) noexcept {
    return id.blade / (kChassisPerRack * kBladesPerChassis);
  }

  [[nodiscard]] const Config& config() const noexcept { return config_; }

 private:
  Config config_;
  std::vector<NodeRole> roles_;  ///< indexed by node_index
  std::vector<NodeId> monitored_;
};

}  // namespace unp::cluster
