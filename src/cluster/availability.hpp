// Per-node power/availability timelines over the campaign.
//
// Fig 1's structure comes from administrative outages, not from faults:
//   - the overheating SoC-12 column was powered off for long stretches
//     after the admins decided to shut it down (early July 2015 here);
//   - blade 33 was shut down mid-study for hardware issues;
//   - individual nodes accumulate occasional maintenance gaps.
//
// An AvailabilityTimeline is an ordered set of disjoint half-open intervals
// [start, end) during which the node is powered and schedulable.  Scan
// sessions (sched/) can only exist inside these intervals.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "cluster/topology.hpp"
#include "common/civil_time.hpp"

namespace unp::cluster {

/// Half-open time interval [start, end).
struct Interval {
  TimePoint start = 0;
  TimePoint end = 0;

  [[nodiscard]] std::int64_t seconds() const noexcept { return end - start; }
  [[nodiscard]] bool contains(TimePoint t) const noexcept {
    return t >= start && t < end;
  }
  friend bool operator==(const Interval&, const Interval&) = default;
};

/// Ordered, disjoint availability intervals for one node.
class AvailabilityTimeline {
 public:
  AvailabilityTimeline() = default;
  /// Intervals must be non-empty, sorted, and non-overlapping.
  explicit AvailabilityTimeline(std::vector<Interval> intervals);

  [[nodiscard]] const std::vector<Interval>& intervals() const noexcept {
    return intervals_;
  }
  [[nodiscard]] bool is_available(TimePoint t) const noexcept;
  [[nodiscard]] std::int64_t total_seconds() const noexcept;
  [[nodiscard]] double total_hours() const noexcept {
    return static_cast<double>(total_seconds()) / kSecondsPerHour;
  }

  /// Remove [cut.start, cut.end) from the timeline.
  void subtract(const Interval& cut);

  /// Intersect with a window, returning clipped intervals.
  [[nodiscard]] std::vector<Interval> clip(const Interval& window) const;

 private:
  std::vector<Interval> intervals_;
};

/// Builds the availability timelines of every study node.
class AvailabilityModel {
 public:
  struct Config {
    CampaignWindow window{};
    /// Date the admins shut down the overheating SoC-12 column.
    TimePoint overheat_shutdown = from_civil_utc({2015, 7, 3, 9, 0, 0});
    /// Blade powered off mid-study for hardware issues.
    int failed_blade = 33;
    TimePoint failed_blade_shutdown = from_civil_utc({2015, 5, 18, 14, 0, 0});
    /// Mean number of maintenance gaps per node over the campaign, and the
    /// gap-length envelope (uniform hours).
    double maintenance_gaps_mean = 3.0;
    double maintenance_gap_min_h = 6.0;
    double maintenance_gap_max_h = 120.0;
    /// Administrative outages of specific nodes (e.g. the degrading node's
    /// unmonitored stretches, the pathological node's removal from the
    /// scheduler pool).
    std::vector<std::pair<NodeId, Interval>> extra_outages;
    std::uint64_t seed = 42;
  };

  AvailabilityModel() : AvailabilityModel(Config{}) {}
  explicit AvailabilityModel(const Config& config) : config_(config) {}

  /// Timeline for one monitored node.  Deterministic per (seed, node).
  [[nodiscard]] AvailabilityTimeline build(NodeId id) const;

  [[nodiscard]] const Config& config() const noexcept { return config_; }

 private:
  Config config_;
};

}  // namespace unp::cluster
