#include "cluster/topology.hpp"

#include <cstdio>

#include "common/require.hpp"
#include "common/rng.hpp"

namespace unp::cluster {

std::string node_name(NodeId id) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%02d-%02d", id.blade, id.soc);
  return buf;
}

NodeId parse_node_name(const std::string& name) {
  int blade = -1, soc = -1;
  UNP_REQUIRE(std::sscanf(name.c_str(), "%d-%d", &blade, &soc) == 2);
  UNP_REQUIRE(blade >= 0 && blade < kStudyBlades);
  UNP_REQUIRE(soc >= 0 && soc < kSocsPerBlade);
  return NodeId{blade, soc};
}

const char* to_string(NodeRole role) noexcept {
  switch (role) {
    case NodeRole::kCompute: return "compute";
    case NodeRole::kLogin: return "login";
    case NodeRole::kDeadOnArrival: return "dead";
  }
  return "unknown";
}

Topology::Topology(const Config& config) : config_(config) {
  UNP_REQUIRE(config_.login_nodes >= 0 && config_.login_nodes <= kStudyBlades);
  UNP_REQUIRE(config_.dead_nodes >= 0);

  roles_.assign(kStudyNodeSlots, NodeRole::kCompute);

  // Login nodes: the first SoC of each of the first `login_nodes` blades
  // (Fig 1: "the first blades do not perform any error monitoring in the
  // first SoC; ... they are dedicated as login nodes").
  for (int blade = 0; blade < config_.login_nodes; ++blade) {
    roles_[static_cast<std::size_t>(node_index({blade, 0}))] = NodeRole::kLogin;
  }

  // Permanently failed nodes, placed deterministically from the seed among
  // the remaining compute slots.
  RngStream rng(config_.seed, /*stream_id=*/0xDEAD);
  int placed = 0;
  while (placed < config_.dead_nodes) {
    const auto idx = static_cast<std::size_t>(
        rng.uniform_u64(static_cast<std::uint64_t>(kStudyNodeSlots)));
    if (roles_[idx] == NodeRole::kCompute) {
      roles_[idx] = NodeRole::kDeadOnArrival;
      ++placed;
    }
  }

  monitored_.reserve(static_cast<std::size_t>(kStudyNodeSlots));
  for (int i = 0; i < kStudyNodeSlots; ++i) {
    if (roles_[static_cast<std::size_t>(i)] == NodeRole::kCompute) {
      monitored_.push_back(node_from_index(i));
    }
  }
  UNP_ENSURE(static_cast<int>(monitored_.size()) ==
             kStudyNodeSlots - config_.login_nodes - config_.dead_nodes);
}

NodeRole Topology::role(NodeId id) const {
  UNP_REQUIRE(id.blade >= 0 && id.blade < kStudyBlades);
  UNP_REQUIRE(id.soc >= 0 && id.soc < kSocsPerBlade);
  return roles_[static_cast<std::size_t>(node_index(id))];
}

}  // namespace unp::cluster
