#include "cluster/availability.hpp"

#include <algorithm>

#include "common/require.hpp"
#include "common/rng.hpp"

namespace unp::cluster {

AvailabilityTimeline::AvailabilityTimeline(std::vector<Interval> intervals)
    : intervals_(std::move(intervals)) {
  for (std::size_t i = 0; i < intervals_.size(); ++i) {
    UNP_REQUIRE(intervals_[i].end > intervals_[i].start);
    if (i > 0) UNP_REQUIRE(intervals_[i].start >= intervals_[i - 1].end);
  }
}

bool AvailabilityTimeline::is_available(TimePoint t) const noexcept {
  // First interval whose end is beyond t.
  auto it = std::upper_bound(
      intervals_.begin(), intervals_.end(), t,
      [](TimePoint value, const Interval& iv) { return value < iv.end; });
  return it != intervals_.end() && it->contains(t);
}

std::int64_t AvailabilityTimeline::total_seconds() const noexcept {
  std::int64_t total = 0;
  for (const auto& iv : intervals_) total += iv.seconds();
  return total;
}

void AvailabilityTimeline::subtract(const Interval& cut) {
  if (cut.end <= cut.start) return;
  std::vector<Interval> out;
  out.reserve(intervals_.size() + 1);
  for (const auto& iv : intervals_) {
    if (iv.end <= cut.start || iv.start >= cut.end) {
      out.push_back(iv);
      continue;
    }
    if (iv.start < cut.start) out.push_back({iv.start, cut.start});
    if (iv.end > cut.end) out.push_back({cut.end, iv.end});
  }
  intervals_ = std::move(out);
}

std::vector<Interval> AvailabilityTimeline::clip(const Interval& window) const {
  std::vector<Interval> out;
  for (const auto& iv : intervals_) {
    const TimePoint s = std::max(iv.start, window.start);
    const TimePoint e = std::min(iv.end, window.end);
    if (e > s) out.push_back({s, e});
  }
  return out;
}

AvailabilityTimeline AvailabilityModel::build(NodeId id) const {
  const CampaignWindow& w = config_.window;
  AvailabilityTimeline timeline({{w.start, w.end}});

  // Overheating column: powered until the admin shutdown, then off for the
  // remainder of the study except a short re-test window in the autumn.
  if (Topology::is_overheating_slot(id)) {
    const TimePoint retest_start = from_civil_utc({2015, 10, 5, 9, 0, 0});
    const TimePoint retest_end = from_civil_utc({2015, 10, 9, 18, 0, 0});
    timeline.subtract({config_.overheat_shutdown, retest_start});
    timeline.subtract({retest_end, w.end});
  }

  // Blade-wide hardware shutdown.
  if (id.blade == config_.failed_blade) {
    timeline.subtract({config_.failed_blade_shutdown, w.end});
  }

  // Administrative outages targeted at this node.
  for (const auto& [outage_node, outage] : config_.extra_outages) {
    if (outage_node == id) timeline.subtract(outage);
  }

  // Per-node maintenance gaps: Poisson count, uniform placement/length.
  RngStream rng(config_.seed, /*stream_id=*/0xA7A1,
                static_cast<std::uint64_t>(node_index(id)));
  const std::uint64_t gaps = rng.poisson(config_.maintenance_gaps_mean);
  for (std::uint64_t g = 0; g < gaps; ++g) {
    const double len_h =
        rng.uniform(config_.maintenance_gap_min_h, config_.maintenance_gap_max_h);
    const auto len_s = static_cast<std::int64_t>(len_h * kSecondsPerHour);
    const auto span = static_cast<std::uint64_t>(w.duration_seconds());
    const TimePoint start =
        w.start + static_cast<TimePoint>(rng.uniform_u64(span));
    timeline.subtract({start, start + len_s});
  }

  return timeline;
}

}  // namespace unp::cluster
