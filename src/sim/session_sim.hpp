// Analytic scan-session simulator.
//
// Running the literal scanner over 3 GB x 923 nodes x 13 months is ~10^17
// word operations; the campaign instead computes, per fault event, exactly
// which ERROR logs the real scanner would have produced:
//
//   - the check of iteration i (at session start + i * pass_period, i >= 1)
//     compares stored values against the value written at iteration i-1;
//   - a transient upset occurring mid-session corrupts the currently stored
//     value; it is reported at the next check iff the corruption is visible
//     under that value, then repaired by the iteration's write;
//   - a stuck fault re-asserts after every write: it is reported at every
//     check whose previous write it corrupts, producing the run-length
//     ERROR streams (alternating pattern: every check, every second check,
//     or never, depending on which phases the stuck value collides with).
//
// Equivalence with the real scanner (MemoryScanner + SimulatedMemoryBackend
// stepped pass-by-pass) is asserted by tests/sim/session_equivalence_test.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "env/temperature.hpp"
#include "faults/event.hpp"
#include "sched/scan_plan.hpp"
#include "telemetry/archive.hpp"

namespace unp::sim {

struct SessionSimConfig {
  /// Temperature sensors came online here; earlier records carry none.
  TimePoint sensors_online = from_civil_utc({2015, 4, 1, 0, 0, 0});
  env::TemperatureModel temperature{};
  /// Counter-pattern approximation for stuck faults: a stuck fault in a
  /// counter session logs once per check (almost every counter value makes
  /// a discharge visible); exact per-check visibility is applied for runs
  /// shorter than this many checks.
  std::uint64_t counter_exact_limit = 4096;
};

/// Reusable per-worker scratch: the event view the simulator sorts and the
/// transient/stuck pointer partitions.  Capacity persists across nodes, so a
/// steady-state campaign worker allocates nothing per node.
struct SessionSimArena {
  std::vector<faults::FaultEvent> events;  ///< owned copy (legacy/by-value path)
  std::vector<const faults::FaultEvent*> ptrs;  ///< the view actually sorted
  std::vector<const faults::FaultEvent*> transients;
  std::vector<const faults::FaultEvent*> stucks;
};

/// Produce the telemetry a node's scanner would log over its whole plan,
/// given the fault events assigned to that node (any order).  `overheating`
/// selects the hot-slot temperature profile.
[[nodiscard]] telemetry::NodeLog simulate_node(
    const SessionSimConfig& config, cluster::NodeId node,
    const sched::ScanPlan& plan, std::vector<faults::FaultEvent> events,
    bool overheating, std::uint64_t seed);

/// Arena form of simulate_node: `arena.events` holds this node's fault
/// events on entry (any order); `out` is cleared and refilled, keeping its
/// capacity.  Identical output to simulate_node.
void simulate_node_into(const SessionSimConfig& config, cluster::NodeId node,
                        const sched::ScanPlan& plan, bool overheating,
                        std::uint64_t seed, SessionSimArena& arena,
                        telemetry::NodeLog& out);

/// Zero-copy form, the campaign hot path: the node's events are the
/// `indices` rows of the shared fleet-truth vector, read in place — no
/// per-node FaultEvent (and inner word-list) copies.  Only pointer scratch
/// in `arena` is touched.  Identical output to simulate_node_into on a copy
/// of the same events in the same order.
void simulate_node_shared_into(const SessionSimConfig& config,
                               cluster::NodeId node,
                               const sched::ScanPlan& plan, bool overheating,
                               std::uint64_t seed,
                               std::span<const faults::FaultEvent> fleet,
                               std::span<const std::uint32_t> indices,
                               SessionSimArena& arena, telemetry::NodeLog& out);

}  // namespace unp::sim
