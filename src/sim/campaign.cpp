#include "sim/campaign.hpp"

#include <algorithm>
#include <memory>

#include "common/require.hpp"
#include "common/thread_pool.hpp"

namespace unp::sim {

double CampaignResult::total_scanned_hours() const noexcept {
  double total = 0.0;
  for (const auto& a : accounting) total += a.scanned_hours;
  return total;
}

double CampaignResult::total_terabyte_hours() const noexcept {
  double total = 0.0;
  for (const auto& a : accounting) total += a.terabyte_hours;
  return total;
}

namespace {

cluster::AvailabilityModel::Config wire_outages(const CampaignConfig& config) {
  cluster::AvailabilityModel::Config avail = config.availability;
  avail.window = config.window;
  if (!config.wire_special_outages) return avail;

  // The degrading node went unmonitored from late November except a short
  // December re-test (Section III-H explains Fig 12's silent stretches).
  const cluster::NodeId degrading = config.faults.degrading.node;
  avail.extra_outages.push_back(
      {degrading,
       {from_civil_utc({2015, 11, 26, 12, 0, 0}),
        from_civil_utc({2015, 12, 12, 9, 0, 0})}});
  avail.extra_outages.push_back(
      {degrading,
       {from_civil_utc({2015, 12, 14, 21, 0, 0}), config.window.end}});

  // The pathological node left the scheduler pool at its removal date.
  avail.extra_outages.push_back(
      {config.faults.pathological.node,
       {config.faults.pathological.removal, config.window.end}});
  return avail;
}

}  // namespace

CampaignResult run_campaign(const CampaignConfig& config, std::size_t threads) {
  UNP_REQUIRE(threads >= 1);

  cluster::Topology::Config topo_config = config.topology;
  topo_config.seed = mix64(config.seed, 0x70B0);
  CampaignResult result{cluster::Topology(topo_config),
                        telemetry::CampaignArchive(config.window),
                        {},
                        {}};

  const cluster::AvailabilityModel availability(wire_outages(config));
  sched::ScanPlanner::Config planner_config = config.planner;
  planner_config.seed = mix64(config.seed, 0x51A2);
  const sched::ScanPlanner planner(planner_config);

  const auto& nodes = result.topology.monitored_nodes();
  const std::size_t n = nodes.size();

  // Phase 1: per-node scan plans (parallel, order-independent).
  std::vector<sched::ScanPlan> plans(n);
  auto build_plan = [&](std::size_t i) {
    plans[i] = planner.plan(nodes[i], availability.build(nodes[i]));
  };
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
  if (pool) {
    pool->parallel_for(n, build_plan);
  } else {
    for (std::size_t i = 0; i < n; ++i) build_plan(i);
  }

  // Phase 2: fleet-wide fault generation (sequential; fleet-level streams).
  std::vector<faults::NodeContext> contexts(n);
  for (std::size_t i = 0; i < n; ++i) {
    contexts[i].node = nodes[i];
    contexts[i].plan = &plans[i];
    contexts[i].scanned_hours = plans[i].scanned_hours();
    contexts[i].near_overheating_slot =
        nodes[i].soc == cluster::kOverheatingSoc - 1 ||
        nodes[i].soc == cluster::kOverheatingSoc + 1;
  }
  const faults::FaultModelSuite suite(config.faults);
  result.ground_truth = suite.generate(contexts, mix64(config.seed, 0xFA17));

  // Partition events per node.
  std::vector<std::vector<faults::FaultEvent>> per_node(
      static_cast<std::size_t>(cluster::kStudyNodeSlots));
  for (const auto& ev : result.ground_truth) {
    per_node[static_cast<std::size_t>(cluster::node_index(ev.node))].push_back(ev);
  }

  // Phase 3: per-node session simulation (parallel, order-independent).
  const std::uint64_t session_seed = mix64(config.seed, 0x5E55);
  std::vector<telemetry::NodeLog> logs(n);
  auto simulate = [&](std::size_t i) {
    const bool overheating = cluster::Topology::is_overheating_slot(nodes[i]);
    logs[i] = simulate_node(
        config.session, nodes[i], plans[i],
        per_node[static_cast<std::size_t>(cluster::node_index(nodes[i]))],
        overheating, session_seed);
  };
  if (pool) {
    pool->parallel_for(n, simulate);
  } else {
    for (std::size_t i = 0; i < n; ++i) simulate(i);
  }

  // Assemble.
  result.accounting.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    result.archive.log(nodes[i]) = std::move(logs[i]);
    result.accounting[i] = {nodes[i], plans[i].scanned_hours(),
                            plans[i].terabyte_hours(), plans[i].sessions.size()};
  }
  return result;
}

const CampaignResult& default_campaign() {
  static const CampaignResult result = run_campaign(CampaignConfig{}, 1);
  return result;
}

}  // namespace unp::sim
