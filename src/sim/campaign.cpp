#include "sim/campaign.hpp"

#include <algorithm>
#include <memory>
#include <thread>

#include "common/require.hpp"
#include "common/thread_pool.hpp"
#include "sim/shard.hpp"
#include "telemetry/binary_codec.hpp"
#include "telemetry/kernels/kernels.hpp"

namespace unp::sim {

double CampaignSummary::total_scanned_hours() const noexcept {
  double total = 0.0;
  for (const auto& a : accounting) total += a.scanned_hours;
  return total;
}

double CampaignSummary::total_terabyte_hours() const noexcept {
  double total = 0.0;
  for (const auto& a : accounting) total += a.terabyte_hours;
  return total;
}

cluster::Topology campaign_topology(const CampaignConfig& config) {
  cluster::Topology::Config topo_config = config.topology;
  topo_config.seed = mix64(config.seed, 0x70B0);
  return cluster::Topology(topo_config);
}

cluster::AvailabilityModel::Config campaign_availability(
    const CampaignConfig& config) {
  cluster::AvailabilityModel::Config avail = config.availability;
  avail.window = config.window;
  if (!config.wire_special_outages) return avail;

  // The degrading node went unmonitored from late November except a short
  // December re-test (Section III-H explains Fig 12's silent stretches).
  const cluster::NodeId degrading = config.faults.degrading.node;
  avail.extra_outages.push_back(
      {degrading,
       {from_civil_utc({2015, 11, 26, 12, 0, 0}),
        from_civil_utc({2015, 12, 12, 9, 0, 0})}});
  avail.extra_outages.push_back(
      {degrading,
       {from_civil_utc({2015, 12, 14, 21, 0, 0}), config.window.end}});

  // The pathological node left the scheduler pool at its removal date.
  avail.extra_outages.push_back(
      {config.faults.pathological.node,
       {config.faults.pathological.removal, config.window.end}});
  return avail;
}

sched::ScanPlanner::Config campaign_planner_config(const CampaignConfig& config) {
  sched::ScanPlanner::Config planner_config = config.planner;
  planner_config.seed = mix64(config.seed, 0x51A2);
  return planner_config;
}

std::uint64_t campaign_fault_seed(const CampaignConfig& config) noexcept {
  return mix64(config.seed, 0xFA17);
}

std::uint64_t campaign_session_seed(const CampaignConfig& config) noexcept {
  return mix64(config.seed, 0x5E55);
}

namespace {

/// Per-slot scratch for phase 3: everything a worker touches while turning
/// one node's fault events into (optionally pre-encoded) telemetry.  Under
/// the default emit options a slot is allocated once and reused for every
/// block, so steady-state simulation+encoding allocates nothing per node.
struct NodeSlot {
  telemetry::NodeLog log;
  SessionSimArena sim;
  std::string encoded;         ///< pre-encoded UNPA body (bulk path)
  telemetry::EncodeArena enc;  ///< gather scratch for the batch kernels
  bool pre_encoded = false;
};

}  // namespace

CampaignSummary run_campaign_shard(const CampaignConfig& config,
                                   const ShardSpec& spec,
                                   const std::vector<telemetry::RecordSink*>& sinks,
                                   std::size_t threads,
                                   const CampaignEmitOptions& emit) {
  UNP_REQUIRE(threads >= 1);
  UNP_REQUIRE(spec.count >= 1);
  UNP_REQUIRE(spec.index >= 0 && spec.index < spec.count);

  CampaignSummary summary{campaign_topology(config), {}, {}};

  const cluster::AvailabilityModel availability(campaign_availability(config));
  const sched::ScanPlanner planner(campaign_planner_config(config));

  const auto& nodes = summary.topology.monitored_nodes();
  const std::size_t n = nodes.size();

  // Phase 1: per-node scan plans (parallel, order-independent).  Every shard
  // builds the plans of the WHOLE fleet: the fleet-wide fault generation
  // below consumes every node's plan and scanned hours, and re-deriving them
  // is what keeps each shard's random streams bit-identical to the
  // monolithic run's.  Planning is cheap next to session simulation, which
  // is the phase sharding actually divides.
  std::vector<sched::ScanPlan> plans(n);
  auto build_plan = [&](std::size_t i) {
    plans[i] = planner.plan(nodes[i], availability.build(nodes[i]));
  };
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
  if (pool) {
    pool->parallel_for(n, build_plan);
  } else {
    for (std::size_t i = 0; i < n; ++i) build_plan(i);
  }

  // Phase 2: fleet-wide fault generation (sequential; fleet-level streams),
  // identical in every shard for the same campaign seed.
  std::vector<faults::NodeContext> contexts(n);
  for (std::size_t i = 0; i < n; ++i) {
    contexts[i].node = nodes[i];
    contexts[i].plan = &plans[i];
    contexts[i].scanned_hours = plans[i].scanned_hours();
    contexts[i].near_overheating_slot =
        nodes[i].soc == cluster::kOverheatingSoc - 1 ||
        nodes[i].soc == cluster::kOverheatingSoc + 1;
  }
  const faults::FaultModelSuite suite(config.faults);
  std::vector<faults::FaultEvent> fleet_truth =
      suite.generate(contexts, campaign_fault_seed(config));

  // Partition events per node as index lists into the shared fleet vector —
  // the events themselves (with their heap word lists) are never copied on
  // the hot path; workers read them in place.
  UNP_REQUIRE(fleet_truth.size() <= 0xFFFFFFFFull);
  std::vector<std::vector<std::uint32_t>> per_node(
      static_cast<std::size_t>(cluster::kStudyNodeSlots));
  for (std::size_t e = 0; e < fleet_truth.size(); ++e) {
    per_node[static_cast<std::size_t>(cluster::node_index(fleet_truth[e].node))]
        .push_back(static_cast<std::uint32_t>(e));
  }

  // Ownership: monitored position j belongs to shard j % count (see
  // shard.hpp).  `owned` holds positions into `nodes`, still ascending.
  std::vector<std::size_t> owned;
  owned.reserve(n / static_cast<std::size_t>(spec.count) + 1);
  for (std::size_t j = 0; j < n; ++j) {
    if (j % static_cast<std::size_t>(spec.count) ==
        static_cast<std::size_t>(spec.index)) {
      owned.push_back(j);
    }
  }

  // The shard summary covers owned nodes only; filtering the time-sorted
  // fleet truth preserves its order, so shard truths interleave back into
  // the monolithic vector.  The monolithic move happens after phase 3 —
  // workers read events out of fleet_truth until the last block is emitted.
  if (!spec.is_monolithic()) {
    std::vector<bool> owned_slot(
        static_cast<std::size_t>(cluster::kStudyNodeSlots), false);
    for (std::size_t j = 0; j < n; ++j) {
      if (j % static_cast<std::size_t>(spec.count) ==
          static_cast<std::size_t>(spec.index)) {
        owned_slot[static_cast<std::size_t>(cluster::node_index(nodes[j]))] =
            true;
      }
    }
    for (const auto& ev : fleet_truth) {
      if (owned_slot[static_cast<std::size_t>(cluster::node_index(ev.node))]) {
        summary.ground_truth.push_back(ev);
      }
    }
  }

  // Phase 3: per-node session simulation of the owned nodes, streamed out
  // block by block.  Workers fill a block of node logs in parallel; the
  // block is then emitted to every sink in ascending node order and freed,
  // so at most one block of logs is resident at a time and the stream is
  // identical for any thread count (monitored_nodes() is index-sorted and
  // the ownership filter preserves that order).
  for (auto* sink : sinks) sink->begin_campaign(config.window);

  const std::uint64_t session_seed = campaign_session_seed(config);
  const std::size_t block = std::max<std::size_t>(threads * 8, 32);
  const telemetry::kernels::EncodeKernels& encode =
      emit.encode != nullptr ? *emit.encode
                             : telemetry::kernels::active_encode_kernels();
  // Pre-encode UNPA bodies in the workers only when some sink will actually
  // consume bytes; record-routing sinks never pay for encoding.
  bool wants_encoded = false;
  if (emit.bulk_node_logs) {
    for (const auto* sink : sinks)
      wants_encoded = wants_encoded || sink->wants_encoded_node_log();
  }

  std::vector<NodeSlot> slots;
  if (emit.reuse_buffers) slots.resize(std::min(block, owned.size()));
  summary.accounting.resize(owned.size());
  for (std::size_t base = 0; base < owned.size(); base += block) {
    const std::size_t count = std::min(block, owned.size() - base);
    if (!emit.reuse_buffers) {
      // Legacy churn baseline: fresh buffers for every block.
      slots.clear();
      slots.resize(count);
    }
    auto simulate = [&](std::size_t i) {
      const std::size_t j = owned[base + i];
      const cluster::NodeId node = nodes[j];
      const bool overheating = cluster::Topology::is_overheating_slot(node);
      NodeSlot& s = slots[i];
      const auto& indices =
          per_node[static_cast<std::size_t>(cluster::node_index(node))];
      if (emit.reuse_buffers) {
        // Zero-copy: simulate straight off the shared fleet-truth events.
        simulate_node_shared_into(config.session, node, plans[j], overheating,
                                  session_seed, fleet_truth, indices, s.sim,
                                  s.log);
      } else {
        // Legacy churn baseline: deep-copy this node's events (heap word
        // lists included) before simulating, as the pre-arena code did.
        s.sim.events.clear();
        s.sim.events.reserve(indices.size());
        for (const std::uint32_t e : indices)
          s.sim.events.push_back(fleet_truth[e]);
        simulate_node_into(config.session, node, plans[j], overheating,
                           session_seed, s.sim, s.log);
      }
      s.pre_encoded = false;
      if (wants_encoded) {
        s.encoded.clear();
        telemetry::encode_node_log_into(s.log, s.encoded, encode, &s.enc);
        s.pre_encoded = true;
      }
    };
    if (pool) {
      pool->parallel_for(count, simulate);
    } else {
      for (std::size_t i = 0; i < count; ++i) simulate(i);
    }
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t j = owned[base + i];
      const cluster::NodeId node = nodes[j];
      NodeSlot& s = slots[i];
      if (emit.bulk_node_logs) {
        // One EncodedNodeLog shared across sinks: the body is encoded at
        // most once per node (already done in the worker if any sink wants
        // bytes) and spliced — never re-encoded, never re-copied per sink.
        telemetry::EncodedNodeLog enc_log(node, s.log, s.encoded, encode,
                                          &s.enc, s.pre_encoded);
        for (auto* sink : sinks) {
          sink->begin_node(node);
          sink->on_node_log(enc_log);
          sink->end_node(node);
        }
      } else {
        for (auto* sink : sinks) {
          sink->begin_node(node);
          telemetry::replay_node_log(s.log, *sink);
          sink->end_node(node);
        }
      }
      if (!emit.reuse_buffers) s.log = telemetry::NodeLog{};
      summary.accounting[base + i] = {node, plans[j].scanned_hours(),
                                      plans[j].terabyte_hours(),
                                      plans[j].sessions.size()};
    }
  }

  for (auto* sink : sinks) sink->end_campaign();
  if (spec.is_monolithic()) summary.ground_truth = std::move(fleet_truth);
  return summary;
}

CampaignSummary run_campaign_streaming(
    const CampaignConfig& config,
    const std::vector<telemetry::RecordSink*>& sinks, std::size_t threads,
    const CampaignEmitOptions& emit) {
  return run_campaign_shard(config, ShardSpec{}, sinks, threads, emit);
}

CampaignResult run_campaign(const CampaignConfig& config, std::size_t threads) {
  telemetry::CampaignArchive archive(config.window);
  CampaignSummary summary = run_campaign_streaming(config, {&archive}, threads);
  return CampaignResult{std::move(summary), std::move(archive)};
}

std::size_t default_campaign_threads() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

const CampaignResult& default_campaign() {
  static const CampaignResult result =
      run_campaign(CampaignConfig{}, default_campaign_threads());
  return result;
}

}  // namespace unp::sim
