// Campaign partitioning: the first stage of the sharded fabric.
//
// A shard is a deterministic slice of the monitored fleet.  Every shard
// re-derives the full campaign environment — topology, availability, scan
// plans and the fleet-wide fault streams — from the same campaign seed via
// the same `campaign_fault_seed`/`campaign_session_seed` sub-seed helpers,
// then simulates sessions only for the nodes it owns.  Because
// `simulate_node` depends only on (config, node, plan, node events,
// session sub-seed), each owned node's record frame is byte-identical to
// the frame the monolithic `run_campaign_streaming` would emit.
//
// Partition invariant: monitored node at position j (of the index-sorted
// `Topology::monitored_nodes()` list) belongs to shard `j % count`.  The
// owned subset therefore stays ascending by node index, shards are disjoint
// and exhaustive, and a stable merge of the K shard record streams on the
// node-index key reproduces the monolithic stream byte for byte
// (telemetry::ShardMergeReader is that merge).
//
// Round-robin (rather than contiguous block) assignment balances load: the
// loud nodes of the study (the pathological node, the degrading node, the
// overheating neighbourhood) sit in adjacent slots, and block partitions
// would hand one shard most of the simulation work.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/campaign.hpp"

namespace unp::sim {

/// Identifies one shard of a K-way partition.  The monolithic campaign is
/// the trivial partition {count = 1, index = 0}.
struct ShardSpec {
  int count = 1;  ///< K, total shards in the partition
  int index = 0;  ///< this shard, in [0, count)

  [[nodiscard]] bool is_monolithic() const noexcept {
    return count == 1 && index == 0;
  }

  friend bool operator==(const ShardSpec&, const ShardSpec&) = default;
};

/// Version of the ownership rule + sub-seed derivation above.  Mixed into
/// cache fingerprints so archives produced under a different partition
/// algebra can never be mistaken for one another.
inline constexpr std::uint64_t kShardDerivationVersion = 1;

/// The monitored nodes shard `spec` owns (ascending node index).
[[nodiscard]] std::vector<cluster::NodeId> shard_nodes(
    const cluster::Topology& topology, const ShardSpec& spec);

/// The partition of one campaign: which nodes this shard simulates.
struct ShardPlan {
  ShardSpec spec;
  std::vector<cluster::NodeId> nodes;  ///< owned nodes, ascending index
};

[[nodiscard]] ShardPlan plan_shard(const cluster::Topology& topology,
                                   const ShardSpec& spec);

/// Run one shard of the campaign, streaming the owned nodes' records to
/// `sinks` with full framing (begin_campaign .. end_campaign, owned nodes
/// ascending by index).  The returned summary is filtered to the shard:
/// `ground_truth` and `accounting` cover owned nodes only, so the K shard
/// summaries concatenate (stably, by ground-truth order / node index) into
/// the monolithic summary.  `run_campaign_streaming(config, sinks, threads)`
/// is exactly `run_campaign_shard(config, ShardSpec{}, sinks, threads)`.
CampaignSummary run_campaign_shard(const CampaignConfig& config,
                                   const ShardSpec& spec,
                                   const std::vector<telemetry::RecordSink*>& sinks,
                                   std::size_t threads = 1,
                                   const CampaignEmitOptions& emit = {});

}  // namespace unp::sim
