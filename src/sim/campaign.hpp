// Whole-campaign driver: wires topology, availability, the scheduler, the
// fault model and the session simulator into the 13-month monitoring
// campaign, producing the telemetry archive every analysis consumes.
//
// Determinism: every stochastic component derives its stream from the one
// campaign seed; node timelines are independent, so the per-node work can
// be executed on any number of threads with bit-identical results.
#pragma once

#include <cstddef>
#include <vector>

#include "cluster/availability.hpp"
#include "cluster/topology.hpp"
#include "faults/suite.hpp"
#include "sched/planner.hpp"
#include "sim/session_sim.hpp"
#include "telemetry/archive.hpp"

namespace unp::sim {

struct CampaignConfig {
  std::uint64_t seed = 42;
  CampaignWindow window{};
  cluster::Topology::Config topology{};
  cluster::AvailabilityModel::Config availability{};
  sched::ScanPlanner::Config planner{};
  faults::FaultModelSuite::Config faults{};
  SessionSimConfig session{};

  /// Auto-append the study's administrative outages to the availability
  /// config: the degrading node's unmonitored December stretches (the
  /// "errors stop abruptly" artefact of Fig 12) and the pathological node's
  /// removal from the scheduler pool.
  bool wire_special_outages = true;
};

/// Per-node accounting next to the raw archive.
struct NodeAccounting {
  cluster::NodeId node;
  double scanned_hours = 0.0;
  double terabyte_hours = 0.0;
  std::size_t sessions = 0;
};

struct CampaignResult {
  cluster::Topology topology;
  telemetry::CampaignArchive archive;
  /// Ground-truth fault events (sorted), for truth-vs-observation studies.
  std::vector<faults::FaultEvent> ground_truth;
  std::vector<NodeAccounting> accounting;  ///< one entry per monitored node

  [[nodiscard]] double total_scanned_hours() const noexcept;
  [[nodiscard]] double total_terabyte_hours() const noexcept;
};

/// Run the campaign.  `threads` > 1 parallelizes per-node planning and
/// session simulation (results identical to the sequential run).
[[nodiscard]] CampaignResult run_campaign(const CampaignConfig& config,
                                          std::size_t threads = 1);

/// The calibrated default campaign (seed 42) used by every bench binary.
[[nodiscard]] const CampaignResult& default_campaign();

}  // namespace unp::sim
