// Whole-campaign driver: wires topology, availability, the scheduler, the
// fault model and the session simulator into the 13-month monitoring
// campaign, streaming the telemetry every analysis consumes.
//
// Determinism: every stochastic component derives its stream from the one
// campaign seed; node timelines are independent, so the per-node work can
// be executed on any number of threads with bit-identical results.  The
// record stream is emitted to sinks in ascending node-index order no matter
// the thread count, so downstream consumers (archive, disk spill, streaming
// extraction) observe one canonical stream per seed.
#pragma once

#include <cstddef>
#include <vector>

#include "cluster/availability.hpp"
#include "cluster/topology.hpp"
#include "faults/suite.hpp"
#include "sched/planner.hpp"
#include "sim/session_sim.hpp"
#include "telemetry/archive.hpp"
#include "telemetry/sink.hpp"

namespace unp::sim {

struct CampaignConfig {
  std::uint64_t seed = 42;
  CampaignWindow window{};
  cluster::Topology::Config topology{};
  cluster::AvailabilityModel::Config availability{};
  sched::ScanPlanner::Config planner{};
  faults::FaultModelSuite::Config faults{};
  SessionSimConfig session{};

  /// Auto-append the study's administrative outages to the availability
  /// config: the degrading node's unmonitored December stretches (the
  /// "errors stop abruptly" artefact of Fig 12) and the pathological node's
  /// removal from the scheduler pool.
  bool wire_special_outages = true;
};

/// Per-node accounting next to the raw archive.
struct NodeAccounting {
  cluster::NodeId node;
  double scanned_hours = 0.0;
  double terabyte_hours = 0.0;
  std::size_t sessions = 0;
};

/// Everything the campaign produces besides the record stream itself:
/// the concrete topology, the ground-truth fault events and the per-node
/// accounting.  This is what a streaming run returns — the records went to
/// the sinks and are not resident here.
struct CampaignSummary {
  cluster::Topology topology;
  /// Ground-truth fault events (sorted), for truth-vs-observation studies.
  std::vector<faults::FaultEvent> ground_truth;
  std::vector<NodeAccounting> accounting;  ///< one entry per monitored node

  [[nodiscard]] double total_scanned_hours() const noexcept;
  [[nodiscard]] double total_terabyte_hours() const noexcept;
};

/// A materialized campaign: the streaming run's summary plus the archive
/// the CampaignArchive sink collected.  Totals forward to the summary so
/// the accounting arithmetic exists once.
struct CampaignResult {
  CampaignSummary summary;
  telemetry::CampaignArchive archive;

  [[nodiscard]] double total_scanned_hours() const noexcept {
    return summary.total_scanned_hours();
  }
  [[nodiscard]] double total_terabyte_hours() const noexcept {
    return summary.total_terabyte_hours();
  }
};

/// The topology the campaign instantiates for `config` (deterministic; lets
/// consumers of a spilled record stream rebuild the fleet without rerunning
/// the simulation).
[[nodiscard]] cluster::Topology campaign_topology(const CampaignConfig& config);

// The exact component wiring run_campaign_streaming uses, exposed so
// out-of-band drivers (the closed-loop policy runner in src/policy, which
// must re-simulate individual node timelines under actuated scan plans) can
// reproduce the open-loop campaign bit-for-bit before layering their cuts.

/// Availability config with window + special administrative outages wired.
[[nodiscard]] cluster::AvailabilityModel::Config campaign_availability(
    const CampaignConfig& config);

/// Planner config with the campaign's derived scheduler seed.
[[nodiscard]] sched::ScanPlanner::Config campaign_planner_config(
    const CampaignConfig& config);

/// Sub-seed feeding fault generation (FaultModelSuite::generate).
[[nodiscard]] std::uint64_t campaign_fault_seed(
    const CampaignConfig& config) noexcept;

/// Sub-seed feeding per-node session simulation (simulate_node).
[[nodiscard]] std::uint64_t campaign_session_seed(
    const CampaignConfig& config) noexcept;

/// Hot-path knobs for the record-emission machinery.  The defaults are the
/// optimized path; the legacy flags reproduce the pre-arena allocation
/// behavior so the campaign throughput bench can measure both in one binary.
/// Every combination emits a byte-identical record stream.
struct CampaignEmitOptions {
  /// Reuse per-slot NodeLog / event / encode buffers across node blocks;
  /// false recreates every buffer per block (the legacy churn).
  bool reuse_buffers = true;
  /// Deliver each node's log to sinks as one bulk on_node_log call, with
  /// the UNPA body pre-encoded in the simulation workers whenever a sink
  /// wants bytes; false replays record by record through the per-record
  /// virtual interface.
  bool bulk_node_logs = true;
  /// Encode kernel set for pre-encoded bodies; null means the process-wide
  /// active set.  Output bytes are identical for every set.
  const telemetry::kernels::EncodeKernels* encode = nullptr;
};

/// Stream the campaign through `sinks`.  Per-node records are pushed with
/// full framing (begin_campaign .. end_campaign, nodes ascending by index)
/// as soon as each node block completes; only a bounded block of node logs
/// is ever resident.  `threads` > 1 parallelizes planning and session
/// simulation; the emitted stream is bit-identical for any thread count,
/// any `emit` options, and any encode kernel set.
CampaignSummary run_campaign_streaming(
    const CampaignConfig& config,
    const std::vector<telemetry::RecordSink*>& sinks, std::size_t threads = 1,
    const CampaignEmitOptions& emit = {});

/// Run the campaign and materialize the archive (the CampaignArchive sink
/// fed by run_campaign_streaming).
[[nodiscard]] CampaignResult run_campaign(const CampaignConfig& config,
                                          std::size_t threads = 1);

/// Thread count used for the default campaign: every hardware thread.
[[nodiscard]] std::size_t default_campaign_threads() noexcept;

/// The calibrated default campaign (seed 42) used by every bench binary.
/// Simulated multithreaded on first use (identical to a 1-thread run).
[[nodiscard]] const CampaignResult& default_campaign();

}  // namespace unp::sim
