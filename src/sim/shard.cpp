#include "sim/shard.hpp"

#include "common/require.hpp"

namespace unp::sim {

std::vector<cluster::NodeId> shard_nodes(const cluster::Topology& topology,
                                         const ShardSpec& spec) {
  UNP_REQUIRE(spec.count >= 1);
  UNP_REQUIRE(spec.index >= 0 && spec.index < spec.count);
  const auto& monitored = topology.monitored_nodes();
  std::vector<cluster::NodeId> owned;
  owned.reserve(monitored.size() / static_cast<std::size_t>(spec.count) + 1);
  for (std::size_t j = 0; j < monitored.size(); ++j) {
    if (j % static_cast<std::size_t>(spec.count) ==
        static_cast<std::size_t>(spec.index)) {
      owned.push_back(monitored[j]);
    }
  }
  return owned;
}

ShardPlan plan_shard(const cluster::Topology& topology, const ShardSpec& spec) {
  return ShardPlan{spec, shard_nodes(topology, spec)};
}

}  // namespace unp::sim
