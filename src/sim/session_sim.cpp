#include "sim/session_sim.hpp"

#include <algorithm>
#include <utility>

#include "common/require.hpp"
#include "scanner/pattern.hpp"

namespace unp::sim {

namespace {

using faults::FaultEvent;
using faults::Persistence;
using scanner::Pattern;
using scanner::PatternKind;
using telemetry::ErrorRecord;
using telemetry::ErrorRun;
using telemetry::NodeLog;

struct TempSampler {
  const SessionSimConfig* config;
  cluster::NodeId node;
  bool overheating;
  RngStream* rng;
  /// Hoisted per-node idle delta: a pure function of the node id, resolved
  /// once here instead of redrawing it for every record's sample.
  double idle_delta_c;

  TempSampler(const SessionSimConfig* cfg, cluster::NodeId n, bool hot,
              RngStream* r)
      : config(cfg),
        node(n),
        overheating(hot),
        rng(r),
        idle_delta_c(cfg->temperature.node_idle_delta_c(
            static_cast<std::uint32_t>(cluster::node_index(n)))) {}

  [[nodiscard]] double at(TimePoint t) const {
    if (t < config->sensors_online) return telemetry::kNoTemperature;
    return config->temperature.sample_with_idle_delta_c(t, idle_delta_c,
                                                        overheating, *rng);
  }
};

ErrorRecord make_error(TimePoint when, cluster::NodeId node,
                       std::uint64_t word_index, Word expected, Word actual,
                       const TempSampler& temp) {
  ErrorRecord r;
  r.time = when;
  r.node = node;
  r.virtual_address = word_index * sizeof(Word);
  r.expected = expected;
  r.actual = actual;
  r.temperature_c = temp.at(when);
  r.physical_page = r.virtual_address >> 12;
  return r;
}

/// Emit the logs of a transient event landing inside `session`.
void simulate_transient(const sched::ScanSession& session, const FaultEvent& ev,
                        cluster::NodeId node, const TempSampler& temp,
                        NodeLog& log) {
  const Pattern pattern(session.pattern);
  const TimePoint start = session.window.start;
  const std::int64_t period = session.pass_period_s;
  // Iteration whose written value the upset corrupts.
  const auto i_prev = static_cast<std::uint64_t>((ev.time - start) / period);
  const std::uint64_t check = i_prev + 1;
  const TimePoint check_time = start + static_cast<std::int64_t>(check) * period;
  if (check_time >= session.window.end) return;  // session ends before the check

  const Word expected = pattern.written_at(i_prev);
  for (const auto& wf : ev.words) {
    const Word observed = wf.corruption.apply(expected);
    if (observed != expected) {
      log.add_error(
          make_error(check_time, node, wf.word_index, expected, observed, temp));
    }
  }
}

/// Emit the run-length logs of a stuck fault over one session.
void simulate_stuck(const sched::ScanSession& session, const FaultEvent& ev,
                    cluster::NodeId node, const SessionSimConfig& config,
                    const TempSampler& temp, NodeLog& log) {
  const Pattern pattern(session.pattern);
  const TimePoint start = session.window.start;
  const std::int64_t period = session.pass_period_s;

  // Checks happen at start + i*period (i >= 1), strictly inside the window,
  // while the fault is active.
  const TimePoint active_from = std::max(ev.time, start);
  const TimePoint active_to = std::min(ev.active_until, session.window.end);
  if (active_to <= active_from) return;

  std::uint64_t first_check =
      static_cast<std::uint64_t>((active_from - start) / period) + 1;
  const auto last_time_limit = active_to - 1;
  if (start + static_cast<std::int64_t>(first_check) * period > last_time_limit)
    return;
  const auto last_check =
      static_cast<std::uint64_t>((last_time_limit - start) / period);
  if (last_check < first_check) return;

  for (const auto& wf : ev.words) {
    if (session.pattern == PatternKind::kAlternating) {
      // Phase-resolved runs: checks with even index expect 0xFFFFFFFF
      // (written at the preceding odd iteration), odd-index checks expect
      // 0x00000000.  Emit one run per visible phase.
      for (int parity = 0; parity <= 1; ++parity) {
        // Check i expects written_at(i-1): even i -> 0xFFFFFFFF (parity 0),
        // odd i -> 0x00000000 (parity 1).
        const Word phase_expected =
            (parity == 0) ? Word{0xFFFFFFFF} : Word{0x00000000};
        const Word observed = wf.corruption.apply(phase_expected);
        if (observed == phase_expected) continue;

        // First check index >= first_check with the right parity
        // (parity 0 -> even index, parity 1 -> odd index).
        std::uint64_t i = first_check;
        if ((i % 2 == 0) != (parity == 0)) ++i;
        if (i > last_check) continue;
        const std::uint64_t count = (last_check - i) / 2 + 1;

        ErrorRun run;
        run.first = make_error(start + static_cast<std::int64_t>(i) * period,
                               node, wf.word_index, phase_expected, observed,
                               temp);
        run.period_s = count > 1 ? 2 * period : 0;
        run.count = count;
        log.add_error_run(run);
      }
    } else {
      // Counter pattern: expected changes every check.
      const std::uint64_t checks = last_check - first_check + 1;
      if (checks <= config.counter_exact_limit) {
        for (std::uint64_t i = first_check; i <= last_check; ++i) {
          const Word expected = pattern.written_at(i - 1);
          const Word observed = wf.corruption.apply(expected);
          if (observed != expected) {
            log.add_error(make_error(start + static_cast<std::int64_t>(i) * period,
                                     node, wf.word_index, expected, observed,
                                     temp));
          }
        }
      } else {
        // Long-run approximation: a discharge fault collides with almost
        // every counter value; represent the stream as one run carrying the
        // first check's context.
        const Word expected = pattern.written_at(first_check - 1);
        const Word observed = wf.corruption.apply(expected);
        if (observed == expected) continue;
        ErrorRun run;
        run.first = make_error(
            start + static_cast<std::int64_t>(first_check) * period, node,
            wf.word_index, expected, observed, temp);
        run.period_s = checks > 1 ? period : 0;
        run.count = checks;
        log.add_error_run(run);
      }
    }
  }
}

}  // namespace

namespace {

/// Shared tail of the simulate_node_* entry points: `arena.ptrs` holds this
/// node's events (any order) and is sorted in place; everything else is read
/// through it.  Sorting the pointer view yields the same event order the old
/// value sort produced (see sort_event_ptrs), without moving any FaultEvent.
void simulate_node_core(const SessionSimConfig& config, cluster::NodeId node,
                        const sched::ScanPlan& plan, bool overheating,
                        std::uint64_t seed, SessionSimArena& arena,
                        telemetry::NodeLog& out) {
  NodeLog& log = out;
  log.clear();
  log.reserve_starts(plan.sessions.size());
  log.reserve_ends(plan.sessions.size());
  log.reserve_alloc_fails(plan.failures.size());
  RngStream rng(seed, /*stream_id=*/0x5E55,
                static_cast<std::uint64_t>(cluster::node_index(node)));
  const TempSampler temp{&config, node, overheating, &rng};

  faults::sort_event_ptrs(arena.ptrs);

  // A transient belongs to exactly one session; stuck faults (few) are
  // checked against every session they overlap.
  std::vector<const FaultEvent*>& transients = arena.transients;
  std::vector<const FaultEvent*>& stucks = arena.stucks;
  transients.clear();
  stucks.clear();
  transients.reserve(arena.ptrs.size());
  for (const FaultEvent* ev : arena.ptrs) {
    (ev->persistence == Persistence::kTransient ? transients : stucks)
        .push_back(ev);
  }

  for (const auto& failure : plan.failures) {
    log.add_alloc_fail({failure.time, node});
  }

  std::size_t next_transient = 0;
  for (const auto& session : plan.sessions) {
    log.add_start({session.window.start, node, session.allocated_bytes,
                   temp.at(session.window.start)});

    // Transients before this session fell into busy (job-owned) time and
    // were never observable; skip them.
    while (next_transient < transients.size() &&
           transients[next_transient]->time < session.window.start) {
      ++next_transient;
    }
    while (next_transient < transients.size() &&
           transients[next_transient]->time < session.window.end) {
      simulate_transient(session, *transients[next_transient], node, temp, log);
      ++next_transient;
    }

    for (const FaultEvent* ev : stucks) {
      if (ev->time < session.window.end &&
          ev->active_until > session.window.start) {
        simulate_stuck(session, *ev, node, config, temp, log);
      }
    }

    if (!session.end_lost) {
      log.add_end({session.window.end, node, temp.at(session.window.end)});
    }
  }

  log.sort_by_time();
}

}  // namespace

void simulate_node_into(const SessionSimConfig& config, cluster::NodeId node,
                        const sched::ScanPlan& plan, bool overheating,
                        std::uint64_t seed, SessionSimArena& arena,
                        telemetry::NodeLog& out) {
  arena.ptrs.clear();
  arena.ptrs.reserve(arena.events.size());
  for (const FaultEvent& ev : arena.events) arena.ptrs.push_back(&ev);
  simulate_node_core(config, node, plan, overheating, seed, arena, out);
}

void simulate_node_shared_into(const SessionSimConfig& config,
                               cluster::NodeId node,
                               const sched::ScanPlan& plan, bool overheating,
                               std::uint64_t seed,
                               std::span<const faults::FaultEvent> fleet,
                               std::span<const std::uint32_t> indices,
                               SessionSimArena& arena, telemetry::NodeLog& out) {
  arena.ptrs.clear();
  arena.ptrs.reserve(indices.size());
  for (const std::uint32_t i : indices) arena.ptrs.push_back(&fleet[i]);
  simulate_node_core(config, node, plan, overheating, seed, arena, out);
}

telemetry::NodeLog simulate_node(const SessionSimConfig& config,
                                 cluster::NodeId node,
                                 const sched::ScanPlan& plan,
                                 std::vector<faults::FaultEvent> events,
                                 bool overheating, std::uint64_t seed) {
  SessionSimArena arena;
  arena.events = std::move(events);
  NodeLog log;
  simulate_node_into(config, node, plan, overheating, seed, arena, log);
  return log;
}

}  // namespace unp::sim
