#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <sstream>
#include <utility>

#include "common/require.hpp"

namespace unp::serve {

namespace {

[[noreturn]] void fail_errno(const char* what) {
  throw ContractViolation(std::string("unp_serve: ") + what + ": " +
                          std::strerror(errno));
}

/// Write all of `data`, riding out short writes; MSG_NOSIGNAL so a client
/// that hung up kills the connection, not the server process.
bool send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Split "swap P [P...]" payload into paths (any run of spaces separates).
std::vector<std::string> split_paths(const std::string& payload) {
  std::vector<std::string> paths;
  std::istringstream in(payload);
  std::string token;
  while (in >> token) paths.push_back(std::move(token));
  return paths;
}

std::shared_ptr<const store::StoreHandle> open_any(
    const std::vector<std::string>& paths) {
  UNP_REQUIRE(!paths.empty());
  return paths.size() == 1 ? store::StoreHandle::open(paths.front())
                           : store::StoreHandle::open_partitioned(paths);
}

}  // namespace

std::string frame_response(bool ok, const std::string& body) {
  return (ok ? "OK " : "ERR ") + std::to_string(body.size()) + "\n" + body;
}

Server::Server(Config config, RenderFn render)
    : config_(std::move(config)),
      render_(std::move(render)),
      cache_(config_.cache_capacity) {
  UNP_REQUIRE(config_.workers >= 1);
  UNP_REQUIRE(render_ != nullptr);
}

Server::~Server() { stop(); }

void Server::start() {
  UNP_REQUIRE(!running_.load());
  {
    std::lock_guard<std::mutex> lock(store_mutex_);
    handle_ = open_any(config_.store_paths);
    generation_ = 1;
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) fail_errno("socket");
  const int one = 1;
  (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(config_.port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0)
    fail_errno("bind");
  if (::listen(listen_fd_, 64) != 0) fail_errno("listen");

  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
      0)
    fail_errno("getsockname");
  port_ = ntohs(bound.sin_port);

  running_.store(true);
  workers_.reserve(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

void Server::wait() {
  std::unique_lock<std::mutex> lock(shutdown_mutex_);
  shutdown_cv_.wait(lock, [this] { return shutdown_requested_; });
}

void Server::request_shutdown() {
  {
    std::lock_guard<std::mutex> lock(shutdown_mutex_);
    shutdown_requested_ = true;
  }
  shutdown_cv_.notify_all();
}

void Server::stop() {
  if (listen_fd_ < 0) return;
  running_.store(false);
  // Unblocks every worker parked in accept(); workers mid-connection notice
  // running_ on their next receive-timeout tick.
  (void)::shutdown(listen_fd_, SHUT_RDWR);
  for (std::thread& t : workers_) t.join();
  workers_.clear();
  (void)::close(listen_fd_);
  listen_fd_ = -1;
  request_shutdown();  // release wait()ers even when stop() came first
}

Server::Stats Server::stats() const {
  Stats s;
  {
    std::lock_guard<std::mutex> lock(store_mutex_);
    s.generation = generation_;
  }
  s.queries = queries_.load();
  s.cache = cache_.counters();
  return s;
}

void Server::swap_store(const std::vector<std::string>& paths) {
  // Open (and fully validate) the replacement before touching shared state:
  // a failed swap leaves the current store serving.
  std::shared_ptr<const store::StoreHandle> next = open_any(paths);
  std::uint64_t generation = 0;
  {
    std::lock_guard<std::mutex> lock(store_mutex_);
    handle_ = std::move(next);
    generation = ++generation_;
  }
  cache_.invalidate(generation);
}

Server::Snapshot Server::snapshot() const {
  std::lock_guard<std::mutex> lock(store_mutex_);
  return Snapshot{handle_, generation_};
}

void Server::worker_loop() {
  while (running_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listen socket shut down (or unrecoverable) => exit worker
    }
    // Bounded receive blocking so stop() never waits on an idle client.
    timeval tv{};
    tv.tv_usec = 200 * 1000;
    (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    serve_connection(fd);
    (void)::close(fd);
  }
}

void Server::serve_connection(int fd) {
  std::string pending;
  char buf[4096];
  while (true) {
    const std::size_t newline = pending.find('\n');
    if (newline != std::string::npos) {
      std::string line = pending.substr(0, newline);
      pending.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      if (!send_all(fd, handle_line(line))) return;
      continue;
    }
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n > 0) {
      pending.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
      if (!running_.load()) return;
      continue;
    }
    return;  // EOF or hard error
  }
}

std::string Server::handle_line(const std::string& line) {
  if (line == "ping") return frame_response(true, "pong\n");

  if (line == "stats") {
    const Stats s = stats();
    std::string body;
    body += "generation " + std::to_string(s.generation) + "\n";
    body += "queries " + std::to_string(s.queries) + "\n";
    body += "cache_hits " + std::to_string(s.cache.hits) + "\n";
    body += "cache_misses " + std::to_string(s.cache.misses) + "\n";
    body += "cache_entries " + std::to_string(s.cache.entries) + "\n";
    return frame_response(true, body);
  }

  if (line == "shutdown") {
    request_shutdown();
    return frame_response(true, "bye\n");
  }

  if (line.rfind("swap ", 0) == 0) {
    const std::vector<std::string> paths = split_paths(line.substr(5));
    if (paths.empty())
      return frame_response(false, "swap: needs at least one store path");
    try {
      swap_store(paths);
    } catch (const ContractViolation& e) {
      return frame_response(false, e.what());
    }
    std::lock_guard<std::mutex> lock(store_mutex_);
    return frame_response(
        true, "swapped to generation " + std::to_string(generation_) + "\n");
  }

  // Query path: serve from cache when this exact line already rendered
  // against the current store generation, else render and memoize.
  const Snapshot snap = snapshot();
  queries_.fetch_add(1);
  if (auto hit = cache_.get(snap.generation, line))
    return frame_response(true, *hit);
  std::string body;
  try {
    body = render_(line, store::StoreReader(snap.handle));
  } catch (const ContractViolation& e) {
    return frame_response(false, e.what());
  }
  cache_.put(snap.generation, line, body);
  return frame_response(true, std::move(body));
}

// --- client helpers --------------------------------------------------------

int connect_local(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) fail_errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    const int saved = errno;
    (void)::close(fd);
    errno = saved;
    fail_errno("connect");
  }
  return fd;
}

namespace {

/// Read exactly `want` more bytes into `data` (which may already hold a
/// prefix); false on EOF/error.
bool recv_exact(int fd, std::string& data, std::size_t want) {
  char buf[4096];
  while (data.size() < want) {
    const ssize_t n = ::recv(
        fd, buf, std::min(sizeof buf, want - data.size()), 0);
    if (n > 0) {
      data.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

}  // namespace

Response roundtrip(int fd, const std::string& line) {
  UNP_REQUIRE(line.find('\n') == std::string::npos);
  if (!send_all(fd, line + "\n")) fail_errno("send");

  // Header: "OK <len>\n" / "ERR <len>\n", read byte-wise up to the newline.
  std::string header;
  char c = 0;
  while (true) {
    const ssize_t n = ::recv(fd, &c, 1, 0);
    if (n == 1) {
      if (c == '\n') break;
      header.push_back(c);
      UNP_REQUIRE(header.size() < 64);  // a frame header is tiny
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    throw ContractViolation("unp_serve: connection closed mid-response");
  }

  Response r;
  std::size_t len_at = 0;
  if (header.rfind("OK ", 0) == 0) {
    r.ok = true;
    len_at = 3;
  } else if (header.rfind("ERR ", 0) == 0) {
    r.ok = false;
    len_at = 4;
  } else {
    throw ContractViolation("unp_serve: malformed response header '" + header +
                            "'");
  }
  const std::size_t len = std::stoull(header.substr(len_at));
  if (!recv_exact(fd, r.body, len))
    throw ContractViolation("unp_serve: short response body");
  return r;
}

}  // namespace unp::serve
