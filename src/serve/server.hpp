// unp_serve's transport and store-lifecycle core.
//
// A Server owns one listening TCP socket on 127.0.0.1 and N worker threads
// that accept() on it concurrently; every worker serves whole connections,
// reading newline-terminated request lines and writing length-framed
// responses:
//
//   OK <len>\n<body>     — <len> bytes of rendered response
//   ERR <len>\n<message> — rejected request / render failure
//
// All workers share ONE parsed store via shared_ptr<const StoreHandle>:
// requests snapshot the pointer, so scans proceed lock-free against deeply
// immutable bytes while an admin `swap` installs a replacement handle.  A
// monotonically increasing generation number keys the result cache; swap
// bumps it (stale entries can never hit) and invalidates eagerly.
//
// The server knows nothing about the query language: rendering is injected
// as a RenderFn so the transport layer stays free of bench-side report
// dependencies.  Built-in admin lines (handled before RenderFn):
//
//   ping            — liveness probe, body "pong\n"
//   stats           — generation, query count, cache counters
//   swap P [P...]   — reopen the store from path(s), bump generation
//   shutdown        — acknowledge, then release wait()
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/result_cache.hpp"
#include "store/handle.hpp"
#include "store/reader.hpp"

namespace unp::serve {

/// Renders one request line against a read-only view of the current store
/// and returns the complete response body.  Called concurrently from worker
/// threads; must be thread-safe and deterministic (equal line + equal store
/// bytes => equal body, the property the result cache relies on).  Signal a
/// rejected request or render failure by throwing ContractViolation (e.g.
/// store::QueryError, telemetry::DecodeError); the server turns the what()
/// text into an ERR response.
using RenderFn = std::function<std::string(const std::string& line,
                                           const store::StoreReader& reader)>;

class Server {
 public:
  struct Config {
    /// Store to open at start(): one path = StoreHandle::open, several =
    /// open_partitioned.
    std::vector<std::string> store_paths;
    std::uint16_t port = 0;  ///< 0 = ephemeral, read back via port()
    std::size_t workers = 4;
    std::size_t cache_capacity = 256;  ///< 0 disables the result cache
  };

  Server(Config config, RenderFn render);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Open the store, bind/listen on 127.0.0.1, and spawn the workers.
  /// Throws ContractViolation on socket failure and DecodeError on an
  /// unreadable/corrupt store.
  void start();

  /// Block until a client sends `shutdown` (or stop() is called).
  void wait();

  /// Unblock and join every worker, close the socket.  Idempotent.
  void stop();

  /// The bound port (the ephemeral one the kernel picked when
  /// Config::port == 0).  Valid after start().
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  struct Stats {
    std::uint64_t generation = 0;
    std::uint64_t queries = 0;  ///< rendered + cache-served request lines
    ResultCache::Counters cache;
  };
  [[nodiscard]] Stats stats() const;

  /// Install the store at `paths` as the new current store: bumps the
  /// generation and invalidates the cache.  In-flight scans keep their
  /// snapshot of the old handle alive.  Throws without switching when the
  /// new store fails to open.
  void swap_store(const std::vector<std::string>& paths);

 private:
  struct Snapshot {
    std::shared_ptr<const store::StoreHandle> handle;
    std::uint64_t generation = 0;
  };
  [[nodiscard]] Snapshot snapshot() const;

  void worker_loop();
  void serve_connection(int fd);
  /// Dispatch one trimmed request line to a framed response.
  [[nodiscard]] std::string handle_line(const std::string& line);
  void request_shutdown();

  Config config_;
  RenderFn render_;
  ResultCache cache_;

  mutable std::mutex store_mutex_;
  std::shared_ptr<const store::StoreHandle> handle_;  ///< guarded by mutex
  std::uint64_t generation_ = 0;                      ///< guarded by mutex

  std::atomic<std::uint64_t> queries_{0};
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::vector<std::thread> workers_;

  std::mutex shutdown_mutex_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;
};

/// Frame a response body for the wire (shared with tests so framing changes
/// cannot drift silently): "OK <len>\n<body>" / "ERR <len>\n<body>".
[[nodiscard]] std::string frame_response(bool ok, const std::string& body);

// --- minimal client (tests, unp_serve --connect, CI smoke) ----------------

struct Response {
  bool ok = false;
  std::string body;
};

/// Connect to 127.0.0.1:`port`; returns the socket fd.  Throws
/// ContractViolation when the connection is refused.
[[nodiscard]] int connect_local(std::uint16_t port);

/// Send one request line over `fd` and read the complete framed response.
/// Throws ContractViolation on a short read or malformed frame.
[[nodiscard]] Response roundtrip(int fd, const std::string& line);

}  // namespace unp::serve
