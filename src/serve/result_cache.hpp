// ResultCache: memoized query responses for the serve layer.
//
// The figure/predicate workload is heavily repetitive — dashboards and CI
// replay the same request lines against a store that changes rarely — so
// the server memoizes fully rendered response bodies.  Keys pair the exact
// request line with the store *generation*: a monotonically increasing
// counter the server bumps on every store swap.  A hit is therefore
// byte-identical to a fresh render by construction (same store bytes, same
// deterministic renderer), and a swap can never serve stale bytes — the new
// generation misses, and invalidate() reclaims the dead entries eagerly.
//
// Bounded LRU, single mutex: eviction decisions and the hit/miss counters
// are cheap next to rendering, which happens outside the lock.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace unp::serve {

class ResultCache {
 public:
  /// `capacity` = max cached responses (0 disables caching entirely).
  explicit ResultCache(std::size_t capacity) : capacity_(capacity) {}

  /// The cached response for (generation, request), refreshing its LRU
  /// position; nullopt on miss.
  [[nodiscard]] std::optional<std::string> get(std::uint64_t generation,
                                               const std::string& request);

  /// Memoize a rendered response (no-op when capacity is 0; evicts the
  /// least-recently-used entry when full).
  void put(std::uint64_t generation, const std::string& request,
           std::string response);

  /// Drop every entry of a generation other than `current` (called after a
  /// store swap; correctness never depends on it, memory reclamation does).
  void invalidate(std::uint64_t current);

  struct Counters {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::size_t entries = 0;
  };
  [[nodiscard]] Counters counters() const;

 private:
  struct Entry {
    std::uint64_t generation = 0;
    std::string key;  ///< composed generation + request key
    std::string response;
  };

  static std::string make_key(std::uint64_t generation,
                              const std::string& request);

  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::list<Entry> lru_;  ///< front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace unp::serve
