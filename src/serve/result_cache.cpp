#include "serve/result_cache.hpp"

#include <utility>

namespace unp::serve {

std::string ResultCache::make_key(std::uint64_t generation,
                                  const std::string& request) {
  // '\n' cannot appear inside a request line, so the composition is
  // injective.
  return std::to_string(generation) + "\n" + request;
}

std::optional<std::string> ResultCache::get(std::uint64_t generation,
                                            const std::string& request) {
  const std::string key = make_key(generation, request);
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->response;
}

void ResultCache::put(std::uint64_t generation, const std::string& request,
                      std::string response) {
  if (capacity_ == 0) return;
  const std::string key = make_key(generation, request);
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it != index_.end()) {  // racing renders of one request: keep newest
    it->second->response = std::move(response);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{generation, key, std::move(response)});
  index_.emplace(key, lru_.begin());
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
  }
}

void ResultCache::invalidate(std::uint64_t current) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->generation != current) {
      index_.erase(it->key);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
}

ResultCache::Counters ResultCache::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return Counters{hits_, misses_, lru_.size()};
}

}  // namespace unp::serve
