// Code adapters over the study's canonical protection models.
//
// The fixed classifier (outcome.hpp) answers the paper's SECDED/chipkill
// questions over observed 32-bit corruptions; these adapters lift the same
// two schemes into the pluggable Code interface so they line up in the
// engine's outcome tables next to the configurable Hamming/Hsiao/BCH/
// large-codeword codes — and so the classifier itself can be cross-checked
// against real decoding on every mask (tests/ecc/codes_test.cpp).
#pragma once

#include "ecc/chipkill.hpp"
#include "ecc/code.hpp"
#include "ecc/secded.hpp"

namespace unp::ecc {

/// The canonical Hsiao SECDED(72,64) singleton, evaluated by real decode.
class Secded7264Code final : public Code {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "secded72";
  }
  [[nodiscard]] CodeGeometry geometry() const noexcept override;
  [[nodiscard]] Verdict evaluate(
      std::span<const int> error_bits) const override;
};

/// The SSC-DSD chipkill outcome model over 4-bit symbols: 16 data symbols
/// (64 bits) plus 2 modeled check symbols.  Errors confined to one symbol
/// are repaired, two touched symbols are detected, three or more are
/// beyond the guarantee and modeled silent — exactly ChipkillModel's
/// classification, extended to check-symbol positions.
class ChipkillCode final : public Code {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "chipkill";
  }
  [[nodiscard]] CodeGeometry geometry() const noexcept override;
  [[nodiscard]] Verdict evaluate(
      std::span<const int> error_bits) const override;
};

}  // namespace unp::ecc
