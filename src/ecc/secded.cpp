#include "ecc/secded.hpp"

#include <bit>

#include "common/require.hpp"

namespace unp::ecc {

Secded7264::Secded7264() {
  // Enumerate odd-weight columns in a fixed order: all 56 weight-3 vectors
  // first, then weight-5 vectors until 64 columns are assigned.  Unit
  // vectors (weight 1) are reserved for the check bits themselves.
  int next = 0;
  for (int w : {3, 5}) {
    for (int v = 1; v < 256 && next < 64; ++v) {
      if (std::popcount(static_cast<unsigned>(v)) == w) {
        columns_[static_cast<std::size_t>(next++)] = static_cast<std::uint8_t>(v);
      }
    }
  }
  UNP_ENSURE(next == 64);

  col_index_.fill(-1);
  for (int i = 0; i < 64; ++i) {
    col_index_[columns_[static_cast<std::size_t>(i)]] = static_cast<std::int8_t>(i);
  }
}

const Secded7264& Secded7264::instance() {
  static const Secded7264 code;
  return code;
}

std::uint8_t Secded7264::encode(std::uint64_t data) const noexcept {
  std::uint8_t check = 0;
  std::uint64_t remaining = data;
  while (remaining != 0) {
    const int b = std::countr_zero(remaining);
    check = static_cast<std::uint8_t>(check ^ columns_[static_cast<std::size_t>(b)]);
    remaining &= remaining - 1;
  }
  return check;
}

Secded7264::DecodeResult Secded7264::decode(std::uint64_t data,
                                            std::uint8_t check) const noexcept {
  const auto syndrome = static_cast<std::uint8_t>(encode(data) ^ check);
  DecodeResult res;
  res.data = data;
  if (syndrome == 0) {
    res.action = Action::kClean;
    return res;
  }
  const int weight = std::popcount(static_cast<unsigned>(syndrome));
  if (weight % 2 == 0) {
    // Even non-zero syndrome: guaranteed-detected double (or even-count) error.
    res.action = Action::kDetected;
    return res;
  }
  if (weight == 1) {
    // Unit syndrome: the corresponding check bit itself flipped.
    res.action = Action::kCorrectedCheck;
    return res;
  }
  const std::int8_t bit = col_index_[syndrome];
  if (bit >= 0) {
    res.action = Action::kCorrectedData;
    res.corrected_bit = bit;
    res.data = data ^ (std::uint64_t{1} << bit);
    return res;
  }
  // Odd-weight syndrome matching no column: detected, uncorrectable.
  res.action = Action::kDetected;
  return res;
}

}  // namespace unp::ecc
