// GF(2^m) arithmetic for the BCH codes, m in [3, 16].
//
// Log/antilog tables over a fixed primitive polynomial per m (the standard
// minimal-weight primitives), built once per field and shared: BchCode
// instances for the same m reuse one table set.  Multiplication is two log
// lookups and a modular add; the exhaustive enumerator's syndrome updates
// and the Chien search both reduce to this.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

namespace unp::ecc {

class GaloisField {
 public:
  /// The shared field for 2^m; built on first use, immutable after.
  [[nodiscard]] static const GaloisField& get(int m);

  [[nodiscard]] int m() const noexcept { return m_; }
  /// Multiplicative group order, 2^m - 1 (= cyclic code length n).
  [[nodiscard]] int n() const noexcept { return n_; }

  /// alpha^e for e >= 0 (reduced mod n).
  [[nodiscard]] std::uint32_t alpha_pow(std::uint64_t e) const noexcept {
    return exp_[e % static_cast<std::uint64_t>(n_)];
  }
  /// discrete log of x != 0.
  [[nodiscard]] int log(std::uint32_t x) const noexcept { return log_[x]; }

  [[nodiscard]] std::uint32_t mul(std::uint32_t a,
                                  std::uint32_t b) const noexcept {
    if (a == 0 || b == 0) return 0;
    return exp_[(static_cast<std::uint64_t>(log_[a]) +
                 static_cast<std::uint64_t>(log_[b])) %
                static_cast<std::uint64_t>(n_)];
  }
  [[nodiscard]] std::uint32_t inv(std::uint32_t a) const noexcept {
    return exp_[static_cast<std::size_t>((n_ - log_[a]) % n_)];
  }

 private:
  explicit GaloisField(int m);

  int m_ = 0;
  int n_ = 0;
  std::vector<std::uint32_t> exp_;  ///< alpha^i, i in [0, n)
  std::vector<std::int32_t> log_;   ///< inverse table, log_[0] unused
};

}  // namespace unp::ecc
