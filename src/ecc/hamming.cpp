#include "ecc/hamming.hpp"

#include <bit>

#include "common/require.hpp"

namespace unp::ecc {

HammingCode::HammingCode(int data_bits) {
  UNP_REQUIRE(data_bits >= 4 && data_bits <= 4096);
  data_bits_ = data_bits;
  int r = 2;
  while ((1 << r) < data_bits + r + 1) ++r;
  position_checks_ = r;
  name_ = "hamming:" + std::to_string(data_bits);

  // Codeword layout per the library convention: data first, then the r
  // position checks, then the overall parity bit (position code 0).
  const int n = data_bits + r + 1;
  codes_.resize(static_cast<std::size_t>(n));
  std::uint32_t next = 3;
  for (int i = 0; i < data_bits; ++i) {
    while (std::has_single_bit(next)) ++next;
    codes_[static_cast<std::size_t>(i)] = next++;
  }
  for (int j = 0; j < r; ++j) {
    codes_[static_cast<std::size_t>(data_bits + j)] = std::uint32_t{1} << j;
  }
  codes_[static_cast<std::size_t>(n - 1)] = 0;

  std::uint32_t max_code = 0;
  for (const std::uint32_t c : codes_) max_code = c > max_code ? c : max_code;
  position_.assign(static_cast<std::size_t>(max_code) + 1, -1);
  for (int p = 0; p < n - 1; ++p) {
    position_[codes_[static_cast<std::size_t>(p)]] = p;
  }
}

CodeGeometry HammingCode::geometry() const noexcept {
  CodeGeometry g;
  g.data_bits = data_bits_;
  g.check_bits = position_checks_ + 1;
  g.codeword_bits = data_bits_ + g.check_bits;
  g.guaranteed_correct = 1;
  g.guaranteed_detect = 2;
  return g;
}

Verdict HammingCode::evaluate(std::span<const int> error_bits) const {
  std::uint32_t syndrome = 0;
  bool data_hit = false;
  for (const int p : error_bits) {
    syndrome ^= codes_[static_cast<std::size_t>(p)];
    data_hit = data_hit || p < data_bits_;
  }
  const bool parity_odd = error_bits.size() % 2 == 1;
  if (!parity_odd) {
    if (syndrome != 0) return Verdict::kDetectOnly;
    if (error_bits.empty()) return Verdict::kCorrect;
    // Even weight, zero syndrome, non-empty: a codeword pattern slipped
    // through.  (Check-only patterns cannot cancel — distinct unit codes —
    // so the data is always hit.)
    return Verdict::kSdc;
  }
  // Odd parity: the decoder corrects the single position the syndrome names.
  if (syndrome == 0) {
    // Blamed on the overall parity bit; data delivered unchanged.
    return data_hit ? Verdict::kMiscorrect : Verdict::kCorrect;
  }
  if (syndrome >= position_.size() || position_[syndrome] < 0) {
    return Verdict::kDetectOnly;  // syndrome names no existing position
  }
  const int fixed = position_[syndrome];
  if (error_bits.size() == 1 && error_bits[0] == fixed) return Verdict::kCorrect;
  // Wider pattern aliasing a single: the application's data is wrong unless
  // neither the real pattern nor the bogus fix touched a data bit.
  if (!data_hit && fixed >= data_bits_) return Verdict::kCorrect;
  return Verdict::kMiscorrect;
}

}  // namespace unp::ecc
