#include "ecc/gf2m.hpp"

#include <array>
#include <mutex>

#include "common/require.hpp"

namespace unp::ecc {
namespace {

/// Standard minimal-weight primitive polynomials, x^m term included
/// (index = m).
constexpr std::array<std::uint32_t, 17> kPrimitivePoly = {
    0,      0,      0,      0xB,    0x13,   0x25,    0x43,   0x89,  0x11D,
    0x211,  0x409,  0x805,  0x1053, 0x201B, 0x4443,  0x8003, 0x1100B,
};

}  // namespace

GaloisField::GaloisField(int m) : m_(m), n_((1 << m) - 1) {
  exp_.resize(static_cast<std::size_t>(n_));
  log_.assign(static_cast<std::size_t>(n_) + 1, 0);
  const std::uint32_t poly = kPrimitivePoly[static_cast<std::size_t>(m)];
  std::uint32_t x = 1;
  for (int i = 0; i < n_; ++i) {
    exp_[static_cast<std::size_t>(i)] = x;
    log_[x] = i;
    x <<= 1;
    if ((x >> m) != 0) x ^= poly;
  }
  UNP_ENSURE(x == 1);  // alpha has full multiplicative order: poly primitive
}

const GaloisField& GaloisField::get(int m) {
  UNP_REQUIRE(m >= 3 && m <= 16);
  static std::array<std::unique_ptr<GaloisField>, 17> fields;
  static std::mutex mutex;
  std::lock_guard<std::mutex> lock(mutex);
  auto& slot = fields[static_cast<std::size_t>(m)];
  if (slot == nullptr) slot.reset(new GaloisField(m));
  return *slot;
}

}  // namespace unp::ecc
