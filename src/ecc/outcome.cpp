#include "ecc/outcome.hpp"

namespace unp::ecc {

const char* to_string(EccOutcome outcome) noexcept {
  switch (outcome) {
    case EccOutcome::kNoError: return "no-error";
    case EccOutcome::kCorrected: return "corrected";
    case EccOutcome::kDetected: return "detected";
    case EccOutcome::kMiscorrected: return "miscorrected";
    case EccOutcome::kUndetected: return "undetected";
  }
  return "unknown";
}

EccOutcome parity_outcome(Word expected, Word observed) noexcept {
  if (expected == observed) return EccOutcome::kNoError;
  const int flips = flipped_bit_count(expected, observed);
  return (flips % 2 == 1) ? EccOutcome::kDetected : EccOutcome::kUndetected;
}

EccOutcome secded_outcome(Word expected, Word observed) noexcept {
  if (expected == observed) return EccOutcome::kNoError;
  const auto original = static_cast<std::uint64_t>(expected);
  const auto corrupted = static_cast<std::uint64_t>(observed);

  const Secded7264& code = Secded7264::instance();
  const std::uint8_t check = code.encode(original);
  const Secded7264::DecodeResult res = code.decode(corrupted, check);

  switch (res.action) {
    case Secded7264::Action::kClean:
      return EccOutcome::kUndetected;  // corrupted word decoded as valid
    case Secded7264::Action::kCorrectedCheck:
      // The decoder blamed a check bit; the data stays corrupted: silent.
      return EccOutcome::kMiscorrected;
    case Secded7264::Action::kCorrectedData:
      return res.data == original ? EccOutcome::kCorrected
                                  : EccOutcome::kMiscorrected;
    case Secded7264::Action::kDetected:
      return EccOutcome::kDetected;
  }
  return EccOutcome::kDetected;
}

EccOutcome chipkill_outcome(Word expected, Word observed) noexcept {
  if (expected == observed) return EccOutcome::kNoError;
  const auto error_mask =
      static_cast<std::uint64_t>(expected ^ observed);
  switch (ChipkillModel::classify(error_mask)) {
    case ChipkillModel::Outcome::kClean: return EccOutcome::kNoError;
    case ChipkillModel::Outcome::kCorrected: return EccOutcome::kCorrected;
    case ChipkillModel::Outcome::kDetected: return EccOutcome::kDetected;
    case ChipkillModel::Outcome::kUndetected: return EccOutcome::kUndetected;
  }
  return EccOutcome::kDetected;
}

void OutcomeCounts::add(EccOutcome outcome) noexcept {
  switch (outcome) {
    case EccOutcome::kNoError: ++no_error; break;
    case EccOutcome::kCorrected: ++corrected; break;
    case EccOutcome::kDetected: ++detected; break;
    case EccOutcome::kMiscorrected: ++miscorrected; break;
    case EccOutcome::kUndetected: ++undetected; break;
  }
}

}  // namespace unp::ecc
