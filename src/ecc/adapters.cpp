#include "ecc/adapters.hpp"

#include <bit>

namespace unp::ecc {

CodeGeometry Secded7264Code::geometry() const noexcept {
  CodeGeometry g;
  g.data_bits = 64;
  g.check_bits = 8;
  g.codeword_bits = 72;
  g.guaranteed_correct = 1;
  g.guaranteed_detect = 2;
  return g;
}

Verdict Secded7264Code::evaluate(std::span<const int> error_bits) const {
  // The code is linear, so evaluate against the all-zero codeword:
  // encode(0) == 0, and the corrupted word is just the error pattern.
  std::uint64_t data_mask = 0;
  std::uint8_t check_mask = 0;
  for (const int p : error_bits) {
    if (p < 64) {
      data_mask |= std::uint64_t{1} << p;
    } else {
      check_mask = static_cast<std::uint8_t>(check_mask | (1u << (p - 64)));
    }
  }
  const Secded7264& code = Secded7264::instance();
  const Secded7264::DecodeResult res = code.decode(data_mask, check_mask);
  switch (res.action) {
    case Secded7264::Action::kClean:
      return error_bits.empty()
                 ? Verdict::kCorrect
                 : (data_mask != 0 ? Verdict::kSdc : Verdict::kCorrect);
    case Secded7264::Action::kCorrectedData:
      return res.data == 0 ? Verdict::kCorrect : Verdict::kMiscorrect;
    case Secded7264::Action::kCorrectedCheck:
      // Data delivered unchanged: fine iff no data bit actually flipped.
      return data_mask == 0 ? Verdict::kCorrect : Verdict::kMiscorrect;
    case Secded7264::Action::kDetected:
      return Verdict::kDetectOnly;
  }
  return Verdict::kDetectOnly;
}

CodeGeometry ChipkillCode::geometry() const noexcept {
  CodeGeometry g;
  g.data_bits = 64;
  g.check_bits = 2 * ChipkillModel::kSymbolBits;
  g.codeword_bits = g.data_bits + g.check_bits;
  g.guaranteed_correct = ChipkillModel::kSymbolBits;  // one whole symbol
  g.guaranteed_detect = 2;  // any two-symbol pattern is detected
  return g;
}

Verdict ChipkillCode::evaluate(std::span<const int> error_bits) const {
  if (error_bits.empty()) return Verdict::kCorrect;
  std::uint32_t symbols = 0;
  bool data_hit = false;
  for (const int p : error_bits) {
    symbols |= std::uint32_t{1} << (p / ChipkillModel::kSymbolBits);
    data_hit = data_hit || p < 64;
  }
  const int touched = std::popcount(symbols);
  if (touched <= 1) return Verdict::kCorrect;
  if (touched == 2) return Verdict::kDetectOnly;
  // Beyond SSC-DSD's guarantee: modeled as undetected (worst case for the
  // SDC analysis, matching ChipkillModel), silent only if data was hit.
  return data_hit ? Verdict::kSdc : Verdict::kCorrect;
}

}  // namespace unp::ecc
