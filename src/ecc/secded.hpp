// Hsiao SECDED(72,64) code.
//
// The prototype machine had no ECC; the paper repeatedly asks "what would a
// SECDED-protected system have seen?" (Sections III-C/D): double-bit word
// errors would be *detected* (crash), >2-bit errors may escape as silent
// data corruption, and single-bit errors would be silently corrected.  This
// module implements a real odd-weight-column (Hsiao) SECDED code so those
// questions are answered by decoding, not by assumption.
//
// Construction: 8 check bits; the 64 data columns of the parity-check
// matrix are distinct odd-weight-(3,5) 8-bit vectors, the 8 check columns
// are the unit vectors.  Properties: every single-bit error yields an
// odd-weight syndrome equal to its column (correctable); every double-bit
// error yields a non-zero even-weight syndrome (detectable, uncorrectable);
// triple errors alias either a column (miscorrection) or nothing (detected).
#pragma once

#include <array>
#include <cstdint>

namespace unp::ecc {

class Secded7264 {
 public:
  /// The canonical Hsiao construction used by this library.
  [[nodiscard]] static const Secded7264& instance();

  /// Check byte for a 64-bit data word.
  [[nodiscard]] std::uint8_t encode(std::uint64_t data) const noexcept;

  enum class Action : std::uint8_t {
    kClean,           ///< zero syndrome
    kCorrectedData,   ///< single data-bit flip corrected
    kCorrectedCheck,  ///< single check-bit flip corrected (data untouched)
    kDetected         ///< uncorrectable error signalled
  };

  struct DecodeResult {
    Action action = Action::kClean;
    std::uint64_t data = 0;   ///< post-correction data
    int corrected_bit = -1;   ///< data-bit index for kCorrectedData
  };

  /// Decode a received (data, check) pair.
  [[nodiscard]] DecodeResult decode(std::uint64_t data,
                                    std::uint8_t check) const noexcept;

  /// Column of the parity-check matrix for data bit `i` (testing hook).
  [[nodiscard]] std::uint8_t data_column(int i) const noexcept {
    return columns_[static_cast<std::size_t>(i)];
  }

 private:
  Secded7264();

  std::array<std::uint8_t, 64> columns_{};   ///< data-bit H columns
  std::array<std::int8_t, 256> col_index_{}; ///< syndrome -> data bit (or -1)
};

}  // namespace unp::ecc
