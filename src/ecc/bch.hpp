// Binary BCH codes over GF(2^m), shortened to the requested payload.
//
// BchCode(d, t) picks the smallest field whose cyclic length fits d data
// bits plus the generator's parity bits (deg lcm of the minimal polynomials
// of alpha^1..alpha^2t), then shortens: codeword positions [0, d + deg)
// carry the transmitted word, the remaining cyclic positions are known
// zero.  The decoder is the standard bounded-distance chain — syndromes,
// Berlekamp–Massey, Chien search — plus the re-encode check real
// controllers apply: a located error set whose syndromes do not reproduce
// the received ones, a locator with missing/extra roots, or a root in the
// shortened-away region all demote "corrected" to "detected".
//
// Evaluation fast path: a pattern of weight <= t is always corrected
// exactly (unique decoding), so the full decode chain only runs for wider
// patterns — which is what keeps the population replay cheap even for the
// large-codeword codes that embed this decoder (large.hpp).
#pragma once

#include <cstdint>
#include <vector>

#include "ecc/code.hpp"
#include "ecc/gf2m.hpp"

namespace unp::ecc {

/// Bounded-distance decode core over the shortened cyclic code: shared by
/// BchCode and the large-codeword schemes.
class BchDecoder {
 public:
  /// Positions [0, shortened_bits) are transmitted; requires
  /// shortened_bits <= 2^m - 1 and 2t < 2^m - 1.
  BchDecoder(int m, int shortened_bits, int correct_bits);

  /// deg(g): parity bits the generator adds.
  [[nodiscard]] int parity_bits() const noexcept { return parity_bits_; }
  [[nodiscard]] int t() const noexcept { return t_; }

  enum class Status : std::uint8_t {
    kClean,      ///< all syndromes zero: received word is a codeword
    kCorrected,  ///< located <= t errors, re-encode check passed
    kFailed,     ///< uncorrectable: signalled
  };
  struct Result {
    Status status = Status::kClean;
    std::vector<int> corrected;  ///< located positions (kCorrected only)
  };

  /// Run the full decode chain on the error pattern `error_bits`.
  [[nodiscard]] Result decode(std::span<const int> error_bits) const;

  /// True when every syndrome of `error_bits` is zero (pattern is a
  /// codeword of the shortened code).
  [[nodiscard]] bool is_codeword(std::span<const int> error_bits) const;

 private:
  void syndromes(std::span<const int> error_bits,
                 std::vector<std::uint32_t>& out) const;

  const GaloisField& field_;
  int shortened_bits_ = 0;
  int t_ = 0;
  int parity_bits_ = 0;
};

/// Number of parity bits deg(g) a t-correcting BCH over GF(2^m) needs.
[[nodiscard]] int bch_parity_bits(int m, int correct_bits);

class BchCode final : public Code {
 public:
  BchCode(int data_bits, int correct_bits);

  [[nodiscard]] std::string_view name() const noexcept override {
    return name_;
  }
  [[nodiscard]] CodeGeometry geometry() const noexcept override;
  [[nodiscard]] Verdict evaluate(
      std::span<const int> error_bits) const override;

  [[nodiscard]] int field_m() const noexcept { return m_; }

 private:
  std::string name_;
  int data_bits_ = 0;
  int m_ = 0;
  std::unique_ptr<BchDecoder> decoder_;
};

}  // namespace unp::ecc
