#include "ecc/engine.hpp"

#include <algorithm>

#include "common/require.hpp"

namespace unp::ecc {

std::uint64_t binomial(int n, int k) noexcept {
  if (k < 0 || n < 0 || k > n) return 0;
  if (k > n - k) k = n - k;
  std::uint64_t result = 1;
  for (int i = 1; i <= k; ++i) {
    const std::uint64_t factor = static_cast<std::uint64_t>(n - k + i);
    // result * factor / i is exact; saturate (conservatively, before the
    // division can pull the product back down) on u64 overflow.  Callers
    // treat UINT64_MAX as "too big to enumerate".
    if (result > UINT64_MAX / factor) return UINT64_MAX;
    result = result * factor / static_cast<std::uint64_t>(i);
  }
  return result;
}

void unrank_combination(std::uint64_t rank, int n, int k, std::span<int> out) {
  UNP_REQUIRE(static_cast<int>(out.size()) == k);
  UNP_REQUIRE(rank < binomial(n, k));
  int x = 0;
  for (int i = 0; i < k; ++i) {
    // Skip leading elements whose block of combinations lies before rank.
    for (;;) {
      const std::uint64_t block = binomial(n - 1 - x, k - 1 - i);
      if (rank < block) break;
      rank -= block;
      ++x;
    }
    out[static_cast<std::size_t>(i)] = x;
    ++x;
  }
}

bool next_combination(std::span<int> combo, int n) noexcept {
  const int k = static_cast<int>(combo.size());
  int i = k - 1;
  while (i >= 0 && combo[static_cast<std::size_t>(i)] == n - k + i) --i;
  if (i < 0) return false;
  ++combo[static_cast<std::size_t>(i)];
  for (int j = i + 1; j < k; ++j) {
    combo[static_cast<std::size_t>(j)] =
        combo[static_cast<std::size_t>(j - 1)] + 1;
  }
  return true;
}

VerdictCounts ExhaustiveResult::total() const noexcept {
  VerdictCounts sum;
  for (const ExhaustiveWeightResult& w : weights) sum.add(w.counts);
  return sum;
}

std::uint64_t ExhaustiveResult::total_patterns() const noexcept {
  std::uint64_t sum = 0;
  for (const ExhaustiveWeightResult& w : weights) sum += w.patterns;
  return sum;
}

ExhaustiveResult evaluate_exhaustive(const Code& code, int max_weight,
                                     ThreadPool& pool) {
  const CodeGeometry geom = code.geometry();
  const int n = geom.codeword_bits;
  UNP_REQUIRE(max_weight >= 1 && max_weight <= n);

  ExhaustiveResult result;
  result.code = std::string(code.name());
  result.codeword_bits = n;
  result.max_weight = max_weight;

  for (int k = 1; k <= max_weight; ++k) {
    const std::uint64_t total = binomial(n, k);
    UNP_REQUIRE(total < UINT64_MAX);  // not saturated: workload is countable

    // Cut the rank space into contiguous stripes.  More stripes than
    // workers keeps the pool busy when verdict cost varies across the
    // space (e.g. BCH's expensive >t patterns cluster); counts are
    // additive u64s, so the stripe count never changes the totals.
    const std::uint64_t max_stripes =
        std::max<std::uint64_t>(1, pool.thread_count() * 8);
    const std::uint64_t stripes = std::min(total, max_stripes);
    const std::uint64_t per_stripe = total / stripes;
    const std::uint64_t remainder = total % stripes;

    std::vector<VerdictCounts> stripe_counts(
        static_cast<std::size_t>(stripes));
    pool.parallel_for(
        static_cast<std::size_t>(stripes), [&](std::size_t s) {
          // Stripe s covers ranks [first, first + span): the first
          // `remainder` stripes take one extra pattern each.
          const std::uint64_t first =
              s * per_stripe + std::min<std::uint64_t>(s, remainder);
          const std::uint64_t span = per_stripe + (s < remainder ? 1 : 0);
          std::vector<int> combo(static_cast<std::size_t>(k));
          unrank_combination(first, n, k, combo);
          VerdictCounts local;
          for (std::uint64_t i = 0; i < span; ++i) {
            local.add(code.evaluate(combo));
            if (i + 1 < span) next_combination(combo, n);
          }
          stripe_counts[s] = local;
        });

    ExhaustiveWeightResult w;
    w.weight = k;
    w.patterns = total;
    for (const VerdictCounts& c : stripe_counts) w.counts.add(c);
    result.weights.push_back(w);
  }
  return result;
}

const char* to_string(PopulationClass c) noexcept {
  switch (c) {
    case PopulationClass::kSingleBit: return "single";
    case PopulationClass::kDoubleBit: return "double";
    case PopulationClass::kFewBit: return "few";
    case PopulationClass::kManyBit: return "many";
  }
  return "unknown";
}

VerdictCounts PopulationResult::total() const noexcept {
  VerdictCounts sum;
  for (const VerdictCounts& c : by_class) sum.add(c);
  return sum;
}

double PopulationResult::silent_fraction() const noexcept {
  return faults > 0
             ? static_cast<double>(total().silent()) / static_cast<double>(faults)
             : 0.0;
}

PopulationResult evaluate_population(const Code& code,
                                     std::span<const Word> masks,
                                     ThreadPool& pool) {
  // Scanner masks occupy 32 bits; the code's data field must hold them.
  UNP_REQUIRE(code.geometry().data_bits >= 32);

  PopulationResult result;
  result.code = std::string(code.name());

  const std::size_t stripes =
      std::max<std::size_t>(1, std::min(masks.size(), pool.thread_count() * 4));
  const std::size_t per_stripe = masks.size() / stripes;
  const std::size_t remainder = masks.size() % stripes;

  struct StripeTally {
    std::array<VerdictCounts, kPopulationClassCount> by_class;
    std::uint64_t faults = 0;
  };
  std::vector<StripeTally> tallies(stripes);
  pool.parallel_for(stripes, [&](std::size_t s) {
    const std::size_t first = s * per_stripe + std::min(s, remainder);
    const std::size_t span = per_stripe + (s < remainder ? 1 : 0);
    StripeTally local;
    for (std::size_t i = first; i < first + span; ++i) {
      const Word mask = masks[i];
      if (mask == 0) continue;  // no corruption to evaluate
      const std::vector<int> bits = set_bit_positions(mask);
      const PopulationClass cls =
          classify_population_bits(static_cast<int>(bits.size()));
      local.by_class[static_cast<std::size_t>(cls)].add(code.evaluate(bits));
      ++local.faults;
    }
    tallies[s] = local;
  });

  for (const StripeTally& t : tallies) {
    result.faults += t.faults;
    for (int c = 0; c < kPopulationClassCount; ++c) {
      result.by_class[static_cast<std::size_t>(c)].add(
          t.by_class[static_cast<std::size_t>(c)]);
    }
  }
  return result;
}

}  // namespace unp::ecc
