// Generalized odd-weight-column (Hsiao) SEC-DED code, Hsiao(d/k).
//
// The canonical Secded7264 (secded.hpp) is the d=64, k=8 instance of this
// family; this class builds the same construction for any payload width:
// the d data columns of the parity-check matrix are the numerically
// smallest distinct odd-weight-(>=3) k-bit vectors enumerated in
// (weight, value) order, the k check columns are the unit vectors.  The
// enumeration order is pinned so that Hsiao(64/8) is column-for-column
// identical to Secded7264 (asserted by tests/ecc/codes_test.cpp) and every
// evaluation result is reproducible across builds.
//
// Properties (any d, k): single-bit errors give an odd-weight syndrome
// equal to their column (corrected); double-bit errors give a non-zero
// even-weight syndrome (detected); wider errors alias columns
// (miscorrection) or cancel entirely (SDC).
#pragma once

#include <cstdint>
#include <vector>

#include "ecc/code.hpp"

namespace unp::ecc {

class HsiaoCode final : public Code {
 public:
  /// `check_bits == 0` auto-sizes: the smallest k whose odd-weight-(>=3)
  /// column pool covers `data_bits`.  Throws ContractViolation when the
  /// requested k cannot accommodate d (pool exhausted) or k > 20.
  explicit HsiaoCode(int data_bits, int check_bits = 0);

  /// Smallest k with 2^(k-1) - k >= d odd-weight non-unit columns.
  [[nodiscard]] static int min_check_bits(int data_bits) noexcept;

  [[nodiscard]] std::string_view name() const noexcept override {
    return name_;
  }
  [[nodiscard]] CodeGeometry geometry() const noexcept override;
  [[nodiscard]] Verdict evaluate(
      std::span<const int> error_bits) const override;

  /// Parity-check column of data bit `i` (testing hook mirroring
  /// Secded7264::data_column).
  [[nodiscard]] std::uint32_t data_column(int i) const noexcept {
    return columns_[static_cast<std::size_t>(i)];
  }

 private:
  std::string name_;
  int data_bits_ = 0;
  int check_bits_ = 0;
  std::vector<std::uint32_t> columns_;  ///< data-bit H columns
  std::vector<std::int32_t> col_index_; ///< syndrome -> data bit (or -1)
};

}  // namespace unp::ecc
