// Code registry: spec strings -> Code instances.
//
// The spec vocabulary (shared by unp_ecc, the report section, the perf
// gate, and the tests):
//
//   secded72          the canonical Hsiao SECDED(72,64) singleton
//   chipkill          SSC-DSD symbol code over x4 devices
//   hamming:D         extended Hamming SEC-DED, D data bits
//   hsiao:D/K         odd-weight-column SEC-DED, K=0 auto-sizes
//   bch:D/T           t-error-correcting binary BCH, D data bits
//   large:SIZE/T      EDC-first large-codeword scheme, SIZE in
//                     {512B, 1KB, 4KB}; /T optional (default 8)
//
// make_code returns nullptr and fills *error for a malformed spec so the
// CLI can exit 2 with a field-naming diagnostic instead of throwing.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "ecc/code.hpp"

namespace unp::ecc {

/// Build the code a spec names; nullptr + *error on a malformed spec.
[[nodiscard]] std::unique_ptr<Code> make_code(std::string_view spec,
                                              std::string* error = nullptr);

/// The default evaluation sweep, in canonical report order: the two paper
/// schemes, then the configurable families at the study's word width, then
/// the large-codeword points.
[[nodiscard]] const std::vector<std::string>& default_code_specs();

}  // namespace unp::ecc
