#include "ecc/bch.hpp"

#include <algorithm>
#include <set>

#include "common/require.hpp"

namespace unp::ecc {

int bch_parity_bits(int m, int correct_bits) {
  const int n = (1 << m) - 1;
  std::set<int> union_of_cosets;
  for (int j = 1; j <= 2 * correct_bits; ++j) {
    int e = j % n;
    for (int k = 0; k < m; ++k) {
      union_of_cosets.insert(e);
      e = (2 * e) % n;
    }
  }
  return static_cast<int>(union_of_cosets.size());
}

BchDecoder::BchDecoder(int m, int shortened_bits, int correct_bits)
    : field_(GaloisField::get(m)),
      shortened_bits_(shortened_bits),
      t_(correct_bits),
      parity_bits_(bch_parity_bits(m, correct_bits)) {
  UNP_REQUIRE(correct_bits >= 1 && 2 * correct_bits < field_.n());
  UNP_REQUIRE(shortened_bits >= 1 && shortened_bits <= field_.n());
}

void BchDecoder::syndromes(std::span<const int> error_bits,
                           std::vector<std::uint32_t>& out) const {
  out.assign(static_cast<std::size_t>(2 * t_), 0);
  for (const int p : error_bits) {
    for (int j = 1; j <= 2 * t_; ++j) {
      out[static_cast<std::size_t>(j - 1)] ^= field_.alpha_pow(
          static_cast<std::uint64_t>(j) * static_cast<std::uint64_t>(p));
    }
  }
}

bool BchDecoder::is_codeword(std::span<const int> error_bits) const {
  std::vector<std::uint32_t> s;
  syndromes(error_bits, s);
  return std::all_of(s.begin(), s.end(),
                     [](std::uint32_t v) { return v == 0; });
}

BchDecoder::Result BchDecoder::decode(std::span<const int> error_bits) const {
  Result res;
  std::vector<std::uint32_t> s;
  syndromes(error_bits, s);
  if (std::all_of(s.begin(), s.end(),
                  [](std::uint32_t v) { return v == 0; })) {
    res.status = Status::kClean;
    return res;
  }

  // Berlekamp–Massey: the minimal LFSR generating S_1..S_2t.
  std::vector<std::uint32_t> c{1};  // error locator, c[0] = 1
  std::vector<std::uint32_t> b{1};
  int big_l = 0;
  int shift = 1;
  std::uint32_t b_disc = 1;
  for (int i = 0; i < 2 * t_; ++i) {
    std::uint32_t d = s[static_cast<std::size_t>(i)];
    for (int k = 1; k <= big_l; ++k) {
      if (k < static_cast<int>(c.size())) {
        d ^= field_.mul(c[static_cast<std::size_t>(k)],
                        s[static_cast<std::size_t>(i - k)]);
      }
    }
    if (d == 0) {
      ++shift;
      continue;
    }
    const std::uint32_t coef = field_.mul(d, field_.inv(b_disc));
    std::vector<std::uint32_t> next = c;
    if (next.size() < b.size() + static_cast<std::size_t>(shift)) {
      next.resize(b.size() + static_cast<std::size_t>(shift), 0);
    }
    for (std::size_t k = 0; k < b.size(); ++k) {
      next[k + static_cast<std::size_t>(shift)] ^= field_.mul(coef, b[k]);
    }
    if (2 * big_l <= i) {
      b = c;
      b_disc = d;
      big_l = i + 1 - big_l;
      shift = 1;
    } else {
      ++shift;
    }
    c = std::move(next);
  }
  while (!c.empty() && c.back() == 0) c.pop_back();
  const int degree = static_cast<int>(c.size()) - 1;
  if (big_l > t_ || degree != big_l) {
    res.status = Status::kFailed;
    return res;
  }

  // Chien search over the FULL cyclic length: a root mapping to a
  // shortened-away position means the "error" lies in bits known to be
  // zero, which a shortened decoder reports as failure.
  const int n = field_.n();
  for (int p = 0; p < n; ++p) {
    // sigma(alpha^{-p}) == 0 <=> p is an error location.
    const std::uint32_t x =
        field_.alpha_pow(static_cast<std::uint64_t>(n - p % n));
    std::uint32_t acc = 0;
    for (std::size_t k = c.size(); k-- > 0;) {
      acc = field_.mul(acc, x) ^ c[k];
    }
    if (acc == 0) {
      if (p >= shortened_bits_ ||
          static_cast<int>(res.corrected.size()) == big_l) {
        res.status = Status::kFailed;
        return res;
      }
      res.corrected.push_back(p);
    }
  }
  if (static_cast<int>(res.corrected.size()) != big_l) {
    res.status = Status::kFailed;
    return res;
  }

  // Re-encode check: the located set must reproduce the received syndromes.
  std::vector<std::uint32_t> located;
  syndromes(res.corrected, located);
  if (located != s) {
    res.status = Status::kFailed;
    res.corrected.clear();
    return res;
  }
  res.status = Status::kCorrected;
  return res;
}

BchCode::BchCode(int data_bits, int correct_bits) {
  UNP_REQUIRE(data_bits >= 4 && data_bits <= 8192);
  UNP_REQUIRE(correct_bits >= 1 && correct_bits <= 16);
  data_bits_ = data_bits;
  for (int m = 3; m <= 16; ++m) {
    const int n = (1 << m) - 1;
    if (2 * correct_bits >= n) continue;
    const int parity = bch_parity_bits(m, correct_bits);
    if (data_bits + parity <= n) {
      m_ = m;
      decoder_ = std::make_unique<BchDecoder>(m, data_bits + parity,
                                              correct_bits);
      break;
    }
  }
  UNP_REQUIRE(decoder_ != nullptr);
  name_ = "bch:" + std::to_string(data_bits) + "/" +
          std::to_string(correct_bits);
}

CodeGeometry BchCode::geometry() const noexcept {
  CodeGeometry g;
  g.data_bits = data_bits_;
  g.check_bits = decoder_->parity_bits();
  g.codeword_bits = data_bits_ + g.check_bits;
  g.guaranteed_correct = decoder_->t();
  // Beyond t a pattern may alias another codeword's decoding sphere, so
  // nothing wider is guaranteed to be signalled.
  g.guaranteed_detect = decoder_->t();
  return g;
}

Verdict BchCode::evaluate(std::span<const int> error_bits) const {
  if (error_bits.empty()) return Verdict::kCorrect;
  if (static_cast<int>(error_bits.size()) <= decoder_->t()) {
    return Verdict::kCorrect;  // unique decoding: located exactly
  }
  const BchDecoder::Result res = decoder_->decode(error_bits);
  const auto data_touched = [this](std::span<const int> bits) {
    for (const int p : bits) {
      if (p < data_bits_) return true;
    }
    return false;
  };
  switch (res.status) {
    case BchDecoder::Status::kClean:
      return data_touched(error_bits) ? Verdict::kSdc : Verdict::kCorrect;
    case BchDecoder::Status::kFailed:
      return Verdict::kDetectOnly;
    case BchDecoder::Status::kCorrected: {
      // Residual = true pattern XOR the decoder's fix; the application is
      // wrong iff the residual touches a data bit.
      std::vector<int> residual;
      std::set_symmetric_difference(error_bits.begin(), error_bits.end(),
                                    res.corrected.begin(),
                                    res.corrected.end(),
                                    std::back_inserter(residual));
      if (residual.empty()) return Verdict::kCorrect;
      return data_touched(residual) ? Verdict::kMiscorrect : Verdict::kCorrect;
    }
  }
  return Verdict::kDetectOnly;
}

}  // namespace unp::ecc
