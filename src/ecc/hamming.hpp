// Extended Hamming SEC-DED code, Hamming(d).
//
// The classic construction mat_ecc_ram calls "hamming 64/8": r position
// check bits with 2^r >= d + r + 1 plus one overall parity bit.  Each
// codeword position carries a position code (data bits take the
// non-power-of-two integers >= 3 in ascending order, check bit j takes
// 2^j, the overall parity bit takes 0); the syndrome of an error pattern
// is the XOR of its position codes and the parity of the pattern's weight
// disambiguates single from double errors:
//
//   parity odd              -> decoder assumes a single error and flips the
//                              position the syndrome names (miscorrection
//                              when the real pattern was wider);
//   parity even, syndrome!=0 -> double error, detected;
//   parity even, syndrome==0 -> valid word (silent when the pattern was a
//                              codeword).
//
// Unlike Hsiao's odd-weight columns, the Hamming syndrome space is dense,
// so wide patterns alias correctable singles more often — the measurable
// reason Hsiao replaced it in memory controllers, visible directly in
// `unp_ecc --exhaustive` miscorrection columns.
#pragma once

#include <cstdint>
#include <vector>

#include "ecc/code.hpp"

namespace unp::ecc {

class HammingCode final : public Code {
 public:
  explicit HammingCode(int data_bits);

  [[nodiscard]] std::string_view name() const noexcept override {
    return name_;
  }
  [[nodiscard]] CodeGeometry geometry() const noexcept override;
  [[nodiscard]] Verdict evaluate(
      std::span<const int> error_bits) const override;

 private:
  std::string name_;
  int data_bits_ = 0;
  int position_checks_ = 0;  ///< r (excludes the overall parity bit)
  std::vector<std::uint32_t> codes_;     ///< position code per codeword bit
  std::vector<std::int32_t> position_;   ///< position code -> codeword bit
};

}  // namespace unp::ecc
