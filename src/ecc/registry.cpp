#include "ecc/registry.hpp"

#include <charconv>

#include "ecc/adapters.hpp"
#include "ecc/bch.hpp"
#include "ecc/hamming.hpp"
#include "ecc/hsiao.hpp"
#include "ecc/large.hpp"

namespace unp::ecc {
namespace {

void set_error(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
}

/// Parse a positive decimal integer occupying the whole of `text`.
bool parse_int(std::string_view text, int* out) {
  int value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size() || value <= 0) {
    return false;
  }
  *out = value;
  return true;
}

}  // namespace

const char* to_string(Verdict verdict) noexcept {
  switch (verdict) {
    case Verdict::kCorrect: return "correct";
    case Verdict::kMiscorrect: return "miscorrect";
    case Verdict::kDetectOnly: return "detect_only";
    case Verdict::kSdc: return "sdc";
  }
  return "unknown";
}

std::unique_ptr<Code> make_code(std::string_view spec, std::string* error) {
  try {
    if (spec == "secded72") return std::make_unique<Secded7264Code>();
    if (spec == "chipkill") return std::make_unique<ChipkillCode>();

    const std::size_t colon = spec.find(':');
    if (colon == std::string_view::npos) {
      set_error(error, "unknown code spec '" + std::string(spec) +
                           "' (expected secded72, chipkill, hamming:D, "
                           "hsiao:D/K, bch:D/T, or large:SIZE/T)");
      return nullptr;
    }
    const std::string_view family = spec.substr(0, colon);
    const std::string_view params = spec.substr(colon + 1);
    const std::size_t slash = params.find('/');
    const std::string_view first =
        slash == std::string_view::npos ? params : params.substr(0, slash);
    const std::string_view second =
        slash == std::string_view::npos ? std::string_view{}
                                        : params.substr(slash + 1);

    if (family == "hamming") {
      int d = 0;
      if (slash != std::string_view::npos || !parse_int(first, &d)) {
        set_error(error, "bad hamming spec '" + std::string(spec) +
                             "' (expected hamming:D, D a positive integer)");
        return nullptr;
      }
      return std::make_unique<HammingCode>(d);
    }
    if (family == "hsiao") {
      int d = 0;
      int k = 0;
      if (!parse_int(first, &d) ||
          (slash != std::string_view::npos && !parse_int(second, &k))) {
        set_error(error, "bad hsiao spec '" + std::string(spec) +
                             "' (expected hsiao:D or hsiao:D/K)");
        return nullptr;
      }
      return std::make_unique<HsiaoCode>(d, k);
    }
    if (family == "bch") {
      int d = 0;
      int t = 0;
      if (!parse_int(first, &d) || slash == std::string_view::npos ||
          !parse_int(second, &t)) {
        set_error(error, "bad bch spec '" + std::string(spec) +
                             "' (expected bch:D/T)");
        return nullptr;
      }
      return std::make_unique<BchCode>(d, t);
    }
    if (family == "large") {
      int block_bytes = 0;
      if (first == "512B") {
        block_bytes = 512;
      } else if (first == "1KB") {
        block_bytes = 1024;
      } else if (first == "4KB") {
        block_bytes = 4096;
      } else {
        set_error(error, "bad large spec '" + std::string(spec) +
                             "' (size must be 512B, 1KB, or 4KB)");
        return nullptr;
      }
      int t = 8;
      if (slash != std::string_view::npos && !parse_int(second, &t)) {
        set_error(error, "bad large spec '" + std::string(spec) +
                             "' (expected large:SIZE or large:SIZE/T)");
        return nullptr;
      }
      return std::make_unique<LargeBlockCode>(block_bytes, t);
    }

    set_error(error, "unknown code family '" + std::string(family) +
                         "' (expected hamming, hsiao, bch, or large)");
    return nullptr;
  } catch (const std::exception& e) {
    set_error(error, "invalid parameters in code spec '" + std::string(spec) +
                         "': " + e.what());
    return nullptr;
  }
}

const std::vector<std::string>& default_code_specs() {
  static const std::vector<std::string> kSpecs = {
      "secded72",  "chipkill",    "hamming:64", "hsiao:64/8",
      "bch:64/2",  "large:512B/8", "large:4KB/8",
  };
  return kSpecs;
}

}  // namespace unp::ecc
