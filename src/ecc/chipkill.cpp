#include "ecc/chipkill.hpp"

#include <bit>

namespace unp::ecc {

int ChipkillModel::symbols_touched(std::uint64_t error_mask) noexcept {
  int count = 0;
  for (int s = 0; s < kSymbols; ++s) {
    const std::uint64_t symbol_mask = 0xFULL << (s * kSymbolBits);
    if (error_mask & symbol_mask) ++count;
  }
  return count;
}

ChipkillModel::Outcome ChipkillModel::classify(std::uint64_t error_mask) noexcept {
  if (error_mask == 0) return Outcome::kClean;
  switch (symbols_touched(error_mask)) {
    case 1: return Outcome::kCorrected;
    case 2: return Outcome::kDetected;
    default: return Outcome::kUndetected;
  }
}

}  // namespace unp::ecc
