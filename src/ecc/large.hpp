// Large-codeword ECC with an EDC-first fast path (512B / 1KB / 4KB).
//
// The Ramulator2_ECC design point: amortize redundancy over a whole block
// instead of per 64-bit word.  A block frame is
//
//   [ data (block bytes) | EDC: CRC-32 of the data | BCH parity over all ]
//
// and the read path is EDC-FIRST: recompute the CRC and compare — a match
// returns the data with no ECC work at all (the common, clean case and the
// reason large codewords are cheap); a mismatch triggers the full
// t-correcting BCH decode over the frame, followed by a CRC re-check of
// the corrected data which demotes any miscorrection the re-encode check
// missed to a detected (fatal) error.
//
// The trade-off this models faithfully: the CRC is the only guard on the
// fast path, so an error pattern the CRC cannot see (weight >= its Hamming
// distance, e.g. the CRC generator polynomial itself laid into the data)
// is returned as-is — silent corruption that the BCH layer could have
// repaired but never saw.  `unp_ecc --exhaustive` and the codes test
// surface exactly that window.
//
// Evaluation uses CRC linearity: the CRC syndrome of an error pattern is
// the XOR of per-bit contributions (x^(distance) mod g, precomputed per
// data position), so no block buffers are ever materialized.
#pragma once

#include <cstdint>
#include <vector>

#include "ecc/bch.hpp"
#include "ecc/code.hpp"

namespace unp::ecc {

class LargeBlockCode final : public Code {
 public:
  /// `block_bytes` in {512, 1024, 4096}; `correct_bits` = BCH t.
  LargeBlockCode(int block_bytes, int correct_bits);

  static constexpr int kEdcBits = 32;

  [[nodiscard]] std::string_view name() const noexcept override {
    return name_;
  }
  [[nodiscard]] CodeGeometry geometry() const noexcept override;
  [[nodiscard]] Verdict evaluate(
      std::span<const int> error_bits) const override;

  /// CRC-32 syndrome of an error pattern restricted to the data+EDC bits
  /// (zero <=> the EDC fast path accepts the block).  Testing hook.
  [[nodiscard]] std::uint32_t edc_syndrome(
      std::span<const int> error_bits) const;

 private:
  std::string name_;
  int data_bits_ = 0;
  int m_ = 0;
  std::unique_ptr<BchDecoder> decoder_;
  std::vector<std::uint32_t> crc_contrib_;  ///< per data-bit CRC syndrome
};

}  // namespace unp::ecc
