// The pluggable ECC evaluation interface (ROADMAP item 1).
//
// The paper's counterfactual — "what would a protected system have seen?"
// (Sections III-C/D) — was originally answered by a fixed mask classifier
// (ecc/outcome.hpp).  This header turns the question into real coding
// theory: a Code encodes data, an evaluator injects an error pattern, the
// code decodes, and the verdict is decided by comparing the decoded data
// with the truth.  Everything the study injects is a *bit-flip pattern*,
// and every implemented code is linear, so the verdict of a pattern is
// independent of the data word it lands on: evaluate() takes only the
// flipped codeword-bit positions.  That is what makes exhaustive
// enumeration of C(n,k) patterns (engine.hpp) affordable at billions of
// trials — no codeword buffers, just syndrome arithmetic per pattern.
//
// Codeword geometry convention: bit positions [0, data_bits) are the data
// bits (fault masks embed at position 0 upward, matching outcome.hpp's
// "scanner word in the low bits, upper bits clean" convention), positions
// [data_bits, codeword_bits) are check/EDC bits.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>

namespace unp::ecc {

/// What the application sees after the decoder ran on a corrupted word.
enum class Verdict : std::uint8_t {
  kCorrect,     ///< decoded data equals the original (incl. the clean word)
  kMiscorrect,  ///< decoder claimed success but returned wrong data
  kDetectOnly,  ///< decoder signalled an uncorrectable error (crash, no SDC)
  kSdc,         ///< decoder saw a valid word: silent data corruption
};

[[nodiscard]] const char* to_string(Verdict verdict) noexcept;

/// Outcome tally over one evaluated error space or fault population.
struct VerdictCounts {
  std::uint64_t correct = 0;
  std::uint64_t miscorrect = 0;
  std::uint64_t detect_only = 0;
  std::uint64_t sdc = 0;

  void add(Verdict v) noexcept {
    switch (v) {
      case Verdict::kCorrect: ++correct; break;
      case Verdict::kMiscorrect: ++miscorrect; break;
      case Verdict::kDetectOnly: ++detect_only; break;
      case Verdict::kSdc: ++sdc; break;
    }
  }
  void add(const VerdictCounts& o) noexcept {
    correct += o.correct;
    miscorrect += o.miscorrect;
    detect_only += o.detect_only;
    sdc += o.sdc;
  }
  [[nodiscard]] std::uint64_t total() const noexcept {
    return correct + miscorrect + detect_only + sdc;
  }
  /// Wrong data reaching the application without any signal.
  [[nodiscard]] std::uint64_t silent() const noexcept {
    return miscorrect + sdc;
  }
  friend bool operator==(const VerdictCounts&, const VerdictCounts&) = default;
};

/// Static shape of one code, for reports and the policy cost model.
struct CodeGeometry {
  int data_bits = 0;      ///< payload width
  int check_bits = 0;     ///< redundancy (ECC + EDC)
  int codeword_bits = 0;  ///< data_bits + check_bits
  /// Bits the decoder is guaranteed to transparently repair.
  int guaranteed_correct = 0;
  /// Bits the decoder is guaranteed to at least signal (>= correct bound;
  /// beyond it patterns may miscorrect or pass silently).
  int guaranteed_detect = 0;

  /// Redundancy cost: check bits per data bit.
  [[nodiscard]] double overhead_fraction() const noexcept {
    return data_bits > 0
               ? static_cast<double>(check_bits) / static_cast<double>(data_bits)
               : 0.0;
  }
};

/// One encode/inject/decode-capable code.  Implementations are immutable
/// after construction and safe to share across threads.
class Code {
 public:
  virtual ~Code() = default;

  /// Canonical spec string ("hsiao:64/8", "bch:64/2", "large:4KB/8", ...).
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  [[nodiscard]] virtual CodeGeometry geometry() const noexcept = 0;

  /// Decode verdict for the error pattern flipping exactly the codeword-bit
  /// positions in `error_bits` (ascending, in [0, codeword_bits)).  An empty
  /// pattern is the clean word: kCorrect.
  [[nodiscard]] virtual Verdict evaluate(
      std::span<const int> error_bits) const = 0;
};

}  // namespace unp::ecc
