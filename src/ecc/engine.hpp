// ECC evaluation drivers (ROADMAP item 1).
//
// Two ways to feed error patterns through a Code:
//
//   * evaluate_exhaustive — every C(n,k) k-bit upset for k <= max_weight.
//     Patterns are totally ordered by the combinatorial number system
//     (lexicographic combination rank), the rank space is cut into
//     contiguous stripes, and each ThreadPool worker unranks its stripe's
//     first combination once then walks successors.  Tallies are additive
//     u64 counters merged in stripe order, so the result is bit-identical
//     for ANY thread count — the invariance the perf gate and the
//     kernel-identity test group enforce.
//
//   * evaluate_population — replay the study's extracted fault masks
//     (32-bit scanner words, embedded at codeword position 0 upward)
//     through the code, tallied per corruption-multiplicity class.  The
//     class boundaries deliberately mirror store::format.hpp's FaultClass
//     (ecc stays a leaf library and cannot include store; the ecc tests
//     assert the two bucketings agree).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/bitops.hpp"
#include "common/thread_pool.hpp"
#include "ecc/code.hpp"

namespace unp::ecc {

// ---------------------------------------------------------------------------
// Combinatorics (exposed for tests and for the CLI's workload estimates).

/// C(n, k), saturating at UINT64_MAX on overflow.
[[nodiscard]] std::uint64_t binomial(int n, int k) noexcept;

/// Lexicographic unranking: the `rank`-th (0-based) ascending k-combination
/// of {0..n-1} into `out` (size k).  rank must be < C(n, k).
void unrank_combination(std::uint64_t rank, int n, int k, std::span<int> out);

/// Advance `combo` (ascending k-combination of {0..n-1}) to its
/// lexicographic successor; false when it was the last one.
bool next_combination(std::span<int> combo, int n) noexcept;

// ---------------------------------------------------------------------------
// Exhaustive multi-bit-upset enumeration.

struct ExhaustiveWeightResult {
  int weight = 0;
  std::uint64_t patterns = 0;  ///< C(codeword_bits, weight)
  VerdictCounts counts;

  friend bool operator==(const ExhaustiveWeightResult&,
                         const ExhaustiveWeightResult&) = default;
};

struct ExhaustiveResult {
  std::string code;       ///< Code::name() of the evaluated code
  int codeword_bits = 0;
  int max_weight = 0;
  std::vector<ExhaustiveWeightResult> weights;  ///< weight 1..max_weight

  [[nodiscard]] VerdictCounts total() const noexcept;
  [[nodiscard]] std::uint64_t total_patterns() const noexcept;
};

/// Evaluate every error pattern of weight 1..max_weight over the code's
/// codeword.  Requires the per-weight pattern counts to fit u64 (the CLI
/// refuses earlier with a workload estimate).  Deterministic for any pool.
[[nodiscard]] ExhaustiveResult evaluate_exhaustive(const Code& code,
                                                   int max_weight,
                                                   ThreadPool& pool);

// ---------------------------------------------------------------------------
// Population replay.

/// Corruption-multiplicity buckets.  Must stay numerically identical to
/// store::FaultClass / store::classify_bits (asserted by tests/ecc).
enum class PopulationClass : std::uint8_t {
  kSingleBit = 0,  ///< exactly 1 flipped bit
  kDoubleBit = 1,  ///< exactly 2
  kFewBit = 2,     ///< 3..8
  kManyBit = 3,    ///< > 8
};
inline constexpr int kPopulationClassCount = 4;

[[nodiscard]] constexpr PopulationClass classify_population_bits(
    int flipped_bits) noexcept {
  if (flipped_bits <= 1) return PopulationClass::kSingleBit;
  if (flipped_bits == 2) return PopulationClass::kDoubleBit;
  if (flipped_bits <= 8) return PopulationClass::kFewBit;
  return PopulationClass::kManyBit;
}

[[nodiscard]] const char* to_string(PopulationClass c) noexcept;

struct PopulationResult {
  std::string code;
  std::uint64_t faults = 0;  ///< evaluated masks (zero masks are skipped)
  std::array<VerdictCounts, kPopulationClassCount> by_class;

  [[nodiscard]] VerdictCounts total() const noexcept;
  /// Fraction of faults that would reach the application silently wrong.
  [[nodiscard]] double silent_fraction() const noexcept;

  friend bool operator==(const PopulationResult&,
                         const PopulationResult&) = default;
};

/// Replay extracted fault flip-masks through the code.  Masks embed at
/// codeword bit 0 upward (the scanner-word convention shared with
/// ecc/outcome.hpp); zero masks (no corruption) are skipped.  The tally is
/// additive, so results are thread-count invariant.
[[nodiscard]] PopulationResult evaluate_population(const Code& code,
                                                   std::span<const Word> masks,
                                                   ThreadPool& pool);

}  // namespace unp::ecc
