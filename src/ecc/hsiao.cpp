#include "ecc/hsiao.hpp"

#include <bit>

#include "common/require.hpp"

namespace unp::ecc {

int HsiaoCode::min_check_bits(int data_bits) noexcept {
  for (int k = 4; k <= 20; ++k) {
    const std::uint64_t pool = (std::uint64_t{1} << (k - 1)) - static_cast<std::uint64_t>(k);
    if (pool >= static_cast<std::uint64_t>(data_bits)) return k;
  }
  return 0;
}

HsiaoCode::HsiaoCode(int data_bits, int check_bits) {
  UNP_REQUIRE(data_bits >= 4);
  if (check_bits == 0) check_bits = min_check_bits(data_bits);
  UNP_REQUIRE(check_bits >= 4 && check_bits <= 20);
  data_bits_ = data_bits;
  check_bits_ = check_bits;
  name_ = "hsiao:" + std::to_string(data_bits) + "/" + std::to_string(check_bits);

  // Same pinned enumeration as Secded7264: odd weights ascending, values
  // ascending within a weight, unit vectors reserved for the check bits.
  columns_.reserve(static_cast<std::size_t>(data_bits));
  const std::uint32_t limit = std::uint32_t{1} << check_bits;
  for (int w = 3; w <= check_bits && static_cast<int>(columns_.size()) < data_bits;
       w += 2) {
    for (std::uint32_t v = 1;
         v < limit && static_cast<int>(columns_.size()) < data_bits; ++v) {
      if (std::popcount(v) == w) columns_.push_back(v);
    }
  }
  UNP_ENSURE(static_cast<int>(columns_.size()) == data_bits);

  col_index_.assign(static_cast<std::size_t>(limit), -1);
  for (int i = 0; i < data_bits; ++i) {
    col_index_[columns_[static_cast<std::size_t>(i)]] = i;
  }
}

CodeGeometry HsiaoCode::geometry() const noexcept {
  CodeGeometry g;
  g.data_bits = data_bits_;
  g.check_bits = check_bits_;
  g.codeword_bits = data_bits_ + check_bits_;
  g.guaranteed_correct = 1;
  g.guaranteed_detect = 2;
  return g;
}

Verdict HsiaoCode::evaluate(std::span<const int> error_bits) const {
  std::uint32_t syndrome = 0;
  bool data_hit = false;
  for (const int p : error_bits) {
    if (p < data_bits_) {
      syndrome ^= columns_[static_cast<std::size_t>(p)];
      data_hit = true;
    } else {
      syndrome ^= std::uint32_t{1} << (p - data_bits_);
    }
  }
  if (syndrome == 0) {
    // Valid word: clean if truly clean, silent corruption otherwise.
    return data_hit ? Verdict::kSdc
                    : (error_bits.empty() ? Verdict::kCorrect : Verdict::kSdc);
  }
  const int weight = std::popcount(syndrome);
  if (weight % 2 == 0) return Verdict::kDetectOnly;
  if (weight == 1) {
    // Decoder blames the check bit of that unit syndrome; the data word is
    // delivered unchanged, so the application is fine iff no data bit flipped.
    return data_hit ? Verdict::kMiscorrect : Verdict::kCorrect;
  }
  const std::int32_t bit = col_index_[syndrome];
  if (bit < 0) return Verdict::kDetectOnly;
  // Decoder flips data bit `bit`: correct iff the true error was exactly
  // that one data bit (a wider pattern aliasing the column is miscorrected;
  // so is a check-bit pattern made to look like a data column).
  if (error_bits.size() == 1 && error_bits[0] == bit) return Verdict::kCorrect;
  return Verdict::kMiscorrect;
}

}  // namespace unp::ecc
