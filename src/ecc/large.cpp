#include "ecc/large.hpp"

#include <algorithm>

#include "common/require.hpp"

namespace unp::ecc {
namespace {

/// CRC-32 (IEEE 802.3) generator, x^32 term implicit.
constexpr std::uint32_t kCrcPoly = 0x04C11DB7u;

std::uint32_t mulx_mod_g(std::uint32_t r) noexcept {
  const bool carry = (r & 0x80000000u) != 0;
  r <<= 1;
  return carry ? (r ^ kCrcPoly) : r;
}

}  // namespace

LargeBlockCode::LargeBlockCode(int block_bytes, int correct_bits) {
  UNP_REQUIRE(block_bytes == 512 || block_bytes == 1024 || block_bytes == 4096);
  UNP_REQUIRE(correct_bits >= 1 && correct_bits <= 16);
  data_bits_ = block_bytes * 8;

  for (int m = 3; m <= 16; ++m) {
    const int n = (1 << m) - 1;
    if (2 * correct_bits >= n) continue;
    const int parity = bch_parity_bits(m, correct_bits);
    if (data_bits_ + kEdcBits + parity <= n) {
      m_ = m;
      decoder_ = std::make_unique<BchDecoder>(
          m, data_bits_ + kEdcBits + parity, correct_bits);
      break;
    }
  }
  UNP_REQUIRE(decoder_ != nullptr);

  const char* size_name = block_bytes == 512   ? "512B"
                          : block_bytes == 1024 ? "1KB"
                                                : "4KB";
  name_ = std::string("large:") + size_name + "/" +
          std::to_string(correct_bits);

  // CRC contribution of data bit b: x^{(N-1-b)+32} mod g, filled from the
  // last bit (x^32 mod g = the generator's low word) downward.
  crc_contrib_.resize(static_cast<std::size_t>(data_bits_));
  std::uint32_t r = kCrcPoly;  // x^32 mod g
  for (int b = data_bits_ - 1; b >= 0; --b) {
    crc_contrib_[static_cast<std::size_t>(b)] = r;
    r = mulx_mod_g(r);
  }
}

CodeGeometry LargeBlockCode::geometry() const noexcept {
  CodeGeometry g;
  g.data_bits = data_bits_;
  g.check_bits = kEdcBits + decoder_->parity_bits();
  g.codeword_bits = data_bits_ + g.check_bits;
  // CRC-32 has Hamming distance >= 4 at these block lengths, so any
  // <= 3-bit pattern is guaranteed to take the decode path and be
  // corrected; at weight 4 the EDC-first short-circuit opens an SDC
  // window (aliasing patterns skip a BCH that could have fixed them).
  g.guaranteed_correct = std::min(decoder_->t(), 3);
  g.guaranteed_detect = g.guaranteed_correct;
  return g;
}

std::uint32_t LargeBlockCode::edc_syndrome(
    std::span<const int> error_bits) const {
  std::uint32_t syndrome = 0;
  for (const int p : error_bits) {
    if (p < data_bits_) {
      syndrome ^= crc_contrib_[static_cast<std::size_t>(p)];
    } else if (p < data_bits_ + kEdcBits) {
      syndrome ^= std::uint32_t{1} << (p - data_bits_);
    }
  }
  return syndrome;
}

Verdict LargeBlockCode::evaluate(std::span<const int> error_bits) const {
  if (error_bits.empty()) return Verdict::kCorrect;

  const auto data_touched = [this](std::span<const int> bits) {
    for (const int p : bits) {
      if (p < data_bits_) return true;
    }
    return false;
  };

  if (edc_syndrome(error_bits) == 0) {
    // EDC-first fast path accepts the block without consulting the ECC:
    // clean for parity-only damage, silent for a CRC-aliasing data pattern.
    return data_touched(error_bits) ? Verdict::kSdc : Verdict::kCorrect;
  }

  // EDC mismatch: full BCH decode over the frame.
  if (static_cast<int>(error_bits.size()) <= decoder_->t()) {
    return Verdict::kCorrect;  // unique decoding; CRC re-check passes
  }
  const BchDecoder::Result res = decoder_->decode(error_bits);
  switch (res.status) {
    case BchDecoder::Status::kClean:
      // The ECC sees a valid word yet the EDC still rejects the data it
      // carries: correction failed -> fatal uncorrectable error.
      return Verdict::kDetectOnly;
    case BchDecoder::Status::kFailed:
      return Verdict::kDetectOnly;
    case BchDecoder::Status::kCorrected: {
      std::vector<int> residual;
      std::set_symmetric_difference(error_bits.begin(), error_bits.end(),
                                    res.corrected.begin(),
                                    res.corrected.end(),
                                    std::back_inserter(residual));
      if (residual.empty()) return Verdict::kCorrect;
      // The corrected frame is re-checked against its CRC before being
      // returned; only a residual the CRC cannot see escapes.
      if (edc_syndrome(residual) != 0) return Verdict::kDetectOnly;
      return data_touched(residual) ? Verdict::kMiscorrect : Verdict::kCorrect;
    }
  }
  return Verdict::kDetectOnly;
}

}  // namespace unp::ecc
