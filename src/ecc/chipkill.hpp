// Chipkill-style symbol-correcting code model (SSC-DSD).
//
// The related work the paper cites (Sridharan & Liberty) measured chipkill
// to be ~42x more reliable than SECDED because DRAM faults cluster inside
// one device: a whole-chip failure corrupts one b-bit *symbol* of the ECC
// word, which a single-symbol-correct / double-symbol-detect code repairs.
//
// We model the outcome function of such a code over a 64-bit data word
// divided into 4-bit symbols (x4 devices):
//   - errors confined to one symbol   -> corrected
//   - errors spanning two symbols     -> detected, uncorrectable
//   - errors spanning three+ symbols  -> beyond the code's guarantee; modelled
//     as undetected (worst case for the SDC analysis, and stated as such).
//
// This is an outcome model, not a Reed-Solomon implementation: the analyses
// only consume the corrected/detected/undetected classification.
#pragma once

#include <cstdint>

namespace unp::ecc {

class ChipkillModel {
 public:
  static constexpr int kSymbolBits = 4;
  static constexpr int kSymbols = 64 / kSymbolBits;

  enum class Outcome : std::uint8_t { kClean, kCorrected, kDetected, kUndetected };

  /// Classify the flip pattern `error_mask` over a 64-bit data word.
  [[nodiscard]] static Outcome classify(std::uint64_t error_mask) noexcept;

  /// Number of 4-bit symbols touched by `error_mask`.
  [[nodiscard]] static int symbols_touched(std::uint64_t error_mask) noexcept;
};

}  // namespace unp::ecc
