// Ground-truth ECC outcome classification for observed corruptions.
//
// Given what the scanner saw (expected word, observed word) we can decide
// exactly what each protection scheme would have done, because unlike a
// production system we know the injected truth.  This powers the paper's
// detectable-vs-undetectable analysis (Section III-D) and the ECC what-if
// ablation.
//
// Scanner words are 32-bit; ECC words are 64-bit.  The study's words embed
// into the lower half of an ECC word whose upper half is clean, which is
// conservative for SECDED/chipkill (extra clean bits never mask an error).
#pragma once

#include <cstdint>

#include "common/bitops.hpp"
#include "ecc/chipkill.hpp"
#include "ecc/secded.hpp"

namespace unp::ecc {

/// What a protection scheme would have turned this corruption into.
enum class EccOutcome : std::uint8_t {
  kNoError,       ///< nothing flipped
  kCorrected,     ///< transparently repaired (ECC counter ticks)
  kDetected,      ///< uncorrectable but signalled (machine-check / crash)
  kMiscorrected,  ///< decoder "fixed" the wrong bit: silent corruption
  kUndetected     ///< decoder saw a clean word: silent corruption
};

[[nodiscard]] const char* to_string(EccOutcome outcome) noexcept;

/// True when the outcome leaves wrong data without any signal.
[[nodiscard]] constexpr bool is_silent(EccOutcome outcome) noexcept {
  return outcome == EccOutcome::kMiscorrected || outcome == EccOutcome::kUndetected;
}

/// Outcome of a per-word parity bit (detect-only: flags odd-weight flips,
/// silently passes even-weight ones; corrects nothing).
[[nodiscard]] EccOutcome parity_outcome(Word expected, Word observed) noexcept;

/// Outcome of the SECDED(72,64) code for a 32-bit scanner corruption.
[[nodiscard]] EccOutcome secded_outcome(Word expected, Word observed) noexcept;

/// Outcome of the chipkill symbol code for a 32-bit scanner corruption.
[[nodiscard]] EccOutcome chipkill_outcome(Word expected, Word observed) noexcept;

/// Aggregated outcome tally for a corruption population.
struct OutcomeCounts {
  std::uint64_t no_error = 0;
  std::uint64_t corrected = 0;
  std::uint64_t detected = 0;
  std::uint64_t miscorrected = 0;
  std::uint64_t undetected = 0;

  void add(EccOutcome outcome) noexcept;
  [[nodiscard]] std::uint64_t total() const noexcept {
    return no_error + corrected + detected + miscorrected + undetected;
  }
  [[nodiscard]] std::uint64_t silent() const noexcept {
    return miscorrected + undetected;
  }
};

}  // namespace unp::ecc
