#include "sched/scan_plan.hpp"

#include <algorithm>

namespace unp::sched {

double ScanPlan::scanned_hours() const noexcept {
  double hours = 0.0;
  for (const auto& s : sessions) {
    if (!s.end_lost) hours += s.hours();  // conservative accounting
  }
  return hours;
}

double ScanPlan::terabyte_hours() const noexcept {
  constexpr double kBytesPerTb = 1099511627776.0;
  double tbh = 0.0;
  for (const auto& s : sessions) {
    if (!s.end_lost) {
      tbh += s.hours() * static_cast<double>(s.allocated_bytes) / kBytesPerTb;
    }
  }
  return tbh;
}

const ScanSession* ScanPlan::session_at(TimePoint t) const noexcept {
  auto it = std::upper_bound(
      sessions.begin(), sessions.end(), t,
      [](TimePoint value, const ScanSession& s) { return value < s.window.end; });
  if (it != sessions.end() && it->window.contains(t)) return &*it;
  return nullptr;
}

}  // namespace unp::sched
