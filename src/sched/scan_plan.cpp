#include "sched/scan_plan.hpp"

#include <algorithm>

namespace unp::sched {

double ScanPlan::scanned_hours() const noexcept {
  double hours = 0.0;
  for (const auto& s : sessions) {
    if (!s.end_lost) hours += s.hours();  // conservative accounting
  }
  return hours;
}

double ScanPlan::terabyte_hours() const noexcept {
  constexpr double kBytesPerTb = 1099511627776.0;
  double tbh = 0.0;
  for (const auto& s : sessions) {
    if (!s.end_lost) {
      tbh += s.hours() * static_cast<double>(s.allocated_bytes) / kBytesPerTb;
    }
  }
  return tbh;
}

PlanCutSummary ScanPlan::subtract_window(const cluster::Interval& cut,
                                         std::int64_t min_keep_seconds) {
  PlanCutSummary summary;
  if (cut.seconds() <= 0) return summary;

  std::vector<ScanSession> kept;
  kept.reserve(sessions.size() + 1);
  for (const ScanSession& s : sessions) {
    if (s.window.end <= cut.start || s.window.start >= cut.end) {
      kept.push_back(s);
      continue;
    }
    const std::int64_t original = s.window.seconds();
    std::int64_t remaining = 0;
    bool clipped = false;
    // Head piece before the cut (the scanner ran until the SIGTERM).
    if (s.window.start < cut.start) {
      ScanSession head = s;
      head.window.end = cut.start;
      if (head.window.seconds() >= std::max<std::int64_t>(min_keep_seconds, 1)) {
        kept.push_back(head);
        remaining += head.window.seconds();
        clipped = true;
      }
    }
    // Tail piece after re-admission (a fresh session: the restarted scanner
    // re-fills its allocation, so pattern/alloc carry over unchanged).
    if (s.window.end > cut.end) {
      ScanSession tail = s;
      tail.window.start = cut.end;
      if (tail.window.seconds() >= std::max<std::int64_t>(min_keep_seconds, 1)) {
        kept.push_back(tail);
        remaining += tail.window.seconds();
        clipped = true;
      }
    }
    summary.seconds_removed += original - remaining;
    if (clipped) {
      ++summary.sessions_truncated;
    } else {
      ++summary.sessions_cancelled;
    }
  }
  sessions = std::move(kept);

  std::erase_if(failures, [&](const AllocFailure& f) {
    return cut.contains(f.time);
  });
  return summary;
}

const ScanSession* ScanPlan::session_at(TimePoint t) const noexcept {
  auto it = std::upper_bound(
      sessions.begin(), sessions.end(), t,
      [](TimePoint value, const ScanSession& s) { return value < s.window.end; });
  if (it != sessions.end() && it->window.contains(t)) return &*it;
  return nullptr;
}

}  // namespace unp::sched
