#include "sched/planner.hpp"

#include <algorithm>

#include "common/require.hpp"
#include "common/rng.hpp"

namespace unp::sched {

ScanPlan ScanPlanner::plan(cluster::NodeId node,
                           const cluster::AvailabilityTimeline& availability) const {
  UNP_REQUIRE(config_.mean_busy_hours > 0.0);
  RngStream rng(config_.seed, /*stream_id=*/0x5CED,
                static_cast<std::uint64_t>(cluster::node_index(node)));

  ScanPlan out;
  // The walk below asks for utilization once per busy/idle cycle — many
  // times per day — so resolve it through a day-memoizing cursor (exact
  // same values, minus the repeated civil-time math and wobble draws).
  env::UtilizationCursor calendar(config_.calendar);
  for (const auto& up : availability.intervals()) {
    TimePoint t = up.start;
    // Nodes alternate busy/idle; start each powered interval in a random
    // phase so session boundaries do not align across nodes.
    bool busy = rng.bernoulli(0.5);
    while (t < up.end) {
      const double util = std::clamp(calendar.utilization(t), 0.02, 0.98);
      if (busy) {
        const double busy_h = rng.exponential(1.0 / config_.mean_busy_hours);
        t += static_cast<TimePoint>(busy_h * kSecondsPerHour) + 1;
        busy = false;
        continue;
      }
      // Idle period: mean chosen so the busy/idle duty cycle matches the
      // calendar's utilization at this instant.
      const double mean_idle_h =
          config_.mean_busy_hours * (1.0 - util) / util;
      const double idle_h = rng.exponential(1.0 / mean_idle_h);
      const TimePoint idle_end =
          std::min<TimePoint>(t + static_cast<TimePoint>(idle_h * kSecondsPerHour),
                              up.end);

      if (idle_end - t >= config_.min_session_seconds) {
        if (rng.bernoulli(config_.alloc_fail_probability)) {
          out.failures.push_back({t});
        } else {
          ScanSession s;
          s.window = {t, idle_end};
          s.pattern = rng.bernoulli(config_.counter_fraction)
                          ? scanner::PatternKind::kCounter
                          : scanner::PatternKind::kAlternating;
          std::uint64_t bytes = cluster::kScannableBytes;
          if (!rng.bernoulli(config_.full_alloc_probability)) {
            const auto steps = static_cast<std::uint64_t>(rng.uniform_int(
                1, std::max(1, config_.max_backoff_steps)));
            bytes -= steps * (10ULL << 20);
          }
          s.allocated_bytes = bytes;
          // Pass time scales with the allocation actually scanned.
          s.pass_period_s = std::max<std::int64_t>(
              1, static_cast<std::int64_t>(
                     static_cast<double>(config_.base_pass_seconds) *
                     static_cast<double>(bytes) /
                     static_cast<double>(cluster::kScannableBytes)));
          s.end_lost = rng.bernoulli(config_.end_lost_probability);
          out.sessions.push_back(s);
        }
      }
      t = idle_end + 1;
      busy = true;
    }
  }
  return out;
}

}  // namespace unp::sched
