// The scheduler simulation that produces each node's ScanPlan.
//
// The planner walks a node's availability timeline alternating job (busy)
// and idle (scanning) periods.  Both are exponentially distributed; the
// idle mean is tied to the academic calendar's utilization so that a
// vacation day (utilization 0.3) yields long scanner runs and a term-time
// day yields short ones - that calendar signature is what Fig 9 plots.
#pragma once

#include <cstdint>

#include "cluster/availability.hpp"
#include "cluster/topology.hpp"
#include "env/calendar.hpp"
#include "sched/scan_plan.hpp"

namespace unp::sched {

class ScanPlanner {
 public:
  struct Config {
    env::AcademicCalendar calendar{};
    /// Mean duration of one job (busy period), hours.
    double mean_busy_hours = 6.0;
    /// Fraction of sessions using the counter pattern instead of the
    /// alternating pattern ("most of the study" used alternating).
    double counter_fraction = 0.15;
    /// Probability the full 3 GB allocation succeeds at session start.
    double full_alloc_probability = 0.85;
    /// Max 10 MB back-off steps when the full allocation fails.
    int max_backoff_steps = 40;
    /// Probability an idle window yields no session at all (allocation
    /// exhausted; ALLOCFAIL logged).
    double alloc_fail_probability = 0.002;
    /// Probability a session's END record is lost to a hard reboot.
    double end_lost_probability = 0.002;
    /// Seconds for one full pass over a 3 GB allocation.
    std::int64_t base_pass_seconds = 75;
    /// Idle windows shorter than this never start the scanner.
    std::int64_t min_session_seconds = 300;
    std::uint64_t seed = 42;
  };

  ScanPlanner() : ScanPlanner(Config{}) {}
  explicit ScanPlanner(const Config& config) : config_(config) {}

  /// Deterministic plan for one node (keyed by seed + node index).
  [[nodiscard]] ScanPlan plan(cluster::NodeId node,
                              const cluster::AvailabilityTimeline& availability) const;

  [[nodiscard]] const Config& config() const noexcept { return config_; }

 private:
  Config config_;
};

}  // namespace unp::sched
