// Scan sessions: when, how, and with how much memory a node ran the scanner.
//
// The original deployment wired the scanner to the job scheduler: the
// epilogue script of a finishing job starts the scanner, the prologue of the
// next job SIGTERMs it (Section II-B).  A ScanSession is one such idle
// window, together with the properties decided at its start:
//
//   - the negotiated allocation (3 GB, less if earlier jobs leaked, zero if
//     allocation failed entirely -> ALLOCFAIL, no session);
//   - the write pattern (most sessions alternating, some counter);
//   - the duration of one full check-and-flip pass over the allocation;
//   - whether the END record was lost to a hard reboot (the paper's
//     "START followed by another START" case, accounted as zero hours).
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/availability.hpp"
#include "scanner/pattern.hpp"

namespace unp::sched {

struct ScanSession {
  cluster::Interval window;
  scanner::PatternKind pattern = scanner::PatternKind::kAlternating;
  std::uint64_t allocated_bytes = 0;
  std::int64_t pass_period_s = 75;
  bool end_lost = false;

  [[nodiscard]] double hours() const noexcept {
    return static_cast<double>(window.seconds()) / kSecondsPerHour;
  }
  /// Iterations completed inside the window.
  [[nodiscard]] std::uint64_t iterations() const noexcept {
    return pass_period_s > 0
               ? static_cast<std::uint64_t>(window.seconds() / pass_period_s)
               : 0;
  }
};

/// A failed allocation attempt (no scanning happened).
struct AllocFailure {
  TimePoint time = 0;
};

/// Accounting of one subtract_window() actuation.
struct PlanCutSummary {
  std::size_t sessions_cancelled = 0;  ///< dropped entirely
  std::size_t sessions_truncated = 0;  ///< clipped at a cut boundary
  std::int64_t seconds_removed = 0;    ///< scan time taken away
};

/// Everything the scheduler decided for one node over the campaign.
struct ScanPlan {
  std::vector<ScanSession> sessions;   ///< time-ordered, non-overlapping
  std::vector<AllocFailure> failures;  ///< time-ordered

  [[nodiscard]] double scanned_hours() const noexcept;
  [[nodiscard]] double terabyte_hours() const noexcept;

  /// First session containing `t`, or nullptr.
  [[nodiscard]] const ScanSession* session_at(TimePoint t) const noexcept;

  /// Remove [cut.start, cut.end) from the plan — the actuation a node
  /// quarantine performs: the scheduler pulls the node, the running scanner
  /// is SIGTERMed at cut.start (session truncated), and scanning resumes
  /// with a fresh session at re-admission (session head clipped to
  /// cut.end).  Clipped remnants shorter than `min_keep_seconds` are
  /// cancelled outright (the planner would never schedule such a stub).
  /// Alloc failures inside the cut are dropped with it.
  PlanCutSummary subtract_window(const cluster::Interval& cut,
                                 std::int64_t min_keep_seconds = 0);
};

}  // namespace unp::sched
