// Background transient single-bit upsets.
//
// The quiet baseline of the fleet: across every node other than the
// pathological few, the whole 13-month study saw fewer than 30 independent
// errors (Section III-H), i.e. on the order of 5e-6 faults per scanned
// node-hour.  Events are one-word, one-bit, overwhelmingly discharge
// (1 -> 0), with no time-of-day structure.
#pragma once

#include "dram/cell_model.hpp"
#include "faults/generator.hpp"

namespace unp::faults {

class BackgroundTransientGenerator final : public FaultGenerator {
 public:
  struct Config {
    /// Poisson rate of upsets per scanned hour per node.
    double rate_per_scanned_hour = 3.5e-6;
    /// Rate multiplier for the overheating SoC-12 slots while they ran:
    /// heat-stressed silicon upsets more readily, producing Fig 7's small
    /// tail of errors logged above 60 degC.
    double overheat_rate_multiplier = 120.0;
    dram::CellLeakModel::Config leak{};
  };

  BackgroundTransientGenerator() : BackgroundTransientGenerator(Config{}) {}
  explicit BackgroundTransientGenerator(const Config& config)
      : config_(config), leak_(config.leak) {}

  void generate(const std::vector<NodeContext>& nodes, std::uint64_t seed,
                std::vector<FaultEvent>& out) const override;

  [[nodiscard]] const Config& config() const noexcept { return config_; }

 private:
  Config config_;
  dram::CellLeakModel leak_;
};

}  // namespace unp::faults
