// Cosmic-ray neutron events: the diurnally modulated mechanism.
//
// Section III-E finds multi-bit corruptions twice as frequent between 07:00
// and 18:00 as at night, peaking when the sun is highest, and concludes that
// multi-bit errors are "mostly caused by cosmic rays".  All events emitted
// by this generator are therefore placed with a thinned Poisson process
// whose intensity follows env::NeutronFluxModel.
//
// Event anatomy (Section III-C):
//   - a multi-bit word corruption: 2 bits (rarely 3); the flipped bits are
//     either logically consecutive (bus-side upsets, Table I's
//     "Consecutive = Yes" rows) or a physically contiguous cell cluster
//     seen through the device's BitScrambler (the non-adjacent majority);
//   - most such events are *accompanied* by single-bit corruption elsewhere
//     in the node's memory (44 of the 76 doubles; 2 triples; and one
//     double+double case), forming the per-node simultaneous corruptions;
//   - independent all-single showers hit several words at once;
//   - repeated Table I patterns (occurrences up to 36) come from fixed
//     susceptible sites: particular cell pairs that upset the same way on
//     every strike, hosted on the already-noisy nodes.
#pragma once

#include "cluster/topology.hpp"
#include "dram/cell_model.hpp"
#include "dram/scrambler.hpp"
#include "env/neutron.hpp"
#include "faults/generator.hpp"

namespace unp::faults {

class NeutronEventGenerator final : public FaultGenerator {
 public:
  struct Config {
    env::NeutronFluxModel flux{};

    /// Multi-bit strike events generated fleet-wide over the campaign
    /// (roughly half are observable given pattern-phase visibility).
    double multibit_events_fleet = 175.0;

    /// Fraction of multi-bit events landing on fixed susceptible sites
    /// (same node, word and flip pattern every time).
    double repeat_site_fraction = 0.72;
    /// Number of susceptible sites.
    int repeat_sites = 5;
    /// Nodes hosting the susceptible sites (sites assigned round-robin).
    /// Default: the degrading node 02-04, whose ~30 corruption patterns
    /// include the repeated multi-bit ones (Section III-H notes its pattern
    /// variety; the weak-bit nodes must stay 100% single-pattern).
    std::vector<cluster::NodeId> repeat_site_nodes = {cluster::NodeId{2, 4}};

    /// Susceptibility of the repeat sites grows as their host component
    /// degrades (the paper's November multi-bit burst coincides with the
    /// single-bit surge, Fig 11): site events are additionally thinned by
    /// exp(-(ramp_reference - t) / ramp_tau_days), i.e. strongly favoured
    /// toward the reference date.  Set tau <= 0 to disable the ramp.
    TimePoint site_ramp_reference = from_civil_utc({2015, 11, 25, 0, 0, 0});
    double site_ramp_tau_days = 45.0;

    /// P(multi-bit mask has 3 bits); remainder are 2-bit.  >3-bit events
    /// are the separate isolated-SDC mechanism.
    double p_three_bits = 0.07;
    /// P(flipped bits are logically consecutive) vs scrambled cluster.
    double consecutive_fraction = 0.22;

    /// P(a multi-bit event is accompanied by single-bit hits elsewhere).
    double p_accompanied = 0.66;
    /// Accompanying single-bit words: 1 + Poisson(this).
    double accompany_extra_mean = 0.8;
    /// P(the shower contains a second multi-bit word).
    double p_double_double = 0.015;

    /// Independent all-single-bit shower events fleet-wide (kept small:
    /// the bulk of per-node simultaneous corruption comes from the
    /// degrading component's bursts).
    double single_shower_events_fleet = 8.0;
    /// Shower word count: 2 + Poisson(this), capped at 36.
    double shower_words_mean = 2.2;

    dram::BitScrambler scrambler = dram::BitScrambler::stride3();
    dram::CellLeakModel::Config leak{};
  };

  NeutronEventGenerator() : NeutronEventGenerator(Config{}) {}
  explicit NeutronEventGenerator(const Config& config)
      : config_(config), leak_(config.leak) {}

  void generate(const std::vector<NodeContext>& nodes, std::uint64_t seed,
                std::vector<FaultEvent>& out) const override;

  [[nodiscard]] const Config& config() const noexcept { return config_; }

  /// Draw a multi-bit logical flip mask per the configured mix (exposed for
  /// distribution tests).
  [[nodiscard]] Word draw_multibit_mask(int bits, RngStream& rng) const;

 private:
  /// Sample an event time inside the indexed plan's sessions, thinned by
  /// relative neutron flux.  False if the plan is empty.
  [[nodiscard]] bool sample_flux_time(const ScannedTimeIndex& scanned,
                                      RngStream& rng, TimePoint& out) const;

  Config config_;
  dram::CellLeakModel leak_;
};

}  // namespace unp::faults
