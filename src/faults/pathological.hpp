// The pathological node: >98% of all raw error logs.
//
// Section III-B: one faulty node produced the overwhelming majority of the
// >25 million raw ERROR lines - "a classic case of a node that gets
// replaced in production systems" - and was removed from both the scheduler
// pool and the characterization.  The mechanism is a wholesale-stuck memory
// region: every scan pass re-logs every stuck address, so raw volume scales
// as (stuck addresses) x (passes) until the node is pulled.
//
// The generator emits one kStuck FaultEvent per stuck address at the onset
// date; the campaign driver caps the node's availability at the removal
// date (it left the scheduler pool), and the analysis pipeline's
// pathological-node filter (Section II-C) must rediscover and drop it.
#pragma once

#include "dram/cell_model.hpp"
#include "faults/generator.hpp"

namespace unp::faults {

class PathologicalNodeGenerator final : public FaultGenerator {
 public:
  struct Config {
    cluster::NodeId node{21, 7};
    TimePoint onset = from_civil_utc({2015, 3, 5, 0, 0, 0});
    /// The admins pull the node from the pool here; stuck faults persist
    /// but nothing scans them afterwards.
    TimePoint removal = from_civil_utc({2015, 6, 20, 0, 0, 0});
    /// Number of wholesale-stuck word addresses.
    int stuck_addresses = 1300;
    /// Affected cells per stuck word: 1 + Poisson(mean_extra_bits), max 8.
    double mean_extra_bits = 0.6;
  };

  PathologicalNodeGenerator() : PathologicalNodeGenerator(Config{}) {}
  explicit PathologicalNodeGenerator(const Config& config) : config_(config) {}

  void generate(const std::vector<NodeContext>& nodes, std::uint64_t seed,
                std::vector<FaultEvent>& out) const override;

  [[nodiscard]] const Config& config() const noexcept { return config_; }

 private:
  Config config_;
};

}  // namespace unp::faults
