#include "faults/event.hpp"

#include <algorithm>
#include <bit>

namespace unp::faults {

const char* to_string(Mechanism mechanism) noexcept {
  switch (mechanism) {
    case Mechanism::kBackgroundTransient: return "background-transient";
    case Mechanism::kNeutronEvent: return "neutron-event";
    case Mechanism::kWeakBit: return "weak-bit";
    case Mechanism::kDegradingComponent: return "degrading-component";
    case Mechanism::kPathologicalStuck: return "pathological-stuck";
    case Mechanism::kIsolatedSdc: return "isolated-sdc";
    case Mechanism::kRowhammer: return "rowhammer";
  }
  return "unknown";
}

int FaultEvent::affected_bits() const noexcept {
  int bits = 0;
  for (const auto& w : words) {
    bits += std::popcount(w.corruption.affected_mask);
  }
  return bits;
}

void sort_events(std::vector<FaultEvent>& events) {
  std::sort(events.begin(), events.end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              if (a.time != b.time) return a.time < b.time;
              return cluster::node_index(a.node) < cluster::node_index(b.node);
            });
}

void sort_event_ptrs(std::vector<const FaultEvent*>& events) {
  // Must stay the exact comparator of sort_events: std::sort's output
  // permutation is a deterministic function of (input order, comparison
  // results), so sorting pointers here reproduces the value sort bit for
  // bit — including the tie order of equal-time events.
  std::sort(events.begin(), events.end(),
            [](const FaultEvent* a, const FaultEvent* b) {
              if (a->time != b->time) return a->time < b->time;
              return cluster::node_index(a->node) < cluster::node_index(b->node);
            });
}

}  // namespace unp::faults
