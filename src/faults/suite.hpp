// The complete fault model: all six mechanisms with the calibrated defaults
// that reproduce the paper's campaign, plus per-mechanism switches for the
// ablation experiments.
#pragma once

#include "faults/background.hpp"
#include "faults/degrading.hpp"
#include "faults/generator.hpp"
#include "faults/hammer/generator.hpp"
#include "faults/isolated_sdc.hpp"
#include "faults/neutron.hpp"
#include "faults/pathological.hpp"
#include "faults/weak_bit.hpp"

namespace unp::faults {

class FaultModelSuite {
 public:
  struct Config {
    BackgroundTransientGenerator::Config background{};
    NeutronEventGenerator::Config neutron{};
    WeakBitGenerator::Config weak_bits = WeakBitGenerator::default_config();
    DegradingComponentGenerator::Config degrading{};
    PathologicalNodeGenerator::Config pathological{};
    IsolatedSdcGenerator::Config isolated_sdc{};
    hammer::HammerFaultGenerator::Config hammer{};

    bool enable_background = true;
    bool enable_neutron = true;
    bool enable_weak_bits = true;
    bool enable_degrading = true;
    bool enable_pathological = true;
    bool enable_isolated_sdc = true;
    /// Off by default: the paper's campaign is time-driven only, and the
    /// calibrated seed-42 record stream must stay byte-identical.
    bool enable_hammer = false;
  };

  FaultModelSuite() : FaultModelSuite(Config{}) {}
  explicit FaultModelSuite(const Config& config);

  /// All fault events for the fleet, sorted by (time, node).
  [[nodiscard]] std::vector<FaultEvent> generate(
      const std::vector<NodeContext>& nodes, std::uint64_t seed) const;

  [[nodiscard]] const Config& config() const noexcept { return config_; }

 private:
  Config config_;
  BackgroundTransientGenerator background_;
  NeutronEventGenerator neutron_;
  WeakBitGenerator weak_bits_;
  DegradingComponentGenerator degrading_;
  PathologicalNodeGenerator pathological_;
  IsolatedSdcGenerator isolated_sdc_;
  hammer::HammerFaultGenerator hammer_;
};

}  // namespace unp::faults
