// The isolated silent-data-corruption events (Section III-D).
//
// Seven corruptions flipped more than 3 bits - beyond SECDED's detection
// guarantee - and all of them struck nodes that logged *no other error*
// during the entire study.  Six of the seven happened before temperature
// logging began (April 2015), and four of the affected nodes sit next to
// the overheating SoC-12 column, hinting (inconclusively) at heat-damaged
// cells.  Their defining property is isolation: no co-occurring error on
// the same node or anywhere else at the same instant.
//
// The generator places exactly the configured bit-count multiset
// ({4,4,4,5,6,8,9} by default) on distinct quiet nodes adjacent to the
// overheating column, preferring alternating-pattern sessions so the full
// flip pattern is observable, and schedules two of them on the same local
// day hours apart (the paper's March/May coincidences).
#pragma once

#include <vector>

#include "dram/cell_model.hpp"
#include "dram/scrambler.hpp"
#include "faults/generator.hpp"

namespace unp::faults {

class IsolatedSdcGenerator final : public FaultGenerator {
 public:
  struct Config {
    /// Flip widths of the events to place (each > 3 bits).
    std::vector<int> bit_counts = {4, 4, 4, 5, 6, 8, 9};
    /// How many of them must predate the temperature sensors.
    int before_sensors = 6;
    TimePoint sensors_online = from_civil_utc({2015, 4, 1, 0, 0, 0});
    /// How many land on nodes adjacent to the overheating column.
    int near_overheating = 4;
    /// Fraction of masks that are logically consecutive (Table I's 4-bit
    /// "Yes" row and the 8-bit 0xffffff00 case); the rest go through the
    /// scrambler.
    double consecutive_fraction = 0.3;
    dram::BitScrambler scrambler = dram::BitScrambler::stride3();
    /// Target local days for the events (the paper's timeline: a same-day
    /// pair in March, another in May, the rest spread).  Size must match
    /// bit_counts.  The generator searches outward from each target for a
    /// day the host node actually scanned.
    std::vector<CivilDateTime> target_days = {
        {2015, 2, 20, 0, 0, 0}, {2015, 3, 14, 0, 0, 0}, {2015, 3, 14, 0, 0, 0},
        {2015, 3, 29, 0, 0, 0}, {2015, 5, 9, 0, 0, 0},  {2015, 5, 9, 0, 0, 0},
        {2015, 8, 21, 0, 0, 0}};
    /// Nodes the host selection must avoid (the noisy nodes of the other
    /// mechanisms; the whole point of these events is isolation).
    std::vector<cluster::NodeId> avoid_nodes = {
        cluster::NodeId{2, 4}, cluster::NodeId{4, 5}, cluster::NodeId{58, 2},
        cluster::NodeId{21, 7}};
    /// Number of distinct host nodes for the events.
    int distinct_nodes = 5;
  };

  IsolatedSdcGenerator() : IsolatedSdcGenerator(Config{}) {}
  explicit IsolatedSdcGenerator(const Config& config) : config_(config) {}

  void generate(const std::vector<NodeContext>& nodes, std::uint64_t seed,
                std::vector<FaultEvent>& out) const override;

  [[nodiscard]] const Config& config() const noexcept { return config_; }

 private:
  Config config_;
};

}  // namespace unp::faults
