#include "faults/suite.hpp"

namespace unp::faults {

FaultModelSuite::FaultModelSuite(const Config& config)
    : config_(config),
      background_(config.background),
      neutron_(config.neutron),
      weak_bits_(config.weak_bits),
      degrading_(config.degrading),
      pathological_(config.pathological),
      isolated_sdc_(config.isolated_sdc),
      hammer_(config.hammer) {}

std::vector<FaultEvent> FaultModelSuite::generate(
    const std::vector<NodeContext>& nodes, std::uint64_t seed) const {
  std::vector<FaultEvent> events;

  // The isolated-SDC events are *defined* by landing on nodes that stay
  // otherwise error-free for the whole study (Section III-D), so their
  // hosts are chosen first and masked out of the random-placement
  // generators' node weighting.
  std::vector<FaultEvent> isolated;
  if (config_.enable_isolated_sdc) {
    isolated_sdc_.generate(nodes, seed, isolated);
  }
  std::vector<NodeContext> weighted = nodes;
  for (const auto& ev : isolated) {
    for (auto& ctx : weighted) {
      if (ctx.node == ev.node) ctx.scanned_hours = 0.0;
    }
  }

  if (config_.enable_background) background_.generate(weighted, seed, events);
  if (config_.enable_neutron) neutron_.generate(weighted, seed, events);
  if (config_.enable_weak_bits) weak_bits_.generate(nodes, seed, events);
  if (config_.enable_degrading) degrading_.generate(nodes, seed, events);
  if (config_.enable_pathological) pathological_.generate(nodes, seed, events);
  if (config_.enable_hammer) hammer_.generate(nodes, seed, events);
  events.insert(events.end(), isolated.begin(), isolated.end());
  sort_events(events);
  return events;
}

}  // namespace unp::faults
