#include "faults/background.hpp"

namespace unp::faults {

void BackgroundTransientGenerator::generate(
    const std::vector<NodeContext>& nodes, std::uint64_t seed,
    std::vector<FaultEvent>& out) const {
  ScannedTimeIndex scanned;
  for (const auto& ctx : nodes) {
    if (ctx.plan == nullptr || ctx.scanned_hours <= 0.0) continue;
    RngStream rng(seed, /*stream_id=*/0xB6D0,
                  static_cast<std::uint64_t>(cluster::node_index(ctx.node)));
    double rate = config_.rate_per_scanned_hour;
    if (cluster::Topology::is_overheating_slot(ctx.node)) {
      rate *= config_.overheat_rate_multiplier;
    }
    const std::uint64_t count = rng.poisson(rate * ctx.scanned_hours);
    if (count == 0) continue;
    scanned.reset(*ctx.plan);
    // Grow once per node instead of several times mid-loop, keeping the
    // geometric schedule so successive nodes don't each force a realloc.
    if (out.size() + count > out.capacity()) {
      out.reserve(std::max(out.size() + count,
                           out.capacity() + out.capacity() / 2));
    }
    for (std::uint64_t i = 0; i < count; ++i) {
      TimePoint when = 0;
      if (!scanned.random_time(rng, when)) break;
      FaultEvent ev;
      ev.time = when;
      ev.node = ctx.node;
      ev.mechanism = Mechanism::kBackgroundTransient;
      ev.persistence = Persistence::kTransient;
      const Word mask = Word{1} << rng.uniform_u64(32);
      ev.words.push_back({random_word_index(rng), leak_.make_corruption(mask, rng)});
      out.push_back(std::move(ev));
    }
  }
}

}  // namespace unp::faults
