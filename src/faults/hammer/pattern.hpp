// Aggressor/victim hammering patterns.
//
// A hammering workload repeatedly activates a small set of *aggressor*
// rows inside one bank; rows physically adjacent to an aggressor are the
// *victims*.  The classic layouts (blacksmith's PatternBuilder generalizes
// them to fuzzed frequency/phase schedules; we keep the frequency idea):
//
//   single-sided   one aggressor, victims on both flanks
//   double-sided   two aggressors sandwiching one victim (rows r, r+2)
//   n-sided        n aggressors every other row (r, r+2, ..., r+2(n-1)),
//                  each with its own relative activation frequency
//
// Offsets are row deltas relative to the pattern's base row; victims are
// derived, not stored, so the layout stays valid wherever it is placed.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace unp::faults::hammer {

enum class PatternKind : std::uint8_t {
  kSingleSided,
  kDoubleSided,
  kNSided,
};

[[nodiscard]] const char* to_string(PatternKind kind) noexcept;

struct HammerPattern {
  PatternKind kind = PatternKind::kDoubleSided;
  /// Aggressor row offsets from the base row, strictly increasing.
  std::vector<std::int64_t> aggressor_offsets;
  /// Relative activation frequency per aggressor (mean 1.0): the share of
  /// the workload's activation budget each aggressor receives.
  std::vector<double> frequencies;

  /// Largest offset any aggressor or victim reaches (for placement).
  [[nodiscard]] std::int64_t span() const noexcept;
};

/// Victim rows of `pattern` placed at `base_row`, with the total activation
/// pressure each receives: direct neighbors (distance 1) accumulate the
/// adjacent aggressors' full activation share; `distance2_factor` scales
/// the weaker distance-2 coupling.
struct VictimPressure {
  std::int64_t row_offset = 0;  ///< relative to the base row
  double pressure = 0.0;        ///< in units of the per-aggressor budget
};
[[nodiscard]] std::vector<VictimPressure> victim_pressures(
    const HammerPattern& pattern, double distance2_factor);

class PatternBuilder {
 public:
  struct Config {
    /// Relative draw weights of the three layout kinds.
    double single_sided_weight = 0.25;
    double double_sided_weight = 0.50;
    double n_sided_weight = 0.25;
    /// Aggressor count range for n-sided layouts.
    int n_min = 3;
    int n_max = 6;
    /// Frequency jitter: each aggressor draws Uniform[1-j, 1+j], then the
    /// set is normalized back to mean 1.
    double frequency_jitter = 0.5;
  };

  PatternBuilder() = default;
  explicit PatternBuilder(const Config& config) : config_(config) {}

  /// Draw a layout from `rng` (all randomness comes from the caller's
  /// stream so pattern choice stays campaign-deterministic).
  [[nodiscard]] HammerPattern build(RngStream& rng) const;

  [[nodiscard]] const Config& config() const noexcept { return config_; }

 private:
  Config config_{};
};

}  // namespace unp::faults::hammer
