#include "faults/hammer/pattern.hpp"

#include <algorithm>
#include <map>

#include "common/require.hpp"

namespace unp::faults::hammer {

const char* to_string(PatternKind kind) noexcept {
  switch (kind) {
    case PatternKind::kSingleSided: return "single-sided";
    case PatternKind::kDoubleSided: return "double-sided";
    case PatternKind::kNSided: return "n-sided";
  }
  return "unknown";
}

std::int64_t HammerPattern::span() const noexcept {
  if (aggressor_offsets.empty()) return 0;
  return aggressor_offsets.back() + 1;  // outermost victim flank
}

std::vector<VictimPressure> victim_pressures(const HammerPattern& pattern,
                                             double distance2_factor) {
  UNP_REQUIRE(pattern.aggressor_offsets.size() == pattern.frequencies.size());
  std::map<std::int64_t, double> pressure;
  std::vector<std::int64_t> sorted = pattern.aggressor_offsets;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < pattern.aggressor_offsets.size(); ++i) {
    const std::int64_t a = pattern.aggressor_offsets[i];
    const double f = pattern.frequencies[i];
    for (const std::int64_t d : {-2, -1, +1, +2}) {
      const std::int64_t row = a + d;
      // Aggressors are not victims of each other: their cells are being
      // actively rewritten, not left to leak.
      if (std::binary_search(sorted.begin(), sorted.end(), row)) continue;
      pressure[row] += (d == -1 || d == +1) ? f : distance2_factor * f;
    }
  }
  std::vector<VictimPressure> out;
  out.reserve(pressure.size());
  for (const auto& [row, p] : pressure) out.push_back({row, p});
  return out;
}

HammerPattern PatternBuilder::build(RngStream& rng) const {
  const double weights[3] = {config_.single_sided_weight,
                             config_.double_sided_weight,
                             config_.n_sided_weight};
  HammerPattern pattern;
  int aggressors = 0;
  switch (rng.weighted_index(weights, 3)) {
    case 0:
      pattern.kind = PatternKind::kSingleSided;
      aggressors = 1;
      break;
    case 1:
      pattern.kind = PatternKind::kDoubleSided;
      aggressors = 2;
      break;
    default:
      pattern.kind = PatternKind::kNSided;
      aggressors = static_cast<int>(
          rng.uniform_int(config_.n_min, config_.n_max));
      break;
  }
  double total = 0.0;
  for (int i = 0; i < aggressors; ++i) {
    pattern.aggressor_offsets.push_back(2 * i);
    const double f = rng.uniform(1.0 - config_.frequency_jitter,
                                 1.0 + config_.frequency_jitter);
    pattern.frequencies.push_back(f);
    total += f;
  }
  // Normalize to mean 1 so the activation budget is layout-independent.
  for (double& f : pattern.frequencies) {
    f *= static_cast<double>(aggressors) / total;
  }
  return pattern;
}

}  // namespace unp::faults::hammer
