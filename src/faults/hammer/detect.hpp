// Spatial clustering detector for hammered rows.
//
// Consumes one node's observed faults as (time, word index) pairs in
// nondecreasing time order, maps each to DRAM coordinates, and flags a
// (bank, row) once `min_distinct_words` *distinct* words of that row have
// faulted within a trailing time window.  Time-driven mechanisms scatter
// faults uniformly over ~2^21 (bank, row) cells, so same-row multiplicity
// inside a short window is an access-dependent signature; the thresholds
// below make accidental triggers from the background mechanisms
// negligible while a tripped victim row (a burst of 16+ flips) is caught
// with near certainty.
//
// The detector is a pure function of the observed fault stream - the same
// class drives the live HammerMitigationPolicy, the closed-loop runner and
// the `unp_report --ext hammer` census, so all three agree by construction.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "common/civil_time.hpp"
#include "dram/mapping/mapping.hpp"

namespace unp::faults::hammer {

struct DetectorConfig {
  int min_distinct_words = 3;
  /// Trailing window within which the distinct words must cluster.
  std::int64_t window_seconds = 6 * 3600;
};

struct DetectedRow {
  std::uint32_t bank = 0;
  std::uint64_t row = 0;
  TimePoint trigger_time = 0;
  int distinct_words = 0;  ///< total distinct words seen by end of stream
};

class HammerRowDetector {
 public:
  HammerRowDetector(const dram::mapping::DramMapping& mapping,
                    const DetectorConfig& config)
      : mapping_(mapping), config_(config) {}

  /// Feed one observed fault (times nondecreasing).  Returns true when
  /// this observation newly triggers its row.
  bool observe(TimePoint time, std::uint64_t word_index);

  /// Rows that crossed the threshold, in trigger order.
  [[nodiscard]] const std::vector<DetectedRow>& detections() const noexcept {
    return detections_;
  }

  /// Observed faults that landed on an already-triggered row strictly
  /// after its trigger (what retirement would have absorbed).
  [[nodiscard]] std::uint64_t absorbable_faults() const noexcept {
    return absorbable_;
  }

  [[nodiscard]] std::uint64_t observed_faults() const noexcept {
    return observed_;
  }

  [[nodiscard]] const dram::mapping::DramMapping& mapping() const noexcept {
    return mapping_;
  }

 private:
  struct RowState {
    std::vector<std::pair<TimePoint, std::uint64_t>> recent;  ///< (time, word)
    std::set<std::uint64_t> words_ever;  ///< census of distinct words
    int detection_index = -1;  ///< into detections_, -1 until triggered
  };

  const dram::mapping::DramMapping& mapping_;
  DetectorConfig config_;
  std::map<std::uint64_t, RowState> rows_;  ///< key: bank<<48 | row
  std::vector<DetectedRow> detections_;
  std::uint64_t absorbable_ = 0;
  std::uint64_t observed_ = 0;
};

}  // namespace unp::faults::hammer
