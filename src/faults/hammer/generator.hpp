// Activation-induced (Rowhammer) fault generator.
//
// A synthetic hammer-prone workload model layered on the campaign's seeded
// per-node streams: a small fraction of nodes run workloads that hammer
// aggressor rows in episodes; per scan interval the model accrues each
// victim row's activation count (aggressor activation rate x pattern
// frequency x scanned hours), and when a victim's deterministic per-row
// hammer-count threshold is crossed, a burst of its cells discharges.
// Victim placement follows the node's DramMapping (src/dram/mapping), so
// flips land on *physically* adjacent rows - spatially clustered in DRAM
// coordinates, scattered in the scan space - which is exactly the signature
// HammerMitigationPolicy detects.
//
// Determinism: all randomness derives from (seed, stream id, node index),
// and per-(node,bank,row) thresholds use their own derived stream keyed by
// the cell coordinates, so the same row has one threshold regardless of how
// many episodes touch it or in what order.  Like every generator, this runs
// in the fleet-wide generation phase, making campaign record streams
// byte-identical across thread and shard counts.  The stream ids below are
// pinned by faults/hammer_test.cpp: changing any of them silently rewrites
// every hammer campaign, so bump kHammerDerivationVersion instead.
#pragma once

#include <string>

#include "dram/cell_model.hpp"
#include "faults/generator.hpp"
#include "faults/hammer/pattern.hpp"

namespace unp::faults::hammer {

/// Version of the stream-derivation scheme (mix keys + draw order).
inline constexpr std::uint64_t kHammerDerivationVersion = 1;
/// Per-node workload stream: (seed, kHammerWorkloadStreamId, node index).
inline constexpr std::uint64_t kHammerWorkloadStreamId = 0x4A33;
/// Per-cell threshold stream:
/// (seed, kHammerThresholdStreamId, mix64(node index, bank<<48 | row)).
inline constexpr std::uint64_t kHammerThresholdStreamId = 0x7B17;

class HammerFaultGenerator final : public FaultGenerator {
 public:
  struct Config {
    /// Geometry of the node DRAM (a mapping_menu() name).
    std::string mapping = "lpddr3:mb";
    /// Fraction of the fleet running hammer-prone workloads.
    double hammered_node_fraction = 0.02;
    /// Hammer episodes per hammered node per campaign (Poisson mean).
    double episodes_per_node_mean = 3.0;
    /// Episode duration (uniform hours of wall time).
    double episode_min_h = 6.0;
    double episode_max_h = 36.0;
    /// Aggressor activations per scanned hour (per unit pattern frequency).
    double activations_per_scanned_hour = 1.2e6;
    /// Per-row hammer-count threshold: lognormal with this median and log
    /// sigma.
    double threshold_median = 2.0e6;
    double threshold_log_sigma = 0.5;
    /// Coupling of distance-2 victims relative to direct neighbors.
    double distance2_factor = 0.12;
    /// Distinct victim-row words discharged when a row trips (uniform).
    int flip_words_min = 16;
    int flip_words_max = 28;
    /// Flips land within this long a burst after the threshold crossing.
    double flip_burst_hours = 2.0;
    dram::CellLeakModel::Config leak{};
    PatternBuilder::Config patterns{};
  };

  HammerFaultGenerator() : HammerFaultGenerator(Config{}) {}
  explicit HammerFaultGenerator(Config config);

  void generate(const std::vector<NodeContext>& nodes, std::uint64_t seed,
                std::vector<FaultEvent>& out) const override;

  [[nodiscard]] const Config& config() const noexcept { return config_; }

  /// The threshold the flip model assigns to (node, bank, row) under
  /// `seed` - exposed so tests and the mitigation analysis can reason
  /// about ground truth without re-deriving the stream recipe.
  [[nodiscard]] double row_threshold(std::uint64_t seed,
                                     std::uint64_t node_index,
                                     std::uint32_t bank,
                                     std::uint64_t row) const;

 private:
  Config config_;
};

}  // namespace unp::faults::hammer
