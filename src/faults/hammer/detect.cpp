#include "faults/hammer/detect.hpp"

#include <algorithm>

namespace unp::faults::hammer {

bool HammerRowDetector::observe(TimePoint time, std::uint64_t word_index) {
  ++observed_;
  const dram::mapping::DramCoordinate c = mapping_.decode(word_index);
  const std::uint64_t key = (std::uint64_t{c.bank} << 48) | c.row;
  RowState& state = rows_[key];
  state.words_ever.insert(word_index);

  if (state.detection_index >= 0) {
    DetectedRow& detection =
        detections_[static_cast<std::size_t>(state.detection_index)];
    if (time > detection.trigger_time) ++absorbable_;
    detection.distinct_words = static_cast<int>(state.words_ever.size());
    return false;
  }

  // Trailing window: drop stale observations, then insert if the word is
  // new within the window (a repeated word refreshes its timestamp).
  std::erase_if(state.recent, [&](const auto& entry) {
    return entry.first < time - config_.window_seconds;
  });
  bool fresh = true;
  for (auto& [t, w] : state.recent) {
    if (w == word_index) {
      t = time;
      fresh = false;
      break;
    }
  }
  if (fresh) state.recent.emplace_back(time, word_index);
  if (static_cast<int>(state.recent.size()) < config_.min_distinct_words) {
    return false;
  }
  state.detection_index = static_cast<int>(detections_.size());
  detections_.push_back({c.bank, c.row, time,
                         static_cast<int>(state.words_ever.size())});
  return true;
}

}  // namespace unp::faults::hammer
