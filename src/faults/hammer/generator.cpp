#include "faults/hammer/generator.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/require.hpp"
#include "dram/mapping/mapping.hpp"

namespace unp::faults::hammer {

namespace {

/// One contiguous stretch of scanned time.
struct Segment {
  TimePoint start = 0;
  TimePoint end = 0;
};

}  // namespace

HammerFaultGenerator::HammerFaultGenerator(Config config)
    : config_(std::move(config)) {
  UNP_REQUIRE(config_.hammered_node_fraction >= 0.0 &&
              config_.hammered_node_fraction <= 1.0);
  UNP_REQUIRE(config_.episode_min_h > 0.0 &&
              config_.episode_max_h >= config_.episode_min_h);
  UNP_REQUIRE(config_.activations_per_scanned_hour > 0.0);
  UNP_REQUIRE(config_.threshold_median > 0.0);
  UNP_REQUIRE(config_.flip_words_min >= 1 &&
              config_.flip_words_max >= config_.flip_words_min);
  // Fail fast on a bad geometry name rather than mid-campaign.
  (void)dram::mapping::make_mapping_config(config_.mapping);
}

double HammerFaultGenerator::row_threshold(std::uint64_t seed,
                                           std::uint64_t node_index,
                                           std::uint32_t bank,
                                           std::uint64_t row) const {
  RngStream rng(seed, kHammerThresholdStreamId,
                mix64(node_index, (std::uint64_t{bank} << 48) | row));
  return config_.threshold_median *
         std::exp(config_.threshold_log_sigma * rng.normal());
}

void HammerFaultGenerator::generate(const std::vector<NodeContext>& nodes,
                                    std::uint64_t seed,
                                    std::vector<FaultEvent>& out) const {
  const dram::mapping::DramMapping mapping{
      dram::mapping::make_mapping_config(config_.mapping)};
  const std::uint64_t scannable_words =
      cluster::kScannableBytes / sizeof(Word);
  const dram::CellLeakModel leak(config_.leak);
  const PatternBuilder builder(config_.patterns);

  for (const NodeContext& ctx : nodes) {
    if (ctx.plan == nullptr || ctx.plan->sessions.empty()) continue;
    if (ctx.scanned_hours <= 0.0) continue;
    const auto node_index =
        static_cast<std::uint64_t>(cluster::node_index(ctx.node));
    RngStream rng(seed, kHammerWorkloadStreamId, node_index);
    if (!rng.bernoulli(config_.hammered_node_fraction)) continue;

    const std::uint64_t episodes =
        rng.poisson(config_.episodes_per_node_mean);
    if (episodes == 0) continue;
    const ScannedTimeIndex scanned(*ctx.plan);
    for (std::uint64_t e = 0; e < episodes; ++e) {
      TimePoint ep_start = 0;
      if (!scanned.random_time(rng, ep_start)) break;
      const double duration_h =
          rng.uniform(config_.episode_min_h, config_.episode_max_h);
      const TimePoint ep_end =
          ep_start + static_cast<TimePoint>(duration_h * kSecondsPerHour);

      const auto bank =
          static_cast<std::uint32_t>(rng.uniform_u64(mapping.banks()));
      const HammerPattern pattern = builder.build(rng);

      // Place the base row with flank margin on both sides.
      const std::int64_t span = pattern.span();
      const auto rows = static_cast<std::int64_t>(mapping.rows());
      UNP_REQUIRE(rows > span + 4);
      const std::int64_t base_row =
          2 + static_cast<std::int64_t>(
                  rng.uniform_u64(static_cast<std::uint64_t>(rows - span - 4)));

      // Scanned stretches of the episode: activations only accrue while
      // the scanner owns the memory (the observable half of reality, like
      // every generator in this suite).
      std::vector<Segment> segments;
      double scanned_h = 0.0;
      for (const auto& session : ctx.plan->sessions) {
        const TimePoint s = std::max(session.window.start, ep_start);
        const TimePoint t_end = std::min(session.window.end, ep_end);
        if (t_end <= s) continue;
        segments.push_back({s, t_end});
        scanned_h += static_cast<double>(t_end - s) / kSecondsPerHour;
      }
      if (segments.empty()) continue;

      const std::vector<VictimPressure> victims =
          victim_pressures(pattern, config_.distance2_factor);
      for (const VictimPressure& victim : victims) {
        const auto row =
            static_cast<std::uint64_t>(base_row + victim.row_offset);
        const double rate =
            config_.activations_per_scanned_hour * victim.pressure;
        const double threshold = row_threshold(seed, node_index, bank, row);
        if (rate * scanned_h < threshold) continue;

        // Threshold crossing inside the scanned stretches.
        const double need_h = threshold / rate;
        TimePoint crossing = segments.front().start;
        TimePoint segment_end = segments.front().end;
        double cum_h = 0.0;
        for (const Segment& seg : segments) {
          const double len_h =
              static_cast<double>(seg.end - seg.start) / kSecondsPerHour;
          if (cum_h + len_h >= need_h) {
            crossing = seg.start + static_cast<TimePoint>(
                                       (need_h - cum_h) * kSecondsPerHour);
            segment_end = seg.end;
            break;
          }
          cum_h += len_h;
        }
        const TimePoint burst_end = std::min(
            segment_end,
            crossing + static_cast<TimePoint>(config_.flip_burst_hours *
                                              kSecondsPerHour));

        // Distinct victim-row columns discharge in a burst.
        const auto flips = static_cast<int>(rng.uniform_int(
            config_.flip_words_min, config_.flip_words_max));
        std::set<std::uint64_t> columns;
        while (static_cast<int>(columns.size()) < flips) {
          columns.insert(rng.uniform_u64(mapping.columns()));
        }
        for (const std::uint64_t column : columns) {
          const std::uint64_t word =
              mapping.encode({bank, row, column});
          const TimePoint when =
              crossing +
              static_cast<TimePoint>(rng.uniform_u64(
                  static_cast<std::uint64_t>(burst_end - crossing) + 1));
          const Word bit = Word{1}
                           << static_cast<int>(rng.uniform_u64(32));
          const dram::WordCorruption corruption =
              leak.make_corruption(bit, rng);
          // The top quarter of the module sits outside the 3 GiB scan
          // buffer; flips there are real but unobservable.  Draws happen
          // regardless so the stream stays identical either way.
          if (word >= scannable_words) continue;
          FaultEvent ev;
          ev.time = when;
          ev.node = ctx.node;
          ev.mechanism = Mechanism::kRowhammer;
          ev.persistence = Persistence::kTransient;
          ev.words.push_back({word, corruption});
          out.push_back(std::move(ev));
        }
      }
    }
  }
}

}  // namespace unp::faults::hammer
