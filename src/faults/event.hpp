// Fault taxonomy of the study.
//
// Every observation in the paper is attributed to one of six physical
// mechanisms; the simulator implements one generator per mechanism:
//
//   kBackgroundTransient  rare isolated single-bit upsets anywhere in the
//                         fleet (the "<30 errors over all other nodes").
//   kNeutronEvent         cosmic-ray neutron strikes, modulated by the
//                         sun's elevation; produce single-bit hits,
//                         multi-bit word corruptions (Table I) and
//                         multi-word simultaneous showers (Section III-C).
//   kWeakBit              a manufacturing-weak cell that intermittently
//                         leaks charge; thousands of identical single-bit
//                         errors on one node (nodes 04-05 and 58-02).
//   kDegradingComponent   a progressively failing component corrupting
//                         thousands of addresses in bursts (node 02-04).
//   kPathologicalStuck    a wholesale-stuck region re-logged every pass;
//                         the >98%-of-raw-logs node removed from the study.
//   kIsolatedSdc          the seven >3-bit corruptions that appeared on
//                         otherwise silent nodes (Section III-D).
//   kRowhammer            activation-induced disturbance: victim-row cells
//                         discharged by a neighboring aggressor row crossing
//                         its hammer-count threshold (src/faults/hammer).
//                         Not part of the paper's campaign - an access-
//                         dependent extension, off by default.
//
// A FaultEvent is one root cause manifesting at one instant; it may corrupt
// several words at once (the per-node "simultaneous" corruptions).
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/topology.hpp"
#include "common/civil_time.hpp"
#include "dram/cell_model.hpp"

namespace unp::faults {

enum class Mechanism : std::uint8_t {
  kBackgroundTransient,
  kNeutronEvent,
  kWeakBit,
  kDegradingComponent,
  kPathologicalStuck,
  kIsolatedSdc,
  kRowhammer,
};

[[nodiscard]] const char* to_string(Mechanism mechanism) noexcept;

enum class Persistence : std::uint8_t {
  kTransient,  ///< one-shot upset; repaired by the scanner's next write
  kStuck       ///< cells override writes until `active_until`
};

/// Corruption of one word within an event.
struct WordFault {
  std::uint64_t word_index = 0;  ///< logical word in the node's scan space
  dram::WordCorruption corruption;

  friend bool operator==(const WordFault&, const WordFault&) = default;
};

/// One root cause striking at one instant.
struct FaultEvent {
  TimePoint time = 0;
  cluster::NodeId node;
  Mechanism mechanism = Mechanism::kBackgroundTransient;
  Persistence persistence = Persistence::kTransient;
  /// For kStuck: the fault heals/stops at this time (campaign end for
  /// permanent faults).  Ignored for kTransient.
  TimePoint active_until = 0;
  std::vector<WordFault> words;  ///< at least one

  /// Total cells affected across all words.
  [[nodiscard]] int affected_bits() const noexcept;
};

/// Order events by (time, node) for deterministic processing.
void sort_events(std::vector<FaultEvent>& events);

/// Pointer form of sort_events: same comparator, same resulting permutation
/// for the same input order, but no FaultEvent (and inner word-list) moves.
/// The campaign hot path sorts per-node views into the shared fleet-truth
/// vector with this instead of deep-copying each node's events first.
void sort_event_ptrs(std::vector<const FaultEvent*>& events);

}  // namespace unp::faults
