// The degrading-component fault of node 02-04.
//
// Section III-H: one node began to fail in August 2015 and worsened to more
// than a thousand memory errors per day by November, corrupting over 11,000
// distinct addresses with ~30 recurring corruption patterns, almost all
// single-bit 1->0 flips.  The randomness of the affected locations suggests
// the corruption happened outside the DRAM array itself (a failing
// component, loose DIMM connection or capacitive noise).
//
// Model: corruption *bursts* arrive at an exponentially ramping rate from
// an onset date; each burst simultaneously corrupts several words (this is
// the dominant source of the paper's >26,000 same-instant corruptions, up
// to 36 bits across different words).  Words are drawn from a growing
// address pool (new address with probability `p_new_address`, otherwise a
// re-strike of a previous one) and flip patterns from a fixed per-node pool
// of single-bit discharge masks.
#pragma once

#include "dram/cell_model.hpp"
#include "faults/generator.hpp"

namespace unp::faults {

class DegradingComponentGenerator final : public FaultGenerator {
 public:
  struct Config {
    cluster::NodeId node{2, 4};
    TimePoint onset = from_civil_utc({2015, 8, 10, 0, 0, 0});
    /// Burst rate per scanned hour at onset.
    double initial_rate_per_scanned_hour = 1.6;
    /// e-folding time of the degradation ramp, days.
    double ramp_tau_days = 20.0;
    /// Rate ceiling (bursts per scanned hour).
    double max_rate_per_scanned_hour = 400.0;
    /// Words per burst: 1 + Poisson(mean_extra), capped at `max_words`.
    double mean_extra_words = 0.25;
    int max_words = 36;
    /// Rare wide bursts (the paper's one-off 36-bit event): probability a
    /// burst corrupts `mega_min_words`..`max_words` words instead.
    double p_mega_burst = 0.00025;
    int mega_min_words = 25;
    /// Probability a burst word strikes a never-seen address.
    double p_new_address = 0.22;
    /// Probability a multi-word burst is physically row-aligned: its words
    /// share one (rank, bank, row) and differ only in column - the
    /// proximity/alignment the paper suspects behind simultaneous
    /// corruptions (Section III-C), scattered across logical addresses by
    /// the controller's interleaving.
    double p_row_aligned_burst = 0.55;
    /// Size of the fixed corruption-pattern pool (distinct single bits).
    int pattern_pool = 30;
    /// Fraction of pool patterns whose cell gains charge (reads 1) rather
    /// than leaking; keeps the global 1->0 share near the paper's ~90%.
    double charge_pattern_fraction = 0.10;
    /// Component-swap experiment (the paper's future work: "swap some
    /// components from the most faulty nodes with some healthy nodes").
    /// When swap_date != 0, the failing component moves to `swap_to` at
    /// that instant: bursts before the swap strike `node`, bursts after it
    /// strike `swap_to` (same ramp clock, fresh address space).  If errors
    /// follow the swap, the component - not the slot - is the root cause.
    TimePoint swap_date = 0;
    cluster::NodeId swap_to{0, 1};
  };

  DegradingComponentGenerator() : DegradingComponentGenerator(Config{}) {}
  explicit DegradingComponentGenerator(const Config& config) : config_(config) {}

  void generate(const std::vector<NodeContext>& nodes, std::uint64_t seed,
                std::vector<FaultEvent>& out) const override;

  /// Burst rate (per scanned hour) at time `t`.
  [[nodiscard]] double rate_at(TimePoint t) const noexcept;

  [[nodiscard]] const Config& config() const noexcept { return config_; }

 private:
  Config config_;
};

}  // namespace unp::faults
