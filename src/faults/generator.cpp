#include "faults/generator.hpp"

#include <algorithm>

#include "common/require.hpp"

namespace unp::faults {

std::uint64_t random_word_index(RngStream& rng) {
  return rng.uniform_u64(cluster::kScannableBytes / sizeof(Word));
}

bool random_scanned_time(const sched::ScanPlan& plan, RngStream& rng,
                         TimePoint& out) {
  std::int64_t total = 0;
  for (const auto& s : plan.sessions) total += s.window.seconds();
  if (total <= 0) return false;

  auto offset =
      static_cast<std::int64_t>(rng.uniform_u64(static_cast<std::uint64_t>(total)));
  for (const auto& s : plan.sessions) {
    if (offset < s.window.seconds()) {
      out = s.window.start + offset;
      return true;
    }
    offset -= s.window.seconds();
  }
  UNP_ENSURE(!"unreachable: offset exceeded total session time");
  return false;
}

void ScannedTimeIndex::reset(const sched::ScanPlan& plan) {
  plan_ = &plan;
  prefix_.clear();
  prefix_.reserve(plan.sessions.size() + 1);
  std::int64_t total = 0;
  prefix_.push_back(0);
  for (const auto& s : plan.sessions) {
    total += s.window.seconds();
    prefix_.push_back(total);
  }
}

bool ScannedTimeIndex::random_time(RngStream& rng, TimePoint& out) const {
  UNP_REQUIRE(plan_ != nullptr);
  const std::int64_t total = prefix_.back();
  if (total <= 0) return false;

  const auto offset =
      static_cast<std::int64_t>(rng.uniform_u64(static_cast<std::uint64_t>(total)));
  // First session whose cumulative span exceeds `offset` — the session the
  // linear walk in random_scanned_time would have stopped at.
  const auto it = std::upper_bound(prefix_.begin(), prefix_.end(), offset);
  const auto idx = static_cast<std::size_t>(it - prefix_.begin()) - 1;
  out = plan_->sessions[idx].window.start + (offset - prefix_[idx]);
  return true;
}

}  // namespace unp::faults
