#include "faults/generator.hpp"

#include "common/require.hpp"

namespace unp::faults {

std::uint64_t random_word_index(RngStream& rng) {
  return rng.uniform_u64(cluster::kScannableBytes / sizeof(Word));
}

bool random_scanned_time(const sched::ScanPlan& plan, RngStream& rng,
                         TimePoint& out) {
  std::int64_t total = 0;
  for (const auto& s : plan.sessions) total += s.window.seconds();
  if (total <= 0) return false;

  auto offset =
      static_cast<std::int64_t>(rng.uniform_u64(static_cast<std::uint64_t>(total)));
  for (const auto& s : plan.sessions) {
    if (offset < s.window.seconds()) {
      out = s.window.start + offset;
      return true;
    }
    offset -= s.window.seconds();
  }
  UNP_ENSURE(!"unreachable: offset exceeded total session time");
  return false;
}

}  // namespace unp::faults
