#include "faults/weak_bit.hpp"

#include <algorithm>

#include "common/require.hpp"

namespace unp::faults {

WeakBitGenerator::Config WeakBitGenerator::default_config() {
  Config config;
  WeakBitSpec a;
  a.node = cluster::NodeId{4, 5};
  a.bit = 9;
  a.activity_start = from_civil_utc({2015, 8, 1, 0, 0, 0});
  a.activity_end = from_civil_utc({2016, 1, 1, 0, 0, 0});
  config.specs.push_back(a);

  WeakBitSpec b;
  b.node = cluster::NodeId{58, 2};
  b.bit = 21;
  b.activity_start = from_civil_utc({2015, 9, 15, 0, 0, 0});
  b.activity_end = from_civil_utc({2016, 2, 20, 0, 0, 0});
  config.specs.push_back(b);
  return config;
}

WeakBitGenerator::Config WeakBitGenerator::physical_config(
    const std::vector<cluster::NodeId>& fleet,
    const dram::RetentionModel& retention,
    const env::TemperatureModel& temperature, const CampaignWindow& window,
    std::uint64_t seed) {
  Config config;
  RngStream rng(seed, /*stream_id=*/0x7EA7);
  for (const cluster::NodeId node : fleet) {
    // Idle-scan temperature of this node (room mid-band + its idle delta).
    const double idle_c =
        0.5 * (temperature.config().room_min_c + temperature.config().room_max_c) +
        temperature.node_idle_delta_c(
            static_cast<std::uint32_t>(cluster::node_index(node)));
    const double expected =
        retention.expected_weak_bits(cluster::kScannableBytes, idle_c);
    const std::uint64_t weak_cells = rng.poisson(expected);
    for (std::uint64_t w = 0; w < weak_cells; ++w) {
      WeakBitSpec spec;
      spec.node = node;
      spec.bit = static_cast<int>(rng.uniform_u64(32));
      // VRT episodes cluster inside a multi-month active season whose
      // placement is the cell's own (state transitions are temperature- and
      // stress-driven and look random at campaign scale).
      const std::int64_t span = window.duration_seconds();
      const TimePoint start =
          window.start +
          static_cast<TimePoint>(rng.uniform_u64(static_cast<std::uint64_t>(span / 2)));
      spec.activity_start = start;
      spec.activity_end = std::min<TimePoint>(
          window.end,
          start + static_cast<TimePoint>(rng.uniform_u64(
                      static_cast<std::uint64_t>(span / 2))) +
              30 * kSecondsPerDay);
      config.specs.push_back(spec);
    }
  }
  return config;
}

void WeakBitGenerator::generate(const std::vector<NodeContext>& nodes,
                                std::uint64_t seed,
                                std::vector<FaultEvent>& out) const {
  for (const auto& spec : config_.specs) {
    UNP_REQUIRE(spec.bit >= 0 && spec.bit < 32);
    UNP_REQUIRE(spec.activity_end >= spec.activity_start);

    const NodeContext* ctx = nullptr;
    for (const auto& n : nodes) {
      if (n.node == spec.node) {
        ctx = &n;
        break;
      }
    }
    if (ctx == nullptr || ctx->plan == nullptr) continue;

    RngStream rng(seed, /*stream_id=*/0x3EAB,
                  static_cast<std::uint64_t>(cluster::node_index(spec.node)));

    // The weak cell's word: one fixed location for the node's lifetime.
    const std::uint64_t word = random_word_index(rng);
    const auto corruption =
        dram::CellLeakModel::all_discharge(Word{1} << spec.bit);

    // Episode arrivals across the activity window.
    const double window_days =
        static_cast<double>(spec.activity_end - spec.activity_start) /
        kSecondsPerDay;
    const std::uint64_t episodes = rng.poisson(spec.episodes_per_day * window_days);

    for (std::uint64_t e = 0; e < episodes; ++e) {
      const TimePoint ep_start =
          spec.activity_start +
          static_cast<TimePoint>(rng.uniform_u64(static_cast<std::uint64_t>(
              spec.activity_end - spec.activity_start)));
      const double dur_h = rng.uniform(spec.episode_min_h, spec.episode_max_h);
      const TimePoint ep_end =
          ep_start + static_cast<TimePoint>(dur_h * kSecondsPerHour);

      // Leak events within (episode window intersect scan sessions).
      for (const auto& session : ctx->plan->sessions) {
        const TimePoint s = std::max(session.window.start, ep_start);
        const TimePoint t_end = std::min(session.window.end, ep_end);
        if (t_end <= s) continue;
        const double hours = static_cast<double>(t_end - s) / kSecondsPerHour;
        const std::uint64_t leaks =
            rng.poisson(spec.leak_rate_per_scanned_hour * hours);
        for (std::uint64_t l = 0; l < leaks; ++l) {
          FaultEvent ev;
          ev.time = s + static_cast<TimePoint>(
                            rng.uniform_u64(static_cast<std::uint64_t>(t_end - s)));
          ev.node = spec.node;
          ev.mechanism = Mechanism::kWeakBit;
          ev.persistence = Persistence::kTransient;
          ev.words.push_back({word, corruption});
          out.push_back(std::move(ev));
        }
      }
    }
  }
}

}  // namespace unp::faults
