// Generator interface shared by all fault mechanisms.
//
// Generators see the *scan plans*: since the study can only observe faults
// while the scanner holds the memory, event rates are expressed per scanned
// hour and events are placed inside scan sessions.  (Faults striking memory
// owned by a running job were invisible to the study by construction -
// that asymmetry is the paper's core motivation, and the simulator
// reproduces the observable half of reality.)
//
// Determinism: generate() must derive all randomness from streams keyed by
// (seed, generator tag, node index) so campaigns are reproducible and
// node-parallel generation is order-independent.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/topology.hpp"
#include "common/rng.hpp"
#include "faults/event.hpp"
#include "sched/scan_plan.hpp"

namespace unp::faults {

/// Per-node inputs available to generators.
struct NodeContext {
  cluster::NodeId node;
  const sched::ScanPlan* plan = nullptr;
  double scanned_hours = 0.0;
  /// True when this node sits next to the overheating SoC-12 column
  /// (soc 11 or 13) - used by the isolated-SDC placement per Section III-D.
  bool near_overheating_slot = false;
};

class FaultGenerator {
 public:
  virtual ~FaultGenerator() = default;

  /// Append this mechanism's events for the whole fleet.
  virtual void generate(const std::vector<NodeContext>& nodes,
                        std::uint64_t seed,
                        std::vector<FaultEvent>& out) const = 0;
};

/// Uniform draw of a word index within the scannable space.
[[nodiscard]] std::uint64_t random_word_index(RngStream& rng);

/// Draw a fault time uniformly within the scanned time of `plan`
/// (proportional to session lengths).  Returns false if the plan has no
/// sessions.  One-shot convenience: generators drawing many times from the
/// same plan should build a ScannedTimeIndex instead — this walks every
/// session per draw.
[[nodiscard]] bool random_scanned_time(const sched::ScanPlan& plan,
                                       RngStream& rng, TimePoint& out);

/// Prefix-summed view over a plan's sessions for repeated scanned-time
/// draws: build once per node (O(sessions)), then each draw costs one
/// uniform variate and a binary search.  Draws consume the RNG exactly like
/// random_scanned_time and map the variate to the identical instant, so
/// swapping one for the other never moves an event.
class ScannedTimeIndex {
 public:
  ScannedTimeIndex() = default;
  explicit ScannedTimeIndex(const sched::ScanPlan& plan) { reset(plan); }

  /// Rebind to another plan, reusing the prefix vector's capacity.
  void reset(const sched::ScanPlan& plan);

  [[nodiscard]] bool built() const noexcept { return plan_ != nullptr; }

  /// Uniform instant within the plan's scanned time; false if none exists
  /// (then the RNG is untouched, matching random_scanned_time).
  [[nodiscard]] bool random_time(RngStream& rng, TimePoint& out) const;

 private:
  const sched::ScanPlan* plan_ = nullptr;
  /// prefix_[i] = total scanned seconds of sessions [0, i).
  std::vector<std::int64_t> prefix_;
};

}  // namespace unp::faults
