#include "faults/isolated_sdc.hpp"

#include <algorithm>

#include "common/require.hpp"

namespace unp::faults {

namespace {

/// Find a placement inside one of `plan`'s alternating-pattern sessions on
/// (or near) the target local day, at an instant whose *next* check pass
/// expects 0xFFFFFFFF so the full discharge mask is observable.  Physical
/// strikes do not care about pattern phase, but these seven events are
/// defined by having been observed at full width, so placement honours
/// observability.  Returns false if the node never scans near the target.
bool place_observable(const sched::ScanPlan& plan, TimePoint target,
                      TimePoint& out) {
  const sched::ScanSession* best = nullptr;
  std::int64_t best_distance = 0;
  for (const auto& s : plan.sessions) {
    if (s.pattern != scanner::PatternKind::kAlternating) continue;
    if (s.iterations() < 4) continue;
    std::int64_t distance = 0;
    if (target < s.window.start) {
      distance = s.window.start - target;
    } else if (target >= s.window.end) {
      distance = target - (s.window.end - 1);
    }
    if (best == nullptr || distance < best_distance) {
      best = &s;
      best_distance = distance;
    }
  }
  if (best == nullptr) return false;

  // Inside the chosen session, pick the pass closest to the target whose
  // write value is 0xFFFFFFFF (odd pass index for the alternating pattern);
  // the fault lands mid-pass and is checked against that write.
  const TimePoint clamped = std::clamp(target, best->window.start,
                                       best->window.end - 1);
  std::uint64_t pass = static_cast<std::uint64_t>(
                           (clamped - best->window.start) / best->pass_period_s);
  if (pass % 2 == 0) ++pass;  // odd passes write 0xFFFFFFFF
  if (pass + 1 >= best->iterations() && pass >= 2) pass -= 2;
  out = best->window.start +
        static_cast<TimePoint>(pass) * best->pass_period_s +
        best->pass_period_s / 2;
  return best->window.contains(out);
}

}  // namespace

void IsolatedSdcGenerator::generate(const std::vector<NodeContext>& nodes,
                                    std::uint64_t seed,
                                    std::vector<FaultEvent>& out) const {
  UNP_REQUIRE(config_.bit_counts.size() == config_.target_days.size());
  RngStream rng(seed, /*stream_id=*/0x5DCA);

  auto is_avoided = [&](cluster::NodeId id) {
    return std::find(config_.avoid_nodes.begin(), config_.avoid_nodes.end(),
                     id) != config_.avoid_nodes.end();
  };

  // Host selection: `near_overheating` hosts adjacent to the SoC-12 column,
  // the rest anywhere quiet.  Deterministic scan order + random skip keeps
  // the choice seed-dependent but stable.
  std::vector<const NodeContext*> hosts;
  auto pick_hosts = [&](bool need_near, int count) {
    std::vector<const NodeContext*> candidates;
    for (const auto& n : nodes) {
      if (n.plan == nullptr || n.scanned_hours < 1000.0) continue;
      if (is_avoided(n.node)) continue;
      if (n.near_overheating_slot != need_near) continue;
      if (std::find(hosts.begin(), hosts.end(), &n) != hosts.end()) continue;
      candidates.push_back(&n);
    }
    for (int c = 0; c < count && !candidates.empty(); ++c) {
      const std::size_t idx = rng.uniform_u64(candidates.size());
      hosts.push_back(candidates[idx]);
      candidates.erase(candidates.begin() + static_cast<std::ptrdiff_t>(idx));
    }
  };
  pick_hosts(true, std::min(config_.near_overheating, config_.distinct_nodes));
  pick_hosts(false, config_.distinct_nodes - static_cast<int>(hosts.size()));
  if (hosts.empty()) return;

  for (std::size_t e = 0; e < config_.bit_counts.size(); ++e) {
    const int bits = config_.bit_counts[e];
    UNP_REQUIRE(bits > 3 && bits <= 32);
    // The first hosts carry one event each; the overflow all lands on the
    // last host (Section III-D: four of the errors struck nodes that had
    // only that one error; the remainder share a node).
    const NodeContext* host = hosts[std::min(e, hosts.size() - 1)];

    TimePoint target = from_civil_utc(config_.target_days[e]) +
                       static_cast<TimePoint>(rng.uniform_u64(kSecondsPerDay));
    TimePoint when = 0;
    if (!place_observable(*host->plan, target, when)) continue;

    Word mask;
    const int start = static_cast<int>(rng.uniform_u64(
        static_cast<std::uint64_t>(33 - bits)));
    if (rng.bernoulli(config_.consecutive_fraction)) {
      mask = ((bits == 32) ? ~Word{0} : ((Word{1} << bits) - 1))
             << start;
    } else {
      mask = config_.scrambler.contiguous_upset(start, bits);
    }

    FaultEvent ev;
    ev.time = when;
    ev.node = host->node;
    ev.mechanism = Mechanism::kIsolatedSdc;
    ev.persistence = Persistence::kTransient;
    ev.words.push_back(
        {random_word_index(rng), dram::CellLeakModel::all_discharge(mask)});
    out.push_back(std::move(ev));
  }
}

}  // namespace unp::faults
