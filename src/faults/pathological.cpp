#include "faults/pathological.hpp"

#include <algorithm>
#include <bit>

#include "common/require.hpp"

namespace unp::faults {

void PathologicalNodeGenerator::generate(const std::vector<NodeContext>& nodes,
                                         std::uint64_t seed,
                                         std::vector<FaultEvent>& out) const {
  UNP_REQUIRE(config_.removal >= config_.onset);
  const NodeContext* ctx = nullptr;
  for (const auto& n : nodes) {
    if (n.node == config_.node) {
      ctx = &n;
      break;
    }
  }
  if (ctx == nullptr) return;

  RngStream rng(seed, /*stream_id=*/0xBAD0,
                static_cast<std::uint64_t>(cluster::node_index(config_.node)));

  for (int a = 0; a < config_.stuck_addresses; ++a) {
    FaultEvent ev;
    // Addresses fail over the first day of the breakdown, not all in the
    // same second (the component died over hours, not instantaneously).
    ev.time = config_.onset +
              static_cast<TimePoint>(rng.uniform_u64(kSecondsPerDay));
    ev.node = config_.node;
    ev.mechanism = Mechanism::kPathologicalStuck;
    ev.persistence = Persistence::kStuck;
    ev.active_until = config_.removal;

    const auto bits = static_cast<int>(
        std::min<std::uint64_t>(1 + rng.poisson(config_.mean_extra_bits), 8));
    Word mask = 0;
    while (std::popcount(mask) < bits) {
      mask |= Word{1} << rng.uniform_u64(32);
    }
    ev.words.push_back(
        {random_word_index(rng), dram::CellLeakModel::all_discharge(mask)});
    out.push_back(std::move(ev));
  }
}

}  // namespace unp::faults
