#include "faults/degrading.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/require.hpp"
#include "dram/address_map.hpp"

namespace unp::faults {

double DegradingComponentGenerator::rate_at(TimePoint t) const noexcept {
  if (t < config_.onset) return 0.0;
  const double days =
      static_cast<double>(t - config_.onset) / kSecondsPerDay;
  const double rate = config_.initial_rate_per_scanned_hour *
                      std::exp(days / config_.ramp_tau_days);
  return std::min(rate, config_.max_rate_per_scanned_hour);
}

void DegradingComponentGenerator::generate(const std::vector<NodeContext>& nodes,
                                           std::uint64_t seed,
                                           std::vector<FaultEvent>& out) const {
  auto find_ctx = [&](cluster::NodeId id) -> const NodeContext* {
    for (const auto& n : nodes) {
      if (n.node == id) return &n;
    }
    return nullptr;
  };

  // The failing component lives in one slot until the (optional) swap, then
  // continues degrading in its new host.
  struct Phase {
    const NodeContext* ctx;
    TimePoint from;
    TimePoint to;
  };
  constexpr TimePoint kForever = std::numeric_limits<TimePoint>::max();
  std::vector<Phase> phases;
  if (const NodeContext* ctx = find_ctx(config_.node); ctx != nullptr) {
    phases.push_back({ctx, 0,
                      config_.swap_date != 0 ? config_.swap_date : kForever});
  }
  if (config_.swap_date != 0) {
    if (const NodeContext* ctx = find_ctx(config_.swap_to); ctx != nullptr) {
      phases.push_back({ctx, config_.swap_date, kForever});
    }
  }
  if (phases.empty()) return;

  RngStream rng(seed, /*stream_id=*/0xDE64,
                static_cast<std::uint64_t>(cluster::node_index(config_.node)));

  // Fixed corruption-pattern pool: property of the *component*, shared
  // across hosts.  Distinct single-bit masks, mostly discharge.
  std::vector<dram::WordCorruption> patterns;
  patterns.reserve(static_cast<std::size_t>(config_.pattern_pool));
  {
    Word used = 0;
    while (static_cast<int>(patterns.size()) < std::min(config_.pattern_pool, 32)) {
      const auto bit = static_cast<int>(rng.uniform_u64(32));
      const Word mask = Word{1} << bit;
      if (used & mask) continue;
      used |= mask;
      if (rng.bernoulli(config_.charge_pattern_fraction)) {
        patterns.push_back(dram::WordCorruption{mask, mask});  // reads 1
      } else {
        patterns.push_back(dram::CellLeakModel::all_discharge(mask));
      }
    }
  }

  for (const Phase& phase : phases) {
    // Address pool is host-local: a different slot maps the component into
    // a fresh region of the node's address space.
    std::vector<std::uint64_t> address_pool;
    auto draw_word = [&](RngStream& r) -> std::uint64_t {
      if (address_pool.empty() || r.bernoulli(config_.p_new_address)) {
        address_pool.push_back(random_word_index(r));
        return address_pool.back();
      }
      return address_pool[r.uniform_u64(address_pool.size())];
    };

    // Walk each scan session in one-hour slices; Poisson bursts per slice
    // at the ramping rate.
    for (const auto& session : phase.ctx->plan->sessions) {
      const TimePoint lo = std::max(session.window.start, phase.from);
      const TimePoint hi = std::min(session.window.end, phase.to);
      for (TimePoint slice = lo; slice < hi; slice += kSecondsPerHour) {
        const TimePoint slice_end =
            std::min<TimePoint>(slice + kSecondsPerHour, hi);
        const double hours =
            static_cast<double>(slice_end - slice) / kSecondsPerHour;
        const TimePoint mid = slice + (slice_end - slice) / 2;
        const std::uint64_t bursts = rng.poisson(rate_at(mid) * hours);

        for (std::uint64_t b = 0; b < bursts; ++b) {
          FaultEvent ev;
          ev.time = slice + static_cast<TimePoint>(rng.uniform_u64(
                                static_cast<std::uint64_t>(slice_end - slice)));
          ev.node = phase.ctx->node;
          ev.mechanism = Mechanism::kDegradingComponent;
          ev.persistence = Persistence::kTransient;

          std::uint64_t words = std::min<std::uint64_t>(
              1 + rng.poisson(config_.mean_extra_words),
              static_cast<std::uint64_t>(config_.max_words));
          if (rng.bernoulli(config_.p_mega_burst)) {
            words = static_cast<std::uint64_t>(config_.mega_min_words) +
                    rng.uniform_u64(static_cast<std::uint64_t>(
                        config_.max_words - config_.mega_min_words + 1));
          }
          if (words >= 2 && rng.bernoulli(config_.p_row_aligned_burst)) {
            // Physically aligned burst: one (rank, bank, row), distinct
            // columns.  The column field is the low bits of the word index,
            // so the aligned words stay inside the scan buffer.
            static const dram::AddressMap map{dram::default_geometry()};
            dram::WordLocation loc = map.decode(draw_word(rng));
            for (std::uint64_t w = 0; w < words; ++w) {
              loc.column = static_cast<std::uint32_t>(
                  rng.uniform_u64(map.geometry().columns));
              ev.words.push_back({map.encode(loc),
                                  patterns[rng.uniform_u64(patterns.size())]});
            }
          } else {
            for (std::uint64_t w = 0; w < words; ++w) {
              ev.words.push_back(
                  {draw_word(rng), patterns[rng.uniform_u64(patterns.size())]});
            }
          }
          out.push_back(std::move(ev));
        }
      }
    }
  }
}

}  // namespace unp::faults
