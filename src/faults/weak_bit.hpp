// Weak-bit intermittent faults.
//
// Section III-H: two of the three loudest nodes (04-05 and 58-02) produced
// thousands of errors in which "the corrupted bit was the same in 100% of
// the cases" - a manufacturing-weak cell that escaped burn-in and leaks
// charge episodically.  Episodes cluster in time: they are what drives the
// study's 77 degraded-mode days and the whole quarantine analysis
// (Table II).
//
// Model per weak bit: within a seasonal activity window, leak *episodes*
// arrive as a Poisson process; during an episode the cell misreads at a
// fixed rate per scanned hour.  Every emitted event is a one-shot
// discharge of the same (word, bit).
#pragma once

#include <vector>

#include "dram/cell_model.hpp"
#include "dram/retention.hpp"
#include "env/temperature.hpp"
#include "faults/generator.hpp"

namespace unp::faults {

struct WeakBitSpec {
  cluster::NodeId node;
  /// Fixed flipped bit position (0..31).
  int bit = 0;
  /// Seasonal window in which episodes can occur.
  TimePoint activity_start = 0;
  TimePoint activity_end = 0;
  /// Episode arrivals per day inside the activity window.
  double episodes_per_day = 0.095;
  /// Episode duration (uniform hours).
  double episode_min_h = 24.0;
  double episode_max_h = 84.0;
  /// Misread rate per scanned hour while an episode is active.
  double leak_rate_per_scanned_hour = 14.0;
};

class WeakBitGenerator final : public FaultGenerator {
 public:
  struct Config {
    std::vector<WeakBitSpec> specs;
  };

  /// Default: the paper's two weak-bit nodes with autumn/winter activity.
  [[nodiscard]] static Config default_config();

  /// Physically derived configuration: instead of naming the weak-bit
  /// nodes, sample them from the VRT retention model - each node draws
  /// Poisson(expected observable weak cells at its idle temperature) weak
  /// bits, each receiving a random multi-month activity window.  With the
  /// calibrated retention defaults a 923-node fleet comes out with a
  /// handful of weak-bit nodes: the study's observation made emergent.
  [[nodiscard]] static Config physical_config(
      const std::vector<cluster::NodeId>& fleet,
      const dram::RetentionModel& retention,
      const env::TemperatureModel& temperature, const CampaignWindow& window,
      std::uint64_t seed);

  WeakBitGenerator() : WeakBitGenerator(default_config()) {}
  explicit WeakBitGenerator(Config config) : config_(std::move(config)) {}

  void generate(const std::vector<NodeContext>& nodes, std::uint64_t seed,
                std::vector<FaultEvent>& out) const override;

  [[nodiscard]] const Config& config() const noexcept { return config_; }

 private:
  Config config_;
};

}  // namespace unp::faults
