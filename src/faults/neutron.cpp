#include "faults/neutron.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"

namespace unp::faults {

namespace {

/// Start position for a flip cluster, biased toward the low half of the
/// word (Section III-C: "the majority of the multiple bit corruptions occur
/// in the least significant bits").
int biased_low_start(RngStream& rng) {
  return static_cast<int>(rng.bernoulli(0.7) ? rng.uniform_u64(16)
                                             : 16 + rng.uniform_u64(14));
}

/// Pick the index of a weighted node (by scanned hours).  Returns npos when
/// no node has scan time.
std::size_t pick_weighted_node(const std::vector<NodeContext>& nodes,
                               RngStream& rng) {
  double total = 0.0;
  for (const auto& n : nodes) total += n.scanned_hours;
  if (total <= 0.0) return static_cast<std::size_t>(-1);
  double target = rng.uniform() * total;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    target -= nodes[i].scanned_hours;
    if (target < 0.0) return i;
  }
  return nodes.size() - 1;
}

const NodeContext* find_node(const std::vector<NodeContext>& nodes,
                             cluster::NodeId id) {
  for (const auto& n : nodes) {
    if (n.node == id) return &n;
  }
  return nullptr;
}

}  // namespace

Word NeutronEventGenerator::draw_multibit_mask(int bits, RngStream& rng) const {
  UNP_REQUIRE(bits >= 2 && bits <= 32);
  const int start = biased_low_start(rng);
  if (rng.bernoulli(config_.consecutive_fraction)) {
    // Logically consecutive run (bus/latch side upset).
    Word mask = 0;
    for (int i = 0; i < bits; ++i) mask |= Word{1} << ((start + i) % 32);
    return mask;
  }
  // Physically contiguous cell cluster, seen through the layout scrambler.
  return config_.scrambler.contiguous_upset(start, bits);
}

bool NeutronEventGenerator::sample_flux_time(const ScannedTimeIndex& scanned,
                                             RngStream& rng,
                                             TimePoint& out) const {
  const double flux_max =
      config_.flux.altitude_factor() * (1.0 + config_.flux.config().solar_amplitude);
  // Thinning: uniform candidate over scanned time, accepted proportionally
  // to the relative flux.  The acceptance rate is bounded below by
  // 1/(1+amplitude), so the retry loop terminates quickly in practice;
  // the iteration cap keeps pathological configs from spinning.
  for (int attempt = 0; attempt < 4096; ++attempt) {
    TimePoint candidate = 0;
    if (!scanned.random_time(rng, candidate)) return false;
    if (rng.uniform() * flux_max <= config_.flux.flux(candidate)) {
      out = candidate;
      return true;
    }
  }
  return false;
}

void NeutronEventGenerator::generate(const std::vector<NodeContext>& nodes,
                                     std::uint64_t seed,
                                     std::vector<FaultEvent>& out) const {
  RngStream rng(seed, /*stream_id=*/0x4E07);

  // Events land on weighted-random nodes, so session prefix sums are built
  // lazily, once per node that actually hosts an event.
  std::vector<ScannedTimeIndex> scan_index(nodes.size());
  const auto scanned_for = [&](const NodeContext* ctx) -> const ScannedTimeIndex& {
    const auto i = static_cast<std::size_t>(ctx - nodes.data());
    if (!scan_index[i].built()) scan_index[i].reset(*ctx->plan);
    return scan_index[i];
  };

  // --- Susceptible repeat sites: fixed (node, word, corruption) tuples. ---
  struct RepeatSite {
    const NodeContext* node = nullptr;
    std::uint64_t word = 0;
    dram::WordCorruption corruption;
  };
  std::vector<RepeatSite> sites;
  if (!config_.repeat_site_nodes.empty()) {
    for (int s = 0; s < config_.repeat_sites; ++s) {
      const cluster::NodeId host =
          config_.repeat_site_nodes[static_cast<std::size_t>(s) %
                                    config_.repeat_site_nodes.size()];
      const NodeContext* ctx = find_node(nodes, host);
      if (ctx == nullptr || ctx->scanned_hours <= 0.0) continue;
      RepeatSite site;
      site.node = ctx;
      site.word = random_word_index(rng);
      const int bits = 2;  // susceptible pairs: the repeated Table I rows are doubles
      // A susceptible pair upsets identically on every strike: discharge.
      site.corruption =
          dram::CellLeakModel::all_discharge(draw_multibit_mask(bits, rng));
      sites.push_back(site);
    }
  }

  // --- Multi-bit strike events. ---
  const std::uint64_t multibit_events = rng.poisson(config_.multibit_events_fleet);
  for (std::uint64_t e = 0; e < multibit_events; ++e) {
    const bool on_site = !sites.empty() && rng.bernoulli(config_.repeat_site_fraction);

    const NodeContext* ctx = nullptr;
    FaultEvent ev;
    if (on_site) {
      const auto& site = sites[rng.uniform_u64(sites.size())];
      ctx = site.node;
      ev.words.push_back({site.word, site.corruption});
    } else {
      const std::size_t idx = pick_weighted_node(nodes, rng);
      if (idx == static_cast<std::size_t>(-1)) break;
      ctx = &nodes[idx];
      const int bits = rng.bernoulli(config_.p_three_bits) ? 3 : 2;
      ev.words.push_back({random_word_index(rng),
                          leak_.make_corruption(draw_multibit_mask(bits, rng), rng)});
    }

    bool placed = false;
    for (int attempt = 0; attempt < 64 && !placed; ++attempt) {
      if (!sample_flux_time(scanned_for(ctx), rng, ev.time)) break;
      if (!on_site || config_.site_ramp_tau_days <= 0.0) {
        placed = true;
        break;
      }
      // Degradation ramp of the susceptible sites: acceptance 1 at the
      // reference date, falling e-fold per tau going back in time.
      const double days_before =
          static_cast<double>(config_.site_ramp_reference - ev.time) /
          kSecondsPerDay;
      const double accept =
          days_before <= 0.0 ? 1.0
                             : std::exp(-days_before / config_.site_ramp_tau_days);
      placed = rng.bernoulli(accept);
    }
    if (!placed) continue;
    ev.node = ctx->node;
    ev.mechanism = Mechanism::kNeutronEvent;
    ev.persistence = Persistence::kTransient;

    // Accompanying corruption elsewhere in the same node's memory.
    if (rng.bernoulli(config_.p_accompanied)) {
      const std::uint64_t extra = 1 + rng.poisson(config_.accompany_extra_mean);
      for (std::uint64_t i = 0; i < extra; ++i) {
        const Word mask = Word{1} << rng.uniform_u64(32);
        ev.words.push_back(
            {random_word_index(rng), leak_.make_corruption(mask, rng)});
      }
      if (rng.bernoulli(config_.p_double_double)) {
        ev.words.push_back(
            {random_word_index(rng),
             leak_.make_corruption(draw_multibit_mask(2, rng), rng)});
      }
    }
    out.push_back(std::move(ev));
  }

  // --- Independent all-single-bit showers. ---
  const std::uint64_t shower_events =
      rng.poisson(config_.single_shower_events_fleet);
  for (std::uint64_t e = 0; e < shower_events; ++e) {
    const std::size_t idx = pick_weighted_node(nodes, rng);
    if (idx == static_cast<std::size_t>(-1)) break;
    const NodeContext& ctx = nodes[idx];
    FaultEvent ev;
    if (!sample_flux_time(scanned_for(&ctx), rng, ev.time)) continue;
    ev.node = ctx.node;
    ev.mechanism = Mechanism::kNeutronEvent;
    ev.persistence = Persistence::kTransient;
    const std::uint64_t words =
        std::min<std::uint64_t>(2 + rng.poisson(config_.shower_words_mean), 36);
    for (std::uint64_t w = 0; w < words; ++w) {
      const Word mask = Word{1} << rng.uniform_u64(32);
      ev.words.push_back({random_word_index(rng), leak_.make_corruption(mask, rng)});
    }
    out.push_back(std::move(ev));
  }
}

}  // namespace unp::faults
