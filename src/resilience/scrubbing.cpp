#include "resilience/scrubbing.hpp"

#include <unordered_map>

#include "common/require.hpp"

namespace unp::resilience {

double analytic_accumulation_per_node_year(double fault_rate_per_node_hour,
                                           std::uint64_t node_bytes,
                                           const ScrubbingConfig& config) {
  UNP_REQUIRE(fault_rate_per_node_hour >= 0.0);
  UNP_REQUIRE(node_bytes > 0);
  UNP_REQUIRE(config.scrub_interval_h > 0.0);
  UNP_REQUIRE(config.ecc_word_bytes > 0);

  // Faults per scrub period, spread uniformly over W ECC words: the
  // expected number of same-word pairs per period is lambda^2 / (2W)
  // (Poisson pair count), and each pair is one uncorrectable accumulation.
  const double words = static_cast<double>(node_bytes) /
                       static_cast<double>(config.ecc_word_bytes);
  const double per_period = fault_rate_per_node_hour * config.scrub_interval_h;
  const double pairs_per_period = per_period * per_period / (2.0 * words);
  const double periods_per_year = 24.0 * 365.0 / config.scrub_interval_h;
  return pairs_per_period * periods_per_year;
}

ScrubbingOutcome replay_scrubbing(const std::vector<analysis::FaultRecord>& faults,
                                  const ScrubbingConfig& config) {
  UNP_REQUIRE(config.scrub_interval_h > 0.0);
  UNP_REQUIRE(config.ecc_word_bytes > 0);

  ScrubbingOutcome outcome;
  outcome.scrub_interval_h = config.scrub_interval_h;
  const auto period_s =
      static_cast<std::int64_t>(config.scrub_interval_h * kSecondsPerHour);

  // Last fault seen per (node, ECC word): time and flip mask.
  struct LastHit {
    TimePoint time;
    Word mask;
  };
  std::unordered_map<std::uint64_t, LastHit> last;
  last.reserve(faults.size());

  for (const auto& f : faults) {
    ++outcome.faults_considered;
    const std::uint64_t key =
        (static_cast<std::uint64_t>(cluster::node_index(f.node)) << 40) |
        (f.virtual_address / config.ecc_word_bytes);
    const auto it = last.find(key);
    if (it != last.end() && f.first_seen - it->second.time <= period_s) {
      ++outcome.accumulations;
      // A re-leak of the identical bit would just be re-corrected; only a
      // different flip pattern turns the word uncorrectable.
      if (it->second.mask != f.flip_mask()) {
        ++outcome.distinct_bit_accumulations;
      }
    }
    last[key] = {f.first_seen, f.flip_mask()};
  }
  return outcome;
}

std::vector<ScrubbingOutcome> scrubbing_sweep(
    const std::vector<analysis::FaultRecord>& faults,
    const std::vector<double>& intervals_h, std::uint64_t ecc_word_bytes) {
  std::vector<ScrubbingOutcome> out;
  out.reserve(intervals_h.size());
  for (const double interval : intervals_h) {
    ScrubbingConfig config;
    config.scrub_interval_h = interval;
    config.ecc_word_bytes = ecc_word_bytes;
    out.push_back(replay_scrubbing(faults, config));
  }
  return out;
}

}  // namespace unp::resilience
