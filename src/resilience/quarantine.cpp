#include "resilience/quarantine.hpp"

#include <algorithm>

#include "common/require.hpp"

namespace unp::resilience {

QuarantineOutcome simulate_quarantine(
    const std::vector<analysis::FaultRecord>& faults,
    const CampaignWindow& window, const QuarantineConfig& config,
    int fleet_nodes) {
  UNP_REQUIRE(config.period_days >= 0);
  UNP_REQUIRE(fleet_nodes > 0);

  QuarantineOutcome outcome;
  outcome.period_days = config.period_days;

  struct NodeState {
    TimePoint quarantined_until = 0;
    std::int64_t counting_day = -1;
    std::uint64_t errors_today = 0;
  };
  std::vector<NodeState> state(static_cast<std::size_t>(cluster::kStudyNodeSlots));

  // Faults arrive time-ordered (the extraction sorts them).
  for (const auto& f : faults) {
    if (std::find(config.excluded_nodes.begin(), config.excluded_nodes.end(),
                  f.node) != config.excluded_nodes.end()) {
      continue;
    }
    NodeState& ns = state[static_cast<std::size_t>(cluster::node_index(f.node))];

    if (config.period_days > 0 && f.first_seen < ns.quarantined_until) {
      ++outcome.suppressed_errors;
      continue;
    }

    const std::int64_t day = window.day_of_campaign(f.first_seen);
    if (day != ns.counting_day) {
      ns.counting_day = day;
      ns.errors_today = 0;
    }
    ++ns.errors_today;
    ++outcome.counted_errors;

    if (config.period_days > 0 && ns.errors_today > config.trigger_threshold) {
      const TimePoint until = std::min(
          window.end,
          f.first_seen + static_cast<TimePoint>(config.period_days) *
                             kSecondsPerDay);
      outcome.quarantined_seconds += until - f.first_seen;
      ns.quarantined_until = until;
      ++outcome.quarantine_entries;
    }
  }

  outcome.node_days_quarantined =
      static_cast<double>(outcome.quarantined_seconds) / kSecondsPerDay;
  const double campaign_hours =
      static_cast<double>(window.duration_seconds()) / kSecondsPerHour;
  if (outcome.counted_errors > 0) {
    outcome.system_mtbf_hours =
        campaign_hours / static_cast<double>(outcome.counted_errors);
  } else {
    outcome.system_mtbf_hours = campaign_hours;
  }
  outcome.availability_loss =
      outcome.node_days_quarantined /
      (static_cast<double>(fleet_nodes) *
       static_cast<double>(window.duration_days()));
  return outcome;
}

std::vector<QuarantineOutcome> quarantine_sweep(
    const std::vector<analysis::FaultRecord>& faults,
    const CampaignWindow& window, const std::vector<int>& periods,
    const QuarantineConfig& base, int fleet_nodes) {
  std::vector<QuarantineOutcome> out;
  out.reserve(periods.size());
  for (int period : periods) {
    QuarantineConfig config = base;
    config.period_days = period;
    out.push_back(simulate_quarantine(faults, window, config, fleet_nodes));
  }
  return out;
}

}  // namespace unp::resilience
