// Checkpoint-interval adaptation (Sections III-I / IV).
//
// The paper's argument: once degraded periods are recognized (MTBF 167 h
// normal vs 0.39 h degraded), a job should shorten its checkpoint interval
// while the system misbehaves.  This module provides the classic Young/Daly
// machinery plus an evaluator comparing a static interval against a
// regime-adaptive one over the campaign's day classification.
#pragma once

#include <functional>
#include <vector>

#include "analysis/regime.hpp"

namespace unp::resilience {

/// Young's optimal checkpoint interval: sqrt(2 * C * MTBF).
[[nodiscard]] double young_interval_hours(double checkpoint_cost_hours,
                                          double mtbf_hours);

/// Expected overhead fraction of running with interval tau under MTBF M and
/// checkpoint cost C: first-order waste = C/tau + tau/(2*M).
[[nodiscard]] double waste_fraction(double interval_hours,
                                    double checkpoint_cost_hours,
                                    double mtbf_hours);

struct CheckpointComparison {
  double checkpoint_cost_hours = 0.0;
  double static_interval_hours = 0.0;    ///< tuned to the blended MTBF
  double static_waste_fraction = 0.0;    ///< time lost with the static policy
  double adaptive_waste_fraction = 0.0;  ///< per-regime optimal intervals
  double normal_interval_hours = 0.0;
  double degraded_interval_hours = 0.0;

  [[nodiscard]] double improvement() const noexcept {
    return static_waste_fraction > 0.0
               ? 1.0 - adaptive_waste_fraction / static_waste_fraction
               : 0.0;
  }
};

/// Evaluate static vs regime-adaptive checkpointing over a classified
/// campaign.  Waste fractions are day-weighted averages of the first-order
/// model under each day's regime MTBF.
[[nodiscard]] CheckpointComparison compare_checkpoint_policies(
    const analysis::RegimeResult& regime, double checkpoint_cost_hours = 0.1);

// --- Trace-driven checkpoint/restart simulation ---------------------------
//
// The first-order model above assumes exponential failures; the campaign's
// faults are anything but (bursty, regime-switching).  This simulator runs
// a long job against the *actual* fault timestamps: work proceeds in
// checkpoint intervals, a fault mid-segment discards the segment's work and
// costs a restart, and the interval policy may consult the current time
// (e.g. to shrink during a degraded day).

struct TraceJobConfig {
  double checkpoint_cost_h = 10.0 / 60.0;
  double restart_cost_h = 5.0 / 60.0;
  /// Useful work the job must complete, hours.
  double work_hours = 2000.0;
  TimePoint start = 0;  ///< job launch time
};

struct TraceJobOutcome {
  double wall_hours = 0.0;
  double work_hours = 0.0;
  double lost_hours = 0.0;        ///< discarded partial segments
  double checkpoint_hours = 0.0;  ///< time spent writing checkpoints
  double restart_hours = 0.0;
  std::uint64_t failures = 0;

  [[nodiscard]] double efficiency() const noexcept {
    return wall_hours > 0.0 ? work_hours / wall_hours : 0.0;
  }
};

/// Run the job against sorted fault timestamps (faults hitting the job's
/// nodes).  `interval_at(t)` supplies the interval; it must return > 0.
/// Faults outside the trace horizon simply never occur.
[[nodiscard]] TraceJobOutcome simulate_checkpoint_trace(
    const std::vector<TimePoint>& fault_times, const TraceJobConfig& config,
    const std::function<double(TimePoint)>& interval_at);

/// Convenience: static Young interval vs regime-adaptive intervals over a
/// day classification, both run against the same fault trace.
struct TracePolicyComparison {
  TraceJobOutcome static_policy;
  TraceJobOutcome adaptive_policy;
  double static_interval_hours = 0.0;
  double normal_interval_hours = 0.0;
  double degraded_interval_hours = 0.0;
};

[[nodiscard]] TracePolicyComparison compare_checkpoint_traces(
    const std::vector<TimePoint>& fault_times,
    const analysis::RegimeResult& regime, const CampaignWindow& window,
    const TraceJobConfig& config);

}  // namespace unp::resilience
