// Memory-scrubbing analysis.
//
// A SECDED-protected machine only stays safe if single-bit faults are
// *scrubbed* (read-corrected-rewritten) before a second fault lands in the
// same ECC word and turns a correctable error into an uncorrectable one.
// The study's scanner is, in effect, an aggressive scrubber - every pass
// rewrites the whole buffer - which is why it could count faults one at a
// time.  This module answers the design question the paper's data raises:
// given the observed fault processes, how fast must production scrubbing be?
//
// Two estimators:
//  - an analytic Poisson model (uniform faults): P(second hit in the same
//    72-bit word within one scrub period);
//  - a trace-driven replay: walk the observed faults of each node and count
//    how many would have accumulated (same ECC word, within the period)
//    under a given scrub interval - which captures the *clustered* reality
//    (weak bits re-leaking, degrading-component re-strikes) that breaks the
//    uniform model.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/extraction.hpp"

namespace unp::resilience {

struct ScrubbingConfig {
  /// Scrub period: every word is cleaned at least this often.
  double scrub_interval_h = 24.0;
  /// ECC word granularity in bytes (72,64 code protects 8 data bytes).
  std::uint64_t ecc_word_bytes = 8;
};

/// Analytic accumulation estimate under uniform random faults.
/// `fault_rate_per_node_hour` is the single-bit fault rate of one node;
/// `node_bytes` its protected capacity.  Returns expected uncorrectable
/// accumulations per node-year.
[[nodiscard]] double analytic_accumulation_per_node_year(
    double fault_rate_per_node_hour, std::uint64_t node_bytes,
    const ScrubbingConfig& config);

struct ScrubbingOutcome {
  double scrub_interval_h = 0.0;
  std::uint64_t faults_considered = 0;
  /// Pairs of faults hitting the same ECC word within one scrub period -
  /// each would surface as an uncorrectable error on a SECDED machine.
  std::uint64_t accumulations = 0;
  /// Accumulations involving two *different* bit positions (true double-bit
  /// words; same-bit re-leaks would re-correct, not accumulate).
  std::uint64_t distinct_bit_accumulations = 0;
};

/// Replay the observed fault trace under a scrub interval.
[[nodiscard]] ScrubbingOutcome replay_scrubbing(
    const std::vector<analysis::FaultRecord>& faults,
    const ScrubbingConfig& config);

/// Sweep several intervals over the same trace.
[[nodiscard]] std::vector<ScrubbingOutcome> scrubbing_sweep(
    const std::vector<analysis::FaultRecord>& faults,
    const std::vector<double>& intervals_h,
    std::uint64_t ecc_word_bytes = 8);

}  // namespace unp::resilience
