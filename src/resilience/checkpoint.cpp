#include "resilience/checkpoint.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"

namespace unp::resilience {

double young_interval_hours(double checkpoint_cost_hours, double mtbf_hours) {
  UNP_REQUIRE(checkpoint_cost_hours > 0.0);
  UNP_REQUIRE(mtbf_hours > 0.0);
  return std::sqrt(2.0 * checkpoint_cost_hours * mtbf_hours);
}

double waste_fraction(double interval_hours, double checkpoint_cost_hours,
                      double mtbf_hours) {
  UNP_REQUIRE(interval_hours > 0.0);
  UNP_REQUIRE(mtbf_hours > 0.0);
  const double waste =
      checkpoint_cost_hours / interval_hours + interval_hours / (2.0 * mtbf_hours);
  return std::min(waste, 1.0);  // beyond 1 the job makes no progress at all
}

CheckpointComparison compare_checkpoint_policies(
    const analysis::RegimeResult& regime, double checkpoint_cost_hours) {
  CheckpointComparison cmp;
  cmp.checkpoint_cost_hours = checkpoint_cost_hours;

  const double normal_mtbf =
      regime.normal_mtbf_hours > 0.0 ? regime.normal_mtbf_hours : 1e6;
  const double degraded_mtbf =
      regime.degraded_mtbf_hours > 0.0 ? regime.degraded_mtbf_hours : normal_mtbf;

  // Blended MTBF a regime-blind operator would measure.
  const std::uint64_t total_errors = regime.normal_errors + regime.degraded_errors;
  const std::uint64_t total_days = regime.normal_days + regime.degraded_days;
  const double blended_mtbf =
      total_errors > 0
          ? static_cast<double>(total_days) * 24.0 / static_cast<double>(total_errors)
          : normal_mtbf;

  cmp.static_interval_hours =
      young_interval_hours(checkpoint_cost_hours, blended_mtbf);
  cmp.normal_interval_hours =
      young_interval_hours(checkpoint_cost_hours, normal_mtbf);
  cmp.degraded_interval_hours =
      young_interval_hours(checkpoint_cost_hours, degraded_mtbf);

  double static_waste = 0.0;
  double adaptive_waste = 0.0;
  for (std::size_t d = 0; d < regime.degraded.size(); ++d) {
    const double mtbf = regime.degraded[d] ? degraded_mtbf : normal_mtbf;
    static_waste += waste_fraction(cmp.static_interval_hours,
                                   checkpoint_cost_hours, mtbf);
    const double interval = regime.degraded[d] ? cmp.degraded_interval_hours
                                               : cmp.normal_interval_hours;
    adaptive_waste += waste_fraction(interval, checkpoint_cost_hours, mtbf);
  }
  const auto days = static_cast<double>(regime.degraded.size());
  if (days > 0.0) {
    cmp.static_waste_fraction = static_waste / days;
    cmp.adaptive_waste_fraction = adaptive_waste / days;
  }
  return cmp;
}

TraceJobOutcome simulate_checkpoint_trace(
    const std::vector<TimePoint>& fault_times, const TraceJobConfig& config,
    const std::function<double(TimePoint)>& interval_at) {
  UNP_REQUIRE(config.work_hours > 0.0);
  UNP_REQUIRE(std::is_sorted(fault_times.begin(), fault_times.end()));

  TraceJobOutcome outcome;
  TimePoint now = config.start;
  std::size_t next_fault = static_cast<std::size_t>(
      std::lower_bound(fault_times.begin(), fault_times.end(), now) -
      fault_times.begin());

  // Cap against policy bugs making no forward progress: a segment always
  // completes at least a second of work.
  while (outcome.work_hours < config.work_hours) {
    const double interval_h = interval_at(now);
    UNP_REQUIRE(interval_h > 0.0);
    const double remaining_h = config.work_hours - outcome.work_hours;
    const double segment_h = std::min(interval_h, remaining_h);
    const auto segment_s = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(segment_h * kSecondsPerHour));
    const auto checkpoint_s = static_cast<std::int64_t>(
        config.checkpoint_cost_h * kSecondsPerHour);

    // A fault during (work + checkpoint write) kills the segment.
    const TimePoint segment_end = now + segment_s + checkpoint_s;
    if (next_fault < fault_times.size() && fault_times[next_fault] < segment_end) {
      const TimePoint fault = fault_times[next_fault];
      ++next_fault;
      ++outcome.failures;
      const double elapsed_h =
          static_cast<double>(fault - now) / kSecondsPerHour;
      outcome.lost_hours += std::min(elapsed_h, segment_h);
      const auto restart_s = static_cast<std::int64_t>(
          config.restart_cost_h * kSecondsPerHour);
      now = fault + restart_s;
      outcome.restart_hours += config.restart_cost_h;
      // Skip co-located faults landing during the restart itself.
      while (next_fault < fault_times.size() && fault_times[next_fault] < now) {
        ++next_fault;
      }
      continue;
    }

    outcome.work_hours += segment_h;
    outcome.checkpoint_hours += config.checkpoint_cost_h;
    now = segment_end;
  }
  outcome.wall_hours =
      static_cast<double>(now - config.start) / kSecondsPerHour;
  return outcome;
}

TracePolicyComparison compare_checkpoint_traces(
    const std::vector<TimePoint>& fault_times,
    const analysis::RegimeResult& regime, const CampaignWindow& window,
    const TraceJobConfig& config) {
  TracePolicyComparison cmp;

  const double normal_mtbf =
      regime.normal_mtbf_hours > 0.0 ? regime.normal_mtbf_hours : 1e6;
  const double degraded_mtbf =
      regime.degraded_mtbf_hours > 0.0 ? regime.degraded_mtbf_hours : normal_mtbf;
  const std::uint64_t total_errors = regime.normal_errors + regime.degraded_errors;
  const std::uint64_t total_days = regime.normal_days + regime.degraded_days;
  const double blended_mtbf =
      total_errors > 0 ? static_cast<double>(total_days) * 24.0 /
                             static_cast<double>(total_errors)
                       : normal_mtbf;

  cmp.static_interval_hours =
      young_interval_hours(config.checkpoint_cost_h, blended_mtbf);
  cmp.normal_interval_hours =
      young_interval_hours(config.checkpoint_cost_h, normal_mtbf);
  cmp.degraded_interval_hours =
      young_interval_hours(config.checkpoint_cost_h, degraded_mtbf);

  cmp.static_policy = simulate_checkpoint_trace(
      fault_times, config,
      [&](TimePoint) { return cmp.static_interval_hours; });

  cmp.adaptive_policy = simulate_checkpoint_trace(
      fault_times, config, [&](TimePoint t) {
        const std::int64_t day = window.day_of_campaign(t);
        const bool degraded =
            day >= 0 && static_cast<std::size_t>(day) < regime.degraded.size() &&
            regime.degraded[static_cast<std::size_t>(day)];
        return degraded ? cmp.degraded_interval_hours : cmp.normal_interval_hours;
      });
  return cmp;
}

}  // namespace unp::resilience
