// Page-retirement policy evaluation (Section IV).
//
// The OS can stop using a physical page after it shows faults; this fixes
// recurring weak bits but - as the paper concludes - cannot help when
// corruption keeps landing on fresh addresses (the degrading component) or
// strikes many regions at once.  The evaluator replays the fault stream,
// retires a page after `faults_to_retire` observed faults, and reports how
// many subsequent faults the retirement would have absorbed.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/extraction.hpp"

namespace unp::resilience {

struct PageRetirementConfig {
  std::uint64_t page_bytes = 4096;
  /// Faults observed on a page before it is retired.
  std::uint64_t faults_to_retire = 1;
  /// Retired-page budget per node (0 = unlimited).
  std::uint64_t max_pages_per_node = 0;
};

struct PageRetirementOutcome {
  std::uint64_t total_faults = 0;
  std::uint64_t avoided_faults = 0;   ///< would have hit a retired page
  std::uint64_t pages_retired = 0;
  std::uint64_t nodes_with_retirements = 0;

  [[nodiscard]] double avoided_fraction() const noexcept {
    return total_faults > 0 ? static_cast<double>(avoided_faults) /
                                  static_cast<double>(total_faults)
                            : 0.0;
  }
};

[[nodiscard]] PageRetirementOutcome simulate_page_retirement(
    const std::vector<analysis::FaultRecord>& faults,
    const PageRetirementConfig& config = PageRetirementConfig{});

/// Per-node breakdown (the paper's point: retirement works for the weak-bit
/// nodes, not for the degrading one).
struct NodeRetirementRow {
  cluster::NodeId node;
  std::uint64_t faults = 0;
  std::uint64_t avoided = 0;
  std::uint64_t pages_retired = 0;
};

[[nodiscard]] std::vector<NodeRetirementRow> page_retirement_by_node(
    const std::vector<analysis::FaultRecord>& faults,
    const PageRetirementConfig& config = PageRetirementConfig{},
    std::size_t max_rows = 10);

}  // namespace unp::resilience
