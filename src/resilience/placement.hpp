// History-aware job placement (Section III-H's proposal).
//
// "Spatial correlation information can be added into the scheduler
// algorithm to avoid large high priority jobs running in nodes with a long
// history of failures."  This module evaluates exactly that: a synthetic
// job stream is placed over the fleet either uniformly at random or
// history-aware (prefer nodes with the fewest errors observed so far), and
// a job dies when any of its nodes suffers a memory error while it runs.
// Because >99% of errors concentrate in <1% of nodes, steering around the
// handful of loud nodes should collapse the job-failure rate.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/extraction.hpp"
#include "common/rng.hpp"

namespace unp::resilience {

struct JobMix {
  /// Job arrivals per day across the whole machine.
  double arrivals_per_day = 30.0;
  /// Nodes per job (uniform in [min, max]).
  int nodes_min = 8;
  int nodes_max = 64;
  /// Job duration, exponential with this mean.
  double mean_duration_h = 8.0;
};

enum class PlacementPolicy : std::uint8_t {
  kRandom,       ///< uniform over the fleet
  kHistoryAware  ///< prefer nodes with the fewest errors seen so far
};

struct PlacementOutcome {
  PlacementPolicy policy = PlacementPolicy::kRandom;
  std::uint64_t jobs = 0;
  std::uint64_t failed_jobs = 0;
  double node_hours_lost = 0.0;  ///< nodes x hours of killed jobs

  [[nodiscard]] double failure_rate() const noexcept {
    return jobs ? static_cast<double>(failed_jobs) / static_cast<double>(jobs)
                : 0.0;
  }
};

struct PlacementComparison {
  PlacementOutcome random;
  PlacementOutcome history_aware;

  /// Factor by which history-aware placement reduces job failures.
  [[nodiscard]] double improvement() const noexcept {
    return history_aware.failed_jobs > 0
               ? static_cast<double>(random.failed_jobs) /
                     static_cast<double>(history_aware.failed_jobs)
               : static_cast<double>(random.failed_jobs);
  }
};

/// Replay the same synthetic job stream under both policies.
/// `monitored_nodes` is the schedulable fleet.
[[nodiscard]] PlacementComparison compare_placements(
    const std::vector<analysis::FaultRecord>& faults,
    const CampaignWindow& window,
    const std::vector<cluster::NodeId>& monitored_nodes,
    const JobMix& mix = JobMix{}, std::uint64_t seed = 1);

}  // namespace unp::resilience
