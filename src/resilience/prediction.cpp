#include "resilience/prediction.hpp"

#include <algorithm>
#include <unordered_map>

#include "common/require.hpp"

namespace unp::resilience {

PredictionEvaluation evaluate_predictor(
    const std::vector<analysis::FaultRecord>& faults,
    const CampaignWindow& window, const PredictorConfig& config) {
  UNP_REQUIRE(config.history_days >= 1);

  const auto days = static_cast<std::size_t>(window.duration_days()) + 2;

  // Per-node daily error counts, only for nodes that erred at all.
  std::unordered_map<int, std::vector<std::uint64_t>> daily;
  for (const auto& f : faults) {
    if (std::find(config.excluded_nodes.begin(), config.excluded_nodes.end(),
                  f.node) != config.excluded_nodes.end()) {
      continue;
    }
    const std::int64_t day = window.day_of_campaign(f.first_seen);
    if (day < 0 || static_cast<std::size_t>(day) >= days) continue;
    auto& series = daily[cluster::node_index(f.node)];
    if (series.empty()) series.assign(days, 0);
    ++series[static_cast<std::size_t>(day)];
  }

  PredictionEvaluation eval;
  for (const auto& [node, series] : daily) {
    TrailingDayWindow history(config.history_days);
    for (std::size_t d = 0; d < days; ++d) {
      // Prediction for day d from the preceding history window.
      const bool flagged =
          d > 0 &&
          history.sum_before(static_cast<std::int64_t>(d)) > config.trigger_errors;
      const bool bad = series[d] > config.bad_day_threshold;

      if (flagged && bad) ++eval.true_positives;
      if (flagged && !bad) ++eval.false_positives;
      if (!flagged && bad) ++eval.false_negatives;
      if (!flagged && !bad) ++eval.true_negatives;
      if (flagged) {
        ++eval.flagged_node_days;
        eval.forewarned_errors += series[d];
      }
      eval.total_errors += series[d];

      history.add(static_cast<std::int64_t>(d), series[d]);
    }
  }
  return eval;
}

}  // namespace unp::resilience
