#include "resilience/ecc_whatif.hpp"

#include <cstdlib>

namespace unp::resilience {

EccWhatIf ecc_what_if(const std::vector<analysis::FaultRecord>& faults) {
  EccWhatIf result;
  for (const auto& f : faults) {
    result.parity.add(ecc::parity_outcome(f.expected, f.actual));
    result.secded.add(ecc::secded_outcome(f.expected, f.actual));
    result.chipkill.add(ecc::chipkill_outcome(f.expected, f.actual));
    const int bits = f.flipped_bits();
    if (bits >= 2) ++result.multibit_faults;
    if (bits == 2) ++result.double_bit_faults;
    if (bits > 2) ++result.beyond_secded_guarantee;
  }
  return result;
}

std::vector<IsolationReport> sdc_isolation_report(
    const std::vector<analysis::FaultRecord>& faults, int min_bits,
    std::int64_t window_s) {
  std::vector<IsolationReport> reports;
  for (const auto& f : faults) {
    if (f.flipped_bits() < min_bits) continue;
    IsolationReport report;
    report.fault = f;
    for (const auto& other : faults) {
      if (&other == &f) continue;
      if (other.node == f.node) {
        ++report.same_node_other_faults;
        if (other.flipped_bits() < min_bits) ++report.same_node_small_faults;
      }
      if (std::llabs(other.first_seen - f.first_seen) <= window_s) {
        ++report.same_time_other_faults;
      }
    }
    reports.push_back(report);
  }
  return reports;
}

}  // namespace unp::resilience
