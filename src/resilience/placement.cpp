#include "resilience/placement.hpp"

#include <algorithm>

#include "common/require.hpp"

namespace unp::resilience {

namespace {

/// Per-node sorted fault timestamps for interval queries.
struct FaultIndex {
  std::vector<std::vector<TimePoint>> by_node;

  explicit FaultIndex(const std::vector<analysis::FaultRecord>& faults)
      : by_node(static_cast<std::size_t>(cluster::kStudyNodeSlots)) {
    for (const auto& f : faults) {
      by_node[static_cast<std::size_t>(cluster::node_index(f.node))].push_back(
          f.first_seen);
    }
    for (auto& v : by_node) std::sort(v.begin(), v.end());
  }

  [[nodiscard]] bool any_in(int node, TimePoint lo, TimePoint hi) const {
    const auto& v = by_node[static_cast<std::size_t>(node)];
    const auto it = std::lower_bound(v.begin(), v.end(), lo);
    return it != v.end() && *it < hi;
  }

  [[nodiscard]] std::size_t count_before(int node, TimePoint t) const {
    const auto& v = by_node[static_cast<std::size_t>(node)];
    return static_cast<std::size_t>(
        std::lower_bound(v.begin(), v.end(), t) - v.begin());
  }
};

struct Job {
  TimePoint start;
  TimePoint end;
  int nodes;
};

}  // namespace

PlacementComparison compare_placements(
    const std::vector<analysis::FaultRecord>& faults,
    const CampaignWindow& window,
    const std::vector<cluster::NodeId>& monitored_nodes, const JobMix& mix,
    std::uint64_t seed) {
  UNP_REQUIRE(!monitored_nodes.empty());
  UNP_REQUIRE(mix.nodes_min >= 1 && mix.nodes_max >= mix.nodes_min);
  UNP_REQUIRE(static_cast<std::size_t>(mix.nodes_max) <= monitored_nodes.size());

  const FaultIndex index(faults);

  // One job stream, replayed under both policies.
  std::vector<Job> jobs;
  {
    RngStream rng(seed, /*stream_id=*/0x10B5);
    const double total_days =
        static_cast<double>(window.duration_seconds()) / kSecondsPerDay;
    const std::uint64_t count = rng.poisson(mix.arrivals_per_day * total_days);
    jobs.reserve(count);
    for (std::uint64_t j = 0; j < count; ++j) {
      Job job;
      job.start = window.start + static_cast<TimePoint>(rng.uniform_u64(
                                     static_cast<std::uint64_t>(
                                         window.duration_seconds())));
      const double dur_h = rng.exponential(1.0 / mix.mean_duration_h);
      job.end = std::min<TimePoint>(
          window.end, job.start + static_cast<TimePoint>(dur_h * kSecondsPerHour));
      job.nodes = static_cast<int>(
          rng.uniform_int(mix.nodes_min, mix.nodes_max));
      jobs.push_back(job);
    }
    std::sort(jobs.begin(), jobs.end(),
              [](const Job& a, const Job& b) { return a.start < b.start; });
  }

  auto run_policy = [&](PlacementPolicy policy) {
    PlacementOutcome outcome;
    outcome.policy = policy;
    RngStream rng(seed, /*stream_id=*/0x10B6);  // same draws for both runs

    for (const Job& job : jobs) {
      // Choose the job's nodes.
      std::vector<int> chosen;
      chosen.reserve(static_cast<std::size_t>(job.nodes));
      if (policy == PlacementPolicy::kRandom) {
        // Floyd-style distinct sampling.
        std::vector<int> pool;
        while (static_cast<int>(chosen.size()) < job.nodes) {
          const auto pick = static_cast<std::size_t>(
              rng.uniform_u64(monitored_nodes.size()));
          const int node = cluster::node_index(monitored_nodes[pick]);
          if (std::find(chosen.begin(), chosen.end(), node) == chosen.end()) {
            chosen.push_back(node);
          }
        }
      } else {
        // History-aware: order by (errors observed before job start, node),
        // take the quietest; burn the same number of RNG draws as the
        // random policy would not - determinism per policy is what matters.
        std::vector<std::pair<std::size_t, int>> ranked;
        ranked.reserve(monitored_nodes.size());
        for (const auto& n : monitored_nodes) {
          const int idx = cluster::node_index(n);
          ranked.emplace_back(index.count_before(idx, job.start), idx);
        }
        std::nth_element(ranked.begin(),
                         ranked.begin() + job.nodes - 1, ranked.end());
        std::sort(ranked.begin(), ranked.begin() + job.nodes);
        for (int k = 0; k < job.nodes; ++k) chosen.push_back(ranked[static_cast<std::size_t>(k)].second);
      }

      ++outcome.jobs;
      bool failed = false;
      for (const int node : chosen) {
        if (index.any_in(node, job.start, job.end)) {
          failed = true;
          break;
        }
      }
      if (failed) {
        ++outcome.failed_jobs;
        outcome.node_hours_lost +=
            static_cast<double>(job.nodes) *
            static_cast<double>(job.end - job.start) / kSecondsPerHour;
      }
    }
    return outcome;
  };

  PlacementComparison cmp;
  cmp.random = run_policy(PlacementPolicy::kRandom);
  cmp.history_aware = run_policy(PlacementPolicy::kHistoryAware);
  return cmp;
}

}  // namespace unp::resilience
