// Spatio-temporal failure prediction (Section III-I's proposal).
//
// "When the system starts to experience several failures in a short period
// of time, it is relatively simple to foresee future failures using the
// spatio-temporal analysis above."  This module makes that sentence
// falsifiable: a sliding-window predictor flags a node-day as *at risk*
// when the node's recent error history crosses a threshold, and the
// evaluator scores those one-day-ahead predictions against what actually
// happened — precision, recall, and the fraction of errors that fell on
// forewarned node-days (the errors a scheduler could have routed around).
#pragma once

#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "analysis/extraction.hpp"

namespace unp::resilience {

/// Sliding sum of per-day error counts over the last `history_days` days.
/// The batch evaluator below and the online predictor-driven quarantine
/// policy (src/policy) share this so the window arithmetic exists once.
/// Days must be presented in non-decreasing order.
class TrailingDayWindow {
 public:
  explicit TrailingDayWindow(int history_days) : history_days_(history_days) {}

  /// Sum of errors recorded on the `history_days` days strictly before
  /// `day` — the evidence available when predicting `day` one day ahead.
  [[nodiscard]] std::uint64_t sum_before(std::int64_t day) {
    evict(day);
    std::uint64_t sum = 0;
    for (const auto& [d, errors] : days_) {
      if (d < day) sum += errors;
    }
    return sum;
  }

  /// Record `errors` observed on `day`.
  void add(std::int64_t day, std::uint64_t errors) {
    evict(day);
    if (!days_.empty() && days_.back().first == day) {
      days_.back().second += errors;
    } else {
      days_.emplace_back(day, errors);
    }
  }

 private:
  void evict(std::int64_t day) {
    while (!days_.empty() && days_.front().first < day - history_days_) {
      days_.pop_front();
    }
  }

  int history_days_;
  std::deque<std::pair<std::int64_t, std::uint64_t>> days_;
};

struct PredictorConfig {
  /// Error history window, days.
  int history_days = 3;
  /// Flag tomorrow when the window holds strictly more errors than this.
  std::uint64_t trigger_errors = 3;
  /// Ground truth: a node-day is "bad" with more errors than this (the
  /// regime threshold).
  std::uint64_t bad_day_threshold = 3;
  /// Nodes excluded up front (permanent failures).
  std::vector<cluster::NodeId> excluded_nodes;
};

struct PredictionEvaluation {
  // Node-day confusion matrix (counted only over nodes that erred at least
  // once during the campaign; all-quiet nodes would drown the true-negative
  // cell without informing the metric).
  std::uint64_t true_positives = 0;
  std::uint64_t false_positives = 0;
  std::uint64_t false_negatives = 0;
  std::uint64_t true_negatives = 0;

  /// Errors landing on node-days that were flagged in advance.
  std::uint64_t forewarned_errors = 0;
  std::uint64_t total_errors = 0;
  /// Node-days flagged (the cost: capacity a scheduler would divert).
  std::uint64_t flagged_node_days = 0;

  [[nodiscard]] double precision() const noexcept {
    const std::uint64_t p = true_positives + false_positives;
    return p ? static_cast<double>(true_positives) / static_cast<double>(p) : 0.0;
  }
  [[nodiscard]] double recall() const noexcept {
    const std::uint64_t a = true_positives + false_negatives;
    return a ? static_cast<double>(true_positives) / static_cast<double>(a) : 0.0;
  }
  [[nodiscard]] double f1() const noexcept {
    const double p = precision(), r = recall();
    return (p + r) > 0.0 ? 2.0 * p * r / (p + r) : 0.0;
  }
  [[nodiscard]] double forewarned_fraction() const noexcept {
    return total_errors ? static_cast<double>(forewarned_errors) /
                              static_cast<double>(total_errors)
                        : 0.0;
  }
};

/// Score one-day-ahead at-risk predictions over the fault stream.
[[nodiscard]] PredictionEvaluation evaluate_predictor(
    const std::vector<analysis::FaultRecord>& faults,
    const CampaignWindow& window, const PredictorConfig& config);

}  // namespace unp::resilience
