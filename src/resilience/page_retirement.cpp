#include "resilience/page_retirement.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace unp::resilience {

namespace {

struct NodeState {
  std::unordered_map<std::uint64_t, std::uint64_t> page_faults;
  std::unordered_set<std::uint64_t> retired;
};

}  // namespace

PageRetirementOutcome simulate_page_retirement(
    const std::vector<analysis::FaultRecord>& faults,
    const PageRetirementConfig& config) {
  PageRetirementOutcome outcome;
  std::unordered_map<int, NodeState> states;

  for (const auto& f : faults) {
    ++outcome.total_faults;
    NodeState& ns = states[cluster::node_index(f.node)];
    const std::uint64_t page = f.virtual_address / config.page_bytes;

    if (ns.retired.contains(page)) {
      ++outcome.avoided_faults;
      continue;
    }
    const std::uint64_t count = ++ns.page_faults[page];
    if (count >= config.faults_to_retire &&
        (config.max_pages_per_node == 0 ||
         ns.retired.size() < config.max_pages_per_node)) {
      ns.retired.insert(page);
      ++outcome.pages_retired;
    }
  }
  for (const auto& [node, ns] : states) {
    if (!ns.retired.empty()) ++outcome.nodes_with_retirements;
  }
  return outcome;
}

std::vector<NodeRetirementRow> page_retirement_by_node(
    const std::vector<analysis::FaultRecord>& faults,
    const PageRetirementConfig& config, std::size_t max_rows) {
  std::unordered_map<int, NodeState> states;
  std::unordered_map<int, NodeRetirementRow> rows;

  for (const auto& f : faults) {
    const int idx = cluster::node_index(f.node);
    NodeState& ns = states[idx];
    NodeRetirementRow& row = rows[idx];
    row.node = f.node;
    ++row.faults;
    const std::uint64_t page = f.virtual_address / config.page_bytes;
    if (ns.retired.contains(page)) {
      ++row.avoided;
      continue;
    }
    if (++ns.page_faults[page] >= config.faults_to_retire &&
        (config.max_pages_per_node == 0 ||
         ns.retired.size() < config.max_pages_per_node)) {
      ns.retired.insert(page);
      ++row.pages_retired;
    }
  }

  std::vector<NodeRetirementRow> out;
  out.reserve(rows.size());
  for (const auto& [idx, row] : rows) out.push_back(row);
  std::sort(out.begin(), out.end(),
            [](const NodeRetirementRow& a, const NodeRetirementRow& b) {
              return a.faults > b.faults;
            });
  if (out.size() > max_rows) out.resize(max_rows);
  return out;
}

}  // namespace unp::resilience
