// Quarantine policy simulator (Section IV, Table II).
//
// Proposal: as soon as a node behaves abnormally (more errors in a day than
// the normal-regime threshold), pull it from the scheduler pool for a fixed
// quarantine period.  Errors the node would have produced while quarantined
// never reach users.  Table II sweeps the period from 0 (no quarantine) to
// 30 days and reports surviving errors, node-days lost, and the resulting
// system MTBF (campaign hours / surviving errors).
//
// Like the paper, the permanently failing node is excluded up front - a
// production system replaces such hardware rather than cycling it through
// quarantine.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/extraction.hpp"

namespace unp::resilience {

struct QuarantineConfig {
  /// Quarantine length; 0 disables the policy.
  int period_days = 0;
  /// A day with more errors than this triggers quarantine (same threshold
  /// as the regime classification).
  std::uint64_t trigger_threshold = 3;
  /// Nodes excluded entirely (permanent failures).
  std::vector<cluster::NodeId> excluded_nodes;
};

struct QuarantineOutcome {
  int period_days = 0;
  std::uint64_t counted_errors = 0;     ///< errors that reached users
  std::uint64_t suppressed_errors = 0;  ///< absorbed by quarantine
  std::uint64_t quarantine_entries = 0; ///< times any node entered quarantine
  /// Total quarantined time, accumulated in exact integer seconds so the
  /// sum is independent of replay order (the batch simulator walks faults in
  /// global time order, the online policy engine node by node — both reach
  /// this same integer, hence bit-identical derived doubles).
  std::int64_t quarantined_seconds = 0;
  double node_days_quarantined = 0.0;  ///< quarantined_seconds / 86400
  double system_mtbf_hours = 0.0;
  /// Node-availability loss over the whole campaign.
  double availability_loss = 0.0;
};

/// Replay the fault stream under the policy.
[[nodiscard]] QuarantineOutcome simulate_quarantine(
    const std::vector<analysis::FaultRecord>& faults,
    const CampaignWindow& window, const QuarantineConfig& config,
    int fleet_nodes = 945);

/// Table II: one outcome per requested period.
[[nodiscard]] std::vector<QuarantineOutcome> quarantine_sweep(
    const std::vector<analysis::FaultRecord>& faults,
    const CampaignWindow& window, const std::vector<int>& periods,
    const QuarantineConfig& base = QuarantineConfig{}, int fleet_nodes = 945);

}  // namespace unp::resilience
