// ECC what-if analysis (Sections III-C/D and the ablation experiments).
//
// Because the machine was unprotected, the study knows the exact corruption
// of every fault and can decide, per protection scheme, whether it would
// have been corrected, merely detected (crash), or silent.  This is what
// grounds the paper's claims "76 double-bit errors would be detected by
// SECDED" and "9 errors could pass undetected, leading to SDC".
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/extraction.hpp"
#include "ecc/outcome.hpp"

namespace unp::resilience {

struct EccWhatIf {
  ecc::OutcomeCounts parity;
  ecc::OutcomeCounts secded;
  ecc::OutcomeCounts chipkill;
  /// Faults with >= `sdc_bit_threshold` flipped bits (the paper's
  /// "more than 2 corrupted bits could pass undetected").
  std::uint64_t beyond_secded_guarantee = 0;
  std::uint64_t multibit_faults = 0;
  std::uint64_t double_bit_faults = 0;
};

/// Classify every fault under SECDED(72,64) and the chipkill model.
[[nodiscard]] EccWhatIf ecc_what_if(const std::vector<analysis::FaultRecord>& faults);

/// The isolation analysis of Section III-D: for each fault beyond SECDED's
/// guarantee (> 3 flipped bits in the paper's reading), check whether any
/// other fault occurred on the same node at all, or anywhere in the system
/// within `window_s` of it.
struct IsolationReport {
  analysis::FaultRecord fault;
  std::uint64_t same_node_other_faults = 0;   ///< any other fault, same node
  std::uint64_t same_node_small_faults = 0;   ///< same node, below min_bits
  std::uint64_t same_time_other_faults = 0;   ///< anywhere, within the window
};

[[nodiscard]] std::vector<IsolationReport> sdc_isolation_report(
    const std::vector<analysis::FaultRecord>& faults, int min_bits = 4,
    std::int64_t window_s = 3600);

}  // namespace unp::resilience
