// Lightweight contract checking used across the library.
//
// UNP_REQUIRE  - precondition; always on, throws unp::ContractViolation.
// UNP_ENSURE   - postcondition/invariant; always on, same exception.
//
// The library prefers throwing over aborting so that long-running campaign
// simulations and the live scanner can fail a single unit of work without
// taking down the whole process (mirrors how the original scanning daemon had
// to survive arbitrary memory states).
#pragma once

#include <stdexcept>
#include <string>

namespace unp {

/// Thrown when a UNP_REQUIRE / UNP_ENSURE contract fails.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line) {
  throw ContractViolation(std::string(kind) + " failed: " + expr + " at " +
                          file + ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace unp

#define UNP_REQUIRE(expr)                                                  \
  do {                                                                     \
    if (!(expr))                                                           \
      ::unp::detail::contract_fail("precondition", #expr, __FILE__, __LINE__); \
  } while (false)

#define UNP_ENSURE(expr)                                                   \
  do {                                                                     \
    if (!(expr))                                                           \
      ::unp::detail::contract_fail("invariant", #expr, __FILE__, __LINE__); \
  } while (false)
