// Shared runtime SIMD dispatch: which instruction set the process uses.
//
// Two subsystems carry per-ISA kernel sets — the scanner's memory-sweep
// kernels (src/scanner/kernels) and the store's column-decode kernels
// (src/store/kernels).  Both must agree on the answer to "which ISA runs
// here?", honour the same UNP_KERNEL=scalar|sse2|avx2|neon override, and
// latch the decision exactly once per process, so the detection and
// resolution logic lives in this dependency-free home rather than being
// duplicated per kernel family.
//
// Kernel *sets* stay with their subsystems; this module only answers the
// ISA question:
//
//   - is_supported(isa)      can this CPU execute isa's instructions?
//   - best_supported_isa()   fastest ISA the CPU reports (avx2 > sse2 >
//                            scalar on x86-64, neon > scalar on AArch64)
//   - resolve_isa(env, w)    dispatch decision given an UNP_KERNEL value
//   - active_isa()           the process-wide decision, resolved once from
//                            the environment on first use
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace unp::simd {

/// Instruction-set architectures a kernel set can be built for.
enum class Isa : std::uint8_t { kScalar, kSse2, kAvx2, kNeon };

[[nodiscard]] const char* to_string(Isa isa) noexcept;

/// True when this CPU can execute `isa`'s kernels.
[[nodiscard]] bool is_supported(Isa isa) noexcept;

/// Fastest ISA this CPU supports.
[[nodiscard]] Isa best_supported_isa() noexcept;

/// Every ISA this CPU supports, scalar first (test iteration order).
[[nodiscard]] std::vector<Isa> supported_isas();

/// Parse an UNP_KERNEL value ("scalar", "sse2", "avx2", "neon").
/// Returns true and sets `out` on success.
[[nodiscard]] bool parse_isa(std::string_view name, Isa& out) noexcept;

/// Dispatch decision given an UNP_KERNEL value (nullptr = unset): the
/// requested ISA when recognised and supported, else best_supported_isa().
/// On fallback, `warning` (if non-null) receives a one-line explanation.
[[nodiscard]] Isa resolve_isa(const char* env_value, std::string* warning);

/// The process-wide dispatch decision: resolved once from cpuid/HWCAP and
/// the UNP_KERNEL override on first use (a fallback warning goes to stderr
/// exactly once, no matter how many kernel families consult it).
[[nodiscard]] Isa active_isa();

}  // namespace unp::simd
