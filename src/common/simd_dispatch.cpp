#include "common/simd_dispatch.hpp"

#include <cstdio>
#include <cstdlib>

namespace unp::simd {

const char* to_string(Isa isa) noexcept {
  switch (isa) {
    case Isa::kScalar: return "scalar";
    case Isa::kSse2: return "sse2";
    case Isa::kAvx2: return "avx2";
    case Isa::kNeon: return "neon";
  }
  return "?";
}

bool is_supported(Isa isa) noexcept {
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kSse2:
#if defined(__x86_64__) || defined(_M_X64)
      return true;  // x86-64 baseline
#else
      return false;
#endif
    case Isa::kAvx2:
#if (defined(__x86_64__) || defined(_M_X64)) && defined(__GNUC__)
      // The AVX2 translation units are compiled with -mavx2 -mbmi2 (the
      // store's varint decoder uses pext), so selection requires both.
      // Every AVX2-capable CPU generation also has BMI2; a machine missing
      // it falls back to SSE2.
      return __builtin_cpu_supports("avx2") != 0 &&
             __builtin_cpu_supports("bmi2") != 0;
#else
      return false;
#endif
    case Isa::kNeon:
#if defined(__aarch64__)
      return true;  // Advanced SIMD is architectural on AArch64
#else
      return false;
#endif
  }
  return false;
}

Isa best_supported_isa() noexcept {
  if (is_supported(Isa::kAvx2)) return Isa::kAvx2;
  if (is_supported(Isa::kSse2)) return Isa::kSse2;
  if (is_supported(Isa::kNeon)) return Isa::kNeon;
  return Isa::kScalar;
}

std::vector<Isa> supported_isas() {
  std::vector<Isa> out;
  for (const Isa isa : {Isa::kScalar, Isa::kSse2, Isa::kAvx2, Isa::kNeon}) {
    if (is_supported(isa)) out.push_back(isa);
  }
  return out;
}

bool parse_isa(std::string_view name, Isa& out) noexcept {
  if (name == "scalar") { out = Isa::kScalar; return true; }
  if (name == "sse2") { out = Isa::kSse2; return true; }
  if (name == "avx2") { out = Isa::kAvx2; return true; }
  if (name == "neon") { out = Isa::kNeon; return true; }
  return false;
}

Isa resolve_isa(const char* env_value, std::string* warning) {
  const Isa best = best_supported_isa();
  if (env_value == nullptr || *env_value == '\0') return best;
  Isa requested = best;
  if (!parse_isa(env_value, requested)) {
    if (warning != nullptr) {
      *warning = std::string("UNP_KERNEL=") + env_value +
                 " not recognised (scalar|sse2|avx2|neon); using " +
                 to_string(best);
    }
    return best;
  }
  if (!is_supported(requested)) {
    if (warning != nullptr) {
      *warning = std::string("UNP_KERNEL=") + env_value +
                 " not supported on this CPU; using " + to_string(best);
    }
    return best;
  }
  return requested;
}

Isa active_isa() {
  static const Isa active = [] {
    std::string warning;
    const Isa isa = resolve_isa(std::getenv("UNP_KERNEL"), &warning);
    if (!warning.empty()) {
      std::fprintf(stderr, "warning: %s\n", warning.c_str());
    }
    return isa;
  }();
  return active;
}

}  // namespace unp::simd
