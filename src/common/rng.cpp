#include "common/rng.hpp"

#include <cmath>

namespace unp {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t mix64(std::uint64_t a, std::uint64_t b) noexcept {
  // Feed both words through one splitmix64 round each; asymmetric so that
  // mix64(a, b) != mix64(b, a) in general (stream ids are positional).
  std::uint64_t s = a ^ 0x2545f4914f6cdd1dULL;
  std::uint64_t h = splitmix64(s);
  s = h ^ (b + 0x9e3779b97f4a7c15ULL);
  return splitmix64(s);
}

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  // Seed the four state words from splitmix64, per the xoshiro authors'
  // guidance; guarantees a non-zero state for any seed.
  std::uint64_t sm = seed;
  for (auto& w : s_) w = splitmix64(sm);
}

std::uint64_t Xoshiro256::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

void Xoshiro256::jump() noexcept {
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::array<std::uint64_t, 4> acc{};
  for (std::uint64_t jump_word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump_word & (std::uint64_t{1} << b)) {
        for (std::size_t i = 0; i < 4; ++i) acc[i] ^= s_[i];
      }
      (void)next();
    }
  }
  s_ = acc;
}

double RngStream::uniform() noexcept {
  // Top 53 bits -> double in [0, 1).
  return static_cast<double>(gen_.next() >> 11) * 0x1.0p-53;
}

double RngStream::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t RngStream::uniform_u64(std::uint64_t n) noexcept {
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t x = gen_.next();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = gen_.next();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t RngStream::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_u64(span));
}

bool RngStream::bernoulli(double p) noexcept { return uniform() < p; }

double RngStream::exponential(double rate) noexcept {
  // Inversion; 1 - U in (0, 1] avoids log(0).
  return -std::log(1.0 - uniform()) / rate;
}

std::uint64_t RngStream::poisson(double mean) noexcept {
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    // Knuth: multiply uniforms until below exp(-mean).
    const double limit = std::exp(-mean);
    std::uint64_t k = 0;
    double prod = uniform();
    while (prod > limit) {
      ++k;
      prod *= uniform();
    }
    return k;
  }
  // PTRS transformed rejection (Hormann 1993) for large means.
  const double b = 0.931 + 2.53 * std::sqrt(mean);
  const double a = -0.059 + 0.02483 * b;
  const double inv_alpha = 1.1239 + 1.1328 / (b - 3.4);
  const double v_r = 0.9277 - 3.6224 / (b - 2.0);
  for (;;) {
    double u = uniform() - 0.5;
    const double v = uniform();
    const double us = 0.5 - std::fabs(u);
    const double k = std::floor((2.0 * a / us + b) * u + mean + 0.43);
    if (us >= 0.07 && v <= v_r) return static_cast<std::uint64_t>(k);
    if (k < 0.0 || (us < 0.013 && v > us)) continue;
    const double log_mean = std::log(mean);
    if (std::log(v) + std::log(inv_alpha) - std::log(a / (us * us) + b) <=
        k * log_mean - mean - std::lgamma(k + 1.0)) {
      return static_cast<std::uint64_t>(k);
    }
  }
}

double RngStream::normal() noexcept {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  has_spare_normal_ = true;
  return u * factor;
}

double RngStream::normal(double mu, double sigma) noexcept {
  return mu + sigma * normal();
}

std::size_t RngStream::weighted_index(const double* weights,
                                      std::size_t weights_size) noexcept {
  double total = 0.0;
  for (std::size_t i = 0; i < weights_size; ++i) total += weights[i];
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights_size; ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights_size - 1;  // floating-point slack: fall back to last bucket
}

}  // namespace unp
