// Histogram1D and Grid2D are header-only; this translation unit exists so the
// target has a stable archive member and to host any future out-of-line
// helpers.
#include "common/histogram.hpp"
