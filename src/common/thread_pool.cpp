#include "common/thread_pool.hpp"

#include <atomic>

#include "common/require.hpp"

namespace unp {

ThreadPool::ThreadPool(std::size_t threads) {
  UNP_REQUIRE(threads >= 1);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    UNP_REQUIRE(!stop_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  std::atomic<std::size_t> next{0};
  const std::size_t lanes = std::min(n, thread_count());
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    submit([&next, n, &fn] {
      for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed); i < n;
           i = next.fetch_add(1, std::memory_order_relaxed)) {
        fn(i);
      }
    });
  }
  wait_idle();
}

}  // namespace unp
