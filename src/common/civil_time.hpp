// Civil-time arithmetic for the campaign clock.
//
// Simulation time is an absolute count of seconds since the Unix epoch
// (`TimePoint`).  The study's analyses bucket events by local wall-clock hour
// (Fig 5/6), by local calendar day (Figs 9-13), and against the sun's
// position over Barcelona, so the library carries an explicit Europe/Madrid
// timezone rule (CET, UTC+1, with CEST DST, UTC+2, between the last Sundays
// of March and October) rather than depending on the host's tz database.
//
// Date <-> day-count conversions use Howard Hinnant's proleptic-Gregorian
// algorithms, valid over the whole simulation range.
#pragma once

#include <cstdint>
#include <string>

namespace unp {

/// Absolute time: seconds since 1970-01-01T00:00:00 UTC.
using TimePoint = std::int64_t;

constexpr std::int64_t kSecondsPerMinute = 60;
constexpr std::int64_t kSecondsPerHour = 3600;
constexpr std::int64_t kSecondsPerDay = 86400;

/// A broken-down civil date-time (no timezone attached).
struct CivilDateTime {
  int year = 1970;
  int month = 1;   ///< 1..12
  int day = 1;     ///< 1..31
  int hour = 0;    ///< 0..23
  int minute = 0;  ///< 0..59
  int second = 0;  ///< 0..59

  friend bool operator==(const CivilDateTime&, const CivilDateTime&) = default;
};

/// Days since 1970-01-01 for a civil date (Hinnant's days_from_civil).
[[nodiscard]] std::int64_t days_from_civil(int year, int month, int day) noexcept;

/// Inverse of days_from_civil.
[[nodiscard]] CivilDateTime civil_from_days(std::int64_t days) noexcept;

/// Compose a UTC TimePoint from civil fields.
[[nodiscard]] TimePoint from_civil_utc(const CivilDateTime& c) noexcept;

/// Decompose a TimePoint into UTC civil fields.
[[nodiscard]] CivilDateTime to_civil_utc(TimePoint t) noexcept;

/// Day of week, 0 = Sunday .. 6 = Saturday.
[[nodiscard]] int weekday_from_days(std::int64_t days) noexcept;

/// True if `year` is a Gregorian leap year.
[[nodiscard]] bool is_leap_year(int year) noexcept;

/// Europe/Madrid timezone rule used by the prototype machine's logs.
class BarcelonaClock {
 public:
  /// UTC offset (seconds) in effect at UTC instant `t`:
  /// +3600 (CET) or +7200 (CEST).  DST runs from 01:00 UTC on the last
  /// Sunday of March to 01:00 UTC on the last Sunday of October.
  [[nodiscard]] static std::int64_t utc_offset(TimePoint t) noexcept;

  /// Local civil fields at UTC instant `t`.
  [[nodiscard]] static CivilDateTime to_local(TimePoint t) noexcept;

  /// Local hour of day in [0, 24) as a real number (used for the hour-of-day
  /// histograms and the solar model).
  [[nodiscard]] static double local_hour(TimePoint t) noexcept;

  /// Local calendar day count since 1970-01-01 (buckets per-day analyses).
  [[nodiscard]] static std::int64_t local_day_index(TimePoint t) noexcept;
};

/// The monitoring campaign window: February 2015 through February 2016
/// inclusive, as in the paper (Section II-A).
struct CampaignWindow {
  TimePoint start = from_civil_utc({2015, 2, 1, 0, 0, 0});
  TimePoint end = from_civil_utc({2016, 3, 1, 0, 0, 0});

  [[nodiscard]] std::int64_t duration_seconds() const noexcept { return end - start; }
  [[nodiscard]] std::int64_t duration_days() const noexcept {
    return duration_seconds() / kSecondsPerDay;
  }
  /// Local-day bucket of `t` relative to the campaign's first local day.
  [[nodiscard]] std::int64_t day_of_campaign(TimePoint t) const noexcept {
    return BarcelonaClock::local_day_index(t) - BarcelonaClock::local_day_index(start);
  }
  [[nodiscard]] bool contains(TimePoint t) const noexcept {
    return t >= start && t < end;
  }
};

/// "YYYY-MM-DDTHH:MM:SS" (UTC) rendering, used by the telemetry codec.
[[nodiscard]] std::string format_iso8601(TimePoint t);

/// Parse the codec's ISO-8601 rendering.  Throws ContractViolation on
/// malformed input.
[[nodiscard]] TimePoint parse_iso8601(const std::string& text);

}  // namespace unp
