// Minimal fixed-size thread pool.
//
// Used by the live memory scanner (to split the resident buffer across
// cores, as the original tool split its 3 GB allocation) and by the campaign
// driver (per-node timelines are independent and embarrassingly parallel).
// Determinism note: the pool only parallelizes work whose outputs are merged
// in index order, so results never depend on scheduling.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace unp {

class ThreadPool {
 public:
  /// Spawns `threads` workers (>= 1; pass hardware_concurrency() for auto).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task.  Tasks must not throw; wrap fallible work yourself.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished executing.
  void wait_idle();

  [[nodiscard]] std::size_t thread_count() const noexcept { return workers_.size(); }

  /// Run fn(i) for i in [0, n) across the pool and wait for completion.
  /// `fn` must be safe to invoke concurrently for distinct indices.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace unp
