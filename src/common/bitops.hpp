// Bit-level helpers for corruption analysis.  The study characterizes each
// fault by which bits of a 32-bit memory word flipped, in which direction
// (1->0 vs 0->1), whether flipped bits are adjacent, and the gaps between
// them (Table I and Section III-C).
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

namespace unp {

/// Word size of the prototype's scanner (the tool compares 32-bit words).
using Word = std::uint32_t;

/// Positions (0 = LSB) of the set bits of `mask`, ascending.
[[nodiscard]] inline std::vector<int> set_bit_positions(Word mask) {
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(std::popcount(mask)));
  while (mask != 0) {
    const int b = std::countr_zero(mask);
    out.push_back(b);
    mask &= mask - 1;
  }
  return out;
}

/// Number of bits that differ between expected and observed word.
[[nodiscard]] inline int flipped_bit_count(Word expected, Word observed) noexcept {
  return std::popcount(expected ^ observed);
}

/// Bits that flipped from 1 to 0 (cell lost charge).
[[nodiscard]] inline Word one_to_zero_mask(Word expected, Word observed) noexcept {
  return expected & ~observed;
}

/// Bits that flipped from 0 to 1 (cell gained charge).
[[nodiscard]] inline Word zero_to_one_mask(Word expected, Word observed) noexcept {
  return ~expected & observed;
}

/// True when every pair of neighbouring flipped bits is exactly adjacent
/// (distance 1).  Single-bit masks count as adjacent, matching the paper's
/// "Consecutive" column which is only meaningful for >= 2 bits.
[[nodiscard]] inline bool flipped_bits_adjacent(Word flip_mask) noexcept {
  if (flip_mask == 0) return true;
  const int lo = std::countr_zero(flip_mask);
  const int hi = 31 - std::countl_zero(flip_mask);
  // Contiguous run <=> the mask equals the full span between lo and hi.
  const Word span =
      (hi - lo == 31) ? ~Word{0} : (((Word{1} << (hi - lo + 1)) - 1) << lo);
  return flip_mask == span;
}

/// Gaps between successive flipped bits (bit-position differences).
/// Empty for masks with fewer than two set bits.
[[nodiscard]] inline std::vector<int> flipped_bit_gaps(Word flip_mask) {
  const std::vector<int> pos = set_bit_positions(flip_mask);
  std::vector<int> gaps;
  if (pos.size() < 2) return gaps;
  gaps.reserve(pos.size() - 1);
  for (std::size_t i = 1; i < pos.size(); ++i) gaps.push_back(pos[i] - pos[i - 1]);
  return gaps;
}

/// Maximum number of untouched bits strictly between two successive flipped
/// bits (the paper reports up to 11).  0 for adjacent or single-bit masks.
[[nodiscard]] inline int max_gap_between_flipped_bits(Word flip_mask) {
  int max_gap = 0;
  for (int g : flipped_bit_gaps(flip_mask)) max_gap = g - 1 > max_gap ? g - 1 : max_gap;
  return max_gap;
}

/// Mean distance (bit-position difference) between successive flipped bits;
/// the paper reports an average of ~3.  0 when fewer than two bits flipped.
[[nodiscard]] inline double mean_distance_between_flipped_bits(Word flip_mask) {
  const std::vector<int> gaps = flipped_bit_gaps(flip_mask);
  if (gaps.empty()) return 0.0;
  double s = 0.0;
  for (int g : gaps) s += g;
  return s / static_cast<double>(gaps.size());
}

}  // namespace unp
