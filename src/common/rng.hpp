// Deterministic pseudo-random number generation for the campaign simulator.
//
// Every stochastic component of the simulation draws from its own RngStream,
// derived from (campaign seed, stream id, entity id).  Streams are stable:
// the same key always yields the same sequence regardless of the order in
// which other streams are consumed, which keeps the whole 13-month campaign
// bit-reproducible even when node timelines are generated in parallel.
//
// The generator is xoshiro256** (Blackman & Vigna), seeded through splitmix64
// as its authors recommend.  We implement it locally rather than relying on
// std::mt19937_64 so that results are identical across standard libraries.
#pragma once

#include <array>
#include <cstdint>

namespace unp {

/// splitmix64 step: the canonical stateless 64-bit mixer.  Used both as a
/// seeding routine and as a cheap hash for stream derivation.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Hash-combine for stream keys (seed, stream id, entity id, ...).
[[nodiscard]] std::uint64_t mix64(std::uint64_t a, std::uint64_t b) noexcept;

/// xoshiro256** 1.0 - 64-bit all-purpose generator, period 2^256 - 1.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) noexcept;

  [[nodiscard]] std::uint64_t next() noexcept;

  // UniformRandomBitGenerator interface so <random> distributions also work.
  std::uint64_t operator()() noexcept { return next(); }
  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept { return ~std::uint64_t{0}; }

  /// 2^128 decorrelation jump (from the reference implementation).
  void jump() noexcept;

 private:
  std::array<std::uint64_t, 4> s_{};
};

/// A keyed random stream with the distributions the fault models need.
///
/// All distribution implementations are local (no <random>) so that the exact
/// sequence of variates is part of this library's contract.
class RngStream {
 public:
  /// Root stream of a campaign.
  explicit RngStream(std::uint64_t seed) noexcept : gen_(seed) {}

  /// Derived stream: deterministic function of (parent seed, ids).
  RngStream(std::uint64_t seed, std::uint64_t stream_id,
            std::uint64_t entity_id = 0) noexcept
      : gen_(mix64(mix64(seed, stream_id), entity_id)) {}

  [[nodiscard]] std::uint64_t next_u64() noexcept { return gen_.next(); }

  /// Uniform in [0, 1).  53-bit mantissa construction.
  [[nodiscard]] double uniform() noexcept;

  /// Uniform in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n).  Uses Lemire's unbiased multiply-shift
  /// rejection method.  Requires n > 0.
  [[nodiscard]] std::uint64_t uniform_u64(std::uint64_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  [[nodiscard]] bool bernoulli(double p) noexcept;

  /// Exponential inter-arrival time with the given rate (events per unit
  /// time).  Requires rate > 0.
  [[nodiscard]] double exponential(double rate) noexcept;

  /// Poisson count with the given mean (>= 0).  Knuth multiplication for
  /// small means, PTRS transformed-rejection (Hormann) for large means.
  [[nodiscard]] std::uint64_t poisson(double mean) noexcept;

  /// Standard normal via Marsaglia polar method (cached spare).
  [[nodiscard]] double normal() noexcept;
  [[nodiscard]] double normal(double mu, double sigma) noexcept;

  /// Pick an index in [0, weights_size) proportionally to weights[i].
  /// Requires at least one strictly positive weight.
  [[nodiscard]] std::size_t weighted_index(const double* weights,
                                           std::size_t weights_size) noexcept;

 private:
  Xoshiro256 gen_;
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
};

}  // namespace unp
