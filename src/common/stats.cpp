#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/require.hpp"

namespace unp {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

namespace {

/// Continued fraction for the incomplete beta function (Numerical Recipes'
/// betacf structure, modified Lentz algorithm).
double beta_continued_fraction(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3e-14;
  constexpr double kFpMin = 1e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const auto md = static_cast<double>(m);
    const double m2 = 2.0 * md;
    double aa = md * (b - md) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + md) * (qab + md) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double incomplete_beta(double a, double b, double x) {
  UNP_REQUIRE(a > 0.0 && b > 0.0);
  UNP_REQUIRE(x >= 0.0 && x <= 1.0);
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  const double ln_front = std::lgamma(a + b) - std::lgamma(a) -
                          std::lgamma(b) + a * std::log(x) +
                          b * std::log1p(-x);
  const double front = std::exp(ln_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * beta_continued_fraction(a, b, x) / a;
  }
  return 1.0 - front * beta_continued_fraction(b, a, 1.0 - x) / b;
}

double student_t_two_sided_p(double t, double dof) {
  UNP_REQUIRE(dof > 0.0);
  const double x = dof / (dof + t * t);
  return incomplete_beta(dof / 2.0, 0.5, x);
}

PearsonResult pearson(std::span<const double> x, std::span<const double> y) {
  UNP_REQUIRE(x.size() == y.size());
  PearsonResult res;
  res.n = x.size();
  if (res.n < 2) return res;

  double mx = 0.0, my = 0.0;
  for (std::size_t i = 0; i < res.n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(res.n);
  my /= static_cast<double>(res.n);

  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < res.n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return res;  // constant series: r undefined -> 0
  res.r = sxy / std::sqrt(sxx * syy);
  res.r = std::clamp(res.r, -1.0, 1.0);

  if (res.n >= 3 && std::fabs(res.r) < 1.0) {
    const auto dof = static_cast<double>(res.n - 2);
    const double t =
        res.r * std::sqrt(dof / (1.0 - res.r * res.r));
    res.p_value = student_t_two_sided_p(t, dof);
  } else if (std::fabs(res.r) >= 1.0) {
    res.p_value = 0.0;
  }
  return res;
}

double mean_of(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double median_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  std::vector<double> copy(xs.begin(), xs.end());
  const std::size_t mid = copy.size() / 2;
  std::nth_element(copy.begin(), copy.begin() + static_cast<std::ptrdiff_t>(mid),
                   copy.end());
  if (copy.size() % 2 == 1) return copy[mid];
  const double hi = copy[mid];
  std::nth_element(copy.begin(),
                   copy.begin() + static_cast<std::ptrdiff_t>(mid) - 1,
                   copy.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (copy[mid - 1] + hi);
}

double percentile_of(std::span<const double> xs, double q) {
  UNP_REQUIRE(q >= 0.0 && q <= 100.0);
  if (xs.empty()) return 0.0;
  std::vector<double> copy(xs.begin(), xs.end());
  std::sort(copy.begin(), copy.end());
  const double pos = q / 100.0 * static_cast<double>(copy.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, copy.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return copy[lo] * (1.0 - frac) + copy[hi] * frac;
}

}  // namespace unp
