// Statistical primitives used by the failure analysis (Section III of the
// paper): running moments, Pearson correlation with a two-sided p-value
// (the paper reports r = -0.17966, p = 0.0002 for scanned-TB-h vs errors),
// and simple order statistics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace unp {

/// Numerically stable streaming mean/variance (Welford).
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

  /// Merge another accumulator (parallel reduction, Chan et al.).
  void merge(const RunningStats& other) noexcept;

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Result of a Pearson correlation test.
struct PearsonResult {
  double r = 0.0;        ///< correlation coefficient in [-1, 1]
  double p_value = 1.0;  ///< two-sided p under the t-distribution null
  std::size_t n = 0;     ///< number of paired samples
};

/// Pearson product-moment correlation of two equally sized series.
/// Requires x.size() == y.size() and at least 3 samples for a p-value.
[[nodiscard]] PearsonResult pearson(std::span<const double> x,
                                    std::span<const double> y);

/// Regularized incomplete beta function I_x(a, b) via the continued-fraction
/// expansion (Lentz).  Exposed for testing; domain x in [0,1], a,b > 0.
[[nodiscard]] double incomplete_beta(double a, double b, double x);

/// Two-sided p-value for a Student-t statistic with `dof` degrees of freedom.
[[nodiscard]] double student_t_two_sided_p(double t, double dof);

/// Arithmetic mean; 0 for an empty span.
[[nodiscard]] double mean_of(std::span<const double> xs) noexcept;

/// Median (copies and partially sorts); 0 for an empty span.
[[nodiscard]] double median_of(std::span<const double> xs);

/// Linear-interpolated percentile, q in [0, 100].
[[nodiscard]] double percentile_of(std::span<const double> xs, double q);

}  // namespace unp
