#include "common/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/require.hpp"

namespace unp {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  UNP_REQUIRE(!header_.empty());
}

void TextTable::add_row(std::vector<std::string> cells) {
  UNP_REQUIRE(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      if (c + 1 < row.size()) out.append(widths[c] - row[c].size() + 2, ' ');
    }
    out += '\n';
  };

  std::string out;
  emit_row(header_, out);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out.append(rule, '-');
  out += '\n';
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

std::string render_bars(const std::vector<BarEntry>& entries, int width) {
  UNP_REQUIRE(width > 0);
  double max_v = 0.0;
  std::size_t label_w = 0;
  for (const auto& e : entries) {
    max_v = std::max(max_v, e.value);
    label_w = std::max(label_w, e.label.size());
  }
  std::string out;
  for (const auto& e : entries) {
    out += e.label;
    out.append(label_w - e.label.size() + 2, ' ');
    const int bar =
        max_v > 0.0
            ? static_cast<int>(std::lround(e.value / max_v * width))
            : 0;
    out.append(static_cast<std::size_t>(bar), '#');
    out += "  ";
    out += format_fixed(e.value, e.value == std::floor(e.value) ? 0 : 2);
    out += '\n';
  }
  return out;
}

std::string render_heatmap(const Grid2D& grid, bool log_scale) {
  static constexpr char kRamp[] = {' ', '.', ':', '-', '=', '+', '*', '%', '@'};
  constexpr int kLevels = static_cast<int>(sizeof kRamp) - 1;  // indices 1..8

  auto transform = [log_scale](double v) {
    return log_scale ? std::log1p(v) : v;
  };
  double max_v = 0.0;
  for (std::size_t r = 0; r < grid.rows(); ++r) {
    for (std::size_t c = 0; c < grid.cols(); ++c) {
      max_v = std::max(max_v, transform(grid.at(r, c)));
    }
  }

  std::string out;
  for (std::size_t r = 0; r < grid.rows(); ++r) {
    for (std::size_t c = 0; c < grid.cols(); ++c) {
      const double raw = grid.at(r, c);
      if (raw <= 0.0) {
        out += kRamp[0];
      } else if (max_v <= 0.0) {
        out += kRamp[1];
      } else {
        int level = 1 + static_cast<int>(transform(raw) / max_v *
                                         static_cast<double>(kLevels - 1));
        level = std::clamp(level, 1, kLevels);
        out += kRamp[level];
      }
    }
    out += '\n';
  }
  return out;
}

std::string format_fixed(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

std::string format_count(std::uint64_t v) {
  // Group thousands with commas for readability in bench output.
  std::string digits = std::to_string(v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  std::size_t lead = digits.size() % 3;
  if (lead == 0) lead = 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i == lead || (i > lead && (i - lead) % 3 == 0)) out += ',';
    out += digits[i];
  }
  return out;
}

std::string format_hex32(std::uint32_t v) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "0x%08x", v);
  return buf;
}

}  // namespace unp
