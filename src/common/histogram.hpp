// Binned counters backing the paper's figures: 1-D histograms (hour-of-day,
// temperature, per-day series) and 2-D grids (the blade x SoC heat maps of
// Figs 1-3).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/require.hpp"

namespace unp {

/// Fixed-width-bin histogram over [lo, hi) with under/overflow buckets.
class Histogram1D {
 public:
  Histogram1D(double lo, double hi, std::size_t bins)
      : lo_(lo), hi_(hi), counts_(bins, 0) {
    UNP_REQUIRE(bins > 0);
    UNP_REQUIRE(hi > lo);
  }

  /// Add `weight` to the bin containing `x` (default weight 1).
  void add(double x, std::uint64_t weight = 1) noexcept {
    if (x < lo_) {
      underflow_ += weight;
    } else if (x >= hi_) {
      overflow_ += weight;
    } else {
      const double frac = (x - lo_) / (hi_ - lo_);
      auto idx = static_cast<std::size_t>(frac * static_cast<double>(counts_.size()));
      if (idx >= counts_.size()) idx = counts_.size() - 1;  // fp edge
      counts_[idx] += weight;
    }
  }

  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t count(std::size_t bin) const {
    UNP_REQUIRE(bin < counts_.size());
    return counts_[bin];
  }
  [[nodiscard]] std::uint64_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }

  [[nodiscard]] double bin_lo(std::size_t bin) const {
    UNP_REQUIRE(bin < counts_.size());
    return lo_ + bin_width() * static_cast<double>(bin);
  }
  [[nodiscard]] double bin_center(std::size_t bin) const {
    return bin_lo(bin) + 0.5 * bin_width();
  }
  [[nodiscard]] double bin_width() const noexcept {
    return (hi_ - lo_) / static_cast<double>(counts_.size());
  }

  [[nodiscard]] std::uint64_t total() const noexcept {
    std::uint64_t sum = underflow_ + overflow_;
    for (auto c : counts_) sum += c;
    return sum;
  }

  void merge(const Histogram1D& other) {
    UNP_REQUIRE(other.counts_.size() == counts_.size());
    UNP_REQUIRE(other.lo_ == lo_ && other.hi_ == hi_);
    for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
    underflow_ += other.underflow_;
    overflow_ += other.overflow_;
  }

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
};

/// Dense row-major 2-D grid of doubles; the unit of the heat-map figures.
class Grid2D {
 public:
  Grid2D(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), cells_(rows * cols, fill) {
    UNP_REQUIRE(rows > 0 && cols > 0);
  }

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  [[nodiscard]] double& at(std::size_t r, std::size_t c) {
    UNP_REQUIRE(r < rows_ && c < cols_);
    return cells_[r * cols_ + c];
  }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const {
    UNP_REQUIRE(r < rows_ && c < cols_);
    return cells_[r * cols_ + c];
  }

  [[nodiscard]] double max_value() const noexcept {
    double m = cells_.empty() ? 0.0 : cells_.front();
    for (double v : cells_) m = v > m ? v : m;
    return m;
  }
  [[nodiscard]] double sum() const noexcept {
    double s = 0.0;
    for (double v : cells_) s += v;
    return s;
  }

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<double> cells_;
};

}  // namespace unp
