#include "common/civil_time.hpp"

#include <cstdio>

#include "common/require.hpp"

namespace unp {

std::int64_t days_from_civil(int year, int month, int day) noexcept {
  // Hinnant, "chrono-Compatible Low-Level Date Algorithms".
  year -= month <= 2;
  const std::int64_t era = (year >= 0 ? year : year - 399) / 400;
  const auto yoe = static_cast<unsigned>(year - static_cast<int>(era) * 400);
  const auto doy = static_cast<unsigned>(
      (153 * (month + (month > 2 ? -3 : 9)) + 2) / 5 + day - 1);
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

CivilDateTime civil_from_days(std::int64_t days) noexcept {
  days += 719468;
  const std::int64_t era = (days >= 0 ? days : days - 146096) / 146097;
  const auto doe = static_cast<unsigned>(days - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const std::int64_t y = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;
  const unsigned m = mp + (mp < 10 ? 3 : static_cast<unsigned>(-9));
  CivilDateTime c;
  c.year = static_cast<int>(y + (m <= 2));
  c.month = static_cast<int>(m);
  c.day = static_cast<int>(d);
  return c;
}

TimePoint from_civil_utc(const CivilDateTime& c) noexcept {
  return days_from_civil(c.year, c.month, c.day) * kSecondsPerDay +
         c.hour * kSecondsPerHour + c.minute * kSecondsPerMinute + c.second;
}

CivilDateTime to_civil_utc(TimePoint t) noexcept {
  std::int64_t days = t / kSecondsPerDay;
  std::int64_t rem = t % kSecondsPerDay;
  if (rem < 0) {
    rem += kSecondsPerDay;
    --days;
  }
  CivilDateTime c = civil_from_days(days);
  c.hour = static_cast<int>(rem / kSecondsPerHour);
  c.minute = static_cast<int>((rem / kSecondsPerMinute) % 60);
  c.second = static_cast<int>(rem % 60);
  return c;
}

int weekday_from_days(std::int64_t days) noexcept {
  // 1970-01-01 was a Thursday (weekday 4).
  const std::int64_t wd = (days + 4) % 7;
  return static_cast<int>(wd >= 0 ? wd : wd + 7);
}

bool is_leap_year(int year) noexcept {
  return year % 4 == 0 && (year % 100 != 0 || year % 400 == 0);
}

namespace {

/// Day count of the last Sunday of `month` in `year`.
std::int64_t last_sunday(int year, int month) noexcept {
  // Last day of the month: day before the 1st of next month.
  const int next_month = month == 12 ? 1 : month + 1;
  const int next_year = month == 12 ? year + 1 : year;
  const std::int64_t last_day = days_from_civil(next_year, next_month, 1) - 1;
  return last_day - weekday_from_days(last_day);
}

}  // namespace

std::int64_t BarcelonaClock::utc_offset(TimePoint t) noexcept {
  const int year = to_civil_utc(t).year;
  const TimePoint dst_start =
      last_sunday(year, 3) * kSecondsPerDay + 1 * kSecondsPerHour;
  const TimePoint dst_end =
      last_sunday(year, 10) * kSecondsPerDay + 1 * kSecondsPerHour;
  const bool dst = t >= dst_start && t < dst_end;
  return dst ? 2 * kSecondsPerHour : kSecondsPerHour;
}

CivilDateTime BarcelonaClock::to_local(TimePoint t) noexcept {
  return to_civil_utc(t + utc_offset(t));
}

double BarcelonaClock::local_hour(TimePoint t) noexcept {
  std::int64_t local = t + utc_offset(t);
  std::int64_t sec_of_day = local % kSecondsPerDay;
  if (sec_of_day < 0) sec_of_day += kSecondsPerDay;
  return static_cast<double>(sec_of_day) / kSecondsPerHour;
}

std::int64_t BarcelonaClock::local_day_index(TimePoint t) noexcept {
  std::int64_t local = t + utc_offset(t);
  std::int64_t days = local / kSecondsPerDay;
  if (local % kSecondsPerDay < 0) --days;
  return days;
}

std::string format_iso8601(TimePoint t) {
  const CivilDateTime c = to_civil_utc(t);
  char buf[32];
  std::snprintf(buf, sizeof buf, "%04d-%02d-%02dT%02d:%02d:%02d", c.year,
                c.month, c.day, c.hour, c.minute, c.second);
  return buf;
}

TimePoint parse_iso8601(const std::string& text) {
  CivilDateTime c;
  char sep = '\0';
  const int got =
      std::sscanf(text.c_str(), "%d-%d-%d%c%d:%d:%d", &c.year, &c.month,
                  &c.day, &sep, &c.hour, &c.minute, &c.second);
  UNP_REQUIRE(got == 7 && (sep == 'T' || sep == ' '));
  UNP_REQUIRE(c.month >= 1 && c.month <= 12);
  UNP_REQUIRE(c.day >= 1 && c.day <= 31);
  UNP_REQUIRE(c.hour >= 0 && c.hour <= 23);
  UNP_REQUIRE(c.minute >= 0 && c.minute <= 59);
  UNP_REQUIRE(c.second >= 0 && c.second <= 60);
  return from_civil_utc(c);
}

}  // namespace unp
