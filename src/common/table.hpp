// Plain-text rendering helpers for the bench binaries: fixed-width tables
// (Tables I and II), horizontal bar series (the per-hour / per-day figures)
// and ASCII heat maps (the blade x SoC node grids of Figs 1-3).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/histogram.hpp"

namespace unp {

/// Column-aligned ASCII table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Render with a separator line under the header; columns padded to the
  /// widest cell.
  [[nodiscard]] std::string render() const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// One labelled series entry of a bar chart.
struct BarEntry {
  std::string label;
  double value = 0.0;
};

/// Horizontal ASCII bar chart; bars scaled to `width` characters at the max.
[[nodiscard]] std::string render_bars(const std::vector<BarEntry>& entries,
                                      int width = 60);

/// ASCII heat map of a grid; '.' for zero, then density characters scaled to
/// the grid maximum.  When `log_scale` is set, values are compressed with
/// log1p before scaling (Fig 3 uses a logarithmic colour scale).
[[nodiscard]] std::string render_heatmap(const Grid2D& grid, bool log_scale = false);

/// Format helpers used throughout the bench output.
[[nodiscard]] std::string format_fixed(double v, int decimals);
[[nodiscard]] std::string format_count(std::uint64_t v);
[[nodiscard]] std::string format_hex32(std::uint32_t v);

}  // namespace unp
