// Allocation back-off policy of the scanning tool (Section II-B): try to
// allocate 3 GB (the most an application can get on a node); on failure,
// shrink the request by 10 MB and retry, down to zero.  A zero result means
// the attempt failed entirely and an ALLOCFAIL record is due.
#pragma once

#include <cstdint>
#include <functional>

namespace unp::scanner {

struct AllocPolicy {
  std::uint64_t target_bytes = 3ULL << 30;  ///< 3 GB
  std::uint64_t step_bytes = 10ULL << 20;   ///< 10 MB
};

/// Negotiate an allocation size.  `try_alloc(bytes)` attempts one allocation
/// and reports success.  Returns the size that succeeded, or 0 when every
/// size down to the step granularity failed.
[[nodiscard]] std::uint64_t negotiate_allocation(
    const AllocPolicy& policy, const std::function<bool(std::uint64_t)>& try_alloc);

}  // namespace unp::scanner
