#include "scanner/real_backend.hpp"

#include <algorithm>

#include "common/require.hpp"

namespace unp::scanner {

RealMemoryBackend::RealMemoryBackend(std::uint64_t bytes, std::size_t threads)
    : words_(static_cast<std::size_t>(bytes / sizeof(Word)), 0) {
  UNP_REQUIRE(bytes >= sizeof(Word));
  UNP_REQUIRE(threads >= 1);
  if (threads > 1) pool_ = std::make_unique<ThreadPool>(threads);
}

void RealMemoryBackend::fill(Word value) {
  std::fill(words_.begin(), words_.end(), value);
}

void RealMemoryBackend::verify_and_write(Word expected, Word next,
                                         const MismatchFn& report) {
  struct Mismatch {
    std::uint64_t index;
    Word actual;
  };

  const std::size_t n = words_.size();
  const std::size_t lanes = pool_ ? pool_->thread_count() : 1;
  const std::size_t chunk = (n + lanes - 1) / lanes;

  std::vector<std::vector<Mismatch>> found(lanes);

  auto scan_range = [&](std::size_t lane) {
    const std::size_t begin = lane * chunk;
    const std::size_t end = std::min(begin + chunk, n);
    Word* data = words_.data();
    for (std::size_t i = begin; i < end; ++i) {
      const Word actual = data[i];
      if (actual != expected) {
        found[lane].push_back({static_cast<std::uint64_t>(i), actual});
      }
      data[i] = next;
    }
  };

  if (pool_) {
    pool_->parallel_for(lanes, scan_range);
  } else {
    scan_range(0);
  }

  // Ranges are contiguous and ascending, so lane order == address order.
  for (const auto& lane_hits : found) {
    for (const auto& m : lane_hits) report(m.index, m.actual);
  }
}

void RealMemoryBackend::poke(std::uint64_t word_index, Word value) {
  UNP_REQUIRE(word_index < words_.size());
  words_[static_cast<std::size_t>(word_index)] = value;
}

Word RealMemoryBackend::peek(std::uint64_t word_index) const {
  UNP_REQUIRE(word_index < words_.size());
  return words_[static_cast<std::size_t>(word_index)];
}

}  // namespace unp::scanner
