#include "scanner/real_backend.hpp"

#include <algorithm>

#include "common/require.hpp"

namespace unp::scanner {

namespace {

/// Lane boundaries are rounded up to whole cache lines so adjacent lanes
/// never store to the same line (no false sharing between workers).
constexpr std::size_t kCacheLineWords = 64 / sizeof(Word);

/// Split [0, n) into contiguous lanes of `chunk` words, one per worker,
/// with chunk a cache-line multiple.  Returns the number of non-empty
/// lanes (possibly fewer than `workers` once rounding makes chunks bigger).
std::size_t lane_partition(std::size_t n, std::size_t workers,
                           std::size_t& chunk) {
  chunk = (n + workers - 1) / workers;
  chunk = (chunk + kCacheLineWords - 1) / kCacheLineWords * kCacheLineWords;
  return (n + chunk - 1) / chunk;
}

}  // namespace

RealMemoryBackend::RealMemoryBackend(std::uint64_t bytes, std::size_t threads)
    : words_(static_cast<std::size_t>(bytes / sizeof(Word)), 0),
      kernels_(&kernels::active_kernels()),
      nontemporal_(bytes > kernels::nontemporal_threshold_bytes()) {
  UNP_REQUIRE(bytes >= sizeof(Word));
  UNP_REQUIRE(threads >= 1);
  if (threads > 1) owned_pool_ = std::make_unique<ThreadPool>(threads);
}

RealMemoryBackend::RealMemoryBackend(std::uint64_t bytes, ThreadPool& pool)
    : words_(static_cast<std::size_t>(bytes / sizeof(Word)), 0),
      borrowed_pool_(&pool),
      kernels_(&kernels::active_kernels()),
      nontemporal_(bytes > kernels::nontemporal_threshold_bytes()) {
  UNP_REQUIRE(bytes >= sizeof(Word));
}

void RealMemoryBackend::fill(Word value) {
  const std::size_t n = words_.size();
  ThreadPool* tp = pool();
  const std::size_t workers = tp != nullptr ? tp->thread_count() : 1;
  std::size_t chunk = 0;
  const std::size_t lanes = lane_partition(n, workers, chunk);

  auto fill_lane = [&](std::size_t lane) {
    const std::size_t begin = lane * chunk;
    const std::size_t end = std::min(begin + chunk, n);
    kernels::masked_fill(*kernels_, words_.data() + begin, end - begin, begin,
                         value, nontemporal_, masked_);
  };
  if (tp != nullptr && lanes > 1) {
    tp->parallel_for(lanes, fill_lane);
  } else {
    for (std::size_t lane = 0; lane < lanes; ++lane) fill_lane(lane);
  }
}

void RealMemoryBackend::verify_and_write(Word expected, Word next,
                                         const MismatchFn& report) {
  const std::size_t n = words_.size();
  ThreadPool* tp = pool();
  const std::size_t workers = tp != nullptr ? tp->thread_count() : 1;
  std::size_t chunk = 0;
  const std::size_t lanes = lane_partition(n, workers, chunk);
  if (lane_hits_.size() < lanes) lane_hits_.resize(lanes);

  auto scan_lane = [&](std::size_t lane) {
    auto& hits = lane_hits_[lane];
    if (hits.capacity() == 0) hits.reserve(64);
    hits.clear();
    const std::size_t begin = lane * chunk;
    const std::size_t end = std::min(begin + chunk, n);
    if (masked_.empty()) {
      kernels_->verify_and_write(words_.data() + begin, end - begin, begin,
                                 expected, next, nontemporal_, hits);
    } else {
      kernels::masked_verify_and_write(*kernels_, words_.data() + begin,
                                       end - begin, begin, expected, next,
                                       nontemporal_, masked_, hits);
    }
  };
  if (tp != nullptr && lanes > 1) {
    tp->parallel_for(lanes, scan_lane);
  } else {
    for (std::size_t lane = 0; lane < lanes; ++lane) scan_lane(lane);
  }

  // Lanes are contiguous and ascending and each lane's hits are ascending,
  // so lane order == address order.
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    for (const auto& hit : lane_hits_[lane]) report(hit.index, hit.actual);
  }
}

void RealMemoryBackend::poke(std::uint64_t word_index, Word value) {
  UNP_REQUIRE(word_index < words_.size());
  if (masked_.contains(word_index)) return;  // retired page: unmapped
  words_[static_cast<std::size_t>(word_index)] = value;
}

Word RealMemoryBackend::peek(std::uint64_t word_index) const {
  UNP_REQUIRE(word_index < words_.size());
  return words_[static_cast<std::size_t>(word_index)];
}

void RealMemoryBackend::mask_words(std::uint64_t first, std::uint64_t count) {
  UNP_REQUIRE(first < words_.size());
  masked_.insert(first, std::min(count, words_.size() - first));
}

bool RealMemoryBackend::is_masked(std::uint64_t word) const noexcept {
  return masked_.contains(word);
}

std::uint64_t RealMemoryBackend::masked_word_count() const noexcept {
  return masked_.total();
}

}  // namespace unp::scanner
