// The memory scanner: the software error detector of the study.
//
// Life cycle (mirrors the original tool driven by scheduler prologue /
// epilogue scripts):
//
//   start()  - fill memory with the pattern's first value, log START
//   step()   - one iteration: check every word against the previous write,
//              log an ERROR per mismatching word, store the next value
//   request_stop() - the SIGTERM hook; safe from any thread / signal context
//   finish() - log END
//
// The scanner itself is policy-free: time comes from a Clock, temperature
// from a TemperatureProbe, storage from a MemoryBackend, and records go to
// a LogSink.  This is what lets the identical scanner drive a live machine
// and the simulated campaign.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>

#include "cluster/topology.hpp"
#include "common/civil_time.hpp"
#include "scanner/backend.hpp"
#include "scanner/pattern.hpp"
#include "telemetry/archive.hpp"
#include "telemetry/record.hpp"

namespace unp::scanner {

/// Time source for record timestamps.
class Clock {
 public:
  virtual ~Clock() = default;
  [[nodiscard]] virtual TimePoint now() = 0;
};

/// Wall clock (the live tool).
class SystemClock final : public Clock {
 public:
  [[nodiscard]] TimePoint now() override;
};

/// Scripted clock (tests and simulation).
class ManualClock final : public Clock {
 public:
  explicit ManualClock(TimePoint start = 0) noexcept : now_(start) {}
  [[nodiscard]] TimePoint now() override { return now_; }
  void set(TimePoint t) noexcept { now_ = t; }
  void advance(std::int64_t seconds) noexcept { now_ += seconds; }

 private:
  TimePoint now_;
};

/// Node temperature source.
class TemperatureProbe {
 public:
  virtual ~TemperatureProbe() = default;
  /// Reading in Celsius, or telemetry::kNoTemperature if unavailable.
  [[nodiscard]] virtual double read_c() = 0;
};

/// Constant reading (tests) or "no sensor" (pre-April-2015 behaviour).
class FixedProbe final : public TemperatureProbe {
 public:
  explicit FixedProbe(double celsius = telemetry::kNoTemperature) noexcept
      : celsius_(celsius) {}
  [[nodiscard]] double read_c() override { return celsius_; }
  void set(double celsius) noexcept { celsius_ = celsius; }

 private:
  double celsius_;
};

/// Receiver for the scanner's records.
class LogSink {
 public:
  virtual ~LogSink() = default;
  virtual void on_start(const telemetry::StartRecord& r) = 0;
  virtual void on_end(const telemetry::EndRecord& r) = 0;
  virtual void on_alloc_fail(const telemetry::AllocFailRecord& r) = 0;
  virtual void on_error(const telemetry::ErrorRecord& r) = 0;
};

/// Sink appending into a telemetry::NodeLog.
class NodeLogSink final : public LogSink {
 public:
  explicit NodeLogSink(telemetry::NodeLog& log) noexcept : log_(&log) {}
  void on_start(const telemetry::StartRecord& r) override { log_->add_start(r); }
  void on_end(const telemetry::EndRecord& r) override { log_->add_end(r); }
  void on_alloc_fail(const telemetry::AllocFailRecord& r) override {
    log_->add_alloc_fail(r);
  }
  void on_error(const telemetry::ErrorRecord& r) override { log_->add_error(r); }

 private:
  telemetry::NodeLog* log_;
};

class MemoryScanner {
 public:
  struct Config {
    cluster::NodeId node;
    PatternKind pattern = PatternKind::kAlternating;
    /// Bytes reported in the START record (the negotiated allocation).
    std::uint64_t allocated_bytes = 0;
  };

  MemoryScanner(MemoryBackend& backend, LogSink& sink, Clock& clock,
                TemperatureProbe& probe, const Config& config);

  /// Fill memory with the pattern's first value and log START.
  void start();

  /// One check-and-flip iteration.  Returns false when a stop was requested
  /// (the iteration itself still completes).  Must be preceded by start().
  bool step();

  /// Run until `max_iterations` steps completed or a stop is requested.
  void run(std::uint64_t max_iterations =
               std::numeric_limits<std::uint64_t>::max());

  /// SIGTERM hook: async-signal-safe stop request.
  void request_stop() noexcept { stop_.store(true, std::memory_order_relaxed); }

  /// Log END.  Call after the loop exits.
  void finish();

  [[nodiscard]] std::uint64_t iterations() const noexcept { return iteration_; }
  [[nodiscard]] std::uint64_t errors_logged() const noexcept { return errors_; }

 private:
  MemoryBackend* backend_;
  LogSink* sink_;
  Clock* clock_;
  TemperatureProbe* probe_;
  Config config_;
  Pattern pattern_;
  std::uint64_t iteration_ = 0;
  std::uint64_t errors_ = 0;
  bool started_ = false;
  std::atomic<bool> stop_{false};
};

}  // namespace unp::scanner
