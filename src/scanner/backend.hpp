// Memory backend abstraction for the scanner.
//
// The scanner's inner loop is "check every word against the previous write,
// then store the next value".  The backend supplies that operation over
// either real resident memory (RealMemoryBackend - the deployable tool) or
// a virtual 3 GB word space with injected corruptions (SimulatedMemoryBackend
// - the campaign substrate).  Both honour identical semantics so the same
// MemoryScanner drives either.
#pragma once

#include <cstdint>
#include <functional>

#include "common/bitops.hpp"

namespace unp::scanner {

/// Mismatch callback: (word index, actual stored value).
using MismatchFn = std::function<void(std::uint64_t, Word)>;

class MemoryBackend {
 public:
  virtual ~MemoryBackend() = default;

  /// Number of 32-bit words under scan.
  [[nodiscard]] virtual std::uint64_t word_count() const noexcept = 0;

  /// Store `value` in every word (iteration 0 / session start).
  virtual void fill(Word value) = 0;

  /// For every word: report a mismatch if the stored value differs from
  /// `expected`, then store `next`.  Mismatches are reported in ascending
  /// word order regardless of internal parallelism.
  virtual void verify_and_write(Word expected, Word next,
                                const MismatchFn& report) = 0;
};

}  // namespace unp::scanner
