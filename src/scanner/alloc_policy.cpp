#include "scanner/alloc_policy.hpp"

#include "common/require.hpp"

namespace unp::scanner {

std::uint64_t negotiate_allocation(
    const AllocPolicy& policy,
    const std::function<bool(std::uint64_t)>& try_alloc) {
  UNP_REQUIRE(policy.step_bytes > 0);
  for (std::uint64_t bytes = policy.target_bytes; bytes > 0;
       bytes = bytes > policy.step_bytes ? bytes - policy.step_bytes : 0) {
    if (try_alloc(bytes)) return bytes;
  }
  return 0;
}

}  // namespace unp::scanner
