// Write patterns of the memory scanning tool (Section II-B).
//
// Alternating: iteration 0 writes 0x00000000 everywhere; each following
// iteration checks the previous value and writes its complement
// (0xFFFFFFFF, 0x00000000, ...).  This stresses every bit position equally
// and is what most of the study used.
//
// Counter: starts at 0x00000001 and increments the written value by one
// every iteration (the secondary strategy the authors tested); it explains
// the small expected values of several Table I rows.
//
// At iteration i >= 1 the scanner checks the value written at iteration
// i-1; `expected_at(i)` therefore returns the i-1 write value, and
// `written_at(i)` the value stored during iteration i.
#pragma once

#include <cstdint>

#include "common/bitops.hpp"
#include "common/require.hpp"

namespace unp::scanner {

enum class PatternKind : std::uint8_t { kAlternating, kCounter };

[[nodiscard]] const char* to_string(PatternKind kind) noexcept;

class Pattern {
 public:
  explicit Pattern(PatternKind kind) noexcept : kind_(kind) {}

  [[nodiscard]] PatternKind kind() const noexcept { return kind_; }

  /// Value written to every word during iteration `i` (i >= 0).
  [[nodiscard]] Word written_at(std::uint64_t i) const noexcept {
    if (kind_ == PatternKind::kAlternating) {
      return (i % 2 == 0) ? Word{0x00000000} : Word{0xFFFFFFFF};
    }
    // Counter: 0x00000001 at iteration 0, +1 per iteration (wraps).
    return static_cast<Word>(1 + i);
  }

  /// Value the check at iteration `i` expects (i >= 1): the previous write.
  [[nodiscard]] Word expected_at(std::uint64_t i) const {
    UNP_REQUIRE(i >= 1);
    return written_at(i - 1);
  }

 private:
  PatternKind kind_;
};

}  // namespace unp::scanner
