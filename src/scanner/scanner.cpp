#include "scanner/scanner.hpp"

#include <chrono>

#include "common/require.hpp"

namespace unp::scanner {

TimePoint SystemClock::now() {
  return std::chrono::duration_cast<std::chrono::seconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

MemoryScanner::MemoryScanner(MemoryBackend& backend, LogSink& sink,
                             Clock& clock, TemperatureProbe& probe,
                             const Config& config)
    : backend_(&backend),
      sink_(&sink),
      clock_(&clock),
      probe_(&probe),
      config_(config),
      pattern_(config.pattern) {
  if (config_.allocated_bytes == 0) {
    config_.allocated_bytes = backend.word_count() * sizeof(Word);
  }
}

void MemoryScanner::start() {
  UNP_REQUIRE(!started_);
  backend_->fill(pattern_.written_at(0));
  iteration_ = 0;
  sink_->on_start({clock_->now(), config_.node, config_.allocated_bytes,
                   probe_->read_c()});
  started_ = true;
}

bool MemoryScanner::step() {
  UNP_REQUIRE(started_);
  ++iteration_;
  const Word expected = pattern_.expected_at(iteration_);
  const Word next = pattern_.written_at(iteration_);

  // Capture per-iteration context once: the original tool stamps every log
  // of a pass with the same second-granular timestamp and sensor reading.
  const TimePoint now = clock_->now();
  const double temperature = probe_->read_c();

  backend_->verify_and_write(
      expected, next, [&](std::uint64_t word_index, Word actual) {
        telemetry::ErrorRecord record;
        record.time = now;
        record.node = config_.node;
        record.virtual_address = word_index * sizeof(Word);
        record.expected = expected;
        record.actual = actual;
        record.temperature_c = temperature;
        // The tool logged the physical page backing the virtual address;
        // the simulation uses an identity page table over the buffer.
        record.physical_page = record.virtual_address >> 12;
        sink_->on_error(record);
        ++errors_;
      });

  return !stop_.load(std::memory_order_relaxed);
}

void MemoryScanner::run(std::uint64_t max_iterations) {
  for (std::uint64_t i = 0; i < max_iterations; ++i) {
    if (!step()) return;
  }
}

void MemoryScanner::finish() {
  UNP_REQUIRE(started_);
  sink_->on_end({clock_->now(), config_.node, probe_->read_c()});
  started_ = false;
}

}  // namespace unp::scanner
