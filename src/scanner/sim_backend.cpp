#include "scanner/sim_backend.hpp"

#include <algorithm>

#include "common/require.hpp"

namespace unp::scanner {

SimulatedMemoryBackend::SimulatedMemoryBackend(std::uint64_t word_count)
    : word_count_(word_count) {
  UNP_REQUIRE(word_count >= 1);
}

void SimulatedMemoryBackend::fill(Word value) {
  last_written_ = value;
  deviations_.clear();
  // Stuck cells override the fill like they override any write.
  for (const auto& [word, corruption] : stuck_) {
    const Word stored = corruption.apply(value);
    if (stored != value) deviations_[word] = stored;
  }
}

void SimulatedMemoryBackend::verify_and_write(Word expected, Word next,
                                              const MismatchFn& report) {
  // Report deviated words (ascending order is the map's natural order).
  for (const auto& [word, stored] : deviations_) {
    if (stored != expected && !is_masked(word)) report(word, stored);
  }
  // The write repairs every transient deviation; stuck cells re-assert.
  last_written_ = next;
  deviations_.clear();
  for (const auto& [word, corruption] : stuck_) {
    const Word stored = corruption.apply(next);
    if (stored != next) deviations_[word] = stored;
  }
}

void SimulatedMemoryBackend::inject_transient(
    std::uint64_t word, const dram::WordCorruption& corruption) {
  UNP_REQUIRE(word < word_count_);
  if (is_masked(word)) return;  // retired page: nothing maps there anymore
  const Word current = load(word);
  const Word upset = corruption.apply(current);
  if (upset != last_written_) {
    deviations_[word] = upset;
  } else {
    deviations_.erase(word);
  }
}

void SimulatedMemoryBackend::inject_stuck(std::uint64_t word,
                                          const dram::WordCorruption& corruption) {
  UNP_REQUIRE(word < word_count_);
  if (is_masked(word)) return;  // retired page: nothing maps there anymore
  stuck_[word] = corruption;
  const Word stored = corruption.apply(load(word));
  if (stored != last_written_) {
    deviations_[word] = stored;
  } else {
    deviations_.erase(word);
  }
}

void SimulatedMemoryBackend::clear_stuck(std::uint64_t word) {
  stuck_.erase(word);
}

void SimulatedMemoryBackend::mask_words(std::uint64_t first,
                                        std::uint64_t count) {
  UNP_REQUIRE(first < word_count_);
  masked_.insert(first, std::min(count, word_count_ - first));
}

bool SimulatedMemoryBackend::is_masked(std::uint64_t word) const noexcept {
  return masked_.contains(word);
}

std::uint64_t SimulatedMemoryBackend::masked_word_count() const noexcept {
  return masked_.total();
}

Word SimulatedMemoryBackend::load(std::uint64_t word) const {
  UNP_REQUIRE(word < word_count_);
  const auto it = deviations_.find(word);
  return it != deviations_.end() ? it->second : last_written_;
}

}  // namespace unp::scanner
