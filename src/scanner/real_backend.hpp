// Resident-memory backend: the deployable half of the scanning tool.
//
// Owns a real allocation and implements the fused check-and-flip pass, split
// across a thread pool in contiguous ranges.  Mismatch reports are buffered
// per range and merged in address order, so output is deterministic no
// matter how many threads run the pass.
//
// On a healthy ECC machine this backend should never report a mismatch;
// running it for long enough on an unprotected machine is precisely the
// paper's experiment.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "common/thread_pool.hpp"
#include "scanner/backend.hpp"

namespace unp::scanner {

class RealMemoryBackend final : public MemoryBackend {
 public:
  /// Allocates `bytes` (rounded down to whole words).  `threads` sizes the
  /// internal pool; 1 disables parallelism.
  RealMemoryBackend(std::uint64_t bytes, std::size_t threads = 1);

  [[nodiscard]] std::uint64_t word_count() const noexcept override {
    return words_.size();
  }
  void fill(Word value) override;
  void verify_and_write(Word expected, Word next,
                        const MismatchFn& report) override;

  /// Deliberately corrupt a word (fault-injection hook for tests/examples).
  void poke(std::uint64_t word_index, Word value);

  /// Direct read access (tests).
  [[nodiscard]] Word peek(std::uint64_t word_index) const;

 private:
  std::vector<Word> words_;
  std::unique_ptr<ThreadPool> pool_;  ///< null when threads == 1
};

}  // namespace unp::scanner
