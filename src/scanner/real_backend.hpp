// Resident-memory backend: the deployable half of the scanning tool.
//
// Owns a real allocation and implements the fused check-and-flip pass via
// the SIMD kernel layer (scanner/kernels), split across a thread pool in
// contiguous, cache-line-aligned lanes.  Mismatch reports are buffered per
// lane and merged in address order, so output is deterministic no matter
// how many threads run the pass — and byte-identical no matter which ISA
// the dispatcher picked.
//
// The pool can be borrowed from the caller (a campaign driver already owns
// one) or owned for standalone use.  Page retirement is honoured exactly
// like the simulated backend: masked word ranges are unmapped from the scan
// space — neither read, written, nor reported.
//
// On a healthy ECC machine this backend should never report a mismatch;
// running it for long enough on an unprotected machine is precisely the
// paper's experiment.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "common/thread_pool.hpp"
#include "scanner/backend.hpp"
#include "scanner/kernels/kernels.hpp"

namespace unp::scanner {

class RealMemoryBackend final : public MemoryBackend {
 public:
  /// Allocates `bytes` (rounded down to whole words).  `threads` sizes an
  /// internal pool; 1 disables parallelism.
  explicit RealMemoryBackend(std::uint64_t bytes, std::size_t threads = 1);

  /// Same, but splits passes across `pool` (borrowed, not owned; must
  /// outlive the backend).  Lets a caller that already holds a pool share
  /// it instead of paying for a second set of worker threads.
  RealMemoryBackend(std::uint64_t bytes, ThreadPool& pool);

  [[nodiscard]] std::uint64_t word_count() const noexcept override {
    return words_.size();
  }
  void fill(Word value) override;
  void verify_and_write(Word expected, Word next,
                        const MismatchFn& report) override;

  /// Deliberately corrupt a word (fault-injection hook for tests/examples).
  /// Pokes into masked (retired) words are dropped, mirroring the simulated
  /// backend: nothing maps there anymore.
  void poke(std::uint64_t word_index, Word value);

  /// Direct read access (tests).
  [[nodiscard]] Word peek(std::uint64_t word_index) const;

  /// Retire (mask) `count` words starting at `first` — the actuation point
  /// of the policy engine's retire-page action.  Masked words are skipped
  /// by fill and verify_and_write; ranges may overlap and coalesce.
  void mask_words(std::uint64_t first, std::uint64_t count);

  [[nodiscard]] bool is_masked(std::uint64_t word) const noexcept;

  /// Total words currently masked (overlaps counted once).
  [[nodiscard]] std::uint64_t masked_word_count() const noexcept;

  /// Kernel set driving the sweep (the dispatcher's choice by default).
  [[nodiscard]] const kernels::Kernels& kernel_set() const noexcept {
    return *kernels_;
  }

  /// Force a specific kernel set (tests: cross-check ISA paths without
  /// re-execing under a different UNP_KERNEL).
  void set_kernel_set(const kernels::Kernels& k) noexcept { kernels_ = &k; }

  /// True when passes use non-temporal stores (buffer larger than the LLC).
  [[nodiscard]] bool uses_nontemporal_stores() const noexcept {
    return nontemporal_;
  }

 private:
  [[nodiscard]] ThreadPool* pool() const noexcept {
    return borrowed_pool_ != nullptr ? borrowed_pool_ : owned_pool_.get();
  }

  std::vector<Word> words_;
  std::unique_ptr<ThreadPool> owned_pool_;  ///< null when threads == 1
  ThreadPool* borrowed_pool_ = nullptr;     ///< caller-owned alternative
  const kernels::Kernels* kernels_;
  kernels::IntervalSet masked_;
  /// Per-lane mismatch buffers, reused across passes so dirty passes do not
  /// reallocate on the hot path.
  std::vector<std::vector<kernels::Hit>> lane_hits_;
  bool nontemporal_ = false;
};

}  // namespace unp::scanner
