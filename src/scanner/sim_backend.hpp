// Virtual-memory backend with fault injection: the campaign substrate.
//
// Models a (possibly huge) word space without materializing it.  The store
// is assumed to hold whatever was last written except where a deviation is
// registered:
//
//   - inject_transient(): a one-shot upset; the affected cells of the word
//     take their stuck value *once*.  The next write repairs them (this is
//     how a particle strike behaves under the scanner's rewrite loop).
//   - inject_stuck(): a persistent fault; the affected cells override every
//     subsequent write until clear_stuck().
//
// verify_and_write() then visits only the deviated words - O(faults), not
// O(memory) - while remaining observationally identical to a real backend
// of the same size (tested against RealMemoryBackend on small spaces).
#pragma once

#include <cstdint>
#include <map>

#include "dram/cell_model.hpp"
#include "scanner/backend.hpp"
#include "scanner/kernels/interval_set.hpp"

namespace unp::scanner {

class SimulatedMemoryBackend final : public MemoryBackend {
 public:
  explicit SimulatedMemoryBackend(std::uint64_t word_count);

  [[nodiscard]] std::uint64_t word_count() const noexcept override {
    return word_count_;
  }
  void fill(Word value) override;
  void verify_and_write(Word expected, Word next,
                        const MismatchFn& report) override;

  /// One-shot upset of `word`: its stored value becomes
  /// corruption.apply(current stored value).
  void inject_transient(std::uint64_t word, const dram::WordCorruption& corruption);

  /// Persistent fault: `word`'s affected cells override every write.
  void inject_stuck(std::uint64_t word, const dram::WordCorruption& corruption);

  /// Remove a persistent fault (cells heal; stored value stays as-is until
  /// the next write).
  void clear_stuck(std::uint64_t word);

  /// Retire (mask) `count` words starting at `first` — the actuation point
  /// of the policy engine's retire-page action: the scanner unmaps the page
  /// from its scan space, so masked words never report mismatches and later
  /// injections into them are dropped.  Ranges may overlap; they coalesce.
  void mask_words(std::uint64_t first, std::uint64_t count);

  [[nodiscard]] bool is_masked(std::uint64_t word) const noexcept;

  /// Total words currently masked (overlaps counted once).
  [[nodiscard]] std::uint64_t masked_word_count() const noexcept;

  /// Stored value of `word` right now (tests).
  [[nodiscard]] Word load(std::uint64_t word) const;

  [[nodiscard]] std::size_t stuck_fault_count() const noexcept {
    return stuck_.size();
  }

 private:
  std::uint64_t word_count_;
  Word last_written_ = 0;
  /// Words whose stored value deviates from last_written_.
  std::map<std::uint64_t, Word> deviations_;
  /// Persistent cell faults.
  std::map<std::uint64_t, dram::WordCorruption> stuck_;
  /// Retired word ranges (the page-retirement mask), shared with the kernel
  /// layer so both backends honour identical masking semantics.
  kernels::IntervalSet masked_;
};

}  // namespace unp::scanner
