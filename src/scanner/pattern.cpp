#include "scanner/pattern.hpp"

namespace unp::scanner {

const char* to_string(PatternKind kind) noexcept {
  switch (kind) {
    case PatternKind::kAlternating: return "alternating";
    case PatternKind::kCounter: return "counter";
  }
  return "unknown";
}

}  // namespace unp::scanner
