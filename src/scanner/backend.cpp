// Interface-only translation unit (keeps one vtable anchor for the ABI).
#include "scanner/backend.hpp"
