// Runtime CPU dispatch: which kernel set actually runs.
//
// Resolution happens once per process, on first use of active_kernels():
//   1. UNP_KERNEL=scalar|sse2|avx2|neon forces a path (testing / CI); an
//      unrecognised or unsupported request warns on stderr and falls back;
//   2. otherwise the best ISA the CPU reports via cpuid (x86-64) is chosen.
//      SSE2 is part of the x86-64 baseline and Advanced SIMD is
//      architectural on AArch64, so only AVX2 needs a runtime probe.
#include "scanner/kernels/kernel_table.hpp"

#include <cstdio>
#include <cstdlib>

#include "common/require.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace unp::scanner::kernels {

const char* to_string(Isa isa) noexcept {
  switch (isa) {
    case Isa::kScalar: return "scalar";
    case Isa::kSse2: return "sse2";
    case Isa::kAvx2: return "avx2";
    case Isa::kNeon: return "neon";
  }
  return "?";
}

bool is_supported(Isa isa) noexcept {
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kSse2:
#if defined(__x86_64__) || defined(_M_X64)
      return true;  // x86-64 baseline
#else
      return false;
#endif
    case Isa::kAvx2:
#if (defined(__x86_64__) || defined(_M_X64)) && defined(__GNUC__)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case Isa::kNeon:
#if defined(__aarch64__)
      return true;  // Advanced SIMD is architectural on AArch64
#else
      return false;
#endif
  }
  return false;
}

const Kernels& kernels_for(Isa isa) {
  UNP_REQUIRE(is_supported(isa));
  switch (isa) {
    case Isa::kScalar:
      return scalar_kernel_set();
#if defined(__x86_64__) || defined(_M_X64)
    case Isa::kSse2:
      return sse2_kernel_set();
    case Isa::kAvx2:
      return avx2_kernel_set();
#endif
#if defined(__aarch64__)
    case Isa::kNeon:
      return neon_kernel_set();
#endif
    default:
      return scalar_kernel_set();  // unreachable past the UNP_REQUIRE
  }
}

Isa best_supported_isa() noexcept {
  if (is_supported(Isa::kAvx2)) return Isa::kAvx2;
  if (is_supported(Isa::kSse2)) return Isa::kSse2;
  if (is_supported(Isa::kNeon)) return Isa::kNeon;
  return Isa::kScalar;
}

std::vector<Isa> supported_isas() {
  std::vector<Isa> out;
  for (const Isa isa :
       {Isa::kScalar, Isa::kSse2, Isa::kAvx2, Isa::kNeon}) {
    if (is_supported(isa)) out.push_back(isa);
  }
  return out;
}

bool parse_isa(std::string_view name, Isa& out) noexcept {
  if (name == "scalar") { out = Isa::kScalar; return true; }
  if (name == "sse2") { out = Isa::kSse2; return true; }
  if (name == "avx2") { out = Isa::kAvx2; return true; }
  if (name == "neon") { out = Isa::kNeon; return true; }
  return false;
}

Isa resolve_isa(const char* env_value, std::string* warning) {
  const Isa best = best_supported_isa();
  if (env_value == nullptr || *env_value == '\0') return best;
  Isa requested = best;
  if (!parse_isa(env_value, requested)) {
    if (warning != nullptr) {
      *warning = std::string("UNP_KERNEL=") + env_value +
                 " not recognised (scalar|sse2|avx2|neon); using " +
                 to_string(best);
    }
    return best;
  }
  if (!is_supported(requested)) {
    if (warning != nullptr) {
      *warning = std::string("UNP_KERNEL=") + env_value +
                 " not supported on this CPU; using " + to_string(best);
    }
    return best;
  }
  return requested;
}

const Kernels& active_kernels() {
  static const Kernels& active = []() -> const Kernels& {
    std::string warning;
    const Isa isa = resolve_isa(std::getenv("UNP_KERNEL"), &warning);
    if (!warning.empty()) {
      std::fprintf(stderr, "warning: %s\n", warning.c_str());
    }
    return kernels_for(isa);
  }();
  return active;
}

std::size_t nontemporal_threshold_bytes() noexcept {
  static const std::size_t threshold = [] {
    long llc = -1;
#if defined(_SC_LEVEL3_CACHE_SIZE)
    llc = sysconf(_SC_LEVEL3_CACHE_SIZE);
    if (llc <= 0) llc = sysconf(_SC_LEVEL2_CACHE_SIZE);
#endif
    // No OS report: assume a mid-size LLC rather than guessing small —
    // non-temporal stores only pay off once the sweep cannot fit anyway.
    if (llc <= 0) return std::size_t{16} << 20;
    return static_cast<std::size_t>(llc);
  }();
  return threshold;
}

}  // namespace unp::scanner::kernels
