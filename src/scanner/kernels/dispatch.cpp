// Runtime CPU dispatch: which scanner kernel set actually runs.
//
// ISA detection and the UNP_KERNEL override live in the shared dispatch
// home (common/simd_dispatch), so the scanner and the store's column-decode
// kernels latch the same process-wide decision.  This file only maps the
// resolved ISA onto the scanner's kernel table.
#include "scanner/kernels/kernel_table.hpp"

#include "common/require.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace unp::scanner::kernels {

const Kernels& kernels_for(Isa isa) {
  UNP_REQUIRE(is_supported(isa));
  switch (isa) {
    case Isa::kScalar:
      return scalar_kernel_set();
#if defined(__x86_64__) || defined(_M_X64)
    case Isa::kSse2:
      return sse2_kernel_set();
    case Isa::kAvx2:
      return avx2_kernel_set();
#endif
#if defined(__aarch64__)
    case Isa::kNeon:
      return neon_kernel_set();
#endif
    default:
      return scalar_kernel_set();  // unreachable past the UNP_REQUIRE
  }
}

const Kernels& active_kernels() {
  static const Kernels& active = kernels_for(simd::active_isa());
  return active;
}

std::size_t nontemporal_threshold_bytes() noexcept {
  static const std::size_t threshold = [] {
    long llc = -1;
#if defined(_SC_LEVEL3_CACHE_SIZE)
    llc = sysconf(_SC_LEVEL3_CACHE_SIZE);
    if (llc <= 0) llc = sysconf(_SC_LEVEL2_CACHE_SIZE);
#endif
    // No OS report: assume a mid-size LLC rather than guessing small —
    // non-temporal stores only pay off once the sweep cannot fit anyway.
    if (llc <= 0) return std::size_t{16} << 20;
    return static_cast<std::size_t>(llc);
  }();
  return threshold;
}

}  // namespace unp::scanner::kernels
