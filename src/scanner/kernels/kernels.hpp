// SIMD scan kernels for the memory-sweep hot path.
//
// The original tool's duty cycle is one fused operation repeated over 3 GB:
// "check every 32-bit word against the previous write, then store the next
// value".  Its pass rate bounds the detection latency of every fault in the
// study, so this loop should run at memory bandwidth.  This module provides
// that loop (plus the session-start fill) as data-parallel kernels:
//
//   - scalar  : portable unrolled loop; the correctness oracle and the
//               fallback on architectures without a vector path
//   - sse2    : 16-byte vectors (x86-64 baseline, always available there)
//   - avx2    : 32-byte vectors (runtime cpuid check)
//   - neon    : 16-byte vectors (AArch64; Advanced SIMD is architectural)
//
// Dispatch is resolved once at startup: the best ISA the CPU supports, or
// the `UNP_KERNEL=scalar|sse2|avx2|neon` environment override (testing/CI;
// an unsupported request falls back to the best path with a warning).  Every
// kernel handles unaligned head/tail words internally and reports mismatches
// in ascending address order, so scanner output is byte-identical no matter
// which path runs.  For buffers larger than the last-level cache the
// kernels can use non-temporal stores: a sweep touches every line exactly
// once, so there is nothing worth caching.
//
// The masked sweep honours the page-retirement interval map (retired pages
// are unmapped from the scan space: neither read, written, nor reported).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/bitops.hpp"
#include "common/simd_dispatch.hpp"
#include "scanner/kernels/interval_set.hpp"

namespace unp::scanner::kernels {

/// Instruction-set architectures a kernel set can be built for.  Detection
/// and the UNP_KERNEL override live in the shared dispatch home
/// (common/simd_dispatch) so the store's column-decode kernels resolve the
/// same ISA; the aliases below keep this header the scanner-facing API.
using Isa = simd::Isa;

using simd::to_string;

/// One mismatching word: absolute word index and the value actually stored.
struct Hit {
  std::uint64_t index = 0;
  Word actual = 0;

  friend bool operator==(const Hit&, const Hit&) = default;
};

/// Store `value` into data[0, n).  `nontemporal` requests streaming stores
/// (honoured where the ISA has them; a hint, never a semantic change).
using FillFn = void (*)(Word* data, std::size_t n, Word value,
                        bool nontemporal);

/// The fused sweep: for i in [0, n) ascending, append {base_index + i,
/// data[i]} to `out` when data[i] != expected, then store `next` to data[i].
using VerifyFn = void (*)(Word* data, std::size_t n, std::uint64_t base_index,
                          Word expected, Word next, bool nontemporal,
                          std::vector<Hit>& out);

/// One ISA's kernel set.  All sets are observationally identical; only the
/// throughput differs.
struct Kernels {
  Isa isa = Isa::kScalar;
  const char* name = "scalar";
  FillFn fill = nullptr;
  VerifyFn verify_and_write = nullptr;
};

using simd::best_supported_isa;
using simd::is_supported;
using simd::parse_isa;
using simd::resolve_isa;
using simd::supported_isas;

/// Kernel set for `isa`; requires is_supported(isa).
[[nodiscard]] const Kernels& kernels_for(Isa isa);

/// The process-wide kernel set: resolved once from cpuid/HWCAP and the
/// UNP_KERNEL override on first use (a fallback warning goes to stderr).
[[nodiscard]] const Kernels& active_kernels();

/// Buffers larger than this benefit from non-temporal stores: a sweep
/// touches every line exactly once, so caching the buffer only evicts
/// everything else.  Derived from the last-level cache size when the OS
/// reports it, with a conservative default otherwise.
[[nodiscard]] std::size_t nontemporal_threshold_bytes() noexcept;

/// Masked sweep: verify_and_write over the absolute word range
/// [base_index, base_index + n) minus the `masked` intervals (absolute word
/// indices).  Masked words are unmapped: neither read, written, nor
/// reported.  `data` points at the word with absolute index `base_index`.
void masked_verify_and_write(const Kernels& k, Word* data, std::size_t n,
                             std::uint64_t base_index, Word expected,
                             Word next, bool nontemporal,
                             const IntervalSet& masked, std::vector<Hit>& out);

/// Masked fill: `fill` over the same gap decomposition.
void masked_fill(const Kernels& k, Word* data, std::size_t n,
                 std::uint64_t base_index, Word value, bool nontemporal,
                 const IntervalSet& masked);

}  // namespace unp::scanner::kernels
