// SSE2 kernels: 16-byte vectors, part of the x86-64 baseline so always
// available there.  The hot loop loads a cache line (four vectors), folds
// the four compare masks into one, and only on a mismatch — never on the
// healthy path — spills the loaded registers to re-check lane by lane.
// Mismatch reports therefore stay in ascending address order and carry the
// pre-overwrite values, exactly like the scalar oracle.
#include "scanner/kernels/kernel_table.hpp"

#if defined(__x86_64__) || defined(_M_X64)

#include <emmintrin.h>

#include <cstdint>

namespace unp::scanner::kernels {

namespace {

constexpr std::size_t kLaneWords = 4;   // words per __m128i
constexpr std::size_t kBlockWords = 16; // one cache line per loop iteration

[[nodiscard]] bool aligned16(const Word* p) noexcept {
  return (reinterpret_cast<std::uintptr_t>(p) & 15u) == 0;
}

void fill_sse2(Word* data, std::size_t n, Word value, bool nontemporal) {
  std::size_t i = 0;
  while (i < n && !aligned16(data + i)) data[i++] = value;
  const __m128i v = _mm_set1_epi32(static_cast<int>(value));
  if (nontemporal) {
    for (; i + kBlockWords <= n; i += kBlockWords) {
      auto* p = reinterpret_cast<__m128i*>(data + i);
      _mm_stream_si128(p + 0, v);
      _mm_stream_si128(p + 1, v);
      _mm_stream_si128(p + 2, v);
      _mm_stream_si128(p + 3, v);
    }
    _mm_sfence();
  } else {
    for (; i + kBlockWords <= n; i += kBlockWords) {
      auto* p = reinterpret_cast<__m128i*>(data + i);
      _mm_store_si128(p + 0, v);
      _mm_store_si128(p + 1, v);
      _mm_store_si128(p + 2, v);
      _mm_store_si128(p + 3, v);
    }
  }
  for (; i < n; ++i) data[i] = value;
}

void verify_sse2(Word* data, std::size_t n, std::uint64_t base_index,
                 Word expected, Word next, bool nontemporal,
                 std::vector<Hit>& out) {
  std::size_t i = 0;
  // Unaligned head: scalar words up to the first 16-byte boundary.
  while (i < n && !aligned16(data + i)) {
    const Word a = data[i];
    if (a != expected) out.push_back({base_index + i, a});
    data[i] = next;
    ++i;
  }
  const __m128i vexp = _mm_set1_epi32(static_cast<int>(expected));
  const __m128i vnext = _mm_set1_epi32(static_cast<int>(next));
  for (; i + kBlockWords <= n; i += kBlockWords) {
    auto* p = reinterpret_cast<__m128i*>(data + i);
    const __m128i v0 = _mm_load_si128(p + 0);
    const __m128i v1 = _mm_load_si128(p + 1);
    const __m128i v2 = _mm_load_si128(p + 2);
    const __m128i v3 = _mm_load_si128(p + 3);
    const __m128i eq =
        _mm_and_si128(_mm_and_si128(_mm_cmpeq_epi32(v0, vexp),
                                    _mm_cmpeq_epi32(v1, vexp)),
                      _mm_and_si128(_mm_cmpeq_epi32(v2, vexp),
                                    _mm_cmpeq_epi32(v3, vexp)));
    if (_mm_movemask_epi8(eq) != 0xFFFF) {
      alignas(16) Word lanes[kBlockWords];
      _mm_store_si128(reinterpret_cast<__m128i*>(lanes + 0 * kLaneWords), v0);
      _mm_store_si128(reinterpret_cast<__m128i*>(lanes + 1 * kLaneWords), v1);
      _mm_store_si128(reinterpret_cast<__m128i*>(lanes + 2 * kLaneWords), v2);
      _mm_store_si128(reinterpret_cast<__m128i*>(lanes + 3 * kLaneWords), v3);
      for (std::size_t j = 0; j < kBlockWords; ++j) {
        if (lanes[j] != expected) out.push_back({base_index + i + j, lanes[j]});
      }
    }
    if (nontemporal) {
      _mm_stream_si128(p + 0, vnext);
      _mm_stream_si128(p + 1, vnext);
      _mm_stream_si128(p + 2, vnext);
      _mm_stream_si128(p + 3, vnext);
    } else {
      _mm_store_si128(p + 0, vnext);
      _mm_store_si128(p + 1, vnext);
      _mm_store_si128(p + 2, vnext);
      _mm_store_si128(p + 3, vnext);
    }
  }
  if (nontemporal) _mm_sfence();
  // Tail: fewer than 16 words left.
  for (; i < n; ++i) {
    const Word a = data[i];
    if (a != expected) out.push_back({base_index + i, a});
    data[i] = next;
  }
}

}  // namespace

const Kernels& sse2_kernel_set() noexcept {
  static const Kernels k{Isa::kSse2, "sse2", &fill_sse2, &verify_sse2};
  return k;
}

}  // namespace unp::scanner::kernels

#endif  // x86-64
