// Sorted, coalesced set of half-open word-index intervals.
//
// This is the page-retirement mask: the policy engine's retire-page action
// unmaps ranges of the scan space, and both memory backends must skip them
// during every sweep.  Ranges coalesce on insert, so lookups and the gap
// walk the masked-sweep kernel does are O(log R) / O(R) in the number of
// *disjoint* retired ranges, never in words.
#pragma once

#include <cstdint>
#include <map>

namespace unp::scanner::kernels {

class IntervalSet {
 public:
  /// Add [first, first + count); overlapping or adjacent ranges coalesce.
  void insert(std::uint64_t first, std::uint64_t count);

  /// True when `x` lies inside some interval.
  [[nodiscard]] bool contains(std::uint64_t x) const noexcept;

  /// Total covered width (overlaps counted once by construction).
  [[nodiscard]] std::uint64_t total() const noexcept;

  [[nodiscard]] bool empty() const noexcept { return ranges_.empty(); }

  void clear() noexcept { ranges_.clear(); }

  /// The disjoint intervals, start -> one-past-end, ascending.
  [[nodiscard]] const std::map<std::uint64_t, std::uint64_t>& ranges()
      const noexcept {
    return ranges_;
  }

  /// Invoke fn(gap_begin, gap_end) for every maximal sub-range of
  /// [begin, end) not covered by any interval, in ascending order.
  template <typename Fn>
  void for_each_gap(std::uint64_t begin, std::uint64_t end, Fn&& fn) const {
    std::uint64_t cursor = begin;
    // First interval that could overlap [begin, end): the one before
    // upper_bound(begin) may still cover begin.
    auto it = ranges_.upper_bound(begin);
    if (it != ranges_.begin()) {
      auto prev = std::prev(it);
      if (prev->second > begin) cursor = prev->second;
    }
    for (; it != ranges_.end() && it->first < end && cursor < end; ++it) {
      if (it->first > cursor) fn(cursor, it->first);
      if (it->second > cursor) cursor = it->second;
    }
    if (cursor < end) fn(cursor, end);
  }

 private:
  std::map<std::uint64_t, std::uint64_t> ranges_;
};

}  // namespace unp::scanner::kernels
