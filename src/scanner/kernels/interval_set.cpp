#include "scanner/kernels/interval_set.hpp"

#include <algorithm>

namespace unp::scanner::kernels {

void IntervalSet::insert(std::uint64_t first, std::uint64_t count) {
  if (count == 0) return;
  std::uint64_t start = first;
  std::uint64_t end = first + count;
  // Coalesce with any overlapping or adjacent ranges.
  auto it = ranges_.upper_bound(start);
  if (it != ranges_.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= start) {
      start = prev->first;
      end = std::max(end, prev->second);
      it = prev;
    }
  }
  while (it != ranges_.end() && it->first <= end) {
    end = std::max(end, it->second);
    it = ranges_.erase(it);
  }
  ranges_[start] = end;
}

bool IntervalSet::contains(std::uint64_t x) const noexcept {
  auto it = ranges_.upper_bound(x);
  if (it == ranges_.begin()) return false;
  return std::prev(it)->second > x;
}

std::uint64_t IntervalSet::total() const noexcept {
  std::uint64_t sum = 0;
  for (const auto& [start, end] : ranges_) sum += end - start;
  return sum;
}

}  // namespace unp::scanner::kernels
