// AVX2 kernels: 32-byte vectors, selected at runtime via cpuid.  This
// translation unit alone is compiled with -mavx2 (see scanner/CMakeLists),
// so nothing outside it may call these functions without the dispatcher's
// is_supported() check.  Structure mirrors the SSE2 path: one cache line
// (two vectors) per iteration, register spill only on the rare mismatch.
#include "scanner/kernels/kernel_table.hpp"

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include <cstdint>

namespace unp::scanner::kernels {

namespace {

constexpr std::size_t kLaneWords = 8;   // words per __m256i
constexpr std::size_t kBlockWords = 16; // one cache line per loop iteration

[[nodiscard]] bool aligned32(const Word* p) noexcept {
  return (reinterpret_cast<std::uintptr_t>(p) & 31u) == 0;
}

void fill_avx2(Word* data, std::size_t n, Word value, bool nontemporal) {
  std::size_t i = 0;
  while (i < n && !aligned32(data + i)) data[i++] = value;
  const __m256i v = _mm256_set1_epi32(static_cast<int>(value));
  if (nontemporal) {
    for (; i + kBlockWords <= n; i += kBlockWords) {
      auto* p = reinterpret_cast<__m256i*>(data + i);
      _mm256_stream_si256(p + 0, v);
      _mm256_stream_si256(p + 1, v);
    }
    _mm_sfence();
  } else {
    for (; i + kBlockWords <= n; i += kBlockWords) {
      auto* p = reinterpret_cast<__m256i*>(data + i);
      _mm256_store_si256(p + 0, v);
      _mm256_store_si256(p + 1, v);
    }
  }
  for (; i < n; ++i) data[i] = value;
}

void verify_avx2(Word* data, std::size_t n, std::uint64_t base_index,
                 Word expected, Word next, bool nontemporal,
                 std::vector<Hit>& out) {
  std::size_t i = 0;
  // Unaligned head: scalar words up to the first 32-byte boundary.
  while (i < n && !aligned32(data + i)) {
    const Word a = data[i];
    if (a != expected) out.push_back({base_index + i, a});
    data[i] = next;
    ++i;
  }
  const __m256i vexp = _mm256_set1_epi32(static_cast<int>(expected));
  const __m256i vnext = _mm256_set1_epi32(static_cast<int>(next));
  for (; i + kBlockWords <= n; i += kBlockWords) {
    auto* p = reinterpret_cast<__m256i*>(data + i);
    const __m256i v0 = _mm256_load_si256(p + 0);
    const __m256i v1 = _mm256_load_si256(p + 1);
    const __m256i eq = _mm256_and_si256(_mm256_cmpeq_epi32(v0, vexp),
                                        _mm256_cmpeq_epi32(v1, vexp));
    if (_mm256_movemask_epi8(eq) != -1) {
      alignas(32) Word lanes[kBlockWords];
      _mm256_store_si256(reinterpret_cast<__m256i*>(lanes + 0 * kLaneWords),
                         v0);
      _mm256_store_si256(reinterpret_cast<__m256i*>(lanes + 1 * kLaneWords),
                         v1);
      for (std::size_t j = 0; j < kBlockWords; ++j) {
        if (lanes[j] != expected) out.push_back({base_index + i + j, lanes[j]});
      }
    }
    if (nontemporal) {
      _mm256_stream_si256(p + 0, vnext);
      _mm256_stream_si256(p + 1, vnext);
    } else {
      _mm256_store_si256(p + 0, vnext);
      _mm256_store_si256(p + 1, vnext);
    }
  }
  if (nontemporal) _mm_sfence();
  // Tail: fewer than 16 words left.
  for (; i < n; ++i) {
    const Word a = data[i];
    if (a != expected) out.push_back({base_index + i, a});
    data[i] = next;
  }
}

}  // namespace

const Kernels& avx2_kernel_set() noexcept {
  static const Kernels k{Isa::kAvx2, "avx2", &fill_avx2, &verify_avx2};
  return k;
}

}  // namespace unp::scanner::kernels

#endif  // x86-64
