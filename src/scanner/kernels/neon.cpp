// NEON kernels: 16-byte vectors.  Advanced SIMD is architectural on
// AArch64, so runtime support is unconditional there.  AArch64 has no
// non-temporal word store exposed through NEON intrinsics (STNP is a pair
// store the compiler may or may not emit), so the nontemporal hint is
// accepted and ignored — the contract allows that.
#include "scanner/kernels/kernel_table.hpp"

#if defined(__aarch64__)

#include <arm_neon.h>

#include <cstdint>

namespace unp::scanner::kernels {

namespace {

constexpr std::size_t kLaneWords = 4;   // words per uint32x4_t
constexpr std::size_t kBlockWords = 16; // one cache line per loop iteration

void fill_neon(Word* data, std::size_t n, Word value, bool /*nontemporal*/) {
  std::size_t i = 0;
  const uint32x4_t v = vdupq_n_u32(value);
  for (; i + kBlockWords <= n; i += kBlockWords) {
    vst1q_u32(data + i + 0 * kLaneWords, v);
    vst1q_u32(data + i + 1 * kLaneWords, v);
    vst1q_u32(data + i + 2 * kLaneWords, v);
    vst1q_u32(data + i + 3 * kLaneWords, v);
  }
  for (; i < n; ++i) data[i] = value;
}

void verify_neon(Word* data, std::size_t n, std::uint64_t base_index,
                 Word expected, Word next, bool /*nontemporal*/,
                 std::vector<Hit>& out) {
  std::size_t i = 0;
  const uint32x4_t vexp = vdupq_n_u32(expected);
  const uint32x4_t vnext = vdupq_n_u32(next);
  for (; i + kBlockWords <= n; i += kBlockWords) {
    const uint32x4_t v0 = vld1q_u32(data + i + 0 * kLaneWords);
    const uint32x4_t v1 = vld1q_u32(data + i + 1 * kLaneWords);
    const uint32x4_t v2 = vld1q_u32(data + i + 2 * kLaneWords);
    const uint32x4_t v3 = vld1q_u32(data + i + 3 * kLaneWords);
    const uint32x4_t eq = vandq_u32(vandq_u32(vceqq_u32(v0, vexp),
                                              vceqq_u32(v1, vexp)),
                                    vandq_u32(vceqq_u32(v2, vexp),
                                              vceqq_u32(v3, vexp)));
    // All lanes equal <=> the lane-wise minimum of the mask is all-ones.
    if (vminvq_u32(eq) != 0xFFFFFFFFu) {
      Word lanes[kBlockWords];
      vst1q_u32(lanes + 0 * kLaneWords, v0);
      vst1q_u32(lanes + 1 * kLaneWords, v1);
      vst1q_u32(lanes + 2 * kLaneWords, v2);
      vst1q_u32(lanes + 3 * kLaneWords, v3);
      for (std::size_t j = 0; j < kBlockWords; ++j) {
        if (lanes[j] != expected) out.push_back({base_index + i + j, lanes[j]});
      }
    }
    vst1q_u32(data + i + 0 * kLaneWords, vnext);
    vst1q_u32(data + i + 1 * kLaneWords, vnext);
    vst1q_u32(data + i + 2 * kLaneWords, vnext);
    vst1q_u32(data + i + 3 * kLaneWords, vnext);
  }
  // Tail: fewer than 16 words left.
  for (; i < n; ++i) {
    const Word a = data[i];
    if (a != expected) out.push_back({base_index + i, a});
    data[i] = next;
  }
}

}  // namespace

const Kernels& neon_kernel_set() noexcept {
  static const Kernels k{Isa::kNeon, "neon", &fill_neon, &verify_neon};
  return k;
}

}  // namespace unp::scanner::kernels

#endif  // __aarch64__
