// Internal: the per-ISA kernel set objects.  Each ISA translation unit
// defines its set behind an architecture guard; the dispatcher links only
// the ones the target architecture can express (runtime support is still a
// separate cpuid/HWCAP question answered by is_supported()).
#pragma once

#include "scanner/kernels/kernels.hpp"

namespace unp::scanner::kernels {

// Accessor functions (not extern const objects): cross-TU data references
// from a static archive need text relocations under a PIE link, calls don't.
[[nodiscard]] const Kernels& scalar_kernel_set() noexcept;

#if defined(__x86_64__) || defined(_M_X64)
[[nodiscard]] const Kernels& sse2_kernel_set() noexcept;
[[nodiscard]] const Kernels& avx2_kernel_set() noexcept;
#endif

#if defined(__aarch64__)
[[nodiscard]] const Kernels& neon_kernel_set() noexcept;
#endif

}  // namespace unp::scanner::kernels
