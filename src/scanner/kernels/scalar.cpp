// Portable scalar kernels: the correctness oracle every vector path is
// cross-checked against, and the fallback on architectures without one.
//
// The sweep is deliberately the plain one-word-at-a-time loop of the
// original tool (unrolled by four so address arithmetic amortises); the
// mismatch branch carries a container side effect, which also keeps the
// autovectorizer honest — this path is the baseline the perf gate measures
// the dispatched kernel against.
#include "scanner/kernels/kernels.hpp"

#include <algorithm>

namespace unp::scanner::kernels {

namespace {

void fill_scalar(Word* data, std::size_t n, Word value, bool /*nontemporal*/) {
  std::fill(data, data + n, value);
}

void verify_scalar(Word* data, std::size_t n, std::uint64_t base_index,
                   Word expected, Word next, bool /*nontemporal*/,
                   std::vector<Hit>& out) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const Word a0 = data[i + 0];
    const Word a1 = data[i + 1];
    const Word a2 = data[i + 2];
    const Word a3 = data[i + 3];
    if (a0 != expected) out.push_back({base_index + i + 0, a0});
    if (a1 != expected) out.push_back({base_index + i + 1, a1});
    if (a2 != expected) out.push_back({base_index + i + 2, a2});
    if (a3 != expected) out.push_back({base_index + i + 3, a3});
    data[i + 0] = next;
    data[i + 1] = next;
    data[i + 2] = next;
    data[i + 3] = next;
  }
  for (; i < n; ++i) {
    const Word a = data[i];
    if (a != expected) out.push_back({base_index + i, a});
    data[i] = next;
  }
}

}  // namespace

const Kernels& scalar_kernel_set() noexcept {
  static const Kernels k{Isa::kScalar, "scalar", &fill_scalar,
                         &verify_scalar};
  return k;
}

}  // namespace unp::scanner::kernels
