// Generic drivers built on top of a kernel set: the masked sweep and the
// masked fill.  Retired (masked) words are unmapped from the scan space —
// the drivers decompose the range into unmasked gaps and hand each gap to
// the ISA kernel, so masked words are neither read, written, nor reported,
// and the per-gap ascending reports concatenate into one ascending stream.
#include "scanner/kernels/kernels.hpp"

namespace unp::scanner::kernels {

void masked_verify_and_write(const Kernels& k, Word* data, std::size_t n,
                             std::uint64_t base_index, Word expected,
                             Word next, bool nontemporal,
                             const IntervalSet& masked,
                             std::vector<Hit>& out) {
  masked.for_each_gap(
      base_index, base_index + n,
      [&](std::uint64_t gap_begin, std::uint64_t gap_end) {
        k.verify_and_write(data + (gap_begin - base_index),
                           static_cast<std::size_t>(gap_end - gap_begin),
                           gap_begin, expected, next, nontemporal, out);
      });
}

void masked_fill(const Kernels& k, Word* data, std::size_t n,
                 std::uint64_t base_index, Word value, bool nontemporal,
                 const IntervalSet& masked) {
  masked.for_each_gap(base_index, base_index + n,
                      [&](std::uint64_t gap_begin, std::uint64_t gap_end) {
                        k.fill(data + (gap_begin - base_index),
                               static_cast<std::size_t>(gap_end - gap_begin),
                               value, nontemporal);
                      });
}

}  // namespace unp::scanner::kernels
