// StoreHandle: one parsed, immutable, shareable UNPF store.
//
// The redesigned open path splits "own the bytes and parse the metadata"
// (this class) from "plan and execute scans" (StoreReader).  A handle is
// created once — mmap the file(s), validate headers, decode the zone
// directory — and then shared by any number of readers and server worker
// threads via shared_ptr<const StoreHandle>.  Everything reachable from a
// handle is deeply immutable after construction, so concurrent scans need
// no locks: segment decode reads disjoint slices of the shared mapping.
//
// StoreReader keeps its familiar API as a thin view over a handle; every
// construction path goes through a handle (the old bytes-owning reader
// constructor is gone — use StoreHandle::from_bytes).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "store/format.hpp"
#include "store/mapped_file.hpp"

namespace unp::store {

class StoreHandle {
 public:
  /// Map and parse the store file at `path`.  Throws DecodeError naming the
  /// path on I/O failure and with byte-offset context on corrupt content.
  [[nodiscard]] static std::shared_ptr<const StoreHandle> open(
      const std::string& path);

  /// Open the part files of write_partitioned_store as one logical store.
  /// Parts must agree on fingerprint, window, and row-shape metadata; their
  /// zone directories concatenate in path order (= canonical row order), so
  /// every query result is byte-identical to the single-file store.  A
  /// one-element vector is exactly open().
  [[nodiscard]] static std::shared_ptr<const StoreHandle> open_partitioned(
      const std::vector<std::string>& paths);

  /// Parse an in-memory store image (takes ownership of the bytes).
  [[nodiscard]] static std::shared_ptr<const StoreHandle> from_bytes(
      std::string bytes);

  // --- campaign metadata --------------------------------------------------
  [[nodiscard]] const CampaignWindow& window() const noexcept {
    return window_;
  }
  [[nodiscard]] std::uint64_t fingerprint() const noexcept {
    return fingerprint_;
  }
  [[nodiscard]] const StoredScanProfile& scan_profile() const noexcept {
    return scan_profile_;
  }
  [[nodiscard]] const StoredExtractionMeta& extraction_meta() const noexcept {
    return extraction_meta_;
  }
  [[nodiscard]] const std::vector<SegmentZone>& zones() const noexcept {
    return zones_;
  }
  [[nodiscard]] std::uint64_t rows_total() const noexcept {
    return rows_total_;
  }
  [[nodiscard]] std::size_t part_count() const noexcept {
    return parts_.size();
  }
  /// Paths of the backing files (empty for from_bytes stores).
  [[nodiscard]] std::vector<std::string> part_paths() const;

  // --- scan support -------------------------------------------------------

  /// Where one segment's body lives: the owning part's whole byte image and
  /// the body's position inside it (DecodeError offsets are relative to the
  /// part file, matching the directory parser's).
  struct SegmentLocation {
    std::string_view bytes;
    std::size_t pos = 0;
  };
  [[nodiscard]] SegmentLocation segment_location(
      std::size_t zone_index) const noexcept;

 private:
  StoreHandle() = default;

  /// One parsed part; zone offsets are relative to its data section.  The
  /// view aliases either the mapping or the owned string.
  struct Part {
    MappedFile file;
    std::string owned;
    std::string_view bytes;
    std::size_t data_offset = 0;
  };

  /// Parse `part.bytes` as a complete UNPF file and append it: metadata is
  /// adopted from the first part and checked for agreement on later ones.
  void add_part(Part part);

  std::vector<Part> parts_;
  CampaignWindow window_;
  std::uint64_t fingerprint_ = 0;
  StoredScanProfile scan_profile_;
  StoredExtractionMeta extraction_meta_;
  std::vector<SegmentZone> zones_;      ///< concatenated in part order
  std::vector<std::size_t> zone_part_;  ///< owning part per zone
  std::uint64_t rows_total_ = 0;
};

}  // namespace unp::store
