// Query model for the UNPF columnar store: a conjunction of range/equality
// predicates over the filterable fault columns plus a column projection.
//
// The same Query object drives three layers:
//
//   1. *planning*   — required_columns() computes the minimal column set a
//                     scan must decode (projection + whatever the predicates
//                     read, preferring the 2-bit class column over the full
//                     pattern pair when the bit-count range happens to align
//                     with class boundaries);
//   2. *pruning*    — may_match() tests a SegmentZone's min/max intervals, so
//                     non-overlapping segments are skipped without decoding
//                     a single row (predicate pushdown);
//   3. *filtering*  — matches() is the exact per-row predicate applied to
//                     decoded columns.
//
// Pruning is conservative by construction: may_match() returning false
// implies no row of the segment can satisfy matches(), so pruned and
// unpruned scans always return identical row sets.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "store/format.hpp"

namespace unp::store {

/// Smallest flipped-bit count inside a class.  For a class-aligned query
/// (class_range() engaged), evaluating the bit-count predicate on this
/// representative is exactly equivalent to evaluating it on the true count,
/// so scans can run off the 2-bit class column alone.
[[nodiscard]] constexpr int representative_bits(FaultClass c) noexcept {
  switch (c) {
    case FaultClass::kSingleBit: return 1;
    case FaultClass::kDoubleBit: return 2;
    case FaultClass::kFewBit: return 3;
    case FaultClass::kManyBit: return 9;
  }
  return 1;
}

struct Query {
  /// Half-open time range [since, until) over first_seen (epoch seconds).
  std::optional<TimePoint> since;
  std::optional<TimePoint> until;

  /// Location selector: blade only, SoC only, or both (one exact node).
  std::optional<int> blade;  ///< 0..kStudyBlades-1
  std::optional<int> soc;    ///< 0..kSocsPerBlade-1

  /// Inclusive flipped-bit-count range (1..32 spans every fault).
  int min_bits = 1;
  int max_bits = 32;

  /// Columns the caller wants materialized in the scan result.
  std::uint32_t projection = kAllColumns;

  /// Columns a scan must decode: the projection plus predicate inputs.
  [[nodiscard]] std::uint32_t required_columns() const;

  /// True when the bit-count range carries no constraint (1..32).
  [[nodiscard]] bool bits_unconstrained() const noexcept {
    return min_bits <= 1 && max_bits >= 32;
  }

  /// When the bit-count range coincides with FaultClass boundaries, the
  /// [lo, hi] class pair answering it; nullopt otherwise.
  [[nodiscard]] std::optional<std::pair<FaultClass, FaultClass>> class_range()
      const noexcept;

  /// Segment-level pruning test against a zone map entry.
  [[nodiscard]] bool may_match(const SegmentZone& zone) const noexcept;

  /// Exact row-level predicate (dense node index, first_seen, bit count).
  [[nodiscard]] bool matches(std::uint32_t node_index, TimePoint first_seen,
                             int flipped_bits) const noexcept;

  /// Human-readable predicate summary ("first_seen in [a, b) and blade 12"),
  /// used by unp_query's --stats footer.
  [[nodiscard]] std::string describe() const;
};

}  // namespace unp::store
