// StoreBuilder: the write side of the UNPF columnar store.
//
// It is an analysis::FaultSink, so it plugs into the exact spot every figure
// analyzer occupies: downstream of StreamingExtractor, consuming faults in
// canonical (time, node, address) order.  Faults buffer per segment and
// encode the moment a segment fills, so building a store streams in bounded
// memory regardless of campaign size.
//
// Campaign-level metadata (scan profile, extraction accounting, cache
// fingerprint) is attached via setters before encode()/write(); the scan
// profile carries everything the scan-side figures (Figs 1/2/9, headline)
// need, so a store-backed report never touches the raw record stream.
//
// write() is atomic: the encoded file lands in a same-directory temp file
// first and is renamed over the target, so readers never observe a torn
// store.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/extraction.hpp"
#include "analysis/fault_sink.hpp"
#include "analysis/metrics.hpp"
#include "store/format.hpp"

namespace unp::store {

/// Convert the scan-side streaming product into its stored form.
[[nodiscard]] StoredScanProfile scan_profile_from(
    const analysis::ScanProfileSink& scan);

/// Extraction accounting worth persisting next to the fault columns.
[[nodiscard]] StoredExtractionMeta extraction_meta_from(
    const analysis::ExtractionResult& extraction);

class StoreBuilder final : public analysis::FaultSink {
 public:
  struct Config {
    std::size_t segment_rows = kDefaultSegmentRows;
  };

  StoreBuilder() : StoreBuilder(Config{}) {}
  explicit StoreBuilder(const Config& config);

  // FaultSink: faults must arrive in canonical order (the extractor's).
  void begin_faults(const analysis::FaultStreamContext& ctx) override;
  void on_fault(const analysis::FaultRecord& fault) override;
  void end_faults() override;

  /// Campaign-cache fingerprint recording which simulated campaign the
  /// store was distilled from (0 = unknown/live source).
  void set_fingerprint(std::uint64_t fingerprint) noexcept {
    fingerprint_ = fingerprint;
  }
  void set_scan_profile(StoredScanProfile profile);
  void set_extraction_meta(StoredExtractionMeta meta);
  void set_window(const CampaignWindow& window) noexcept { window_ = window; }

  /// Encode kernel set used for segment columns (byte-identical output for
  /// every set; default is the process-wide active set).  The perf gate uses
  /// this to compare scalar vs vector store builds in one process.
  void set_encode_kernels(const telemetry::kernels::EncodeKernels& encode) noexcept {
    encode_ = &encode;
  }

  [[nodiscard]] std::uint64_t rows_written() const noexcept { return rows_; }
  [[nodiscard]] std::size_t segments_written() const noexcept {
    return zones_.size();
  }

  /// Serialize the complete store file (header, metadata, directory, data).
  /// Requires a finished fault stream (end_faults has run or no fault was
  /// ever offered).
  [[nodiscard]] std::string encode() const;

  /// encode() to `path` atomically (same-directory temp file + rename).
  /// Throws ContractViolation on I/O failure.
  void write(const std::string& path) const;

 private:
  void flush_segment();

  Config config_;
  CampaignWindow window_;
  std::uint64_t fingerprint_ = 0;
  StoredScanProfile scan_profile_;
  StoredExtractionMeta extraction_meta_;
  std::vector<analysis::FaultRecord> pending_;  ///< rows of the open segment
  std::vector<SegmentZone> zones_;
  std::string data_;  ///< concatenated encoded segment bodies
  SegmentEncodeArena arena_;  ///< reused across flushed segments
  const telemetry::kernels::EncodeKernels* encode_ = nullptr;
  std::uint64_t rows_ = 0;
  bool stream_open_ = false;
};

/// One-call convenience: build a store from a finished extraction plus the
/// scan profile and write it to `path`.
void write_store(const std::string& path,
                 const analysis::ExtractionResult& extraction,
                 const analysis::ScanProfileSink& scan,
                 std::uint64_t fingerprint = 0,
                 const StoreBuilder::Config& config = {});

/// Partitioned write: stripe the faults into part_paths.size() contiguous
/// canonical row ranges (ceil division, so every part but possibly the last
/// holds the same row count) and write each range as a self-describing UNPF
/// part file with the full campaign metadata replicated.  Striping by
/// canonical range — not by node ownership — keeps each part's zone
/// directory in canonical order, so StoreReader::open_partitioned can
/// concatenate directories in path order and preserve the reader invariant
/// "directory order = canonical order".
void write_partitioned_store(const std::vector<std::string>& part_paths,
                             const analysis::ExtractionResult& extraction,
                             const analysis::ScanProfileSink& scan,
                             std::uint64_t fingerprint = 0,
                             const StoreBuilder::Config& config = {});

}  // namespace unp::store
