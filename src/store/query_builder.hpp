// QueryBuilder: validating, fluent construction of store Queries.
//
// unp_query's flag parser and unp_serve's request parser accept the same
// predicate vocabulary; before this builder each front end hand-rolled its
// own bounds checks, and a new front end could silently drift (accept a
// blade the store can't hold, or run a partial scan off a half-parsed
// request).  The builder is the single owner of that validation: every
// setter checks its field eagerly and throws QueryError naming the field,
// so an invalid request fails closed — callers never see a Query object,
// and therefore can never start a scan from rejected input.
//
// Two entry styles, freely mixed:
//   - typed:   builder.blade(12).fault_class("single").build()
//   - stringly: builder.set("blade", "12") — the shape CLI flags and server
//     request lines arrive in; numeric fields parse strictly (whole token,
//     base 10) and re-use the typed path's range checks.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/require.hpp"
#include "store/query.hpp"

namespace unp::store {

/// Rejected query input.  `field()` names the offending field ("blade",
/// "min-bits", ...); what() is a full sentence ready for a CLI error line
/// or a server ERR payload.
class QueryError : public ContractViolation {
 public:
  QueryError(std::string field, const std::string& message)
      : ContractViolation(field + ": " + message), field_(std::move(field)) {}

  [[nodiscard]] const std::string& field() const noexcept { return field_; }

 private:
  std::string field_;
};

class QueryBuilder {
 public:
  QueryBuilder() = default;

  // --- typed setters (validate eagerly, throw QueryError) -----------------
  QueryBuilder& since(TimePoint t);
  QueryBuilder& until(TimePoint t);
  /// "BB-SS" node name; sets both blade and soc.
  QueryBuilder& node(std::string_view name);
  QueryBuilder& blade(int b);
  QueryBuilder& soc(int s);
  /// single | double | few | many | multi (sets min/max bits).
  QueryBuilder& fault_class(std::string_view name);
  QueryBuilder& min_bits(int n);
  QueryBuilder& max_bits(int n);
  QueryBuilder& projection(std::uint32_t columns);

  /// String-facing setter: `field` is the flag/request key without dashes
  /// prefix ("since", "until", "node", "blade", "soc", "class", "min-bits",
  /// "max-bits").  Numeric values must parse completely.  Throws QueryError
  /// for unknown fields and invalid values alike.
  QueryBuilder& set(std::string_view field, std::string_view value);

  /// Final cross-field validation (min-bits <= max-bits); returns the
  /// validated Query.  Throws QueryError, never returns a partial query.
  [[nodiscard]] Query build() const;

 private:
  Query query_;
};

}  // namespace unp::store
