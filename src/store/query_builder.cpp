#include "store/query_builder.hpp"

#include <charconv>

#include "cluster/topology.hpp"

namespace unp::store {

namespace {

[[noreturn]] void fail(const char* field, const std::string& message) {
  throw QueryError(field, message);
}

long parse_long(const char* field, std::string_view value) {
  long out = 0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), out);
  if (ec != std::errc{} || ptr != value.data() + value.size())
    fail(field, "expects an integer, got '" + std::string(value) + "'");
  return out;
}

int parse_int_in(const char* field, std::string_view value, int lo, int hi) {
  const long n = parse_long(field, value);
  if (n < lo || n > hi)
    fail(field, "must be in [" + std::to_string(lo) + ", " +
                    std::to_string(hi) + "], got '" + std::string(value) + "'");
  return static_cast<int>(n);
}

}  // namespace

QueryBuilder& QueryBuilder::since(TimePoint t) {
  query_.since = t;
  return *this;
}

QueryBuilder& QueryBuilder::until(TimePoint t) {
  query_.until = t;
  return *this;
}

QueryBuilder& QueryBuilder::node(std::string_view name) {
  cluster::NodeId id;
  try {
    id = cluster::parse_node_name(std::string(name));
  } catch (const ContractViolation&) {
    fail("node", "expects BB-SS (e.g. 58-02), got '" + std::string(name) + "'");
  }
  query_.blade = id.blade;
  query_.soc = id.soc;
  return *this;
}

QueryBuilder& QueryBuilder::blade(int b) {
  if (b < 0 || b >= cluster::kStudyBlades)
    fail("blade", "must be in [0, " + std::to_string(cluster::kStudyBlades - 1) +
                      "], got '" + std::to_string(b) + "'");
  query_.blade = b;
  return *this;
}

QueryBuilder& QueryBuilder::soc(int s) {
  if (s < 0 || s >= cluster::kSocsPerBlade)
    fail("soc", "must be in [0, " + std::to_string(cluster::kSocsPerBlade - 1) +
                    "], got '" + std::to_string(s) + "'");
  query_.soc = s;
  return *this;
}

QueryBuilder& QueryBuilder::fault_class(std::string_view name) {
  if (name == "single") {
    query_.min_bits = 1;
    query_.max_bits = 1;
  } else if (name == "double") {
    query_.min_bits = 2;
    query_.max_bits = 2;
  } else if (name == "few") {
    query_.min_bits = 3;
    query_.max_bits = 8;
  } else if (name == "many") {
    query_.min_bits = 9;
    query_.max_bits = 32;
  } else if (name == "multi") {
    query_.min_bits = 2;
    query_.max_bits = 32;
  } else {
    fail("class", "expects single|double|few|many|multi, got '" +
                      std::string(name) + "'");
  }
  return *this;
}

QueryBuilder& QueryBuilder::min_bits(int n) {
  if (n < 1 || n > 32)
    fail("min-bits", "must be in [1, 32], got '" + std::to_string(n) + "'");
  query_.min_bits = n;
  return *this;
}

QueryBuilder& QueryBuilder::max_bits(int n) {
  if (n < 1 || n > 32)
    fail("max-bits", "must be in [1, 32], got '" + std::to_string(n) + "'");
  query_.max_bits = n;
  return *this;
}

QueryBuilder& QueryBuilder::projection(std::uint32_t columns) {
  query_.projection = columns;
  return *this;
}

QueryBuilder& QueryBuilder::set(std::string_view field,
                                std::string_view value) {
  if (field == "since") return since(parse_long("since", value));
  if (field == "until") return until(parse_long("until", value));
  if (field == "node") return node(value);
  if (field == "blade")
    return blade(parse_int_in("blade", value, 0, cluster::kStudyBlades - 1));
  if (field == "soc")
    return soc(parse_int_in("soc", value, 0, cluster::kSocsPerBlade - 1));
  if (field == "class") return fault_class(value);
  if (field == "min-bits")
    return min_bits(parse_int_in("min-bits", value, 1, 32));
  if (field == "max-bits")
    return max_bits(parse_int_in("max-bits", value, 1, 32));
  throw QueryError(std::string(field), "unknown query field");
}

Query QueryBuilder::build() const {
  if (query_.min_bits > query_.max_bits)
    fail("min-bits",
         "exceeds max-bits (" + std::to_string(query_.min_bits) + " > " +
             std::to_string(query_.max_bits) + ")");
  return query_;
}

}  // namespace unp::store
