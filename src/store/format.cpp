#include "store/format.hpp"

#include <algorithm>
#include <bit>

#include "common/require.hpp"
#include "telemetry/kernels/kernels.hpp"

namespace unp::store {

namespace {

using telemetry::get_f64;
using telemetry::get_varint;
using telemetry::put_f64;
using telemetry::put_varint;
using telemetry::zigzag_decode;
using telemetry::zigzag_encode;

/// Stored column order; every segment writes all of them so readers can
/// skip by length prefix without a per-segment schema.
enum StoredColumn : int {
  kStoredNode = 0,
  kStoredFirstSeen,
  kStoredLastSeen,
  kStoredRawLogs,
  kStoredAddress,
  kStoredExpected,
  kStoredActual,
  kStoredTemperature,
  kStoredClass,
  kStoredColumnCount
};

constexpr std::uint32_t kStoredMask[kStoredColumnCount] = {
    kColNode,    kColFirstSeen,   kColLastSeen, kColRawLogs, kColAddress,
    kColPattern, kColPattern,     kColTemperature, kColClass};

/// Bits needed to index a dictionary of `size` entries.
int index_width(std::size_t size) {
  return size <= 1 ? 0 : static_cast<int>(std::bit_width(size - 1));
}

void append_column(std::string& out, const std::string& body) {
  put_varint(out, body.size());
  out += body;
}

/// Bounds of the next length-prefixed column at `pos`; advances `pos` past
/// the length prefix and returns the end of the column body.
std::size_t column_end(std::string_view in, std::size_t& pos,
                       std::size_t segment_end) {
  const std::uint64_t len = get_varint(in, pos);
  if (pos + len > segment_end)
    throw DecodeError("column overruns its segment", pos);
  return pos + static_cast<std::size_t>(len);
}

/// Bounds-checked unpack through a kernel set: validates that the packed
/// block fits [pos, end) (same DecodeError as always), then hands the
/// in-bounds bytes to the kernel.
void unpack_bits_checked(std::string_view in, std::size_t pos, std::size_t end,
                         std::size_t count, int width,
                         std::vector<std::uint64_t>& out,
                         const kernels::StoreKernels& k) {
  UNP_REQUIRE(width >= 0 && width <= 64);
  out.assign(count, 0);
  if (width == 0) return;
  const std::size_t need = (count * static_cast<std::size_t>(width) + 7) / 8;
  if (end > in.size() || pos + need > end)
    throw DecodeError("bit-packed column truncated", pos);
  k.unpack_bits(reinterpret_cast<const unsigned char*>(in.data()) + pos,
                count, width, out.data());
}

}  // namespace

const char* to_string(FaultClass c) noexcept {
  switch (c) {
    case FaultClass::kSingleBit: return "single-bit";
    case FaultClass::kDoubleBit: return "double-bit";
    case FaultClass::kFewBit: return "few-bit";
    case FaultClass::kManyBit: return "many-bit";
  }
  return "?";
}

void pack_bits(std::string& out, std::span<const std::uint64_t> values,
               int width) {
  UNP_REQUIRE(width >= 0 && width <= 64);
  if (width == 0) {
    for (const std::uint64_t v : values) UNP_REQUIRE(v == 0);
    return;
  }
  const std::size_t base = out.size();
  out.resize(base + (values.size() * static_cast<std::size_t>(width) + 7) / 8,
             '\0');
  std::size_t bitpos = 0;
  for (const std::uint64_t v : values) {
    UNP_REQUIRE(width == 64 || (v >> width) == 0);
    int written = 0;
    while (written < width) {
      const std::size_t byte = base + (bitpos >> 3);
      const int bit = static_cast<int>(bitpos & 7);
      const int take = std::min(8 - bit, width - written);
      const auto group =
          static_cast<unsigned char>((v >> written) & ((1u << take) - 1));
      out[byte] = static_cast<char>(static_cast<unsigned char>(out[byte]) |
                                    (group << bit));
      written += take;
      bitpos += static_cast<std::size_t>(take);
    }
  }
}

void unpack_bits(std::string_view in, std::size_t pos, std::size_t end,
                 std::size_t count, int width, std::vector<std::uint64_t>& out) {
  unpack_bits_checked(in, pos, end, count, width, out,
                      kernels::active_store_kernels());
}

void encode_segment_into(std::span<const analysis::FaultRecord> rows,
                         SegmentZone& zone, std::string& out,
                         SegmentEncodeArena& arena,
                         const telemetry::kernels::EncodeKernels& encode) {
  UNP_REQUIRE(!rows.empty());
  zone.rows = static_cast<std::uint32_t>(rows.size());

  // --- zone map -----------------------------------------------------------
  zone.time_min = zone.time_max = rows.front().first_seen;
  const auto first_index =
      static_cast<std::uint32_t>(cluster::node_index(rows.front().node));
  zone.node_min = zone.node_max = first_index;
  zone.addr_min = zone.addr_max = rows.front().virtual_address;
  const int first_bits = rows.front().flipped_bits();
  zone.bits_min = zone.bits_max = static_cast<std::uint8_t>(first_bits);
  for (const auto& f : rows) {
    zone.time_min = std::min(zone.time_min, f.first_seen);
    zone.time_max = std::max(zone.time_max, f.first_seen);
    const auto index = static_cast<std::uint32_t>(cluster::node_index(f.node));
    zone.node_min = std::min(zone.node_min, index);
    zone.node_max = std::max(zone.node_max, index);
    zone.addr_min = std::min(zone.addr_min, f.virtual_address);
    zone.addr_max = std::max(zone.addr_max, f.virtual_address);
    const auto bits = static_cast<std::uint8_t>(f.flipped_bits());
    zone.bits_min = std::min(zone.bits_min, bits);
    zone.bits_max = std::max(zone.bits_max, bits);
  }

  const std::size_t n = rows.size();
  const std::size_t base = out.size();
  // Body bound: row count + 9 column prefixes (10 bytes each) + the widest
  // per-row costs (six 10-byte varints, the dictionary, 9-byte temperature,
  // packed bits).  Keeps every append below from reallocating `out`.
  out.reserve(base + 128 + 96 * n);

  std::string& column = arena.column;
  std::vector<std::uint64_t>& values = arena.values;
  // Column-body bound: the widest column is the node dictionary (count +
  // per-entry deltas + packed indices).
  column.reserve(16 + 11 * n);

  put_varint(out, n);

  {  // node: dictionary of ascending distinct indices + packed row indices
    column.clear();
    std::vector<std::uint32_t>& dict = arena.dict;
    dict.clear();
    for (const auto& f : rows)
      dict.push_back(static_cast<std::uint32_t>(cluster::node_index(f.node)));
    std::sort(dict.begin(), dict.end());
    dict.erase(std::unique(dict.begin(), dict.end()), dict.end());
    put_varint(column, dict.size());
    values.clear();
    values.reserve(std::max(n, dict.size()));
    std::uint32_t previous = 0;
    for (const std::uint32_t d : dict) {
      values.push_back(d - previous);  // ascending: deltas >= 0
      previous = d;
    }
    encode.encode_varints(values.data(), values.size(), column);
    values.clear();
    for (const auto& f : rows) {
      const auto it = std::lower_bound(
          dict.begin(), dict.end(),
          static_cast<std::uint32_t>(cluster::node_index(f.node)));
      values.push_back(static_cast<std::uint64_t>(it - dict.begin()));
    }
    pack_bits(column, values, index_width(dict.size()));
    append_column(out, column);
  }
  {  // first_seen: zigzag delta varints (fused gather + batch kernel)
    column.clear();
    values.clear();
    for (const auto& f : rows)
      values.push_back(static_cast<std::uint64_t>(f.first_seen));
    encode.encode_zigzag_deltas(values.data(), values.size(), 0, column);
    append_column(out, column);
  }
  {  // last_seen: non-negative offset from first_seen
    column.clear();
    values.clear();
    for (const auto& f : rows) {
      UNP_REQUIRE(f.last_seen >= f.first_seen);
      values.push_back(static_cast<std::uint64_t>(f.last_seen - f.first_seen));
    }
    encode.encode_varints(values.data(), values.size(), column);
    append_column(out, column);
  }
  {  // raw_logs
    column.clear();
    values.clear();
    for (const auto& f : rows) values.push_back(f.raw_logs);
    encode.encode_varints(values.data(), values.size(), column);
    append_column(out, column);
  }
  {  // address: zigzag delta varints
    column.clear();
    values.clear();
    for (const auto& f : rows) values.push_back(f.virtual_address);
    encode.encode_zigzag_deltas(values.data(), values.size(), 0, column);
    append_column(out, column);
  }
  {  // expected
    column.clear();
    values.clear();
    for (const auto& f : rows)
      values.push_back(static_cast<std::uint64_t>(f.expected));
    encode.encode_varints(values.data(), values.size(), column);
    append_column(out, column);
  }
  {  // actual
    column.clear();
    values.clear();
    for (const auto& f : rows)
      values.push_back(static_cast<std::uint64_t>(f.actual));
    encode.encode_varints(values.data(), values.size(), column);
    append_column(out, column);
  }
  {  // temperature: presence bitmap + raw f64 bits of present readings
    column.clear();
    values.clear();
    for (const auto& f : rows)
      values.push_back(f.temperature_c == telemetry::kNoTemperature ? 0 : 1);
    pack_bits(column, values, 1);
    for (const auto& f : rows) {
      if (f.temperature_c != telemetry::kNoTemperature)
        put_f64(column, f.temperature_c);
    }
    append_column(out, column);
  }
  {  // class: 2-bit codes
    column.clear();
    values.clear();
    for (const auto& f : rows)
      values.push_back(static_cast<std::uint64_t>(classify_bits(f.flipped_bits())));
    pack_bits(column, values, 2);
    append_column(out, column);
  }

  zone.size = out.size() - base;
}

std::string encode_segment(std::span<const analysis::FaultRecord> rows,
                           SegmentZone& zone) {
  std::string out;
  SegmentEncodeArena arena;
  encode_segment_into(rows, zone, out, arena,
                      telemetry::kernels::active_encode_kernels());
  return out;
}

void decode_segment(std::string_view bytes, std::size_t pos,
                    const SegmentZone& zone, std::uint32_t columns,
                    SegmentColumns& out, const kernels::StoreKernels& k) {
  const std::size_t segment_end = pos + static_cast<std::size_t>(zone.size);
  if (segment_end > bytes.size())
    throw DecodeError("segment overruns the file", pos);
  const std::uint64_t declared_rows = get_varint(bytes, pos);
  if (declared_rows != zone.rows)
    throw DecodeError("segment row count disagrees with its zone entry", pos);
  const auto n = static_cast<std::size_t>(zone.rows);

  out = SegmentColumns{};
  std::vector<std::uint64_t> scratch;

  for (int c = 0; c < kStoredColumnCount; ++c) {
    const std::size_t end = column_end(bytes, pos, segment_end);
    if ((columns & kStoredMask[c]) == 0) {
      pos = end;  // skip without decoding
      continue;
    }
    switch (c) {
      case kStoredNode: {
        const std::uint64_t dict_size = get_varint(bytes, pos);
        if (dict_size == 0 || dict_size > static_cast<std::uint64_t>(
                                              cluster::kStudyNodeSlots))
          throw DecodeError("node dictionary size out of range", pos);
        std::vector<std::uint32_t> dict;
        dict.reserve(static_cast<std::size_t>(dict_size));
        std::uint64_t value = 0;
        for (std::uint64_t i = 0; i < dict_size; ++i) {
          value += get_varint(bytes, pos);
          if (value >= static_cast<std::uint64_t>(cluster::kStudyNodeSlots))
            throw DecodeError("node dictionary entry out of range", pos);
          dict.push_back(static_cast<std::uint32_t>(value));
        }
        unpack_bits_checked(bytes, pos, end, n, index_width(dict.size()),
                            scratch, k);
        out.node_index.reserve(n);
        for (const std::uint64_t index : scratch) {
          if (index >= dict.size())
            throw DecodeError("node dictionary index out of range", pos);
          out.node_index.push_back(dict[static_cast<std::size_t>(index)]);
        }
        break;
      }
      case kStoredFirstSeen: {
        // Fused varint+zigzag+prefix kernel, straight into the column
        // (u64 view of the i64 storage: same bits, no scratch pass).
        out.first_seen.resize(n);
        k.decode_zigzag_deltas(
            bytes, pos, n, 0,
            reinterpret_cast<std::uint64_t*>(out.first_seen.data()));
        break;
      }
      case kStoredLastSeen: {
        // Decoded as offsets here; the reader adds first_seen (which it
        // always materializes alongside when this column is requested).
        scratch.resize(n);
        k.decode_varints(bytes, pos, n, scratch.data());
        out.last_seen.resize(n);
        for (std::size_t i = 0; i < n; ++i)
          out.last_seen[i] = static_cast<TimePoint>(scratch[i]);
        break;
      }
      case kStoredRawLogs: {
        out.raw_logs.resize(n);
        k.decode_varints(bytes, pos, n, out.raw_logs.data());
        break;
      }
      case kStoredAddress: {
        out.address.resize(n);
        k.decode_zigzag_deltas(bytes, pos, n, 0, out.address.data());
        break;
      }
      case kStoredExpected: {
        scratch.resize(n);
        k.decode_varints(bytes, pos, n, scratch.data());
        out.expected.resize(n);
        for (std::size_t i = 0; i < n; ++i)
          out.expected[i] = static_cast<Word>(scratch[i]);
        break;
      }
      case kStoredActual: {
        scratch.resize(n);
        k.decode_varints(bytes, pos, n, scratch.data());
        out.actual.resize(n);
        for (std::size_t i = 0; i < n; ++i)
          out.actual[i] = static_cast<Word>(scratch[i]);
        break;
      }
      case kStoredTemperature: {
        unpack_bits_checked(bytes, pos, end, n, 1, scratch, k);
        std::size_t f64_pos = pos + (n + 7) / 8;
        out.temperature.reserve(n);
        for (const std::uint64_t present : scratch) {
          if (present != 0 && f64_pos + 8 > end)
            throw DecodeError("temperature column truncated", f64_pos);
          out.temperature.push_back(present != 0
                                        ? get_f64(bytes, f64_pos)
                                        : telemetry::kNoTemperature);
        }
        break;
      }
      case kStoredClass: {
        unpack_bits_checked(bytes, pos, end, n, 2, scratch, k);
        out.fault_class.assign(scratch.begin(), scratch.end());
        break;
      }
      default:
        break;
    }
    pos = end;
  }
  if (pos != segment_end)
    throw DecodeError("trailing bytes inside segment", pos);
}

void decode_segment(std::string_view bytes, std::size_t pos,
                    const SegmentZone& zone, std::uint32_t columns,
                    SegmentColumns& out) {
  decode_segment(bytes, pos, zone, columns, out,
                 kernels::active_store_kernels());
}

void encode_zone(std::string& out, const SegmentZone& zone) {
  put_varint(out, zone.offset);
  put_varint(out, zone.size);
  put_varint(out, zone.rows);
  put_varint(out, zigzag_encode(zone.time_min));
  put_varint(out, zigzag_encode(zone.time_max));
  put_varint(out, zone.node_min);
  put_varint(out, zone.node_max);
  put_varint(out, zone.addr_min);
  put_varint(out, zone.addr_max);
  out.push_back(static_cast<char>(zone.bits_min));
  out.push_back(static_cast<char>(zone.bits_max));
}

SegmentZone decode_zone(std::string_view in, std::size_t& pos) {
  SegmentZone zone;
  zone.offset = get_varint(in, pos);
  zone.size = get_varint(in, pos);
  const std::uint64_t rows = get_varint(in, pos);
  if (rows == 0 || rows > (1ULL << 32))
    throw DecodeError("zone entry row count out of range", pos);
  zone.rows = static_cast<std::uint32_t>(rows);
  zone.time_min = zigzag_decode(get_varint(in, pos));
  zone.time_max = zigzag_decode(get_varint(in, pos));
  zone.node_min = static_cast<std::uint32_t>(get_varint(in, pos));
  zone.node_max = static_cast<std::uint32_t>(get_varint(in, pos));
  zone.addr_min = get_varint(in, pos);
  zone.addr_max = get_varint(in, pos);
  if (pos + 2 > in.size()) throw DecodeError("truncated zone entry", pos);
  zone.bits_min = static_cast<std::uint8_t>(in[pos++]);
  zone.bits_max = static_cast<std::uint8_t>(in[pos++]);
  return zone;
}

namespace {

void encode_grid(std::string& out, const Grid2D& grid) {
  put_varint(out, grid.rows());
  put_varint(out, grid.cols());
  for (std::size_t r = 0; r < grid.rows(); ++r)
    for (std::size_t c = 0; c < grid.cols(); ++c) put_f64(out, grid.at(r, c));
}

Grid2D decode_grid(std::string_view in, std::size_t& pos) {
  const std::uint64_t rows = get_varint(in, pos);
  const std::uint64_t cols = get_varint(in, pos);
  if (rows == 0 || cols == 0 || rows > 4096 || cols > 4096)
    throw DecodeError("grid dimensions out of range", pos);
  Grid2D grid(static_cast<std::size_t>(rows), static_cast<std::size_t>(cols));
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) grid.at(r, c) = get_f64(in, pos);
  return grid;
}

}  // namespace

void encode_scan_profile(std::string& out, const StoredScanProfile& profile) {
  put_varint(out, static_cast<std::uint64_t>(profile.monitored_nodes));
  encode_grid(out, profile.hours);
  encode_grid(out, profile.terabyte_hours);
  put_varint(out, profile.daily_terabyte_hours.size());
  for (const double v : profile.daily_terabyte_hours) put_f64(out, v);
  put_f64(out, profile.total_hours);
  put_f64(out, profile.total_terabyte_hours);
}

StoredScanProfile decode_scan_profile(std::string_view in, std::size_t& pos) {
  StoredScanProfile profile;
  profile.monitored_nodes = static_cast<int>(get_varint(in, pos));
  profile.hours = decode_grid(in, pos);
  profile.terabyte_hours = decode_grid(in, pos);
  const std::uint64_t days = get_varint(in, pos);
  if (days > (1ULL << 24))
    throw DecodeError("daily series length out of range", pos);
  profile.daily_terabyte_hours.reserve(static_cast<std::size_t>(days));
  for (std::uint64_t i = 0; i < days; ++i)
    profile.daily_terabyte_hours.push_back(get_f64(in, pos));
  profile.total_hours = get_f64(in, pos);
  profile.total_terabyte_hours = get_f64(in, pos);
  return profile;
}

void encode_extraction_meta(std::string& out, const StoredExtractionMeta& meta) {
  put_varint(out, meta.removed_nodes.size());
  for (const auto& node : meta.removed_nodes)
    put_varint(out, static_cast<std::uint64_t>(cluster::node_index(node)));
  put_varint(out, meta.total_raw_logs);
  put_varint(out, meta.removed_raw_logs);
}

StoredExtractionMeta decode_extraction_meta(std::string_view in,
                                            std::size_t& pos) {
  StoredExtractionMeta meta;
  const std::uint64_t removed = get_varint(in, pos);
  if (removed > static_cast<std::uint64_t>(cluster::kStudyNodeSlots))
    throw DecodeError("removed-node count out of range", pos);
  meta.removed_nodes.reserve(static_cast<std::size_t>(removed));
  for (std::uint64_t i = 0; i < removed; ++i) {
    const std::uint64_t index = get_varint(in, pos);
    if (index >= static_cast<std::uint64_t>(cluster::kStudyNodeSlots))
      throw DecodeError("removed-node index out of range", pos);
    meta.removed_nodes.push_back(
        cluster::node_from_index(static_cast<int>(index)));
  }
  meta.total_raw_logs = get_varint(in, pos);
  meta.removed_raw_logs = get_varint(in, pos);
  return meta;
}

}  // namespace unp::store
