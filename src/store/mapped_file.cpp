#include "store/mapped_file.hpp"

#include <cerrno>
#include <cstring>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define UNP_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#include <fstream>
#endif

namespace unp::store {

namespace {

[[noreturn]] void throw_io(const char* what, const std::string& path,
                           int err) {
  throw telemetry::DecodeError(std::string("cannot ") + what +
                                   " store file " + path + ": " +
                                   std::strerror(err),
                               0);
}

}  // namespace

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this == &other) return *this;
#if UNP_HAVE_MMAP
  if (mapped_) {
    ::munmap(const_cast<char*>(data_), size_);
  }
#endif
  path_ = std::move(other.path_);
  fallback_ = std::move(other.fallback_);
  mapped_ = std::exchange(other.mapped_, false);
  size_ = std::exchange(other.size_, 0);
  data_ = std::exchange(other.data_, nullptr);
  // The fallback string owns its bytes; re-point the view after the move.
  if (!mapped_ && data_ != nullptr) data_ = fallback_.data();
  return *this;
}

MappedFile::~MappedFile() {
#if UNP_HAVE_MMAP
  if (mapped_) {
    ::munmap(const_cast<char*>(data_), size_);
  }
#endif
}

#if UNP_HAVE_MMAP

MappedFile MappedFile::map(const std::string& path) {
  MappedFile out;
  out.path_ = path;
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw_io("open", path, errno);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    throw_io("stat", path, err);
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return out;  // empty view; header validation reports the truncation
  }
  void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  const int map_err = errno;
  ::close(fd);  // the mapping keeps its own reference
  if (addr == MAP_FAILED) throw_io("map", path, map_err);
  out.data_ = static_cast<const char*>(addr);
  out.size_ = size;
  out.mapped_ = true;
  return out;
}

#else  // heap fallback

MappedFile MappedFile::map(const std::string& path) {
  MappedFile out;
  out.path_ = path;
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) throw_io("open", path, errno);
  is.seekg(0, std::ios::end);
  const auto size = static_cast<std::size_t>(is.tellg());
  is.seekg(0, std::ios::beg);
  out.fallback_.resize(size);
  if (size > 0) {
    is.read(out.fallback_.data(), static_cast<std::streamsize>(size));
    if (static_cast<std::size_t>(is.gcount()) != size)
      throw_io("read", path, errno);
  }
  out.data_ = out.fallback_.data();
  out.size_ = size;
  return out;
}

#endif

}  // namespace unp::store
