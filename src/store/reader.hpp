// StoreReader: the query side of the UNPF columnar store.
//
// A reader is a thin scan planner over a shared, immutable StoreHandle
// (see store/handle.hpp): the handle owns the mmap-backed bytes and the
// parsed metadata; the reader plans a scan from a Query (segment pruning
// via zone maps, column projection via required_columns), fans the
// surviving segments out on the shared ThreadPool, and concatenates
// per-segment results in directory order — so query results are
// bit-identical for any thread count, with pruning on or off, and on every
// kernel ISA.  Copying a reader copies a shared_ptr; any number of threads
// may run() against the same handle concurrently without locks.
//
// replay() closes the loop with the live pipeline: it materializes matching
// rows back into canonical FaultRecords and streams them through any set of
// analysis::FaultSinks, exactly as run_fault_sinks does downstream of
// StreamingExtractor.  A figure computed from a store replay is therefore
// byte-identical to the same figure computed live.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "analysis/extraction.hpp"
#include "analysis/fault_sink.hpp"
#include "common/thread_pool.hpp"
#include "store/format.hpp"
#include "store/handle.hpp"
#include "store/query.hpp"

namespace unp::store {

/// Observability counters of one scan.
struct ScanStats {
  std::size_t segments_total = 0;
  std::size_t segments_pruned = 0;   ///< skipped via zone maps
  std::size_t segments_scanned = 0;  ///< decoded and row-filtered
  std::uint64_t rows_scanned = 0;    ///< rows decoded
  std::uint64_t rows_matched = 0;    ///< rows passing the predicate
};

/// Matching rows in directory (= canonical) order, column-major.  Vectors
/// for unprojected columns are empty; projected ones share one length.
struct QueryResult {
  SegmentColumns columns;
  std::uint64_t rows = 0;
};

/// How a scan executes (never what it returns — results are identical for
/// every option combination).
struct ScanOptions {
  ThreadPool* pool = nullptr;  ///< nullptr = sequential scan
  bool prune = true;           ///< false = decode every segment (for the
                               ///  pruning-equivalence proof in the gate)
  const kernels::StoreKernels* kernels = nullptr;  ///< nullptr = process-wide
};

class StoreReader {
 public:
  using Options = ScanOptions;

  /// View an already-open handle (the cheap, shareable path).
  explicit StoreReader(std::shared_ptr<const StoreHandle> handle)
      : handle_(std::move(handle)) {}

  /// Map, parse, and wrap the store file at `path`.
  [[nodiscard]] static StoreReader open(const std::string& path) {
    return StoreReader(StoreHandle::open(path));
  }

  /// Open the part files of write_partitioned_store as one logical store
  /// (see StoreHandle::open_partitioned for the agreement rules).
  [[nodiscard]] static StoreReader open_partitioned(
      const std::vector<std::string>& paths) {
    return StoreReader(StoreHandle::open_partitioned(paths));
  }

  /// The shared parsed store this reader scans.
  [[nodiscard]] const std::shared_ptr<const StoreHandle>& handle()
      const noexcept {
    return handle_;
  }

  // --- campaign metadata (forwarded from the handle) ----------------------
  [[nodiscard]] const CampaignWindow& window() const noexcept {
    return handle_->window();
  }
  [[nodiscard]] std::uint64_t fingerprint() const noexcept {
    return handle_->fingerprint();
  }
  [[nodiscard]] const StoredScanProfile& scan_profile() const noexcept {
    return handle_->scan_profile();
  }
  [[nodiscard]] const StoredExtractionMeta& extraction_meta() const noexcept {
    return handle_->extraction_meta();
  }
  [[nodiscard]] const std::vector<SegmentZone>& zones() const noexcept {
    return handle_->zones();
  }
  [[nodiscard]] std::uint64_t rows_total() const noexcept {
    return handle_->rows_total();
  }

  /// Execute `query`: prune segments, decode required columns, filter rows,
  /// keep projected columns.  Deterministic for any Options.
  [[nodiscard]] QueryResult run(const Query& query,
                                const Options& options = Options{},
                                ScanStats* stats = nullptr) const;

  /// Materialize matching rows as canonical FaultRecords (query.projection
  /// is ignored; records need every column).
  [[nodiscard]] std::vector<analysis::FaultRecord> materialize(
      const Query& query, const Options& options = Options{},
      ScanStats* stats = nullptr) const;

  /// Materialize and stream through `sinks` exactly like run_fault_sinks
  /// downstream of the live extractor.  Returns the materialized rows; the
  /// caller must keep them alive while sink products are consumed (sinks
  /// may retain pointers into the view).
  [[nodiscard]] std::vector<analysis::FaultRecord> replay(
      const Query& query, std::span<analysis::FaultSink* const> sinks,
      ThreadPool* pool = nullptr) const;

  /// Rebuild the ExtractionResult of the source campaign (all faults plus
  /// the stored accounting) — the store-backed stand-in for extract_faults.
  [[nodiscard]] analysis::ExtractionResult extraction_result(
      ThreadPool* pool = nullptr) const;

 private:
  std::shared_ptr<const StoreHandle> handle_;
};

}  // namespace unp::store
