// StoreReader: the query side of the UNPF columnar store.
//
// Opening a store parses only the header, the campaign metadata, and the
// zone directory; segment bodies stay undecoded bytes until a query touches
// them.  run() plans a scan from a Query (segment pruning via zone maps,
// column projection via required_columns), fans the surviving segments out
// on the shared ThreadPool, and concatenates per-segment results in
// directory order — so query results are bit-identical for any thread count
// and with pruning on or off.
//
// replay() closes the loop with the live pipeline: it materializes matching
// rows back into canonical FaultRecords and streams them through any set of
// analysis::FaultSinks, exactly as run_fault_sinks does downstream of
// StreamingExtractor.  A figure computed from a store replay is therefore
// byte-identical to the same figure computed live.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/extraction.hpp"
#include "analysis/fault_sink.hpp"
#include "common/thread_pool.hpp"
#include "store/format.hpp"
#include "store/query.hpp"

namespace unp::store {

/// Observability counters of one scan.
struct ScanStats {
  std::size_t segments_total = 0;
  std::size_t segments_pruned = 0;   ///< skipped via zone maps
  std::size_t segments_scanned = 0;  ///< decoded and row-filtered
  std::uint64_t rows_scanned = 0;    ///< rows decoded
  std::uint64_t rows_matched = 0;    ///< rows passing the predicate
};

/// Matching rows in directory (= canonical) order, column-major.  Vectors
/// for unprojected columns are empty; projected ones share one length.
struct QueryResult {
  SegmentColumns columns;
  std::uint64_t rows = 0;
};

/// How a scan executes (never what it returns — results are identical for
/// every option combination).
struct ScanOptions {
  ThreadPool* pool = nullptr;  ///< nullptr = sequential scan
  bool prune = true;           ///< false = decode every segment (for the
                               ///  pruning-equivalence proof in the gate)
};

class StoreReader {
 public:
  using Options = ScanOptions;

  /// Parse a store from memory (takes ownership of the bytes).  Throws
  /// DecodeError with byte-offset context on corrupt input.
  explicit StoreReader(std::string bytes);

  /// Read and parse the store file at `path`.
  [[nodiscard]] static StoreReader open(const std::string& path);

  /// Open the part files of write_partitioned_store as one logical store.
  /// Parts must agree on fingerprint, window, and row-shape metadata; their
  /// zone directories concatenate in path order, which is canonical row
  /// order, so every query/replay result is byte-identical to the same
  /// store written as a single file.  A one-element vector is exactly
  /// open().
  [[nodiscard]] static StoreReader open_partitioned(
      const std::vector<std::string>& paths);

  // --- campaign metadata --------------------------------------------------
  [[nodiscard]] const CampaignWindow& window() const noexcept { return window_; }
  [[nodiscard]] std::uint64_t fingerprint() const noexcept { return fingerprint_; }
  [[nodiscard]] const StoredScanProfile& scan_profile() const noexcept {
    return scan_profile_;
  }
  [[nodiscard]] const StoredExtractionMeta& extraction_meta() const noexcept {
    return extraction_meta_;
  }
  [[nodiscard]] const std::vector<SegmentZone>& zones() const noexcept {
    return zones_;
  }
  [[nodiscard]] std::uint64_t rows_total() const noexcept { return rows_total_; }

  /// Execute `query`: prune segments, decode required columns, filter rows,
  /// keep projected columns.  Deterministic for any Options.
  [[nodiscard]] QueryResult run(const Query& query,
                                const Options& options = Options{},
                                ScanStats* stats = nullptr) const;

  /// Materialize matching rows as canonical FaultRecords (query.projection
  /// is ignored; records need every column).
  [[nodiscard]] std::vector<analysis::FaultRecord> materialize(
      const Query& query, const Options& options = Options{},
      ScanStats* stats = nullptr) const;

  /// Materialize and stream through `sinks` exactly like run_fault_sinks
  /// downstream of the live extractor.  Returns the materialized rows; the
  /// caller must keep them alive while sink products are consumed (sinks
  /// may retain pointers into the view).
  [[nodiscard]] std::vector<analysis::FaultRecord> replay(
      const Query& query, std::span<analysis::FaultSink* const> sinks,
      ThreadPool* pool = nullptr) const;

  /// Rebuild the ExtractionResult of the source campaign (all faults plus
  /// the stored accounting) — the store-backed stand-in for extract_faults.
  [[nodiscard]] analysis::ExtractionResult extraction_result(
      ThreadPool* pool = nullptr) const;

 private:
  StoreReader() = default;

  /// One parsed part file; zone offsets are relative to its data section.
  struct Part {
    std::string bytes;
    std::size_t data_offset = 0;
  };

  /// Parse `bytes` as a complete UNPF file and append it as the next part:
  /// metadata is adopted from the first part and checked for agreement on
  /// every later one.
  void add_part(std::string bytes);

  std::vector<Part> parts_;
  CampaignWindow window_;
  std::uint64_t fingerprint_ = 0;
  StoredScanProfile scan_profile_;
  StoredExtractionMeta extraction_meta_;
  std::vector<SegmentZone> zones_;     ///< concatenated in part order
  std::vector<std::size_t> zone_part_; ///< owning part per zone
  std::uint64_t rows_total_ = 0;
};

}  // namespace unp::store
