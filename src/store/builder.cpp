#include "store/builder.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "common/require.hpp"
#include "telemetry/kernels/kernels.hpp"

namespace unp::store {

using telemetry::put_varint;
using telemetry::zigzag_encode;

StoredScanProfile scan_profile_from(const analysis::ScanProfileSink& scan) {
  StoredScanProfile profile;
  profile.monitored_nodes = scan.monitored_nodes();
  profile.hours = scan.hours_grid();
  profile.terabyte_hours = scan.terabyte_hours_grid();
  profile.daily_terabyte_hours = scan.daily_terabyte_hours();
  profile.total_hours = scan.total_monitored_hours();
  profile.total_terabyte_hours = scan.total_terabyte_hours();
  return profile;
}

StoredExtractionMeta extraction_meta_from(
    const analysis::ExtractionResult& extraction) {
  StoredExtractionMeta meta;
  meta.removed_nodes = extraction.removed_nodes;
  meta.total_raw_logs = extraction.total_raw_logs;
  meta.removed_raw_logs = extraction.removed_raw_logs;
  return meta;
}

StoreBuilder::StoreBuilder(const Config& config) : config_(config) {
  UNP_REQUIRE(config_.segment_rows > 0);
}

void StoreBuilder::begin_faults(const analysis::FaultStreamContext& ctx) {
  UNP_REQUIRE(!stream_open_);
  window_ = ctx.window;
  stream_open_ = true;
}

void StoreBuilder::on_fault(const analysis::FaultRecord& fault) {
  pending_.push_back(fault);
  ++rows_;
  if (pending_.size() >= config_.segment_rows) flush_segment();
}

void StoreBuilder::end_faults() {
  flush_segment();
  stream_open_ = false;
}

void StoreBuilder::set_scan_profile(StoredScanProfile profile) {
  scan_profile_ = std::move(profile);
}

void StoreBuilder::set_extraction_meta(StoredExtractionMeta meta) {
  extraction_meta_ = std::move(meta);
}

void StoreBuilder::flush_segment() {
  if (pending_.empty()) return;
  SegmentZone zone;
  zone.offset = data_.size();
  // Encode straight into the data section — no per-segment body string to
  // allocate and copy.
  encode_segment_into(pending_, zone, data_, arena_,
                      encode_ != nullptr
                          ? *encode_
                          : telemetry::kernels::active_encode_kernels());
  zones_.push_back(zone);
  pending_.clear();
}

std::string StoreBuilder::encode() const {
  UNP_REQUIRE(!stream_open_ && pending_.empty());
  std::string out;
  out.append(kStoreMagic, sizeof kStoreMagic);
  out.push_back(static_cast<char>(kStoreVersion));
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<char>((fingerprint_ >> (8 * i)) & 0xFF));
  put_varint(out, zigzag_encode(window_.start));
  put_varint(out, zigzag_encode(window_.end));
  encode_scan_profile(out, scan_profile_);
  encode_extraction_meta(out, extraction_meta_);
  put_varint(out, zones_.size());
  for (const SegmentZone& zone : zones_) encode_zone(out, zone);
  out += data_;
  return out;
}

void StoreBuilder::write(const std::string& path) const {
  const std::string bytes = encode();
  // Same-directory temp name unique per process, so concurrent builders
  // racing on one path each rename a complete file into place.
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    UNP_REQUIRE(os.good());
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    os.flush();
    UNP_REQUIRE(os.good());
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw ContractViolation("cannot rename store temp file over " + path);
  }
}

void write_store(const std::string& path,
                 const analysis::ExtractionResult& extraction,
                 const analysis::ScanProfileSink& scan,
                 std::uint64_t fingerprint,
                 const StoreBuilder::Config& config) {
  StoreBuilder builder(config);
  builder.set_fingerprint(fingerprint);
  builder.set_scan_profile(scan_profile_from(scan));
  builder.set_extraction_meta(extraction_meta_from(extraction));
  builder.begin_faults({scan.window()});
  for (const analysis::FaultRecord& fault : extraction.faults)
    builder.on_fault(fault);
  builder.end_faults();
  builder.write(path);
}

void write_partitioned_store(const std::vector<std::string>& part_paths,
                             const analysis::ExtractionResult& extraction,
                             const analysis::ScanProfileSink& scan,
                             std::uint64_t fingerprint,
                             const StoreBuilder::Config& config) {
  UNP_REQUIRE(!part_paths.empty());
  const std::size_t parts = part_paths.size();
  const std::size_t rows = extraction.faults.size();
  const std::size_t stride = (rows + parts - 1) / parts;  // ceil; 0 if empty
  for (std::size_t p = 0; p < parts; ++p) {
    StoreBuilder builder(config);
    builder.set_fingerprint(fingerprint);
    builder.set_scan_profile(scan_profile_from(scan));
    builder.set_extraction_meta(extraction_meta_from(extraction));
    builder.begin_faults({scan.window()});
    const std::size_t lo = std::min(p * stride, rows);
    const std::size_t hi = std::min(lo + stride, rows);
    for (std::size_t i = lo; i < hi; ++i) builder.on_fault(extraction.faults[i]);
    builder.end_faults();
    builder.write(part_paths[p]);
  }
}

}  // namespace unp::store
