#include "store/handle.hpp"

#include <cstring>
#include <utility>

#include "common/require.hpp"

namespace unp::store {

using telemetry::get_varint;
using telemetry::zigzag_decode;

void StoreHandle::add_part(Part part) {
  const std::string_view buf = part.bytes;

  std::size_t pos = 0;
  if (buf.size() < sizeof kStoreMagic + 1 + 8)
    throw DecodeError("truncated store header", buf.size());
  if (std::memcmp(buf.data(), kStoreMagic, sizeof kStoreMagic) != 0)
    throw DecodeError("bad UNPF magic", 0);
  pos = sizeof kStoreMagic;
  const int version = static_cast<unsigned char>(buf[pos]);
  if (version != kStoreVersion)
    throw DecodeError("unsupported UNPF version " + std::to_string(version),
                      pos);
  ++pos;
  std::uint64_t fingerprint = 0;
  for (std::size_t i = 0; i < 8; ++i)
    fingerprint |= static_cast<std::uint64_t>(
                       static_cast<unsigned char>(buf[pos + i]))
                   << (8 * i);
  pos += 8;
  CampaignWindow window;
  window.start = zigzag_decode(get_varint(buf, pos));
  window.end = zigzag_decode(get_varint(buf, pos));
  StoredScanProfile scan_profile = decode_scan_profile(buf, pos);
  StoredExtractionMeta extraction_meta = decode_extraction_meta(buf, pos);
  const std::uint64_t segment_count = get_varint(buf, pos);
  if (segment_count > buf.size())  // each segment occupies >= 1 byte
    throw DecodeError("segment count out of range", pos);
  std::vector<SegmentZone> zones;
  zones.reserve(static_cast<std::size_t>(segment_count));
  for (std::uint64_t i = 0; i < segment_count; ++i)
    zones.push_back(decode_zone(buf, pos));
  part.data_offset = pos;

  // The data section must be exactly the contiguous concatenation the
  // directory declares — anything else is a torn or corrupt file.
  std::uint64_t expected_offset = 0;
  std::uint64_t part_rows = 0;
  for (const SegmentZone& zone : zones) {
    if (zone.offset != expected_offset)
      throw DecodeError("zone directory not contiguous", part.data_offset);
    expected_offset += zone.size;
    part_rows += zone.rows;
  }
  if (part.data_offset + expected_offset != buf.size())
    throw DecodeError("data section size mismatch (directory declares " +
                          std::to_string(expected_offset) + " bytes, file has " +
                          std::to_string(buf.size() - part.data_offset) + ")",
                      part.data_offset);

  if (parts_.empty()) {
    fingerprint_ = fingerprint;
    window_ = window;
    scan_profile_ = std::move(scan_profile);
    extraction_meta_ = std::move(extraction_meta);
  } else {
    if (fingerprint != fingerprint_)
      throw DecodeError("store part fingerprint mismatch", 0);
    if (window.start != window_.start || window.end != window_.end)
      throw DecodeError("store part campaign window mismatch", 0);
  }
  const std::size_t part_index = parts_.size();
  for (const SegmentZone& zone : zones) {
    zones_.push_back(zone);
    zone_part_.push_back(part_index);
  }
  rows_total_ += part_rows;
  parts_.push_back(std::move(part));
  // Moving a Part (and any vector growth) can relocate the owned string's
  // bytes; re-derive every view from its storage of record.
  for (Part& p : parts_)
    p.bytes = p.owned.empty() ? p.file.view() : std::string_view(p.owned);
}

std::shared_ptr<const StoreHandle> StoreHandle::open(const std::string& path) {
  auto handle = std::shared_ptr<StoreHandle>(new StoreHandle());
  Part part;
  part.file = MappedFile::map(path);
  part.bytes = part.file.view();
  handle->add_part(std::move(part));
  return handle;
}

std::shared_ptr<const StoreHandle> StoreHandle::open_partitioned(
    const std::vector<std::string>& paths) {
  UNP_REQUIRE(!paths.empty());
  auto handle = std::shared_ptr<StoreHandle>(new StoreHandle());
  for (const std::string& path : paths) {
    try {
      Part part;
      part.file = MappedFile::map(path);
      part.bytes = part.file.view();
      handle->add_part(std::move(part));
    } catch (const DecodeError& e) {
      throw DecodeError("store part " + path + ": " + e.detail(),
                        e.byte_offset());
    }
  }
  return handle;
}

std::shared_ptr<const StoreHandle> StoreHandle::from_bytes(std::string bytes) {
  auto handle = std::shared_ptr<StoreHandle>(new StoreHandle());
  Part part;
  part.owned = std::move(bytes);
  part.bytes = part.owned;
  handle->add_part(std::move(part));
  return handle;
}

std::vector<std::string> StoreHandle::part_paths() const {
  std::vector<std::string> out;
  out.reserve(parts_.size());
  for (const Part& part : parts_)
    if (!part.file.path().empty()) out.push_back(part.file.path());
  return out;
}

StoreHandle::SegmentLocation StoreHandle::segment_location(
    std::size_t zone_index) const noexcept {
  const Part& part = parts_[zone_part_[zone_index]];
  return {part.bytes,
          part.data_offset + static_cast<std::size_t>(zones_[zone_index].offset)};
}

}  // namespace unp::store
