// Read-only file mapping for the UNPF store.
//
// The old reader slurped every store file into a std::string per open, so N
// concurrent readers of one campaign paid N copies of the whole file.  A
// MappedFile mmaps the bytes once; every StoreHandle sharing it reads the
// same immutable pages, and the page cache — not N heap copies — backs
// concurrent decode.  On platforms without mmap the class degrades to one
// heap copy with identical semantics.
//
// Failure surfacing is part of the contract: open, stat, map, and read
// failures all throw telemetry::DecodeError naming the path (the historic
// stream-based loader silently returned an empty buffer when a read failed
// mid-file, which then misreported as "truncated store header" with no hint
// of the real cause).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "telemetry/binary_codec.hpp"

namespace unp::store {

class MappedFile {
 public:
  MappedFile() = default;

  /// Map `path` read-only; throws telemetry::DecodeError naming the path on
  /// any I/O failure.  An empty file maps to an empty view.
  [[nodiscard]] static MappedFile map(const std::string& path);

  MappedFile(MappedFile&& other) noexcept { *this = std::move(other); }
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  [[nodiscard]] std::string_view view() const noexcept {
    return {data_, size_};
  }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  /// True when backed by an actual mapping (false: heap fallback or empty).
  [[nodiscard]] bool is_mapped() const noexcept { return mapped_; }

 private:
  std::string path_;
  const char* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;
  std::string fallback_;  ///< owns the bytes when mmap is unavailable
};

}  // namespace unp::store
