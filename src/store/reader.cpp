#include "store/reader.hpp"

#include <exception>
#include <limits>

#include "common/bitops.hpp"
#include "common/require.hpp"

namespace unp::store {

namespace {

/// Append the kept rows of `src` to `dst` (no-op for undecoded columns).
template <typename T>
void append_kept(std::vector<T>& dst, const std::vector<T>& src,
                 const std::vector<std::uint32_t>& keep) {
  if (src.empty()) return;
  dst.reserve(dst.size() + keep.size());
  for (const std::uint32_t row : keep) dst.push_back(src[row]);
}

template <typename T>
void append_vector(std::vector<T>& dst, const std::vector<T>& src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

void append_columns(SegmentColumns& dst, const SegmentColumns& src) {
  append_vector(dst.node_index, src.node_index);
  append_vector(dst.first_seen, src.first_seen);
  append_vector(dst.last_seen, src.last_seen);
  append_vector(dst.raw_logs, src.raw_logs);
  append_vector(dst.address, src.address);
  append_vector(dst.expected, src.expected);
  append_vector(dst.actual, src.actual);
  append_vector(dst.temperature, src.temperature);
  append_vector(dst.fault_class, src.fault_class);
}

/// Precomputed vector form of a query whose predicates are all
/// range-expressible: inclusive ranges + a class membership set that the
/// mask kernels evaluate column-at-a-time.  Row-for-row equivalent to
/// Query::matches() whenever `usable` (proven by StoreQueryTest's
/// vector-vs-row cross-check):
///   - time:   since <= t < until  ==  t in [since, until - 1]
///   - node:   blade (+ optional soc) selects one contiguous dense-index
///             run; a SoC without a blade is a stride, not a range
///   - bits:   a class-aligned [min_bits, max_bits] is exactly a FaultClass
///             interval (see representative_bits); exact counts need the
///             pattern pair and stay on the row loop
struct VectorPredicates {
  bool usable = false;
  bool filter_time = false;
  std::int64_t time_lo = std::numeric_limits<std::int64_t>::min();
  std::int64_t time_hi = std::numeric_limits<std::int64_t>::max();
  bool filter_node = false;
  std::uint32_t node_lo = 0;
  std::uint32_t node_hi = 0;
  bool filter_class = false;
  std::uint8_t allowed_classes = 0;
};

VectorPredicates plan_vector_predicates(const Query& q) {
  VectorPredicates p;
  if (q.soc && !q.blade) return p;  // stride over node index: row loop
  const auto class_range = q.class_range();
  const bool need_bits = !q.bits_unconstrained();
  if (need_bits && !class_range) return p;  // exact bit counts: row loop
  p.usable = true;
  if (q.since || q.until) {
    p.filter_time = true;
    if (q.since) p.time_lo = *q.since;
    if (q.until) {
      if (*q.until == std::numeric_limits<std::int64_t>::min()) {
        p.time_lo = 1;  // empty range: nothing satisfies t < INT64_MIN
        p.time_hi = 0;
      } else {
        p.time_hi = *q.until - 1;
      }
    }
  }
  if (q.blade) {
    p.filter_node = true;
    p.node_lo = static_cast<std::uint32_t>(
        *q.blade * cluster::kSocsPerBlade + (q.soc ? *q.soc : 0));
    p.node_hi = static_cast<std::uint32_t>(
        *q.blade * cluster::kSocsPerBlade +
        (q.soc ? *q.soc : cluster::kSocsPerBlade - 1));
  }
  if (need_bits) {
    p.filter_class = true;
    for (int c = static_cast<int>(class_range->first);
         c <= static_cast<int>(class_range->second); ++c)
      p.allowed_classes |= static_cast<std::uint8_t>(1u << c);
  }
  return p;
}

}  // namespace

QueryResult StoreReader::run(const Query& query, const Options& options,
                             ScanStats* stats) const {
  const StoreHandle& handle = *handle_;
  const kernels::StoreKernels& k = options.kernels != nullptr
                                       ? *options.kernels
                                       : kernels::active_store_kernels();
  // Scan columns = what the predicate and projection need; last_seen is
  // stored as an offset from first_seen, so it drags first_seen in.
  std::uint32_t scan_columns = query.required_columns();
  if (scan_columns & kColLastSeen) scan_columns |= kColFirstSeen;
  const bool need_bits = !query.bits_unconstrained();
  const bool bits_from_class = need_bits && query.class_range().has_value();
  const VectorPredicates vp = plan_vector_predicates(query);

  const std::vector<SegmentZone>& zones = handle.zones();
  ScanStats local;
  local.segments_total = zones.size();
  std::vector<std::size_t> chosen;
  chosen.reserve(zones.size());
  for (std::size_t i = 0; i < zones.size(); ++i) {
    if (options.prune && !query.may_match(zones[i])) {
      ++local.segments_pruned;
      continue;
    }
    chosen.push_back(i);
  }
  local.segments_scanned = chosen.size();

  struct SegmentScan {
    SegmentColumns kept;
    std::uint64_t rows_scanned = 0;
    std::uint64_t rows_matched = 0;
    std::exception_ptr error;
  };
  std::vector<SegmentScan> scans(chosen.size());

  const auto scan_one = [&](std::size_t task) {
    SegmentScan& scan = scans[task];
    try {
      const SegmentZone& zone = zones[chosen[task]];
      const StoreHandle::SegmentLocation loc =
          handle.segment_location(chosen[task]);
      SegmentColumns cols;
      decode_segment(loc.bytes, loc.pos, zone, scan_columns, cols, k);
      if (!cols.last_seen.empty())
        for (std::size_t i = 0; i < cols.last_seen.size(); ++i)
          cols.last_seen[i] += cols.first_seen[i];
      scan.rows_scanned = zone.rows;
      const auto n = static_cast<std::size_t>(zone.rows);
      // Count-only scans (projection == 0) never need row indices; summing
      // the predicate mask replaces a million-entry keep vector per query.
      const bool need_rows = query.projection != 0;
      std::vector<std::uint32_t> keep;
      if (need_rows) keep.reserve(n);
      if (vp.usable) {
        std::vector<std::uint8_t> mask(n, 1);
        if (vp.filter_time)
          k.mask_range_i64(cols.first_seen.data(), n, vp.time_lo, vp.time_hi,
                           mask.data());
        if (vp.filter_node)
          k.mask_range_u32(cols.node_index.data(), n, vp.node_lo, vp.node_hi,
                           mask.data());
        if (vp.filter_class)
          k.mask_class(cols.fault_class.data(), n, vp.allowed_classes,
                       mask.data());
        if (need_rows) {
          for (std::uint32_t i = 0; i < zone.rows; ++i)
            if (mask[i] != 0) keep.push_back(i);
        } else {
          std::uint64_t matched = 0;
          for (std::size_t i = 0; i < n; ++i) matched += mask[i];
          scan.rows_matched = matched;
        }
      } else {
        for (std::uint32_t i = 0; i < zone.rows; ++i) {
          const std::uint32_t node =
              cols.node_index.empty() ? 0 : cols.node_index[i];
          const TimePoint t = cols.first_seen.empty() ? 0 : cols.first_seen[i];
          int bits = 1;
          if (need_bits) {
            bits = bits_from_class
                       ? representative_bits(
                             static_cast<FaultClass>(cols.fault_class[i]))
                       : flipped_bit_count(cols.expected[i], cols.actual[i]);
          }
          if (query.matches(node, t, bits)) keep.push_back(i);
        }
      }
      if (need_rows || !vp.usable) scan.rows_matched = keep.size();
      if (query.projection & kColNode)
        append_kept(scan.kept.node_index, cols.node_index, keep);
      if (query.projection & kColFirstSeen)
        append_kept(scan.kept.first_seen, cols.first_seen, keep);
      if (query.projection & kColLastSeen)
        append_kept(scan.kept.last_seen, cols.last_seen, keep);
      if (query.projection & kColRawLogs)
        append_kept(scan.kept.raw_logs, cols.raw_logs, keep);
      if (query.projection & kColAddress)
        append_kept(scan.kept.address, cols.address, keep);
      if (query.projection & kColPattern) {
        append_kept(scan.kept.expected, cols.expected, keep);
        append_kept(scan.kept.actual, cols.actual, keep);
      }
      if (query.projection & kColTemperature)
        append_kept(scan.kept.temperature, cols.temperature, keep);
      if (query.projection & kColClass)
        append_kept(scan.kept.fault_class, cols.fault_class, keep);
    } catch (...) {
      scan.error = std::current_exception();
    }
  };

  if (options.pool != nullptr && chosen.size() > 1) {
    options.pool->parallel_for(chosen.size(), scan_one);
  } else {
    for (std::size_t task = 0; task < chosen.size(); ++task) scan_one(task);
  }

  QueryResult result;
  for (SegmentScan& scan : scans) {
    if (scan.error) std::rethrow_exception(scan.error);
    local.rows_scanned += scan.rows_scanned;
    local.rows_matched += scan.rows_matched;
    // Directory order = canonical order; concatenation preserves it.
    append_columns(result.columns, scan.kept);
  }
  result.rows = local.rows_matched;
  if (stats != nullptr) *stats = local;
  return result;
}

std::vector<analysis::FaultRecord> StoreReader::materialize(
    const Query& query, const Options& options, ScanStats* stats) const {
  Query full = query;
  full.projection = kColNode | kColFirstSeen | kColLastSeen | kColRawLogs |
                    kColAddress | kColPattern | kColTemperature;
  const QueryResult result = run(full, options, stats);
  std::vector<analysis::FaultRecord> faults;
  faults.reserve(static_cast<std::size_t>(result.rows));
  const SegmentColumns& c = result.columns;
  for (std::size_t i = 0; i < result.rows; ++i) {
    analysis::FaultRecord f;
    f.node = cluster::node_from_index(static_cast<int>(c.node_index[i]));
    f.first_seen = c.first_seen[i];
    f.last_seen = c.last_seen[i];
    f.raw_logs = c.raw_logs[i];
    f.virtual_address = c.address[i];
    f.expected = c.expected[i];
    f.actual = c.actual[i];
    f.temperature_c = c.temperature[i];
    faults.push_back(f);
  }
  return faults;
}

std::vector<analysis::FaultRecord> StoreReader::replay(
    const Query& query, std::span<analysis::FaultSink* const> sinks,
    ThreadPool* pool) const {
  std::vector<analysis::FaultRecord> faults =
      materialize(query, Options{pool, true});
  analysis::run_fault_sinks(faults, {window()}, sinks, pool);
  return faults;
}

analysis::ExtractionResult StoreReader::extraction_result(
    ThreadPool* pool) const {
  analysis::ExtractionResult result;
  result.faults = materialize(Query{}, Options{pool, true});
  const StoredExtractionMeta& meta = extraction_meta();
  result.removed_nodes = meta.removed_nodes;
  result.total_raw_logs = meta.total_raw_logs;
  result.removed_raw_logs = meta.removed_raw_logs;
  return result;
}

}  // namespace unp::store
