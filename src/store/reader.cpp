#include "store/reader.hpp"

#include <cstring>
#include <exception>
#include <fstream>
#include <sstream>

#include "common/bitops.hpp"
#include "common/require.hpp"

namespace unp::store {

using telemetry::get_varint;
using telemetry::zigzag_decode;

StoreReader::StoreReader(std::string bytes) { add_part(std::move(bytes)); }

void StoreReader::add_part(std::string bytes) {
  Part part;
  part.bytes = std::move(bytes);
  const std::string& buf = part.bytes;

  std::size_t pos = 0;
  if (buf.size() < sizeof kStoreMagic + 1 + 8)
    throw DecodeError("truncated store header", buf.size());
  if (std::memcmp(buf.data(), kStoreMagic, sizeof kStoreMagic) != 0)
    throw DecodeError("bad UNPF magic", 0);
  pos = sizeof kStoreMagic;
  const int version = static_cast<unsigned char>(buf[pos]);
  if (version != kStoreVersion)
    throw DecodeError("unsupported UNPF version " + std::to_string(version),
                      pos);
  ++pos;
  std::uint64_t fingerprint = 0;
  for (std::size_t i = 0; i < 8; ++i)
    fingerprint |= static_cast<std::uint64_t>(
                       static_cast<unsigned char>(buf[pos + i]))
                   << (8 * i);
  pos += 8;
  CampaignWindow window;
  window.start = zigzag_decode(get_varint(buf, pos));
  window.end = zigzag_decode(get_varint(buf, pos));
  StoredScanProfile scan_profile = decode_scan_profile(buf, pos);
  StoredExtractionMeta extraction_meta = decode_extraction_meta(buf, pos);
  const std::uint64_t segment_count = get_varint(buf, pos);
  if (segment_count > buf.size())  // each segment occupies >= 1 byte
    throw DecodeError("segment count out of range", pos);
  std::vector<SegmentZone> zones;
  zones.reserve(static_cast<std::size_t>(segment_count));
  for (std::uint64_t i = 0; i < segment_count; ++i)
    zones.push_back(decode_zone(buf, pos));
  part.data_offset = pos;

  // The data section must be exactly the contiguous concatenation the
  // directory declares — anything else is a torn or corrupt file.
  std::uint64_t expected_offset = 0;
  std::uint64_t part_rows = 0;
  for (const SegmentZone& zone : zones) {
    if (zone.offset != expected_offset)
      throw DecodeError("zone directory not contiguous", part.data_offset);
    expected_offset += zone.size;
    part_rows += zone.rows;
  }
  if (part.data_offset + expected_offset != buf.size())
    throw DecodeError("data section size mismatch (directory declares " +
                          std::to_string(expected_offset) + " bytes, file has " +
                          std::to_string(buf.size() - part.data_offset) + ")",
                      part.data_offset);

  if (parts_.empty()) {
    fingerprint_ = fingerprint;
    window_ = window;
    scan_profile_ = std::move(scan_profile);
    extraction_meta_ = std::move(extraction_meta);
  } else {
    if (fingerprint != fingerprint_)
      throw DecodeError("store part fingerprint mismatch", 0);
    if (window.start != window_.start || window.end != window_.end)
      throw DecodeError("store part campaign window mismatch", 0);
  }
  const std::size_t part_index = parts_.size();
  for (const SegmentZone& zone : zones) {
    zones_.push_back(zone);
    zone_part_.push_back(part_index);
  }
  rows_total_ += part_rows;
  parts_.push_back(std::move(part));
}

namespace {

std::string read_file_bytes(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is.good())
    throw ContractViolation("cannot open store file " + path);
  std::ostringstream buffer;
  buffer << is.rdbuf();
  if (!is.good() && !is.eof())
    throw ContractViolation("cannot read store file " + path);
  return std::move(buffer).str();
}

}  // namespace

StoreReader StoreReader::open(const std::string& path) {
  return StoreReader(read_file_bytes(path));
}

StoreReader StoreReader::open_partitioned(
    const std::vector<std::string>& paths) {
  UNP_REQUIRE(!paths.empty());
  StoreReader reader;
  for (const std::string& path : paths) {
    try {
      reader.add_part(read_file_bytes(path));
    } catch (const DecodeError& e) {
      throw DecodeError("store part " + path + ": " + e.detail(),
                        e.byte_offset());
    }
  }
  return reader;
}

namespace {

/// Append the kept rows of `src` to `dst` (no-op for undecoded columns).
template <typename T>
void append_kept(std::vector<T>& dst, const std::vector<T>& src,
                 const std::vector<std::uint32_t>& keep) {
  if (src.empty()) return;
  dst.reserve(dst.size() + keep.size());
  for (const std::uint32_t row : keep) dst.push_back(src[row]);
}

template <typename T>
void append_vector(std::vector<T>& dst, const std::vector<T>& src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

void append_columns(SegmentColumns& dst, const SegmentColumns& src) {
  append_vector(dst.node_index, src.node_index);
  append_vector(dst.first_seen, src.first_seen);
  append_vector(dst.last_seen, src.last_seen);
  append_vector(dst.raw_logs, src.raw_logs);
  append_vector(dst.address, src.address);
  append_vector(dst.expected, src.expected);
  append_vector(dst.actual, src.actual);
  append_vector(dst.temperature, src.temperature);
  append_vector(dst.fault_class, src.fault_class);
}

}  // namespace

QueryResult StoreReader::run(const Query& query, const Options& options,
                             ScanStats* stats) const {
  // Scan columns = what the predicate and projection need; last_seen is
  // stored as an offset from first_seen, so it drags first_seen in.
  std::uint32_t scan_columns = query.required_columns();
  if (scan_columns & kColLastSeen) scan_columns |= kColFirstSeen;
  const bool need_bits = !query.bits_unconstrained();
  const bool bits_from_class = need_bits && query.class_range().has_value();

  ScanStats local;
  local.segments_total = zones_.size();
  std::vector<std::size_t> chosen;
  chosen.reserve(zones_.size());
  for (std::size_t i = 0; i < zones_.size(); ++i) {
    if (options.prune && !query.may_match(zones_[i])) {
      ++local.segments_pruned;
      continue;
    }
    chosen.push_back(i);
  }
  local.segments_scanned = chosen.size();

  struct SegmentScan {
    SegmentColumns kept;
    std::uint64_t rows_scanned = 0;
    std::uint64_t rows_matched = 0;
    std::exception_ptr error;
  };
  std::vector<SegmentScan> scans(chosen.size());

  const auto scan_one = [&](std::size_t task) {
    SegmentScan& scan = scans[task];
    try {
      const SegmentZone& zone = zones_[chosen[task]];
      const Part& part = parts_[zone_part_[chosen[task]]];
      SegmentColumns cols;
      decode_segment(part.bytes,
                     part.data_offset + static_cast<std::size_t>(zone.offset),
                     zone, scan_columns, cols);
      if (!cols.last_seen.empty())
        for (std::size_t i = 0; i < cols.last_seen.size(); ++i)
          cols.last_seen[i] += cols.first_seen[i];
      scan.rows_scanned = zone.rows;
      std::vector<std::uint32_t> keep;
      keep.reserve(zone.rows);
      for (std::uint32_t i = 0; i < zone.rows; ++i) {
        const std::uint32_t node =
            cols.node_index.empty() ? 0 : cols.node_index[i];
        const TimePoint t = cols.first_seen.empty() ? 0 : cols.first_seen[i];
        int bits = 1;
        if (need_bits) {
          bits = bits_from_class
                     ? representative_bits(
                           static_cast<FaultClass>(cols.fault_class[i]))
                     : flipped_bit_count(cols.expected[i], cols.actual[i]);
        }
        if (query.matches(node, t, bits)) keep.push_back(i);
      }
      scan.rows_matched = keep.size();
      if (query.projection & kColNode)
        append_kept(scan.kept.node_index, cols.node_index, keep);
      if (query.projection & kColFirstSeen)
        append_kept(scan.kept.first_seen, cols.first_seen, keep);
      if (query.projection & kColLastSeen)
        append_kept(scan.kept.last_seen, cols.last_seen, keep);
      if (query.projection & kColRawLogs)
        append_kept(scan.kept.raw_logs, cols.raw_logs, keep);
      if (query.projection & kColAddress)
        append_kept(scan.kept.address, cols.address, keep);
      if (query.projection & kColPattern) {
        append_kept(scan.kept.expected, cols.expected, keep);
        append_kept(scan.kept.actual, cols.actual, keep);
      }
      if (query.projection & kColTemperature)
        append_kept(scan.kept.temperature, cols.temperature, keep);
      if (query.projection & kColClass)
        append_kept(scan.kept.fault_class, cols.fault_class, keep);
    } catch (...) {
      scan.error = std::current_exception();
    }
  };

  if (options.pool != nullptr && chosen.size() > 1) {
    options.pool->parallel_for(chosen.size(), scan_one);
  } else {
    for (std::size_t task = 0; task < chosen.size(); ++task) scan_one(task);
  }

  QueryResult result;
  for (SegmentScan& scan : scans) {
    if (scan.error) std::rethrow_exception(scan.error);
    local.rows_scanned += scan.rows_scanned;
    local.rows_matched += scan.rows_matched;
    // Directory order = canonical order; concatenation preserves it.
    append_columns(result.columns, scan.kept);
  }
  result.rows = local.rows_matched;
  if (stats != nullptr) *stats = local;
  return result;
}

std::vector<analysis::FaultRecord> StoreReader::materialize(
    const Query& query, const Options& options, ScanStats* stats) const {
  Query full = query;
  full.projection = kColNode | kColFirstSeen | kColLastSeen | kColRawLogs |
                    kColAddress | kColPattern | kColTemperature;
  const QueryResult result = run(full, options, stats);
  std::vector<analysis::FaultRecord> faults;
  faults.reserve(static_cast<std::size_t>(result.rows));
  const SegmentColumns& c = result.columns;
  for (std::size_t i = 0; i < result.rows; ++i) {
    analysis::FaultRecord f;
    f.node = cluster::node_from_index(static_cast<int>(c.node_index[i]));
    f.first_seen = c.first_seen[i];
    f.last_seen = c.last_seen[i];
    f.raw_logs = c.raw_logs[i];
    f.virtual_address = c.address[i];
    f.expected = c.expected[i];
    f.actual = c.actual[i];
    f.temperature_c = c.temperature[i];
    faults.push_back(f);
  }
  return faults;
}

std::vector<analysis::FaultRecord> StoreReader::replay(
    const Query& query, std::span<analysis::FaultSink* const> sinks,
    ThreadPool* pool) const {
  std::vector<analysis::FaultRecord> faults =
      materialize(query, Options{pool, true});
  analysis::run_fault_sinks(faults, {window_}, sinks, pool);
  return faults;
}

analysis::ExtractionResult StoreReader::extraction_result(
    ThreadPool* pool) const {
  analysis::ExtractionResult result;
  result.faults = materialize(Query{}, Options{pool, true});
  result.removed_nodes = extraction_meta_.removed_nodes;
  result.total_raw_logs = extraction_meta_.total_raw_logs;
  result.removed_raw_logs = extraction_meta_.removed_raw_logs;
  return result;
}

}  // namespace unp::store
