// UNPF: persistent columnar store for extracted faults ("write once from the
// streaming pipeline, query many times without re-simulation").
//
// The live pipeline answers every question by re-simulating or re-scanning
// the flat UNPS record stream; the fault population it distills (tens of
// thousands of FaultRecords out of >25M raw logs) is tiny by comparison and
// gets interrogated over and over (Figs 1-13, Tables I-II, policy sweeps).
// UNPF stores that population column-major with per-column compression and
// per-segment zone maps, so repeated queries pay only for the columns and
// segments they touch.
//
// File layout (little-endian, varint = LEB128 via telemetry/binary_codec):
//
//   file    := magic "UNPF" u8 version
//              u64 fingerprint            (campaign cache key; provenance)
//              varint zigzag(window.start) varint zigzag(window.end)
//              scan_profile extraction_meta
//              varint segment_count directory data
//   directory := segment_count * zone_entry   (offsets relative to data)
//   data    := concatenated segment bodies
//
//   segment := varint row_count column*       (fixed column order)
//   column  := varint byte_len bytes          (skippable without decoding)
//
// Column encodings (faults arrive in canonical (time, node, address) order):
//
//   node        dictionary: ascending distinct dense node indices, then one
//               bit-packed dictionary index per row (width = bits needed for
//               the dictionary size; 0 bits when a segment holds one node)
//   first_seen  zigzag delta varints (monotone non-decreasing per stream,
//               restarted per segment so segments decode independently)
//   last_seen   varint (last_seen - first_seen) per row (always >= 0)
//   raw_logs    varint per row
//   address     zigzag delta varints (addresses cluster per node)
//   expected    varint per row        } the corruption pattern pair
//   actual      varint per row        }
//   temperature presence bitmap (1 bit per row; 0 = exact kNoTemperature),
//               then raw f64 bits for each present row
//   class       bit-packed 2-bit FaultClass per row (redundant with the
//               pattern pair, but lets multiplicity predicates run without
//               decoding two full varint columns)
//
// Every zone entry stores min/max per filterable column, enabling segment
// pruning (predicate pushdown) before any row is decoded.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/extraction.hpp"
#include "common/civil_time.hpp"
#include "common/histogram.hpp"
#include "store/kernels/kernels.hpp"
#include "telemetry/binary_codec.hpp"

namespace unp::store {

using telemetry::DecodeError;

inline constexpr char kStoreMagic[4] = {'U', 'N', 'P', 'F'};
inline constexpr std::uint8_t kStoreVersion = 1;

/// Default rows per segment.  Small enough that selective predicates prune
/// most of the campaign's segments, large enough that per-segment overhead
/// (dictionary, zone entry) stays negligible.
inline constexpr std::size_t kDefaultSegmentRows = 1024;

/// Coarse corruption-multiplicity class, bit-packed two bits per row.
enum class FaultClass : std::uint8_t {
  kSingleBit = 0,  ///< exactly 1 flipped bit
  kDoubleBit = 1,  ///< exactly 2
  kFewBit = 2,     ///< 3..8
  kManyBit = 3,    ///< > 8
};

[[nodiscard]] constexpr FaultClass classify_bits(int flipped_bits) noexcept {
  if (flipped_bits <= 1) return FaultClass::kSingleBit;
  if (flipped_bits == 2) return FaultClass::kDoubleBit;
  if (flipped_bits <= 8) return FaultClass::kFewBit;
  return FaultClass::kManyBit;
}

[[nodiscard]] const char* to_string(FaultClass c) noexcept;

/// Which columns a scan must materialize.  kColPattern covers the
/// expected/actual pair (they are only meaningful together).
enum Column : std::uint32_t {
  kColNode = 1u << 0,
  kColFirstSeen = 1u << 1,
  kColLastSeen = 1u << 2,
  kColRawLogs = 1u << 3,
  kColAddress = 1u << 4,
  kColPattern = 1u << 5,
  kColTemperature = 1u << 6,
  kColClass = 1u << 7,
};
inline constexpr std::uint32_t kAllColumns = 0xFF;

/// Zone map + location of one segment: min/max per filterable column, used
/// to skip whole segments before decoding a single row.
struct SegmentZone {
  std::uint64_t offset = 0;  ///< body start, relative to the data section
  std::uint64_t size = 0;    ///< body size in bytes
  std::uint32_t rows = 0;
  TimePoint time_min = 0, time_max = 0;          ///< first_seen
  std::uint32_t node_min = 0, node_max = 0;      ///< dense node index
  std::uint64_t addr_min = 0, addr_max = 0;      ///< virtual address
  std::uint8_t bits_min = 0, bits_max = 0;       ///< flipped-bit count
};

/// Decoded columns of one segment; vectors are empty unless requested.
struct SegmentColumns {
  std::vector<std::uint32_t> node_index;
  std::vector<TimePoint> first_seen;
  std::vector<TimePoint> last_seen;
  std::vector<std::uint64_t> raw_logs;
  std::vector<std::uint64_t> address;
  std::vector<Word> expected;
  std::vector<Word> actual;
  std::vector<double> temperature;
  std::vector<std::uint8_t> fault_class;  ///< FaultClass codes
};

// --- bit packing (LSB first) ---------------------------------------------

/// Append values packed `width` bits each (0 <= width <= 64).  A width of 0
/// writes nothing (all values must then be 0).
void pack_bits(std::string& out, std::span<const std::uint64_t> values, int width);

/// Inverse of pack_bits: read `count` values of `width` bits from
/// [pos, end); throws DecodeError when the packed block is short.  Runs on
/// the process-wide kernel set (byte-identical on every ISA).
void unpack_bits(std::string_view in, std::size_t pos, std::size_t end,
                 std::size_t count, int width, std::vector<std::uint64_t>& out);

// --- segment codec --------------------------------------------------------

/// Reusable scratch for segment encoding: the gather buffers the batch
/// encode kernels read from and the per-column body buffer.  One arena per
/// builder; capacity persists across segments.
struct SegmentEncodeArena {
  std::vector<std::uint64_t> values;  ///< gathered column values
  std::vector<std::uint32_t> dict;    ///< node dictionary scratch
  std::string column;                 ///< reused column-body buffer
};

/// Encode `rows` (non-empty, canonical order) into a segment body and fill
/// `zone` (offset/size are left to the directory writer).
[[nodiscard]] std::string encode_segment(
    std::span<const analysis::FaultRecord> rows, SegmentZone& zone);

/// Hot-path form of encode_segment: append the segment body to `out`
/// directly (no body string to copy), running the varint columns through an
/// explicit telemetry encode kernel set.  Sets zone.size to the body length;
/// zone.offset is left to the caller.  Output is byte-identical to
/// encode_segment for every kernel set.
void encode_segment_into(std::span<const analysis::FaultRecord> rows,
                         SegmentZone& zone, std::string& out,
                         SegmentEncodeArena& arena,
                         const telemetry::kernels::EncodeKernels& encode);

/// Decode the columns selected by `columns` from the segment body at
/// [pos, pos + zone.size) of `bytes`.  Unselected columns are skipped via
/// their length prefix and left empty in `out`.  Throws DecodeError (with
/// offsets relative to `bytes`) on corrupt input.  The kernel-taking
/// overload runs the column loops on an explicit set (the perf gate
/// measures scalar vs vector through it); the other uses the process-wide
/// set.  All sets decode byte-identically.
void decode_segment(std::string_view bytes, std::size_t pos,
                    const SegmentZone& zone, std::uint32_t columns,
                    SegmentColumns& out, const kernels::StoreKernels& k);
void decode_segment(std::string_view bytes, std::size_t pos,
                    const SegmentZone& zone, std::uint32_t columns,
                    SegmentColumns& out);

/// Zone directory entry codec (offsets relative to the file's data section).
void encode_zone(std::string& out, const SegmentZone& zone);
[[nodiscard]] SegmentZone decode_zone(std::string_view in, std::size_t& pos);

// --- campaign-level metadata sections -------------------------------------

/// Scan-session metadata the figure renderers need besides the faults
/// themselves (Figs 1/2/9 and the headline are scan-side products).  Stored
/// with raw f64 bits so a store-backed report is byte-identical to the live
/// pipeline's.
struct StoredScanProfile {
  int monitored_nodes = 0;
  Grid2D hours{cluster::kStudyBlades, cluster::kSocsPerBlade};
  Grid2D terabyte_hours{cluster::kStudyBlades, cluster::kSocsPerBlade};
  std::vector<double> daily_terabyte_hours;
  double total_hours = 0.0;
  double total_terabyte_hours = 0.0;
};

/// Extraction accounting carried alongside the fault columns so headline
/// statistics (removed fraction, raw totals) replay without the raw stream.
struct StoredExtractionMeta {
  std::vector<cluster::NodeId> removed_nodes;
  std::uint64_t total_raw_logs = 0;
  std::uint64_t removed_raw_logs = 0;
};

void encode_scan_profile(std::string& out, const StoredScanProfile& profile);
[[nodiscard]] StoredScanProfile decode_scan_profile(std::string_view in,
                                                    std::size_t& pos);

void encode_extraction_meta(std::string& out, const StoredExtractionMeta& meta);
[[nodiscard]] StoredExtractionMeta decode_extraction_meta(std::string_view in,
                                                          std::size_t& pos);

}  // namespace unp::store
