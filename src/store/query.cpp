#include "store/query.hpp"

#include "common/require.hpp"

namespace unp::store {

std::uint32_t Query::required_columns() const {
  std::uint32_t columns = projection;
  if (since || until) columns |= kColFirstSeen;
  if (blade || soc) columns |= kColNode;
  if (!bits_unconstrained())
    columns |= class_range() ? kColClass : kColPattern;
  return columns;
}

std::optional<std::pair<FaultClass, FaultClass>> Query::class_range()
    const noexcept {
  std::optional<FaultClass> lo;
  if (min_bits <= 1)
    lo = FaultClass::kSingleBit;
  else if (min_bits == 2)
    lo = FaultClass::kDoubleBit;
  else if (min_bits == 3)
    lo = FaultClass::kFewBit;
  else if (min_bits == 9)
    lo = FaultClass::kManyBit;

  std::optional<FaultClass> hi;
  if (max_bits >= 32)
    hi = FaultClass::kManyBit;
  else if (max_bits == 8)
    hi = FaultClass::kFewBit;
  else if (max_bits == 2)
    hi = FaultClass::kDoubleBit;
  else if (max_bits == 1)
    hi = FaultClass::kSingleBit;

  if (!lo || !hi || *lo > *hi) return std::nullopt;
  return std::pair{*lo, *hi};
}

bool Query::may_match(const SegmentZone& zone) const noexcept {
  if (since && zone.time_max < *since) return false;
  if (until && zone.time_min >= *until) return false;
  if (blade) {
    // A blade's SoCs occupy one contiguous dense-index run; with a SoC the
    // run collapses to one index.  A SoC selector alone touches one index
    // per blade (stride kSocsPerBlade), which zone intervals cannot express,
    // so that case filters at row level only.
    const std::uint32_t lo = static_cast<std::uint32_t>(
        *blade * cluster::kSocsPerBlade + (soc ? *soc : 0));
    const std::uint32_t hi = static_cast<std::uint32_t>(
        *blade * cluster::kSocsPerBlade +
        (soc ? *soc : cluster::kSocsPerBlade - 1));
    if (zone.node_max < lo || zone.node_min > hi) return false;
  }
  if (zone.bits_max < min_bits || zone.bits_min > max_bits) return false;
  return true;
}

bool Query::matches(std::uint32_t node_index, TimePoint first_seen,
                    int flipped_bits) const noexcept {
  if (since && first_seen < *since) return false;
  if (until && first_seen >= *until) return false;
  if (blade &&
      node_index / static_cast<std::uint32_t>(cluster::kSocsPerBlade) !=
          static_cast<std::uint32_t>(*blade))
    return false;
  if (soc && node_index % static_cast<std::uint32_t>(cluster::kSocsPerBlade) !=
                 static_cast<std::uint32_t>(*soc))
    return false;
  return flipped_bits >= min_bits && flipped_bits <= max_bits;
}

std::string Query::describe() const {
  std::string out;
  const auto conjoin = [&out](const std::string& term) {
    if (!out.empty()) out += " and ";
    out += term;
  };
  if (since && until)
    conjoin("first_seen in [" + std::to_string(*since) + ", " +
            std::to_string(*until) + ")");
  else if (since)
    conjoin("first_seen >= " + std::to_string(*since));
  else if (until)
    conjoin("first_seen < " + std::to_string(*until));
  if (blade && soc)
    conjoin("node " +
            cluster::node_name(cluster::NodeId{*blade, *soc}));
  else if (blade)
    conjoin("blade " + std::to_string(*blade));
  else if (soc)
    conjoin("soc " + std::to_string(*soc));
  if (!bits_unconstrained()) {
    if (min_bits == max_bits)
      conjoin("flipped_bits == " + std::to_string(min_bits));
    else
      conjoin("flipped_bits in [" + std::to_string(min_bits) + ", " +
              std::to_string(max_bits) + "]");
  }
  return out.empty() ? "all faults" : out;
}

}  // namespace unp::store
