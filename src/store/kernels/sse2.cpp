// SSE2 store kernels (x86-64 baseline: always compiled in, always runnable).
//
// The varint fast path classifies 16 input bytes with one movemask: a zero
// mask means 16 single-byte values, widened to u64 lanes with unpack
// chains; otherwise the leading single-byte run is widened and the first
// multi-byte value goes through the scalar oracle (identical DecodeError
// behaviour by construction).
#if defined(__x86_64__) || defined(_M_X64)

#include <emmintrin.h>

#include <bit>

#include "store/kernels/kernel_table.hpp"
#include "telemetry/binary_codec.hpp"

namespace unp::store::kernels {
namespace {

/// Widen 16 bytes to 16 u64 lanes (zero-extended).
inline void widen16(__m128i block, std::uint64_t* out) {
  const __m128i zero = _mm_setzero_si128();
  const __m128i w0 = _mm_unpacklo_epi8(block, zero);  // bytes 0..7  as u16
  const __m128i w1 = _mm_unpackhi_epi8(block, zero);  // bytes 8..15 as u16
  const __m128i d0 = _mm_unpacklo_epi16(w0, zero);    // bytes 0..3  as u32
  const __m128i d1 = _mm_unpackhi_epi16(w0, zero);
  const __m128i d2 = _mm_unpacklo_epi16(w1, zero);
  const __m128i d3 = _mm_unpackhi_epi16(w1, zero);
  auto* o = reinterpret_cast<__m128i*>(out);
  _mm_storeu_si128(o + 0, _mm_unpacklo_epi32(d0, zero));
  _mm_storeu_si128(o + 1, _mm_unpackhi_epi32(d0, zero));
  _mm_storeu_si128(o + 2, _mm_unpacklo_epi32(d1, zero));
  _mm_storeu_si128(o + 3, _mm_unpackhi_epi32(d1, zero));
  _mm_storeu_si128(o + 4, _mm_unpacklo_epi32(d2, zero));
  _mm_storeu_si128(o + 5, _mm_unpackhi_epi32(d2, zero));
  _mm_storeu_si128(o + 6, _mm_unpacklo_epi32(d3, zero));
  _mm_storeu_si128(o + 7, _mm_unpackhi_epi32(d3, zero));
}

std::size_t decode_varints_sse2(std::string_view in, std::size_t pos,
                                std::size_t count, std::uint64_t* out) {
  const auto* bytes = reinterpret_cast<const unsigned char*>(in.data());
  std::size_t i = 0;
  while (i < count) {
    if (count - i >= 16 && pos + 16 <= in.size()) {
      const __m128i block =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(bytes + pos));
      const unsigned cont =
          static_cast<unsigned>(_mm_movemask_epi8(block));  // continuation bits
      if (cont == 0) {
        widen16(block, out + i);
        pos += 16;
        i += 16;
        continue;
      }
      std::uint64_t unused = 0;
      pos += decode_varint_window<false, 16>(bytes + pos, cont, count, &i,
                                             &unused, out);
      if (i < count && std::countr_one(cont) + 1 > 8)
        out[i++] = telemetry::get_varint(in, pos);  // oversized first value
      continue;
    }
    out[i++] = telemetry::get_varint(in, pos);
  }
  return pos;
}

std::size_t decode_zigzag_deltas_sse2(std::string_view in, std::size_t pos,
                                      std::size_t count, std::uint64_t base,
                                      std::uint64_t* out) {
  const auto* bytes = reinterpret_cast<const unsigned char*>(in.data());
  std::uint64_t prev = base;
  std::size_t i = 0;
  while (i < count) {
    if (count - i >= 16 && pos + 16 <= in.size()) {
      const __m128i block =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(bytes + pos));
      const auto cont = static_cast<std::uint32_t>(_mm_movemask_epi8(block));
      pos += decode_varint_window<true, 16>(bytes + pos, cont, count, &i,
                                            &prev, out);
      if (i < count && std::countr_one(cont) + 1 > 8) {
        prev += zigzag_delta_u64(telemetry::get_varint(in, pos));
        out[i++] = prev;
      }
      continue;
    }
    prev += zigzag_delta_u64(telemetry::get_varint(in, pos));
    out[i++] = prev;
  }
  return pos;
}

void unpack_bits_sse2(const unsigned char* base, std::size_t count, int width,
                      std::uint64_t* out) {
  std::size_t i = 0;
  switch (width) {
    case 1:
      for (; i + 8 <= count; i += 8) {
        const unsigned b = base[i >> 3];
        for (int j = 0; j < 8; ++j) out[i + static_cast<std::size_t>(j)] =
            (b >> j) & 1u;
      }
      break;
    case 2:
      for (; i + 4 <= count; i += 4) {
        const unsigned b = base[i >> 2];
        out[i] = b & 3u;
        out[i + 1] = (b >> 2) & 3u;
        out[i + 2] = (b >> 4) & 3u;
        out[i + 3] = (b >> 6) & 3u;
      }
      break;
    case 4:
      for (; i + 2 <= count; i += 2) {
        const unsigned b = base[i >> 1];
        out[i] = b & 15u;
        out[i + 1] = (b >> 4) & 15u;
      }
      break;
    case 8:
      for (; i + 16 <= count; i += 16)
        widen16(_mm_loadu_si128(reinterpret_cast<const __m128i*>(base + i)),
                out + i);
      break;
    default:
      break;
  }
  if (i < count) {
    // Tail (and every width without a fast path) via the bit-cursor oracle,
    // restarted at the current bit offset — which is byte-aligned for every
    // fast-path width, so handing it `base + bytes consumed` is exact.
    const std::size_t bits = i * static_cast<std::size_t>(width);
    unpack_bits_scalar(base + (bits >> 3), count - i, width, out + i);
  }
}

void mask_range_u32_sse2(const std::uint32_t* v, std::size_t n,
                         std::uint32_t lo, std::uint32_t hi,
                         std::uint8_t* mask) {
  const __m128i bias = _mm_set1_epi32(static_cast<int>(0x80000000u));
  const __m128i vlo = _mm_set1_epi32(static_cast<int>(lo ^ 0x80000000u));
  const __m128i vhi = _mm_set1_epi32(static_cast<int>(hi ^ 0x80000000u));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i x = _mm_xor_si128(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(v + i)), bias);
    const __m128i below = _mm_cmpgt_epi32(vlo, x);
    const __m128i above = _mm_cmpgt_epi32(x, vhi);
    const __m128i out_of_range = _mm_or_si128(below, above);
    const unsigned bits = static_cast<unsigned>(
        _mm_movemask_ps(_mm_castsi128_ps(out_of_range)));
    for (int j = 0; j < 4; ++j) mask[i + static_cast<std::size_t>(j)] &=
        static_cast<std::uint8_t>(((bits >> j) & 1u) ^ 1u);
  }
  for (; i < n; ++i)
    mask[i] &= static_cast<std::uint8_t>(lo <= v[i] && v[i] <= hi);
}

void mask_range_i64_sse2(const std::int64_t* v, std::size_t n, std::int64_t lo,
                         std::int64_t hi, std::uint8_t* mask) {
  // SSE2 has no 64-bit compare; the scalar form is branch-free already.
  for (std::size_t i = 0; i < n; ++i)
    mask[i] &= static_cast<std::uint8_t>(lo <= v[i] && v[i] <= hi);
}

void mask_class_sse2(const std::uint8_t* codes, std::size_t n,
                     std::uint8_t allowed, std::uint8_t* mask) {
  for (std::size_t i = 0; i < n; ++i)
    mask[i] &= static_cast<std::uint8_t>((allowed >> codes[i]) & 1);
}

}  // namespace

const StoreKernels& sse2_store_kernel_set() noexcept {
  static constexpr StoreKernels kSet{
      Isa::kSse2,          "sse2",
      decode_varints_sse2, unpack_bits_sse2,
      mask_range_u32_sse2, mask_range_i64_sse2,
      mask_class_sse2,     decode_zigzag_deltas_sse2,
  };
  return kSet;
}

}  // namespace unp::store::kernels

#endif  // x86-64
