// AVX2 store kernels.  Compiled with -mavx2 (see CMakeLists) and reached
// only through the dispatcher's runtime cpuid check.
//
// Same structure as the SSE2 set with 32-byte blocks: one 256-bit movemask
// classifies 32 varint bytes at once, and vpmovzxbq widens four bytes to
// four u64 lanes per step.  Mixed blocks funnel through the scalar oracle
// so DecodeError offsets stay identical.
#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include <bit>
#include <cstring>

#include "store/kernels/kernel_table.hpp"
#include "telemetry/binary_codec.hpp"

namespace unp::store::kernels {
namespace {

/// Widen 4 bytes at `p` to 4 u64 lanes.
inline __m256i widen4(const unsigned char* p) {
  std::uint32_t quad;
  std::memcpy(&quad, p, sizeof quad);
  return _mm256_cvtepu8_epi64(_mm_cvtsi32_si128(static_cast<int>(quad)));
}

inline void widen32(const unsigned char* p, std::uint64_t* out) {
  auto* o = reinterpret_cast<__m256i*>(out);
  for (int g = 0; g < 8; ++g)
    _mm256_storeu_si256(o + g, widen4(p + 4 * g));
}

/// Zigzag-decode 4 u64 lanes: (v >> 1) ^ -(v & 1).
inline __m256i zigzag4(__m256i v) {
  const __m256i sign = _mm256_sub_epi64(
      _mm256_setzero_si256(),
      _mm256_and_si256(v, _mm256_set1_epi64x(1)));
  return _mm256_xor_si256(_mm256_srli_epi64(v, 1), sign);
}

std::size_t decode_zigzag_deltas_avx2(std::string_view in, std::size_t pos,
                                      std::size_t count, std::uint64_t base,
                                      std::uint64_t* out) {
  const auto* bytes = reinterpret_cast<const unsigned char*>(in.data());
  std::uint64_t prev = base;
  std::size_t i = 0;
  while (i < count) {
    if (count - i >= 32 && pos + 32 <= in.size()) {
      const __m256i block = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(bytes + pos));
      const auto cont =
          static_cast<std::uint32_t>(_mm256_movemask_epi8(block));
      if (cont == 0) {
        // 32 single-byte deltas: widen + zigzag vectorized, then one
        // unrolled accumulate — no scratch buffer, no second pass.
        alignas(32) std::uint64_t z[32];
        auto* zo = reinterpret_cast<__m256i*>(z);
        for (int g = 0; g < 8; ++g)
          _mm256_store_si256(zo + g, zigzag4(widen4(bytes + pos + 4 * g)));
        for (int j = 0; j < 32; ++j) {
          prev += z[j];
          out[i + static_cast<std::size_t>(j)] = prev;
        }
        pos += 32;
        i += 32;
        continue;
      }
      pos += decode_varint_window<true, 32>(bytes + pos, cont, count, &i,
                                            &prev, out);
      if (i < count && std::countr_one(cont) + 1 > 8) {
        // Oversized first value: the oracle decodes it (or throws the
        // oracle's DecodeError) and guarantees forward progress.
        prev += zigzag_delta_u64(telemetry::get_varint(in, pos));
        out[i++] = prev;
      }
      continue;
    }
    prev += zigzag_delta_u64(telemetry::get_varint(in, pos));
    out[i++] = prev;
  }
  return pos;
}

std::size_t decode_varints_avx2(std::string_view in, std::size_t pos,
                                std::size_t count, std::uint64_t* out) {
  const auto* bytes = reinterpret_cast<const unsigned char*>(in.data());
  std::size_t i = 0;
  while (i < count) {
    if (count - i >= 32 && pos + 32 <= in.size()) {
      const __m256i block = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(bytes + pos));
      const auto cont = static_cast<std::uint32_t>(
          _mm256_movemask_epi8(block));  // continuation bits, one per byte
      if (cont == 0) {
        widen32(bytes + pos, out + i);
        pos += 32;
        i += 32;
        continue;
      }
      std::uint64_t unused = 0;
      pos += decode_varint_window<false, 32>(bytes + pos, cont, count, &i,
                                             &unused, out);
      if (i < count && std::countr_one(cont) + 1 > 8)
        out[i++] = telemetry::get_varint(in, pos);  // oversized first value
      continue;
    }
    out[i++] = telemetry::get_varint(in, pos);
  }
  return pos;
}

void unpack_bits_avx2(const unsigned char* base, std::size_t count, int width,
                      std::uint64_t* out) {
  std::size_t i = 0;
  switch (width) {
    case 1:
      for (; i + 8 <= count; i += 8) {
        const unsigned b = base[i >> 3];
        for (int j = 0; j < 8; ++j) out[i + static_cast<std::size_t>(j)] =
            (b >> j) & 1u;
      }
      break;
    case 2: {
      // One byte -> four u64 lanes via a per-lane variable shift.
      const __m256i shifts = _mm256_set_epi64x(6, 4, 2, 0);
      const __m256i three = _mm256_set1_epi64x(3);
      for (; i + 4 <= count; i += 4) {
        const __m256i b =
            _mm256_set1_epi64x(static_cast<long long>(base[i >> 2]));
        _mm256_storeu_si256(
            reinterpret_cast<__m256i*>(out + i),
            _mm256_and_si256(_mm256_srlv_epi64(b, shifts), three));
      }
      break;
    }
    case 4:
      for (; i + 2 <= count; i += 2) {
        const unsigned b = base[i >> 1];
        out[i] = b & 15u;
        out[i + 1] = (b >> 4) & 15u;
      }
      break;
    case 8:
      for (; i + 32 <= count; i += 32) widen32(base + i, out + i);
      break;
    default:
      break;
  }
  if (i < count) {
    const std::size_t bits = i * static_cast<std::size_t>(width);
    unpack_bits_scalar(base + (bits >> 3), count - i, width, out + i);
  }
}

void mask_range_u32_avx2(const std::uint32_t* v, std::size_t n,
                         std::uint32_t lo, std::uint32_t hi,
                         std::uint8_t* mask) {
  const __m256i bias = _mm256_set1_epi32(static_cast<int>(0x80000000u));
  const __m256i vlo = _mm256_set1_epi32(static_cast<int>(lo ^ 0x80000000u));
  const __m256i vhi = _mm256_set1_epi32(static_cast<int>(hi ^ 0x80000000u));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i x = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i)), bias);
    const __m256i below = _mm256_cmpgt_epi32(vlo, x);
    const __m256i above = _mm256_cmpgt_epi32(x, vhi);
    const unsigned bits = static_cast<unsigned>(_mm256_movemask_ps(
        _mm256_castsi256_ps(_mm256_or_si256(below, above))));
    for (int j = 0; j < 8; ++j) mask[i + static_cast<std::size_t>(j)] &=
        static_cast<std::uint8_t>(((bits >> j) & 1u) ^ 1u);
  }
  for (; i < n; ++i)
    mask[i] &= static_cast<std::uint8_t>(lo <= v[i] && v[i] <= hi);
}

void mask_range_i64_avx2(const std::int64_t* v, std::size_t n, std::int64_t lo,
                         std::int64_t hi, std::uint8_t* mask) {
  const __m256i vlo = _mm256_set1_epi64x(lo);
  const __m256i vhi = _mm256_set1_epi64x(hi);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    const __m256i below = _mm256_cmpgt_epi64(vlo, x);
    const __m256i above = _mm256_cmpgt_epi64(x, vhi);
    const unsigned bits = static_cast<unsigned>(_mm256_movemask_pd(
        _mm256_castsi256_pd(_mm256_or_si256(below, above))));
    for (int j = 0; j < 4; ++j) mask[i + static_cast<std::size_t>(j)] &=
        static_cast<std::uint8_t>(((bits >> j) & 1u) ^ 1u);
  }
  for (; i < n; ++i)
    mask[i] &= static_cast<std::uint8_t>(lo <= v[i] && v[i] <= hi);
}

void mask_class_avx2(const std::uint8_t* codes, std::size_t n,
                     std::uint8_t allowed, std::uint8_t* mask) {
  // Codes are 2-bit values, so a 16-entry pshufb table holds the whole
  // allowed-set membership function; 32 rows per AND step.
  alignas(32) std::uint8_t lut[32];
  for (int b = 0; b < 16; ++b) {
    lut[b] = static_cast<std::uint8_t>((allowed >> (b & 7)) & 1);
    lut[16 + b] = lut[b];
  }
  const __m256i table = _mm256_load_si256(reinterpret_cast<__m256i*>(lut));
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i c = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(codes + i));
    const __m256i m = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(mask + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(mask + i),
                        _mm256_and_si256(m, _mm256_shuffle_epi8(table, c)));
  }
  for (; i < n; ++i)
    mask[i] &= static_cast<std::uint8_t>((allowed >> codes[i]) & 1);
}

}  // namespace

const StoreKernels& avx2_store_kernel_set() noexcept {
  static constexpr StoreKernels kSet{
      Isa::kAvx2,          "avx2",
      decode_varints_avx2, unpack_bits_avx2,
      mask_range_u32_avx2, mask_range_i64_avx2,
      mask_class_avx2,     decode_zigzag_deltas_avx2,
  };
  return kSet;
}

}  // namespace unp::store::kernels

#endif  // x86-64
