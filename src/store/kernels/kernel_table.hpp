// Internal: the per-ISA store kernel set objects.  Each ISA translation
// unit defines its set behind an architecture guard; the dispatcher links
// only the ones the target architecture can express (runtime support is a
// separate cpuid/HWCAP question answered by simd::is_supported()).
#pragma once

#include <bit>
#include <cstring>

#if defined(__BMI2__)
#include <immintrin.h>
#endif

#include "store/kernels/kernels.hpp"

namespace unp::store::kernels {

// Accessor functions (not extern const objects): cross-TU data references
// from a static archive need text relocations under a PIE link, calls don't.
[[nodiscard]] const StoreKernels& scalar_store_kernel_set() noexcept;

#if defined(__x86_64__) || defined(_M_X64)
[[nodiscard]] const StoreKernels& sse2_store_kernel_set() noexcept;
[[nodiscard]] const StoreKernels& avx2_store_kernel_set() noexcept;
#endif

#if defined(__aarch64__)
[[nodiscard]] const StoreKernels& neon_store_kernel_set() noexcept;
#endif

// Scalar building blocks the vector TUs reuse for tails and mixed blocks.
// decode_varints_scalar IS telemetry::get_varint in a loop, so it defines
// the error contract every other path must reproduce.
[[nodiscard]] std::size_t decode_varints_scalar(std::string_view in,
                                                std::size_t pos,
                                                std::size_t count,
                                                std::uint64_t* out);
void unpack_bits_scalar(const unsigned char* base, std::size_t count,
                        int width, std::uint64_t* out);
[[nodiscard]] std::size_t decode_zigzag_deltas_scalar(std::string_view in,
                                                      std::size_t pos,
                                                      std::size_t count,
                                                      std::uint64_t base,
                                                      std::uint64_t* out);

/// zigzag_decode in wraparound u64 arithmetic: the same bits as the signed
/// form without the signed-overflow UB an accumulating loop would risk.
[[nodiscard]] inline std::uint64_t zigzag_delta_u64(std::uint64_t v) {
  return (v >> 1) ^ (std::uint64_t{0} - (v & 1));
}

/// Decode every whole varint in the first kWindow-8 bytes of a block from
/// its continuation mask alone — value j's byte length is the run of set
/// continuation bits at its offset, plus one.  Each value is one unaligned
/// 8-byte load masked to its length, then three SWAR steps compacting the
/// 7-bit payload groups: no per-value reload, no per-byte loop, and — the
/// property that matters on mixed 1-/2-byte streams — no data-dependent
/// branch for the length, which would mispredict on nearly every value.
/// Handles values up to 8 bytes (56 payload bits); longer values and the
/// window tail are left to the caller.  The block's first value exceeding
/// 8 bytes is the one case that consumes nothing; callers must then funnel
/// that value through the scalar oracle (telemetry::get_varint) for
/// progress and identical DecodeError offsets.  Advances *i (and, for the
/// zigzag-prefix variant, *prev) as it emits; returns the bytes consumed.
template <bool kZigzagPrefix, int kWindow>
inline std::size_t decode_varint_window(const unsigned char* p,
                                        std::uint32_t cont, std::size_t limit,
                                        std::size_t* i, std::uint64_t* prev,
                                        std::uint64_t* out) {
  static_assert(kWindow == 16 || kWindow == 32);
  std::size_t n = *i;
  std::uint64_t acc = *prev;
  // A clear continuation bit marks the *final* byte of a value, so the set
  // bits of ~cont are the value boundaries; walking them with countr_zero +
  // clear-lowest-bit pipelines across values, where a running shift+count
  // of cont itself would serialize on every value's length.
  std::uint32_t ends = static_cast<std::uint32_t>(~cont) &
                       (kWindow == 32 ? 0xffffffffu : 0xffffu);
  std::size_t start = 0;
  while (ends != 0 && n < limit) {
    const auto end = static_cast<std::size_t>(std::countr_zero(ends));
    const std::size_t len = end + 1 - start;
    // start + 8 <= kWindow keeps the wide load inside the caller's block.
    if (len > 8 || start + 8 > static_cast<std::size_t>(kWindow)) break;
    std::uint64_t x;
    std::memcpy(&x, p + start, 8);  // little-endian: byte j at bits 8j
    const std::uint64_t payload =
        0x7f7f7f7f7f7f7f7full & (~std::uint64_t{0} >> ((8 - len) * 8));
#if defined(__BMI2__)
    // TUs built with -mbmi2 (the avx2 set; dispatch checks the cpuid bit):
    // one pext concatenates the 7-bit payload groups.
    x = _pext_u64(x, payload);
#else
    x &= payload;
    x = ((x & 0x7f007f007f007f00ull) >> 1) | (x & 0x007f007f007f007full);
    x = ((x & 0x3fff00003fff0000ull) >> 2) | (x & 0x00003fff00003fffull);
    x = ((x & 0x0fffffff00000000ull) >> 4) | (x & 0x000000000fffffffull);
#endif
    if constexpr (kZigzagPrefix) {
      acc += zigzag_delta_u64(x);
      out[n++] = acc;
    } else {
      out[n++] = x;
    }
    start = end + 1;
    ends &= ends - 1;
  }
  *i = n;
  *prev = acc;
  return start;
}

}  // namespace unp::store::kernels
