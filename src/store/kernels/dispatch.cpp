// Runtime dispatch for the store kernel sets.  ISA resolution (cpuid/HWCAP
// plus the UNP_KERNEL override) lives in common/simd_dispatch and is shared
// with the scanner, so one process-wide decision governs both families.
#include "store/kernels/kernel_table.hpp"

#include "common/require.hpp"

namespace unp::store::kernels {

const StoreKernels& store_kernels_for(Isa isa) {
  UNP_REQUIRE(simd::is_supported(isa));
  switch (isa) {
    case Isa::kScalar:
      return scalar_store_kernel_set();
#if defined(__x86_64__) || defined(_M_X64)
    case Isa::kSse2:
      return sse2_store_kernel_set();
    case Isa::kAvx2:
      return avx2_store_kernel_set();
#endif
#if defined(__aarch64__)
    case Isa::kNeon:
      return neon_store_kernel_set();
#endif
    default:
      return scalar_store_kernel_set();  // unreachable past the UNP_REQUIRE
  }
}

const StoreKernels& active_store_kernels() {
  static const StoreKernels& active = store_kernels_for(simd::active_isa());
  return active;
}

}  // namespace unp::store::kernels
