// SIMD column-decode and predicate kernels for the UNPF store hot path.
//
// A served query spends nearly all of its time in two loops: LEB128 varint
// decode (six of the nine stored columns) and bit unpacking (node indices,
// the temperature presence bitmap, the 2-bit class codes), followed by the
// row-predicate filter.  This module lifts those loops into per-ISA kernel
// sets mirroring the scanner's (scalar / sse2 / avx2 / neon), sharing the
// same resolution machinery (common/simd_dispatch): one process-wide ISA
// decision, the same UNP_KERNEL override, the same fallback warnings.
//
// The varint fast path exploits the dominant shape of store bytes: most
// encoded values (time deltas, raw-log counts, dictionary indices) fit one
// byte, i.e. their continuation bit is clear.  A vector load plus a
// movemask-style reduction classifies a whole block at once; an all-clear
// block widens straight to u64 lanes, a mixed block decodes scalar up to
// the first multi-byte value and retries.  Every path funnels malformed
// input through the scalar routine, so DecodeError offsets and messages are
// identical no matter which ISA runs — the scalar set is the oracle, the
// vector sets are observationally equal and merely faster.
//
// Predicate kernels evaluate the range-expressible query shape (time
// window, contiguous node-index run, class-aligned bit bounds) as AND-into
// byte masks; the reader falls back to its scalar row loop for shapes a
// range cannot express (a SoC selector without a blade, exact bit counts).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "common/simd_dispatch.hpp"

namespace unp::store::kernels {

/// Shared ISA vocabulary (detection, UNP_KERNEL, active_isa latch).
using Isa = simd::Isa;

/// Decode `count` LEB128 varints from `in` starting at `pos` into `out`.
/// Returns the position one past the last encoded byte.  The bound is the
/// whole buffer (exactly like telemetry::get_varint, which decode_segment
/// calls today), so truncation/overflow throw telemetry::DecodeError with
/// byte offsets identical to the scalar loop's.
using DecodeVarintsFn = std::size_t (*)(std::string_view in, std::size_t pos,
                                        std::size_t count, std::uint64_t* out);

/// Unpack `count` LSB-first values of `width` bits (1 <= width <= 64) from
/// `base` into `out`.  The caller has already validated that the packed
/// block — ceil(count * width / 8) bytes — is in bounds; kernels must not
/// read past it.
using UnpackBitsFn = void (*)(const unsigned char* base, std::size_t count,
                              int width, std::uint64_t* out);

/// mask[i] &= (lo <= v[i] && v[i] <= hi), i in [0, n).
using MaskRangeU32Fn = void (*)(const std::uint32_t* v, std::size_t n,
                                std::uint32_t lo, std::uint32_t hi,
                                std::uint8_t* mask);
using MaskRangeI64Fn = void (*)(const std::int64_t* v, std::size_t n,
                                std::int64_t lo, std::int64_t hi,
                                std::uint8_t* mask);

/// mask[i] &= (allowed >> codes[i]) & 1; codes are 2-bit FaultClass values.
using MaskClassFn = void (*)(const std::uint8_t* codes, std::size_t n,
                             std::uint8_t allowed, std::uint8_t* mask);

/// Fused decode for the store's zigzag-delta columns (first_seen, address):
/// decode `count` varints, zigzag-decode each, and emit the running prefix
/// sum starting from `base` — out[i] = base + sum of deltas 0..i, in
/// wraparound u64 arithmetic (bit-identical to the old signed accumulation).
/// Fusing kills the scratch round-trip a separate decode-then-undelta pass
/// pays per column.  Same bound and DecodeError contract as decode_varints.
using DecodeZigzagDeltasFn = std::size_t (*)(std::string_view in,
                                             std::size_t pos,
                                             std::size_t count,
                                             std::uint64_t base,
                                             std::uint64_t* out);

/// One ISA's store kernel set.  All sets are observationally identical
/// (same outputs, same DecodeError offsets); only throughput differs.
struct StoreKernels {
  Isa isa = Isa::kScalar;
  const char* name = "scalar";
  DecodeVarintsFn decode_varints = nullptr;
  UnpackBitsFn unpack_bits = nullptr;
  MaskRangeU32Fn mask_range_u32 = nullptr;
  MaskRangeI64Fn mask_range_i64 = nullptr;
  MaskClassFn mask_class = nullptr;
  DecodeZigzagDeltasFn decode_zigzag_deltas = nullptr;
};

/// Kernel set for `isa`; requires simd::is_supported(isa).
[[nodiscard]] const StoreKernels& store_kernels_for(Isa isa);

/// The process-wide set: resolved once alongside the scanner's from
/// cpuid/HWCAP and the UNP_KERNEL override.
[[nodiscard]] const StoreKernels& active_store_kernels();

}  // namespace unp::store::kernels
