// NEON store kernels (AArch64; Advanced SIMD is architectural there).
//
// Same structure as the SSE2 set: vmaxv over the continuation bits
// classifies 16 varint bytes at once; all-clear blocks widen to u64 lanes
// with vmovl chains, mixed blocks funnel through the scalar oracle.
#if defined(__aarch64__)

#include <arm_neon.h>

#include "store/kernels/kernel_table.hpp"
#include "telemetry/binary_codec.hpp"

namespace unp::store::kernels {
namespace {

/// Widen 16 bytes to 16 u64 lanes (zero-extended).
inline void widen16(uint8x16_t block, std::uint64_t* out) {
  const uint16x8_t w0 = vmovl_u8(vget_low_u8(block));
  const uint16x8_t w1 = vmovl_u8(vget_high_u8(block));
  const uint32x4_t d0 = vmovl_u16(vget_low_u16(w0));
  const uint32x4_t d1 = vmovl_u16(vget_high_u16(w0));
  const uint32x4_t d2 = vmovl_u16(vget_low_u16(w1));
  const uint32x4_t d3 = vmovl_u16(vget_high_u16(w1));
  vst1q_u64(out + 0, vmovl_u32(vget_low_u32(d0)));
  vst1q_u64(out + 2, vmovl_u32(vget_high_u32(d0)));
  vst1q_u64(out + 4, vmovl_u32(vget_low_u32(d1)));
  vst1q_u64(out + 6, vmovl_u32(vget_high_u32(d1)));
  vst1q_u64(out + 8, vmovl_u32(vget_low_u32(d2)));
  vst1q_u64(out + 10, vmovl_u32(vget_high_u32(d2)));
  vst1q_u64(out + 12, vmovl_u32(vget_low_u32(d3)));
  vst1q_u64(out + 14, vmovl_u32(vget_high_u32(d3)));
}

std::size_t decode_varints_neon(std::string_view in, std::size_t pos,
                                std::size_t count, std::uint64_t* out) {
  const auto* bytes = reinterpret_cast<const unsigned char*>(in.data());
  std::size_t i = 0;
  while (i < count) {
    if (count - i >= 16 && pos + 16 <= in.size()) {
      const uint8x16_t block = vld1q_u8(bytes + pos);
      if (vmaxvq_u8(block) < 0x80) {  // no continuation bit anywhere
        widen16(block, out + i);
        pos += 16;
        i += 16;
        continue;
      }
      // Widen the leading single-byte run, then let the oracle take the
      // first multi-byte value (identical DecodeError behaviour).
      while (bytes[pos] < 0x80) {
        out[i++] = bytes[pos++];
      }
      out[i++] = telemetry::get_varint(in, pos);
      continue;
    }
    out[i++] = telemetry::get_varint(in, pos);
  }
  return pos;
}

std::size_t decode_zigzag_deltas_neon(std::string_view in, std::size_t pos,
                                      std::size_t count, std::uint64_t base,
                                      std::uint64_t* out) {
  // Chunk through the vector varint decoder, then zigzag-accumulate in
  // place; composition keeps the DecodeError contract of the decode path.
  std::uint64_t prev = base;
  std::size_t i = 0;
  while (i < count) {
    const std::size_t chunk =
        count - i < std::size_t{256} ? count - i : std::size_t{256};
    pos = decode_varints_neon(in, pos, chunk, out + i);
    for (std::size_t j = 0; j < chunk; ++j) {
      prev += zigzag_delta_u64(out[i + j]);
      out[i + j] = prev;
    }
    i += chunk;
  }
  return pos;
}

void unpack_bits_neon(const unsigned char* base, std::size_t count, int width,
                      std::uint64_t* out) {
  std::size_t i = 0;
  switch (width) {
    case 1:
      for (; i + 8 <= count; i += 8) {
        const unsigned b = base[i >> 3];
        for (int j = 0; j < 8; ++j) out[i + static_cast<std::size_t>(j)] =
            (b >> j) & 1u;
      }
      break;
    case 2:
      for (; i + 4 <= count; i += 4) {
        const unsigned b = base[i >> 2];
        out[i] = b & 3u;
        out[i + 1] = (b >> 2) & 3u;
        out[i + 2] = (b >> 4) & 3u;
        out[i + 3] = (b >> 6) & 3u;
      }
      break;
    case 4:
      for (; i + 2 <= count; i += 2) {
        const unsigned b = base[i >> 1];
        out[i] = b & 15u;
        out[i + 1] = (b >> 4) & 15u;
      }
      break;
    case 8:
      for (; i + 16 <= count; i += 16) widen16(vld1q_u8(base + i), out + i);
      break;
    default:
      break;
  }
  if (i < count) {
    const std::size_t bits = i * static_cast<std::size_t>(width);
    unpack_bits_scalar(base + (bits >> 3), count - i, width, out + i);
  }
}

void mask_range_u32_neon(const std::uint32_t* v, std::size_t n,
                         std::uint32_t lo, std::uint32_t hi,
                         std::uint8_t* mask) {
  for (std::size_t i = 0; i < n; ++i)
    mask[i] &= static_cast<std::uint8_t>(lo <= v[i] && v[i] <= hi);
}

void mask_range_i64_neon(const std::int64_t* v, std::size_t n, std::int64_t lo,
                         std::int64_t hi, std::uint8_t* mask) {
  for (std::size_t i = 0; i < n; ++i)
    mask[i] &= static_cast<std::uint8_t>(lo <= v[i] && v[i] <= hi);
}

void mask_class_neon(const std::uint8_t* codes, std::size_t n,
                     std::uint8_t allowed, std::uint8_t* mask) {
  for (std::size_t i = 0; i < n; ++i)
    mask[i] &= static_cast<std::uint8_t>((allowed >> codes[i]) & 1);
}

}  // namespace

const StoreKernels& neon_store_kernel_set() noexcept {
  static constexpr StoreKernels kSet{
      Isa::kNeon,          "neon",
      decode_varints_neon, unpack_bits_neon,
      mask_range_u32_neon, mask_range_i64_neon,
      mask_class_neon,     decode_zigzag_deltas_neon,
  };
  return kSet;
}

}  // namespace unp::store::kernels

#endif  // __aarch64__
