// Scalar store kernels: the portable correctness oracle.
//
// decode_varints is telemetry::get_varint in a loop — deliberately, so the
// DecodeError contract (offset and message per failure mode) is defined in
// exactly one place and every vector path can funnel hard cases here.
// unpack_bits is the store's original bit-cursor loop.  The mask kernels
// are the branch-free scalar forms the autovectorizer already handles well;
// they mostly exist so the vector sets have an oracle to be tested against.
#include "store/kernels/kernel_table.hpp"

#include "telemetry/binary_codec.hpp"

namespace unp::store::kernels {

std::size_t decode_varints_scalar(std::string_view in, std::size_t pos,
                                  std::size_t count, std::uint64_t* out) {
  for (std::size_t i = 0; i < count; ++i)
    out[i] = telemetry::get_varint(in, pos);
  return pos;
}

std::size_t decode_zigzag_deltas_scalar(std::string_view in, std::size_t pos,
                                        std::size_t count, std::uint64_t base,
                                        std::uint64_t* out) {
  std::uint64_t prev = base;
  for (std::size_t i = 0; i < count; ++i) {
    prev += zigzag_delta_u64(telemetry::get_varint(in, pos));
    out[i] = prev;
  }
  return pos;
}

void unpack_bits_scalar(const unsigned char* base, std::size_t count,
                        int width, std::uint64_t* out) {
  std::size_t bitpos = 0;
  for (std::size_t i = 0; i < count; ++i) {
    std::uint64_t v = 0;
    int got = 0;
    while (got < width) {
      const std::size_t byte = bitpos >> 3;
      const int bit = static_cast<int>(bitpos & 7);
      const int take = width - got < 8 - bit ? width - got : 8 - bit;
      const std::uint64_t group =
          (static_cast<std::uint64_t>(base[byte]) >> bit) &
          ((std::uint64_t{1} << take) - 1);
      v |= group << got;
      got += take;
      bitpos += static_cast<std::size_t>(take);
    }
    out[i] = v;
  }
}

namespace {

void mask_range_u32_scalar(const std::uint32_t* v, std::size_t n,
                           std::uint32_t lo, std::uint32_t hi,
                           std::uint8_t* mask) {
  for (std::size_t i = 0; i < n; ++i)
    mask[i] &= static_cast<std::uint8_t>(lo <= v[i] && v[i] <= hi);
}

void mask_range_i64_scalar(const std::int64_t* v, std::size_t n,
                           std::int64_t lo, std::int64_t hi,
                           std::uint8_t* mask) {
  for (std::size_t i = 0; i < n; ++i)
    mask[i] &= static_cast<std::uint8_t>(lo <= v[i] && v[i] <= hi);
}

void mask_class_scalar(const std::uint8_t* codes, std::size_t n,
                       std::uint8_t allowed, std::uint8_t* mask) {
  for (std::size_t i = 0; i < n; ++i)
    mask[i] &= static_cast<std::uint8_t>((allowed >> codes[i]) & 1);
}

}  // namespace

const StoreKernels& scalar_store_kernel_set() noexcept {
  static constexpr StoreKernels kSet{
      Isa::kScalar,          "scalar",
      decode_varints_scalar, unpack_bits_scalar,
      mask_range_u32_scalar, mask_range_i64_scalar,
      mask_class_scalar,     decode_zigzag_deltas_scalar,
  };
  return kSet;
}

}  // namespace unp::store::kernels
