// LPDDR device geometry for the prototype's 4 GB node memory.
//
// The analyses care about *structure*, not timing: which 32-bit scanner
// words share a row / bank (the paper suspects simultaneous multi-word
// errors hit physically close or aligned cells that the controller maps to
// distant addresses), and how many words the 3 GB scan buffer covers.
#pragma once

#include <cstdint>

#include "common/require.hpp"

namespace unp::dram {

/// Structural geometry of one node's memory as seen by the scanner.
struct Geometry {
  int channels = 1;
  int ranks = 2;
  int banks = 8;
  std::uint32_t rows = 65536;      ///< rows per bank
  std::uint32_t columns = 1024;    ///< column bursts per row
  int word_bytes = 4;              ///< scanner compares 32-bit words

  /// Words per row burst span.
  [[nodiscard]] constexpr std::uint64_t words_per_row() const noexcept {
    return static_cast<std::uint64_t>(columns);
  }
  [[nodiscard]] constexpr std::uint64_t words_per_bank() const noexcept {
    return words_per_row() * rows;
  }
  [[nodiscard]] constexpr std::uint64_t total_words() const noexcept {
    return words_per_bank() * static_cast<std::uint64_t>(banks) *
           static_cast<std::uint64_t>(ranks) *
           static_cast<std::uint64_t>(channels);
  }
  [[nodiscard]] constexpr std::uint64_t total_bytes() const noexcept {
    return total_words() * static_cast<std::uint64_t>(word_bytes);
  }
};

/// Default geometry: 1 channel x 2 ranks x 8 banks x 65536 rows x 1024
/// columns x 4 B = 4 GiB, matching the node memory size in Section II-A.
[[nodiscard]] constexpr Geometry default_geometry() noexcept { return Geometry{}; }

/// Coordinates of one word inside the device.
struct WordLocation {
  int channel = 0;
  int rank = 0;
  int bank = 0;
  std::uint32_t row = 0;
  std::uint32_t column = 0;

  friend bool operator==(const WordLocation&, const WordLocation&) = default;
};

}  // namespace unp::dram
