#include "dram/scrambler.hpp"

#include "common/require.hpp"
#include "common/rng.hpp"

namespace unp::dram {

BitScrambler::BitScrambler(const std::array<int, 32>& map) noexcept : map_(map) {
  for (int p = 0; p < 32; ++p) inv_[static_cast<std::size_t>(map_[static_cast<std::size_t>(p)])] = p;
}

BitScrambler BitScrambler::identity() noexcept {
  std::array<int, 32> m{};
  for (int i = 0; i < 32; ++i) m[static_cast<std::size_t>(i)] = i;
  return BitScrambler(m);
}

BitScrambler BitScrambler::stride3() noexcept {
  // Within each 16-bit half: logical = (physical * 3) mod 16; halves kept
  // separate (the two byte-pair lanes of the LPDDR bus).
  std::array<int, 32> m{};
  for (int p = 0; p < 32; ++p) {
    const int half = p / 16;
    const int within = p % 16;
    m[static_cast<std::size_t>(p)] = half * 16 + (within * 3) % 16;
  }
  return BitScrambler(m);
}

BitScrambler BitScrambler::from_seed(std::uint64_t seed) noexcept {
  std::array<int, 32> m{};
  for (int i = 0; i < 32; ++i) m[static_cast<std::size_t>(i)] = i;
  RngStream rng(seed, /*stream_id=*/0x5C4A);
  // Fisher-Yates.
  for (int i = 31; i > 0; --i) {
    const auto j = static_cast<int>(rng.uniform_u64(static_cast<std::uint64_t>(i) + 1));
    const int tmp = m[static_cast<std::size_t>(i)];
    m[static_cast<std::size_t>(i)] = m[static_cast<std::size_t>(j)];
    m[static_cast<std::size_t>(j)] = tmp;
  }
  return BitScrambler(m);
}

Word BitScrambler::logical_mask(Word physical_mask) const noexcept {
  Word out = 0;
  while (physical_mask != 0) {
    const int p = std::countr_zero(physical_mask);
    out |= Word{1} << to_logical(p);
    physical_mask &= physical_mask - 1;
  }
  return out;
}

Word BitScrambler::physical_mask(Word logical_mask_bits) const noexcept {
  Word out = 0;
  while (logical_mask_bits != 0) {
    const int l = std::countr_zero(logical_mask_bits);
    out |= Word{1} << to_physical(l);
    logical_mask_bits &= logical_mask_bits - 1;
  }
  return out;
}

Word BitScrambler::contiguous_upset(int start, int size) const noexcept {
  Word physical = 0;
  for (int i = 0; i < size; ++i) {
    physical |= Word{1} << ((start + i) % 32);
  }
  return logical_mask(physical);
}

}  // namespace unp::dram
