#include "dram/retention.hpp"

#include <cmath>

#include "common/require.hpp"

namespace unp::dram {

namespace {

/// Standard normal CDF.
double normal_cdf(double x) noexcept {
  return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

}  // namespace

double RetentionModel::temperature_factor(double celsius) const noexcept {
  // Retention halves every `halving_c` above the reference (and doubles
  // below it): leakage currents grow exponentially with temperature.
  return std::exp2(-(celsius - config_.reference_c) / config_.halving_c);
}

double RetentionModel::sample_retention_s(RngStream& rng) const noexcept {
  return config_.median_retention_s * std::exp(config_.sigma * rng.normal());
}

bool RetentionModel::leaks_at(double retention_s, double celsius) const noexcept {
  return retention_s * temperature_factor(celsius) < config_.refresh_interval_s;
}

double RetentionModel::critical_temperature_c(double retention_s) const noexcept {
  UNP_REQUIRE(retention_s > 0.0);
  // Solve retention * 2^(-(T - ref)/halving) = refresh for T.
  return config_.reference_c +
         config_.halving_c *
             std::log2(retention_s / config_.refresh_interval_s);
}

double RetentionModel::expected_weak_bits(std::uint64_t bytes,
                                          double celsius) const noexcept {
  const double cells = static_cast<double>(bytes) * 8.0;
  // A VRT cell is observable when its *weak-state* retention misses the
  // refresh deadline: base / divisor * temp_factor < refresh.
  const double threshold_base = config_.refresh_interval_s *
                                config_.vrt_weak_divisor /
                                temperature_factor(celsius);
  const double z = std::log(threshold_base / config_.median_retention_s) /
                   config_.sigma;
  return cells * config_.vrt_fraction * normal_cdf(z);
}

}  // namespace unp::dram
