// Data-line scrambling between physical DRAM cells and logical word bits.
//
// Section III-C observes that most multi-bit word errors hit *non-adjacent*
// logical bits, with a mean distance of ~3 and a maximum of 11, and explains
// it by "DRAM layout spreading the adjacent bits of the word ... usually
// this scrambling is done to avoid resonance on the bus."  The BitScrambler
// is that layout: a permutation between physical data-line positions and
// logical bit positions of the 32-bit scanner word.
//
// A physically contiguous upset (one particle strike spanning neighbouring
// cells) therefore lands on scattered logical bits; the inverse view is used
// by the analysis when reasoning about root causes.
#pragma once

#include <array>
#include <cstdint>

#include "common/bitops.hpp"

namespace unp::dram {

class BitScrambler {
 public:
  /// Identity mapping (ablation: "what if the layout did not scramble").
  [[nodiscard]] static BitScrambler identity() noexcept;

  /// Default device layout: stride-3 interleave inside each 16-bit half.
  /// Physically adjacent lines map to logical bits 3 apart (13 at the half
  /// wrap), reproducing the paper's mean distance ~3 / max ~11 signature.
  [[nodiscard]] static BitScrambler stride3() noexcept;

  /// Random permutation derived from a seed (sensitivity experiments).
  [[nodiscard]] static BitScrambler from_seed(std::uint64_t seed) noexcept;

  /// Logical bit driven by physical line `p` (0..31).
  [[nodiscard]] int to_logical(int p) const noexcept { return map_[static_cast<std::size_t>(p)]; }
  /// Physical line behind logical bit `l` (0..31).
  [[nodiscard]] int to_physical(int l) const noexcept { return inv_[static_cast<std::size_t>(l)]; }

  /// Map a physical-line mask to the logical-bit mask it corrupts.
  [[nodiscard]] Word logical_mask(Word physical_mask) const noexcept;
  /// Inverse mapping.
  [[nodiscard]] Word physical_mask(Word logical_mask) const noexcept;

  /// Mask of `size` physically contiguous lines starting at `start`
  /// (wraps at 32), rendered into logical bit positions.
  [[nodiscard]] Word contiguous_upset(int start, int size) const noexcept;

 private:
  explicit BitScrambler(const std::array<int, 32>& map) noexcept;

  std::array<int, 32> map_{};  ///< physical -> logical
  std::array<int, 32> inv_{};  ///< logical -> physical
};

}  // namespace unp::dram
