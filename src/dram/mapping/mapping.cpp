#include "dram/mapping/mapping.hpp"

#include <bit>

#include "common/require.hpp"
#include "dram/mapping/gf2.hpp"

namespace unp::dram::mapping {

namespace {

/// Pack the bits of `value` selected by `mask` into a dense integer
/// (portable PEXT).
std::uint64_t extract_bits(std::uint64_t value, std::uint64_t mask) noexcept {
  std::uint64_t out = 0;
  int shift = 0;
  while (mask != 0) {
    const std::uint64_t low = mask & (~mask + 1);
    if (value & low) out |= std::uint64_t{1} << shift;
    ++shift;
    mask ^= low;
  }
  return out;
}

/// Scatter the low bits of `value` into the positions of `mask`
/// (portable PDEP).
std::uint64_t deposit_bits(std::uint64_t value, std::uint64_t mask) noexcept {
  std::uint64_t out = 0;
  while (mask != 0) {
    const std::uint64_t low = mask & (~mask + 1);
    if (value & 1) out |= low;
    value >>= 1;
    mask ^= low;
  }
  return out;
}

}  // namespace

DramMapping::DramMapping(MappingConfig config) : config_(std::move(config)) {
  UNP_REQUIRE(config_.address_bits > 0 && config_.address_bits < 63);
  UNP_REQUIRE(config_.bank_functions.size() < 32);
  const std::uint64_t space =
      (std::uint64_t{1} << config_.address_bits) - 1;
  UNP_REQUIRE((config_.row_mask & config_.column_mask) == 0);
  UNP_REQUIRE((config_.row_mask | config_.column_mask) ==
              ((config_.row_mask | config_.column_mask) & space));
  std::uint64_t selects = 0;
  for (const BankFunction& fn : config_.bank_functions) {
    UNP_REQUIRE(fn.select_bit >= 0 && fn.select_bit < config_.address_bits);
    const std::uint64_t select = std::uint64_t{1} << fn.select_bit;
    UNP_REQUIRE((selects & select) == 0);                  // dedicated
    UNP_REQUIRE(((config_.row_mask | config_.column_mask) & select) == 0);
    UNP_REQUIRE((fn.fold_mask & ~(config_.row_mask | config_.column_mask)) == 0);
    selects |= select;
  }
  // Row, column and select bits partition the physical address.
  UNP_REQUIRE((config_.row_mask | config_.column_mask | selects) == space);
}

DramCoordinate DramMapping::decode(std::uint64_t word_addr) const noexcept {
  DramCoordinate c;
  c.row = extract_bits(word_addr, config_.row_mask);
  c.column = extract_bits(word_addr, config_.column_mask);
  for (std::size_t k = 0; k < config_.bank_functions.size(); ++k) {
    c.bank |= static_cast<std::uint32_t>(
                  gf2_dot(word_addr, config_.bank_functions[k].mask()))
              << k;
  }
  return c;
}

std::uint64_t DramMapping::encode(const DramCoordinate& c) const noexcept {
  std::uint64_t addr = deposit_bits(c.row, config_.row_mask) |
                       deposit_bits(c.column, config_.column_mask);
  for (std::size_t k = 0; k < config_.bank_functions.size(); ++k) {
    const BankFunction& fn = config_.bank_functions[k];
    const int want = static_cast<int>((c.bank >> k) & 1);
    // fold_mask touches only row/column bits, all already placed.
    if (want != gf2_dot(addr, fn.fold_mask)) {
      addr |= std::uint64_t{1} << fn.select_bit;
    }
  }
  return addr;
}

std::uint64_t DramMapping::rows() const noexcept {
  return std::uint64_t{1} << std::popcount(config_.row_mask);
}

std::uint64_t DramMapping::columns() const noexcept {
  return std::uint64_t{1} << std::popcount(config_.column_mask);
}

std::vector<std::uint64_t> DramMapping::canonical_bank_functions() const {
  std::vector<std::uint64_t> masks;
  masks.reserve(config_.bank_functions.size());
  for (const BankFunction& fn : config_.bank_functions) {
    masks.push_back(fn.mask());
  }
  return gf2_rref(std::move(masks));
}

namespace {

/// Contiguous mask of `count` bits starting at `lo`.
constexpr std::uint64_t bits(int lo, int count) {
  return ((std::uint64_t{1} << count) - 1) << lo;
}

MappingConfig ddr3_1ch() {
  // 512 MiB of words: 16 banks (incl. rank) x 8K rows x 1K columns.
  MappingConfig c;
  c.name = "ddr3:1ch";
  c.address_bits = 27;
  c.column_mask = bits(0, 10);
  c.row_mask = bits(14, 13);
  c.bank_functions = {{10, bits(17, 1)},
                      {11, bits(18, 1)},
                      {12, bits(19, 1)},
                      {13, bits(20, 1)}};  // rank
  return c;
}

MappingConfig ddr3_2ch() {
  MappingConfig c;
  c.name = "ddr3:2ch";
  c.address_bits = 28;
  c.column_mask = bits(0, 10);
  c.row_mask = bits(15, 13);
  // The channel function folds a column bit (classic low-bit channel
  // interleave) alongside a row bit.
  c.bank_functions = {{10, bits(6, 1) | bits(18, 1)},  // channel
                      {11, bits(17, 1)},
                      {12, bits(18, 1)},
                      {13, bits(19, 1)},
                      {14, bits(20, 1)}};  // rank
  return c;
}

MappingConfig ddr4_1ch() {
  MappingConfig c;
  c.name = "ddr4:1ch";
  c.address_bits = 28;
  c.column_mask = bits(0, 10);
  c.row_mask = bits(15, 13);
  // Bank-group and bank functions each fold two row bits (deep XOR
  // scrambling, as on Skylake-era controllers).
  c.bank_functions = {{10, bits(16, 1) | bits(20, 1)},  // bg0
                      {11, bits(17, 1) | bits(21, 1)},  // bg1
                      {12, bits(18, 1) | bits(22, 1)},  // ba0
                      {13, bits(19, 1) | bits(23, 1)},  // ba1
                      {14, bits(24, 1)}};               // rank
  return c;
}

MappingConfig ddr4_2ch() {
  MappingConfig c;
  c.name = "ddr4:2ch";
  c.address_bits = 29;
  c.column_mask = bits(0, 10);
  c.row_mask = bits(16, 13);
  c.bank_functions = {{10, bits(7, 1) | bits(17, 1) | bits(22, 1)},  // channel
                      {11, bits(18, 1) | bits(23, 1)},               // bg0
                      {12, bits(19, 1) | bits(24, 1)},               // bg1
                      {13, bits(20, 1) | bits(25, 1)},               // ba0
                      {14, bits(21, 1) | bits(26, 1)},               // ba1
                      {15, bits(27, 1)}};                            // rank
  return c;
}

MappingConfig lpddr3_mb() {
  // The Mont-Blanc node module: 2 ranks x 8 banks x 64K rows x 1K columns
  // of 32-bit words = 4 GiB, matching dram::Geometry's defaults.
  MappingConfig c;
  c.name = "lpddr3:mb";
  c.address_bits = 30;
  c.column_mask = bits(0, 10);
  c.row_mask = bits(14, 16);
  c.bank_functions = {{10, bits(24, 1)},
                      {11, bits(25, 1)},
                      {12, bits(26, 1)},
                      {13, bits(27, 1)}};  // rank
  return c;
}

}  // namespace

const std::vector<std::string>& mapping_menu() {
  static const std::vector<std::string> names = {
      "ddr3:1ch", "ddr3:2ch", "ddr4:1ch", "ddr4:2ch", "lpddr3:mb"};
  return names;
}

MappingConfig make_mapping_config(std::string_view name) {
  if (name == "ddr3:1ch") return ddr3_1ch();
  if (name == "ddr3:2ch") return ddr3_2ch();
  if (name == "ddr4:1ch") return ddr4_1ch();
  if (name == "ddr4:2ch") return ddr4_2ch();
  if (name == "lpddr3:mb") return lpddr3_mb();
  throw ContractViolation("unknown mapping geometry: " + std::string(name));
}

}  // namespace unp::dram::mapping
