#include "dram/mapping/solver.hpp"

#include <algorithm>
#include <limits>

#include "common/require.hpp"
#include "dram/mapping/gf2.hpp"

namespace unp::dram::mapping {

namespace {

/// Mean steady-state latency of alternating accesses to {a, b}.  The first
/// two accesses open both rows (warm-up, excluded); afterwards every access
/// is a hit unless the two addresses share a bank with different rows, in
/// which case every access closes the other's row (conflict).
double pair_latency(AccessTimingOracle& oracle, std::uint64_t a,
                    std::uint64_t b, int probes) {
  (void)oracle.access(a);
  (void)oracle.access(b);
  double total = 0.0;
  for (int i = 0; i < probes; ++i) {
    total += oracle.access(a);
    total += oracle.access(b);
  }
  return total / (2.0 * probes);
}

}  // namespace

SolveResult MappingSolver::solve(AccessTimingOracle& oracle,
                                 int address_bits) const {
  UNP_REQUIRE(address_bits > 0 && address_bits < 63);
  UNP_REQUIRE(config_.pool_size >= 2);
  const std::uint64_t before = oracle.accesses();
  const std::uint64_t space = std::uint64_t{1} << address_bits;
  RngStream rng(config_.seed, /*stream_id=*/0x501E);

  SolveResult result;

  // --- 1. Calibrate the hit/conflict decision threshold. -----------------
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (int i = 0; i < config_.calibration_pairs; ++i) {
    const std::uint64_t a = rng.uniform_u64(space);
    std::uint64_t b = rng.uniform_u64(space);
    if (b == a) b ^= 1;
    const double t = pair_latency(oracle, a, b, config_.probes_per_pair);
    lo = std::min(lo, t);
    hi = std::max(hi, t);
  }
  // The two modes must be separated; with sane timing configs the gap is
  // tens of sigma wide.
  UNP_REQUIRE(hi - lo > 16.0);
  const double threshold = 0.5 * (lo + hi);
  result.threshold_ns = threshold;
  const auto conflicts = [&](std::uint64_t a, std::uint64_t b) {
    return pair_latency(oracle, a, b, config_.probes_per_pair) > threshold;
  };

  // --- 2. Cluster a random pool into same-bank sets. ----------------------
  // Same-bank different-row pairs conflict; everything else runs at hit
  // speed.  A pool member lands in the first cluster whose representative
  // it conflicts with (same bank, and a same-row collision against a
  // representative is a ~2^-13 accident that only costs a duplicate
  // cluster, never an impure one).
  std::vector<std::uint64_t> reps;
  std::vector<std::uint64_t> null_span;
  for (int i = 0; i < config_.pool_size; ++i) {
    const std::uint64_t addr = rng.uniform_u64(space);
    bool placed = false;
    for (const std::uint64_t rep : reps) {
      if (conflicts(rep, addr)) {
        null_span.push_back(rep ^ addr);
        placed = true;
        break;
      }
    }
    if (!placed) reps.push_back(addr);
  }
  result.clusters = static_cast<int>(reps.size());

  // --- 3. Bank functions: canonical dual basis of the difference span. ----
  // Every XOR difference of a same-bank pair zeroes all bank functions, so
  // the functions span the dual of span(null_span).
  result.bank_functions = gf2_rref(gf2_nullspace(null_span, address_bits));

  // --- 4. Row/column split of the free bits. ------------------------------
  // The null space of the recovered functions, in free-variable form: one
  // vector per non-pivot bit f, each connecting same-bank addresses that
  // differ in f (plus compensating pivot bits).  Pivot bits are bank
  // address lines by construction and belong to neither mask.
  const std::uint64_t pivots = gf2_pivot_mask(result.bank_functions);
  const std::vector<std::uint64_t> free_vectors =
      gf2_nullspace(result.bank_functions, address_bits);
  for (const std::uint64_t v : free_vectors) {
    const std::uint64_t free_bit = v & ~pivots;
    bool row_bit = false;
    for (int p = 0; p < config_.classify_probes && !row_bit; ++p) {
      const std::uint64_t a = rng.uniform_u64(space);
      row_bit = conflicts(a, (a ^ v) & (space - 1));
    }
    if (row_bit) {
      result.row_mask |= free_bit;
    } else {
      result.column_mask |= free_bit;
    }
  }

  // --- 5. Verify: the model predicts fresh measurements. ------------------
  int agree = 0;
  for (int i = 0; i < config_.verify_pairs; ++i) {
    const std::uint64_t a = rng.uniform_u64(space);
    std::uint64_t b = rng.uniform_u64(space);
    if (b == a) b ^= 1;
    const std::uint64_t d = a ^ b;
    bool same_bank = true;
    for (const std::uint64_t fn : result.bank_functions) {
      if (gf2_dot(d, fn) != 0) {
        same_bank = false;
        break;
      }
    }
    const bool predicted = same_bank && (d & result.row_mask) != 0;
    if (predicted == conflicts(a, b)) ++agree;
  }
  result.verify_agreement =
      config_.verify_pairs > 0
          ? static_cast<double>(agree) / config_.verify_pairs
          : 1.0;
  result.measurements = oracle.accesses() - before;
  return result;
}

}  // namespace unp::dram::mapping
