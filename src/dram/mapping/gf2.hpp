// Small dense GF(2) linear algebra over 64-bit row masks.
//
// Every DRAM addressing function in this module is a parity (XOR fold) of a
// subset of physical address bits, i.e. a linear functional over GF(2)^n
// represented as a 64-bit mask (LSB = physical bit 0).  The mapping solver
// needs three operations on sets of such masks: a canonical reduced
// row-echelon basis (so two recovered function sets can be compared for
// span equality), the rank, and a null-space basis (the set of address
// deltas that leave every function unchanged).
//
// Pivot convention: the pivot of a row is its LOWEST set bit.  Physical
// bank/channel selects live below the row bits in every geometry we model,
// so lowest-bit pivots keep the canonical basis' pivots out of the row-bit
// region - which is exactly what lets the solver classify the remaining
// free bits as row/column by timing (see solver.cpp).
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

namespace unp::dram::mapping {

/// Parity of the bits of `x`: the GF(2) inner product <x, ones>.
[[nodiscard]] constexpr int gf2_parity(std::uint64_t x) noexcept {
  return std::popcount(x) & 1;
}

/// GF(2) inner product of two masks.
[[nodiscard]] constexpr int gf2_dot(std::uint64_t a, std::uint64_t b) noexcept {
  return gf2_parity(a & b);
}

/// Reduced row-echelon basis of span(rows) with lowest-bit pivots, sorted by
/// pivot.  The result is the unique canonical basis of the row space: two
/// mask sets span the same space iff their gf2_rref outputs are equal.
[[nodiscard]] inline std::vector<std::uint64_t> gf2_rref(
    std::vector<std::uint64_t> rows) {
  std::vector<std::uint64_t> basis;
  for (std::uint64_t row : rows) {
    // Eliminate existing pivots, then insert if independent.
    for (const std::uint64_t b : basis) {
      const std::uint64_t pivot = b & (~b + 1);  // lowest set bit
      if (row & pivot) row ^= b;
    }
    if (row == 0) continue;
    const std::uint64_t pivot = row & (~row + 1);
    for (std::uint64_t& b : basis) {
      if (b & pivot) b ^= row;
    }
    basis.push_back(row);
  }
  std::sort(basis.begin(), basis.end(),
            [](std::uint64_t a, std::uint64_t b) {
              return (a & (~a + 1)) < (b & (~b + 1));
            });
  return basis;
}

[[nodiscard]] inline int gf2_rank(std::vector<std::uint64_t> rows) {
  return static_cast<int>(gf2_rref(std::move(rows)).size());
}

/// Union of the pivot bits of an RREF basis.
[[nodiscard]] inline std::uint64_t gf2_pivot_mask(
    const std::vector<std::uint64_t>& rref) {
  std::uint64_t mask = 0;
  for (const std::uint64_t b : rref) mask |= b & (~b + 1);
  return mask;
}

/// Basis of the null space {x in GF(2)^n : gf2_dot(x, r) == 0 for all rows}.
///
/// Returned vectors are in free-variable form: one per non-pivot bit f, each
/// equal to e_f XOR (one pivot bit per constraint row containing f).  The
/// free bit of a vector v is recoverable as v & ~gf2_pivot_mask(rref).
[[nodiscard]] inline std::vector<std::uint64_t> gf2_nullspace(
    const std::vector<std::uint64_t>& rows, int n) {
  const std::vector<std::uint64_t> rref = gf2_rref(rows);
  const std::uint64_t pivots = gf2_pivot_mask(rref);
  std::vector<std::uint64_t> basis;
  for (int f = 0; f < n; ++f) {
    const std::uint64_t ef = std::uint64_t{1} << f;
    if (pivots & ef) continue;
    std::uint64_t v = ef;
    for (const std::uint64_t r : rref) {
      if (r & ef) v |= r & (~r + 1);  // pivot of the row constrains x_pivot
    }
    basis.push_back(v);
  }
  return basis;
}

}  // namespace unp::dram::mapping
