// Synthetic access-timing oracle over a DramMapping.
//
// Models the three latency classes a memory access can see at the bank
// level: row-buffer hit (the addressed row is already open), row miss (the
// bank had no open row; activate only) and bank conflict (a different row
// is open; precharge + activate).  Each bank remembers its open row - the
// open-page policy every timing-side-channel mapping attack relies on -
// and every returned latency carries seeded Gaussian measurement noise.
//
// The oracle is the ground truth the MappingSolver must never look inside:
// solver code sees access() latencies only, exactly like DRAMA/zenhammer
// measuring a live controller with rdtsc.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/rng.hpp"
#include "dram/mapping/mapping.hpp"

namespace unp::dram::mapping {

struct TimingConfig {
  double row_hit_ns = 45.0;
  double row_miss_ns = 90.0;
  double row_conflict_ns = 135.0;
  double noise_sigma_ns = 3.0;
};

class AccessTimingOracle {
 public:
  AccessTimingOracle(const DramMapping& mapping, const TimingConfig& timing,
                     std::uint64_t seed)
      : mapping_(mapping), timing_(timing), rng_(seed, /*stream_id=*/0x0AC1) {}

  /// Latency of accessing `word_addr`, updating the open-row state.
  [[nodiscard]] double access(std::uint64_t word_addr) {
    const DramCoordinate c = mapping_.decode(word_addr);
    double base = timing_.row_miss_ns;
    const auto it = open_rows_.find(c.bank);
    if (it != open_rows_.end()) {
      base = (it->second == c.row) ? timing_.row_hit_ns
                                   : timing_.row_conflict_ns;
      it->second = c.row;
    } else {
      open_rows_.emplace(c.bank, c.row);
    }
    ++accesses_;
    return base + rng_.normal(0.0, timing_.noise_sigma_ns);
  }

  /// Total accesses served (the solver's measurement budget).
  [[nodiscard]] std::uint64_t accesses() const noexcept { return accesses_; }

  [[nodiscard]] const DramMapping& mapping() const noexcept { return mapping_; }

 private:
  const DramMapping& mapping_;
  TimingConfig timing_;
  RngStream rng_;
  std::unordered_map<std::uint32_t, std::uint64_t> open_rows_;
  std::uint64_t accesses_ = 0;
};

}  // namespace unp::dram::mapping
