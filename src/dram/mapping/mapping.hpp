// Physical-address -> DRAM-coordinate mapping model.
//
// Memory controllers spread consecutive physical addresses across channels,
// ranks and banks with XOR-folded selection functions (parity of a subset
// of address bits), keeping a contiguous column range for row-buffer
// locality.  This module models that mapping explicitly so access-dependent
// fault mechanisms (Rowhammer) can reason about physical adjacency, and so
// the solver in solver.hpp can demonstrate recovering the mapping from
// timing alone - the DRAMA / zenhammer technique, run against our own
// synthetic oracle.
//
// Invertibility by construction: each bank-level function owns one
// *dedicated select bit* that appears in no other function and in neither
// the row nor the column mask; the rest of the function is a fold mask over
// row/column bits.  Given (bank, row, column) the dedicated bit of every
// function is then uniquely determined, which is what makes encode() exact.
//
// Addresses are in units of 32-bit scan words (the granularity of the whole
// telemetry pipeline), so `word_index` from a FaultEvent/ErrorRecord can be
// decoded directly.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace unp::dram::mapping {

/// One XOR-folded bank/rank/channel selection function.
struct BankFunction {
  int select_bit = 0;            ///< dedicated physical bit (unique to this fn)
  std::uint64_t fold_mask = 0;   ///< extra XOR taps (subset of row|column bits)

  /// Full parity mask of the function.
  [[nodiscard]] std::uint64_t mask() const noexcept {
    return (std::uint64_t{1} << select_bit) | fold_mask;
  }

  friend bool operator==(const BankFunction&, const BankFunction&) = default;
};

struct MappingConfig {
  std::string name;
  int address_bits = 0;          ///< physical word-address width
  std::uint64_t column_mask = 0;
  std::uint64_t row_mask = 0;
  std::vector<BankFunction> bank_functions;  ///< channel+rank+bank selects

  friend bool operator==(const MappingConfig&, const MappingConfig&) = default;
};

/// DRAM coordinates of one word.  `bank` is the combined
/// channel/rank/bank-group/bank ordinal (bit k = value of bank function k).
struct DramCoordinate {
  std::uint32_t bank = 0;
  std::uint64_t row = 0;
  std::uint64_t column = 0;

  friend bool operator==(const DramCoordinate&, const DramCoordinate&) = default;
};

class DramMapping {
 public:
  /// Validates the config (masks partition the address bits, select bits
  /// dedicated, folds confined to row|column); throws ContractViolation on
  /// an ill-formed config.
  explicit DramMapping(MappingConfig config);

  [[nodiscard]] DramCoordinate decode(std::uint64_t word_addr) const noexcept;
  [[nodiscard]] std::uint64_t encode(const DramCoordinate& c) const noexcept;

  [[nodiscard]] std::uint64_t total_words() const noexcept {
    return std::uint64_t{1} << config_.address_bits;
  }
  [[nodiscard]] std::uint32_t banks() const noexcept {
    return std::uint32_t{1} << config_.bank_functions.size();
  }
  [[nodiscard]] std::uint64_t rows() const noexcept;
  [[nodiscard]] std::uint64_t columns() const noexcept;

  [[nodiscard]] const MappingConfig& config() const noexcept { return config_; }

  /// Canonical (RREF) basis of the bank-function span: the
  /// representation-independent identity of the bank addressing scheme,
  /// directly comparable with a MappingSolver result.
  [[nodiscard]] std::vector<std::uint64_t> canonical_bank_functions() const;

 private:
  MappingConfig config_;
};

/// Names of the built-in geometry menu.
[[nodiscard]] const std::vector<std::string>& mapping_menu();

/// Look up a menu geometry by name.  Throws ContractViolation for names not
/// in mapping_menu().
[[nodiscard]] MappingConfig make_mapping_config(std::string_view name);

}  // namespace unp::dram::mapping
