// Reverse engineering of DRAM address mappings from timing alone.
//
// The DRAMA technique as implemented by zenhammer's DramAnalyzer, run
// against our synthetic oracle:
//
//   1. Calibrate: measure many random address pairs; the pair-latency
//      distribution is bimodal (row-buffer hit vs bank conflict), so the
//      decision threshold is the midpoint of the observed extremes.
//   2. Cluster: group a pool of random addresses into same-bank sets by
//      conflict timing against a growing list of cluster representatives.
//   3. Solve the bank functions: XOR differences of same-cluster addresses
//      all lie in the null space of the bank-function matrix; the bank
//      functions are the canonical (RREF) basis of that span's dual.
//   4. Classify the remaining bits: for every non-pivot bit f, the
//      null-space vector v_f (e_f plus compensating pivot bits) connects
//      two same-bank addresses; the pair conflicts iff f is a row bit.
//
// The result is exact - recovered functions equal the oracle mapping's
// canonical_bank_functions() and row mask - which the self-test asserts
// for every geometry in the menu.
#pragma once

#include <cstdint>
#include <vector>

#include "dram/mapping/timing_oracle.hpp"

namespace unp::dram::mapping {

struct SolverConfig {
  /// Random addresses clustered into same-bank sets.
  int pool_size = 768;
  /// Alternating access rounds per pair measurement (after a 2-access
  /// warm-up that opens both rows).
  int probes_per_pair = 8;
  /// Random pairs used to calibrate the hit/conflict threshold.
  int calibration_pairs = 512;
  /// Random probes per free bit in the row/column classification step.
  int classify_probes = 4;
  /// Fresh random pairs measured to cross-check the recovered model.
  int verify_pairs = 256;
  std::uint64_t seed = 1;
};

struct SolveResult {
  /// Canonical (RREF) bank-function masks, sorted by pivot bit.
  std::vector<std::uint64_t> bank_functions;
  std::uint64_t row_mask = 0;
  std::uint64_t column_mask = 0;  ///< complement: non-row, non-pivot free bits

  int clusters = 0;                   ///< same-bank sets found in the pool
  double threshold_ns = 0.0;          ///< calibrated decision threshold
  std::uint64_t measurements = 0;     ///< oracle accesses consumed
  /// Fraction of verify_pairs whose measured class matched the recovered
  /// model's prediction (1.0 = perfect).
  double verify_agreement = 0.0;
};

class MappingSolver {
 public:
  explicit MappingSolver(const SolverConfig& config = {}) : config_(config) {}

  /// Recover the mapping behind `oracle`.  `address_bits` is the size of
  /// the probeable physical space (known to any attacker: it is the module
  /// capacity), not a peek into the mapping.
  [[nodiscard]] SolveResult solve(AccessTimingOracle& oracle,
                                  int address_bits) const;

 private:
  SolverConfig config_;
};

}  // namespace unp::dram::mapping
