#include "dram/cell_model.hpp"

namespace unp::dram {

WordCorruption CellLeakModel::make_corruption(Word affected_mask,
                                              RngStream& rng) const noexcept {
  Word stuck = 0;
  Word remaining = affected_mask;
  while (remaining != 0) {
    const int b = std::countr_zero(remaining);
    if (!rng.bernoulli(config_.discharge_probability)) {
      stuck |= Word{1} << b;  // charge gain: cell reads 1
    }
    remaining &= remaining - 1;
  }
  return WordCorruption{affected_mask, stuck};
}

}  // namespace unp::dram
