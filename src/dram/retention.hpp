// Cell retention-time model: the physics beneath the weak bit.
//
// A DRAM cell must hold its charge for one refresh interval (64 ms
// nominal).  Retention times are approximately lognormal with a long weak
// tail, shrink exponentially with temperature (roughly halving every
// ~10 degC), and a small population of cells exhibits *variable retention
// time* (VRT): they flip between a healthy and a weak retention state at
// random - which is exactly the intermittent, episodic signature of the
// study's weak-bit nodes (Section III-H) and of the burn-in escapes the
// paper describes (ref [17]).
//
// The model answers two questions the campaign data alone cannot:
//   - how rare must a tail cell be for a 4 GB node to ship with ~one of
//     them (the fleet saw 2 weak-bit nodes in 923)?
//   - what would the weak bit's leak rate have done on a hot node (the
//     paper saw no temperature correlation only because scanning nodes
//     idle at 30-40 degC)?
#pragma once

#include <cstdint>

#include "common/rng.hpp"

namespace unp::dram {

class RetentionModel {
 public:
  struct Config {
    /// Median retention at the reference temperature, seconds.  Healthy
    /// cells hold charge for seconds - orders of magnitude beyond the
    /// 64 ms refresh.
    double median_retention_s = 2.0;
    /// Lognormal sigma of the healthy population.
    double sigma = 0.4;
    /// Fraction of cells in the VRT population.
    double vrt_fraction = 2e-7;
    /// Retention divisor while a VRT cell sits in its weak state.
    double vrt_weak_divisor = 8.0;
    /// Reference temperature for median_retention_s.
    double reference_c = 45.0;
    /// Temperature sensitivity: retention halves every this many degC.
    double halving_c = 10.0;
    /// DRAM refresh interval, seconds.
    double refresh_interval_s = 0.064;
  };

  RetentionModel() : RetentionModel(Config{}) {}
  explicit RetentionModel(const Config& config) : config_(config) {}

  /// Temperature scaling factor applied to any retention time.
  [[nodiscard]] double temperature_factor(double celsius) const noexcept;

  /// Draw one cell's base (healthy-state) retention time at the reference
  /// temperature.
  [[nodiscard]] double sample_retention_s(RngStream& rng) const noexcept;

  /// Probability that a cell with base retention `retention_s` misses the
  /// refresh deadline at `celsius` (deterministic threshold model: 1 or 0).
  [[nodiscard]] bool leaks_at(double retention_s, double celsius) const noexcept;

  /// Temperature at which a cell with base retention `retention_s` starts
  /// missing refreshes.
  [[nodiscard]] double critical_temperature_c(double retention_s) const noexcept;

  /// Expected number of cells in a `bytes`-sized device whose *weak-state*
  /// VRT retention misses refresh at `celsius` - i.e. the expected count of
  /// intermittently observable weak bits per device.
  [[nodiscard]] double expected_weak_bits(std::uint64_t bytes,
                                          double celsius) const noexcept;

  [[nodiscard]] const Config& config() const noexcept { return config_; }

 private:
  Config config_;
};

}  // namespace unp::dram
