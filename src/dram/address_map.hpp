// Logical word index <-> physical (channel, rank, bank, row, column) mapping.
//
// Memory controllers interleave consecutive logical addresses across banks
// and ranks to maximize parallelism, which is exactly why the paper's
// simultaneous multi-word corruptions ("cells in physical proximity or
// alignment ... the memory controller maps them to different address words")
// appear at scattered logical addresses.  The map implements the common
// RoRaBaCo bit-slicing with bank XOR-interleaving.
#pragma once

#include <cstdint>
#include <vector>

#include "dram/geometry.hpp"

namespace unp::dram {

class AddressMap {
 public:
  explicit AddressMap(const Geometry& geometry);

  /// Physical coordinates of logical word `index` in [0, total_words).
  [[nodiscard]] WordLocation decode(std::uint64_t word_index) const;

  /// Inverse of decode.
  [[nodiscard]] std::uint64_t encode(const WordLocation& loc) const;

  /// Logical word indices of every word in the same physical row as
  /// `word_index`, ascending (the row a row-upset event would wipe).
  [[nodiscard]] std::vector<std::uint64_t> row_neighbors(std::uint64_t word_index) const;

  /// Logical word indices of the words in the same column position across
  /// every row of the same bank, limited to `count` entries starting at the
  /// current row (a column-fault alignment set).
  [[nodiscard]] std::vector<std::uint64_t> column_neighbors(std::uint64_t word_index,
                                                            std::uint32_t count) const;

  [[nodiscard]] const Geometry& geometry() const noexcept { return geometry_; }

 private:
  Geometry geometry_;
  // Cached bit widths of each field.
  int column_bits_;
  int bank_bits_;
  int rank_bits_;
  int row_bits_;
};

/// Number of bits needed to index `n` values; requires n to be a power of 2.
[[nodiscard]] int log2_exact(std::uint64_t n);

}  // namespace unp::dram
