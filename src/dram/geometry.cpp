// Geometry is constexpr/header-only; the translation unit anchors the target.
#include "dram/geometry.hpp"
