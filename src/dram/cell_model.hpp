// Cell-level corruption semantics.
//
// A DRAM cell stores charge; the dominant failure mode is charge *loss*, so
// ~90% of observed bit flips in the study go 1 -> 0 (Section III-C).  A
// fault is therefore not "bit X toggles" but "cell X now reads 0 (or 1)
// regardless of what was written" for the duration of the fault.  Whether
// the scanner *sees* it depends on the pattern phase: a discharged cell is
// invisible while the expected word is 0x00000000 and manifests in the
// 0xFFFFFFFF (or counter-value) phase.  This latency is modelled explicitly
// and is what makes Table I's expected values informative.
#pragma once

#include <cstdint>

#include "common/bitops.hpp"
#include "common/rng.hpp"

namespace unp::dram {

/// Corruption of one 32-bit word: which cells are affected and the value
/// each affected cell now returns.
struct WordCorruption {
  Word affected_mask = 0;   ///< cells overridden by the fault
  Word stuck_value = 0;     ///< value read for affected cells (bitwise)

  /// Value observed when the scanner expects `expected`.
  [[nodiscard]] Word apply(Word expected) const noexcept {
    return (expected & ~affected_mask) | (stuck_value & affected_mask);
  }

  /// Bits whose observed value differs from `expected`.
  [[nodiscard]] Word visible_mask(Word expected) const noexcept {
    return expected ^ apply(expected);
  }

  /// True if at least one affected cell misreads under `expected`.
  [[nodiscard]] bool visible(Word expected) const noexcept {
    return visible_mask(expected) != 0;
  }

  friend bool operator==(const WordCorruption&, const WordCorruption&) = default;
};

/// Direction statistics of the physical mechanism.
class CellLeakModel {
 public:
  struct Config {
    /// Probability an affected cell discharges (reads 0); the complement
    /// gains charge (reads 1).  Paper: ~90% of flips were 1 -> 0.
    double discharge_probability = 0.90;
  };

  CellLeakModel() = default;
  explicit CellLeakModel(const Config& config) : config_(config) {}

  /// Draw per-cell directions for every bit of `affected_mask`.
  [[nodiscard]] WordCorruption make_corruption(Word affected_mask,
                                               RngStream& rng) const noexcept;

  /// Corruption in which every affected cell discharges.
  [[nodiscard]] static WordCorruption all_discharge(Word affected_mask) noexcept {
    return WordCorruption{affected_mask, 0};
  }

  [[nodiscard]] const Config& config() const noexcept { return config_; }

 private:
  Config config_{};
};

}  // namespace unp::dram
