#include "dram/address_map.hpp"

#include <bit>

#include "common/require.hpp"

namespace unp::dram {

int log2_exact(std::uint64_t n) {
  UNP_REQUIRE(n > 0 && std::has_single_bit(n));
  return std::countr_zero(n);
}

AddressMap::AddressMap(const Geometry& geometry)
    : geometry_(geometry),
      column_bits_(log2_exact(geometry.columns)),
      bank_bits_(log2_exact(static_cast<std::uint64_t>(geometry.banks))),
      rank_bits_(log2_exact(static_cast<std::uint64_t>(geometry.ranks))),
      row_bits_(log2_exact(geometry.rows)) {
  UNP_REQUIRE(geometry.channels == 1);  // prototype nodes are single-channel
}

WordLocation AddressMap::decode(std::uint64_t word_index) const {
  UNP_REQUIRE(word_index < geometry_.total_words());
  // Layout (LSB first): column | bank | rank | row   (Co-Ba-Ra-Ro), the
  // interleaving order that spreads consecutive addresses across banks at
  // row-buffer granularity.
  std::uint64_t v = word_index;
  WordLocation loc;
  loc.column = static_cast<std::uint32_t>(v & ((1ULL << column_bits_) - 1));
  v >>= column_bits_;
  auto bank = static_cast<std::uint32_t>(v & ((1ULL << bank_bits_) - 1));
  v >>= bank_bits_;
  loc.rank = static_cast<int>(v & ((1ULL << rank_bits_) - 1));
  v >>= rank_bits_;
  loc.row = static_cast<std::uint32_t>(v & ((1ULL << row_bits_) - 1));
  // Bank XOR interleaving: fold low row bits into the bank select so that
  // same-column words of neighbouring rows live in different banks.
  bank ^= loc.row & ((1u << bank_bits_) - 1);
  loc.bank = static_cast<int>(bank);
  return loc;
}

std::uint64_t AddressMap::encode(const WordLocation& loc) const {
  UNP_REQUIRE(loc.channel == 0);
  UNP_REQUIRE(loc.rank >= 0 && loc.rank < geometry_.ranks);
  UNP_REQUIRE(loc.bank >= 0 && loc.bank < geometry_.banks);
  UNP_REQUIRE(loc.row < geometry_.rows);
  UNP_REQUIRE(loc.column < geometry_.columns);
  auto bank = static_cast<std::uint32_t>(loc.bank);
  bank ^= loc.row & ((1u << bank_bits_) - 1);  // undo XOR interleave
  std::uint64_t v = loc.row;
  v = (v << rank_bits_) | static_cast<std::uint64_t>(loc.rank);
  v = (v << bank_bits_) | bank;
  v = (v << column_bits_) | loc.column;
  return v;
}

std::vector<std::uint64_t> AddressMap::row_neighbors(std::uint64_t word_index) const {
  WordLocation loc = decode(word_index);
  std::vector<std::uint64_t> out;
  out.reserve(geometry_.columns);
  for (std::uint32_t c = 0; c < geometry_.columns; ++c) {
    loc.column = c;
    out.push_back(encode(loc));
  }
  return out;
}

std::vector<std::uint64_t> AddressMap::column_neighbors(
    std::uint64_t word_index, std::uint32_t count) const {
  WordLocation loc = decode(word_index);
  std::vector<std::uint64_t> out;
  out.reserve(count);
  const std::uint32_t start_row = loc.row;
  for (std::uint32_t i = 0; i < count && start_row + i < geometry_.rows; ++i) {
    loc.row = start_row + i;
    out.push_back(encode(loc));
  }
  return out;
}

}  // namespace unp::dram
