#include "policy/loop.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <set>

#include "common/require.hpp"
#include "common/thread_pool.hpp"
#include "telemetry/archive.hpp"

namespace unp::policy {

namespace {

/// Page (4 KiB) of a scan-space word: virtual address is word_index * 8.
std::uint64_t page_of_word(std::uint64_t word_index) noexcept {
  return word_index >> 9;
}

void sort_canonical(std::vector<analysis::FaultRecord>& faults) {
  std::sort(faults.begin(), faults.end(),
            [](const analysis::FaultRecord& a, const analysis::FaultRecord& b) {
              if (a.first_seen != b.first_seen) return a.first_seen < b.first_seen;
              return a.virtual_address < b.virtual_address;
            });
}

std::uint64_t raw_log_count(const telemetry::NodeLog& log) {
  std::uint64_t raw = 0;
  for (const auto& run : log.error_runs()) raw += run.count;
  return raw;
}

/// Everything one node's closed loop produced.
struct NodeOutcome {
  std::vector<Actuation> actuations;
  std::vector<std::int64_t> fault_days;  ///< campaign day of each final fault
  std::uint64_t closed_faults = 0;
  std::int64_t quarantined_seconds = 0;
  std::int64_t scan_seconds_removed = 0;
  std::uint64_t entries = 0;
  std::uint64_t pages_retired = 0;
  int rounds = 0;
};

NodeOutcome run_node_loop(const ClosedLoopConfig& config,
                          const CampaignWindow& window, cluster::NodeId node,
                          sched::ScanPlan plan,
                          std::vector<faults::FaultEvent> events,
                          std::uint64_t session_seed) {
  const ThresholdQuarantinePolicy::Config& ctl = config.controller;
  const bool overheating = cluster::Topology::is_overheating_slot(node);

  NodeOutcome out;
  std::set<TimePoint> applied_cuts;
  std::set<std::uint64_t> retired_pages;

  std::vector<analysis::FaultRecord> faults;
  while (true) {
    ++out.rounds;
    const telemetry::NodeLog log = sim::simulate_node(
        config.campaign.session, node, plan, events, overheating, session_seed);
    faults = analysis::collapse_node_log(node, log,
                                         config.extraction.merge_window_s);
    sort_canonical(faults);

    if (static_cast<int>(out.actuations.size()) >=
        config.max_actuations_per_node) {
      break;
    }

    // Replay the threshold controller over what this round observed; stop at
    // the first actuation not applied yet, apply it, re-simulate.
    bool actuated = false;
    TimePoint until = 0;
    std::int64_t counting_day = -1;
    std::uint64_t errors_today = 0;
    std::map<std::uint64_t, std::uint64_t> addr_seen;
    for (const auto& f : faults) {
      if (ctl.period_days > 0 && f.first_seen < until) continue;
      const std::int64_t day = window.day_of_campaign(f.first_seen);
      if (day != counting_day) {
        counting_day = day;
        errors_today = 0;
      }
      ++errors_today;

      if (ctl.retire_page_repeats > 0 &&
          ++addr_seen[f.virtual_address] >= ctl.retire_page_repeats) {
        const std::uint64_t page = f.virtual_address >> 12;
        if (retired_pages.insert(page).second) {
          for (auto& ev : events) {
            std::erase_if(ev.words, [&](const faults::WordFault& w) {
              return page_of_word(w.word_index) == page;
            });
          }
          std::erase_if(events, [](const faults::FaultEvent& ev) {
            return ev.words.empty();
          });
          Actuation act;
          act.node = node;
          act.cut = {f.first_seen, f.first_seen};
          act.retired_page = page;
          act.is_retirement = true;
          out.actuations.push_back(act);
          ++out.pages_retired;
          actuated = true;
          break;
        }
      }

      if (ctl.period_days > 0 && errors_today > ctl.trigger_threshold) {
        const TimePoint until_q = std::min(
            window.end, f.first_seen + static_cast<TimePoint>(ctl.period_days) *
                                           kSecondsPerDay);
        if (applied_cuts.insert(f.first_seen).second) {
          // Cut one second AFTER the trigger so the evidence that produced
          // the decision survives re-simulation (convergence note on top).
          Actuation act;
          act.node = node;
          act.cut = {f.first_seen + 1, until_q};
          act.summary = plan.subtract_window(act.cut, config.min_keep_seconds);
          out.scan_seconds_removed += act.summary.seconds_removed;
          out.quarantined_seconds += until_q - f.first_seen;
          ++out.entries;
          out.actuations.push_back(act);
          actuated = true;
          break;
        }
        until = until_q;  // already actuated: keep suppressing past it
      }
    }
    if (!actuated) break;
  }

  out.closed_faults = faults.size();
  out.fault_days.reserve(faults.size());
  for (const auto& f : faults) {
    out.fault_days.push_back(window.day_of_campaign(f.first_seen));
  }
  return out;
}

}  // namespace

ClosedLoopResult run_closed_loop(const ClosedLoopConfig& config) {
  UNP_REQUIRE(config.threads >= 1);
  UNP_REQUIRE(config.controller.period_days >= 0);
  const sim::CampaignConfig& cc = config.campaign;
  const CampaignWindow& window = cc.window;

  // Open-loop wiring, bit-for-bit the streaming campaign's (campaign.hpp).
  const cluster::Topology topology = sim::campaign_topology(cc);
  const cluster::AvailabilityModel availability(sim::campaign_availability(cc));
  const sched::ScanPlanner planner(sim::campaign_planner_config(cc));
  const auto& nodes = topology.monitored_nodes();
  const std::size_t n = nodes.size();

  std::unique_ptr<ThreadPool> pool;
  if (config.threads > 1) pool = std::make_unique<ThreadPool>(config.threads);
  auto run_parallel = [&](std::size_t count, auto&& fn) {
    if (pool) {
      pool->parallel_for(count, fn);
    } else {
      for (std::size_t i = 0; i < count; ++i) fn(i);
    }
  };

  std::vector<sched::ScanPlan> plans(n);
  run_parallel(n, [&](std::size_t i) {
    plans[i] = planner.plan(nodes[i], availability.build(nodes[i]));
  });

  std::vector<faults::NodeContext> contexts(n);
  for (std::size_t i = 0; i < n; ++i) {
    contexts[i].node = nodes[i];
    contexts[i].plan = &plans[i];
    contexts[i].scanned_hours = plans[i].scanned_hours();
    contexts[i].near_overheating_slot =
        nodes[i].soc == cluster::kOverheatingSoc - 1 ||
        nodes[i].soc == cluster::kOverheatingSoc + 1;
  }
  const faults::FaultModelSuite suite(cc.faults);
  const std::vector<faults::FaultEvent> ground_truth =
      suite.generate(contexts, sim::campaign_fault_seed(cc));
  std::vector<std::vector<faults::FaultEvent>> per_node(
      static_cast<std::size_t>(cluster::kStudyNodeSlots));
  for (const auto& ev : ground_truth) {
    per_node[static_cast<std::size_t>(cluster::node_index(ev.node))].push_back(ev);
  }
  const std::uint64_t session_seed = sim::campaign_session_seed(cc);

  // Open-loop observation: what the unactuated campaign saw per node.
  std::vector<std::vector<analysis::FaultRecord>> open_faults(n);
  std::vector<std::uint64_t> raw(n, 0);
  run_parallel(n, [&](std::size_t i) {
    const cluster::NodeId node = nodes[i];
    const telemetry::NodeLog log = sim::simulate_node(
        cc.session, node, plans[i],
        per_node[static_cast<std::size_t>(cluster::node_index(node))],
        cluster::Topology::is_overheating_slot(node), session_seed);
    raw[i] = raw_log_count(log);
    open_faults[i] =
        analysis::collapse_node_log(node, log, config.extraction.merge_window_s);
    sort_canonical(open_faults[i]);
  });

  // Exclusions, resolved exactly as the extraction + regime analyses do:
  // pathological filter on raw totals, then the loudest surviving node.
  ClosedLoopResult result;
  std::uint64_t raw_total = 0;
  for (std::size_t i = 0; i < n; ++i) raw_total += raw[i];
  std::vector<bool> excluded(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    const bool pathological =
        raw[i] >= config.extraction.pathological_min_raw &&
        static_cast<double>(raw[i]) >
            config.extraction.pathological_raw_fraction *
                static_cast<double>(raw_total);
    if (pathological) {
      excluded[i] = true;
      result.excluded_nodes.push_back(nodes[i]);
    }
  }
  std::size_t loudest = n;
  std::uint64_t loudest_count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (excluded[i]) continue;
    if (open_faults[i].size() > loudest_count) {
      loudest_count = open_faults[i].size();
      loudest = i;
    }
  }
  if (loudest < n && loudest_count > 0) {
    excluded[loudest] = true;
    result.excluded_nodes.push_back(nodes[loudest]);
  }

  // Closed loop, node by node (timelines are independent, so this runs on
  // any thread count with identical results).
  std::vector<NodeOutcome> outcomes(n);
  run_parallel(n, [&](std::size_t i) {
    if (excluded[i] || open_faults[i].empty()) return;
    const cluster::NodeId node = nodes[i];
    outcomes[i] = run_node_loop(
        config, window, node, plans[i],
        per_node[static_cast<std::size_t>(cluster::node_index(node))],
        session_seed);
  });

  // Fleet aggregation, in node order for determinism.
  const auto days =
      static_cast<std::size_t>(window.duration_days()) + 2;
  std::vector<std::uint64_t> errors_per_day(days, 0);
  for (std::size_t i = 0; i < n; ++i) {
    if (excluded[i]) continue;
    result.open_loop_errors += open_faults[i].size();
    const NodeOutcome& out = outcomes[i];
    result.closed_loop_errors += out.closed_faults;
    result.quarantine_entries += out.entries;
    result.pages_retired += out.pages_retired;
    result.quarantined_seconds += out.quarantined_seconds;
    result.scan_seconds_removed += out.scan_seconds_removed;
    for (const std::int64_t day : out.fault_days) {
      if (day < 0 || static_cast<std::size_t>(day) >= days) continue;
      ++errors_per_day[static_cast<std::size_t>(day)];
    }
    for (const auto& act : out.actuations) result.actuations.push_back(act);
    if (!open_faults[i].empty() || !out.actuations.empty()) {
      result.per_node.push_back(ClosedLoopNodeReport{
          nodes[i], open_faults[i].size(), out.closed_faults,
          static_cast<int>(out.actuations.size()), out.rounds});
    }
  }

  const double campaign_hours =
      static_cast<double>(window.duration_seconds()) / kSecondsPerHour;
  result.open_mtbf_hours =
      result.open_loop_errors > 0
          ? campaign_hours / static_cast<double>(result.open_loop_errors)
          : campaign_hours;
  result.closed_mtbf_hours =
      result.closed_loop_errors > 0
          ? campaign_hours / static_cast<double>(result.closed_loop_errors)
          : campaign_hours;
  result.node_days_quarantined =
      static_cast<double>(result.quarantined_seconds) / kSecondsPerDay;
  result.availability_loss =
      result.node_days_quarantined /
      (static_cast<double>(cluster::kStudyNodeSlots) *
       static_cast<double>(window.duration_days()));

  result.regime = analysis::classify_daily_counts(
      errors_per_day, config.controller.trigger_threshold);
  result.checkpoint = resilience::compare_checkpoint_policies(
      result.regime, config.checkpoint_cost_hours);

  // Causal checkpointing: day d's interval is chosen from day d-1's regime
  // (the information actually available at the start of d).
  const std::size_t total_days = result.regime.errors_per_day.size();
  if (total_days > 0) {
    double static_sum = 0.0, adaptive_sum = 0.0;
    for (std::size_t d = 0; d < total_days; ++d) {
      const std::uint64_t errors = result.regime.errors_per_day[d];
      const double day_mtbf =
          errors > 0 ? 24.0 / static_cast<double>(errors) : 1e6;
      const bool yesterday_degraded = d > 0 && result.regime.degraded[d - 1];
      const double interval = yesterday_degraded
                                  ? result.checkpoint.degraded_interval_hours
                                  : result.checkpoint.normal_interval_hours;
      static_sum += resilience::waste_fraction(
          result.checkpoint.static_interval_hours,
          config.checkpoint_cost_hours, day_mtbf);
      adaptive_sum += resilience::waste_fraction(
          interval, config.checkpoint_cost_hours, day_mtbf);
    }
    result.causal_static_waste = static_sum / static_cast<double>(total_days);
    result.causal_adaptive_waste =
        adaptive_sum / static_cast<double>(total_days);
  }
  return result;
}

}  // namespace unp::policy
