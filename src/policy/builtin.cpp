#include "policy/builtin.hpp"

#include <cstdio>
#include <utility>

#include "common/require.hpp"

namespace unp::policy {

namespace {

std::string format(const char* fmt, auto... args) {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer), fmt, args...);
  return buffer;
}

}  // namespace

// --- ThresholdQuarantinePolicy ---------------------------------------------

void ThresholdQuarantinePolicy::begin(const PolicyContext&) {
  address_faults_.clear();
  retired_pages_.clear();
  triggers_ = 0;
}

void ThresholdQuarantinePolicy::on_fault(const analysis::FaultRecord& fault,
                                         const NodeHealth& health,
                                         std::vector<Action>& actions) {
  if (config_.retire_page_repeats > 0) {
    const int index = cluster::node_index(fault.node);
    const std::uint64_t seen =
        ++address_faults_[{index, fault.virtual_address}];
    if (seen >= config_.retire_page_repeats) {
      // One retire action per page; the engine's absorption makes repeats
      // invisible anyway, but a clean action log matters for the ledgers.
      const std::uint64_t page = fault.virtual_address >> 12;
      if (retired_pages_.insert({index, page}).second) {
        actions.push_back(Action{ActionKind::kRetirePage, fault.node,
                                 fault.first_seen, 0, fault.virtual_address,
                                 0.0});
      }
    }
  }
  if (config_.period_days > 0 &&
      health.errors_today > config_.trigger_threshold) {
    ++triggers_;
    actions.push_back(Action{ActionKind::kQuarantineNode, fault.node,
                             fault.first_seen, config_.period_days, 0, 0.0});
  }
}

std::string ThresholdQuarantinePolicy::report() const {
  return format("period %dd, trigger >%llu/day, %llu triggers",
                config_.period_days,
                static_cast<unsigned long long>(config_.trigger_threshold),
                static_cast<unsigned long long>(triggers_));
}

// --- PredictiveQuarantinePolicy --------------------------------------------

void PredictiveQuarantinePolicy::begin(const PolicyContext&) {
  history_.clear();
  flagged_.clear();
  predictions_ = 0;
}

void PredictiveQuarantinePolicy::on_fault(const analysis::FaultRecord& fault,
                                          const NodeHealth& health,
                                          std::vector<Action>& actions) {
  const int index = cluster::node_index(fault.node);
  auto [it, inserted] = history_.try_emplace(
      index, resilience::TrailingDayWindow(config_.predictor.history_days));
  resilience::TrailingDayWindow& window = it->second;

  // The evidence available when this day began: errors on the trailing
  // window of days strictly before it (the batch evaluator's exact rule).
  if (window.sum_before(health.day) > config_.predictor.trigger_errors) {
    ++predictions_;
    if (flagged_.insert(index).second) {
      actions.push_back(Action{ActionKind::kAvoidPlacement, fault.node,
                               fault.first_seen, 0, 0, 0.0});
    }
    actions.push_back(Action{ActionKind::kQuarantineNode, fault.node,
                             fault.first_seen, config_.quarantine_days, 0,
                             0.0});
  }
  window.add(health.day, 1);
}

std::string PredictiveQuarantinePolicy::report() const {
  return format("history %dd, trigger >%llu, %llu at-risk hits, %zu nodes flagged",
                config_.predictor.history_days,
                static_cast<unsigned long long>(config_.predictor.trigger_errors),
                static_cast<unsigned long long>(predictions_),
                flagged_.size());
}

// --- AdaptiveCheckpointPolicy ----------------------------------------------

void AdaptiveCheckpointPolicy::begin(const PolicyContext& ctx) {
  window_ = ctx.window;
  days_ = static_cast<std::size_t>(window_.duration_days()) + 2;
  counts_.assign(static_cast<std::size_t>(cluster::kStudyNodeSlots) * days_, 0);
  regime_ = analysis::RegimeResult{};
  comparison_ = resilience::CheckpointComparison{};
}

void AdaptiveCheckpointPolicy::on_fault(const analysis::FaultRecord& fault,
                                        const NodeHealth& health,
                                        std::vector<Action>& actions) {
  const auto node = static_cast<std::size_t>(cluster::node_index(fault.node));
  if (health.day >= 0 && static_cast<std::size_t>(health.day) < days_) {
    ++counts_[node * days_ + static_cast<std::size_t>(health.day)];
  }

  // Live regime reaction: the instant a node's day crosses into degraded,
  // request a shorter interval sized to the day's error rate so far.  (The
  // authoritative fleet-wide comparison is computed at finish, once the
  // regimes are final.)
  if (health.errors_today == config_.normal_threshold + 1) {
    const double day_mtbf_h =
        24.0 / static_cast<double>(health.errors_today);
    actions.push_back(Action{
        ActionKind::kSetCheckpointInterval, fault.node, fault.first_seen, 0, 0,
        resilience::young_interval_hours(config_.checkpoint_cost_hours,
                                         day_mtbf_h)});
  }
}

void AdaptiveCheckpointPolicy::finish(const FinalizeContext& ctx) {
  std::vector<bool> excluded(static_cast<std::size_t>(cluster::kStudyNodeSlots),
                             false);
  for (const auto node : ctx.excluded_nodes) {
    excluded[static_cast<std::size_t>(cluster::node_index(node))] = true;
  }
  std::vector<std::uint64_t> errors_per_day(days_, 0);
  for (std::size_t node = 0;
       node < static_cast<std::size_t>(cluster::kStudyNodeSlots); ++node) {
    if (excluded[node]) continue;
    for (std::size_t d = 0; d < days_; ++d) {
      errors_per_day[d] += counts_[node * days_ + d];
    }
  }
  regime_ = analysis::classify_daily_counts(std::move(errors_per_day),
                                            config_.normal_threshold);
  comparison_ = resilience::compare_checkpoint_policies(
      regime_, config_.checkpoint_cost_hours);
  counts_.clear();
}

std::string AdaptiveCheckpointPolicy::report() const {
  return format(
      "static %.2fh waste %.4f -> adaptive %.2fh/%.2fh waste %.4f (%.1f%% less)",
      comparison_.static_interval_hours, comparison_.static_waste_fraction,
      comparison_.normal_interval_hours, comparison_.degraded_interval_hours,
      comparison_.adaptive_waste_fraction, 100.0 * comparison_.improvement());
}

// --- ProtectionSelectionPolicy ---------------------------------------------

ProtectionSelectionPolicy::ProtectionSelectionPolicy(Config config)
    : config_(std::move(config)) {
  // The menu must open with the resident baseline and escalate in strictly
  // increasing trigger order, or the rung walk below is ill-defined.
  UNP_REQUIRE(!config_.menu.empty());
  UNP_REQUIRE(config_.menu.front().escalate_after == 0);
  for (std::size_t i = 1; i < config_.menu.size(); ++i) {
    UNP_REQUIRE(config_.menu[i].escalate_after >
                config_.menu[i - 1].escalate_after);
  }
}

void ProtectionSelectionPolicy::begin(const PolicyContext&) {
  multibit_.assign(static_cast<std::size_t>(cluster::kStudyNodeSlots), 0);
  rung_.assign(static_cast<std::size_t>(cluster::kStudyNodeSlots), 0);
  escalations_ = 0;
  expected_caught_ = 0.0;
}

void ProtectionSelectionPolicy::on_fault(const analysis::FaultRecord& fault,
                                         const NodeHealth&,
                                         std::vector<Action>& actions) {
  if (!fault.is_multibit()) return;
  const auto index = static_cast<std::size_t>(cluster::node_index(fault.node));
  const std::uint64_t seen = ++multibit_[index];

  // Credit the rung that was in force when this fault landed.
  const Rung& current = config_.menu[rung_[index]];
  expected_caught_ += 1.0 - current.silent_fraction;

  // Walk up every rung the new count now clears (a burst can jump rungs).
  std::uint8_t target = rung_[index];
  while (static_cast<std::size_t>(target) + 1 < config_.menu.size() &&
         seen >= config_.menu[target + 1u].escalate_after) {
    ++target;
  }
  if (target != rung_[index]) {
    rung_[index] = target;
    ++escalations_;
    Action action;
    action.kind = ActionKind::kSetProtectionLevel;
    action.node = fault.node;
    action.time = fault.first_seen;
    action.protection = config_.menu[target].level;
    actions.push_back(action);
  }
}

std::string ProtectionSelectionPolicy::report() const {
  std::uint64_t multibit_total = 0;
  for (const std::uint64_t count : multibit_) multibit_total += count;
  return format(
      "%zu-rung menu, %llu multi-bit faults, %llu escalations, "
      "expected caught %.1f",
      config_.menu.size(), static_cast<unsigned long long>(multibit_total),
      static_cast<unsigned long long>(escalations_),
      expected_caught_);
}

}  // namespace unp::policy
