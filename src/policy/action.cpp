#include "policy/action.hpp"

#include <cstdio>

namespace unp::policy {

const char* to_string(ActionKind kind) noexcept {
  switch (kind) {
    case ActionKind::kQuarantineNode: return "quarantine";
    case ActionKind::kRetirePage: return "retire-page";
    case ActionKind::kSetCheckpointInterval: return "set-interval";
    case ActionKind::kAvoidPlacement: return "avoid-placement";
    case ActionKind::kSetProtectionLevel: return "set-protection";
  }
  return "?";
}

const char* to_string(ProtectionLevel level) noexcept {
  switch (level) {
    case ProtectionLevel::kUnprotected: return "unprotected";
    case ProtectionLevel::kSecded: return "secded";
    case ProtectionLevel::kChipkill: return "chipkill";
    case ProtectionLevel::kLargeBlock: return "large-block";
  }
  return "?";
}

std::string to_string(const Action& action) {
  char detail[64] = {0};
  switch (action.kind) {
    case ActionKind::kQuarantineNode:
      std::snprintf(detail, sizeof(detail), " for %dd", action.quarantine_days);
      break;
    case ActionKind::kRetirePage:
      std::snprintf(detail, sizeof(detail), " vaddr 0x%llx",
                    static_cast<unsigned long long>(action.virtual_address));
      break;
    case ActionKind::kSetCheckpointInterval:
      std::snprintf(detail, sizeof(detail), " to %.3fh", action.interval_hours);
      break;
    case ActionKind::kAvoidPlacement:
      break;
    case ActionKind::kSetProtectionLevel:
      std::snprintf(detail, sizeof(detail), " to %s",
                    to_string(action.protection));
      break;
  }
  return std::string(to_string(action.kind)) + " " + node_name(action.node) +
         detail + " @ " + format_iso8601(action.time);
}

}  // namespace unp::policy
