// Closed-loop campaign: policy actions feed back into what gets scanned.
//
// The shadow engine (engine.hpp) evaluates policies counterfactually — the
// stream is fixed, ledgers are bookkeeping.  This runner closes the loop:
// a quarantine actually removes the node's scan sessions for the period
// (sched::ScanPlan::subtract_window), a page retirement actually unmaps the
// faulting page from the fault events the scanner can observe, and the node
// is then RE-SIMULATED under the actuated plan.  What the next detection
// round sees is what a real deployment would have seen.
//
// Ground truth stays fixed: topology, availability, open-loop scan plans and
// the fault events are exactly those of sim::run_campaign_streaming for the
// same config (via the campaign_* wiring helpers), so open-loop observations
// match the streaming campaign bit-for-bit and every closed-loop delta is
// attributable to actuation alone.
//
// Convergence: detection replays the threshold-quarantine controller over a
// node's observed faults; each round applies at most one NEW actuation
// (earliest first).  A cut starts one second AFTER the trigger fault so the
// trigger itself survives re-simulation — the controller re-derives the same
// decision from the same evidence and the applied-cut set grows
// monotonically until no new trigger appears (bounded by
// max_actuations_per_node).
#pragma once

#include <cstdint>
#include <vector>

#include "policy/builtin.hpp"
#include "resilience/checkpoint.hpp"
#include "sim/campaign.hpp"

namespace unp::policy {

struct ClosedLoopConfig {
  sim::CampaignConfig campaign{};
  analysis::ExtractionConfig extraction{};
  /// The controller that gets actuated (retire_page_repeats > 0 also
  /// enables physical page retirement).
  ThresholdQuarantinePolicy::Config controller{};
  /// Clipped session remnants shorter than this are cancelled outright.
  std::int64_t min_keep_seconds = 0;
  int max_actuations_per_node = 32;
  double checkpoint_cost_hours = 10.0 / 60.0;
  std::size_t threads = 1;
};

/// One applied actuation (operator history, time-ordered per node).
struct Actuation {
  cluster::NodeId node;
  cluster::Interval cut;  ///< zero-length for page retirements
  std::uint64_t retired_page = 0;
  bool is_retirement = false;
  sched::PlanCutSummary summary;
};

struct ClosedLoopNodeReport {
  cluster::NodeId node;
  std::uint64_t open_faults = 0;    ///< observed with the open-loop plan
  std::uint64_t closed_faults = 0;  ///< observed after actuation converged
  int actuations = 0;
  int rounds = 0;  ///< re-simulation rounds until convergence
};

struct ClosedLoopResult {
  /// Pathological + loudest nodes, resolved from the open-loop pass and
  /// skipped by the controller entirely (fleet totals below exclude them).
  std::vector<cluster::NodeId> excluded_nodes;

  std::uint64_t open_loop_errors = 0;
  std::uint64_t closed_loop_errors = 0;
  std::uint64_t quarantine_entries = 0;
  std::uint64_t pages_retired = 0;
  std::int64_t quarantined_seconds = 0;   ///< sum of quarantine periods
  std::int64_t scan_seconds_removed = 0;  ///< scan time the cuts took away

  double open_mtbf_hours = 0.0;
  double closed_mtbf_hours = 0.0;
  double node_days_quarantined = 0.0;
  double availability_loss = 0.0;

  /// Regime classification of the CLOSED-loop fleet (excluded nodes
  /// dropped) and the oracle static-vs-adaptive comparison over it.
  analysis::RegimeResult regime;
  resilience::CheckpointComparison checkpoint;
  /// Causal variant: day d runs the interval chosen from day d-1's regime
  /// (day 0 runs normal), wastes weighted by each day's actual MTBF.  The
  /// matching static waste uses the same per-day MTBFs, so the two are
  /// directly comparable.
  double causal_static_waste = 0.0;
  double causal_adaptive_waste = 0.0;

  std::vector<Actuation> actuations;            ///< per node, time-ordered
  std::vector<ClosedLoopNodeReport> per_node;   ///< nodes with any faults
};

[[nodiscard]] ClosedLoopResult run_closed_loop(const ClosedLoopConfig& config);

}  // namespace unp::policy
