#include "policy/hammer.hpp"

#include <algorithm>
#include <memory>

#include "common/require.hpp"
#include "common/thread_pool.hpp"
#include "telemetry/archive.hpp"

namespace unp::policy {

namespace {

void sort_canonical(std::vector<analysis::FaultRecord>& faults) {
  std::sort(faults.begin(), faults.end(),
            [](const analysis::FaultRecord& a, const analysis::FaultRecord& b) {
              if (a.first_seen != b.first_seen) return a.first_seen < b.first_seen;
              return a.virtual_address < b.virtual_address;
            });
}

std::uint64_t raw_log_count(const telemetry::NodeLog& log) {
  std::uint64_t raw = 0;
  for (const auto& run : log.error_runs()) raw += run.count;
  return raw;
}

std::uint64_t row_key(std::uint32_t bank, std::uint64_t row) noexcept {
  return (static_cast<std::uint64_t>(bank) << 48) | row;
}

}  // namespace

HammerMitigationPolicy::HammerMitigationPolicy(Config config)
    : config_(std::move(config)),
      mapping_(dram::mapping::make_mapping_config(config_.mapping)) {}

void HammerMitigationPolicy::on_fault(const analysis::FaultRecord& fault,
                                      const NodeHealth& /*health*/,
                                      std::vector<Action>& actions) {
  const std::uint64_t word = fault.virtual_address / sizeof(Word);
  if (word >= mapping_.total_words()) return;
  const int index = cluster::node_index(fault.node);
  auto it = detectors_.find(index);
  if (it == detectors_.end()) {
    it = detectors_
             .emplace(std::piecewise_construct, std::forward_as_tuple(index),
                      std::forward_as_tuple(mapping_, config_.detector))
             .first;
  }
  if (!it->second.observe(fault.first_seen, word)) return;

  const faults::hammer::DetectedRow& hit = it->second.detections().back();
  ++rows_retired_;
  for (const std::uint64_t page : row_pages(mapping_, hit.bank, hit.row)) {
    Action act;
    act.kind = ActionKind::kRetirePage;
    act.node = fault.node;
    act.time = fault.first_seen;
    act.virtual_address = page << 12;
    actions.push_back(act);
    ++pages_requested_;
  }
}

std::string HammerMitigationPolicy::report() const {
  return "hammer rows retired: " + std::to_string(rows_retired_) +
         " (pages requested: " + std::to_string(pages_requested_) + ")";
}

std::vector<std::uint64_t> row_pages(const dram::mapping::DramMapping& mapping,
                                     std::uint32_t bank, std::uint64_t row) {
  std::vector<std::uint64_t> pages;
  for (std::uint64_t column = 0; column < mapping.columns(); ++column) {
    const std::uint64_t word = mapping.encode({bank, row, column});
    const std::uint64_t page = (word * sizeof(Word)) >> 12;
    if (!std::binary_search(pages.begin(), pages.end(), page)) {
      pages.insert(std::upper_bound(pages.begin(), pages.end(), page), page);
    }
  }
  return pages;
}

namespace {

/// Per-node outcome of the detect -> retire -> re-simulate loop.
struct NodeMitigation {
  std::vector<RetiredRow> retired;  ///< trigger order, kind unset
  std::uint64_t open_observed = 0;
  std::uint64_t closed_observed = 0;
  int rounds = 0;
};

NodeMitigation mitigate_node(const HammerLoopConfig& config,
                             const dram::mapping::DramMapping& mapping,
                             cluster::NodeId node, const sched::ScanPlan& plan,
                             std::vector<faults::FaultEvent> events,
                             std::uint64_t session_seed) {
  const bool overheating = cluster::Topology::is_overheating_slot(node);
  NodeMitigation out;
  std::set<std::uint64_t> retired_keys;

  while (out.rounds < config.max_rounds) {
    ++out.rounds;
    const telemetry::NodeLog log =
        sim::simulate_node(config.campaign.session, node, plan, events,
                           overheating, session_seed);
    std::vector<analysis::FaultRecord> faults = analysis::collapse_node_log(
        node, log, config.extraction.merge_window_s);
    sort_canonical(faults);
    if (out.rounds == 1) out.open_observed = faults.size();
    out.closed_observed = faults.size();

    // Replay the detector over what this round observed.
    faults::hammer::HammerRowDetector detector(mapping, config.detector);
    for (const auto& f : faults) {
      const std::uint64_t word = f.virtual_address / sizeof(Word);
      if (word >= mapping.total_words()) continue;
      detector.observe(f.first_seen, word);
    }

    // Retire every newly-triggered row: the scanner unmaps its pages, so
    // its words vanish from the observable fault events.
    bool actuated = false;
    for (const auto& hit : detector.detections()) {
      if (!retired_keys.insert(row_key(hit.bank, hit.row)).second) continue;
      out.retired.push_back(
          RetiredRow{.node = node, .bank = hit.bank, .row = hit.row,
                     .trigger_time = hit.trigger_time});
      actuated = true;
    }
    if (!actuated) break;
    for (auto& ev : events) {
      std::erase_if(ev.words, [&](const faults::WordFault& w) {
        if (w.word_index >= mapping.total_words()) return false;
        const dram::mapping::DramCoordinate c = mapping.decode(w.word_index);
        return retired_keys.contains(row_key(c.bank, c.row));
      });
    }
    std::erase_if(events, [](const faults::FaultEvent& ev) {
      return ev.words.empty();
    });
  }
  return out;
}

}  // namespace

HammerMitigationResult run_hammer_mitigation(const HammerLoopConfig& config) {
  UNP_REQUIRE(config.threads >= 1);
  UNP_REQUIRE(config.max_rounds >= 1);
  UNP_REQUIRE(config.campaign.faults.enable_hammer);
  const sim::CampaignConfig& cc = config.campaign;
  const dram::mapping::DramMapping mapping(
      dram::mapping::make_mapping_config(cc.faults.hammer.mapping));

  // Open-loop wiring, bit-for-bit the streaming campaign's (campaign.hpp).
  const cluster::Topology topology = sim::campaign_topology(cc);
  const cluster::AvailabilityModel availability(sim::campaign_availability(cc));
  const sched::ScanPlanner planner(sim::campaign_planner_config(cc));
  const auto& nodes = topology.monitored_nodes();
  const std::size_t n = nodes.size();

  std::unique_ptr<ThreadPool> pool;
  if (config.threads > 1) pool = std::make_unique<ThreadPool>(config.threads);
  auto run_parallel = [&](std::size_t count, auto&& fn) {
    if (pool) {
      pool->parallel_for(count, fn);
    } else {
      for (std::size_t i = 0; i < count; ++i) fn(i);
    }
  };

  std::vector<sched::ScanPlan> plans(n);
  run_parallel(n, [&](std::size_t i) {
    plans[i] = planner.plan(nodes[i], availability.build(nodes[i]));
  });

  std::vector<faults::NodeContext> contexts(n);
  for (std::size_t i = 0; i < n; ++i) {
    contexts[i].node = nodes[i];
    contexts[i].plan = &plans[i];
    contexts[i].scanned_hours = plans[i].scanned_hours();
    contexts[i].near_overheating_slot =
        nodes[i].soc == cluster::kOverheatingSoc - 1 ||
        nodes[i].soc == cluster::kOverheatingSoc + 1;
  }
  const faults::FaultModelSuite suite(cc.faults);
  const std::vector<faults::FaultEvent> ground_truth =
      suite.generate(contexts, sim::campaign_fault_seed(cc));
  std::vector<std::vector<faults::FaultEvent>> per_node(
      static_cast<std::size_t>(cluster::kStudyNodeSlots));
  for (const auto& ev : ground_truth) {
    per_node[static_cast<std::size_t>(cluster::node_index(ev.node))].push_back(
        ev);
  }
  const std::uint64_t session_seed = sim::campaign_session_seed(cc);

  // Pathological exclusion only (see header: no loudest-node exclusion —
  // hammered nodes are loud by design).
  std::vector<std::uint64_t> raw(n, 0);
  run_parallel(n, [&](std::size_t i) {
    const telemetry::NodeLog log = sim::simulate_node(
        cc.session, nodes[i], plans[i],
        per_node[static_cast<std::size_t>(cluster::node_index(nodes[i]))],
        cluster::Topology::is_overheating_slot(nodes[i]), session_seed);
    raw[i] = raw_log_count(log);
  });
  HammerMitigationResult result;
  std::uint64_t raw_total = 0;
  for (std::size_t i = 0; i < n; ++i) raw_total += raw[i];
  std::vector<bool> excluded(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    const bool pathological =
        raw[i] >= config.extraction.pathological_min_raw &&
        static_cast<double>(raw[i]) >
            config.extraction.pathological_raw_fraction *
                static_cast<double>(raw_total);
    if (pathological) {
      excluded[i] = true;
      result.excluded_nodes.push_back(nodes[i]);
    }
  }

  // Closed loop, node by node (independent timelines: any thread count
  // yields identical results).
  std::vector<NodeMitigation> outcomes(n);
  run_parallel(n, [&](std::size_t i) {
    if (excluded[i]) return;
    const auto& events =
        per_node[static_cast<std::size_t>(cluster::node_index(nodes[i]))];
    if (events.empty()) return;
    outcomes[i] = mitigate_node(config, mapping, nodes[i], plans[i], events,
                                session_seed);
  });

  // Score against ground truth, in node order for determinism.
  for (std::size_t i = 0; i < n; ++i) {
    if (excluded[i]) continue;
    const auto& events =
        per_node[static_cast<std::size_t>(cluster::node_index(nodes[i]))];

    std::set<std::uint64_t> hammered_rows;
    std::map<std::uint64_t, std::set<std::uint64_t>> dense_words;
    for (const auto& ev : events) {
      for (const auto& w : ev.words) {
        if (w.word_index >= mapping.total_words()) continue;
        const dram::mapping::DramCoordinate c = mapping.decode(w.word_index);
        const std::uint64_t key = row_key(c.bank, c.row);
        if (ev.mechanism == faults::Mechanism::kRowhammer) {
          hammered_rows.insert(key);
        } else {
          dense_words[key].insert(w.word_index);
        }
      }
    }
    result.true_victim_rows += hammered_rows.size();

    NodeMitigation& out = outcomes[i];
    result.open_observed += out.open_observed;
    result.closed_observed += out.closed_observed;
    result.max_rounds_used = std::max(result.max_rounds_used, out.rounds);
    for (RetiredRow& r : out.retired) {
      const std::uint64_t key = row_key(r.bank, r.row);
      if (hammered_rows.contains(key)) {
        r.kind = RetiredRow::Kind::kTrue;
        ++result.retired_true;
      } else if (static_cast<int>(dense_words[key].size()) >=
                 config.detector.min_distinct_words) {
        r.kind = RetiredRow::Kind::kCollateral;
        ++result.retired_collateral;
      } else {
        r.kind = RetiredRow::Kind::kSpurious;
        ++result.retired_spurious;
      }
      result.retired.push_back(r);
    }
  }
  result.rows_retired = result.retired.size();
  result.absorbed_faults = result.open_observed - result.closed_observed;
  result.recall = result.true_victim_rows == 0
                      ? 1.0
                      : static_cast<double>(result.retired_true) /
                            static_cast<double>(result.true_victim_rows);
  return result;
}

}  // namespace unp::policy
