#include "policy/engine.hpp"

#include <algorithm>

#include "common/require.hpp"

namespace unp::policy {

namespace {

/// Key of one (node, page) pair in a shadow's retired set.
std::uint64_t page_key(cluster::NodeId node, std::uint64_t page) noexcept {
  return (static_cast<std::uint64_t>(cluster::node_index(node)) << 32) | page;
}

}  // namespace

PolicyEngine::PolicyEngine(Config config)
    : config_(config), extractor_(config.extraction) {
  extractor_.set_node_observer(
      [this](cluster::NodeId node,
             std::span<const analysis::FaultRecord> faults) {
        dispatch_node(node, faults);
      });
}

std::size_t PolicyEngine::add_policy(std::unique_ptr<Policy> policy) {
  UNP_REQUIRE(policy != nullptr);
  Shadow shadow;
  shadow.policy = std::move(policy);
  shadow.nodes.assign(static_cast<std::size_t>(cluster::kStudyNodeSlots), {});
  shadow.protection.assign(static_cast<std::size_t>(cluster::kStudyNodeSlots),
                           0);
  shadows_.push_back(std::move(shadow));
  return shadows_.size() - 1;
}

void PolicyEngine::begin_campaign(const CampaignWindow& window) {
  window_ = window;
  finished_ = false;
  extractor_.begin_campaign(window);
  for (auto& shadow : shadows_) {
    shadow.nodes.assign(static_cast<std::size_t>(cluster::kStudyNodeSlots), {});
    shadow.retired.clear();
    shadow.flagged.clear();
    shadow.log.clear();
    shadow.pages_retired = 0;
    shadow.interval_changes = 0;
    shadow.protection_changes = 0;
    shadow.protection.assign(static_cast<std::size_t>(cluster::kStudyNodeSlots),
                             0);
    shadow.policy->begin(PolicyContext{window, config_.fleet_nodes});
  }
}

void PolicyEngine::on_start(const telemetry::StartRecord& r) {
  extractor_.on_start(r);
}
void PolicyEngine::on_end(const telemetry::EndRecord& r) { extractor_.on_end(r); }
void PolicyEngine::on_alloc_fail(const telemetry::AllocFailRecord& r) {
  extractor_.on_alloc_fail(r);
}
void PolicyEngine::on_error_run(const telemetry::ErrorRun& r) {
  extractor_.on_error_run(r);
}
void PolicyEngine::end_node(cluster::NodeId node) { extractor_.end_node(node); }

void PolicyEngine::dispatch_node(cluster::NodeId node,
                                 std::span<const analysis::FaultRecord> faults) {
  // The canonical extraction order restricted to one node: policies see the
  // exact per-node sequence a global-time batch replay would project out.
  scratch_.assign(faults.begin(), faults.end());
  std::sort(scratch_.begin(), scratch_.end(),
            [](const analysis::FaultRecord& a, const analysis::FaultRecord& b) {
              if (a.first_seen != b.first_seen) return a.first_seen < b.first_seen;
              return a.virtual_address < b.virtual_address;
            });

  const auto index = static_cast<std::size_t>(cluster::node_index(node));
  std::vector<Action> emitted;
  for (auto& shadow : shadows_) {
    NodeState& state = shadow.nodes[index];
    for (const auto& f : scratch_) {
      if (!shadow.retired.empty() &&
          shadow.retired.count(
              page_key(node, f.virtual_address / config_.page_bytes)) > 0) {
        ++state.retired_absorbed;
        continue;
      }
      if (f.first_seen < state.quarantined_until) {
        ++state.suppressed;
        continue;
      }
      const std::int64_t day = window_.day_of_campaign(f.first_seen);
      if (day != state.counting_day) {
        state.counting_day = day;
        state.errors_today = 0;
      }
      ++state.errors_today;
      ++state.counted;

      emitted.clear();
      shadow.policy->on_fault(
          f, NodeHealth{day, state.errors_today, state.counted}, emitted);
      for (const Action& action : emitted) {
        apply(shadow, state, action);
        shadow.log.push_back(action);
      }
    }
  }
}

void PolicyEngine::apply(Shadow& shadow, NodeState& state, const Action& action) {
  switch (action.kind) {
    case ActionKind::kQuarantineNode: {
      const TimePoint until = std::min(
          window_.end,
          action.time + static_cast<TimePoint>(action.quarantine_days) *
                            kSecondsPerDay);
      state.quarantined_seconds += until - action.time;
      state.quarantined_until = until;
      ++state.entries;
      break;
    }
    case ActionKind::kRetirePage: {
      const auto [it, inserted] = shadow.retired.insert(
          page_key(action.node, action.virtual_address / config_.page_bytes));
      if (inserted) ++shadow.pages_retired;
      break;
    }
    case ActionKind::kSetCheckpointInterval:
      ++shadow.interval_changes;
      break;
    case ActionKind::kAvoidPlacement:
      shadow.flagged.insert(cluster::node_index(action.node));
      break;
    case ActionKind::kSetProtectionLevel: {
      auto& current = shadow.protection[static_cast<std::size_t>(
          cluster::node_index(action.node))];
      const auto requested = static_cast<std::uint8_t>(action.protection);
      if (current != requested) {
        current = requested;
        ++shadow.protection_changes;
      }
      break;
    }
  }
}

EngineResult PolicyEngine::finish() {
  UNP_REQUIRE(!finished_);
  finished_ = true;

  EngineResult result;
  result.extraction = extractor_.finish();  // dispatches any frameless nodes
  result.excluded_nodes = result.extraction.removed_nodes;

  if (config_.exclude_loudest) {
    // Identical resolution to classify_regime_excluding_loudest: totals over
    // the filtered faults, first maximum wins, excluded only if it erred.
    std::vector<std::uint64_t> totals(
        static_cast<std::size_t>(cluster::kStudyNodeSlots), 0);
    for (const auto& f : result.extraction.faults) {
      ++totals[static_cast<std::size_t>(cluster::node_index(f.node))];
    }
    const auto loudest = static_cast<std::size_t>(std::distance(
        totals.begin(), std::max_element(totals.begin(), totals.end())));
    if (totals[loudest] > 0) {
      result.loudest = cluster::node_from_index(static_cast<int>(loudest));
      result.excluded_nodes.push_back(*result.loudest);
    }
  }

  std::vector<bool> excluded(static_cast<std::size_t>(cluster::kStudyNodeSlots),
                             false);
  for (const auto node : result.excluded_nodes) {
    excluded[static_cast<std::size_t>(cluster::node_index(node))] = true;
  }

  for (auto& shadow : shadows_) {
    shadow.policy->finish(FinalizeContext{window_, result.excluded_nodes});

    PolicyOutcome outcome;
    outcome.policy_name = std::string(shadow.policy->name());
    outcome.quarantine.period_days = shadow.policy->period_days();
    std::uint64_t flags = 0;
    for (std::size_t i = 0; i < shadow.nodes.size(); ++i) {
      if (excluded[i]) continue;
      const NodeState& state = shadow.nodes[i];
      outcome.quarantine.counted_errors += state.counted;
      outcome.quarantine.suppressed_errors += state.suppressed;
      outcome.quarantine.quarantine_entries += state.entries;
      outcome.quarantine.quarantined_seconds += state.quarantined_seconds;
      outcome.retired_absorbed_errors += state.retired_absorbed;
      if (shadow.flagged.count(static_cast<int>(i)) > 0) ++flags;
    }
    // Derived figures with the batch simulator's exact expressions, so the
    // doubles come out bitwise-equal, not merely close.
    outcome.quarantine.node_days_quarantined =
        static_cast<double>(outcome.quarantine.quarantined_seconds) /
        kSecondsPerDay;
    const double campaign_hours =
        static_cast<double>(window_.duration_seconds()) / kSecondsPerHour;
    if (outcome.quarantine.counted_errors > 0) {
      outcome.quarantine.system_mtbf_hours =
          campaign_hours /
          static_cast<double>(outcome.quarantine.counted_errors);
    } else {
      outcome.quarantine.system_mtbf_hours = campaign_hours;
    }
    outcome.quarantine.availability_loss =
        outcome.quarantine.node_days_quarantined /
        (static_cast<double>(config_.fleet_nodes) *
         static_cast<double>(window_.duration_days()));

    outcome.pages_retired = shadow.pages_retired;
    outcome.placement_flags = flags;
    outcome.interval_changes = shadow.interval_changes;
    outcome.protection_changes = shadow.protection_changes;
    outcome.actions_emitted = shadow.log.size();
    outcome.report = shadow.policy->report();
    result.outcomes.push_back(std::move(outcome));
  }
  return result;
}

}  // namespace unp::policy
