// The built-in policies: the paper's three operational proposals run as
// online controllers.
//
//   ThresholdQuarantinePolicy   Table II: a day with more errors than the
//                               normal-regime threshold pulls the node for a
//                               fixed period.  Online it produces outcomes
//                               bit-identical to the batch sweep.
//   PredictiveQuarantinePolicy  Section III-I: when the trailing error
//                               history crosses a threshold, tomorrow is
//                               at-risk — quarantine one day ahead and flag
//                               the node for placement avoidance.
//   AdaptiveCheckpointPolicy    Sections III-I/IV: keep the per-node day
//                               census live, emit interval-shrink actions as
//                               days go degraded, and report the
//                               static-vs-adaptive Young/Daly comparison
//                               once the campaign's regimes are final.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "policy/policy.hpp"
#include "resilience/checkpoint.hpp"
#include "resilience/prediction.hpp"

namespace unp::policy {

class ThresholdQuarantinePolicy final : public Policy {
 public:
  struct Config {
    int period_days = 30;
    /// A day with more errors than this triggers quarantine (the regime
    /// threshold, as in Table II).
    std::uint64_t trigger_threshold = 3;
    /// Retire the page of an address after this many faults there
    /// (0 disables; keep disabled for bit-parity with the batch sweep).
    std::uint64_t retire_page_repeats = 0;
  };

  ThresholdQuarantinePolicy() : ThresholdQuarantinePolicy(Config{}) {}
  explicit ThresholdQuarantinePolicy(Config config) : config_(config) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "threshold-quarantine";
  }
  [[nodiscard]] int period_days() const noexcept override {
    return config_.period_days;
  }
  void begin(const PolicyContext& ctx) override;
  void on_fault(const analysis::FaultRecord& fault, const NodeHealth& health,
                std::vector<Action>& actions) override;
  [[nodiscard]] std::string report() const override;

 private:
  Config config_;
  /// Fault count per (node, address); only kept when retirement is on.
  std::map<std::pair<int, std::uint64_t>, std::uint64_t> address_faults_;
  std::set<std::pair<int, std::uint64_t>> retired_pages_;
  std::uint64_t triggers_ = 0;
};

class PredictiveQuarantinePolicy final : public Policy {
 public:
  struct Config {
    /// Window/threshold semantics shared with the batch evaluator.
    resilience::PredictorConfig predictor{};
    /// How long a predicted-bad node sits out (the paper's one-day-ahead
    /// proposal).
    int quarantine_days = 1;
  };

  PredictiveQuarantinePolicy() : PredictiveQuarantinePolicy(Config{}) {}
  explicit PredictiveQuarantinePolicy(Config config) : config_(config) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "predictive-quarantine";
  }
  [[nodiscard]] int period_days() const noexcept override {
    return config_.quarantine_days;
  }
  void begin(const PolicyContext& ctx) override;
  void on_fault(const analysis::FaultRecord& fault, const NodeHealth& health,
                std::vector<Action>& actions) override;
  [[nodiscard]] std::string report() const override;

 private:
  Config config_;
  /// Trailing per-node error history (only nodes that erred hold a window).
  std::map<int, resilience::TrailingDayWindow> history_;
  std::set<int> flagged_;
  std::uint64_t predictions_ = 0;
};

class AdaptiveCheckpointPolicy final : public Policy {
 public:
  struct Config {
    double checkpoint_cost_hours = 10.0 / 60.0;
    std::uint64_t normal_threshold = 3;
  };

  AdaptiveCheckpointPolicy() : AdaptiveCheckpointPolicy(Config{}) {}
  explicit AdaptiveCheckpointPolicy(Config config) : config_(config) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "adaptive-checkpoint";
  }
  void begin(const PolicyContext& ctx) override;
  void on_fault(const analysis::FaultRecord& fault, const NodeHealth& health,
                std::vector<Action>& actions) override;
  void finish(const FinalizeContext& ctx) override;
  [[nodiscard]] std::string report() const override;

  /// Final regime classification (valid after finish).  Identical to
  /// classify_regime_excluding_loudest over the finished extraction when the
  /// engine resolves the same exclusions.
  [[nodiscard]] const analysis::RegimeResult& regime() const noexcept {
    return regime_;
  }
  [[nodiscard]] const resilience::CheckpointComparison& comparison()
      const noexcept {
    return comparison_;
  }

 private:
  Config config_;
  CampaignWindow window_;
  std::size_t days_ = 0;
  /// Per-node, per-day census, exactly as analysis::RegimeAnalyzer keeps it
  /// (the excluded set is only known at finish).
  std::vector<std::uint64_t> counts_;  ///< [node * days_ + day]
  analysis::RegimeResult regime_;
  resilience::CheckpointComparison comparison_;
};

}  // namespace unp::policy
