// The built-in policies: the paper's three operational proposals run as
// online controllers.
//
//   ThresholdQuarantinePolicy   Table II: a day with more errors than the
//                               normal-regime threshold pulls the node for a
//                               fixed period.  Online it produces outcomes
//                               bit-identical to the batch sweep.
//   PredictiveQuarantinePolicy  Section III-I: when the trailing error
//                               history crosses a threshold, tomorrow is
//                               at-risk — quarantine one day ahead and flag
//                               the node for placement avoidance.
//   AdaptiveCheckpointPolicy    Sections III-I/IV: keep the per-node day
//                               census live, emit interval-shrink actions as
//                               days go degraded, and report the
//                               static-vs-adaptive Young/Daly comparison
//                               once the campaign's regimes are final.
//   ProtectionSelectionPolicy   The ECC-evaluation actuator: escalate a
//                               node's modeled protection rung as its
//                               multi-bit fault history outgrows what the
//                               current code handles silently.  The rung
//                               costs come in as a menu of plain numbers
//                               lifted from unp_ecc's outcome tables.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "policy/policy.hpp"
#include "resilience/checkpoint.hpp"
#include "resilience/prediction.hpp"

namespace unp::policy {

class ThresholdQuarantinePolicy final : public Policy {
 public:
  struct Config {
    int period_days = 30;
    /// A day with more errors than this triggers quarantine (the regime
    /// threshold, as in Table II).
    std::uint64_t trigger_threshold = 3;
    /// Retire the page of an address after this many faults there
    /// (0 disables; keep disabled for bit-parity with the batch sweep).
    std::uint64_t retire_page_repeats = 0;
  };

  ThresholdQuarantinePolicy() : ThresholdQuarantinePolicy(Config{}) {}
  explicit ThresholdQuarantinePolicy(Config config) : config_(config) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "threshold-quarantine";
  }
  [[nodiscard]] int period_days() const noexcept override {
    return config_.period_days;
  }
  void begin(const PolicyContext& ctx) override;
  void on_fault(const analysis::FaultRecord& fault, const NodeHealth& health,
                std::vector<Action>& actions) override;
  [[nodiscard]] std::string report() const override;

 private:
  Config config_;
  /// Fault count per (node, address); only kept when retirement is on.
  std::map<std::pair<int, std::uint64_t>, std::uint64_t> address_faults_;
  std::set<std::pair<int, std::uint64_t>> retired_pages_;
  std::uint64_t triggers_ = 0;
};

class PredictiveQuarantinePolicy final : public Policy {
 public:
  struct Config {
    /// Window/threshold semantics shared with the batch evaluator.
    resilience::PredictorConfig predictor{};
    /// How long a predicted-bad node sits out (the paper's one-day-ahead
    /// proposal).
    int quarantine_days = 1;
  };

  PredictiveQuarantinePolicy() : PredictiveQuarantinePolicy(Config{}) {}
  explicit PredictiveQuarantinePolicy(Config config) : config_(config) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "predictive-quarantine";
  }
  [[nodiscard]] int period_days() const noexcept override {
    return config_.quarantine_days;
  }
  void begin(const PolicyContext& ctx) override;
  void on_fault(const analysis::FaultRecord& fault, const NodeHealth& health,
                std::vector<Action>& actions) override;
  [[nodiscard]] std::string report() const override;

 private:
  Config config_;
  /// Trailing per-node error history (only nodes that erred hold a window).
  std::map<int, resilience::TrailingDayWindow> history_;
  std::set<int> flagged_;
  std::uint64_t predictions_ = 0;
};

class AdaptiveCheckpointPolicy final : public Policy {
 public:
  struct Config {
    double checkpoint_cost_hours = 10.0 / 60.0;
    std::uint64_t normal_threshold = 3;
  };

  AdaptiveCheckpointPolicy() : AdaptiveCheckpointPolicy(Config{}) {}
  explicit AdaptiveCheckpointPolicy(Config config) : config_(config) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "adaptive-checkpoint";
  }
  void begin(const PolicyContext& ctx) override;
  void on_fault(const analysis::FaultRecord& fault, const NodeHealth& health,
                std::vector<Action>& actions) override;
  void finish(const FinalizeContext& ctx) override;
  [[nodiscard]] std::string report() const override;

  /// Final regime classification (valid after finish).  Identical to
  /// classify_regime_excluding_loudest over the finished extraction when the
  /// engine resolves the same exclusions.
  [[nodiscard]] const analysis::RegimeResult& regime() const noexcept {
    return regime_;
  }
  [[nodiscard]] const resilience::CheckpointComparison& comparison()
      const noexcept {
    return comparison_;
  }

 private:
  Config config_;
  CampaignWindow window_;
  std::size_t days_ = 0;
  /// Per-node, per-day census, exactly as analysis::RegimeAnalyzer keeps it
  /// (the excluded set is only known at finish).
  std::vector<std::uint64_t> counts_;  ///< [node * days_ + day]
  analysis::RegimeResult regime_;
  resilience::CheckpointComparison comparison_;
};

class ProtectionSelectionPolicy final : public Policy {
 public:
  /// One rung of the protection menu, in escalation order.  The fractions
  /// are plain numbers read off unp_ecc's population outcome table for the
  /// rung's code (silent = (miscorrect+sdc)/faults over multi-bit classes;
  /// overhead = check_bits/data_bits), so the policy layer needs no coding
  /// theory — the ECC engine did the evaluation offline.
  struct Rung {
    ProtectionLevel level = ProtectionLevel::kUnprotected;
    double silent_fraction = 1.0;  ///< multi-bit faults passing silently
    double overhead_fraction = 0.0;
    /// Multi-bit faults on a node before this rung is requested.
    std::uint64_t escalate_after = 0;
  };

  struct Config {
    /// Default menu: the unprotected baseline, then SECDED after the first
    /// multi-bit fault, chipkill after the third, large-block after the
    /// tenth.  Silent fractions are the exhaustive-table figures for the
    /// canonical codes (secded72 weight 3-4, chipkill >2 symbols, large
    /// 4KB/8); unp_ecc --population derives campaign-specific ones.
    std::vector<Rung> menu = {
        {ProtectionLevel::kUnprotected, 1.0, 0.0, 0},
        {ProtectionLevel::kSecded, 0.60, 0.125, 1},
        {ProtectionLevel::kChipkill, 0.05, 0.125, 3},
        {ProtectionLevel::kLargeBlock, 0.001, 0.0049, 10},
    };
  };

  ProtectionSelectionPolicy() : ProtectionSelectionPolicy(Config{}) {}
  explicit ProtectionSelectionPolicy(Config config);

  [[nodiscard]] std::string_view name() const noexcept override {
    return "protection-selection";
  }
  void begin(const PolicyContext& ctx) override;
  void on_fault(const analysis::FaultRecord& fault, const NodeHealth& health,
                std::vector<Action>& actions) override;
  [[nodiscard]] std::string report() const override;

 private:
  Config config_;
  std::vector<std::uint64_t> multibit_;  ///< per-node multi-bit fault count
  std::vector<std::uint8_t> rung_;       ///< per-node current menu index
  std::uint64_t escalations_ = 0;
  /// Multi-bit faults that arrived while the node sat on a rung whose menu
  /// silent fraction is < 1 (i.e. would likely have been caught), summed
  /// as expected-caught for the report.
  double expected_caught_ = 0.0;
};

}  // namespace unp::policy
