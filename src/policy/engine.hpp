// The online policy engine: K policies shadow-evaluated in ONE campaign pass.
//
// PolicyEngine is a telemetry::RecordSink.  Plugged into
// sim::run_campaign_streaming (or a cache replay) it feeds an embedded
// StreamingExtractor; the extractor's node observer hands each node's freshly
// collapsed independent faults to the engine, which replays them through
// every registered policy against that policy's own per-node state:
//
//   - faults inside a quarantine the policy previously triggered are
//     suppressed (ledger: suppressed_errors) and never reach the policy;
//   - faults on a page the policy retired are absorbed (retired_absorbed);
//   - everything else is counted, the node's day census rolls, and the
//     policy's on_fault may emit Actions the engine applies on the spot.
//
// Policies share the stream but nothing else — independent state,
// independent action logs, independent outcome ledgers — which is what
// makes K-way shadow evaluation cost one campaign instead of K (benched by
// bench_perf_policy).
//
// Exclusions (the pathological node the extraction filter removes, plus the
// loudest surviving node) are only knowable at end of stream, so the engine
// keeps per-node ledgers and aggregates at finish() skipping the excluded
// set — yielding, for the threshold policy, outcomes bit-identical to the
// batch resilience::simulate_quarantine over the finished extraction
// (asserted by tests/policy/engine_test.cpp).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "analysis/streaming_extractor.hpp"
#include "policy/policy.hpp"
#include "telemetry/sink.hpp"

namespace unp::policy {

/// Everything one shadowed campaign pass produces.
struct EngineResult {
  analysis::ExtractionResult extraction;
  /// Pathological nodes removed by the filter, plus the loudest survivor
  /// when Config::exclude_loudest is set — the set every ledger skips.
  std::vector<cluster::NodeId> excluded_nodes;
  std::optional<cluster::NodeId> loudest;
  std::vector<PolicyOutcome> outcomes;  ///< one per registered policy
};

class PolicyEngine final : public telemetry::RecordSink {
 public:
  struct Config {
    analysis::ExtractionConfig extraction{};
    int fleet_nodes = 945;
    /// Also exclude the loudest non-pathological node from the ledgers
    /// (Table II and the regime analyses all do).
    bool exclude_loudest = true;
    /// Page granularity of kRetirePage absorption.
    std::uint64_t page_bytes = 4096;
  };

  PolicyEngine() : PolicyEngine(Config{}) {}
  explicit PolicyEngine(Config config);

  /// Register a policy (before the stream starts).  Returns its index into
  /// EngineResult::outcomes and actions().
  std::size_t add_policy(std::unique_ptr<Policy> policy);

  // RecordSink: forwards to the embedded extractor; faults dispatch to the
  // policies as each node's frame closes.
  void begin_campaign(const CampaignWindow& window) override;
  void on_start(const telemetry::StartRecord& r) override;
  void on_end(const telemetry::EndRecord& r) override;
  void on_alloc_fail(const telemetry::AllocFailRecord& r) override;
  void on_error_run(const telemetry::ErrorRun& r) override;
  void end_node(cluster::NodeId node) override;

  /// Finish the extraction, resolve exclusions, finalize every policy and
  /// aggregate the ledgers.  Call once, after end_campaign.
  [[nodiscard]] EngineResult finish();

  /// Full action log of policy `k`, in emission order.
  [[nodiscard]] const std::vector<Action>& actions(std::size_t k) const {
    return shadows_[k].log;
  }

  [[nodiscard]] std::size_t policy_count() const noexcept {
    return shadows_.size();
  }

 private:
  /// Per-policy, per-node controller state (mirrors the batch simulator's
  /// NodeState plus the engine-side ledger fields).
  struct NodeState {
    TimePoint quarantined_until = 0;
    std::int64_t counting_day = -1;
    std::uint64_t errors_today = 0;
    std::uint64_t counted = 0;
    std::uint64_t suppressed = 0;
    std::uint64_t retired_absorbed = 0;
    std::uint64_t entries = 0;
    std::int64_t quarantined_seconds = 0;
  };

  struct Shadow {
    std::unique_ptr<Policy> policy;
    std::vector<NodeState> nodes;     ///< kStudyNodeSlots entries
    std::set<std::uint64_t> retired;  ///< node_index * 2^32 + page
    std::set<int> flagged;            ///< nodes with kAvoidPlacement
    std::vector<Action> log;
    std::uint64_t pages_retired = 0;
    std::uint64_t interval_changes = 0;
    std::uint64_t protection_changes = 0;
    /// Current protection rung per node (kSetProtectionLevel is only
    /// counted as a change when the requested rung actually differs).
    std::vector<std::uint8_t> protection;  ///< kStudyNodeSlots entries
  };

  void dispatch_node(cluster::NodeId node,
                     std::span<const analysis::FaultRecord> faults);
  void apply(Shadow& shadow, NodeState& state, const Action& action);

  Config config_;
  CampaignWindow window_;
  analysis::StreamingExtractor extractor_;
  std::vector<Shadow> shadows_;
  std::vector<analysis::FaultRecord> scratch_;  ///< per-node sort buffer
  bool finished_ = false;
};

}  // namespace unp::policy
