// The online Policy interface and its outcome ledger.
//
// A Policy is a stateful controller fed independent faults as they are
// collapsed out of the live record stream.  It sees exactly what a real
// deployment would have seen at that moment — per-node error history, never
// the future, never another node's interleaved timeline — and reacts by
// emitting Actions.  The engine (engine.hpp) owns the bookkeeping both
// around and *for* the policy: it suppresses faults falling inside a
// quarantine the policy previously requested (they never reach on_fault,
// exactly as a pulled node logs nothing) and accounts every decision into a
// per-policy outcome ledger.
//
// Faults reach a policy per node in (first_seen, virtual_address) order —
// the canonical extraction order restricted to one node — because the
// campaign stream is node-ordered, not globally time-ordered (see
// telemetry/sink.hpp).  Policies whose state is per-node therefore behave
// bit-identically to a batch replay in global time order; policies needing
// fleet-wide time order must defer that part to finish().
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/extraction.hpp"
#include "policy/action.hpp"
#include "resilience/quarantine.hpp"

namespace unp::policy {

/// What the engine knows about the node at the moment a fault is delivered.
struct NodeHealth {
  std::int64_t day = 0;            ///< campaign day of this fault
  std::uint64_t errors_today = 0;  ///< counted errors this day, incl. this one
  std::uint64_t errors_total = 0;  ///< counted errors this campaign, incl. this one
};

/// Campaign-level facts available when the stream opens.
struct PolicyContext {
  CampaignWindow window;
  int fleet_nodes = 945;
};

/// Facts only known once the stream has ended: the pathological nodes the
/// extraction filter removed plus (optionally) the loudest surviving node —
/// the exclusions every batch analysis applies before reporting.
struct FinalizeContext {
  CampaignWindow window;
  std::vector<cluster::NodeId> excluded_nodes;
};

/// Counterfactual ledger of one policy over one campaign pass, aggregated
/// over non-excluded nodes only.  The quarantine sub-ledger uses the exact
/// fields and arithmetic of the batch simulator so a threshold policy's
/// outcome is bit-comparable with resilience::simulate_quarantine.
struct PolicyOutcome {
  std::string policy_name;
  resilience::QuarantineOutcome quarantine;
  std::uint64_t pages_retired = 0;
  std::uint64_t retired_absorbed_errors = 0;  ///< faults on retired pages
  std::uint64_t placement_flags = 0;          ///< nodes flagged kAvoidPlacement
  std::uint64_t interval_changes = 0;         ///< kSetCheckpointInterval count
  std::uint64_t protection_changes = 0;       ///< kSetProtectionLevel count
  std::uint64_t actions_emitted = 0;
  std::string report;  ///< policy-specific annotation from finish()
};

class Policy {
 public:
  virtual ~Policy() = default;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Quarantine period this policy uses for kQuarantineNode actions, for the
  /// outcome's period_days field (0 when the policy never quarantines).
  [[nodiscard]] virtual int period_days() const noexcept { return 0; }

  virtual void begin(const PolicyContext& /*ctx*/) {}

  /// One counted (non-suppressed, non-retired) fault.  Actions pushed into
  /// `actions` are applied by the engine immediately, in order.
  virtual void on_fault(const analysis::FaultRecord& fault,
                        const NodeHealth& health,
                        std::vector<Action>& actions) = 0;

  /// Stream over; excluded nodes resolved.  Policies holding fleet-wide
  /// state (the checkpoint policy's day census) finalize it here.
  virtual void finish(const FinalizeContext& /*ctx*/) {}

  /// One-line (or short multi-line) summary for the outcome ledger.
  [[nodiscard]] virtual std::string report() const { return {}; }
};

}  // namespace unp::policy
