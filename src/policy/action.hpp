// Actions an online policy may request from the system.
//
// A policy never mutates anything itself: it observes the fault stream and
// emits Actions; the surrounding machinery decides what an action *means*.
// Inside the shadow engine (engine.hpp) actions update counterfactual
// per-policy ledgers; inside the closed loop (loop.hpp) quarantines become
// real scan-plan cuts and page retirements unmap words from the scanner.
// Keeping the vocabulary tiny and serializable makes per-policy action logs
// cheap to keep and easy to print.
#pragma once

#include <cstdint>
#include <string>

#include "cluster/topology.hpp"
#include "common/civil_time.hpp"

namespace unp::policy {

enum class ActionKind : std::uint8_t {
  /// Pull the node from the scheduler pool for `quarantine_days` starting
  /// at `time` (clipped to the campaign end by whoever applies it).
  kQuarantineNode,
  /// Unmap the page containing `virtual_address` on `node`: the scanner
  /// stops observing it, so later faults there are absorbed silently.
  kRetirePage,
  /// Adapt the fleet checkpoint interval to `interval_hours` from `time` on
  /// (the regime the policy currently believes it is in).
  kSetCheckpointInterval,
  /// Advise the scheduler to avoid placing jobs on `node` (soft signal; no
  /// capacity is removed).
  kAvoidPlacement,
  /// Escalate (or de-escalate) the modeled memory-protection scheme for
  /// `node` to `protection` — the ECC-evaluation actuator: which rung to
  /// request is decided from unp_ecc's outcome tables (silent fraction vs
  /// redundancy overhead per code), fed to the policy as a cost menu.
  kSetProtectionLevel,
};

[[nodiscard]] const char* to_string(ActionKind kind) noexcept;

/// Protection rungs a kSetProtectionLevel action can request, in strength
/// order.  Each rung corresponds to a canonical ecc code spec (see
/// ecc/registry.hpp): none, secded72, chipkill, large:4KB/8.
enum class ProtectionLevel : std::uint8_t {
  kUnprotected = 0,  ///< the study's raw, ECC-disabled configuration
  kSecded = 1,       ///< per-word SECDED(72,64)
  kChipkill = 2,     ///< symbol-correcting SSC-DSD
  kLargeBlock = 3,   ///< large-codeword BCH with EDC fast path
};

[[nodiscard]] const char* to_string(ProtectionLevel level) noexcept;

struct Action {
  ActionKind kind = ActionKind::kQuarantineNode;
  cluster::NodeId node;
  TimePoint time = 0;
  int quarantine_days = 0;             ///< kQuarantineNode
  std::uint64_t virtual_address = 0;   ///< kRetirePage
  double interval_hours = 0.0;         ///< kSetCheckpointInterval
  ProtectionLevel protection = ProtectionLevel::kUnprotected;  ///< kSetProtectionLevel

  friend bool operator==(const Action&, const Action&) = default;
};

/// "quarantine 12-03 for 30d @ 2015-06-01T04:13:55" style rendering for
/// action-log dumps.
[[nodiscard]] std::string to_string(const Action& action);

}  // namespace unp::policy
