// Hammer mitigation: detect access-dependent victim rows, retire them.
//
// HammerMitigationPolicy is the online half: a Policy (policy.hpp) that
// feeds each node's observed faults through the shared
// faults::hammer::HammerRowDetector and, the moment a (bank, row) trips the
// spatial-clustering threshold, emits one kRetirePage action per 4 KiB page
// the row occupies.  Because the detector is a pure function of the
// observed stream, the policy's triggers agree bit-for-bit with the batch
// census in `unp_report --ext hammer` and with the closed loop below.
//
// run_hammer_mitigation is the closed loop: the same campaign wiring as
// policy::run_closed_loop (topology, availability, plans and fault events
// exactly those of sim::run_campaign_streaming), but the controller is the
// row detector and the actuator is row retirement.  Each round a node is
// simulated, its collapsed faults are replayed through a fresh detector,
// and every newly-triggered row is unmapped from the fault events STRICTLY
// AFTER its trigger time — the evidence that produced the decision
// survives re-simulation, so the detector re-derives the same triggers and
// the retired set grows monotonically until no new row trips.
//
// Scoring closes the loop against ground truth: a retired (node, bank, row)
// is TRUE when a kRowhammer ground-truth event landed on it, COLLATERAL
// when at least `min_distinct_words` distinct non-hammer ground-truth words
// sit on the row (a genuinely dense region — retiring it absorbs real
// faults even though no hammering happened), and SPURIOUS otherwise.
// Pathological nodes are excluded exactly as the extraction filter would
// exclude them; the loudest-node exclusion of the batch analyses is NOT
// applied, because hammered nodes are legitimately loud and are precisely
// the targets.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "faults/hammer/detect.hpp"
#include "policy/policy.hpp"
#include "sim/campaign.hpp"

namespace unp::policy {

class HammerMitigationPolicy final : public Policy {
 public:
  struct Config {
    /// Geometry used to map scan-space words to DRAM rows (a
    /// dram::mapping::mapping_menu() name).
    std::string mapping = "lpddr3:mb";
    faults::hammer::DetectorConfig detector{};
  };

  HammerMitigationPolicy() : HammerMitigationPolicy(Config{}) {}
  explicit HammerMitigationPolicy(Config config);

  [[nodiscard]] std::string_view name() const noexcept override {
    return "hammer-mitigation";
  }

  void on_fault(const analysis::FaultRecord& fault, const NodeHealth& health,
                std::vector<Action>& actions) override;

  [[nodiscard]] std::string report() const override;

  /// Rows retired so far, fleet-wide (for tests and the engine report).
  [[nodiscard]] std::uint64_t rows_retired() const noexcept {
    return rows_retired_;
  }

 private:
  Config config_;
  dram::mapping::DramMapping mapping_;
  /// One detector per node seen, keyed by node index; each is fed that
  /// node's faults in canonical (first_seen, address) order.
  std::map<int, faults::hammer::HammerRowDetector> detectors_;
  std::uint64_t rows_retired_ = 0;
  std::uint64_t pages_requested_ = 0;
};

/// Enumerate the distinct 4 KiB pages (of the word*4 scan address space)
/// that one (bank, row) occupies under `mapping`.  For lpddr3:mb a row is
/// exactly one page; folded geometries may split a row across pages.
[[nodiscard]] std::vector<std::uint64_t> row_pages(
    const dram::mapping::DramMapping& mapping, std::uint32_t bank,
    std::uint64_t row);

struct HammerLoopConfig {
  sim::CampaignConfig campaign{};  ///< faults.enable_hammer must be set
  analysis::ExtractionConfig extraction{};
  faults::hammer::DetectorConfig detector{};
  /// Re-simulation rounds per node before giving up (safety bound; the
  /// loop converges as soon as a round adds no new detection).
  int max_rounds = 16;
  std::size_t threads = 1;
};

/// One retired row and how it scored against ground truth.
struct RetiredRow {
  enum class Kind : std::uint8_t { kTrue, kCollateral, kSpurious };
  cluster::NodeId node;
  std::uint32_t bank = 0;
  std::uint64_t row = 0;
  TimePoint trigger_time = 0;
  Kind kind = Kind::kSpurious;
};

struct HammerMitigationResult {
  std::vector<cluster::NodeId> excluded_nodes;  ///< pathological filter

  /// Distinct (node, bank, row) touched by kRowhammer ground truth on
  /// non-excluded nodes: the recall denominator.
  std::uint64_t true_victim_rows = 0;
  std::uint64_t rows_retired = 0;
  std::uint64_t retired_true = 0;
  std::uint64_t retired_collateral = 0;
  std::uint64_t retired_spurious = 0;
  /// retired_true / true_victim_rows (1.0 when there is nothing to find).
  double recall = 1.0;

  std::uint64_t open_observed = 0;    ///< collapsed faults, open loop
  std::uint64_t closed_observed = 0;  ///< after retirement converged
  std::uint64_t absorbed_faults = 0;  ///< open - closed
  int max_rounds_used = 0;

  std::vector<RetiredRow> retired;  ///< node-ordered, then trigger order
};

[[nodiscard]] HammerMitigationResult run_hammer_mitigation(
    const HammerLoopConfig& config);

}  // namespace unp::policy
