#include "analysis/alignment.hpp"

#include <algorithm>

namespace unp::analysis {

const char* to_string(GroupGeometry geometry) noexcept {
  switch (geometry) {
    case GroupGeometry::kSameRow: return "same-row";
    case GroupGeometry::kSameColumn: return "same-column";
    case GroupGeometry::kSameBank: return "same-bank";
    case GroupGeometry::kScattered: return "scattered";
  }
  return "unknown";
}

GroupGeometry classify_geometry(const SimultaneousGroup& group,
                                const dram::AddressMap& map) {
  bool same_row = true, same_column = true, same_bank = true;
  bool first = true;
  dram::WordLocation base;
  for (const FaultRecord* f : group.members) {
    const std::uint64_t word = f->virtual_address / sizeof(Word);
    const dram::WordLocation loc = map.decode(word % map.geometry().total_words());
    if (first) {
      base = loc;
      first = false;
      continue;
    }
    same_bank &= loc.rank == base.rank && loc.bank == base.bank;
    same_row &= loc.rank == base.rank && loc.bank == base.bank &&
                loc.row == base.row;
    same_column &= loc.rank == base.rank && loc.bank == base.bank &&
                   loc.column == base.column;
  }
  if (same_row) return GroupGeometry::kSameRow;
  if (same_column) return GroupGeometry::kSameColumn;
  if (same_bank) return GroupGeometry::kSameBank;
  return GroupGeometry::kScattered;
}

AlignmentStats physical_alignment_stats(
    const std::vector<SimultaneousGroup>& groups, const dram::AddressMap& map) {
  AlignmentStats stats;
  std::vector<std::uint64_t> rows;
  for (const auto& g : groups) {
    if (g.members.size() < 2) continue;
    ++stats.groups_examined;
    switch (classify_geometry(g, map)) {
      case GroupGeometry::kSameRow: ++stats.same_row; break;
      case GroupGeometry::kSameColumn: ++stats.same_column; break;
      case GroupGeometry::kSameBank: ++stats.same_bank; break;
      case GroupGeometry::kScattered: ++stats.scattered; break;
    }
    // Same-row pair detection (see header).
    rows.clear();
    for (const FaultRecord* f : g.members) {
      const std::uint64_t word = f->virtual_address / sizeof(Word);
      const dram::WordLocation loc =
          map.decode(word % map.geometry().total_words());
      rows.push_back((static_cast<std::uint64_t>(loc.rank) << 40) |
                     (static_cast<std::uint64_t>(loc.bank) << 32) | loc.row);
    }
    std::sort(rows.begin(), rows.end());
    for (std::size_t i = 1; i < rows.size(); ++i) {
      if (rows[i] == rows[i - 1]) {
        ++stats.with_aligned_pair;
        break;
      }
    }
  }
  return stats;
}

LogicalSpread logical_spread(const std::vector<SimultaneousGroup>& groups) {
  LogicalSpread spread;
  double sum = 0.0;
  std::uint64_t counted = 0;
  for (const auto& g : groups) {
    if (g.members.size() < 2) continue;
    std::uint64_t lo = g.members.front()->virtual_address;
    std::uint64_t hi = lo;
    for (const FaultRecord* f : g.members) {
      lo = std::min(lo, f->virtual_address);
      hi = std::max(hi, f->virtual_address);
    }
    const std::uint64_t span = hi - lo;
    sum += static_cast<double>(span);
    spread.max_span_bytes = std::max(spread.max_span_bytes, span);
    ++counted;
  }
  if (counted > 0) spread.mean_span_bytes = sum / static_cast<double>(counted);
  return spread;
}

void AlignmentAnalyzer::begin_faults(const FaultStreamContext& ctx) {
  grouping_.begin_faults(ctx);
  stats_ = AlignmentStats{};
  spread_ = LogicalSpread{};
}

void AlignmentAnalyzer::on_fault(const FaultRecord& fault) {
  grouping_.on_fault(fault);
}

void AlignmentAnalyzer::end_faults() {
  grouping_.end_faults();
  stats_ = physical_alignment_stats(grouping_.groups(), *map_);
  spread_ = logical_spread(grouping_.groups());
}

}  // namespace unp::analysis
