#include "analysis/alignment.hpp"

#include <algorithm>

#include "analysis/sink_state.hpp"

namespace unp::analysis {

const char* to_string(GroupGeometry geometry) noexcept {
  switch (geometry) {
    case GroupGeometry::kSameRow: return "same-row";
    case GroupGeometry::kSameColumn: return "same-column";
    case GroupGeometry::kSameBank: return "same-bank";
    case GroupGeometry::kScattered: return "scattered";
  }
  return "unknown";
}

GroupGeometry classify_geometry(const SimultaneousGroup& group,
                                const dram::AddressMap& map) {
  bool same_row = true, same_column = true, same_bank = true;
  bool first = true;
  dram::WordLocation base;
  for (const FaultRecord* f : group.members) {
    const std::uint64_t word = f->virtual_address / sizeof(Word);
    const dram::WordLocation loc = map.decode(word % map.geometry().total_words());
    if (first) {
      base = loc;
      first = false;
      continue;
    }
    same_bank &= loc.rank == base.rank && loc.bank == base.bank;
    same_row &= loc.rank == base.rank && loc.bank == base.bank &&
                loc.row == base.row;
    same_column &= loc.rank == base.rank && loc.bank == base.bank &&
                   loc.column == base.column;
  }
  if (same_row) return GroupGeometry::kSameRow;
  if (same_column) return GroupGeometry::kSameColumn;
  if (same_bank) return GroupGeometry::kSameBank;
  return GroupGeometry::kScattered;
}

AlignmentStats physical_alignment_stats(
    const std::vector<SimultaneousGroup>& groups, const dram::AddressMap& map) {
  AlignmentStats stats;
  std::vector<std::uint64_t> rows;
  for (const auto& g : groups) {
    if (g.members.size() < 2) continue;
    ++stats.groups_examined;
    switch (classify_geometry(g, map)) {
      case GroupGeometry::kSameRow: ++stats.same_row; break;
      case GroupGeometry::kSameColumn: ++stats.same_column; break;
      case GroupGeometry::kSameBank: ++stats.same_bank; break;
      case GroupGeometry::kScattered: ++stats.scattered; break;
    }
    // Same-row pair detection (see header).
    rows.clear();
    for (const FaultRecord* f : g.members) {
      const std::uint64_t word = f->virtual_address / sizeof(Word);
      const dram::WordLocation loc =
          map.decode(word % map.geometry().total_words());
      rows.push_back((static_cast<std::uint64_t>(loc.rank) << 40) |
                     (static_cast<std::uint64_t>(loc.bank) << 32) | loc.row);
    }
    std::sort(rows.begin(), rows.end());
    for (std::size_t i = 1; i < rows.size(); ++i) {
      if (rows[i] == rows[i - 1]) {
        ++stats.with_aligned_pair;
        break;
      }
    }
  }
  return stats;
}

namespace {

/// Associative pieces of LogicalSpread: span sum, group count, max span.
struct SpanPartials {
  double sum = 0.0;
  std::uint64_t count = 0;
  std::uint64_t max = 0;
};

SpanPartials span_partials(const std::vector<SimultaneousGroup>& groups) {
  SpanPartials p;
  for (const auto& g : groups) {
    if (g.members.size() < 2) continue;
    std::uint64_t lo = g.members.front()->virtual_address;
    std::uint64_t hi = lo;
    for (const FaultRecord* f : g.members) {
      lo = std::min(lo, f->virtual_address);
      hi = std::max(hi, f->virtual_address);
    }
    const std::uint64_t span = hi - lo;
    p.sum += static_cast<double>(span);
    p.max = std::max(p.max, span);
    ++p.count;
  }
  return p;
}

}  // namespace

LogicalSpread logical_spread(const std::vector<SimultaneousGroup>& groups) {
  LogicalSpread spread;
  const SpanPartials p = span_partials(groups);
  spread.max_span_bytes = p.max;
  if (p.count > 0) spread.mean_span_bytes = p.sum / static_cast<double>(p.count);
  return spread;
}

void AlignmentAnalyzer::begin_faults(const FaultStreamContext& ctx) {
  grouping_.begin_faults(ctx);
  stats_ = AlignmentStats{};
  spread_ = LogicalSpread{};
  merged_stats_ = AlignmentStats{};
  merged_span_sum_ = 0.0;
  merged_span_count_ = 0;
  merged_max_span_ = 0;
}

void AlignmentAnalyzer::on_fault(const FaultRecord& fault) {
  grouping_.on_fault(fault);
}

void AlignmentAnalyzer::end_faults() {
  grouping_.end_faults();
  stats_ = physical_alignment_stats(grouping_.groups(), *map_);
  stats_.groups_examined += merged_stats_.groups_examined;
  stats_.same_row += merged_stats_.same_row;
  stats_.same_column += merged_stats_.same_column;
  stats_.same_bank += merged_stats_.same_bank;
  stats_.scattered += merged_stats_.scattered;
  stats_.with_aligned_pair += merged_stats_.with_aligned_pair;

  SpanPartials p = span_partials(grouping_.groups());
  p.sum += merged_span_sum_;
  p.count += merged_span_count_;
  p.max = std::max(p.max, merged_max_span_);
  spread_ = LogicalSpread{};
  spread_.max_span_bytes = p.max;
  if (p.count > 0)
    spread_.mean_span_bytes = p.sum / static_cast<double>(p.count);
}

std::string AlignmentAnalyzer::serialize_state() const {
  // Locally streamed groups plus everything already folded in via
  // merge_state — so re-serializing a merged accumulator round-trips.
  const auto groups = grouping_.current_groups();
  AlignmentStats s = physical_alignment_stats(groups, *map_);
  SpanPartials p = span_partials(groups);
  s.groups_examined += merged_stats_.groups_examined;
  s.same_row += merged_stats_.same_row;
  s.same_column += merged_stats_.same_column;
  s.same_bank += merged_stats_.same_bank;
  s.scattered += merged_stats_.scattered;
  s.with_aligned_pair += merged_stats_.with_aligned_pair;
  p.sum += merged_span_sum_;
  p.count += merged_span_count_;
  p.max = std::max(p.max, merged_max_span_);
  state::Writer w('L');
  w.put_u64(s.groups_examined);
  w.put_u64(s.same_row);
  w.put_u64(s.same_column);
  w.put_u64(s.same_bank);
  w.put_u64(s.scattered);
  w.put_u64(s.with_aligned_pair);
  w.put_f64(p.sum);
  w.put_u64(p.count);
  w.put_u64(p.max);
  return std::move(w).take();
}

void AlignmentAnalyzer::merge_state(const std::string& blob) {
  state::Reader r(blob, 'L', "AlignmentAnalyzer");
  merged_stats_.groups_examined += r.get_u64();
  merged_stats_.same_row += r.get_u64();
  merged_stats_.same_column += r.get_u64();
  merged_stats_.same_bank += r.get_u64();
  merged_stats_.scattered += r.get_u64();
  merged_stats_.with_aligned_pair += r.get_u64();
  merged_span_sum_ += r.get_f64();
  merged_span_count_ += r.get_u64();
  merged_max_span_ = std::max(merged_max_span_, r.get_u64());
  r.finish();
}

}  // namespace unp::analysis
