// Inter-arrival structure of the error process (Section III-I's temporal
// correlation, quantified).
//
// "Memory errors are not only clustered in a few nodes, but also clustered
// in time."  The regime split shows it coarsely; inter-arrival statistics
// pin it down: a memoryless (Poisson) error process has coefficient of
// variation 1 and exponential gaps, while the campaign's process is wildly
// over-dispersed - most gaps are seconds-to-minutes inside bursts, with
// day-long silences between them.  The burstiness index and the short-gap
// mass are what lazy-checkpointing schemes (the paper's refs [2], [18])
// exploit.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "analysis/extraction.hpp"
#include "analysis/fault_sink.hpp"

namespace unp::analysis {

struct InterArrivalStats {
  std::uint64_t gaps = 0;
  double mean_s = 0.0;
  double median_s = 0.0;
  double cv = 0.0;  ///< stddev / mean; 1 for a Poisson process
  /// Fraction of gaps shorter than the thresholds (burst mass).
  double within_minute = 0.0;
  double within_hour = 0.0;
  /// Burstiness index B = (cv - 1) / (cv + 1): 0 Poisson, -> 1 bursty.
  [[nodiscard]] double burstiness() const noexcept {
    return (cv + 1.0) > 0.0 ? (cv - 1.0) / (cv + 1.0) : 0.0;
  }

  friend bool operator==(const InterArrivalStats&, const InterArrivalStats&) = default;
};

/// Inter-arrival statistics of the fault stream (cluster-wide), optionally
/// excluding nodes (the permanent failure, per Section III-I).
[[nodiscard]] InterArrivalStats interarrival_stats(
    FaultView faults, const std::vector<cluster::NodeId>& excluded_nodes = {});

/// The same statistics for a synthetic Poisson process with an equal number
/// of events over the same span (the null hypothesis to compare against).
[[nodiscard]] InterArrivalStats poisson_reference(std::uint64_t events,
                                                  std::int64_t span_s,
                                                  std::uint64_t seed);

// --- Streaming analyzer ---------------------------------------------------

/// Inter-arrival statistics incrementally.  Buffers one TimePoint per fault
/// and resolves the loudest-node exclusion (Section III-I removes the
/// permanent failure) at end_faults, with the same tie-break as
/// classify_regime_excluding_loudest so both analyses drop the same node.
///
/// Shard aggregation: the state is the raw (time, node) event buffer
/// (delta-encoded).  Merging appends — end_faults sorts the combined times
/// before computing gaps, so buffer order never affects the result and the
/// merged statistics equal the monolithic ones bit for bit.
class InterArrivalAnalyzer final : public FaultSink {
 public:
  explicit InterArrivalAnalyzer(bool exclude_loudest = true)
      : exclude_loudest_(exclude_loudest) {}

  void begin_faults(const FaultStreamContext& ctx) override;
  void on_fault(const FaultRecord& fault) override;
  void end_faults() override;
  [[nodiscard]] std::string serialize_state() const override;
  void merge_state(const std::string& blob) override;

  [[nodiscard]] const InterArrivalStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const std::optional<cluster::NodeId>& excluded() const noexcept {
    return excluded_;
  }

 private:
  bool exclude_loudest_;
  std::vector<TimePoint> times_;  ///< per fault, arrival order
  std::vector<int> nodes_;        ///< node_index per fault, same order
  std::vector<std::uint64_t> totals_;
  std::optional<cluster::NodeId> excluded_;
  InterArrivalStats stats_;
};

}  // namespace unp::analysis
