// Inter-arrival structure of the error process (Section III-I's temporal
// correlation, quantified).
//
// "Memory errors are not only clustered in a few nodes, but also clustered
// in time."  The regime split shows it coarsely; inter-arrival statistics
// pin it down: a memoryless (Poisson) error process has coefficient of
// variation 1 and exponential gaps, while the campaign's process is wildly
// over-dispersed - most gaps are seconds-to-minutes inside bursts, with
// day-long silences between them.  The burstiness index and the short-gap
// mass are what lazy-checkpointing schemes (the paper's refs [2], [18])
// exploit.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/extraction.hpp"

namespace unp::analysis {

struct InterArrivalStats {
  std::uint64_t gaps = 0;
  double mean_s = 0.0;
  double median_s = 0.0;
  double cv = 0.0;  ///< stddev / mean; 1 for a Poisson process
  /// Fraction of gaps shorter than the thresholds (burst mass).
  double within_minute = 0.0;
  double within_hour = 0.0;
  /// Burstiness index B = (cv - 1) / (cv + 1): 0 Poisson, -> 1 bursty.
  [[nodiscard]] double burstiness() const noexcept {
    return (cv + 1.0) > 0.0 ? (cv - 1.0) / (cv + 1.0) : 0.0;
  }
};

/// Inter-arrival statistics of the fault stream (cluster-wide), optionally
/// excluding nodes (the permanent failure, per Section III-I).
[[nodiscard]] InterArrivalStats interarrival_stats(
    const std::vector<FaultRecord>& faults,
    const std::vector<cluster::NodeId>& excluded_nodes = {});

/// The same statistics for a synthetic Poisson process with an equal number
/// of events over the same span (the null hypothesis to compare against).
[[nodiscard]] InterArrivalStats poisson_reference(std::uint64_t events,
                                                  std::int64_t span_s,
                                                  std::uint64_t seed);

}  // namespace unp::analysis
