// Simultaneity analysis (Section III-C).
//
// Faults on the same node bearing the same timestamp came from one scan
// pass, hence one instant: the paper treats them as a single multi-cell
// phenomenon ("per node" accounting) even though each would look like an
// isolated ECC correction on a classical machine ("per memory word"
// accounting).  Fig 4 contrasts the two viewpoints.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/extraction.hpp"
#include "analysis/fault_sink.hpp"

namespace unp::analysis {

/// Faults of one node observed at one instant.
struct SimultaneousGroup {
  cluster::NodeId node;
  TimePoint time = 0;
  std::vector<const FaultRecord*> members;

  /// Total flipped bits across all member words.
  [[nodiscard]] int total_bits() const noexcept;
  /// Largest per-word flip width in the group.
  [[nodiscard]] int max_word_bits() const noexcept;
  [[nodiscard]] bool is_simultaneous() const noexcept { return members.size() >= 2; }
};

/// Group faults by (node, first_seen); includes singleton groups.
/// Pointers reference `faults`, which must outlive the result.
[[nodiscard]] std::vector<SimultaneousGroup> group_simultaneous(FaultView faults);

/// Fig 4's two viewpoints: error counts bucketed by flip width 1..32,
/// counted per memory word and per node-instant.
struct MultibitViewpoints {
  static constexpr int kMaxBits = 37;  ///< buckets 1..36 (36 = widest burst)
  std::uint64_t per_word[kMaxBits + 1] = {};
  std::uint64_t per_node[kMaxBits + 1] = {};
};

[[nodiscard]] MultibitViewpoints count_viewpoints(
    const std::vector<SimultaneousGroup>& groups);

/// Section III-C's co-occurrence census: how often multi-bit word errors
/// were accompanied by other corruption in the same instant.
struct CoOccurrence {
  std::uint64_t simultaneous_corruptions = 0;  ///< faults in >=2-member groups
  std::uint64_t multi_single_groups = 0;       ///< >=2 members, all single-bit
  std::uint64_t double_plus_single = 0;        ///< a 2-bit word + single(s)
  std::uint64_t triple_plus_single = 0;        ///< a 3-bit word + single(s)
  std::uint64_t double_plus_double = 0;        ///< two multi-bit words together
  std::uint64_t max_bits_one_instant = 0;      ///< widest total corruption
};

[[nodiscard]] CoOccurrence count_co_occurrence(
    const std::vector<SimultaneousGroup>& groups);

// --- Streaming analyzer ---------------------------------------------------

/// Simultaneity grouping incrementally.  Faults arrive in canonical
/// (time, node, address) order; bucketing them per node preserves each
/// node's (time, address) order, so concatenating the buckets by ascending
/// node index at end_faults reproduces group_simultaneous' sort exactly.
/// Group members point into the streamed FaultView, which must outlive the
/// analyzer's products.
///
/// Shard aggregation: groups hold pointers, which cannot cross process or
/// blob boundaries, so the serialized state carries the *derived* censuses
/// instead — Fig 4's MultibitViewpoints and the co-occurrence counters.
/// Groups never span nodes, nodes never span shards, hence both censuses
/// decompose additively over shards (max-combining max_bits_one_instant).
/// After a merge, `groups()` only covers locally streamed faults;
/// `viewpoints()`/`co_occurrence()` cover everything and are what the
/// figure renderers read.
class SimultaneousGroupAnalyzer final : public FaultSink {
 public:
  void begin_faults(const FaultStreamContext& ctx) override;
  void on_fault(const FaultRecord& fault) override;
  void end_faults() override;
  [[nodiscard]] std::string serialize_state() const override;
  void merge_state(const std::string& blob) override;
  [[nodiscard]] const std::vector<SimultaneousGroup>& groups() const noexcept {
    return groups_;
  }
  /// Fig 4 census over local groups + every merged shard state (end_faults).
  [[nodiscard]] const MultibitViewpoints& viewpoints() const noexcept {
    return viewpoints_;
  }
  /// Co-occurrence census over local + merged states (end_faults).
  [[nodiscard]] const CoOccurrence& co_occurrence() const noexcept {
    return co_occurrence_;
  }
  /// The groups end_faults would emit for the current buckets, without
  /// consuming them.  Lets wrapping sinks (AlignmentAnalyzer) derive their
  /// own shard state before end_faults runs.
  [[nodiscard]] std::vector<SimultaneousGroup> current_groups() const;

 private:
  std::vector<std::vector<const FaultRecord*>> by_node_;
  std::vector<SimultaneousGroup> groups_;
  MultibitViewpoints viewpoints_;
  CoOccurrence co_occurrence_;
  MultibitViewpoints merged_viewpoints_;
  CoOccurrence merged_co_occurrence_;
};

}  // namespace unp::analysis
