// Automatic node-failure diagnosis.
//
// Section III-H reads the three loud nodes by hand: node 02-04's errors hit
// >11,000 addresses "in such a random way [that] corruption might have been
// happening in another component of the node and not in the memory itself",
// while 04-05 and 58-02 flip one identical bit - a weak cell.  This module
// turns that reading into a classifier an operator can run on any node's
// fault record:
//
//   kHealthy          few or no faults
//   kWeakCell         many faults, ~one address, one fixed flip pattern
//                     -> page retirement fixes it
//   kStuckRegion      few addresses each re-logged relentlessly (raw/fault
//                     ratio enormous) -> DIMM replacement
//   kComponentFailure many faults across many addresses with scattered
//                     patterns -> replace the node, retirement is hopeless
//   kSporadic         a handful of unrelated transients (cosmic background)
//
// The simulator knows each node's true mechanism, so the classifier's
// accuracy is measurable (bench_ext_diagnosis).
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/extraction.hpp"

namespace unp::analysis {

enum class NodeCondition : std::uint8_t {
  kHealthy,
  kSporadic,
  kWeakCell,
  kStuckRegion,
  kComponentFailure,
};

[[nodiscard]] const char* to_string(NodeCondition condition) noexcept;

struct DiagnosisConfig {
  /// Up to this many faults a node is merely sporadic.
  std::uint64_t sporadic_max_faults = 10;
  /// Address-diversity boundary: distinct addresses / faults below this
  /// with a dominant address means a localized cell defect.
  double localized_address_ratio = 0.05;
  /// Raw-logs-per-fault ratio above which the cell is stuck rather than
  /// intermittent.
  double stuck_raw_ratio = 50.0;
};

struct NodeDiagnosis {
  cluster::NodeId node;
  NodeCondition condition = NodeCondition::kHealthy;
  std::uint64_t faults = 0;
  std::uint64_t raw_logs = 0;
  std::uint64_t distinct_addresses = 0;
  std::uint64_t distinct_patterns = 0;
  /// Action recommendation mirroring Section IV's options.
  [[nodiscard]] const char* recommendation() const noexcept;
};

/// Diagnose one node from its extracted faults.
[[nodiscard]] NodeDiagnosis diagnose_node(FaultView faults, cluster::NodeId node,
                                          const DiagnosisConfig& config = {});

/// Diagnose every node that shows at least one fault, ordered loudest first.
[[nodiscard]] std::vector<NodeDiagnosis> diagnose_fleet(
    FaultView faults, const DiagnosisConfig& config = {});

}  // namespace unp::analysis
