// Single-pass streaming fault extraction.
//
// extract_faults() needs the whole CampaignArchive materialized; this sink
// performs the same §II-C methodology incrementally while the records are
// being produced (by sim::run_campaign) or replayed (by ArchiveReader), so
// analyses can run without the raw archive ever being resident:
//
//   - START/END/ALLOC-FAIL records pass through with only counters updated;
//   - ERROR runs buffer per node (runs, not expanded raw lines, so the
//     working set stays at archive-codec scale);
//   - when a node's frame closes, its runs collapse to independent faults
//     via the exact collapse_node_log used by the batch path — the raw runs
//     are freed right there, mid-stream;
//   - finish() applies the pathological-node filter (which requires the
//     campaign-wide raw total, hence it cannot happen earlier) and the final
//     deterministic sort.
//
// The result is bit-identical to extract_faults on the same stream, which
// tests/analysis/streaming_extractor_test.cpp asserts over a full campaign.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "analysis/extraction.hpp"
#include "telemetry/sink.hpp"

namespace unp::analysis {

class StreamingExtractor final : public telemetry::RecordSink {
 public:
  explicit StreamingExtractor(ExtractionConfig config = ExtractionConfig{});

  // RecordSink.
  void begin_campaign(const CampaignWindow& window) override;
  void on_start(const telemetry::StartRecord& r) override;
  void on_end(const telemetry::EndRecord& r) override;
  void on_alloc_fail(const telemetry::AllocFailRecord& r) override;
  void on_error_run(const telemetry::ErrorRun& r) override;
  void end_node(cluster::NodeId node) override;

  /// Observer fired once per node, right after that node's buffered error
  /// runs collapse into independent faults (at end_node, or during finish()
  /// for nodes streamed without a closing frame).  The span covers the
  /// node's newly collapsed faults in collapse order and is only valid for
  /// the duration of the call.  Faults are delivered BEFORE the campaign-
  /// wide pathological filter — that filter needs the campaign raw total,
  /// which no online consumer can know mid-stream — so incremental
  /// consumers (the policy engine) see every node and reconcile against
  /// finish()'s removed_nodes afterwards.
  using NodeFaultObserver =
      std::function<void(cluster::NodeId, std::span<const FaultRecord>)>;
  void set_node_observer(NodeFaultObserver observer) {
    observer_ = std::move(observer);
  }

  /// Apply the pathological filter and final sort; the extractor is spent
  /// afterwards.  Call once after the stream completes.
  [[nodiscard]] ExtractionResult finish();

  /// Records seen so far (raw ERROR lines counted with runs expanded).
  [[nodiscard]] std::uint64_t raw_errors_seen() const noexcept { return raw_total_; }
  [[nodiscard]] std::uint64_t sessions_seen() const noexcept { return sessions_; }

 private:
  void collapse_pending(std::size_t index);

  ExtractionConfig config_;
  NodeFaultObserver observer_;
  /// Buffered error runs of nodes whose frame is still open.
  std::vector<telemetry::NodeLog> pending_;
  /// Collapsed per-node faults awaiting the campaign-wide filter.
  std::vector<std::vector<FaultRecord>> collapsed_;
  std::vector<std::uint64_t> raw_per_node_;
  std::uint64_t raw_total_ = 0;
  std::uint64_t sessions_ = 0;
  bool finished_ = false;
};

}  // namespace unp::analysis
