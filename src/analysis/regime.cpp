#include "analysis/regime.hpp"

#include <algorithm>

namespace unp::analysis {

RegimeResult classify_regime(const std::vector<FaultRecord>& faults,
                             const CampaignWindow& window,
                             const RegimeConfig& config) {
  RegimeResult result;
  const auto days = static_cast<std::size_t>(window.duration_days()) + 2;
  result.errors_per_day.assign(days, 0);

  for (const auto& f : faults) {
    if (std::find(config.excluded_nodes.begin(), config.excluded_nodes.end(),
                  f.node) != config.excluded_nodes.end()) {
      continue;
    }
    const std::int64_t day = window.day_of_campaign(f.first_seen);
    if (day < 0 || static_cast<std::size_t>(day) >= days) continue;
    ++result.errors_per_day[static_cast<std::size_t>(day)];
  }

  result.degraded.assign(days, false);
  for (std::size_t d = 0; d < days; ++d) {
    const std::uint64_t errors = result.errors_per_day[d];
    if (errors > config.normal_threshold) {
      result.degraded[d] = true;
      ++result.degraded_days;
      result.degraded_errors += errors;
    } else {
      ++result.normal_days;
      result.normal_errors += errors;
    }
  }

  if (result.normal_errors > 0) {
    result.normal_mtbf_hours = static_cast<double>(result.normal_days) * 24.0 /
                               static_cast<double>(result.normal_errors);
  }
  if (result.degraded_errors > 0) {
    result.degraded_mtbf_hours =
        static_cast<double>(result.degraded_days) * 24.0 /
        static_cast<double>(result.degraded_errors);
  }
  return result;
}

AutoRegime classify_regime_excluding_loudest(
    const std::vector<FaultRecord>& faults, const CampaignWindow& window,
    std::uint64_t normal_threshold) {
  std::vector<std::uint64_t> totals(
      static_cast<std::size_t>(cluster::kStudyNodeSlots), 0);
  for (const auto& f : faults) {
    ++totals[static_cast<std::size_t>(cluster::node_index(f.node))];
  }
  const auto loudest = static_cast<std::size_t>(std::distance(
      totals.begin(), std::max_element(totals.begin(), totals.end())));

  AutoRegime out;
  RegimeConfig config;
  config.normal_threshold = normal_threshold;
  if (totals[loudest] > 0) {
    out.excluded = cluster::node_from_index(static_cast<int>(loudest));
    config.excluded_nodes.push_back(*out.excluded);
  }
  out.regime = classify_regime(faults, window, config);
  return out;
}

}  // namespace unp::analysis
