#include "analysis/regime.hpp"

#include <algorithm>

#include "analysis/sink_state.hpp"
#include "common/require.hpp"

namespace unp::analysis {

RegimeResult classify_daily_counts(std::vector<std::uint64_t> errors_per_day,
                                   std::uint64_t normal_threshold) {
  RegimeResult result;
  const std::size_t days = errors_per_day.size();
  result.errors_per_day = std::move(errors_per_day);

  result.degraded.assign(days, false);
  for (std::size_t d = 0; d < days; ++d) {
    const std::uint64_t errors = result.errors_per_day[d];
    if (errors > normal_threshold) {
      result.degraded[d] = true;
      ++result.degraded_days;
      result.degraded_errors += errors;
    } else {
      ++result.normal_days;
      result.normal_errors += errors;
    }
  }

  if (result.normal_errors > 0) {
    result.normal_mtbf_hours = static_cast<double>(result.normal_days) * 24.0 /
                               static_cast<double>(result.normal_errors);
  }
  if (result.degraded_errors > 0) {
    result.degraded_mtbf_hours =
        static_cast<double>(result.degraded_days) * 24.0 /
        static_cast<double>(result.degraded_errors);
  }
  return result;
}

RegimeResult classify_regime(FaultView faults, const CampaignWindow& window,
                             const RegimeConfig& config) {
  const auto days = static_cast<std::size_t>(window.duration_days()) + 2;
  std::vector<std::uint64_t> errors_per_day(days, 0);

  for (const auto& f : faults) {
    if (std::find(config.excluded_nodes.begin(), config.excluded_nodes.end(),
                  f.node) != config.excluded_nodes.end()) {
      continue;
    }
    const std::int64_t day = window.day_of_campaign(f.first_seen);
    if (day < 0 || static_cast<std::size_t>(day) >= days) continue;
    ++errors_per_day[static_cast<std::size_t>(day)];
  }

  return classify_daily_counts(std::move(errors_per_day),
                               config.normal_threshold);
}

AutoRegime classify_regime_excluding_loudest(FaultView faults,
                                             const CampaignWindow& window,
                                             std::uint64_t normal_threshold) {
  std::vector<std::uint64_t> totals(
      static_cast<std::size_t>(cluster::kStudyNodeSlots), 0);
  for (const auto& f : faults) {
    ++totals[static_cast<std::size_t>(cluster::node_index(f.node))];
  }
  const auto loudest = static_cast<std::size_t>(std::distance(
      totals.begin(), std::max_element(totals.begin(), totals.end())));

  AutoRegime out;
  RegimeConfig config;
  config.normal_threshold = normal_threshold;
  if (totals[loudest] > 0) {
    out.excluded = cluster::node_from_index(static_cast<int>(loudest));
    config.excluded_nodes.push_back(*out.excluded);
  }
  out.regime = classify_regime(faults, window, config);
  return out;
}

void RegimeAnalyzer::begin_faults(const FaultStreamContext& ctx) {
  window_ = ctx.window;
  days_ = static_cast<std::size_t>(window_.duration_days()) + 2;
  totals_.assign(static_cast<std::size_t>(cluster::kStudyNodeSlots), 0);
  counts_.assign(static_cast<std::size_t>(cluster::kStudyNodeSlots) * days_, 0);
  result_ = AutoRegime{};
}

void RegimeAnalyzer::on_fault(const FaultRecord& fault) {
  const auto node = static_cast<std::size_t>(cluster::node_index(fault.node));
  ++totals_[node];
  const std::int64_t day = window_.day_of_campaign(fault.first_seen);
  if (day < 0 || static_cast<std::size_t>(day) >= days_) return;
  ++counts_[node * days_ + static_cast<std::size_t>(day)];
}

void RegimeAnalyzer::end_faults() {
  const auto loudest = static_cast<std::size_t>(std::distance(
      totals_.begin(), std::max_element(totals_.begin(), totals_.end())));

  std::vector<std::uint64_t> errors_per_day(days_, 0);
  for (std::size_t node = 0;
       node < static_cast<std::size_t>(cluster::kStudyNodeSlots); ++node) {
    if (!totals_.empty() && totals_[loudest] > 0 && node == loudest) continue;
    for (std::size_t d = 0; d < days_; ++d)
      errors_per_day[d] += counts_[node * days_ + d];
  }

  result_ = AutoRegime{};
  if (!totals_.empty() && totals_[loudest] > 0) {
    result_.excluded = cluster::node_from_index(static_cast<int>(loudest));
  }
  result_.regime =
      classify_daily_counts(std::move(errors_per_day), normal_threshold_);

  totals_.clear();
  counts_.clear();
}

std::string RegimeAnalyzer::serialize_state() const {
  state::Writer w('R');
  w.put_u64(days_);
  for (const auto t : totals_) w.put_u64(t);
  for (const auto c : counts_) w.put_u64(c);
  return std::move(w).take();
}

void RegimeAnalyzer::merge_state(const std::string& blob) {
  state::Reader r(blob, 'R', "RegimeAnalyzer");
  const std::uint64_t days = r.get_u64();
  UNP_REQUIRE(days == days_);  // states must cover the same campaign span
  for (auto& t : totals_) t += r.get_u64();
  for (auto& c : counts_) c += r.get_u64();
  r.finish();
}

}  // namespace unp::analysis
