// CSV exporters for every figure's underlying data.
//
// The bench binaries print ASCII renderings; these functions emit the same
// series as machine-readable CSV so the paper's plots can be regenerated
// with any plotting stack.  write_figure_bundle() drops one file per
// figure into a directory.
#pragma once

#include <string>

#include "analysis/extraction.hpp"
#include "analysis/grouping.hpp"
#include "analysis/metrics.hpp"
#include "common/histogram.hpp"
#include "telemetry/archive.hpp"

namespace unp::analysis {

/// Node-grid CSV: "blade,soc,value" per cell (Figs 1-3).
[[nodiscard]] std::string csv_grid(const Grid2D& grid, const std::string& header);

/// Hour-of-day CSV: "hour,bits1,...,bits6plus,total,multibit" (Figs 5-6).
[[nodiscard]] std::string csv_hour_profile(const HourOfDayProfile& profile);

/// Temperature CSV: "bin_lo_c,bin_hi_c,bits1,...,bits6plus" (Figs 7-8).
[[nodiscard]] std::string csv_temperature_profile(const TemperatureProfile& profile);

/// Daily CSV: "day,date,tbh_scanned,errors,multibit_errors" (Figs 9-11).
[[nodiscard]] std::string csv_daily(const telemetry::CampaignArchive& archive,
                                    FaultView faults);

/// Full fault dump:
/// "node,first_seen,last_seen,raw_logs,vaddr,expected,actual,bits,temp_c".
[[nodiscard]] std::string csv_faults(FaultView faults);

/// Fig 4 CSV: "bits,per_word,per_node".
[[nodiscard]] std::string csv_viewpoints(const MultibitViewpoints& viewpoints);

/// Write the complete figure bundle (fig01..fig11 plus faults.csv) into
/// `directory` (created if needed).  Returns the number of files written.
int write_figure_bundle(const std::string& directory,
                        const telemetry::CampaignArchive& archive,
                        const ExtractionResult& extraction);

}  // namespace unp::analysis
