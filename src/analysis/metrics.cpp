#include "analysis/metrics.hpp"

#include <algorithm>

#include "common/require.hpp"

namespace unp::analysis {

const char* bit_class_label(int klass) noexcept {
  switch (klass) {
    case 0: return "1";
    case 1: return "2";
    case 2: return "3";
    case 3: return "4";
    case 4: return "5";
    case 5: return "6+";
  }
  return "?";
}

namespace {

Grid2D node_grid() {
  return Grid2D(static_cast<std::size_t>(cluster::kStudyBlades),
                static_cast<std::size_t>(cluster::kSocsPerBlade));
}

}  // namespace

Grid2D hours_scanned_grid(const telemetry::CampaignArchive& archive) {
  Grid2D grid = node_grid();
  for (int i = 0; i < cluster::kStudyNodeSlots; ++i) {
    const cluster::NodeId node = cluster::node_from_index(i);
    grid.at(static_cast<std::size_t>(node.blade),
            static_cast<std::size_t>(node.soc)) =
        archive.log(node).monitored_hours();
  }
  return grid;
}

Grid2D terabyte_hours_grid(const telemetry::CampaignArchive& archive) {
  Grid2D grid = node_grid();
  for (int i = 0; i < cluster::kStudyNodeSlots; ++i) {
    const cluster::NodeId node = cluster::node_from_index(i);
    grid.at(static_cast<std::size_t>(node.blade),
            static_cast<std::size_t>(node.soc)) =
        archive.log(node).terabyte_hours();
  }
  return grid;
}

Grid2D errors_grid(const std::vector<FaultRecord>& faults) {
  Grid2D grid = node_grid();
  for (const auto& f : faults) {
    grid.at(static_cast<std::size_t>(f.node.blade),
            static_cast<std::size_t>(f.node.soc)) += 1.0;
  }
  return grid;
}

std::uint64_t HourOfDayProfile::total(int hour) const noexcept {
  std::uint64_t sum = 0;
  for (int c = 0; c < kBitClasses; ++c)
    sum += counts[static_cast<std::size_t>(hour)][static_cast<std::size_t>(c)];
  return sum;
}

std::uint64_t HourOfDayProfile::multibit(int hour) const noexcept {
  std::uint64_t sum = 0;
  for (int c = 1; c < kBitClasses; ++c)
    sum += counts[static_cast<std::size_t>(hour)][static_cast<std::size_t>(c)];
  return sum;
}

double HourOfDayProfile::day_night_ratio_multibit() const noexcept {
  double day = 0.0, night = 0.0;
  for (int h = 0; h < 24; ++h) {
    const auto v = static_cast<double>(multibit(h));
    if (h >= 7 && h <= 18) {
      day += v;
    } else {
      night += v;
    }
  }
  // Normalize per hour: the day window spans 12 hours, the night 12.
  return night > 0.0 ? day / night : 0.0;
}

HourOfDayProfile hour_of_day_profile(const std::vector<FaultRecord>& faults) {
  HourOfDayProfile profile;
  for (const auto& f : faults) {
    const auto hour = static_cast<std::size_t>(
        BarcelonaClock::local_hour(f.first_seen));
    const auto klass = static_cast<std::size_t>(bit_class(f.flipped_bits()));
    ++profile.counts[hour][klass];
  }
  return profile;
}

TemperatureProfile::TemperatureProfile() {
  by_class.reserve(kBitClasses);
  for (int c = 0; c < kBitClasses; ++c) {
    by_class.emplace_back(kLoC, kHiC, kBins);
  }
}

TemperatureProfile temperature_profile(const std::vector<FaultRecord>& faults) {
  TemperatureProfile profile;
  for (const auto& f : faults) {
    if (!telemetry::has_temperature(f.temperature_c)) {
      ++profile.without_reading;
      continue;
    }
    profile.by_class[static_cast<std::size_t>(bit_class(f.flipped_bits()))].add(
        f.temperature_c);
  }
  return profile;
}

std::vector<double> daily_terabyte_hours(const telemetry::CampaignArchive& archive) {
  const CampaignWindow& window = archive.window();
  const auto days = static_cast<std::size_t>(window.duration_days()) + 2;
  std::vector<double> series(days, 0.0);
  constexpr double kBytesPerTb = 1099511627776.0;

  for (int i = 0; i < cluster::kStudyNodeSlots; ++i) {
    const telemetry::NodeLog& log = archive.log(cluster::node_from_index(i));
    // Pair STARTs with ENDs using the same conservative rule as
    // NodeLog::monitored_hours, then split each session across local days.
    std::size_t e = 0;
    const auto& starts = log.starts();
    const auto& ends = log.ends();
    for (std::size_t s = 0; s < starts.size(); ++s) {
      while (e < ends.size() && ends[e].time < starts[s].time) ++e;
      const TimePoint next_start = s + 1 < starts.size() ? starts[s + 1].time : 0;
      if (e >= ends.size() ||
          (s + 1 < starts.size() && ends[e].time > next_start)) {
        continue;  // END lost
      }
      const double tb = static_cast<double>(starts[s].allocated_bytes) / kBytesPerTb;
      TimePoint t = starts[s].time;
      const TimePoint session_end = ends[e].time;
      ++e;
      while (t < session_end) {
        const std::int64_t day = window.day_of_campaign(t);
        // End of the local day containing t.
        const TimePoint local_midnight =
            t + (kSecondsPerDay -
                 ((t + BarcelonaClock::utc_offset(t)) % kSecondsPerDay));
        const TimePoint chunk_end = std::min(session_end, local_midnight);
        if (day >= 0 && static_cast<std::size_t>(day) < series.size()) {
          series[static_cast<std::size_t>(day)] +=
              tb * static_cast<double>(chunk_end - t) / kSecondsPerHour;
        }
        t = chunk_end;
      }
    }
  }
  return series;
}

std::vector<std::array<std::uint64_t, kBitClasses>> daily_errors(
    const std::vector<FaultRecord>& faults, const CampaignWindow& window) {
  const auto days = static_cast<std::size_t>(window.duration_days()) + 2;
  std::vector<std::array<std::uint64_t, kBitClasses>> series(days);
  for (const auto& f : faults) {
    const std::int64_t day = window.day_of_campaign(f.first_seen);
    if (day < 0 || static_cast<std::size_t>(day) >= days) continue;
    ++series[static_cast<std::size_t>(day)]
            [static_cast<std::size_t>(bit_class(f.flipped_bits()))];
  }
  return series;
}

TopNodeSeries top_node_series(const std::vector<FaultRecord>& faults,
                              const CampaignWindow& window, std::size_t top) {
  std::vector<std::uint64_t> totals(
      static_cast<std::size_t>(cluster::kStudyNodeSlots), 0);
  for (const auto& f : faults) {
    ++totals[static_cast<std::size_t>(cluster::node_index(f.node))];
  }

  std::vector<int> order(static_cast<std::size_t>(cluster::kStudyNodeSlots));
  for (int i = 0; i < cluster::kStudyNodeSlots; ++i)
    order[static_cast<std::size_t>(i)] = i;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return totals[static_cast<std::size_t>(a)] > totals[static_cast<std::size_t>(b)];
  });

  TopNodeSeries result;
  const auto days = static_cast<std::size_t>(window.duration_days()) + 2;
  for (std::size_t k = 0; k < top; ++k) {
    const int idx = order[k];
    if (totals[static_cast<std::size_t>(idx)] == 0) break;
    result.nodes.push_back(cluster::node_from_index(idx));
    result.node_totals.push_back(totals[static_cast<std::size_t>(idx)]);
    result.per_day.emplace_back(days, 0);
  }
  result.rest_per_day.assign(days, 0);

  for (const auto& f : faults) {
    const std::int64_t day = window.day_of_campaign(f.first_seen);
    if (day < 0 || static_cast<std::size_t>(day) >= days) continue;
    const auto d = static_cast<std::size_t>(day);
    bool in_top = false;
    for (std::size_t k = 0; k < result.nodes.size(); ++k) {
      if (result.nodes[k] == f.node) {
        ++result.per_day[k][d];
        in_top = true;
        break;
      }
    }
    if (!in_top) {
      ++result.rest_per_day[d];
      ++result.rest_total;
    }
  }
  return result;
}

PearsonResult scan_error_correlation(const telemetry::CampaignArchive& archive,
                                     const std::vector<FaultRecord>& faults) {
  const std::vector<double> tbh = daily_terabyte_hours(archive);
  const auto errors = daily_errors(faults, archive.window());
  const std::size_t days = std::min(tbh.size(), errors.size());
  std::vector<double> x(days), y(days);
  for (std::size_t d = 0; d < days; ++d) {
    x[d] = tbh[d];
    std::uint64_t total = 0;
    for (int c = 0; c < kBitClasses; ++c)
      total += errors[d][static_cast<std::size_t>(c)];
    y[d] = static_cast<double>(total);
  }
  return pearson(x, y);
}

HeadlineStats headline_stats(const telemetry::CampaignArchive& archive,
                             const ExtractionResult& extraction) {
  HeadlineStats stats;
  stats.raw_logs = extraction.total_raw_logs;
  stats.removed_fraction = extraction.removed_fraction();
  stats.independent_faults = extraction.faults.size();
  stats.monitored_node_hours = archive.total_monitored_hours();
  stats.terabyte_hours = archive.total_terabyte_hours();

  for (int i = 0; i < cluster::kStudyNodeSlots; ++i) {
    if (archive.log(cluster::node_from_index(i)).monitored_hours() > 0.0) {
      ++stats.monitored_nodes;
    }
  }
  if (stats.independent_faults > 0) {
    stats.node_mtbf_hours = stats.monitored_node_hours /
                            static_cast<double>(stats.independent_faults);
    stats.cluster_mtbe_minutes =
        static_cast<double>(archive.window().duration_seconds()) / 60.0 /
        static_cast<double>(stats.independent_faults);
  }
  return stats;
}

}  // namespace unp::analysis
