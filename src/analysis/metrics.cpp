#include "analysis/metrics.hpp"

#include <algorithm>

#include "analysis/sink_state.hpp"
#include "common/require.hpp"

namespace unp::analysis {

const char* bit_class_label(int klass) noexcept {
  switch (klass) {
    case 0: return "1";
    case 1: return "2";
    case 2: return "3";
    case 3: return "4";
    case 4: return "5";
    case 5: return "6+";
  }
  return "?";
}

namespace {

Grid2D node_grid() {
  return Grid2D(static_cast<std::size_t>(cluster::kStudyBlades),
                static_cast<std::size_t>(cluster::kSocsPerBlade));
}

std::size_t series_days(const CampaignWindow& window) {
  return static_cast<std::size_t>(window.duration_days()) + 2;
}

}  // namespace

Grid2D hours_scanned_grid(const telemetry::CampaignArchive& archive) {
  Grid2D grid = node_grid();
  for (int i = 0; i < cluster::kStudyNodeSlots; ++i) {
    const cluster::NodeId node = cluster::node_from_index(i);
    grid.at(static_cast<std::size_t>(node.blade),
            static_cast<std::size_t>(node.soc)) =
        archive.log(node).monitored_hours();
  }
  return grid;
}

Grid2D terabyte_hours_grid(const telemetry::CampaignArchive& archive) {
  Grid2D grid = node_grid();
  for (int i = 0; i < cluster::kStudyNodeSlots; ++i) {
    const cluster::NodeId node = cluster::node_from_index(i);
    grid.at(static_cast<std::size_t>(node.blade),
            static_cast<std::size_t>(node.soc)) =
        archive.log(node).terabyte_hours();
  }
  return grid;
}

Grid2D errors_grid(FaultView faults) {
  ErrorsGridAnalyzer analyzer;
  analyzer.begin_faults({});
  for (const auto& f : faults) analyzer.on_fault(f);
  return analyzer.grid();
}

std::uint64_t HourOfDayProfile::total(int hour) const noexcept {
  std::uint64_t sum = 0;
  for (int c = 0; c < kBitClasses; ++c)
    sum += counts[static_cast<std::size_t>(hour)][static_cast<std::size_t>(c)];
  return sum;
}

std::uint64_t HourOfDayProfile::multibit(int hour) const noexcept {
  std::uint64_t sum = 0;
  for (int c = 1; c < kBitClasses; ++c)
    sum += counts[static_cast<std::size_t>(hour)][static_cast<std::size_t>(c)];
  return sum;
}

double HourOfDayProfile::day_night_ratio_multibit() const noexcept {
  double day = 0.0, night = 0.0;
  for (int h = 0; h < 24; ++h) {
    const auto v = static_cast<double>(multibit(h));
    if (h >= 7 && h <= 18) {
      day += v;
    } else {
      night += v;
    }
  }
  // Normalize per hour: the day window spans 12 hours, the night 12.
  return night > 0.0 ? day / night : 0.0;
}

HourOfDayProfile hour_of_day_profile(FaultView faults) {
  HourOfDayAnalyzer analyzer;
  analyzer.begin_faults({});
  for (const auto& f : faults) analyzer.on_fault(f);
  return analyzer.profile();
}

TemperatureProfile::TemperatureProfile() {
  by_class.reserve(kBitClasses);
  for (int c = 0; c < kBitClasses; ++c) {
    by_class.emplace_back(kLoC, kHiC, kBins);
  }
}

TemperatureProfile temperature_profile(FaultView faults) {
  TemperatureAnalyzer analyzer;
  analyzer.begin_faults({});
  for (const auto& f : faults) analyzer.on_fault(f);
  return analyzer.profile();
}

void accumulate_daily_terabyte_hours(const telemetry::NodeLog& log,
                                     const CampaignWindow& window,
                                     std::vector<double>& series) {
  constexpr double kBytesPerTb = 1099511627776.0;
  // Pair STARTs with ENDs using the same conservative rule as
  // NodeLog::monitored_hours, then split each session across local days.
  std::size_t e = 0;
  const auto& starts = log.starts();
  const auto& ends = log.ends();
  for (std::size_t s = 0; s < starts.size(); ++s) {
    while (e < ends.size() && ends[e].time < starts[s].time) ++e;
    const TimePoint next_start = s + 1 < starts.size() ? starts[s + 1].time : 0;
    if (e >= ends.size() ||
        (s + 1 < starts.size() && ends[e].time > next_start)) {
      continue;  // END lost
    }
    const double tb = static_cast<double>(starts[s].allocated_bytes) / kBytesPerTb;
    TimePoint t = starts[s].time;
    const TimePoint session_end = ends[e].time;
    ++e;
    while (t < session_end) {
      const std::int64_t day = window.day_of_campaign(t);
      // End of the local day containing t.
      const TimePoint local_midnight =
          t + (kSecondsPerDay -
               ((t + BarcelonaClock::utc_offset(t)) % kSecondsPerDay));
      const TimePoint chunk_end = std::min(session_end, local_midnight);
      if (day >= 0 && static_cast<std::size_t>(day) < series.size()) {
        series[static_cast<std::size_t>(day)] +=
            tb * static_cast<double>(chunk_end - t) / kSecondsPerHour;
      }
      t = chunk_end;
    }
  }
}

std::vector<double> daily_terabyte_hours(const telemetry::CampaignArchive& archive) {
  const CampaignWindow& window = archive.window();
  std::vector<double> series(series_days(window), 0.0);
  for (int i = 0; i < cluster::kStudyNodeSlots; ++i) {
    accumulate_daily_terabyte_hours(archive.log(cluster::node_from_index(i)),
                                    window, series);
  }
  return series;
}

DailyErrorSeries daily_errors(FaultView faults, const CampaignWindow& window) {
  DailyErrorsAnalyzer analyzer;
  analyzer.begin_faults({window});
  for (const auto& f : faults) analyzer.on_fault(f);
  return analyzer.series();
}

TopNodeSeries top_node_series(FaultView faults, const CampaignWindow& window,
                              std::size_t top) {
  TopNodeAnalyzer analyzer(top);
  analyzer.begin_faults({window});
  for (const auto& f : faults) analyzer.on_fault(f);
  analyzer.end_faults();
  return analyzer.series();
}

PearsonResult scan_error_correlation(std::span<const double> daily_tbh,
                                     const DailyErrorSeries& errors) {
  const std::size_t days = std::min(daily_tbh.size(), errors.size());
  std::vector<double> x(days), y(days);
  for (std::size_t d = 0; d < days; ++d) {
    x[d] = daily_tbh[d];
    std::uint64_t total = 0;
    for (int c = 0; c < kBitClasses; ++c)
      total += errors[d][static_cast<std::size_t>(c)];
    y[d] = static_cast<double>(total);
  }
  return pearson(x, y);
}

PearsonResult scan_error_correlation(const telemetry::CampaignArchive& archive,
                                     FaultView faults) {
  return scan_error_correlation(daily_terabyte_hours(archive),
                                daily_errors(faults, archive.window()));
}

HeadlineStats headline_stats(double monitored_node_hours, double terabyte_hours,
                             int monitored_nodes, const CampaignWindow& window,
                             const ExtractionResult& extraction) {
  HeadlineStats stats;
  stats.raw_logs = extraction.total_raw_logs;
  stats.removed_fraction = extraction.removed_fraction();
  stats.independent_faults = extraction.faults.size();
  stats.monitored_node_hours = monitored_node_hours;
  stats.terabyte_hours = terabyte_hours;
  stats.monitored_nodes = monitored_nodes;
  if (stats.independent_faults > 0) {
    stats.node_mtbf_hours = stats.monitored_node_hours /
                            static_cast<double>(stats.independent_faults);
    stats.cluster_mtbe_minutes =
        static_cast<double>(window.duration_seconds()) / 60.0 /
        static_cast<double>(stats.independent_faults);
  }
  return stats;
}

HeadlineStats headline_stats(const telemetry::CampaignArchive& archive,
                             const ExtractionResult& extraction) {
  int monitored_nodes = 0;
  for (int i = 0; i < cluster::kStudyNodeSlots; ++i) {
    if (archive.log(cluster::node_from_index(i)).monitored_hours() > 0.0) {
      ++monitored_nodes;
    }
  }
  return headline_stats(archive.total_monitored_hours(),
                        archive.total_terabyte_hours(), monitored_nodes,
                        archive.window(), extraction);
}

// --- Streaming analyzers --------------------------------------------------

ScanProfileSink::ScanProfileSink() : hours_(node_grid()), tbh_(node_grid()) {}

void ScanProfileSink::begin_campaign(const CampaignWindow& window) {
  window_ = window;
  hours_ = node_grid();
  tbh_ = node_grid();
  daily_tbh_.assign(series_days(window), 0.0);
  total_hours_ = 0.0;
  total_tbh_ = 0.0;
  monitored_nodes_ = 0;
  pending_ = telemetry::NodeLog{};
}

void ScanProfileSink::begin_node(cluster::NodeId /*node*/) {
  pending_ = telemetry::NodeLog{};
}

void ScanProfileSink::on_start(const telemetry::StartRecord& r) {
  pending_.add_start(r);
}

void ScanProfileSink::on_end(const telemetry::EndRecord& r) {
  pending_.add_end(r);
}

void ScanProfileSink::end_node(cluster::NodeId node) {
  const double hours = pending_.monitored_hours();
  const double tbh = pending_.terabyte_hours();
  hours_.at(static_cast<std::size_t>(node.blade),
            static_cast<std::size_t>(node.soc)) = hours;
  tbh_.at(static_cast<std::size_t>(node.blade),
          static_cast<std::size_t>(node.soc)) = tbh;
  // Nodes stream in ascending index order, so these running sums add in the
  // same order as the batch loops over archive slots (absent slots add an
  // exact 0.0 there), keeping the doubles bit-identical.
  total_hours_ += hours;
  total_tbh_ += tbh;
  if (hours > 0.0) ++monitored_nodes_;
  if (daily_tbh_.empty()) daily_tbh_.assign(series_days(window_), 0.0);
  accumulate_daily_terabyte_hours(pending_, window_, daily_tbh_);
  pending_ = telemetry::NodeLog{};
}

ErrorsGridAnalyzer::ErrorsGridAnalyzer() : grid_(node_grid()) {}

void ErrorsGridAnalyzer::begin_faults(const FaultStreamContext& /*ctx*/) {
  grid_ = node_grid();
}

void ErrorsGridAnalyzer::on_fault(const FaultRecord& fault) {
  grid_.at(static_cast<std::size_t>(fault.node.blade),
           static_cast<std::size_t>(fault.node.soc)) += 1.0;
}

std::string ErrorsGridAnalyzer::serialize_state() const {
  // Cells are whole counts held as doubles, so the cell-wise sum below is
  // exact and shard order cannot perturb it.
  state::Writer w('G');
  for (std::size_t r = 0; r < grid_.rows(); ++r)
    for (std::size_t c = 0; c < grid_.cols(); ++c) w.put_f64(grid_.at(r, c));
  return std::move(w).take();
}

void ErrorsGridAnalyzer::merge_state(const std::string& blob) {
  state::Reader r(blob, 'G', "ErrorsGridAnalyzer");
  for (std::size_t row = 0; row < grid_.rows(); ++row)
    for (std::size_t col = 0; col < grid_.cols(); ++col)
      grid_.at(row, col) += r.get_f64();
  r.finish();
}

void HourOfDayAnalyzer::begin_faults(const FaultStreamContext& /*ctx*/) {
  profile_ = HourOfDayProfile{};
}

void HourOfDayAnalyzer::on_fault(const FaultRecord& fault) {
  const auto hour =
      static_cast<std::size_t>(BarcelonaClock::local_hour(fault.first_seen));
  const auto klass = static_cast<std::size_t>(bit_class(fault.flipped_bits()));
  ++profile_.counts[hour][klass];
}

std::string HourOfDayAnalyzer::serialize_state() const {
  state::Writer w('H');
  for (const auto& hour : profile_.counts)
    for (const auto count : hour) w.put_u64(count);
  return std::move(w).take();
}

void HourOfDayAnalyzer::merge_state(const std::string& blob) {
  state::Reader r(blob, 'H', "HourOfDayAnalyzer");
  for (auto& hour : profile_.counts)
    for (auto& count : hour) count += r.get_u64();
  r.finish();
}

void TemperatureAnalyzer::begin_faults(const FaultStreamContext& /*ctx*/) {
  profile_ = TemperatureProfile{};
}

void TemperatureAnalyzer::on_fault(const FaultRecord& fault) {
  if (!telemetry::has_temperature(fault.temperature_c)) {
    ++profile_.without_reading;
    return;
  }
  profile_.by_class[static_cast<std::size_t>(bit_class(fault.flipped_bits()))]
      .add(fault.temperature_c);
}

std::string TemperatureAnalyzer::serialize_state() const {
  state::Writer w('T');
  for (const auto& hist : profile_.by_class) {
    for (std::size_t b = 0; b < hist.bins(); ++b) w.put_u64(hist.count(b));
    w.put_u64(hist.underflow());
    w.put_u64(hist.overflow());
  }
  w.put_u64(profile_.without_reading);
  return std::move(w).take();
}

void TemperatureAnalyzer::merge_state(const std::string& blob) {
  state::Reader r(blob, 'T', "TemperatureAnalyzer");
  for (auto& hist : profile_.by_class) {
    // Re-add through the bin centers: weight-preserving and exact, without
    // widening Histogram1D's interface.
    for (std::size_t b = 0; b < hist.bins(); ++b)
      hist.add(hist.bin_center(b), r.get_u64());
    hist.add(TemperatureProfile::kLoC - 1.0, r.get_u64());  // underflow
    hist.add(TemperatureProfile::kHiC, r.get_u64());        // overflow
  }
  profile_.without_reading += r.get_u64();
  r.finish();
}

void DailyErrorsAnalyzer::begin_faults(const FaultStreamContext& ctx) {
  window_ = ctx.window;
  series_.assign(series_days(window_),
                 std::array<std::uint64_t, kBitClasses>{});
}

void DailyErrorsAnalyzer::on_fault(const FaultRecord& fault) {
  const std::int64_t day = window_.day_of_campaign(fault.first_seen);
  if (day < 0 || static_cast<std::size_t>(day) >= series_.size()) return;
  ++series_[static_cast<std::size_t>(day)]
          [static_cast<std::size_t>(bit_class(fault.flipped_bits()))];
}

std::string DailyErrorsAnalyzer::serialize_state() const {
  state::Writer w('D');
  w.put_u64(series_.size());
  for (const auto& day : series_)
    for (const auto count : day) w.put_u64(count);
  return std::move(w).take();
}

void DailyErrorsAnalyzer::merge_state(const std::string& blob) {
  state::Reader r(blob, 'D', "DailyErrorsAnalyzer");
  const std::uint64_t days = r.get_u64();
  UNP_REQUIRE(days == series_.size());  // same campaign window on both sides
  for (auto& day : series_)
    for (auto& count : day) count += r.get_u64();
  r.finish();
}

void TopNodeAnalyzer::begin_faults(const FaultStreamContext& ctx) {
  window_ = ctx.window;
  days_ = series_days(window_);
  totals_.assign(static_cast<std::size_t>(cluster::kStudyNodeSlots), 0);
  counts_.assign(static_cast<std::size_t>(cluster::kStudyNodeSlots) * days_, 0);
  series_ = TopNodeSeries{};
}

void TopNodeAnalyzer::on_fault(const FaultRecord& fault) {
  const auto node = static_cast<std::size_t>(cluster::node_index(fault.node));
  ++totals_[node];
  const std::int64_t day = window_.day_of_campaign(fault.first_seen);
  if (day < 0 || static_cast<std::size_t>(day) >= days_) return;
  ++counts_[node * days_ + static_cast<std::size_t>(day)];
}

std::string TopNodeAnalyzer::serialize_state() const {
  state::Writer w('N');
  w.put_u64(days_);
  for (const auto total : totals_) w.put_u64(total);
  for (const auto count : counts_) w.put_u64(count);
  return std::move(w).take();
}

void TopNodeAnalyzer::merge_state(const std::string& blob) {
  state::Reader r(blob, 'N', "TopNodeAnalyzer");
  const std::uint64_t days = r.get_u64();
  UNP_REQUIRE(days == days_);  // same campaign window on both sides
  for (auto& total : totals_) total += r.get_u64();
  for (auto& count : counts_) count += r.get_u64();
  r.finish();
}

void TopNodeAnalyzer::end_faults() {
  std::vector<int> order(static_cast<std::size_t>(cluster::kStudyNodeSlots));
  for (int i = 0; i < cluster::kStudyNodeSlots; ++i)
    order[static_cast<std::size_t>(i)] = i;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return totals_[static_cast<std::size_t>(a)] >
           totals_[static_cast<std::size_t>(b)];
  });

  series_ = TopNodeSeries{};
  for (std::size_t k = 0; k < top_ && k < order.size(); ++k) {
    const int idx = order[k];
    if (totals_[static_cast<std::size_t>(idx)] == 0) break;
    series_.nodes.push_back(cluster::node_from_index(idx));
    series_.node_totals.push_back(totals_[static_cast<std::size_t>(idx)]);
    auto& per_day = series_.per_day.emplace_back(days_, 0);
    for (std::size_t d = 0; d < days_; ++d)
      per_day[d] = counts_[static_cast<std::size_t>(idx) * days_ + d];
  }

  series_.rest_per_day.assign(days_, 0);
  for (std::size_t node = 0;
       node < static_cast<std::size_t>(cluster::kStudyNodeSlots); ++node) {
    bool in_top = false;
    for (const auto& id : series_.nodes) {
      if (static_cast<std::size_t>(cluster::node_index(id)) == node) {
        in_top = true;
        break;
      }
    }
    if (in_top) continue;
    for (std::size_t d = 0; d < days_; ++d)
      series_.rest_per_day[d] += counts_[node * days_ + d];
  }
  for (const auto v : series_.rest_per_day) series_.rest_total += v;
}

}  // namespace unp::analysis
