#include "analysis/streaming_extractor.hpp"

#include <algorithm>

#include "common/require.hpp"
#include "telemetry/archive.hpp"

namespace unp::analysis {

StreamingExtractor::StreamingExtractor(ExtractionConfig config)
    : config_(config),
      pending_(static_cast<std::size_t>(cluster::kStudyNodeSlots)),
      collapsed_(static_cast<std::size_t>(cluster::kStudyNodeSlots)),
      raw_per_node_(static_cast<std::size_t>(cluster::kStudyNodeSlots), 0) {}

void StreamingExtractor::begin_campaign(const CampaignWindow&) {
  // Reset so a partially-fed extractor (torn cache replay that fell back to
  // a fresh simulation pass) starts clean when the stream re-opens.
  pending_.assign(static_cast<std::size_t>(cluster::kStudyNodeSlots), {});
  collapsed_.assign(static_cast<std::size_t>(cluster::kStudyNodeSlots), {});
  raw_per_node_.assign(static_cast<std::size_t>(cluster::kStudyNodeSlots), 0);
  raw_total_ = 0;
  sessions_ = 0;
  finished_ = false;
}

void StreamingExtractor::on_start(const telemetry::StartRecord&) { ++sessions_; }

void StreamingExtractor::on_end(const telemetry::EndRecord&) {}

void StreamingExtractor::on_alloc_fail(const telemetry::AllocFailRecord&) {}

void StreamingExtractor::on_error_run(const telemetry::ErrorRun& r) {
  UNP_REQUIRE(!finished_);
  const auto index =
      static_cast<std::size_t>(cluster::node_index(r.first.node));
  pending_[index].add_error_run(r);
  raw_per_node_[index] += r.count;
  raw_total_ += r.count;
}

void StreamingExtractor::end_node(cluster::NodeId node) {
  collapse_pending(static_cast<std::size_t>(cluster::node_index(node)));
}

void StreamingExtractor::collapse_pending(std::size_t index) {
  telemetry::NodeLog& log = pending_[index];
  if (log.error_runs().empty()) return;
  const cluster::NodeId node = cluster::node_from_index(static_cast<int>(index));
  auto faults = collapse_node_log(node, log, config_.merge_window_s);
  if (observer_) observer_(node, faults);
  auto& bucket = collapsed_[index];
  bucket.insert(bucket.end(), faults.begin(), faults.end());
  log = telemetry::NodeLog{};  // free the raw runs mid-stream
}

ExtractionResult StreamingExtractor::finish() {
  UNP_REQUIRE(!finished_);
  finished_ = true;

  // Collapse anything streamed without an end_node frame (e.g. ad-hoc use).
  for (std::size_t i = 0; i < pending_.size(); ++i) collapse_pending(i);

  // Mirror extract_faults exactly: node-index order, campaign-wide
  // pathological filter, then the global deterministic sort.
  ExtractionResult result;
  result.total_raw_logs = raw_total_;
  for (std::size_t i = 0; i < collapsed_.size(); ++i) {
    const std::uint64_t raw = raw_per_node_[i];
    if (raw == 0) continue;

    const bool pathological =
        raw >= config_.pathological_min_raw &&
        static_cast<double>(raw) >
            config_.pathological_raw_fraction *
                static_cast<double>(result.total_raw_logs);
    if (pathological) {
      result.removed_nodes.push_back(
          cluster::node_from_index(static_cast<int>(i)));
      result.removed_raw_logs += raw;
      continue;
    }
    result.faults.insert(result.faults.end(), collapsed_[i].begin(),
                         collapsed_[i].end());
  }

  std::sort(result.faults.begin(), result.faults.end(),
            [](const FaultRecord& a, const FaultRecord& b) {
              if (a.first_seen != b.first_seen) return a.first_seen < b.first_seen;
              const int na = cluster::node_index(a.node);
              const int nb = cluster::node_index(b.node);
              if (na != nb) return na < nb;
              return a.virtual_address < b.virtual_address;
            });
  return result;
}

}  // namespace unp::analysis
