#include "analysis/extraction.hpp"

#include <algorithm>
#include <unordered_map>

#include "common/require.hpp"

namespace unp::analysis {

std::vector<FaultRecord> collapse_node_log(cluster::NodeId node,
                                           const telemetry::NodeLog& log,
                                           std::int64_t merge_window_s) {
  UNP_REQUIRE(merge_window_s >= 0);

  // Bucket runs by address, keeping (first, last, raw count, context).
  struct Span {
    TimePoint first;
    TimePoint last;
    std::uint64_t raw;
    Word expected;
    Word actual;
    double temperature;
  };
  std::unordered_map<std::uint64_t, std::vector<Span>> by_address;
  for (const auto& run : log.error_runs()) {
    by_address[run.first.virtual_address].push_back(
        {run.first.time, run.last_time(), run.count, run.first.expected,
         run.first.actual, run.first.temperature_c});
  }

  std::vector<FaultRecord> out;
  for (auto& [address, spans] : by_address) {
    std::sort(spans.begin(), spans.end(),
              [](const Span& a, const Span& b) { return a.first < b.first; });

    FaultRecord current;
    bool open = false;
    auto flush = [&] {
      if (open) out.push_back(current);
      open = false;
    };
    for (const auto& span : spans) {
      if (open && span.first - current.last_seen <= merge_window_s) {
        current.last_seen = std::max(current.last_seen, span.last);
        current.raw_logs += span.raw;
        continue;
      }
      flush();
      current = FaultRecord{node,          span.first,    span.last,
                            span.raw,      address,       span.expected,
                            span.actual,   span.temperature};
      open = true;
    }
    flush();
  }

  std::sort(out.begin(), out.end(), [](const FaultRecord& a, const FaultRecord& b) {
    if (a.first_seen != b.first_seen) return a.first_seen < b.first_seen;
    return a.virtual_address < b.virtual_address;
  });
  return out;
}

ExtractionResult extract_faults(const telemetry::CampaignArchive& archive,
                                const ExtractionConfig& config) {
  ExtractionResult result;
  result.total_raw_logs = archive.total_raw_errors();

  for (int i = 0; i < cluster::kStudyNodeSlots; ++i) {
    const cluster::NodeId node = cluster::node_from_index(i);
    const telemetry::NodeLog& log = archive.log(node);
    const std::uint64_t raw = log.raw_error_count();
    if (raw == 0) continue;

    const bool pathological =
        raw >= config.pathological_min_raw &&
        static_cast<double>(raw) >
            config.pathological_raw_fraction *
                static_cast<double>(result.total_raw_logs);
    if (pathological) {
      result.removed_nodes.push_back(node);
      result.removed_raw_logs += raw;
      continue;
    }

    auto node_faults = collapse_node_log(node, log, config.merge_window_s);
    result.faults.insert(result.faults.end(), node_faults.begin(),
                         node_faults.end());
  }

  std::sort(result.faults.begin(), result.faults.end(),
            [](const FaultRecord& a, const FaultRecord& b) {
              if (a.first_seen != b.first_seen) return a.first_seen < b.first_seen;
              const int na = cluster::node_index(a.node);
              const int nb = cluster::node_index(b.node);
              if (na != nb) return na < nb;
              return a.virtual_address < b.virtual_address;
            });
  return result;
}

}  // namespace unp::analysis
