#include "analysis/fault_sink.hpp"

#include <chrono>

#include "common/require.hpp"

namespace unp::analysis {

std::string FaultSink::serialize_state() const {
  throw ContractViolation("FaultSink does not support state serialization");
}

void FaultSink::merge_state(const std::string& /*blob*/) {
  throw ContractViolation("FaultSink does not support state merging");
}

std::vector<FaultSinkTiming> run_fault_sinks(FaultView faults,
                                             const FaultStreamContext& ctx,
                                             std::span<FaultSink* const> sinks,
                                             ThreadPool* pool) {
  std::vector<FaultSinkTiming> timings(sinks.size());
  const auto run_one = [&](std::size_t i) {
    using Clock = std::chrono::steady_clock;
    const auto t0 = Clock::now();
    FaultSink* sink = sinks[i];
    sink->begin_faults(ctx);
    for (const FaultRecord& fault : faults) sink->on_fault(fault);
    sink->end_faults();
    timings[i] = {sink,
                  std::chrono::duration<double, std::milli>(Clock::now() - t0)
                      .count()};
  };
  if (pool == nullptr || sinks.size() <= 1) {
    for (std::size_t i = 0; i < sinks.size(); ++i) run_one(i);
  } else {
    pool->parallel_for(sinks.size(), run_one);
  }
  return timings;
}

}  // namespace unp::analysis
