#include "analysis/interarrival.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"
#include "common/stats.hpp"

namespace unp::analysis {

namespace {

InterArrivalStats stats_from_times(std::vector<TimePoint>& times) {
  InterArrivalStats stats;
  std::sort(times.begin(), times.end());
  if (times.size() < 2) return stats;

  std::vector<double> gaps;
  gaps.reserve(times.size() - 1);
  RunningStats acc;
  std::uint64_t minute = 0, hour = 0;
  for (std::size_t i = 1; i < times.size(); ++i) {
    const double gap = static_cast<double>(times[i] - times[i - 1]);
    gaps.push_back(gap);
    acc.add(gap);
    if (gap <= 60.0) ++minute;
    if (gap <= 3600.0) ++hour;
  }
  stats.gaps = gaps.size();
  stats.mean_s = acc.mean();
  stats.median_s = median_of(gaps);
  stats.cv = acc.mean() > 0.0 ? acc.stddev() / acc.mean() : 0.0;
  stats.within_minute =
      static_cast<double>(minute) / static_cast<double>(gaps.size());
  stats.within_hour =
      static_cast<double>(hour) / static_cast<double>(gaps.size());
  return stats;
}

}  // namespace

InterArrivalStats interarrival_stats(
    FaultView faults, const std::vector<cluster::NodeId>& excluded_nodes) {
  std::vector<TimePoint> times;
  times.reserve(faults.size());
  for (const auto& f : faults) {
    if (std::find(excluded_nodes.begin(), excluded_nodes.end(), f.node) !=
        excluded_nodes.end()) {
      continue;
    }
    times.push_back(f.first_seen);
  }
  return stats_from_times(times);
}

InterArrivalStats poisson_reference(std::uint64_t events, std::int64_t span_s,
                                    std::uint64_t seed) {
  RngStream rng(seed, /*stream_id=*/0x901550);
  std::vector<TimePoint> times;
  times.reserve(events);
  for (std::uint64_t i = 0; i < events; ++i) {
    times.push_back(static_cast<TimePoint>(
        rng.uniform_u64(static_cast<std::uint64_t>(span_s))));
  }
  return stats_from_times(times);
}

void InterArrivalAnalyzer::begin_faults(const FaultStreamContext& /*ctx*/) {
  times_.clear();
  nodes_.clear();
  totals_.assign(static_cast<std::size_t>(cluster::kStudyNodeSlots), 0);
  excluded_.reset();
  stats_ = InterArrivalStats{};
}

void InterArrivalAnalyzer::on_fault(const FaultRecord& fault) {
  times_.push_back(fault.first_seen);
  nodes_.push_back(cluster::node_index(fault.node));
  ++totals_[static_cast<std::size_t>(cluster::node_index(fault.node))];
}

void InterArrivalAnalyzer::end_faults() {
  if (exclude_loudest_ && !totals_.empty()) {
    const auto loudest = static_cast<int>(std::distance(
        totals_.begin(), std::max_element(totals_.begin(), totals_.end())));
    if (totals_[static_cast<std::size_t>(loudest)] > 0) {
      excluded_ = cluster::node_from_index(loudest);
      std::vector<TimePoint> kept;
      kept.reserve(times_.size());
      for (std::size_t i = 0; i < times_.size(); ++i) {
        if (nodes_[i] != loudest) kept.push_back(times_[i]);
      }
      stats_ = stats_from_times(kept);
      return;
    }
  }
  stats_ = stats_from_times(times_);
}

}  // namespace unp::analysis
