#include "analysis/interarrival.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "analysis/sink_state.hpp"
#include "common/require.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace unp::analysis {

namespace {

InterArrivalStats stats_from_times(std::vector<TimePoint>& times) {
  InterArrivalStats stats;
  std::sort(times.begin(), times.end());
  if (times.size() < 2) return stats;

  std::vector<double> gaps;
  gaps.reserve(times.size() - 1);
  RunningStats acc;
  std::uint64_t minute = 0, hour = 0;
  for (std::size_t i = 1; i < times.size(); ++i) {
    const double gap = static_cast<double>(times[i] - times[i - 1]);
    gaps.push_back(gap);
    acc.add(gap);
    if (gap <= 60.0) ++minute;
    if (gap <= 3600.0) ++hour;
  }
  stats.gaps = gaps.size();
  stats.mean_s = acc.mean();
  stats.median_s = median_of(gaps);
  stats.cv = acc.mean() > 0.0 ? acc.stddev() / acc.mean() : 0.0;
  stats.within_minute =
      static_cast<double>(minute) / static_cast<double>(gaps.size());
  stats.within_hour =
      static_cast<double>(hour) / static_cast<double>(gaps.size());
  return stats;
}

}  // namespace

InterArrivalStats interarrival_stats(
    FaultView faults, const std::vector<cluster::NodeId>& excluded_nodes) {
  std::vector<TimePoint> times;
  times.reserve(faults.size());
  for (const auto& f : faults) {
    if (std::find(excluded_nodes.begin(), excluded_nodes.end(), f.node) !=
        excluded_nodes.end()) {
      continue;
    }
    times.push_back(f.first_seen);
  }
  return stats_from_times(times);
}

InterArrivalStats poisson_reference(std::uint64_t events, std::int64_t span_s,
                                    std::uint64_t seed) {
  RngStream rng(seed, /*stream_id=*/0x901550);
  std::vector<TimePoint> times;
  times.reserve(events);
  for (std::uint64_t i = 0; i < events; ++i) {
    times.push_back(static_cast<TimePoint>(
        rng.uniform_u64(static_cast<std::uint64_t>(span_s))));
  }
  return stats_from_times(times);
}

void InterArrivalAnalyzer::begin_faults(const FaultStreamContext& /*ctx*/) {
  times_.clear();
  nodes_.clear();
  totals_.assign(static_cast<std::size_t>(cluster::kStudyNodeSlots), 0);
  excluded_.reset();
  stats_ = InterArrivalStats{};
}

void InterArrivalAnalyzer::on_fault(const FaultRecord& fault) {
  times_.push_back(fault.first_seen);
  nodes_.push_back(cluster::node_index(fault.node));
  ++totals_[static_cast<std::size_t>(cluster::node_index(fault.node))];
}

void InterArrivalAnalyzer::end_faults() {
  if (exclude_loudest_ && !totals_.empty()) {
    const auto loudest = static_cast<int>(std::distance(
        totals_.begin(), std::max_element(totals_.begin(), totals_.end())));
    if (totals_[static_cast<std::size_t>(loudest)] > 0) {
      excluded_ = cluster::node_from_index(loudest);
      std::vector<TimePoint> kept;
      kept.reserve(times_.size());
      for (std::size_t i = 0; i < times_.size(); ++i) {
        if (nodes_[i] != loudest) kept.push_back(times_[i]);
      }
      stats_ = stats_from_times(kept);
      return;
    }
  }
  stats_ = stats_from_times(times_);
}

std::string InterArrivalAnalyzer::serialize_state() const {
  // Canonicalize on (time, node) so the blob depends only on the event
  // multiset: merged buffers hold partitions back to back, while a
  // monolithic pass buffers in canonical fault order — sorted, both
  // serialize to identical bytes.  (For the monolithic buffer the sort is
  // a no-op; time-ascending deltas also stay small varints.)
  std::vector<std::pair<TimePoint, int>> events;
  events.reserve(times_.size());
  for (std::size_t i = 0; i < times_.size(); ++i)
    events.emplace_back(times_[i], nodes_[i]);
  std::sort(events.begin(), events.end());

  state::Writer w('I');
  w.put_u64(events.size());
  TimePoint prev = 0;
  for (const auto& [time, node] : events) {
    w.put_i64(static_cast<std::int64_t>(time) - static_cast<std::int64_t>(prev));
    prev = time;
    w.put_u64(static_cast<std::uint64_t>(node));
  }
  return std::move(w).take();
}

void InterArrivalAnalyzer::merge_state(const std::string& blob) {
  state::Reader r(blob, 'I', "InterArrivalAnalyzer");
  const std::uint64_t events = r.get_u64();
  times_.reserve(times_.size() + events);
  nodes_.reserve(nodes_.size() + events);
  TimePoint prev = 0;
  for (std::uint64_t i = 0; i < events; ++i) {
    const auto time = static_cast<TimePoint>(
        static_cast<std::int64_t>(prev) + r.get_i64());
    prev = time;
    const int node = static_cast<int>(r.get_u64());
    UNP_REQUIRE(node >= 0 && node < cluster::kStudyNodeSlots);
    times_.push_back(time);
    nodes_.push_back(node);
    ++totals_[static_cast<std::size_t>(node)];
  }
  r.finish();
}

}  // namespace unp::analysis
