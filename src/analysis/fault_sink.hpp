// Fault-level streaming consumers: the analysis analogue of
// telemetry::RecordSink.
//
// StreamingExtractor reduces the raw record stream to the canonical fault
// vector (sorted by time, node, address).  FaultSink is the consumer
// interface for that second stream: every figure-level analyzer implements
// it and accumulates its product incrementally, so the whole analysis layer
// computes from ONE pass over the campaign records followed by one pass over
// the extracted faults.
//
// Protocol (per pass):
//
//   begin_faults(ctx)
//   on_fault(f)*        (faults in canonical (time, node, address) order)
//   end_faults()
//
// run_fault_sinks fans a set of sinks out on the thread pool.  Each sink
// gets its own private, full, in-order pass over a stable FaultView — sinks
// never share mutable state — so the fan-out is embarrassingly parallel and
// every product is bit-identical for any thread count.
#pragma once

#include <span>
#include <vector>

#include "analysis/extraction.hpp"
#include "common/civil_time.hpp"
#include "common/thread_pool.hpp"

namespace unp::analysis {

/// Stream-level context handed to every sink before the first fault.
struct FaultStreamContext {
  CampaignWindow window;
};

/// Consumer of an extracted-fault stream.
class FaultSink {
 public:
  virtual ~FaultSink() = default;

  /// Stream framing; default no-op so stateless sinks only handle faults.
  virtual void begin_faults(const FaultStreamContext& /*ctx*/) {}
  virtual void end_faults() {}

  virtual void on_fault(const FaultRecord& fault) = 0;

  // --- Hierarchical aggregation (shard fabric) ----------------------------
  //
  // A campaign sharded K ways partitions the fault stream by node, so every
  // analyzer whose accumulator decomposes over nodes can analyze shards
  // independently and combine partial states into the fleet product without
  // re-reading a single record:
  //
  //   shard i:    sink.begin_faults(ctx); sink.on_fault*;  // shard's faults
  //               blob[i] = sink.serialize_state();
  //   aggregate:  total.begin_faults(ctx);
  //               for each i: total.merge_state(blob[i]);
  //               total.end_faults();                      // finalize
  //
  // Both calls are valid only between begin_faults and end_faults (several
  // analyzers fold or clear their accumulators at end_faults).  Merging is
  // associative and order-independent: counters add, censuses union, and
  // order-sensitive buffers re-interleave on the canonical fault key, so
  // the aggregate's serialized state is byte-identical to the state of a
  // monolithic pass over the same faults.  Mixing on_fault and merge_state
  // on one sink is allowed (locally streamed faults count as one more
  // partial state).

  /// Capture the mergeable accumulator.  Default: unsupported (throws
  /// ContractViolation) — sinks opt in explicitly.
  [[nodiscard]] virtual std::string serialize_state() const;

  /// Fold another instance's serialized accumulator into this one.
  /// Default: unsupported (throws ContractViolation).
  virtual void merge_state(const std::string& blob);
};

/// Wall-clock cost of one sink's pass, for observability footers.
struct FaultSinkTiming {
  FaultSink* sink = nullptr;
  double milliseconds = 0.0;
};

/// Stream `faults` through every sink.  With a pool the sinks run
/// concurrently, one task per sink; without one they run sequentially in the
/// given order.  `faults` must stay alive and unmoved until the sinks'
/// products are consumed — sinks may keep pointers into the view
/// (SimultaneousGroupAnalyzer does).  Returns per-sink timings in `sinks`
/// order.
std::vector<FaultSinkTiming> run_fault_sinks(FaultView faults,
                                             const FaultStreamContext& ctx,
                                             std::span<FaultSink* const> sinks,
                                             ThreadPool* pool = nullptr);

}  // namespace unp::analysis
