#include "analysis/markov.hpp"

#include <algorithm>

namespace unp::analysis {

double MarkovRegimeModel::stationary_degraded() const noexcept {
  const double up = 1.0 - p_stay_normal;    // normal -> degraded
  const double down = 1.0 - p_stay_degraded;  // degraded -> normal
  const double total = up + down;
  return total > 0.0 ? up / total : 0.0;
}

double MarkovRegimeModel::mean_normal_spell_days() const noexcept {
  const double leave = 1.0 - p_stay_normal;
  return leave > 0.0 ? 1.0 / leave : 0.0;
}

double MarkovRegimeModel::mean_degraded_spell_days() const noexcept {
  const double leave = 1.0 - p_stay_degraded;
  return leave > 0.0 ? 1.0 / leave : 0.0;
}

std::vector<bool> MarkovRegimeModel::simulate(std::size_t days, RngStream& rng,
                                              bool start_degraded) const {
  std::vector<bool> out(days);
  bool degraded = start_degraded;
  for (std::size_t d = 0; d < days; ++d) {
    out[d] = degraded;
    const double stay = degraded ? p_stay_degraded : p_stay_normal;
    if (!rng.bernoulli(stay)) degraded = !degraded;
  }
  return out;
}

MarkovRegimeModel fit_markov_regime(const std::vector<bool>& degraded) {
  MarkovRegimeModel model;
  std::uint64_t nn = 0, nd = 0, dn = 0, dd = 0;
  for (std::size_t d = 1; d < degraded.size(); ++d) {
    const bool from = degraded[d - 1];
    const bool to = degraded[d];
    if (!from && !to) ++nn;
    if (!from && to) ++nd;
    if (from && !to) ++dn;
    if (from && to) ++dd;
  }
  model.transitions_observed = nn + nd + dn + dd;
  if (nn + nd > 0) {
    model.p_stay_normal =
        static_cast<double>(nn) / static_cast<double>(nn + nd);
  }
  if (dn + dd > 0) {
    model.p_stay_degraded =
        static_cast<double>(dd) / static_cast<double>(dn + dd);
  }
  return model;
}

void RegimeDynamicsAnalyzer::begin_faults(const FaultStreamContext& ctx) {
  window_ = ctx.window;
  regime_.begin_faults(ctx);
  days_.clear();
  model_ = MarkovRegimeModel{};
  spells_ = SpellStats{};
}

void RegimeDynamicsAnalyzer::on_fault(const FaultRecord& fault) {
  regime_.on_fault(fault);
}

void RegimeDynamicsAnalyzer::end_faults() {
  regime_.end_faults();
  const std::vector<bool>& degraded = regime_.result().regime.degraded;
  const auto whole_days = std::min<std::size_t>(
      degraded.size(), static_cast<std::size_t>(window_.duration_days()));
  days_.assign(degraded.begin(),
               degraded.begin() + static_cast<std::ptrdiff_t>(whole_days));
  model_ = fit_markov_regime(days_);
  spells_ = spell_stats(days_);
}

SpellStats spell_stats(const std::vector<bool>& degraded) {
  SpellStats stats;
  double normal_sum = 0.0, degraded_sum = 0.0;
  std::size_t d = 0;
  while (d < degraded.size()) {
    std::size_t run = 1;
    while (d + run < degraded.size() && degraded[d + run] == degraded[d]) ++run;
    if (degraded[d]) {
      ++stats.degraded_spells;
      degraded_sum += static_cast<double>(run);
      stats.longest_degraded_spell =
          std::max<std::uint64_t>(stats.longest_degraded_spell, run);
    } else {
      ++stats.normal_spells;
      normal_sum += static_cast<double>(run);
    }
    d += run;
  }
  if (stats.normal_spells > 0) {
    stats.mean_normal_spell = normal_sum / static_cast<double>(stats.normal_spells);
  }
  if (stats.degraded_spells > 0) {
    stats.mean_degraded_spell =
        degraded_sum / static_cast<double>(stats.degraded_spells);
  }
  return stats;
}

}  // namespace unp::analysis
