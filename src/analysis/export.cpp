#include "analysis/export.hpp"

#include <cstdarg>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/require.hpp"

namespace unp::analysis {

namespace {

void append_line(std::string& out, const char* format, ...)
    __attribute__((format(printf, 2, 3)));

void append_line(std::string& out, const char* format, ...) {
  char buf[256];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof buf, format, args);
  va_end(args);
  out += buf;
  out += '\n';
}

}  // namespace

std::string csv_grid(const Grid2D& grid, const std::string& header) {
  std::string out = "blade,soc," + header + "\n";
  for (std::size_t b = 0; b < grid.rows(); ++b) {
    for (std::size_t s = 0; s < grid.cols(); ++s) {
      append_line(out, "%zu,%zu,%.6g", b, s, grid.at(b, s));
    }
  }
  return out;
}

std::string csv_hour_profile(const HourOfDayProfile& profile) {
  std::string out = "hour,bits1,bits2,bits3,bits4,bits5,bits6plus,total,multibit\n";
  for (int h = 0; h < 24; ++h) {
    char row[160];
    int written = std::snprintf(row, sizeof row, "%d", h);
    for (int c = 0; c < kBitClasses; ++c) {
      written += std::snprintf(
          row + written, sizeof row - static_cast<std::size_t>(written),
          ",%" PRIu64,
          profile.counts[static_cast<std::size_t>(h)][static_cast<std::size_t>(c)]);
    }
    std::snprintf(row + written, sizeof row - static_cast<std::size_t>(written),
                  ",%" PRIu64 ",%" PRIu64, profile.total(h), profile.multibit(h));
    out += row;
    out += '\n';
  }
  return out;
}

std::string csv_temperature_profile(const TemperatureProfile& profile) {
  std::string out = "bin_lo_c,bin_hi_c,bits1,bits2,bits3,bits4,bits5,bits6plus\n";
  for (std::size_t bin = 0; bin < TemperatureProfile::kBins; ++bin) {
    char row[160];
    int written = std::snprintf(row, sizeof row, "%.1f,%.1f",
                                profile.by_class[0].bin_lo(bin),
                                profile.by_class[0].bin_lo(bin) +
                                    profile.by_class[0].bin_width());
    for (int c = 0; c < kBitClasses; ++c) {
      written += std::snprintf(
          row + written, sizeof row - static_cast<std::size_t>(written),
          ",%" PRIu64,
          profile.by_class[static_cast<std::size_t>(c)].count(bin));
    }
    out += row;
    out += '\n';
  }
  return out;
}

std::string csv_daily(const telemetry::CampaignArchive& archive,
                      FaultView faults) {
  const CampaignWindow& window = archive.window();
  const std::vector<double> tbh = daily_terabyte_hours(archive);
  const auto errors = daily_errors(faults, window);

  std::string out = "day,date,tbh_scanned,errors,multibit_errors\n";
  const std::size_t days = std::min(tbh.size(), errors.size());
  for (std::size_t d = 0; d < days; ++d) {
    const CivilDateTime c =
        to_civil_utc(window.start + static_cast<TimePoint>(d) * kSecondsPerDay);
    std::uint64_t total = 0, multibit = 0;
    for (int k = 0; k < kBitClasses; ++k) {
      total += errors[d][static_cast<std::size_t>(k)];
      if (k >= 1) multibit += errors[d][static_cast<std::size_t>(k)];
    }
    append_line(out, "%zu,%04d-%02d-%02d,%.4f,%" PRIu64 ",%" PRIu64, d, c.year,
                c.month, c.day, tbh[d], total, multibit);
  }
  return out;
}

std::string csv_faults(FaultView faults) {
  std::string out =
      "node,first_seen,last_seen,raw_logs,vaddr,expected,actual,bits,temp_c\n";
  for (const auto& f : faults) {
    char temp[32];
    if (telemetry::has_temperature(f.temperature_c)) {
      std::snprintf(temp, sizeof temp, "%.2f", f.temperature_c);
    } else {
      std::snprintf(temp, sizeof temp, "NA");
    }
    append_line(out,
                "%s,%s,%s,%" PRIu64 ",0x%" PRIx64 ",0x%08x,0x%08x,%d,%s",
                cluster::node_name(f.node).c_str(),
                format_iso8601(f.first_seen).c_str(),
                format_iso8601(f.last_seen).c_str(), f.raw_logs,
                f.virtual_address, f.expected, f.actual, f.flipped_bits(),
                temp);
  }
  return out;
}

std::string csv_viewpoints(const MultibitViewpoints& viewpoints) {
  std::string out = "bits,per_word,per_node\n";
  for (int bits = 1; bits <= MultibitViewpoints::kMaxBits; ++bits) {
    if (viewpoints.per_word[bits] == 0 && viewpoints.per_node[bits] == 0) continue;
    append_line(out, "%d,%" PRIu64 ",%" PRIu64, bits, viewpoints.per_word[bits],
                viewpoints.per_node[bits]);
  }
  return out;
}

int write_figure_bundle(const std::string& directory,
                        const telemetry::CampaignArchive& archive,
                        const ExtractionResult& extraction) {
  std::filesystem::create_directories(directory);
  int files = 0;
  auto write = [&](const std::string& name, const std::string& content) {
    std::ofstream os(std::filesystem::path(directory) / name,
                     std::ios::trunc);
    UNP_REQUIRE(os.good());
    os << content;
    UNP_REQUIRE(os.good());
    ++files;
  };

  write("fig01_hours_scanned.csv",
        csv_grid(hours_scanned_grid(archive), "hours"));
  write("fig02_terabyte_hours.csv",
        csv_grid(terabyte_hours_grid(archive), "terabyte_hours"));
  write("fig03_errors_per_node.csv",
        csv_grid(errors_grid(extraction.faults), "errors"));
  const auto groups = group_simultaneous(extraction.faults);
  write("fig04_viewpoints.csv", csv_viewpoints(count_viewpoints(groups)));
  write("fig05_fig06_hourly.csv",
        csv_hour_profile(hour_of_day_profile(extraction.faults)));
  write("fig07_fig08_temperature.csv",
        csv_temperature_profile(temperature_profile(extraction.faults)));
  write("fig09_fig10_fig11_daily.csv", csv_daily(archive, extraction.faults));
  write("faults.csv", csv_faults(extraction.faults));
  return files;
}

}  // namespace unp::analysis
