// Serialization helpers for FaultSink state blobs (the shard fabric's
// hierarchical aggregation, stage three).
//
// Every analyzer's mergeable accumulator serializes through these thin
// wrappers over the telemetry varint codec: a one-byte sink tag (so a blob
// fed to the wrong sink fails loudly instead of merging garbage), then the
// sink's fields as varints / zigzag varints / raw f64 bits.  The format is
// a private contract between serialize_state and merge_state of one sink
// class — there is no cross-version compatibility promise beyond the tag.
#pragma once

#include <cstdint>
#include <string>

#include "telemetry/binary_codec.hpp"

namespace unp::analysis::state {

using telemetry::DecodeError;

class Writer {
 public:
  explicit Writer(char tag) { out_.push_back(tag); }

  void put_u64(std::uint64_t v) { telemetry::put_varint(out_, v); }
  void put_i64(std::int64_t v) {
    telemetry::put_varint(out_, telemetry::zigzag_encode(v));
  }
  void put_f64(double v) { telemetry::put_f64(out_, v); }

  [[nodiscard]] std::string take() && { return std::move(out_); }

 private:
  std::string out_;
};

class Reader {
 public:
  /// Binds to `blob` (which must outlive the reader) and validates the tag;
  /// `sink_name` labels decode failures.
  Reader(const std::string& blob, char tag, const char* sink_name)
      : in_(blob), name_(sink_name) {
    if (in_.empty() || in_[0] != tag)
      throw DecodeError(std::string(name_) + ": state blob tag mismatch", 0);
    pos_ = 1;
  }

  [[nodiscard]] std::uint64_t get_u64() {
    try {
      return telemetry::get_varint(in_, pos_);
    } catch (const DecodeError& e) {
      throw DecodeError(std::string(name_) + ": " + e.detail(),
                        e.byte_offset());
    }
  }
  [[nodiscard]] std::int64_t get_i64() {
    return telemetry::zigzag_decode(get_u64());
  }
  [[nodiscard]] double get_f64() {
    if (pos_ + 8 > in_.size())
      throw DecodeError(std::string(name_) + ": truncated f64", pos_);
    return telemetry::get_f64(in_, pos_);
  }

  /// Whole blob must be consumed.
  void finish() const {
    if (pos_ != in_.size())
      throw DecodeError(std::string(name_) + ": trailing bytes in state blob",
                        pos_);
  }

 private:
  const std::string& in_;
  const char* name_;
  std::size_t pos_ = 0;
};

}  // namespace unp::analysis::state
