// Regime classification and MTBF (Section III-I).
//
// With the permanently failing node excluded (production systems would
// pull it), days split into two regimes:
//
//   normal    <= 3 independent errors (the paper's safety-margin threshold)
//   degraded  >  3 errors - bursty periods where MTBF collapses from ~167 h
//             to well under an hour
//
// The classification drives both Fig 13 and the checkpoint-interval
// adaptation argument.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "analysis/extraction.hpp"
#include "analysis/fault_sink.hpp"

namespace unp::analysis {

struct RegimeConfig {
  /// Nodes excluded before classification (permanent failures).
  std::vector<cluster::NodeId> excluded_nodes;
  /// Max errors/day still counted as normal.
  std::uint64_t normal_threshold = 3;
};

struct RegimeResult {
  std::vector<bool> degraded;  ///< per campaign day
  std::vector<std::uint64_t> errors_per_day;

  std::uint64_t normal_days = 0;
  std::uint64_t degraded_days = 0;
  std::uint64_t normal_errors = 0;
  std::uint64_t degraded_errors = 0;

  /// MTBF over normal days only (hours per error).
  double normal_mtbf_hours = 0.0;
  /// MTBF over degraded days only.
  double degraded_mtbf_hours = 0.0;

  [[nodiscard]] double degraded_fraction() const noexcept {
    const std::uint64_t total = normal_days + degraded_days;
    return total > 0 ? static_cast<double>(degraded_days) /
                           static_cast<double>(total)
                     : 0.0;
  }
};

/// Classify a finished per-day error-count series.  The day-counting front
/// ends (batch classify_regime, streaming RegimeAnalyzer) both delegate
/// here, so the regime split and MTBF arithmetic exist once.
[[nodiscard]] RegimeResult classify_daily_counts(
    std::vector<std::uint64_t> errors_per_day, std::uint64_t normal_threshold);

/// Classify every campaign day.
[[nodiscard]] RegimeResult classify_regime(FaultView faults,
                                           const CampaignWindow& window,
                                           const RegimeConfig& config);

/// Convenience: exclude the loudest node (the study's permanent failure)
/// automatically, then classify.  Returns the excluded node, if any.
struct AutoRegime {
  RegimeResult regime;
  std::optional<cluster::NodeId> excluded;
};
[[nodiscard]] AutoRegime classify_regime_excluding_loudest(
    FaultView faults, const CampaignWindow& window,
    std::uint64_t normal_threshold = 3);

// --- Streaming analyzer ---------------------------------------------------

/// classify_regime_excluding_loudest incrementally: keeps the per-node,
/// per-day census (the loudest node is only known once the stream ends) and
/// resolves the exclusion + classification at end_faults.
///
/// Shard aggregation: the census is a pure per-(node, day) count table, so
/// shard states add element-wise; loudest-node exclusion and regime
/// classification happen only at end_faults over the combined table.  Note
/// end_faults releases the census, so serialize_state must run before it
/// (the FaultSink contract already requires this).
class RegimeAnalyzer final : public FaultSink {
 public:
  explicit RegimeAnalyzer(std::uint64_t normal_threshold = 3)
      : normal_threshold_(normal_threshold) {}

  void begin_faults(const FaultStreamContext& ctx) override;
  void on_fault(const FaultRecord& fault) override;
  void end_faults() override;
  [[nodiscard]] std::string serialize_state() const override;
  void merge_state(const std::string& blob) override;
  [[nodiscard]] const AutoRegime& result() const noexcept { return result_; }

 private:
  std::uint64_t normal_threshold_;
  CampaignWindow window_;
  std::size_t days_ = 0;
  std::vector<std::uint64_t> totals_;  ///< all faults per node
  std::vector<std::uint64_t> counts_;  ///< [node * days_ + day], valid days
  AutoRegime result_;
};

}  // namespace unp::analysis
