// Error-extraction methodology (Section II-C).
//
// Raw ERROR logs are not independent faults.  The pipeline applies the
// paper's two accounting rules:
//
//   1. *Pathological-node filter* (Section III-B): a node whose raw log
//      volume dominates the campaign (>98% in the study) is a broken
//      component, removed from the scheduler pool and from the
//      characterization.  The filter re-discovers such nodes from the data.
//
//   2. *Repeat collapse*: a fault that keeps producing incorrect values for
//      consecutive iterations is ONE fault, however many logs it wrote.
//      Logs at the same (node, address) merge while the gap between them
//      stays within `merge_window_s`; a clean stretch longer than that
//      means the cell worked again, so the next log opens a new fault
//      (which is how one weak bit legitimately accounts for thousands of
//      independent errors).
//
// The output FaultRecords are the study's "independent memory errors".
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cluster/topology.hpp"
#include "common/bitops.hpp"
#include "common/civil_time.hpp"
#include "telemetry/archive.hpp"

namespace unp::analysis {

/// One independent memory fault, after filtering and collapsing.
struct FaultRecord {
  cluster::NodeId node;
  TimePoint first_seen = 0;
  TimePoint last_seen = 0;
  std::uint64_t raw_logs = 1;  ///< collapsed ERROR lines
  std::uint64_t virtual_address = 0;
  Word expected = 0;  ///< context of the first observation
  Word actual = 0;
  double temperature_c = 0.0;

  [[nodiscard]] Word flip_mask() const noexcept { return expected ^ actual; }
  [[nodiscard]] int flipped_bits() const noexcept {
    return flipped_bit_count(expected, actual);
  }
  [[nodiscard]] bool is_multibit() const noexcept { return flipped_bits() >= 2; }

  friend bool operator==(const FaultRecord&, const FaultRecord&) = default;
};

/// Read-only, non-owning view of extracted faults in canonical order
/// (time, node, address).  Every analysis entry point takes this view so
/// batch callers (holding a vector) and streaming callers (holding an
/// extractor's buffer) share one signature.
using FaultView = std::span<const FaultRecord>;

struct ExtractionConfig {
  /// Remove nodes holding more than this fraction of all raw logs...
  double pathological_raw_fraction = 0.50;
  /// ...provided they exceed this absolute raw count.
  std::uint64_t pathological_min_raw = 1000000;
  /// Same-address logs merge while gaps stay within this window.  A few
  /// scan passes: long enough to fuse the per-iteration re-logs of a stuck
  /// cell, short enough that distinct leak episodes of a weak bit (minutes
  /// to hours apart) stay separate faults, as the paper counts them.
  std::int64_t merge_window_s = 300;
};

struct ExtractionResult {
  std::vector<FaultRecord> faults;  ///< sorted by (time, node, address)
  std::vector<cluster::NodeId> removed_nodes;
  std::uint64_t total_raw_logs = 0;    ///< before any filtering
  std::uint64_t removed_raw_logs = 0;  ///< raw lines dropped with the nodes

  [[nodiscard]] double removed_fraction() const noexcept {
    return total_raw_logs > 0 ? static_cast<double>(removed_raw_logs) /
                                    static_cast<double>(total_raw_logs)
                              : 0.0;
  }
};

/// Run the full extraction over a campaign archive.
[[nodiscard]] ExtractionResult extract_faults(
    const telemetry::CampaignArchive& archive,
    const ExtractionConfig& config = ExtractionConfig{});

/// Collapse one node's error runs into independent faults (rule 2 only).
[[nodiscard]] std::vector<FaultRecord> collapse_node_log(
    cluster::NodeId node, const telemetry::NodeLog& log,
    std::int64_t merge_window_s);

}  // namespace unp::analysis
