#include "analysis/diagnosis.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace unp::analysis {

const char* to_string(NodeCondition condition) noexcept {
  switch (condition) {
    case NodeCondition::kHealthy: return "healthy";
    case NodeCondition::kSporadic: return "sporadic";
    case NodeCondition::kWeakCell: return "weak-cell";
    case NodeCondition::kStuckRegion: return "stuck-region";
    case NodeCondition::kComponentFailure: return "component-failure";
  }
  return "unknown";
}

const char* NodeDiagnosis::recommendation() const noexcept {
  switch (condition) {
    case NodeCondition::kHealthy: return "none";
    case NodeCondition::kSporadic: return "monitor";
    case NodeCondition::kWeakCell: return "retire the affected page";
    case NodeCondition::kStuckRegion: return "replace the DIMM";
    case NodeCondition::kComponentFailure:
      return "replace the node (retirement cannot keep up)";
  }
  return "none";
}

NodeDiagnosis diagnose_node(FaultView faults,
                            cluster::NodeId node,
                            const DiagnosisConfig& config) {
  NodeDiagnosis diag;
  diag.node = node;

  std::map<std::uint64_t, std::uint64_t> address_counts;
  std::set<std::pair<Word, Word>> patterns;
  for (const auto& f : faults) {
    if (!(f.node == node)) continue;
    ++diag.faults;
    diag.raw_logs += f.raw_logs;
    ++address_counts[f.virtual_address];
    patterns.insert({f.flip_mask(), one_to_zero_mask(f.expected, f.actual)});
  }
  diag.distinct_addresses = address_counts.size();
  diag.distinct_patterns = patterns.size();

  if (diag.faults == 0) {
    diag.condition = NodeCondition::kHealthy;
    return diag;
  }
  if (diag.faults <= config.sporadic_max_faults) {
    diag.condition = NodeCondition::kSporadic;
    return diag;
  }

  // Dominant-address mass: how much of the record one address explains.
  std::uint64_t dominant = 0;
  for (const auto& [address, count] : address_counts) {
    dominant = std::max(dominant, count);
  }
  const double address_ratio = static_cast<double>(diag.distinct_addresses) /
                               static_cast<double>(diag.faults);
  const double dominant_share = static_cast<double>(dominant) /
                                static_cast<double>(diag.faults);
  const double raw_ratio = static_cast<double>(diag.raw_logs) /
                           static_cast<double>(diag.faults);

  if (address_ratio <= config.localized_address_ratio && dominant_share >= 0.5) {
    diag.condition = raw_ratio >= config.stuck_raw_ratio
                         ? NodeCondition::kStuckRegion
                         : NodeCondition::kWeakCell;
    return diag;
  }
  if (raw_ratio >= config.stuck_raw_ratio) {
    diag.condition = NodeCondition::kStuckRegion;
    return diag;
  }
  diag.condition = NodeCondition::kComponentFailure;
  return diag;
}

std::vector<NodeDiagnosis> diagnose_fleet(FaultView faults,
                                          const DiagnosisConfig& config) {
  std::set<int> nodes;
  for (const auto& f : faults) nodes.insert(cluster::node_index(f.node));

  std::vector<NodeDiagnosis> out;
  out.reserve(nodes.size());
  for (const int idx : nodes) {
    out.push_back(diagnose_node(faults, cluster::node_from_index(idx), config));
  }
  std::sort(out.begin(), out.end(),
            [](const NodeDiagnosis& a, const NodeDiagnosis& b) {
              return a.faults > b.faults;
            });
  return out;
}

}  // namespace unp::analysis
