// Figure-level metrics over the extracted faults and the raw archive:
// the node-grid heat maps (Figs 1-3), hour-of-day profiles (Figs 5-6),
// temperature profiles (Figs 7-8), daily series (Figs 9-11), the top-node
// decomposition (Fig 12) and the scan-vs-error correlation (Section III-G).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "analysis/extraction.hpp"
#include "common/histogram.hpp"
#include "common/stats.hpp"
#include "telemetry/archive.hpp"

namespace unp::analysis {

/// Flip-width classes used throughout the figures: 1, 2, 3, 4, 5, 6+.
constexpr int kBitClasses = 6;
[[nodiscard]] constexpr int bit_class(int bits) noexcept {
  return bits >= kBitClasses ? kBitClasses - 1 : bits - 1;
}
[[nodiscard]] const char* bit_class_label(int klass) noexcept;

// --- Node-grid heat maps (blade rows x SoC columns) ---------------------

/// Fig 1: hours each node was scanned (from START/END pairing).
[[nodiscard]] Grid2D hours_scanned_grid(const telemetry::CampaignArchive& archive);

/// Fig 2: terabyte-hours each node scanned.
[[nodiscard]] Grid2D terabyte_hours_grid(const telemetry::CampaignArchive& archive);

/// Fig 3: independent memory errors per node.
[[nodiscard]] Grid2D errors_grid(const std::vector<FaultRecord>& faults);

// --- Hour-of-day profiles (Figs 5, 6) ------------------------------------

/// counts[hour][bit class]; hours are local (Europe/Madrid) wall clock.
struct HourOfDayProfile {
  std::array<std::array<std::uint64_t, kBitClasses>, 24> counts{};

  [[nodiscard]] std::uint64_t total(int hour) const noexcept;
  [[nodiscard]] std::uint64_t multibit(int hour) const noexcept;
  /// Errors observed 07:00-18:59 vs the rest (the paper's day/night split).
  [[nodiscard]] double day_night_ratio_multibit() const noexcept;
};

[[nodiscard]] HourOfDayProfile hour_of_day_profile(
    const std::vector<FaultRecord>& faults);

// --- Temperature profiles (Figs 7, 8) ------------------------------------

/// One histogram per bit class over node temperature; faults without a
/// reading (pre-April) are excluded.
struct TemperatureProfile {
  static constexpr double kLoC = 20.0;
  static constexpr double kHiC = 80.0;
  static constexpr std::size_t kBins = 30;  ///< 2 degC bins

  std::vector<Histogram1D> by_class;  ///< kBitClasses histograms
  std::uint64_t without_reading = 0;

  TemperatureProfile();
};

[[nodiscard]] TemperatureProfile temperature_profile(
    const std::vector<FaultRecord>& faults);

// --- Daily series (Figs 9-12) --------------------------------------------

/// Terabyte-hours scanned per campaign day (Fig 9), from START/END pairs
/// split across local-day boundaries.
[[nodiscard]] std::vector<double> daily_terabyte_hours(
    const telemetry::CampaignArchive& archive);

/// counts[day][bit class] (Figs 10, 11).
[[nodiscard]] std::vector<std::array<std::uint64_t, kBitClasses>> daily_errors(
    const std::vector<FaultRecord>& faults, const CampaignWindow& window);

/// Fig 12: per-day error counts of the `top` loudest nodes plus the rest.
struct TopNodeSeries {
  std::vector<cluster::NodeId> nodes;          ///< loudest first
  std::vector<std::uint64_t> node_totals;      ///< same order
  std::vector<std::vector<std::uint64_t>> per_day;  ///< [node][day]
  std::vector<std::uint64_t> rest_per_day;
  std::uint64_t rest_total = 0;
};

[[nodiscard]] TopNodeSeries top_node_series(const std::vector<FaultRecord>& faults,
                                            const CampaignWindow& window,
                                            std::size_t top = 3);

/// Section III-G: Pearson correlation between daily scanned TB-h and daily
/// error counts.
[[nodiscard]] PearsonResult scan_error_correlation(
    const telemetry::CampaignArchive& archive,
    const std::vector<FaultRecord>& faults);

// --- Headline statistics (Section III-B) ---------------------------------

struct HeadlineStats {
  std::uint64_t raw_logs = 0;
  double removed_fraction = 0.0;
  std::uint64_t independent_faults = 0;
  double monitored_node_hours = 0.0;
  double terabyte_hours = 0.0;
  int monitored_nodes = 0;
  /// Mean time between errors for one node (monitored hours / faults).
  double node_mtbf_hours = 0.0;
  /// Mean time between errors anywhere in the cluster (campaign minutes /
  /// faults).
  double cluster_mtbe_minutes = 0.0;
};

[[nodiscard]] HeadlineStats headline_stats(const telemetry::CampaignArchive& archive,
                                           const ExtractionResult& extraction);

}  // namespace unp::analysis
