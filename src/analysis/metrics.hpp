// Figure-level metrics over the extracted faults and the raw archive:
// the node-grid heat maps (Figs 1-3), hour-of-day profiles (Figs 5-6),
// temperature profiles (Figs 7-8), daily series (Figs 9-11), the top-node
// decomposition (Fig 12) and the scan-vs-error correlation (Section III-G).
//
// Each product exists in two shapes that share one implementation: a batch
// function over a FaultView / CampaignArchive, and a streaming analyzer
// (FaultSink or telemetry::RecordSink) that accumulates the same product
// incrementally.  The batch functions are thin wrappers that drive the
// analyzer over the view, so both paths are bit-identical by construction.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "analysis/extraction.hpp"
#include "analysis/fault_sink.hpp"
#include "common/histogram.hpp"
#include "common/stats.hpp"
#include "telemetry/archive.hpp"

namespace unp::analysis {

/// Flip-width classes used throughout the figures: 1, 2, 3, 4, 5, 6+.
constexpr int kBitClasses = 6;
[[nodiscard]] constexpr int bit_class(int bits) noexcept {
  return bits >= kBitClasses ? kBitClasses - 1 : bits - 1;
}
[[nodiscard]] const char* bit_class_label(int klass) noexcept;

/// counts[day][bit class] (Figs 10, 11).
using DailyErrorSeries = std::vector<std::array<std::uint64_t, kBitClasses>>;

// --- Node-grid heat maps (blade rows x SoC columns) ---------------------

/// Fig 1: hours each node was scanned (from START/END pairing).
[[nodiscard]] Grid2D hours_scanned_grid(const telemetry::CampaignArchive& archive);

/// Fig 2: terabyte-hours each node scanned.
[[nodiscard]] Grid2D terabyte_hours_grid(const telemetry::CampaignArchive& archive);

/// Fig 3: independent memory errors per node.
[[nodiscard]] Grid2D errors_grid(FaultView faults);

// --- Hour-of-day profiles (Figs 5, 6) ------------------------------------

/// counts[hour][bit class]; hours are local (Europe/Madrid) wall clock.
struct HourOfDayProfile {
  std::array<std::array<std::uint64_t, kBitClasses>, 24> counts{};

  [[nodiscard]] std::uint64_t total(int hour) const noexcept;
  [[nodiscard]] std::uint64_t multibit(int hour) const noexcept;
  /// Errors observed 07:00-18:59 vs the rest (the paper's day/night split).
  [[nodiscard]] double day_night_ratio_multibit() const noexcept;
};

[[nodiscard]] HourOfDayProfile hour_of_day_profile(FaultView faults);

// --- Temperature profiles (Figs 7, 8) ------------------------------------

/// One histogram per bit class over node temperature; faults without a
/// reading (pre-April) are excluded.
struct TemperatureProfile {
  static constexpr double kLoC = 20.0;
  static constexpr double kHiC = 80.0;
  static constexpr std::size_t kBins = 30;  ///< 2 degC bins

  std::vector<Histogram1D> by_class;  ///< kBitClasses histograms
  std::uint64_t without_reading = 0;

  TemperatureProfile();
};

[[nodiscard]] TemperatureProfile temperature_profile(FaultView faults);

// --- Daily series (Figs 9-12) --------------------------------------------

/// Accumulate one node's contribution to the per-day terabyte-hour series
/// (Fig 9): START/END pairs under NodeLog::monitored_hours' conservative
/// rule, each session split across local-day boundaries.  Shared by the
/// batch daily_terabyte_hours and the streaming ScanProfileSink so both
/// paths run identical floating-point arithmetic.
void accumulate_daily_terabyte_hours(const telemetry::NodeLog& log,
                                     const CampaignWindow& window,
                                     std::vector<double>& series);

/// Terabyte-hours scanned per campaign day (Fig 9), from START/END pairs
/// split across local-day boundaries.
[[nodiscard]] std::vector<double> daily_terabyte_hours(
    const telemetry::CampaignArchive& archive);

[[nodiscard]] DailyErrorSeries daily_errors(FaultView faults,
                                            const CampaignWindow& window);

/// Fig 12: per-day error counts of the `top` loudest nodes plus the rest.
struct TopNodeSeries {
  std::vector<cluster::NodeId> nodes;          ///< loudest first
  std::vector<std::uint64_t> node_totals;      ///< same order
  std::vector<std::vector<std::uint64_t>> per_day;  ///< [node][day]
  std::vector<std::uint64_t> rest_per_day;
  std::uint64_t rest_total = 0;
};

[[nodiscard]] TopNodeSeries top_node_series(FaultView faults,
                                            const CampaignWindow& window,
                                            std::size_t top = 3);

/// Section III-G: Pearson correlation between daily scanned TB-h and daily
/// error counts.
[[nodiscard]] PearsonResult scan_error_correlation(
    std::span<const double> daily_tbh, const DailyErrorSeries& errors);

[[nodiscard]] PearsonResult scan_error_correlation(
    const telemetry::CampaignArchive& archive, FaultView faults);

// --- Headline statistics (Section III-B) ---------------------------------

struct HeadlineStats {
  std::uint64_t raw_logs = 0;
  double removed_fraction = 0.0;
  std::uint64_t independent_faults = 0;
  double monitored_node_hours = 0.0;
  double terabyte_hours = 0.0;
  int monitored_nodes = 0;
  /// Mean time between errors for one node (monitored hours / faults).
  double node_mtbf_hours = 0.0;
  /// Mean time between errors anywhere in the cluster (campaign minutes /
  /// faults).
  double cluster_mtbe_minutes = 0.0;
};

/// Assemble the headline numbers from scan totals gathered either from a
/// materialized archive or from a streaming ScanProfileSink pass.
[[nodiscard]] HeadlineStats headline_stats(double monitored_node_hours,
                                           double terabyte_hours,
                                           int monitored_nodes,
                                           const CampaignWindow& window,
                                           const ExtractionResult& extraction);

[[nodiscard]] HeadlineStats headline_stats(const telemetry::CampaignArchive& archive,
                                           const ExtractionResult& extraction);

// --- Streaming analyzers --------------------------------------------------

/// Record-level analyzer: every product the figures read from the raw
/// archive (Figs 1, 2, 9 and the headline scan totals), computed in one pass
/// over the record stream without materializing a CampaignArchive.  Only
/// START/END records are buffered, one node at a time.
class ScanProfileSink final : public telemetry::RecordSink {
 public:
  ScanProfileSink();

  void begin_campaign(const CampaignWindow& window) override;
  void begin_node(cluster::NodeId node) override;
  void end_node(cluster::NodeId node) override;
  void on_start(const telemetry::StartRecord& r) override;
  void on_end(const telemetry::EndRecord& r) override;
  void on_alloc_fail(const telemetry::AllocFailRecord& /*r*/) override {}
  void on_error_run(const telemetry::ErrorRun& /*r*/) override {}

  [[nodiscard]] const CampaignWindow& window() const noexcept { return window_; }
  [[nodiscard]] const Grid2D& hours_grid() const noexcept { return hours_; }
  [[nodiscard]] const Grid2D& terabyte_hours_grid() const noexcept { return tbh_; }
  [[nodiscard]] const std::vector<double>& daily_terabyte_hours() const noexcept {
    return daily_tbh_;
  }
  [[nodiscard]] double total_monitored_hours() const noexcept { return total_hours_; }
  [[nodiscard]] double total_terabyte_hours() const noexcept { return total_tbh_; }
  [[nodiscard]] int monitored_nodes() const noexcept { return monitored_nodes_; }

 private:
  CampaignWindow window_;
  Grid2D hours_;
  Grid2D tbh_;
  std::vector<double> daily_tbh_;
  double total_hours_ = 0.0;
  double total_tbh_ = 0.0;
  int monitored_nodes_ = 0;
  telemetry::NodeLog pending_;  ///< starts/ends of the node being streamed
};

/// Fig 3 incrementally.
class ErrorsGridAnalyzer final : public FaultSink {
 public:
  ErrorsGridAnalyzer();
  void begin_faults(const FaultStreamContext& ctx) override;
  void on_fault(const FaultRecord& fault) override;
  [[nodiscard]] std::string serialize_state() const override;
  void merge_state(const std::string& blob) override;
  [[nodiscard]] const Grid2D& grid() const noexcept { return grid_; }

 private:
  Grid2D grid_;
};

/// Figs 5-6 incrementally.
class HourOfDayAnalyzer final : public FaultSink {
 public:
  void begin_faults(const FaultStreamContext& ctx) override;
  void on_fault(const FaultRecord& fault) override;
  [[nodiscard]] std::string serialize_state() const override;
  void merge_state(const std::string& blob) override;
  [[nodiscard]] const HourOfDayProfile& profile() const noexcept { return profile_; }

 private:
  HourOfDayProfile profile_;
};

/// Figs 7-8 incrementally.
class TemperatureAnalyzer final : public FaultSink {
 public:
  void begin_faults(const FaultStreamContext& ctx) override;
  void on_fault(const FaultRecord& fault) override;
  [[nodiscard]] std::string serialize_state() const override;
  void merge_state(const std::string& blob) override;
  [[nodiscard]] const TemperatureProfile& profile() const noexcept { return profile_; }

 private:
  TemperatureProfile profile_;
};

/// Figs 10-11 incrementally.
class DailyErrorsAnalyzer final : public FaultSink {
 public:
  void begin_faults(const FaultStreamContext& ctx) override;
  void on_fault(const FaultRecord& fault) override;
  [[nodiscard]] std::string serialize_state() const override;
  void merge_state(const std::string& blob) override;
  [[nodiscard]] const DailyErrorSeries& series() const noexcept { return series_; }

 private:
  CampaignWindow window_;
  DailyErrorSeries series_;
};

/// Fig 12 incrementally: keeps the full per-node-per-day census (~3 MB for
/// the study topology) and resolves the top-`top` decomposition at
/// end_faults.
class TopNodeAnalyzer final : public FaultSink {
 public:
  explicit TopNodeAnalyzer(std::size_t top = 3) : top_(top) {}

  void begin_faults(const FaultStreamContext& ctx) override;
  void on_fault(const FaultRecord& fault) override;
  void end_faults() override;
  [[nodiscard]] std::string serialize_state() const override;
  void merge_state(const std::string& blob) override;
  [[nodiscard]] const TopNodeSeries& series() const noexcept { return series_; }

 private:
  std::size_t top_;
  CampaignWindow window_;
  std::size_t days_ = 0;
  std::vector<std::uint64_t> totals_;  ///< all faults, valid day or not
  std::vector<std::uint64_t> counts_;  ///< [node * days_ + day], valid days
  TopNodeSeries series_;
};

}  // namespace unp::analysis
