// Two-state Markov model of the system regime.
//
// Section III-I classifies each day as normal or degraded and reports the
// split; a resilience controller needs more: how long do degraded spells
// *last*, and how predictable is tomorrow from today?  Fitting a two-state
// Markov chain to the day sequence answers both (expected spell lengths
// are 1/(1-p_stay)), and the fitted chain doubles as a generative model for
// synthetic regime traces in capacity planning.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/regime.hpp"
#include "common/rng.hpp"

namespace unp::analysis {

struct MarkovRegimeModel {
  /// P(tomorrow normal | today normal).
  double p_stay_normal = 1.0;
  /// P(tomorrow degraded | today degraded).
  double p_stay_degraded = 0.0;
  std::uint64_t transitions_observed = 0;

  /// Stationary probability of the degraded state.
  [[nodiscard]] double stationary_degraded() const noexcept;

  /// Expected consecutive-day spell lengths.
  [[nodiscard]] double mean_normal_spell_days() const noexcept;
  [[nodiscard]] double mean_degraded_spell_days() const noexcept;

  /// Sample a synthetic day sequence from the fitted chain.
  [[nodiscard]] std::vector<bool> simulate(std::size_t days, RngStream& rng,
                                           bool start_degraded = false) const;
};

/// Maximum-likelihood fit from a classified day sequence.
[[nodiscard]] MarkovRegimeModel fit_markov_regime(const std::vector<bool>& degraded);

/// Empirical spell-length statistics of a day sequence (for comparing the
/// fit against the data it came from).
struct SpellStats {
  double mean_normal_spell = 0.0;
  double mean_degraded_spell = 0.0;
  std::uint64_t normal_spells = 0;
  std::uint64_t degraded_spells = 0;
  std::uint64_t longest_degraded_spell = 0;
};

[[nodiscard]] SpellStats spell_stats(const std::vector<bool>& degraded);

// --- Streaming analyzer ---------------------------------------------------

/// Regime dynamics incrementally: runs a RegimeAnalyzer over the stream and
/// fits the Markov chain + empirical spell statistics at end_faults, on the
/// day sequence trimmed to whole campaign days (the counting series' +2
/// slack days would bias the fit).
class RegimeDynamicsAnalyzer final : public FaultSink {
 public:
  explicit RegimeDynamicsAnalyzer(std::uint64_t normal_threshold = 3)
      : regime_(normal_threshold) {}

  void begin_faults(const FaultStreamContext& ctx) override;
  void on_fault(const FaultRecord& fault) override;
  void end_faults() override;
  /// Shard aggregation delegates to the embedded RegimeAnalyzer: its
  /// per-(node, day) census is the whole pre-end_faults state here.
  [[nodiscard]] std::string serialize_state() const override {
    return regime_.serialize_state();
  }
  void merge_state(const std::string& blob) override {
    regime_.merge_state(blob);
  }

  [[nodiscard]] const AutoRegime& regime() const noexcept {
    return regime_.result();
  }
  [[nodiscard]] const std::vector<bool>& days() const noexcept { return days_; }
  [[nodiscard]] const MarkovRegimeModel& model() const noexcept { return model_; }
  [[nodiscard]] const SpellStats& spells() const noexcept { return spells_; }

 private:
  RegimeAnalyzer regime_;
  CampaignWindow window_;
  std::vector<bool> days_;
  MarkovRegimeModel model_;
  SpellStats spells_;
};

}  // namespace unp::analysis
