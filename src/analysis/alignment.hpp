// Physical-alignment analysis of simultaneous corruptions.
//
// Section III-C: "We suspect that the affected memory cells are in physical
// proximity or alignment (row, column, bank) however the memory controller
// maps them to different address words."  The authors could only suspect;
// with the device's address map in hand the hypothesis is testable: project
// each simultaneous group's words back to (rank, bank, row, column) and
// classify the group's geometry.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/grouping.hpp"
#include "dram/address_map.hpp"

namespace unp::analysis {

enum class GroupGeometry : std::uint8_t {
  kSameRow,     ///< every word in one (rank, bank, row)
  kSameColumn,  ///< every word shares (rank, bank, column) across rows
  kSameBank,    ///< same (rank, bank), otherwise mixed
  kScattered    ///< spans banks/ranks
};

[[nodiscard]] const char* to_string(GroupGeometry geometry) noexcept;

/// Geometry of one multi-word group under the given map.
[[nodiscard]] GroupGeometry classify_geometry(const SimultaneousGroup& group,
                                              const dram::AddressMap& map);

struct AlignmentStats {
  std::uint64_t groups_examined = 0;  ///< multi-word groups only
  std::uint64_t same_row = 0;
  std::uint64_t same_column = 0;
  std::uint64_t same_bank = 0;
  std::uint64_t scattered = 0;
  /// Groups in which at least one (rank, bank, row) hosts two or more of
  /// the corrupted words.  Robust against same-instant merging: when
  /// several independent strikes land in one scan pass they are logged with
  /// one timestamp and classified as "scattered" above, but a genuine
  /// aligned burst inside the pile still shows up as a same-row pair
  /// (random rows virtually never collide across a million rows).
  std::uint64_t with_aligned_pair = 0;

  [[nodiscard]] double aligned_fraction() const noexcept {
    return groups_examined
               ? static_cast<double>(same_row + same_column) /
                     static_cast<double>(groups_examined)
               : 0.0;
  }
};

/// Classify every multi-word simultaneous group.
[[nodiscard]] AlignmentStats physical_alignment_stats(
    const std::vector<SimultaneousGroup>& groups, const dram::AddressMap& map);

/// Mean/max logical address distance within multi-word groups - the
/// controller-scattering the paper describes ("maps them to different
/// address words").
struct LogicalSpread {
  double mean_span_bytes = 0.0;
  std::uint64_t max_span_bytes = 0;
};

[[nodiscard]] LogicalSpread logical_spread(
    const std::vector<SimultaneousGroup>& groups);

// --- Streaming analyzer ---------------------------------------------------

/// Physical alignment incrementally: groups the stream with a
/// SimultaneousGroupAnalyzer, then classifies every multi-word group under
/// the given address map at end_faults.  The map must outlive the analyzer.
///
/// Shard aggregation: groups never span shards, so AlignmentStats counters
/// add and the logical-spread partials (span sum, group count, max span)
/// combine exactly — spans are integers far below 2^53, so the double sum
/// is order-insensitive.  All shards must classify under the same address
/// map for the merged stats to be meaningful.
class AlignmentAnalyzer final : public FaultSink {
 public:
  explicit AlignmentAnalyzer(const dram::AddressMap& map) : map_(&map) {}

  void begin_faults(const FaultStreamContext& ctx) override;
  void on_fault(const FaultRecord& fault) override;
  void end_faults() override;
  [[nodiscard]] std::string serialize_state() const override;
  void merge_state(const std::string& blob) override;

  [[nodiscard]] const AlignmentStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const LogicalSpread& spread() const noexcept { return spread_; }

 private:
  const dram::AddressMap* map_;
  SimultaneousGroupAnalyzer grouping_;
  AlignmentStats stats_;
  LogicalSpread spread_;
  AlignmentStats merged_stats_;
  double merged_span_sum_ = 0.0;
  std::uint64_t merged_span_count_ = 0;
  std::uint64_t merged_max_span_ = 0;
};

}  // namespace unp::analysis
