// Bit-level corruption statistics (Table I and Section III-C prose):
//
//   - the census of multi-bit word corruption patterns with their
//     occurrence counts and adjacency (Table I);
//   - flip direction: ~90% of corrupted bits went 1 -> 0;
//   - distances between corrupted bits: mean ~3, max 11, majority
//     non-adjacent;
//   - position: most multi-bit corruption sits in the low half of the word.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/extraction.hpp"

namespace unp::analysis {

/// One Table I row: a distinct (expected, corrupted) pattern.
struct MultibitPattern {
  int bits = 0;
  Word expected = 0;
  Word corrupted = 0;
  std::uint64_t occurrences = 0;
  bool consecutive = false;  ///< flipped bits form one contiguous run
};

/// The multi-bit pattern census, ordered like Table I (bits asc, then
/// occurrences asc).
[[nodiscard]] std::vector<MultibitPattern> multibit_patterns(
    const std::vector<FaultRecord>& faults);

struct DirectionStats {
  std::uint64_t one_to_zero = 0;
  std::uint64_t zero_to_one = 0;

  [[nodiscard]] double one_to_zero_fraction() const noexcept {
    const std::uint64_t total = one_to_zero + zero_to_one;
    return total > 0 ? static_cast<double>(one_to_zero) /
                           static_cast<double>(total)
                     : 0.0;
  }
};

/// Per-bit flip directions across all faults.
[[nodiscard]] DirectionStats direction_stats(const std::vector<FaultRecord>& faults);

struct AdjacencyStats {
  std::uint64_t multibit_faults = 0;
  std::uint64_t consecutive = 0;     ///< contiguous flipped-bit runs
  std::uint64_t non_adjacent = 0;
  double mean_distance = 0.0;        ///< mean gap between successive flips
  int max_distance = 0;              ///< max bit-position gap observed
  std::uint64_t low_half_majority = 0;  ///< faults with most flips in bits 0..15
};

/// Adjacency/distance census over the multi-bit faults.
[[nodiscard]] AdjacencyStats adjacency_stats(const std::vector<FaultRecord>& faults);

/// Distinct corrupted addresses and distinct flip patterns of one node
/// (Section III-H characterizes node 02-04 with these).
struct NodePatternProfile {
  std::uint64_t faults = 0;
  std::uint64_t distinct_addresses = 0;
  std::uint64_t distinct_patterns = 0;  ///< distinct (flip_mask, direction)
  bool single_fixed_bit = false;  ///< all faults flip the identical bit
};

[[nodiscard]] NodePatternProfile node_pattern_profile(
    const std::vector<FaultRecord>& faults, cluster::NodeId node);

}  // namespace unp::analysis
