// Bit-level corruption statistics (Table I and Section III-C prose):
//
//   - the census of multi-bit word corruption patterns with their
//     occurrence counts and adjacency (Table I);
//   - flip direction: ~90% of corrupted bits went 1 -> 0;
//   - distances between corrupted bits: mean ~3, max 11, majority
//     non-adjacent;
//   - position: most multi-bit corruption sits in the low half of the word.
//
// Each statistic has a batch entry point over a FaultView and a streaming
// FaultSink analyzer; the batch functions drive the analyzers, so both paths
// share one implementation.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "analysis/extraction.hpp"
#include "analysis/fault_sink.hpp"

namespace unp::analysis {

/// One Table I row: a distinct (expected, corrupted) pattern.
struct MultibitPattern {
  int bits = 0;
  Word expected = 0;
  Word corrupted = 0;
  std::uint64_t occurrences = 0;
  bool consecutive = false;  ///< flipped bits form one contiguous run

  friend bool operator==(const MultibitPattern&, const MultibitPattern&) = default;
};

/// The multi-bit pattern census, ordered like Table I (bits asc, then
/// occurrences asc).
[[nodiscard]] std::vector<MultibitPattern> multibit_patterns(FaultView faults);

struct DirectionStats {
  std::uint64_t one_to_zero = 0;
  std::uint64_t zero_to_one = 0;

  [[nodiscard]] double one_to_zero_fraction() const noexcept {
    const std::uint64_t total = one_to_zero + zero_to_one;
    return total > 0 ? static_cast<double>(one_to_zero) /
                           static_cast<double>(total)
                     : 0.0;
  }

  friend bool operator==(const DirectionStats&, const DirectionStats&) = default;
};

/// Per-bit flip directions across all faults.
[[nodiscard]] DirectionStats direction_stats(FaultView faults);

struct AdjacencyStats {
  std::uint64_t multibit_faults = 0;
  std::uint64_t consecutive = 0;     ///< contiguous flipped-bit runs
  std::uint64_t non_adjacent = 0;
  double mean_distance = 0.0;        ///< mean gap between successive flips
  int max_distance = 0;              ///< max bit-position gap observed
  std::uint64_t low_half_majority = 0;  ///< faults with most flips in bits 0..15

  friend bool operator==(const AdjacencyStats&, const AdjacencyStats&) = default;
};

/// Adjacency/distance census over the multi-bit faults.
[[nodiscard]] AdjacencyStats adjacency_stats(FaultView faults);

/// Distinct corrupted addresses and distinct flip patterns of one node
/// (Section III-H characterizes node 02-04 with these).
struct NodePatternProfile {
  std::uint64_t faults = 0;
  std::uint64_t distinct_addresses = 0;
  std::uint64_t distinct_patterns = 0;  ///< distinct (flip_mask, direction)
  bool single_fixed_bit = false;  ///< all faults flip the identical bit

  friend bool operator==(const NodePatternProfile&, const NodePatternProfile&) = default;
};

[[nodiscard]] NodePatternProfile node_pattern_profile(FaultView faults,
                                                      cluster::NodeId node);

// --- Streaming analyzers --------------------------------------------------

/// Table I incrementally.
class MultibitPatternAnalyzer final : public FaultSink {
 public:
  void begin_faults(const FaultStreamContext& ctx) override;
  void on_fault(const FaultRecord& fault) override;
  void end_faults() override;
  [[nodiscard]] std::string serialize_state() const override;
  void merge_state(const std::string& blob) override;
  [[nodiscard]] const std::vector<MultibitPattern>& patterns() const noexcept {
    return patterns_;
  }

 private:
  std::map<std::pair<Word, Word>, std::uint64_t> census_;
  std::vector<MultibitPattern> patterns_;
};

/// Flip-direction census incrementally.
class DirectionAnalyzer final : public FaultSink {
 public:
  void begin_faults(const FaultStreamContext& ctx) override;
  void on_fault(const FaultRecord& fault) override;
  [[nodiscard]] std::string serialize_state() const override;
  void merge_state(const std::string& blob) override;
  [[nodiscard]] const DirectionStats& stats() const noexcept { return stats_; }

 private:
  DirectionStats stats_;
};

/// Adjacency/distance census incrementally.
class AdjacencyAnalyzer final : public FaultSink {
 public:
  void begin_faults(const FaultStreamContext& ctx) override;
  void on_fault(const FaultRecord& fault) override;
  void end_faults() override;
  [[nodiscard]] std::string serialize_state() const override;
  void merge_state(const std::string& blob) override;
  [[nodiscard]] const AdjacencyStats& stats() const noexcept { return stats_; }

 private:
  AdjacencyStats stats_;
  double distance_sum_ = 0.0;
  std::uint64_t distance_count_ = 0;
};

/// Per-node pattern profiles incrementally, for every node that faulted.
/// Fig 12 asks for the profiles of the loudest nodes, which are only known
/// after the stream ends, so the census keeps all of them (set sizes are
/// bounded by the fault count).
class NodePatternCensus final : public FaultSink {
 public:
  void begin_faults(const FaultStreamContext& ctx) override;
  void on_fault(const FaultRecord& fault) override;
  [[nodiscard]] std::string serialize_state() const override;
  void merge_state(const std::string& blob) override;
  /// Profile of `node`; default-constructed if the node never faulted.
  [[nodiscard]] NodePatternProfile profile(cluster::NodeId node) const;

 private:
  struct NodeSets {
    std::uint64_t faults = 0;
    std::set<std::uint64_t> addresses;
    std::set<std::pair<Word, Word>> patterns;  // (flip mask, 1->0 mask)
    std::set<Word> masks;
  };
  std::map<int, NodeSets> by_node_;  ///< keyed by node_index
};

}  // namespace unp::analysis
