#include "analysis/grouping.hpp"

#include <algorithm>

#include "analysis/sink_state.hpp"

namespace unp::analysis {

int SimultaneousGroup::total_bits() const noexcept {
  int bits = 0;
  for (const FaultRecord* f : members) bits += f->flipped_bits();
  return bits;
}

int SimultaneousGroup::max_word_bits() const noexcept {
  int bits = 0;
  for (const FaultRecord* f : members) bits = std::max(bits, f->flipped_bits());
  return bits;
}

std::vector<SimultaneousGroup> group_simultaneous(FaultView faults) {
  // Order by (node, time) to make groups contiguous.
  std::vector<const FaultRecord*> sorted;
  sorted.reserve(faults.size());
  for (const auto& f : faults) sorted.push_back(&f);
  std::sort(sorted.begin(), sorted.end(),
            [](const FaultRecord* a, const FaultRecord* b) {
              const int na = cluster::node_index(a->node);
              const int nb = cluster::node_index(b->node);
              if (na != nb) return na < nb;
              if (a->first_seen != b->first_seen)
                return a->first_seen < b->first_seen;
              return a->virtual_address < b->virtual_address;
            });

  std::vector<SimultaneousGroup> groups;
  for (const FaultRecord* f : sorted) {
    if (!groups.empty() && groups.back().node == f->node &&
        groups.back().time == f->first_seen) {
      groups.back().members.push_back(f);
    } else {
      SimultaneousGroup g;
      g.node = f->node;
      g.time = f->first_seen;
      g.members.push_back(f);
      groups.push_back(std::move(g));
    }
  }
  return groups;
}

MultibitViewpoints count_viewpoints(const std::vector<SimultaneousGroup>& groups) {
  MultibitViewpoints v;
  auto clamp_bits = [](int bits) {
    return std::clamp(bits, 1, MultibitViewpoints::kMaxBits);
  };
  for (const auto& g : groups) {
    for (const FaultRecord* f : g.members) {
      ++v.per_word[clamp_bits(f->flipped_bits())];
    }
    ++v.per_node[clamp_bits(g.total_bits())];
  }
  return v;
}

void SimultaneousGroupAnalyzer::begin_faults(const FaultStreamContext& /*ctx*/) {
  by_node_.assign(static_cast<std::size_t>(cluster::kStudyNodeSlots), {});
  groups_.clear();
  viewpoints_ = MultibitViewpoints{};
  co_occurrence_ = CoOccurrence{};
  merged_viewpoints_ = MultibitViewpoints{};
  merged_co_occurrence_ = CoOccurrence{};
}

void SimultaneousGroupAnalyzer::on_fault(const FaultRecord& fault) {
  by_node_[static_cast<std::size_t>(cluster::node_index(fault.node))]
      .push_back(&fault);
}

std::vector<SimultaneousGroup> SimultaneousGroupAnalyzer::current_groups()
    const {
  std::vector<SimultaneousGroup> groups;
  for (const auto& bucket : by_node_) {
    for (const FaultRecord* f : bucket) {
      if (!groups.empty() && groups.back().node == f->node &&
          groups.back().time == f->first_seen) {
        groups.back().members.push_back(f);
      } else {
        SimultaneousGroup g;
        g.node = f->node;
        g.time = f->first_seen;
        g.members.push_back(f);
        groups.push_back(std::move(g));
      }
    }
  }
  return groups;
}

void SimultaneousGroupAnalyzer::end_faults() {
  groups_ = current_groups();
  by_node_.clear();

  viewpoints_ = count_viewpoints(groups_);
  for (int b = 0; b <= MultibitViewpoints::kMaxBits; ++b) {
    viewpoints_.per_word[b] += merged_viewpoints_.per_word[b];
    viewpoints_.per_node[b] += merged_viewpoints_.per_node[b];
  }
  co_occurrence_ = count_co_occurrence(groups_);
  co_occurrence_.simultaneous_corruptions +=
      merged_co_occurrence_.simultaneous_corruptions;
  co_occurrence_.multi_single_groups += merged_co_occurrence_.multi_single_groups;
  co_occurrence_.double_plus_single += merged_co_occurrence_.double_plus_single;
  co_occurrence_.triple_plus_single += merged_co_occurrence_.triple_plus_single;
  co_occurrence_.double_plus_double += merged_co_occurrence_.double_plus_double;
  co_occurrence_.max_bits_one_instant =
      std::max(co_occurrence_.max_bits_one_instant,
               merged_co_occurrence_.max_bits_one_instant);
}

std::string SimultaneousGroupAnalyzer::serialize_state() const {
  // Locally streamed faults plus everything already folded in via
  // merge_state — so re-serializing a merged accumulator round-trips.
  const auto groups = current_groups();
  MultibitViewpoints v = count_viewpoints(groups);
  CoOccurrence c = count_co_occurrence(groups);
  for (int b = 0; b <= MultibitViewpoints::kMaxBits; ++b) {
    v.per_word[b] += merged_viewpoints_.per_word[b];
    v.per_node[b] += merged_viewpoints_.per_node[b];
  }
  c.simultaneous_corruptions += merged_co_occurrence_.simultaneous_corruptions;
  c.multi_single_groups += merged_co_occurrence_.multi_single_groups;
  c.double_plus_single += merged_co_occurrence_.double_plus_single;
  c.triple_plus_single += merged_co_occurrence_.triple_plus_single;
  c.double_plus_double += merged_co_occurrence_.double_plus_double;
  c.max_bits_one_instant = std::max(c.max_bits_one_instant,
                                    merged_co_occurrence_.max_bits_one_instant);
  state::Writer w('S');
  for (int b = 0; b <= MultibitViewpoints::kMaxBits; ++b) w.put_u64(v.per_word[b]);
  for (int b = 0; b <= MultibitViewpoints::kMaxBits; ++b) w.put_u64(v.per_node[b]);
  w.put_u64(c.simultaneous_corruptions);
  w.put_u64(c.multi_single_groups);
  w.put_u64(c.double_plus_single);
  w.put_u64(c.triple_plus_single);
  w.put_u64(c.double_plus_double);
  w.put_u64(c.max_bits_one_instant);
  return std::move(w).take();
}

void SimultaneousGroupAnalyzer::merge_state(const std::string& blob) {
  state::Reader r(blob, 'S', "SimultaneousGroupAnalyzer");
  for (int b = 0; b <= MultibitViewpoints::kMaxBits; ++b)
    merged_viewpoints_.per_word[b] += r.get_u64();
  for (int b = 0; b <= MultibitViewpoints::kMaxBits; ++b)
    merged_viewpoints_.per_node[b] += r.get_u64();
  merged_co_occurrence_.simultaneous_corruptions += r.get_u64();
  merged_co_occurrence_.multi_single_groups += r.get_u64();
  merged_co_occurrence_.double_plus_single += r.get_u64();
  merged_co_occurrence_.triple_plus_single += r.get_u64();
  merged_co_occurrence_.double_plus_double += r.get_u64();
  merged_co_occurrence_.max_bits_one_instant =
      std::max(merged_co_occurrence_.max_bits_one_instant, r.get_u64());
  r.finish();
}

CoOccurrence count_co_occurrence(const std::vector<SimultaneousGroup>& groups) {
  CoOccurrence c;
  for (const auto& g : groups) {
    if (!g.is_simultaneous()) continue;
    c.simultaneous_corruptions += g.members.size();
    c.max_bits_one_instant =
        std::max<std::uint64_t>(c.max_bits_one_instant,
                                static_cast<std::uint64_t>(g.total_bits()));

    int multibit_words = 0;
    int widest = 0;
    for (const FaultRecord* f : g.members) {
      const int bits = f->flipped_bits();
      if (bits >= 2) ++multibit_words;
      widest = std::max(widest, bits);
    }
    if (multibit_words == 0) {
      ++c.multi_single_groups;
    } else if (multibit_words >= 2) {
      ++c.double_plus_double;
    } else if (widest == 2) {
      ++c.double_plus_single;
    } else if (widest == 3) {
      ++c.triple_plus_single;
    }
  }
  return c;
}

}  // namespace unp::analysis
