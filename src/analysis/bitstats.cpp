#include "analysis/bitstats.hpp"

#include <algorithm>

#include "analysis/sink_state.hpp"

namespace unp::analysis {

namespace {

template <typename Analyzer>
Analyzer drive(FaultView faults) {
  Analyzer analyzer;
  analyzer.begin_faults({});
  for (const auto& f : faults) analyzer.on_fault(f);
  analyzer.end_faults();
  return analyzer;
}

}  // namespace

std::vector<MultibitPattern> multibit_patterns(FaultView faults) {
  return drive<MultibitPatternAnalyzer>(faults).patterns();
}

DirectionStats direction_stats(FaultView faults) {
  return drive<DirectionAnalyzer>(faults).stats();
}

AdjacencyStats adjacency_stats(FaultView faults) {
  return drive<AdjacencyAnalyzer>(faults).stats();
}

NodePatternProfile node_pattern_profile(FaultView faults,
                                        cluster::NodeId node) {
  return drive<NodePatternCensus>(faults).profile(node);
}

void MultibitPatternAnalyzer::begin_faults(const FaultStreamContext& /*ctx*/) {
  census_.clear();
  patterns_.clear();
}

void MultibitPatternAnalyzer::on_fault(const FaultRecord& fault) {
  if (fault.is_multibit()) ++census_[{fault.expected, fault.actual}];
}

std::string MultibitPatternAnalyzer::serialize_state() const {
  state::Writer w('P');
  w.put_u64(census_.size());
  for (const auto& [key, count] : census_) {
    w.put_u64(key.first);
    w.put_u64(key.second);
    w.put_u64(count);
  }
  return std::move(w).take();
}

void MultibitPatternAnalyzer::merge_state(const std::string& blob) {
  state::Reader r(blob, 'P', "MultibitPatternAnalyzer");
  const std::uint64_t entries = r.get_u64();
  for (std::uint64_t i = 0; i < entries; ++i) {
    const auto expected = static_cast<Word>(r.get_u64());
    const auto actual = static_cast<Word>(r.get_u64());
    census_[{expected, actual}] += r.get_u64();
  }
  r.finish();
}

void MultibitPatternAnalyzer::end_faults() {
  patterns_.clear();
  patterns_.reserve(census_.size());
  for (const auto& [key, count] : census_) {
    MultibitPattern p;
    p.expected = key.first;
    p.corrupted = key.second;
    p.bits = flipped_bit_count(p.expected, p.corrupted);
    p.occurrences = count;
    p.consecutive = flipped_bits_adjacent(p.expected ^ p.corrupted);
    patterns_.push_back(p);
  }
  std::sort(patterns_.begin(), patterns_.end(),
            [](const MultibitPattern& a, const MultibitPattern& b) {
              if (a.bits != b.bits) return a.bits < b.bits;
              if (a.occurrences != b.occurrences)
                return a.occurrences < b.occurrences;
              return a.corrupted < b.corrupted;
            });
}

void DirectionAnalyzer::begin_faults(const FaultStreamContext& /*ctx*/) {
  stats_ = DirectionStats{};
}

void DirectionAnalyzer::on_fault(const FaultRecord& fault) {
  stats_.one_to_zero += static_cast<std::uint64_t>(
      std::popcount(one_to_zero_mask(fault.expected, fault.actual)));
  stats_.zero_to_one += static_cast<std::uint64_t>(
      std::popcount(zero_to_one_mask(fault.expected, fault.actual)));
}

std::string DirectionAnalyzer::serialize_state() const {
  state::Writer w('F');
  w.put_u64(stats_.one_to_zero);
  w.put_u64(stats_.zero_to_one);
  return std::move(w).take();
}

void DirectionAnalyzer::merge_state(const std::string& blob) {
  state::Reader r(blob, 'F', "DirectionAnalyzer");
  stats_.one_to_zero += r.get_u64();
  stats_.zero_to_one += r.get_u64();
  r.finish();
}

void AdjacencyAnalyzer::begin_faults(const FaultStreamContext& /*ctx*/) {
  stats_ = AdjacencyStats{};
  distance_sum_ = 0.0;
  distance_count_ = 0;
}

void AdjacencyAnalyzer::on_fault(const FaultRecord& fault) {
  if (!fault.is_multibit()) return;
  ++stats_.multibit_faults;
  const Word mask = fault.flip_mask();
  if (flipped_bits_adjacent(mask)) {
    ++stats_.consecutive;
  } else {
    ++stats_.non_adjacent;
  }
  for (const int gap : flipped_bit_gaps(mask)) {
    distance_sum_ += gap;
    ++distance_count_;
    stats_.max_distance = std::max(stats_.max_distance, gap);
  }
  const int low = std::popcount(mask & Word{0x0000FFFF});
  const int high = std::popcount(mask & Word{0xFFFF0000});
  if (low > high) ++stats_.low_half_majority;
}

void AdjacencyAnalyzer::end_faults() {
  if (distance_count_ > 0) {
    stats_.mean_distance =
        distance_sum_ / static_cast<double>(distance_count_);
  }
}

std::string AdjacencyAnalyzer::serialize_state() const {
  state::Writer w('A');
  w.put_u64(stats_.multibit_faults);
  w.put_u64(stats_.consecutive);
  w.put_u64(stats_.non_adjacent);
  w.put_u64(static_cast<std::uint64_t>(stats_.max_distance));
  w.put_u64(stats_.low_half_majority);
  // Gap distances are small integers, so this double partial sum is exact
  // and order-insensitive across shards.
  w.put_f64(distance_sum_);
  w.put_u64(distance_count_);
  return std::move(w).take();
}

void AdjacencyAnalyzer::merge_state(const std::string& blob) {
  state::Reader r(blob, 'A', "AdjacencyAnalyzer");
  stats_.multibit_faults += r.get_u64();
  stats_.consecutive += r.get_u64();
  stats_.non_adjacent += r.get_u64();
  stats_.max_distance =
      std::max(stats_.max_distance, static_cast<int>(r.get_u64()));
  stats_.low_half_majority += r.get_u64();
  distance_sum_ += r.get_f64();
  distance_count_ += r.get_u64();
  r.finish();
}

void NodePatternCensus::begin_faults(const FaultStreamContext& /*ctx*/) {
  by_node_.clear();
}

void NodePatternCensus::on_fault(const FaultRecord& fault) {
  NodeSets& sets = by_node_[cluster::node_index(fault.node)];
  ++sets.faults;
  sets.addresses.insert(fault.virtual_address);
  sets.patterns.insert(
      {fault.flip_mask(), one_to_zero_mask(fault.expected, fault.actual)});
  sets.masks.insert(fault.flip_mask());
}

std::string NodePatternCensus::serialize_state() const {
  state::Writer w('C');
  w.put_u64(by_node_.size());
  for (const auto& [node, sets] : by_node_) {
    w.put_u64(static_cast<std::uint64_t>(node));
    w.put_u64(sets.faults);
    w.put_u64(sets.addresses.size());
    for (const auto addr : sets.addresses) w.put_u64(addr);
    w.put_u64(sets.patterns.size());
    for (const auto& [mask, direction] : sets.patterns) {
      w.put_u64(mask);
      w.put_u64(direction);
    }
    w.put_u64(sets.masks.size());
    for (const auto mask : sets.masks) w.put_u64(mask);
  }
  return std::move(w).take();
}

void NodePatternCensus::merge_state(const std::string& blob) {
  state::Reader r(blob, 'C', "NodePatternCensus");
  const std::uint64_t node_entries = r.get_u64();
  for (std::uint64_t i = 0; i < node_entries; ++i) {
    NodeSets& sets = by_node_[static_cast<int>(r.get_u64())];
    sets.faults += r.get_u64();
    const std::uint64_t addresses = r.get_u64();
    for (std::uint64_t a = 0; a < addresses; ++a)
      sets.addresses.insert(r.get_u64());
    const std::uint64_t patterns = r.get_u64();
    for (std::uint64_t p = 0; p < patterns; ++p) {
      const auto mask = static_cast<Word>(r.get_u64());
      const auto direction = static_cast<Word>(r.get_u64());
      sets.patterns.insert({mask, direction});
    }
    const std::uint64_t masks = r.get_u64();
    for (std::uint64_t m = 0; m < masks; ++m)
      sets.masks.insert(static_cast<Word>(r.get_u64()));
  }
  r.finish();
}

NodePatternProfile NodePatternCensus::profile(cluster::NodeId node) const {
  NodePatternProfile p;
  const auto it = by_node_.find(cluster::node_index(node));
  if (it == by_node_.end()) return p;
  const NodeSets& sets = it->second;
  p.faults = sets.faults;
  p.distinct_addresses = sets.addresses.size();
  p.distinct_patterns = sets.patterns.size();
  p.single_fixed_bit = p.faults > 0 && sets.masks.size() == 1 &&
                       std::popcount(*sets.masks.begin()) == 1;
  return p;
}

}  // namespace unp::analysis
