#include "analysis/bitstats.hpp"

#include <algorithm>

namespace unp::analysis {

namespace {

template <typename Analyzer>
Analyzer drive(FaultView faults) {
  Analyzer analyzer;
  analyzer.begin_faults({});
  for (const auto& f : faults) analyzer.on_fault(f);
  analyzer.end_faults();
  return analyzer;
}

}  // namespace

std::vector<MultibitPattern> multibit_patterns(FaultView faults) {
  return drive<MultibitPatternAnalyzer>(faults).patterns();
}

DirectionStats direction_stats(FaultView faults) {
  return drive<DirectionAnalyzer>(faults).stats();
}

AdjacencyStats adjacency_stats(FaultView faults) {
  return drive<AdjacencyAnalyzer>(faults).stats();
}

NodePatternProfile node_pattern_profile(FaultView faults,
                                        cluster::NodeId node) {
  return drive<NodePatternCensus>(faults).profile(node);
}

void MultibitPatternAnalyzer::begin_faults(const FaultStreamContext& /*ctx*/) {
  census_.clear();
  patterns_.clear();
}

void MultibitPatternAnalyzer::on_fault(const FaultRecord& fault) {
  if (fault.is_multibit()) ++census_[{fault.expected, fault.actual}];
}

void MultibitPatternAnalyzer::end_faults() {
  patterns_.clear();
  patterns_.reserve(census_.size());
  for (const auto& [key, count] : census_) {
    MultibitPattern p;
    p.expected = key.first;
    p.corrupted = key.second;
    p.bits = flipped_bit_count(p.expected, p.corrupted);
    p.occurrences = count;
    p.consecutive = flipped_bits_adjacent(p.expected ^ p.corrupted);
    patterns_.push_back(p);
  }
  std::sort(patterns_.begin(), patterns_.end(),
            [](const MultibitPattern& a, const MultibitPattern& b) {
              if (a.bits != b.bits) return a.bits < b.bits;
              if (a.occurrences != b.occurrences)
                return a.occurrences < b.occurrences;
              return a.corrupted < b.corrupted;
            });
}

void DirectionAnalyzer::begin_faults(const FaultStreamContext& /*ctx*/) {
  stats_ = DirectionStats{};
}

void DirectionAnalyzer::on_fault(const FaultRecord& fault) {
  stats_.one_to_zero += static_cast<std::uint64_t>(
      std::popcount(one_to_zero_mask(fault.expected, fault.actual)));
  stats_.zero_to_one += static_cast<std::uint64_t>(
      std::popcount(zero_to_one_mask(fault.expected, fault.actual)));
}

void AdjacencyAnalyzer::begin_faults(const FaultStreamContext& /*ctx*/) {
  stats_ = AdjacencyStats{};
  distance_sum_ = 0.0;
  distance_count_ = 0;
}

void AdjacencyAnalyzer::on_fault(const FaultRecord& fault) {
  if (!fault.is_multibit()) return;
  ++stats_.multibit_faults;
  const Word mask = fault.flip_mask();
  if (flipped_bits_adjacent(mask)) {
    ++stats_.consecutive;
  } else {
    ++stats_.non_adjacent;
  }
  for (const int gap : flipped_bit_gaps(mask)) {
    distance_sum_ += gap;
    ++distance_count_;
    stats_.max_distance = std::max(stats_.max_distance, gap);
  }
  const int low = std::popcount(mask & Word{0x0000FFFF});
  const int high = std::popcount(mask & Word{0xFFFF0000});
  if (low > high) ++stats_.low_half_majority;
}

void AdjacencyAnalyzer::end_faults() {
  if (distance_count_ > 0) {
    stats_.mean_distance =
        distance_sum_ / static_cast<double>(distance_count_);
  }
}

void NodePatternCensus::begin_faults(const FaultStreamContext& /*ctx*/) {
  by_node_.clear();
}

void NodePatternCensus::on_fault(const FaultRecord& fault) {
  NodeSets& sets = by_node_[cluster::node_index(fault.node)];
  ++sets.faults;
  sets.addresses.insert(fault.virtual_address);
  sets.patterns.insert(
      {fault.flip_mask(), one_to_zero_mask(fault.expected, fault.actual)});
  sets.masks.insert(fault.flip_mask());
}

NodePatternProfile NodePatternCensus::profile(cluster::NodeId node) const {
  NodePatternProfile p;
  const auto it = by_node_.find(cluster::node_index(node));
  if (it == by_node_.end()) return p;
  const NodeSets& sets = it->second;
  p.faults = sets.faults;
  p.distinct_addresses = sets.addresses.size();
  p.distinct_patterns = sets.patterns.size();
  p.single_fixed_bit = p.faults > 0 && sets.masks.size() == 1 &&
                       std::popcount(*sets.masks.begin()) == 1;
  return p;
}

}  // namespace unp::analysis
