#include "analysis/bitstats.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace unp::analysis {

std::vector<MultibitPattern> multibit_patterns(
    const std::vector<FaultRecord>& faults) {
  std::map<std::pair<Word, Word>, std::uint64_t> census;
  for (const auto& f : faults) {
    if (f.is_multibit()) ++census[{f.expected, f.actual}];
  }
  std::vector<MultibitPattern> out;
  out.reserve(census.size());
  for (const auto& [key, count] : census) {
    MultibitPattern p;
    p.expected = key.first;
    p.corrupted = key.second;
    p.bits = flipped_bit_count(p.expected, p.corrupted);
    p.occurrences = count;
    p.consecutive = flipped_bits_adjacent(p.expected ^ p.corrupted);
    out.push_back(p);
  }
  std::sort(out.begin(), out.end(),
            [](const MultibitPattern& a, const MultibitPattern& b) {
              if (a.bits != b.bits) return a.bits < b.bits;
              if (a.occurrences != b.occurrences)
                return a.occurrences < b.occurrences;
              return a.corrupted < b.corrupted;
            });
  return out;
}

DirectionStats direction_stats(const std::vector<FaultRecord>& faults) {
  DirectionStats s;
  for (const auto& f : faults) {
    s.one_to_zero += static_cast<std::uint64_t>(
        std::popcount(one_to_zero_mask(f.expected, f.actual)));
    s.zero_to_one += static_cast<std::uint64_t>(
        std::popcount(zero_to_one_mask(f.expected, f.actual)));
  }
  return s;
}

AdjacencyStats adjacency_stats(const std::vector<FaultRecord>& faults) {
  AdjacencyStats s;
  double distance_sum = 0.0;
  std::uint64_t distance_count = 0;
  for (const auto& f : faults) {
    if (!f.is_multibit()) continue;
    ++s.multibit_faults;
    const Word mask = f.flip_mask();
    if (flipped_bits_adjacent(mask)) {
      ++s.consecutive;
    } else {
      ++s.non_adjacent;
    }
    for (const int gap : flipped_bit_gaps(mask)) {
      distance_sum += gap;
      ++distance_count;
      s.max_distance = std::max(s.max_distance, gap);
    }
    const int low = std::popcount(mask & Word{0x0000FFFF});
    const int high = std::popcount(mask & Word{0xFFFF0000});
    if (low > high) ++s.low_half_majority;
  }
  if (distance_count > 0) {
    s.mean_distance = distance_sum / static_cast<double>(distance_count);
  }
  return s;
}

NodePatternProfile node_pattern_profile(const std::vector<FaultRecord>& faults,
                                        cluster::NodeId node) {
  NodePatternProfile p;
  std::set<std::uint64_t> addresses;
  std::set<std::pair<Word, Word>> patterns;  // (flip mask, 1->0 mask)
  std::set<Word> masks;
  for (const auto& f : faults) {
    if (!(f.node == node)) continue;
    ++p.faults;
    addresses.insert(f.virtual_address);
    patterns.insert({f.flip_mask(), one_to_zero_mask(f.expected, f.actual)});
    masks.insert(f.flip_mask());
  }
  p.distinct_addresses = addresses.size();
  p.distinct_patterns = patterns.size();
  p.single_fixed_bit =
      p.faults > 0 && masks.size() == 1 && std::popcount(*masks.begin()) == 1;
  return p;
}

}  // namespace unp::analysis
