#include "env/neutron.hpp"

#include <cmath>

namespace unp::env {

double NeutronFluxModel::altitude_factor() const noexcept {
  return std::exp(config_.site.altitude_m / config_.altitude_efold_m);
}

double NeutronFluxModel::flux(TimePoint t) const noexcept {
  const double elev_deg = solar_elevation_deg(t, config_.site);
  const double solar = elev_deg > 0.0
                           ? std::sin(elev_deg * 3.14159265358979323846 / 180.0)
                           : 0.0;
  return altitude_factor() * (1.0 + config_.solar_amplitude * solar);
}

double NeutronFluxModel::mean_flux_over_day(TimePoint t0, int steps) const noexcept {
  if (steps <= 0) steps = 1;
  double sum = 0.0;
  const double dt = static_cast<double>(kSecondsPerDay) / steps;
  for (int i = 0; i < steps; ++i) {
    sum += flux(t0 + static_cast<TimePoint>((static_cast<double>(i) + 0.5) * dt));
  }
  return sum / steps;
}

}  // namespace unp::env
