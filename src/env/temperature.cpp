#include "env/temperature.hpp"

#include <cmath>

namespace unp::env {

namespace {
constexpr double kPi = 3.14159265358979323846;
}

double TemperatureModel::room_c(TimePoint t) const noexcept {
  const double mid = 0.5 * (config_.room_min_c + config_.room_max_c);
  const double amp = 0.5 * (config_.room_max_c - config_.room_min_c);
  // Diurnal swing, warmest mid-afternoon (phase ~15:00 local; use UTC+1 as a
  // fixed approximation since only the envelope matters).
  std::int64_t sec = (t + kSecondsPerHour) % kSecondsPerDay;
  if (sec < 0) sec += kSecondsPerDay;
  const double hour = static_cast<double>(sec) / kSecondsPerHour;
  return mid + amp * 0.85 * std::sin((hour - 9.0) / 24.0 * 2.0 * kPi);
}

double TemperatureModel::node_idle_delta_c(std::uint32_t node_id) const noexcept {
  // One deterministic draw per node: derive a private stream from the node id
  // so the offset is stable across the campaign.
  RngStream rng(config_.seed, /*stream_id=*/0x7e3a, node_id);
  double delta = rng.normal(config_.idle_delta_mean_c, config_.idle_delta_sigma_c);
  if (delta < 4.0) delta = 4.0;  // a powered node is never at room temperature
  return delta;
}

double TemperatureModel::sample_node_c(TimePoint t, std::uint32_t node_id,
                                       bool overheating,
                                       RngStream& rng) const noexcept {
  return sample_with_idle_delta_c(t, node_idle_delta_c(node_id), overheating,
                                  rng);
}

double TemperatureModel::sample_with_idle_delta_c(TimePoint t,
                                                  double idle_delta_c,
                                                  bool overheating,
                                                  RngStream& rng) const noexcept {
  double temp = room_c(t) + idle_delta_c;
  if (overheating) temp += config_.overheat_delta_c;
  temp += rng.normal(0.0, config_.sensor_noise_c);
  return temp;
}

}  // namespace unp::env
