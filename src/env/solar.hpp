// Solar geometry over the machine's site.
//
// Section III-E of the paper correlates multi-bit error frequency with the
// position of the sun in the sky (noon peak, day/night factor of ~2) and
// attributes the effect to atmospheric neutron showers.  The fault engine
// therefore needs the sun's elevation for any campaign timestamp.
//
// Implementation: the NOAA Solar Position Algorithm (the spreadsheet-grade
// approximation, accurate to well under a degree over 2015-2016), computed
// from the Julian date in UTC.
#pragma once

#include "common/civil_time.hpp"

namespace unp::env {

/// Geographic site of the prototype (Section II-A: Barcelona, ~100 m a.s.l.).
struct Site {
  double latitude_deg = 41.3851;
  double longitude_deg = 2.1734;  ///< east positive
  double altitude_m = 100.0;
};

constexpr Site kBarcelona{};

/// Julian date (days) of a UTC instant.
[[nodiscard]] double julian_date(TimePoint t) noexcept;

/// Solar declination (degrees) at a UTC instant.
[[nodiscard]] double solar_declination_deg(TimePoint t) noexcept;

/// Equation of time (minutes) at a UTC instant.
[[nodiscard]] double equation_of_time_minutes(TimePoint t) noexcept;

/// Solar elevation angle in degrees above the horizon (negative at night)
/// at UTC instant `t` for the given site.
[[nodiscard]] double solar_elevation_deg(TimePoint t, const Site& site = kBarcelona) noexcept;

/// True solar time in hours [0, 24) — solar noon is exactly 12.0.
[[nodiscard]] double true_solar_time_hours(TimePoint t, const Site& site = kBarcelona) noexcept;

/// True when the sun is above the horizon at `t`.
[[nodiscard]] bool is_daytime(TimePoint t, const Site& site = kBarcelona) noexcept;

}  // namespace unp::env
