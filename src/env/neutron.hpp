// Atmospheric-neutron flux model.
//
// The paper attributes multi-bit and multi-word simultaneous corruption to
// cosmic-ray neutron showers, with a diurnal signature: roughly twice as many
// multi-bit errors between 07:00 and 18:00 as at night, peaking when the sun
// is highest (Fig 6).  We model the *relative* flux seen by the machine as
//
//     flux(t) = altitude_factor(h) * (1 + amplitude * max(0, sin(elevation)))
//
// i.e. a baseline galactic component plus a solar-modulated component that
// follows the sine of the sun's elevation.  `amplitude` is calibrated so the
// integrated day (07-18 h) to night count ratio is ~2, as observed.
//
// The altitude factor uses the standard exponential atmospheric-depth scaling
// (flux roughly doubles every kAltitudeEFold * ln 2 metres); Barcelona's
// ~100 m gives a factor close to 1, but the model is exposed so the
// "what would this look like at altitude" extension experiments can reuse it.
#pragma once

#include "common/civil_time.hpp"
#include "env/solar.hpp"

namespace unp::env {

class NeutronFluxModel {
 public:
  struct Config {
    Site site = kBarcelona;
    /// Peak-solar multiplier on top of the galactic baseline.  3.0 gives a
    /// ~2x day/night integrated ratio at Barcelona's latitude.
    double solar_amplitude = 3.0;
    /// e-folding length (m) of the atmospheric neutron attenuation.
    double altitude_efold_m = 1900.0;
  };

  NeutronFluxModel() = default;
  explicit NeutronFluxModel(const Config& config) : config_(config) {}

  /// Relative flux at instant `t`; 1.0 is the sea-level night baseline.
  [[nodiscard]] double flux(TimePoint t) const noexcept;

  /// Altitude scaling relative to sea level.
  [[nodiscard]] double altitude_factor() const noexcept;

  /// Mean of `flux` over one 24 h period starting at `t0` (trapezoid over
  /// `steps` samples).  Used to convert a desired daily event count into the
  /// baseline Poisson rate.
  [[nodiscard]] double mean_flux_over_day(TimePoint t0, int steps = 288) const noexcept;

  [[nodiscard]] const Config& config() const noexcept { return config_; }

 private:
  Config config_{};
};

}  // namespace unp::env
