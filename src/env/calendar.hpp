// Academic-calendar utilization model.
//
// The scanner only runs while a node is idle (between jobs), so the amount of
// memory scanned per day mirrors the *complement* of cluster utilization.
// Section III-G observes intense scanning in August, September and December
// (academic vacations) and less from April to July (end of the academic
// year).  This model produces a daily expected utilization in [0, 1] from
// month-of-year base levels, a weekend dip, and smooth day-to-day noise.
#pragma once

#include <cstdint>

#include "common/civil_time.hpp"

namespace unp::env {

class AcademicCalendar {
 public:
  struct Config {
    /// Base utilization per calendar month (index 0 = January).
    /// Calibrated so vacations (Aug/Sep/Dec) leave most nodes idle.
    double month_utilization[12] = {
        0.55,  // Jan
        0.55,  // Feb
        0.60,  // Mar
        0.72,  // Apr  } end of academic year:
        0.75,  // May  }   heavy use, little idle time
        0.78,  // Jun  }
        0.70,  // Jul  }
        0.28,  // Aug  vacation: mostly idle
        0.35,  // Sep  vacation tail
        0.55,  // Oct
        0.60,  // Nov
        0.30,  // Dec  winter break
    };
    /// Multiplier applied to weekend utilization.
    double weekend_factor = 0.55;
    /// Amplitude of the deterministic day-to-day wobble.
    double wobble = 0.10;
    std::uint64_t seed = 1;
  };

  AcademicCalendar() : AcademicCalendar(Config{}) {}
  explicit AcademicCalendar(const Config& config) : config_(config) {}

  /// Expected fraction of nodes occupied by jobs during local day `t` falls
  /// in.  Always within [0.02, 0.98].
  [[nodiscard]] double utilization(TimePoint t) const noexcept;

  /// The same utilization keyed directly by local calendar day (the value is
  /// a pure function of the day; `utilization(t)` is exactly
  /// `day_utilization(BarcelonaClock::local_day_index(t))`).
  [[nodiscard]] double day_utilization(std::int64_t local_day) const noexcept;

  /// Convenience: expected idle fraction (what the scanner can use).
  [[nodiscard]] double idle_fraction(TimePoint t) const noexcept {
    return 1.0 - utilization(t);
  }

  [[nodiscard]] const Config& config() const noexcept { return config_; }

 private:
  Config config_;
};

/// Memoizing view over AcademicCalendar::utilization for callers that query
/// it many times per day (the scan planner asks once per busy/idle cycle).
/// Each utilization(t) is a pure function of t's local calendar day, so the
/// cursor resolves the day once, caches the exact UTC span of that day, and
/// answers every further query inside the span with a pair of comparisons —
/// skipping the civil-time conversions and the per-day wobble draw.  Values
/// are bit-identical to the uncached path by construction.
class UtilizationCursor {
 public:
  explicit UtilizationCursor(const AcademicCalendar& calendar) noexcept
      : calendar_(&calendar) {}

  [[nodiscard]] double utilization(TimePoint t) noexcept;

 private:
  const AcademicCalendar* calendar_;
  TimePoint lo_ = 0;  ///< cached span [lo_, hi_); empty until first query
  TimePoint hi_ = 0;
  double value_ = 0.0;
};

}  // namespace unp::env
