#include "env/solar.hpp"

#include <algorithm>
#include <cmath>

namespace unp::env {

namespace {
constexpr double kPi = 3.14159265358979323846;
constexpr double deg2rad(double d) noexcept { return d * kPi / 180.0; }
constexpr double rad2deg(double r) noexcept { return r * 180.0 / kPi; }

/// Julian centuries since J2000.0.
double julian_century(double jd) noexcept { return (jd - 2451545.0) / 36525.0; }

struct SolarAngles {
  double declination_deg;
  double eot_minutes;
};

/// NOAA solar-position core: declination and equation of time.
SolarAngles noaa_angles(double jd) noexcept {
  const double t = julian_century(jd);

  const double geom_mean_long =
      std::fmod(280.46646 + t * (36000.76983 + t * 0.0003032), 360.0);
  const double geom_mean_anom = 357.52911 + t * (35999.05029 - 0.0001537 * t);
  const double eccent = 0.016708634 - t * (0.000042037 + 0.0000001267 * t);

  const double m_rad = deg2rad(geom_mean_anom);
  const double eq_of_center =
      std::sin(m_rad) * (1.914602 - t * (0.004817 + 0.000014 * t)) +
      std::sin(2.0 * m_rad) * (0.019993 - 0.000101 * t) +
      std::sin(3.0 * m_rad) * 0.000289;

  const double true_long = geom_mean_long + eq_of_center;
  const double omega = 125.04 - 1934.136 * t;
  const double apparent_long =
      true_long - 0.00569 - 0.00478 * std::sin(deg2rad(omega));

  const double mean_obliq =
      23.0 + (26.0 + (21.448 - t * (46.815 + t * (0.00059 - t * 0.001813))) / 60.0) / 60.0;
  const double obliq_corr = mean_obliq + 0.00256 * std::cos(deg2rad(omega));

  const double decl = rad2deg(std::asin(std::sin(deg2rad(obliq_corr)) *
                                        std::sin(deg2rad(apparent_long))));

  const double var_y = std::tan(deg2rad(obliq_corr / 2.0)) *
                       std::tan(deg2rad(obliq_corr / 2.0));
  const double l_rad = deg2rad(geom_mean_long);
  const double eot_rad =
      var_y * std::sin(2.0 * l_rad) - 2.0 * eccent * std::sin(m_rad) +
      4.0 * eccent * var_y * std::sin(m_rad) * std::cos(2.0 * l_rad) -
      0.5 * var_y * var_y * std::sin(4.0 * l_rad) -
      1.25 * eccent * eccent * std::sin(2.0 * m_rad);
  const double eot_minutes = 4.0 * rad2deg(eot_rad);

  return {decl, eot_minutes};
}
}  // namespace

double julian_date(TimePoint t) noexcept {
  // Unix epoch = JD 2440587.5.
  return 2440587.5 + static_cast<double>(t) / static_cast<double>(kSecondsPerDay);
}

double solar_declination_deg(TimePoint t) noexcept {
  return noaa_angles(julian_date(t)).declination_deg;
}

double equation_of_time_minutes(TimePoint t) noexcept {
  return noaa_angles(julian_date(t)).eot_minutes;
}

double true_solar_time_hours(TimePoint t, const Site& site) noexcept {
  const SolarAngles a = noaa_angles(julian_date(t));
  std::int64_t sec_of_day = t % kSecondsPerDay;
  if (sec_of_day < 0) sec_of_day += kSecondsPerDay;
  const double utc_minutes = static_cast<double>(sec_of_day) / 60.0;
  // True solar time = UTC clock + equation of time + longitude correction.
  double tst_minutes =
      utc_minutes + a.eot_minutes + 4.0 * site.longitude_deg;
  tst_minutes = std::fmod(tst_minutes, 1440.0);
  if (tst_minutes < 0.0) tst_minutes += 1440.0;
  return tst_minutes / 60.0;
}

double solar_elevation_deg(TimePoint t, const Site& site) noexcept {
  const SolarAngles a = noaa_angles(julian_date(t));
  const double tst_hours = true_solar_time_hours(t, site);
  // Hour angle: 0 at solar noon, +/-180 at solar midnight.
  const double hour_angle_deg = tst_hours * 15.0 - 180.0;

  const double lat = deg2rad(site.latitude_deg);
  const double decl = deg2rad(a.declination_deg);
  const double ha = deg2rad(hour_angle_deg);

  const double cos_zenith = std::sin(lat) * std::sin(decl) +
                            std::cos(lat) * std::cos(decl) * std::cos(ha);
  const double zenith = std::acos(std::clamp(cos_zenith, -1.0, 1.0));
  return 90.0 - rad2deg(zenith);
}

bool is_daytime(TimePoint t, const Site& site) noexcept {
  return solar_elevation_deg(t, site) > 0.0;
}

}  // namespace unp::env
