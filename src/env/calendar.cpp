#include "env/calendar.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"

namespace unp::env {

double AcademicCalendar::utilization(TimePoint t) const noexcept {
  const std::int64_t day = BarcelonaClock::local_day_index(t);
  const CivilDateTime local = BarcelonaClock::to_local(t);

  double u = config_.month_utilization[local.month - 1];

  const int wd = weekday_from_days(day);
  if (wd == 0 || wd == 6) u *= config_.weekend_factor;

  // Deterministic per-day wobble so daily series are not perfectly smooth.
  RngStream rng(config_.seed, /*stream_id=*/0xCA1E,
                static_cast<std::uint64_t>(day));
  u += config_.wobble * (2.0 * rng.uniform() - 1.0);

  return std::clamp(u, 0.02, 0.98);
}

}  // namespace unp::env
