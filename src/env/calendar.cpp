#include "env/calendar.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"

namespace unp::env {

double AcademicCalendar::utilization(TimePoint t) const noexcept {
  return day_utilization(BarcelonaClock::local_day_index(t));
}

double AcademicCalendar::day_utilization(std::int64_t local_day) const noexcept {
  const CivilDateTime local = civil_from_days(local_day);

  double u = config_.month_utilization[local.month - 1];

  const int wd = weekday_from_days(local_day);
  if (wd == 0 || wd == 6) u *= config_.weekend_factor;

  // Deterministic per-day wobble so daily series are not perfectly smooth.
  RngStream rng(config_.seed, /*stream_id=*/0xCA1E,
                static_cast<std::uint64_t>(local_day));
  u += config_.wobble * (2.0 * rng.uniform() - 1.0);

  return std::clamp(u, 0.02, 0.98);
}

double UtilizationCursor::utilization(TimePoint t) noexcept {
  if (t >= lo_ && t < hi_) return value_;

  const std::int64_t day = BarcelonaClock::local_day_index(t);
  value_ = calendar_->day_utilization(day);

  // UTC instant where a given local day begins.  Local midnight is never
  // skipped or repeated by the Madrid DST rule (transitions happen at
  // 02:00/03:00 local), so the boundary b solves b + utc_offset(b) ==
  // day*86400 exactly; iterate the offset to its fixed point.
  const auto day_start_utc = [](std::int64_t d, TimePoint near) noexcept {
    TimePoint guess = d * kSecondsPerDay - BarcelonaClock::utc_offset(near);
    for (int i = 0; i < 4; ++i) {
      const TimePoint next = d * kSecondsPerDay - BarcelonaClock::utc_offset(guess);
      if (next == guess) break;
      guess = next;
    }
    return guess;
  };
  lo_ = day_start_utc(day, t);
  hi_ = day_start_utc(day + 1, t);
  // The cached span must agree with the uncached mapping at both edges; if
  // it ever did not, drop the span and answer every query via the exact
  // path.  (Defensive: the fixed point above converges for this tz rule.)
  if (BarcelonaClock::local_day_index(lo_) != day ||
      BarcelonaClock::local_day_index(hi_ - 1) != day ||
      BarcelonaClock::local_day_index(hi_) != day + 1) {
    lo_ = 0;
    hi_ = 0;
  }
  return value_;
}

}  // namespace unp::env
