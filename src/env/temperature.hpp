// Node-temperature model.
//
// Section III-F: the machine room was held between 18 and 26 degC; idle nodes
// running only the scanner sit around 30-40 degC; the SoC-12 column of each
// blade overheats because of its rack position (eventually shut down by the
// admins); and a small tail of error logs recorded >60 degC.
//
// The model composes:
//   room(t)      - slow sinusoid inside [18, 26] degC (diurnal HVAC swing)
//   idle delta   - per-node offset drawn once per node (silicon/slot spread)
//   position     - extra heating for overheating slots (SoC 12)
//   noise        - sensor jitter
//
// Temperatures enter the telemetry records; per the paper, sensors only came
// online in April 2015, which the telemetry layer reflects by omitting the
// reading before that date.
#pragma once

#include <cstdint>

#include "common/civil_time.hpp"
#include "common/rng.hpp"

namespace unp::env {

class TemperatureModel {
 public:
  struct Config {
    double room_min_c = 18.0;
    double room_max_c = 26.0;
    /// Mean idle temperature rise of a scanning node above room temperature.
    double idle_delta_mean_c = 12.0;
    /// Node-to-node 1-sigma spread of the idle delta.
    double idle_delta_sigma_c = 2.5;
    /// Additional rise for overheating slots (the SoC-12 column).
    double overheat_delta_c = 28.0;
    /// Instantaneous sensor noise (1 sigma).
    double sensor_noise_c = 1.2;
    /// Seed for the per-node offset table.
    std::uint64_t seed = 1;
  };

  TemperatureModel() : TemperatureModel(Config{}) {}
  explicit TemperatureModel(const Config& config) : config_(config) {}

  /// Machine-room temperature at `t`, inside [room_min, room_max].
  [[nodiscard]] double room_c(TimePoint t) const noexcept;

  /// Deterministic per-node idle offset above room temperature.
  [[nodiscard]] double node_idle_delta_c(std::uint32_t node_id) const noexcept;

  /// Sampled node temperature at `t`; `overheating` selects the hot-slot
  /// profile; `rng` supplies the sensor-noise draw.
  [[nodiscard]] double sample_node_c(TimePoint t, std::uint32_t node_id,
                                     bool overheating, RngStream& rng) const noexcept;

  /// Same sample with the node's idle delta already resolved.  The delta is
  /// a pure function of the node id, so per-node loops hoist the
  /// node_idle_delta_c draw (a fresh keyed stream plus a polar-method
  /// normal) out of the per-record path; values are bit-identical.
  [[nodiscard]] double sample_with_idle_delta_c(TimePoint t, double idle_delta_c,
                                                bool overheating,
                                                RngStream& rng) const noexcept;

  [[nodiscard]] const Config& config() const noexcept { return config_; }

 private:
  Config config_;
};

}  // namespace unp::env
