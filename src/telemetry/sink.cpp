#include "telemetry/sink.hpp"

#include "telemetry/archive.hpp"
#include "telemetry/binary_codec.hpp"

namespace unp::telemetry {

void replay_node_log(const NodeLog& log, RecordSink& sink) {
  for (const auto& r : log.starts()) sink.on_start(r);
  for (const auto& r : log.ends()) sink.on_end(r);
  for (const auto& r : log.alloc_fails()) sink.on_alloc_fail(r);
  for (const auto& r : log.error_runs()) sink.on_error_run(r);
}

void RecordSink::on_node_log(EncodedNodeLog& log) {
  replay_node_log(log.log(), *this);
}

const std::string& EncodedNodeLog::bytes() {
  if (!encoded_) {
    scratch_->clear();
    encode_node_log_into(*log_, *scratch_, *kernels_, arena_);
    encoded_ = true;
  }
  return *scratch_;
}

bool EncodedNodeLog::empty() const noexcept { return log_->empty(); }

}  // namespace unp::telemetry
