#include "telemetry/sink.hpp"

#include "telemetry/archive.hpp"

namespace unp::telemetry {

void replay_node_log(const NodeLog& log, RecordSink& sink) {
  for (const auto& r : log.starts()) sink.on_start(r);
  for (const auto& r : log.ends()) sink.on_end(r);
  for (const auto& r : log.alloc_fails()) sink.on_alloc_fail(r);
  for (const auto& r : log.error_runs()) sink.on_error_run(r);
}

}  // namespace unp::telemetry
