// Streaming record consumers.
//
// The campaign is inherently a stream: 923 node timelines, each producing
// START/END/ALLOC-FAIL/ERROR records in time order, flowing into whatever
// wants them — the in-memory CampaignArchive, an on-disk spill file, or an
// incremental analysis.  RecordSink is that consumer interface; producers
// (sim::run_campaign, ArchiveReader) push records through it node by node
// so no stage needs the whole 13-month archive resident.
//
// Protocol (per producer pass):
//
//   begin_campaign(window)
//   for each node in ascending node_index order:
//     begin_node(id)
//     on_start* on_end* on_alloc_fail* on_error_run*   (each class in time order)
//     end_node(id)
//   end_campaign()
//
// Producers guarantee deterministic ordering: nodes ascend by index and each
// record class is emitted in time order, so any sink sees a bit-reproducible
// stream for a given campaign seed regardless of producer thread count.
//
// Two further guarantees matter to stateful consumers (the streaming
// extractor, the policy engine in src/policy):
//
//   - exactly one begin_node/end_node frame per monitored node per pass —
//     a node's whole timeline arrives contiguously, never interleaved with
//     another node's, so per-node controller state can be finalized at
//     end_node();
//   - the stream is *node-ordered*, not globally time-ordered: records of a
//     later node may predate records of an earlier one.  Controllers that
//     need fleet-wide time order (e.g. cross-node day accounting) must
//     either keep per-node clocks or defer the merge to end_campaign().
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/civil_time.hpp"
#include "telemetry/record.hpp"

namespace unp::telemetry {

class NodeLog;
class RecordSink;

namespace kernels {
struct EncodeKernels;
}  // namespace kernels

/// Reusable scratch for the encode hot path: gather buffers the batch
/// kernels read from.  One arena per producer thread; capacity persists
/// across node logs so steady-state encoding allocates nothing.
struct EncodeArena {
  std::vector<std::uint64_t> scratch;
};

/// A node's whole log plus its (lazily produced) UNPA body encoding.
///
/// The bulk streaming path hands one of these per node to sinks instead of
/// replaying records one virtual call at a time.  Byte-oriented sinks
/// (ArchiveWriter) splice `bytes()` straight into their frame — the body is
/// encoded exactly once per node, in the producer worker when the driver
/// pre-encodes, and never re-encoded per sink.  Record-oriented sinks
/// (CampaignArchive, extractors) read `log()` and never pay for encoding:
/// `bytes()` only encodes on first call.
class EncodedNodeLog {
 public:
  /// `scratch` is caller-owned storage for the encoded body (an arena slot
  /// reused across nodes); `pre_encoded` asserts it already holds exactly
  /// the body for `log` under `kernels`.
  EncodedNodeLog(cluster::NodeId node, const NodeLog& log, std::string& scratch,
                 const kernels::EncodeKernels& kernels,
                 EncodeArena* arena = nullptr, bool pre_encoded = false) noexcept
      : node_(node),
        log_(&log),
        scratch_(&scratch),
        kernels_(&kernels),
        arena_(arena),
        encoded_(pre_encoded) {}

  [[nodiscard]] cluster::NodeId node() const noexcept { return node_; }
  [[nodiscard]] const NodeLog& log() const noexcept { return *log_; }

  /// The UNPA node-log body (encode_node_log bytes).  Encodes on first call,
  /// then returns the cached bytes.
  [[nodiscard]] const std::string& bytes();

  /// True when the log holds no records (its encoded body would still be the
  /// four zero section counts, but writers skip the frame entirely).
  [[nodiscard]] bool empty() const noexcept;

 private:
  cluster::NodeId node_;
  const NodeLog* log_;
  std::string* scratch_;
  const kernels::EncodeKernels* kernels_;
  EncodeArena* arena_;
  bool encoded_;
};

/// Consumer of a campaign record stream.
class RecordSink {
 public:
  virtual ~RecordSink() = default;

  /// Stream framing; default no-ops so simple sinks only handle records.
  virtual void begin_campaign(const CampaignWindow& /*window*/) {}
  virtual void begin_node(cluster::NodeId /*node*/) {}
  virtual void end_node(cluster::NodeId /*node*/) {}
  virtual void end_campaign() {}

  virtual void on_start(const StartRecord& r) = 0;
  virtual void on_end(const EndRecord& r) = 0;
  virtual void on_alloc_fail(const AllocFailRecord& r) = 0;
  virtual void on_error_run(const ErrorRun& r) = 0;

  /// Bulk path: the producer may deliver a node's whole log between
  /// begin_node and end_node as one call instead of per-record ones.  The
  /// default replays the log through the per-record interface, so existing
  /// sinks see an identical stream; byte-oriented sinks override this (and
  /// wants_encoded_node_log) to consume the encoded body directly.
  virtual void on_node_log(EncodedNodeLog& log);

  /// True when this sink consumes `bytes()` of bulk node logs — a hint that
  /// lets producers pre-encode bodies in parallel workers.
  [[nodiscard]] virtual bool wants_encoded_node_log() const { return false; }
};

/// Broadcast one stream to several sinks (archive + spill file + extractor
/// in a single producer pass).  Does not own the sinks.
class FanOutSink final : public RecordSink {
 public:
  FanOutSink() = default;
  void add(RecordSink& sink) { sinks_.push_back(&sink); }

  void begin_campaign(const CampaignWindow& window) override {
    for (auto* s : sinks_) s->begin_campaign(window);
  }
  void begin_node(cluster::NodeId node) override {
    for (auto* s : sinks_) s->begin_node(node);
  }
  void end_node(cluster::NodeId node) override {
    for (auto* s : sinks_) s->end_node(node);
  }
  void end_campaign() override {
    for (auto* s : sinks_) s->end_campaign();
  }
  void on_start(const StartRecord& r) override {
    for (auto* s : sinks_) s->on_start(r);
  }
  void on_end(const EndRecord& r) override {
    for (auto* s : sinks_) s->on_end(r);
  }
  void on_alloc_fail(const AllocFailRecord& r) override {
    for (auto* s : sinks_) s->on_alloc_fail(r);
  }
  void on_error_run(const ErrorRun& r) override {
    for (auto* s : sinks_) s->on_error_run(r);
  }
  void on_node_log(EncodedNodeLog& log) override {
    for (auto* s : sinks_) s->on_node_log(log);
  }
  [[nodiscard]] bool wants_encoded_node_log() const override {
    for (const auto* s : sinks_)
      if (s->wants_encoded_node_log()) return true;
    return false;
  }

 private:
  std::vector<RecordSink*> sinks_;
};

/// Push every record of `log` through `sink` in the canonical class order
/// (starts, ends, alloc-fails, error runs; each in stored order).  Does NOT
/// emit begin_node/end_node — the caller owns the framing.
void replay_node_log(const NodeLog& log, RecordSink& sink);

}  // namespace unp::telemetry
