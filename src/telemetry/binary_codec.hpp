// Compact binary serialization of telemetry.
//
// The text codec is the human-facing format; a 13-month campaign archive
// serialized as text runs to hundreds of MB.  The binary codec stores the
// same records with varint + delta encoding (timestamps are monotone within
// a record class, addresses cluster) so whole-campaign archives round-trip
// through a few MB and load in milliseconds.
//
// Format (little-endian, varint = LEB128):
//
//   file   := magic "UNPA" u8 version payload
//   payload:= varint node_count { varint node_index node_log } *
//   node_log := section(START) section(END) section(ALLOCFAIL) section(RUNS)
//   section := varint count { record } *
//
// Timestamps are delta-encoded within each section; temperatures are raw
// f64 bits (kNoTemperature encodes the missing reading, as in the structs).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "common/require.hpp"
#include "telemetry/archive.hpp"

namespace unp::telemetry {

/// Typed decode failure carrying the byte offset where the input stopped
/// making sense.  Derives from ContractViolation so existing recovery sites
/// (the bench cache's fall-back-to-simulation path) keep working, while
/// front ends can report "corrupt input at byte N" instead of a bare
/// contract trace.  `detail()` is the message without the offset suffix.
class DecodeError : public ContractViolation {
 public:
  DecodeError(const std::string& detail, std::uint64_t byte_offset)
      : ContractViolation(detail + " at byte " + std::to_string(byte_offset)),
        detail_(detail),
        byte_offset_(byte_offset) {}

  [[nodiscard]] const std::string& detail() const noexcept { return detail_; }
  [[nodiscard]] std::uint64_t byte_offset() const noexcept { return byte_offset_; }

 private:
  std::string detail_;
  std::uint64_t byte_offset_;
};

/// Append a LEB128 varint to `out` (exposed for tests).
void put_varint(std::string& out, std::uint64_t value);

/// Read a LEB128 varint; throws DecodeError on truncation, on an encoding
/// longer than 10 bytes, and on a 10-byte encoding whose final group carries
/// bits beyond the 64th (a silent-overflow input no canonical encoder emits).
/// Takes a view so decoders can run directly over mmap-backed store bytes.
[[nodiscard]] std::uint64_t get_varint(std::string_view in, std::size_t& pos);

/// Raw little-endian f64 bits (used by derived formats such as the bench
/// campaign cache that need to serialize doubles exactly).
void put_f64(std::string& out, double value);
[[nodiscard]] double get_f64(std::string_view in, std::size_t& pos);

/// ZigZag signed mapping (for timestamp deltas which may regress across
/// merged sources).
[[nodiscard]] constexpr std::uint64_t zigzag_encode(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}
[[nodiscard]] constexpr std::int64_t zigzag_decode(std::uint64_t v) noexcept {
  return static_cast<std::int64_t>(v >> 1) ^ -static_cast<std::int64_t>(v & 1);
}

namespace kernels {
struct EncodeKernels;
}  // namespace kernels

/// Tight upper bound on encode_node_log's output size, from record counts
/// alone (every field is at most a 10-byte varint or a 9-byte temperature).
/// Buffers reserved to this bound never reallocate mid-encode — asserted by
/// the encode growth counter in debug tests.
[[nodiscard]] std::size_t node_log_encoded_bound(const NodeLog& log) noexcept;

/// Serialize one node log (without the node index framing).
[[nodiscard]] std::string encode_node_log(const NodeLog& log);

/// Append encode_node_log's bytes to `out` using an explicit kernel set —
/// the hot-path form: the caller reuses `out` (and optionally `arena`, which
/// enables the batched ALLOCFAIL timestamp encode) across nodes.  Output is
/// byte-identical for every kernel set.
void encode_node_log_into(const NodeLog& log, std::string& out,
                          const kernels::EncodeKernels& kernels,
                          EncodeArena* arena = nullptr);

/// Inverse of encode_node_log.
[[nodiscard]] NodeLog decode_node_log(const std::string& bytes, std::size_t& pos,
                                      cluster::NodeId node);

/// Serialize a whole campaign archive.
[[nodiscard]] std::string encode_archive(const CampaignArchive& archive);

/// Parse an encoded archive; throws DecodeError on malformed input.
[[nodiscard]] CampaignArchive decode_archive(const std::string& bytes);

/// Convenience file I/O (binary mode).  Throws ContractViolation on I/O or
/// format errors.
void save_archive(const CampaignArchive& archive, const std::string& path);
[[nodiscard]] CampaignArchive load_archive(const std::string& path);

}  // namespace unp::telemetry
