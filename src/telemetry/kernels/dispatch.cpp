// Runtime dispatch for the encode kernel sets, plus the growth-counting
// append choke point and the VarintWriter spill path.  ISA resolution
// (cpuid/HWCAP plus the UNP_KERNEL override) lives in common/simd_dispatch
// and is shared with the scanner and store kernels, so one process-wide
// decision governs all three families.
#include "telemetry/kernels/kernel_table.hpp"

#include <atomic>

#include "common/require.hpp"

namespace unp::telemetry::kernels {

namespace {

std::atomic<std::uint64_t> g_growth_count{0};

}  // namespace

void kernel_append(std::string& out, const char* data, std::size_t size) {
  if (out.size() + size > out.capacity())
    g_growth_count.fetch_add(1, std::memory_order_relaxed);
  out.append(data, size);
}

std::uint64_t encode_growth_count() noexcept {
  return g_growth_count.load(std::memory_order_relaxed);
}

void reset_encode_growth_count() noexcept {
  g_growth_count.store(0, std::memory_order_relaxed);
}

void VarintWriter::f64(double value) {
  ensure(8);
  std::uint64_t bits;
  std::memcpy(&bits, &value, sizeof bits);
  // LSB-first byte order, matching put_f64/get_f64 on any host endianness.
  for (int i = 0; i < 8; ++i)
    buffer_[used_++] = static_cast<char>((bits >> (8 * i)) & 0xFF);
}

void VarintWriter::flush() {
  if (used_ == 0) return;
  kernel_append(*out_, buffer_, used_);
  used_ = 0;
}

const EncodeKernels& encode_kernels_for(Isa isa) {
  UNP_REQUIRE(simd::is_supported(isa));
  switch (isa) {
    case Isa::kScalar:
      return scalar_encode_kernel_set();
#if defined(__x86_64__) || defined(_M_X64)
    case Isa::kSse2:
      return sse2_encode_kernel_set();
    case Isa::kAvx2:
      return avx2_encode_kernel_set();
#endif
#if defined(__aarch64__)
    case Isa::kNeon:
      return neon_encode_kernel_set();
#endif
    default:
      return scalar_encode_kernel_set();  // unreachable past the UNP_REQUIRE
  }
}

const EncodeKernels& active_encode_kernels() {
  static const EncodeKernels& active = encode_kernels_for(simd::active_isa());
  return active;
}

}  // namespace unp::telemetry::kernels
