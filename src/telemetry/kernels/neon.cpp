// NEON-tier encode kernels (AArch64).  NEON is baseline on AArch64, so like
// the SSE2 tier the win over the scalar oracle is the branch-free SWAR
// expansion path; the compiler vectorizes the packed-run loops.
#if defined(__aarch64__)

#include "telemetry/kernels/kernel_table.hpp"

namespace unp::telemetry::kernels {
namespace {

std::size_t encode_varint_neon(std::uint64_t value, char* dst) {
  return value < (std::uint64_t{1} << 56)
             ? encode_small_varint_swar(value, dst)
             : encode_varint_scalar(value, dst);
}

void encode_varints_neon(const std::uint64_t* values, std::size_t count,
                         std::string& out) {
  encode_varints_blocked<encode_small_varint_swar>(values, count, out);
}

void encode_zigzag_deltas_neon(const std::uint64_t* values, std::size_t count,
                               std::uint64_t base, std::string& out) {
  encode_zigzag_deltas_blocked<encode_small_varint_swar>(values, count, base,
                                                         out);
}

}  // namespace

const EncodeKernels& neon_encode_kernel_set() noexcept {
  static constexpr EncodeKernels kSet{
      Isa::kNeon,
      "neon",
      encode_varint_neon,
      encode_varints_neon,
      encode_zigzag_deltas_neon,
  };
  return kSet;
}

}  // namespace unp::telemetry::kernels

#endif  // aarch64
