// SIMD batched encode kernels for the telemetry hot path.
//
// Campaign generation spends its producer time in the inverse of the store's
// decode loops: LEB128 varint *encoding* of record fields and zigzag-delta
// timestamp/address runs, one byte-at-a-time push_back per group in the
// original put_varint loop.  This module lifts that loop into per-ISA kernel
// sets mirroring src/store/kernels (scalar / sse2 / avx2 / neon) under the
// same resolution machinery (common/simd_dispatch): one process-wide ISA
// decision, the same UNP_KERNEL override, the same fallback warnings.
//
// The encode fast path is the decoder's pext trick run backwards: a value
// of at most 56 significant bits has length ceil(bit_width / 7), its payload
// spreads into 7-bit groups with one pdep (AVX2 tier, -mbmi2) or three SWAR
// expansion steps (sse2/neon tiers), and the continuation bits are a single
// mask OR'd in — one unaligned 8-byte store instead of up to eight
// data-dependent push_backs.  Values needing 9-10 bytes take the scalar
// loop.  Because the fast path emits exactly the canonical LEB128 group
// sequence, every tier's output is byte-identical to put_varint BY
// CONSTRUCTION — the scalar set IS the put_varint loop, and the vector sets
// produce the same bytes faster.  Batch kernels additionally pack runs of
// eight single-byte values with one 8-byte store.
//
// All kernel appends funnel through kernel_append, which counts destination
// reallocation into a process-wide debug counter so tests can assert that
// pre-sized encode buffers (node_log_encoded_bound, segment bounds) never
// grow mid-encode.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/simd_dispatch.hpp"

namespace unp::telemetry::kernels {

/// Shared ISA vocabulary (detection, UNP_KERNEL, active_isa latch).
using Isa = simd::Isa;

/// Encode one LEB128 varint at `dst` and return its length (1..10 bytes).
/// `dst` must have at least 16 writable bytes: the fast path stores a full
/// 8-byte block and lets the next value overwrite the slack.
using EncodeVarintFn = std::size_t (*)(std::uint64_t value, char* dst);

/// Append `count` LEB128 varints to `out` (byte-identical to a put_varint
/// loop over the same values).
using EncodeVarintsFn = void (*)(const std::uint64_t* values, std::size_t count,
                                 std::string& out);

/// Fused delta+zigzag+varint encode of a run: append, for each i,
/// varint(zigzag(values[i] - prev)) with prev starting at `base`, in
/// wraparound u64 arithmetic — the same bits as the signed
/// zigzag_encode(int64 delta) the scalar writers computed.  This is the
/// encoder of the UNPA/UNPS timestamp sections and the UNPF first_seen /
/// address columns.
using EncodeZigzagDeltasFn = void (*)(const std::uint64_t* values,
                                      std::size_t count, std::uint64_t base,
                                      std::string& out);

/// One ISA's encode kernel set.  All sets emit byte-identical output; only
/// throughput differs.
struct EncodeKernels {
  Isa isa = Isa::kScalar;
  const char* name = "scalar";
  EncodeVarintFn encode_varint = nullptr;
  EncodeVarintsFn encode_varints = nullptr;
  EncodeZigzagDeltasFn encode_zigzag_deltas = nullptr;
};

/// Kernel set for `isa`; requires simd::is_supported(isa).
[[nodiscard]] const EncodeKernels& encode_kernels_for(Isa isa);

/// The process-wide set: resolved once alongside the scanner's and the
/// store's from cpuid/HWCAP and the UNP_KERNEL override.
[[nodiscard]] const EncodeKernels& active_encode_kernels();

/// Append through the growth-counting choke point: bumps the debug counter
/// when the append must reallocate `out`.  Every kernel byte lands here.
void kernel_append(std::string& out, const char* data, std::size_t size);

/// Number of kernel_append calls that reallocated their destination since
/// the last reset.  Debug instrumentation for the pre-sizing contract
/// (buffers reserved from node_log_encoded_bound must never grow).
[[nodiscard]] std::uint64_t encode_growth_count() noexcept;
void reset_encode_growth_count() noexcept;

/// Block-buffered single-value writer for interleaved sections (the UNPA
/// record codec mixes timestamps, varint fields, and raw f64 temperature
/// bytes per record, so batch kernels cannot run; this writer gives those
/// sections the branch-free encode_varint fast path plus one append per
/// ~half-KiB block instead of one push_back per byte).  Call flush() (or
/// destroy the writer) before touching `out` directly.
class VarintWriter {
 public:
  VarintWriter(std::string& out, const EncodeKernels& kernels) noexcept
      : out_(&out), kernels_(&kernels) {}
  VarintWriter(const VarintWriter&) = delete;
  VarintWriter& operator=(const VarintWriter&) = delete;
  ~VarintWriter() { flush(); }

  void varint(std::uint64_t value) {
    ensure(10);
    used_ += kernels_->encode_varint(value, buffer_ + used_);
  }
  void byte(char c) {
    ensure(1);
    buffer_[used_++] = c;
  }
  void f64(double value);

  /// Spill the buffered bytes to the destination string.
  void flush();

 private:
  void ensure(std::size_t need) {
    if (kBuffer - used_ < need + 8) flush();
  }

  static constexpr std::size_t kBuffer = 512;
  std::string* out_;
  const EncodeKernels* kernels_;
  std::size_t used_ = 0;
  char buffer_[kBuffer + 16];
};

}  // namespace unp::telemetry::kernels
