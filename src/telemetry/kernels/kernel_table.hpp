// Internal: the per-ISA encode kernel set objects and the shared encode
// building blocks.  Each ISA translation unit defines its set behind an
// architecture guard; the dispatcher links only the ones the target
// architecture can express (runtime support is a separate cpuid/HWCAP
// question answered by simd::is_supported()).
#pragma once

#include <bit>
#include <cstring>

#if defined(__BMI2__)
#include <immintrin.h>
#endif

#include "telemetry/kernels/kernels.hpp"

namespace unp::telemetry::kernels {

// Accessor functions (not extern const objects): cross-TU data references
// from a static archive need text relocations under a PIE link, calls don't.
[[nodiscard]] const EncodeKernels& scalar_encode_kernel_set() noexcept;

#if defined(__x86_64__) || defined(_M_X64)
[[nodiscard]] const EncodeKernels& sse2_encode_kernel_set() noexcept;
[[nodiscard]] const EncodeKernels& avx2_encode_kernel_set() noexcept;
#endif

#if defined(__aarch64__)
[[nodiscard]] const EncodeKernels& neon_encode_kernel_set() noexcept;
#endif

// Scalar building block the vector TUs reuse for oversized values.
// encode_varint_scalar IS put_varint's byte loop, so it defines the byte
// output every other path must reproduce.
[[nodiscard]] std::size_t encode_varint_scalar(std::uint64_t value, char* dst);

/// Canonical LEB128 length: one 7-bit group per byte, final group nonzero.
[[nodiscard]] inline int varint_length(std::uint64_t v) noexcept {
  return v < 0x80 ? 1 : (static_cast<int>(std::bit_width(v)) + 6) / 7;
}

/// zigzag_encode in wraparound u64 arithmetic: the same bits as the signed
/// form without the signed-overflow UB an accumulating loop would risk.
[[nodiscard]] inline std::uint64_t zigzag_u64(std::uint64_t d) noexcept {
  return (d << 1) ^ (std::uint64_t{0} - (d >> 63));
}

/// Spread the low 56 bits of `v` into 7-bit groups, one per byte — the
/// exact inverse of the decoder's three SWAR compaction steps
/// (store/kernels/kernel_table.hpp), run in reverse order.
[[nodiscard]] inline std::uint64_t expand7(std::uint64_t v) noexcept {
  v = ((v & 0x00FFFFFFF0000000ull) << 4) | (v & 0x000000000FFFFFFFull);
  v = ((v & 0x0FFFC0000FFFC000ull) << 2) | (v & 0x00003FFF00003FFFull);
  v = ((v & 0x3F803F803F803F80ull) << 1) | (v & 0x007F007F007F007Full);
  return v;
}

/// Continuation bits for a `len`-byte encoding (1 <= len <= 8): 0x80 on
/// every byte but the last.  len == 8 keeps the shift in range (>> 0).
[[nodiscard]] inline std::uint64_t continuation_mask(int len) noexcept {
  return 0x0080808080808080ull >> (8 * (8 - len));
}

/// Encode a value of at most 8 encoded bytes (v < 2^56) as one expand +
/// mask-OR + unaligned 8-byte store.  `dst` needs 8 writable bytes; the
/// slack past the returned length is overwritten by the next value.
[[nodiscard]] inline std::size_t encode_small_varint_swar(std::uint64_t v,
                                                          char* dst) noexcept {
  const int len = varint_length(v);
  const std::uint64_t block = expand7(v) | continuation_mask(len);
  std::memcpy(dst, &block, 8);
  return static_cast<std::size_t>(len);
}

#if defined(__BMI2__)
/// pdep deposits the payload bits straight into the 7-bit group positions:
/// the single-instruction inverse of the decoder's pext compaction.
[[nodiscard]] inline std::size_t encode_small_varint_pdep(std::uint64_t v,
                                                          char* dst) noexcept {
  const int len = varint_length(v);
  const std::uint64_t block =
      _pdep_u64(v, 0x7f7f7f7f7f7f7f7full) | continuation_mask(len);
  std::memcpy(dst, &block, 8);
  return static_cast<std::size_t>(len);
}
#endif

inline constexpr std::size_t kEncodeBlock = 512;

/// Shared batch skeleton: encode into a stack block, spill through
/// kernel_append.  `EncodeOne` is the per-value fast path (pdep or SWAR);
/// runs of eight single-byte values short-circuit to one packed store, and
/// 9-10 byte values funnel through the scalar loop.
template <std::size_t (*EncodeOne)(std::uint64_t, char*) noexcept>
inline void encode_varints_blocked(const std::uint64_t* values,
                                   std::size_t count, std::string& out) {
  char buffer[kEncodeBlock + 16];
  std::size_t used = 0;
  std::size_t i = 0;
  while (i < count) {
    if (used > kEncodeBlock - 16) {
      kernel_append(out, buffer, used);
      used = 0;
    }
    if (count - i >= 8) {
      std::uint64_t any = 0;
      for (int j = 0; j < 8; ++j) any |= values[i + static_cast<std::size_t>(j)];
      if (any < 0x80) {
        std::uint64_t packed = 0;
        for (int j = 0; j < 8; ++j)
          packed |= values[i + static_cast<std::size_t>(j)] << (8 * j);
        std::memcpy(buffer + used, &packed, 8);
        used += 8;
        i += 8;
        continue;
      }
    }
    const std::uint64_t v = values[i++];
    used += v < (std::uint64_t{1} << 56) ? EncodeOne(v, buffer + used)
                                         : encode_varint_scalar(v, buffer + used);
  }
  if (used != 0) kernel_append(out, buffer, used);
}

template <std::size_t (*EncodeOne)(std::uint64_t, char*) noexcept>
inline void encode_zigzag_deltas_blocked(const std::uint64_t* values,
                                         std::size_t count, std::uint64_t base,
                                         std::string& out) {
  char buffer[kEncodeBlock + 16];
  std::size_t used = 0;
  std::uint64_t prev = base;
  std::size_t i = 0;
  while (i < count) {
    if (used > kEncodeBlock - 16) {
      kernel_append(out, buffer, used);
      used = 0;
    }
    if (count - i >= 8) {
      // Eight consecutive small deltas (|delta| < 64 after zigzag) pack to
      // one store — the dominant shape of timestamp runs.
      std::uint64_t zz[8];
      std::uint64_t any = 0;
      std::uint64_t p = prev;
      for (int j = 0; j < 8; ++j) {
        const std::uint64_t v = values[i + static_cast<std::size_t>(j)];
        zz[j] = zigzag_u64(v - p);
        any |= zz[j];
        p = v;
      }
      if (any < 0x80) {
        std::uint64_t packed = 0;
        for (int j = 0; j < 8; ++j) packed |= zz[j] << (8 * j);
        std::memcpy(buffer + used, &packed, 8);
        used += 8;
        i += 8;
        prev = p;
        continue;
      }
    }
    const std::uint64_t v = values[i++];
    const std::uint64_t zz = zigzag_u64(v - prev);
    prev = v;
    used += zz < (std::uint64_t{1} << 56)
                ? EncodeOne(zz, buffer + used)
                : encode_varint_scalar(zz, buffer + used);
  }
  if (used != 0) kernel_append(out, buffer, used);
}

}  // namespace unp::telemetry::kernels
