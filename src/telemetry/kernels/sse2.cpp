// SSE2-baseline encode kernels (x86-64).  No flag needed: SSE2 is part of
// the x86-64 baseline, so this TU's differentiator over the scalar oracle
// is the branch-free SWAR expansion — length from bit_width, three shift
// steps spreading the payload into 7-bit groups, one masked 8-byte store —
// where the scalar loop takes a data-dependent branch per output byte.
#if defined(__x86_64__) || defined(_M_X64)

#include "telemetry/kernels/kernel_table.hpp"

namespace unp::telemetry::kernels {
namespace {

std::size_t encode_varint_sse2(std::uint64_t value, char* dst) {
  return value < (std::uint64_t{1} << 56)
             ? encode_small_varint_swar(value, dst)
             : encode_varint_scalar(value, dst);
}

void encode_varints_sse2(const std::uint64_t* values, std::size_t count,
                         std::string& out) {
  encode_varints_blocked<encode_small_varint_swar>(values, count, out);
}

void encode_zigzag_deltas_sse2(const std::uint64_t* values, std::size_t count,
                               std::uint64_t base, std::string& out) {
  encode_zigzag_deltas_blocked<encode_small_varint_swar>(values, count, base,
                                                         out);
}

}  // namespace

const EncodeKernels& sse2_encode_kernel_set() noexcept {
  static constexpr EncodeKernels kSet{
      Isa::kSse2,
      "sse2",
      encode_varint_sse2,
      encode_varints_sse2,
      encode_zigzag_deltas_sse2,
  };
  return kSet;
}

}  // namespace unp::telemetry::kernels

#endif  // x86-64
