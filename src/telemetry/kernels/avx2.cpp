// AVX2/BMI2 encode kernels.  Compiled with -mavx2 -mbmi2 (see CMakeLists)
// and reached only through the dispatcher's runtime cpuid check, which
// requires both feature bits for Isa::kAvx2.
//
// The per-value fast path is one pdep depositing the payload into the
// 7-bit group positions — the exact inverse of the store decoder's pext
// compaction.  The batch kernels also vectorize the all-small detection:
// a 256-bit load of four u64 lanes ORs down to one scalar test per half
// block, keeping the packed-run check off the dependent path.
#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include "telemetry/kernels/kernel_table.hpp"

namespace unp::telemetry::kernels {
namespace {

std::size_t encode_varint_avx2(std::uint64_t value, char* dst) {
  return value < (std::uint64_t{1} << 56)
             ? encode_small_varint_pdep(value, dst)
             : encode_varint_scalar(value, dst);
}

/// OR-reduce 8 u64 values with two 256-bit loads.
inline std::uint64_t or8(const std::uint64_t* v) noexcept {
  const __m256i lo = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v));
  const __m256i hi =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + 4));
  const __m256i o = _mm256_or_si256(lo, hi);
  const __m128i q =
      _mm_or_si128(_mm256_castsi256_si128(o), _mm256_extracti128_si256(o, 1));
  return static_cast<std::uint64_t>(
      _mm_cvtsi128_si64(_mm_or_si128(q, _mm_unpackhi_epi64(q, q))));
}

void encode_varints_avx2(const std::uint64_t* values, std::size_t count,
                         std::string& out) {
  char buffer[kEncodeBlock + 16];
  std::size_t used = 0;
  std::size_t i = 0;
  while (i < count) {
    if (used > kEncodeBlock - 16) {
      kernel_append(out, buffer, used);
      used = 0;
    }
    if (count - i >= 8 && or8(values + i) < 0x80) {
      std::uint64_t packed = 0;
      for (int j = 0; j < 8; ++j)
        packed |= values[i + static_cast<std::size_t>(j)] << (8 * j);
      std::memcpy(buffer + used, &packed, 8);
      used += 8;
      i += 8;
      continue;
    }
    const std::uint64_t v = values[i++];
    used += v < (std::uint64_t{1} << 56)
                ? encode_small_varint_pdep(v, buffer + used)
                : encode_varint_scalar(v, buffer + used);
  }
  if (used != 0) kernel_append(out, buffer, used);
}

void encode_zigzag_deltas_avx2(const std::uint64_t* values, std::size_t count,
                               std::uint64_t base, std::string& out) {
  encode_zigzag_deltas_blocked<encode_small_varint_pdep>(values, count, base,
                                                         out);
}

}  // namespace

const EncodeKernels& avx2_encode_kernel_set() noexcept {
  static constexpr EncodeKernels kSet{
      Isa::kAvx2,
      "avx2",
      encode_varint_avx2,
      encode_varints_avx2,
      encode_zigzag_deltas_avx2,
  };
  return kSet;
}

}  // namespace unp::telemetry::kernels

#endif  // x86-64
