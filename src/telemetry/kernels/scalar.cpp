// Scalar encode kernels: the portable correctness oracle.
//
// encode_varint_scalar is put_varint's loop writing into a caller buffer —
// deliberately, so the canonical LEB128 byte sequence is defined in exactly
// one place and every vector path is measured against it.  The batch forms
// run that loop per value and spill through kernel_append, so the growth
// counter sees the same traffic on every ISA.
#include "telemetry/kernels/kernel_table.hpp"

namespace unp::telemetry::kernels {

std::size_t encode_varint_scalar(std::uint64_t value, char* dst) {
  std::size_t n = 0;
  while (value >= 0x80) {
    dst[n++] = static_cast<char>((value & 0x7F) | 0x80);
    value >>= 7;
  }
  dst[n++] = static_cast<char>(value);
  return n;
}

namespace {

void encode_varints_scalar(const std::uint64_t* values, std::size_t count,
                           std::string& out) {
  char buffer[kEncodeBlock + 16];
  std::size_t used = 0;
  for (std::size_t i = 0; i < count; ++i) {
    if (used > kEncodeBlock - 16) {
      kernel_append(out, buffer, used);
      used = 0;
    }
    used += encode_varint_scalar(values[i], buffer + used);
  }
  if (used != 0) kernel_append(out, buffer, used);
}

void encode_zigzag_deltas_scalar(const std::uint64_t* values, std::size_t count,
                                 std::uint64_t base, std::string& out) {
  char buffer[kEncodeBlock + 16];
  std::size_t used = 0;
  std::uint64_t prev = base;
  for (std::size_t i = 0; i < count; ++i) {
    if (used > kEncodeBlock - 16) {
      kernel_append(out, buffer, used);
      used = 0;
    }
    used += encode_varint_scalar(zigzag_u64(values[i] - prev), buffer + used);
    prev = values[i];
  }
  if (used != 0) kernel_append(out, buffer, used);
}

}  // namespace

const EncodeKernels& scalar_encode_kernel_set() noexcept {
  static constexpr EncodeKernels kSet{
      Isa::kScalar,
      "scalar",
      encode_varint_scalar,
      encode_varints_scalar,
      encode_zigzag_deltas_scalar,
  };
  return kSet;
}

}  // namespace unp::telemetry::kernels
