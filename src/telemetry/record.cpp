#include "telemetry/record.hpp"

namespace unp::telemetry {

std::vector<ErrorRecord> ErrorRun::expand() const {
  std::vector<ErrorRecord> out;
  out.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    ErrorRecord r = first;
    r.time = first.time + period_s * static_cast<std::int64_t>(i);
    out.push_back(r);
  }
  return out;
}

}  // namespace unp::telemetry
