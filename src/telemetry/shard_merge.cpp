#include "telemetry/shard_merge.hpp"

#include <algorithm>
#include <cstring>
#include <ostream>

#include "common/require.hpp"
#include "telemetry/binary_codec.hpp"

namespace unp::telemetry {

namespace {

// The UNPS stream constants, mirrored from archive_io.cpp (the framing is
// that file's contract; the merge re-emits it verbatim).
constexpr char kStreamMagic[4] = {'U', 'N', 'P', 'S'};
constexpr std::uint8_t kStreamVersion = 1;
constexpr std::uint64_t kEndFrame =
    static_cast<std::uint64_t>(cluster::kStudyNodeSlots);

void write_varint(std::ostream& os, std::uint64_t value) {
  std::string buf;
  put_varint(buf, value);
  os.write(buf.data(), static_cast<std::streamsize>(buf.size()));
  UNP_REQUIRE(os.good());
}

std::uint64_t stream_offset(std::istream& is) {
  const std::streamoff off = is.rdstate() ? -1 : std::streamoff(is.tellg());
  return off < 0 ? 0 : static_cast<std::uint64_t>(off);
}

std::uint64_t read_varint_at(std::istream& is, std::uint64_t start) {
  std::uint64_t value = 0;
  int shift = 0;
  for (;;) {
    const int c = is.get();
    if (c == std::char_traits<char>::eof())
      throw DecodeError("truncated varint", start);
    if (shift >= 64)
      throw DecodeError("varint overflow (> 10 bytes)", start);
    if (shift == 63 && (c & 0x7E) != 0)
      throw DecodeError("varint overflow (bits beyond 64)", start);
    value |= static_cast<std::uint64_t>(c & 0x7F) << shift;
    if ((c & 0x80) == 0) return value;
    shift += 7;
  }
}

std::string read_exact_at(std::istream& is, std::uint64_t size,
                          std::uint64_t start) {
  std::string body(size, '\0');
  is.read(body.data(), static_cast<std::streamsize>(size));
  if (static_cast<std::uint64_t>(is.gcount()) != size)
    throw DecodeError("truncated block (wanted " + std::to_string(size) +
                          " bytes, got " + std::to_string(is.gcount()) + ")",
                      start);
  return body;
}

}  // namespace

void write_shard_header(std::ostream& os, const ShardHeader& header) {
  UNP_REQUIRE(header.shard_count >= 1);
  UNP_REQUIRE(header.shard_index < header.shard_count);
  os.write(kShardMagic, sizeof kShardMagic);
  os.put(static_cast<char>(kShardVersion));
  write_varint(os, header.shard_count);
  write_varint(os, header.shard_index);
  for (int i = 0; i < 8; ++i)
    os.put(static_cast<char>((header.fingerprint >> (8 * i)) & 0xFF));
  UNP_REQUIRE(os.good());
}

ShardHeader read_shard_header(std::istream& is) {
  char magic[sizeof kShardMagic];
  is.read(magic, sizeof magic);
  if (static_cast<std::size_t>(is.gcount()) != sizeof magic)
    throw DecodeError("truncated shard header", 0);
  if (std::memcmp(magic, kShardMagic, sizeof kShardMagic) != 0)
    throw DecodeError("bad UNPH magic", 0);
  const int version = is.get();
  if (version != kShardVersion)
    throw DecodeError("unsupported UNPH version " + std::to_string(version),
                      sizeof kShardMagic);
  ShardHeader header;
  std::uint64_t offset = stream_offset(is);
  const std::uint64_t count = read_varint_at(is, offset);
  offset = stream_offset(is);
  const std::uint64_t index = read_varint_at(is, offset);
  if (count < 1 || count > 1u << 20)
    throw DecodeError("shard count out of range", offset);
  if (index >= count)
    throw DecodeError("shard index " + std::to_string(index) +
                          " out of range for count " + std::to_string(count),
                      offset);
  header.shard_count = static_cast<std::uint32_t>(count);
  header.shard_index = static_cast<std::uint32_t>(index);
  offset = stream_offset(is);
  header.fingerprint = 0;
  for (int i = 0; i < 8; ++i) {
    const int c = is.get();
    if (c == std::char_traits<char>::eof())
      throw DecodeError("truncated shard fingerprint", offset);
    header.fingerprint |= static_cast<std::uint64_t>(c & 0xFF) << (8 * i);
  }
  return header;
}

void ShardMergeReader::open_shards(const std::vector<std::string>& paths) {
  UNP_REQUIRE(!paths.empty());
  shards_.resize(paths.size());
  std::vector<bool> seen(paths.size(), false);
  for (const auto& path : paths) {
    std::ifstream file(path, std::ios::binary);
    if (!file.good())
      throw ContractViolation("cannot open shard archive " + path);
    ShardHeader header;
    CampaignWindow window;
    try {
      header = read_shard_header(file);
      // UNPS payload header (magic, version, window), via ArchiveReader's
      // own parser so the two formats cannot drift.
      char magic[sizeof kStreamMagic];
      file.read(magic, sizeof magic);
      if (static_cast<std::size_t>(file.gcount()) != sizeof magic)
        throw DecodeError("truncated UNPS header", stream_offset(file));
      if (std::memcmp(magic, kStreamMagic, sizeof kStreamMagic) != 0)
        throw DecodeError("bad UNPS magic in shard payload",
                          stream_offset(file));
      const int version = file.get();
      if (version != kStreamVersion)
        throw DecodeError("unsupported UNPS version " + std::to_string(version),
                          stream_offset(file));
      window.start = zigzag_decode(read_varint_at(file, stream_offset(file)));
      window.end = zigzag_decode(read_varint_at(file, stream_offset(file)));
    } catch (const DecodeError& e) {
      throw DecodeError("shard archive " + path + ": " + e.detail(),
                        e.byte_offset());
    }
    if (header.shard_count != paths.size())
      throw ContractViolation(
          "shard archive " + path + " declares " +
          std::to_string(header.shard_count) + " shards, got " +
          std::to_string(paths.size()) + " files");
    const std::size_t idx = header.shard_index;
    if (seen[idx])
      throw ContractViolation("duplicate shard index " + std::to_string(idx) +
                              " (" + path + ")");
    seen[idx] = true;
    Shard& shard = shards_[idx];
    shard.path = path;
    shard.file = std::move(file);
    shard.header = header;
    shard.window = window;
    shard.offset = stream_offset(shard.file);
  }
  // Every index 0..K-1 seen exactly once (count/file-count equality above
  // makes this a completeness check), and all self-descriptions agree.
  for (const auto& shard : shards_) {
    if (shard.header.fingerprint != shards_[0].header.fingerprint)
      throw ContractViolation("shard fingerprint mismatch in " + shard.path);
    if (shard.window.start != shards_[0].window.start ||
        shard.window.end != shards_[0].window.end)
      throw ContractViolation("shard campaign window mismatch in " +
                              shard.path);
  }
  window_ = shards_[0].window;
  fingerprint_ = shards_[0].header.fingerprint;
}

ShardMergeReader::ShardMergeReader(const std::vector<std::string>& paths) {
  open_shards(paths);
  for (auto& shard : shards_) fill_head(shard);
}

ShardMergeReader::ShardMergeReader(const std::vector<std::string>& paths,
                                   const std::vector<ShardCursor>& cursors) {
  open_shards(paths);
  UNP_REQUIRE(cursors.size() == shards_.size());
  for (const auto& cursor : cursors) {
    UNP_REQUIRE(cursor.shard_index < shards_.size());
    Shard& shard = shards_[cursor.shard_index];
    UNP_REQUIRE(cursor.byte_offset >= shard.offset);
    shard.file.seekg(static_cast<std::streamoff>(cursor.byte_offset));
    if (!shard.file.good())
      throw ContractViolation("cannot seek shard " +
                              std::to_string(cursor.shard_index) + " to byte " +
                              std::to_string(cursor.byte_offset));
    shard.offset = cursor.byte_offset;
    shard.frames_read = cursor.frames_read;
  }
  for (auto& shard : shards_) fill_head(shard);
}

void ShardMergeReader::fill_head(Shard& shard) {
  if (shard.has_head || shard.done) return;
  const std::uint64_t start = shard.offset;
  const auto rethrow = [&](const DecodeError& e) {
    throw DecodeError("shard " + std::to_string(shard.header.shard_index) +
                          ": " + e.detail(),
                      e.byte_offset());
  };
  try {
    const std::uint64_t index = read_varint_at(shard.file, start);
    if (index == kEndFrame) {
      const std::uint64_t declared =
          read_varint_at(shard.file, stream_offset(shard.file));
      if (declared != shard.frames_read)
        throw DecodeError("frame count mismatch (declared " +
                              std::to_string(declared) + ", read " +
                              std::to_string(shard.frames_read) + ")",
                          start);
      shard.done = true;
      shard.end_offset = start;
      shard.offset = stream_offset(shard.file);
      return;
    }
    if (index > kEndFrame)
      throw DecodeError("node index out of range", start);
    const std::uint64_t size =
        read_varint_at(shard.file, stream_offset(shard.file));
    const std::uint64_t body_start = stream_offset(shard.file);
    shard.head_body = read_exact_at(shard.file, size, body_start);
    shard.head_index = index;
    shard.head_offset = start;
    shard.has_head = true;
    shard.offset = stream_offset(shard.file);
  } catch (const DecodeError& e) {
    rethrow(e);
  }
}

ShardMergeReader::Shard* ShardMergeReader::min_head() {
  Shard* best = nullptr;
  for (auto& shard : shards_) {
    if (!shard.has_head) continue;
    if (best == nullptr || shard.head_index < best->head_index) {
      best = &shard;
    } else if (shard.head_index == best->head_index) {
      throw DecodeError(
          "node frame " + std::to_string(shard.head_index) +
              " appears in shard " +
              std::to_string(best->header.shard_index) + " and shard " +
              std::to_string(shard.header.shard_index) +
              " (overlapping partition)",
          shard.head_offset);
    }
  }
  return best;
}

bool ShardMergeReader::next_raw(std::uint64_t& node_index, std::string& body) {
  Shard* shard = min_head();
  if (shard == nullptr) return false;
  node_index = shard->head_index;
  body = std::move(shard->head_body);
  shard->head_body.clear();
  shard->has_head = false;
  ++shard->frames_read;
  ++merged_;
  fill_head(*shard);
  return true;
}

bool ShardMergeReader::next(cluster::NodeId& node, NodeLog& log) {
  Shard* shard = min_head();
  if (shard == nullptr) return false;
  const std::uint64_t index = shard->head_index;
  node = cluster::node_from_index(static_cast<int>(index));
  std::size_t pos = 0;
  try {
    log = decode_node_log(shard->head_body, pos, node);
    if (pos != shard->head_body.size())
      throw DecodeError("node frame body size mismatch", pos);
  } catch (const DecodeError& e) {
    // Re-anchor the body-relative offset to the shard file position.
    throw DecodeError("shard " + std::to_string(shard->header.shard_index) +
                          ": node frame for " + cluster::node_name(node) +
                          ": " + e.detail(),
                      shard->head_offset + e.byte_offset());
  }
  shard->head_body.clear();
  shard->has_head = false;
  ++shard->frames_read;
  ++merged_;
  fill_head(*shard);
  return true;
}

void ShardMergeReader::drain(RecordSink& sink) {
  sink.begin_campaign(window_);
  cluster::NodeId node;
  NodeLog log;
  while (next(node, log)) {
    sink.begin_node(node);
    replay_node_log(log, sink);
    sink.end_node(node);
  }
  sink.end_campaign();
}

std::vector<ShardCursor> ShardMergeReader::cursors() const {
  std::vector<ShardCursor> result;
  result.reserve(shards_.size());
  for (const auto& shard : shards_) {
    ShardCursor cursor;
    cursor.shard_index = shard.header.shard_index;
    cursor.byte_offset = shard.has_head ? shard.head_offset
                         : shard.done   ? shard.end_offset
                                        : shard.offset;
    cursor.frames_read = shard.frames_read;
    result.push_back(cursor);
  }
  return result;
}

void merge_shard_archives(const std::vector<std::string>& paths,
                          std::ostream& os) {
  ShardMergeReader reader(paths);
  os.write(kStreamMagic, sizeof kStreamMagic);
  os.put(static_cast<char>(kStreamVersion));
  write_varint(os, zigzag_encode(reader.window().start));
  write_varint(os, zigzag_encode(reader.window().end));
  std::uint64_t node_index = 0;
  std::string body;
  std::uint64_t frames = 0;
  while (reader.next_raw(node_index, body)) {
    write_varint(os, node_index);
    write_varint(os, body.size());
    os.write(body.data(), static_cast<std::streamsize>(body.size()));
    UNP_REQUIRE(os.good());
    ++frames;
  }
  write_varint(os, kEndFrame);
  write_varint(os, frames);
  os.flush();
  UNP_REQUIRE(os.good());
}

}  // namespace unp::telemetry
