// Streaming K-way merge over shard archives: the second stage of the
// sharded campaign fabric.
//
// A shard archive is a self-describing file:
//
//   shard file := magic "UNPH" u8 version
//                 varint shard_count varint shard_index
//                 u64 fingerprint          (campaign cache key; 0 = unknown)
//                 <UNPS record stream>     (telemetry/archive_io framing)
//
// The UNPS payload is written by the ordinary ArchiveWriter, so a shard
// holds exactly the frames its owned nodes would occupy in the monolithic
// stream — ascending node index, empty frames elided, end frame carrying
// the shard's frame count.
//
// ShardMergeReader opens the K files of one partition and merges them on
// the canonical sort key of the stream: the node index.  Each shard is
// node-ascending and the partition is disjoint, so the merge is a plain
// "pop the smallest head" loop — constant memory per shard (one buffered
// frame), no global sort, no materialized archive.  The merged sequence is
// byte-identical to the monolithic stream: `merge_shard_archives` copies
// the winning frame bodies verbatim into a single UNPS file, and `drain`
// replays the merged frames through any RecordSink (StreamingExtractor,
// the policy engine, StoreBuilder) with full framing.
//
// The merge is resumable: `cursors()` snapshots each shard's byte offset
// and frame count after any number of `next()` calls, and the
// cursor-taking constructor re-opens the files and seeks back to exactly
// that state.
//
// Decode failures are re-anchored to the failing shard: every DecodeError
// carries "shard I" plus the byte offset within that shard's file.
#pragma once

#include <cstdint>
#include <fstream>
#include <iosfwd>
#include <string>
#include <vector>

#include "telemetry/archive_io.hpp"

namespace unp::telemetry {

inline constexpr char kShardMagic[4] = {'U', 'N', 'P', 'H'};
inline constexpr std::uint8_t kShardVersion = 1;

/// Self-description prefix of one shard archive.
struct ShardHeader {
  std::uint32_t shard_count = 1;
  std::uint32_t shard_index = 0;
  std::uint64_t fingerprint = 0;  ///< campaign cache key; 0 when unknown

  friend bool operator==(const ShardHeader&, const ShardHeader&) = default;
};

/// Write the shard prefix; the caller then attaches an ArchiveWriter to the
/// same stream for the UNPS payload.
void write_shard_header(std::ostream& os, const ShardHeader& header);

/// Read and validate the shard prefix, leaving the stream positioned at the
/// UNPS payload.  Throws DecodeError on malformed input.
[[nodiscard]] ShardHeader read_shard_header(std::istream& is);

/// Resume point of one shard within a merge: the byte offset of the next
/// unread frame and the number of frames already consumed.
struct ShardCursor {
  std::uint32_t shard_index = 0;
  std::uint64_t byte_offset = 0;  ///< into the shard file
  std::uint64_t frames_read = 0;

  friend bool operator==(const ShardCursor&, const ShardCursor&) = default;
};

/// Bounded-memory K-way merge over one partition's shard archives.
class ShardMergeReader {
 public:
  /// Open `paths` (any order), validate that they form one complete
  /// partition: K distinct shard indices 0..K-1 with equal shard_count,
  /// fingerprint and campaign window.  Throws DecodeError / ContractViolation
  /// on malformed or mismatched inputs.
  explicit ShardMergeReader(const std::vector<std::string>& paths);

  /// Re-open `paths` and resume from a `cursors()` snapshot (one cursor per
  /// shard, any order).
  ShardMergeReader(const std::vector<std::string>& paths,
                   const std::vector<ShardCursor>& cursors);

  [[nodiscard]] const CampaignWindow& window() const noexcept { return window_; }
  [[nodiscard]] std::uint64_t fingerprint() const noexcept { return fingerprint_; }
  [[nodiscard]] int shard_count() const noexcept {
    return static_cast<int>(shards_.size());
  }
  /// Frames merged out so far.
  [[nodiscard]] std::uint64_t frames_merged() const noexcept { return merged_; }

  /// Next merged frame in ascending node-index order; false at end of all
  /// shards (validates every shard's declared frame count).
  bool next(cluster::NodeId& node, NodeLog& log);

  /// Raw-frame variant of next(): hands out the winning frame's encoded
  /// body without decoding it.  merge_shard_archives uses this to copy
  /// bodies verbatim, making the merged UNPS byte-identical to a
  /// monolithic spill.
  bool next_raw(std::uint64_t& node_index, std::string& body);

  /// Replay the whole (remaining) merged stream through `sink` with full
  /// RecordSink framing.
  void drain(RecordSink& sink);

  /// Resume snapshot: the position of every shard, ascending shard index.
  [[nodiscard]] std::vector<ShardCursor> cursors() const;

 private:
  struct Shard {
    std::string path;
    std::ifstream file;
    ShardHeader header;
    CampaignWindow window{};
    std::uint64_t offset = 0;       ///< bytes consumed of the file
    std::uint64_t frames_read = 0;  ///< frames consumed (excl. end frame)
    // One buffered frame (constant memory per shard).
    bool has_head = false;
    bool done = false;
    std::uint64_t head_index = 0;
    std::uint64_t head_offset = 0;  ///< file offset of the buffered frame
    std::uint64_t end_offset = 0;   ///< file offset of the end frame
    std::string head_body;
  };

  void open_shards(const std::vector<std::string>& paths);
  void fill_head(Shard& shard);
  /// Shard holding the smallest head node index, or nullptr when drained.
  Shard* min_head();

  std::vector<Shard> shards_;  ///< ascending shard index
  CampaignWindow window_{};
  std::uint64_t fingerprint_ = 0;
  std::uint64_t merged_ = 0;
};

/// Merge shard archives into one monolithic UNPS stream, byte-identical to
/// the stream a monolithic campaign run would spill: frame bodies are
/// copied verbatim in merged order under a fresh header/end-frame.
void merge_shard_archives(const std::vector<std::string>& paths,
                          std::ostream& os);

}  // namespace unp::telemetry
