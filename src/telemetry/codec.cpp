#include "telemetry/codec.hpp"

#include <cinttypes>
#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/require.hpp"

namespace unp::telemetry {

namespace {

std::string temp_field(double celsius) {
  if (!has_temperature(celsius)) return "";
  char buf[32];
  std::snprintf(buf, sizeof buf, " temp=%.1f", celsius);
  return buf;
}

std::string error_fields(const ErrorRecord& r) {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                " vaddr=0x%012" PRIx64 " expected=0x%08x actual=0x%08x",
                r.virtual_address, r.expected, r.actual);
  std::string out = buf;
  out += temp_field(r.temperature_c);
  std::snprintf(buf, sizeof buf, " page=0x%09" PRIx64, r.physical_page);
  out += buf;
  return out;
}

/// Split "key=value" tokens after the kind and timestamp.
struct FieldMap {
  // Small fixed scan; logs have <= 7 fields.
  std::vector<std::pair<std::string, std::string>> kv;

  [[nodiscard]] const std::string* find(const std::string& key) const {
    for (const auto& [k, v] : kv) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  [[nodiscard]] const std::string& require(const std::string& key) const {
    const std::string* v = find(key);
    UNP_REQUIRE(v != nullptr);
    return *v;
  }
};

std::uint64_t parse_hex(const std::string& text) {
  std::uint64_t value = 0;
  UNP_REQUIRE(std::sscanf(text.c_str(), "%" SCNx64, &value) == 1);
  return value;
}

std::uint64_t parse_u64(const std::string& text) {
  std::uint64_t value = 0;
  UNP_REQUIRE(std::sscanf(text.c_str(), "%" SCNu64, &value) == 1);
  return value;
}

double parse_double(const std::string& text) {
  double value = 0.0;
  UNP_REQUIRE(std::sscanf(text.c_str(), "%lf", &value) == 1);
  return value;
}

}  // namespace

std::string serialize(const StartRecord& r) {
  std::string out = "START " + format_iso8601(r.time) +
                    " host=" + cluster::node_name(r.node) +
                    " bytes=" + std::to_string(r.allocated_bytes);
  out += temp_field(r.temperature_c);
  return out;
}

std::string serialize(const EndRecord& r) {
  std::string out = "END " + format_iso8601(r.time) +
                    " host=" + cluster::node_name(r.node);
  out += temp_field(r.temperature_c);
  return out;
}

std::string serialize(const AllocFailRecord& r) {
  return "ALLOCFAIL " + format_iso8601(r.time) +
         " host=" + cluster::node_name(r.node);
}

std::string serialize(const ErrorRecord& r) {
  return "ERROR " + format_iso8601(r.time) +
         " host=" + cluster::node_name(r.node) + error_fields(r);
}

std::string serialize(const ErrorRun& r) {
  return "ERRRUN " + format_iso8601(r.first.time) +
         " host=" + cluster::node_name(r.first.node) + error_fields(r.first) +
         " period=" + std::to_string(r.period_s) +
         " count=" + std::to_string(r.count);
}

void write_node_log(std::ostream& os, const NodeLog& log) {
  for (const auto& r : log.starts()) os << serialize(r) << '\n';
  for (const auto& r : log.ends()) os << serialize(r) << '\n';
  for (const auto& r : log.alloc_fails()) os << serialize(r) << '\n';
  for (const auto& r : log.error_runs()) {
    if (r.count == 1) {
      os << serialize(r.first) << '\n';
    } else {
      os << serialize(r) << '\n';
    }
  }
}

bool parse_line(const std::string& line, NodeLog& log) {
  if (line.empty() || line[0] == '#') return false;

  std::istringstream iss(line);
  std::string kind, timestamp;
  UNP_REQUIRE(static_cast<bool>(iss >> kind >> timestamp));
  const TimePoint time = parse_iso8601(timestamp);

  FieldMap fields;
  std::string token;
  while (iss >> token) {
    const std::size_t eq = token.find('=');
    UNP_REQUIRE(eq != std::string::npos && eq > 0);
    fields.kv.emplace_back(token.substr(0, eq), token.substr(eq + 1));
  }

  const cluster::NodeId node = cluster::parse_node_name(fields.require("host"));
  const std::string* temp = fields.find("temp");
  const double temperature = temp ? parse_double(*temp) : kNoTemperature;

  if (kind == "START") {
    log.add_start({time, node, parse_u64(fields.require("bytes")), temperature});
  } else if (kind == "END") {
    log.add_end({time, node, temperature});
  } else if (kind == "ALLOCFAIL") {
    log.add_alloc_fail({time, node});
  } else if (kind == "ERROR" || kind == "ERRRUN") {
    ErrorRecord r;
    r.time = time;
    r.node = node;
    r.virtual_address = parse_hex(fields.require("vaddr"));
    r.expected = static_cast<Word>(parse_hex(fields.require("expected")));
    r.actual = static_cast<Word>(parse_hex(fields.require("actual")));
    r.temperature_c = temperature;
    r.physical_page = parse_hex(fields.require("page"));
    if (kind == "ERROR") {
      log.add_error(r);
    } else {
      ErrorRun run;
      run.first = r;
      run.period_s = static_cast<std::int64_t>(parse_u64(fields.require("period")));
      run.count = parse_u64(fields.require("count"));
      UNP_REQUIRE(run.count >= 1);
      log.add_error_run(run);
    }
  } else {
    UNP_REQUIRE(!"unknown record kind");
  }
  return true;
}

NodeLog read_node_log(std::istream& is) {
  NodeLog log;
  std::string line;
  while (std::getline(is, line)) parse_line(line, log);
  log.sort_by_time();
  return log;
}

}  // namespace unp::telemetry
