#include "telemetry/binary_codec.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <fstream>

#include "common/require.hpp"
#include "telemetry/kernels/kernels.hpp"

namespace unp::telemetry {

namespace {

constexpr char kMagic[4] = {'U', 'N', 'P', 'A'};
constexpr std::uint8_t kVersion = 1;

double get_temp(const std::string& in, std::size_t& pos) {
  if (pos >= in.size()) throw DecodeError("truncated temperature flag", pos);
  const char flag = in[pos++];
  if (flag != 0 && flag != 1)
    throw DecodeError("bad temperature flag", pos - 1);
  return flag == 0 ? kNoTemperature : get_f64(in, pos);
}

/// Delta-encoded timestamp reader per section (the encode side runs through
/// the kernel-backed encode_node_log_into).
struct TimeDelta {
  TimePoint previous = 0;

  TimePoint get(const std::string& in, std::size_t& pos) {
    previous += zigzag_decode(get_varint(in, pos));
    return previous;
  }
};

}  // namespace

void put_varint(std::string& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<char>((value & 0x7F) | 0x80));
    value >>= 7;
  }
  out.push_back(static_cast<char>(value));
}

void put_f64(std::string& out, double value) {
  std::uint64_t bits;
  std::memcpy(&bits, &value, sizeof bits);
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((bits >> (8 * i)) & 0xFF));
  }
}

double get_f64(std::string_view in, std::size_t& pos) {
  if (pos + 8 > in.size()) throw DecodeError("truncated f64", pos);
  std::uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) {
    bits |= static_cast<std::uint64_t>(static_cast<unsigned char>(
                in[pos + static_cast<std::size_t>(i)]))
            << (8 * i);
  }
  pos += 8;
  double value;
  std::memcpy(&value, &bits, sizeof value);
  return value;
}

std::uint64_t get_varint(std::string_view in, std::size_t& pos) {
  std::uint64_t value = 0;
  int shift = 0;
  for (;;) {
    if (pos >= in.size()) throw DecodeError("truncated varint", pos);
    if (shift >= 64) throw DecodeError("varint overflow (> 10 bytes)", pos);
    const auto byte = static_cast<unsigned char>(in[pos++]);
    // The 10th group holds only the top bit of a uint64; higher payload bits
    // would be shifted out silently, so reject them as overflow.
    if (shift == 63 && (byte & 0x7E) != 0)
      throw DecodeError("varint overflow (bits beyond 64)", pos - 1);
    value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
  }
}

std::size_t node_log_encoded_bound(const NodeLog& log) noexcept {
  // Section counts: 4 varints.  START: time + bytes varints, temp flag+f64.
  // END: time varint, temp.  ALLOCFAIL: time varint.  RUN: six varints,
  // temp, period, count.
  return 4 * 10 + log.starts().size() * (10 + 10 + 9) +
         log.ends().size() * (10 + 9) + log.alloc_fails().size() * 10 +
         log.error_runs().size() * (6 * 10 + 9 + 10);
}

void encode_node_log_into(const NodeLog& log, std::string& out,
                          const kernels::EncodeKernels& kernels,
                          EncodeArena* arena) {
  // Pre-size to the record-count bound so no append below reallocates.
  out.reserve(out.size() + node_log_encoded_bound(log));

  kernels::VarintWriter w(out, kernels);
  const auto temp = [&w](double celsius) {
    if (!has_temperature(celsius)) {
      w.byte('\0');
      return;
    }
    w.byte('\1');
    w.f64(celsius);
  };

  {  // STARTs
    w.varint(log.starts().size());
    TimePoint previous = 0;
    for (const auto& r : log.starts()) {
      w.varint(zigzag_encode(r.time - previous));
      previous = r.time;
      w.varint(r.allocated_bytes);
      temp(r.temperature_c);
    }
  }
  {  // ENDs
    w.varint(log.ends().size());
    TimePoint previous = 0;
    for (const auto& r : log.ends()) {
      w.varint(zigzag_encode(r.time - previous));
      previous = r.time;
      temp(r.temperature_c);
    }
  }
  {  // ALLOCFAILs — a pure timestamp run, the one section the fused
     // zigzag-delta batch kernel can take whole.  Bytes match the writer
     // loop exactly (the batch kernel is the same delta chain from base 0).
    const auto& fails = log.alloc_fails();
    w.varint(fails.size());
    if (arena != nullptr && fails.size() >= 4) {
      auto& times = arena->scratch;
      times.clear();
      times.reserve(fails.size());
      for (const auto& r : fails)
        times.push_back(static_cast<std::uint64_t>(r.time));
      w.flush();  // order the buffered bytes before the direct append
      kernels.encode_zigzag_deltas(times.data(), times.size(), 0, out);
    } else {
      TimePoint previous = 0;
      for (const auto& r : fails) {
        w.varint(zigzag_encode(r.time - previous));
        previous = r.time;
      }
    }
  }
  {  // ERROR runs
    w.varint(log.error_runs().size());
    TimePoint previous = 0;
    for (const auto& run : log.error_runs()) {
      w.varint(zigzag_encode(run.first.time - previous));
      previous = run.first.time;
      w.varint(run.first.virtual_address);
      w.varint(run.first.expected);
      w.varint(run.first.actual);
      temp(run.first.temperature_c);
      w.varint(run.first.physical_page);
      w.varint(static_cast<std::uint64_t>(run.period_s));
      w.varint(run.count);
    }
  }
  // w flushes on scope exit.
}

std::string encode_node_log(const NodeLog& log) {
  std::string out;
  encode_node_log_into(log, out, kernels::active_encode_kernels());
  return out;
}

NodeLog decode_node_log(const std::string& bytes, std::size_t& pos,
                        cluster::NodeId node) {
  NodeLog log;
  // Capacity hint, clamped so a corrupt count cannot force a huge
  // allocation: every record costs at least one encoded byte.
  const auto clamp = [&](std::uint64_t n) {
    return static_cast<std::size_t>(
        std::min<std::uint64_t>(n, bytes.size() - pos));
  };
  {
    const std::uint64_t n = get_varint(bytes, pos);
    log.reserve_starts(clamp(n));
    TimeDelta td;
    for (std::uint64_t i = 0; i < n; ++i) {
      StartRecord r;
      r.time = td.get(bytes, pos);
      r.node = node;
      r.allocated_bytes = get_varint(bytes, pos);
      r.temperature_c = get_temp(bytes, pos);
      log.add_start(r);
    }
  }
  {
    const std::uint64_t n = get_varint(bytes, pos);
    log.reserve_ends(clamp(n));
    TimeDelta td;
    for (std::uint64_t i = 0; i < n; ++i) {
      EndRecord r;
      r.time = td.get(bytes, pos);
      r.node = node;
      r.temperature_c = get_temp(bytes, pos);
      log.add_end(r);
    }
  }
  {
    const std::uint64_t n = get_varint(bytes, pos);
    log.reserve_alloc_fails(clamp(n));
    TimeDelta td;
    for (std::uint64_t i = 0; i < n; ++i) {
      log.add_alloc_fail({td.get(bytes, pos), node});
    }
  }
  {
    const std::uint64_t n = get_varint(bytes, pos);
    log.reserve_error_runs(clamp(n));
    TimeDelta td;
    for (std::uint64_t i = 0; i < n; ++i) {
      ErrorRun run;
      run.first.time = td.get(bytes, pos);
      run.first.node = node;
      run.first.virtual_address = get_varint(bytes, pos);
      run.first.expected = static_cast<Word>(get_varint(bytes, pos));
      run.first.actual = static_cast<Word>(get_varint(bytes, pos));
      run.first.temperature_c = get_temp(bytes, pos);
      run.first.physical_page = get_varint(bytes, pos);
      run.period_s = static_cast<std::int64_t>(get_varint(bytes, pos));
      run.count = get_varint(bytes, pos);
      if (run.count < 1) throw DecodeError("error run with zero count", pos);
      log.add_error_run(run);
    }
  }
  return log;
}

std::string encode_archive(const CampaignArchive& archive) {
  std::string out(kMagic, sizeof kMagic);
  out.push_back(static_cast<char>(kVersion));
  put_varint(out, zigzag_encode(archive.window().start));
  put_varint(out, zigzag_encode(archive.window().end));

  // Only non-empty node logs are stored.
  std::vector<int> nodes;
  for (int i = 0; i < cluster::kStudyNodeSlots; ++i) {
    const NodeLog& log = archive.log(cluster::node_from_index(i));
    if (!log.starts().empty() || !log.ends().empty() ||
        !log.alloc_fails().empty() || !log.error_runs().empty()) {
      nodes.push_back(i);
    }
  }
  put_varint(out, nodes.size());
  const auto& kernels = kernels::active_encode_kernels();
  std::string body;
  EncodeArena arena;
  for (const int i : nodes) {
    put_varint(out, static_cast<std::uint64_t>(i));
    body.clear();
    encode_node_log_into(archive.log(cluster::node_from_index(i)), body,
                         kernels, &arena);
    put_varint(out, body.size());
    out += body;
  }
  return out;
}

CampaignArchive decode_archive(const std::string& bytes) {
  if (bytes.size() <= 5) throw DecodeError("truncated archive header", bytes.size());
  if (std::memcmp(bytes.data(), kMagic, sizeof kMagic) != 0)
    throw DecodeError("bad UNPA magic", 0);
  if (static_cast<std::uint8_t>(bytes[4]) != kVersion)
    throw DecodeError("unsupported UNPA version", 4);

  std::size_t pos = 5;
  CampaignWindow window;
  window.start = zigzag_decode(get_varint(bytes, pos));
  window.end = zigzag_decode(get_varint(bytes, pos));
  CampaignArchive archive(window);

  const std::uint64_t nodes = get_varint(bytes, pos);
  for (std::uint64_t n = 0; n < nodes; ++n) {
    const std::size_t frame_pos = pos;
    const std::uint64_t index = get_varint(bytes, pos);
    if (index >= static_cast<std::uint64_t>(cluster::kStudyNodeSlots))
      throw DecodeError("node index out of range", frame_pos);
    const std::uint64_t size = get_varint(bytes, pos);
    if (pos + size > bytes.size())
      throw DecodeError("truncated node log body", pos);
    std::size_t body_pos = pos;
    const cluster::NodeId node = cluster::node_from_index(static_cast<int>(index));
    archive.log(node) = decode_node_log(bytes, body_pos, node);
    if (body_pos != pos + size)
      throw DecodeError("node log body size mismatch", body_pos);
    pos += size;
  }
  if (pos != bytes.size())
    throw DecodeError("trailing bytes after archive", pos);
  return archive;
}

void save_archive(const CampaignArchive& archive, const std::string& path) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  UNP_REQUIRE(os.good());
  const std::string bytes = encode_archive(archive);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  UNP_REQUIRE(os.good());
}

CampaignArchive load_archive(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  UNP_REQUIRE(is.good());
  std::string bytes((std::istreambuf_iterator<char>(is)),
                    std::istreambuf_iterator<char>());
  return decode_archive(bytes);
}

}  // namespace unp::telemetry
