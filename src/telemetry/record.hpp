// Telemetry record types, mirroring the log entries of the original memory
// scanning tool (Section II-B):
//
//   START  - timestamp, host, allocated bytes, node temperature
//   ERROR  - timestamp, host, virtual address, expected value, actual value,
//            node temperature, physical page address
//   END    - timestamp, host, node temperature
//   ALLOC-FAIL - timestamp, host (logged to a separate file by the original)
//
// Temperature sensors only came online in April 2015; records before that
// carry no reading (`kNoTemperature`).
//
// Raw-volume note: a stuck fault is re-logged every scan iteration; the real
// campaign accumulated >25M ERROR lines that way.  The archive stores ERROR
// records as *runs* (first timestamp, period, count) so the full stream is
// represented exactly but compactly; expand() recovers individual records.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/topology.hpp"
#include "common/bitops.hpp"
#include "common/civil_time.hpp"

namespace unp::telemetry {

/// Sentinel for records written before the sensors came online.
constexpr double kNoTemperature = -1000.0;

/// True when `celsius` is a real reading.
[[nodiscard]] constexpr bool has_temperature(double celsius) noexcept {
  return celsius > -273.15;
}

struct StartRecord {
  TimePoint time = 0;
  cluster::NodeId node;
  std::uint64_t allocated_bytes = 0;
  double temperature_c = kNoTemperature;

  friend bool operator==(const StartRecord&, const StartRecord&) = default;
};

struct EndRecord {
  TimePoint time = 0;
  cluster::NodeId node;
  double temperature_c = kNoTemperature;

  friend bool operator==(const EndRecord&, const EndRecord&) = default;
};

struct AllocFailRecord {
  TimePoint time = 0;
  cluster::NodeId node;

  friend bool operator==(const AllocFailRecord&, const AllocFailRecord&) = default;
};

/// One observed mismatch of one 32-bit word.
struct ErrorRecord {
  TimePoint time = 0;
  cluster::NodeId node;
  std::uint64_t virtual_address = 0;  ///< byte address inside the scan buffer
  Word expected = 0;
  Word actual = 0;
  double temperature_c = kNoTemperature;
  std::uint64_t physical_page = 0;

  [[nodiscard]] Word flip_mask() const noexcept { return expected ^ actual; }
  [[nodiscard]] int flipped_bits() const noexcept {
    return flipped_bit_count(expected, actual);
  }

  friend bool operator==(const ErrorRecord&, const ErrorRecord&) = default;
};

/// A run of identical-location ERROR logs produced by a fault that persists
/// across iterations: `count` records starting at `first.time`, spaced
/// `period_s` seconds apart.  The expected/actual pair alternates phase for
/// the alternating pattern; `second_expected`/`second_actual` capture the
/// other phase (equal to first for single-phase visibility).
struct ErrorRun {
  ErrorRecord first;
  std::int64_t period_s = 0;  ///< spacing between successive logs (0 iff count==1)
  std::uint64_t count = 1;

  [[nodiscard]] TimePoint last_time() const noexcept {
    return first.time + period_s * static_cast<std::int64_t>(count - 1);
  }

  /// Materialize every record of the run (testing / small inputs only).
  [[nodiscard]] std::vector<ErrorRecord> expand() const;

  friend bool operator==(const ErrorRun&, const ErrorRun&) = default;
};

/// Discriminated record for serialized streams.
enum class RecordKind : std::uint8_t { kStart, kEnd, kAllocFail, kError, kErrorRun };

}  // namespace unp::telemetry
