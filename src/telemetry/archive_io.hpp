// Streaming on-disk archive format.
//
// binary_codec.hpp serializes a fully materialized CampaignArchive in one
// shot; this header is the streaming counterpart.  ArchiveWriter is a
// RecordSink that spills each node's block to an ostream the moment the
// node's frame closes, so a 13-month campaign can be written while it is
// being simulated, with only one node's records buffered at a time.
// ArchiveReader walks the stream node by node, either handing out NodeLogs
// or pushing records into another RecordSink — which is how benches reload
// a cached campaign without re-simulating and how analyses consume spilled
// telemetry without a resident archive.
//
// Format (little-endian, varint = LEB128, reusing the binary_codec record
// encoding):
//
//   stream := magic "UNPS" u8 version
//             varint zigzag(window.start) varint zigzag(window.end)
//             node_frame* end_frame
//   node_frame := varint node_index        (< kStudyNodeSlots, ascending)
//                 varint body_size body    (body = encode_node_log)
//   end_frame  := varint kStudyNodeSlots varint frame_count
//
// The trailing frame count lets the reader reject streams truncated at a
// frame boundary (mid-frame truncation already fails the body decode).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "telemetry/archive.hpp"
#include "telemetry/sink.hpp"

namespace unp::telemetry {

/// RecordSink spilling the stream to disk as framed binary node blocks.
/// Drive it through the sink protocol (begin_campaign .. end_campaign); the
/// stream is complete once end_campaign (or finish()) has run.
class ArchiveWriter final : public RecordSink {
 public:
  /// Writes to `os` (binary mode), starting at its current position.
  /// `encode` selects the encode kernel set (byte-identical output across
  /// sets); defaults to the process-wide active set.
  explicit ArchiveWriter(std::ostream& os,
                         const kernels::EncodeKernels* encode = nullptr);

  void begin_campaign(const CampaignWindow& window) override;
  void begin_node(cluster::NodeId node) override;
  void on_start(const StartRecord& r) override;
  void on_end(const EndRecord& r) override;
  void on_alloc_fail(const AllocFailRecord& r) override;
  void on_error_run(const ErrorRun& r) override;
  void end_node(cluster::NodeId node) override;
  void end_campaign() override { finish(); }

  /// Bulk path: the frame body is spliced from the already-encoded node log
  /// (encoded at most once per node, possibly in a producer worker thread),
  /// skipping the per-record collection into pending_ entirely.
  void on_node_log(EncodedNodeLog& log) override;
  [[nodiscard]] bool wants_encoded_node_log() const override { return true; }

  /// Write the end frame.  Idempotent; called by end_campaign.
  void finish();

  [[nodiscard]] std::uint64_t frames_written() const noexcept { return frames_; }

 private:
  std::ostream* os_;
  const kernels::EncodeKernels* encode_;
  NodeLog pending_;      ///< records of the currently open node frame
  std::string body_;     ///< reused frame-body encode buffer
  EncodeArena arena_;    ///< reused gather scratch for batch kernels
  bool node_open_ = false;
  bool bulk_ = false;    ///< current frame arrived via on_node_log
  bool header_written_ = false;
  bool finished_ = false;
  std::uint64_t frames_ = 0;
};

/// Incremental reader over a stream produced by ArchiveWriter.
class ArchiveReader {
 public:
  /// Parses the stream header from `is` (binary mode, current position).
  /// Throws telemetry::DecodeError (a ContractViolation carrying the byte
  /// offset) on bad magic/version.
  explicit ArchiveReader(std::istream& is);

  [[nodiscard]] const CampaignWindow& window() const noexcept { return window_; }

  /// Read the next node frame into (node, log).  Returns false once the end
  /// frame is reached (after validating the frame count).  Throws
  /// telemetry::DecodeError with byte-offset context on corrupt or
  /// truncated input.
  [[nodiscard]] bool next(cluster::NodeId& node, NodeLog& log);

  /// Push the remaining stream through `sink` with full framing
  /// (begin_campaign .. end_campaign).
  void drain(RecordSink& sink);

  [[nodiscard]] std::uint64_t frames_read() const noexcept { return frames_; }

 private:
  std::istream* is_;
  CampaignWindow window_;
  std::uint64_t frames_ = 0;
  bool done_ = false;
};

/// Spill a materialized archive through ArchiveWriter (binary file mode).
void save_archive_stream(const CampaignArchive& archive, const std::string& path);

/// Load a whole stream file into a materialized archive.
[[nodiscard]] CampaignArchive load_archive_stream(const std::string& path);

}  // namespace unp::telemetry
