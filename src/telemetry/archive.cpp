#include "telemetry/archive.hpp"

#include <algorithm>

namespace unp::telemetry {

std::uint64_t NodeLog::raw_error_count() const noexcept {
  std::uint64_t total = 0;
  for (const auto& run : error_runs_) total += run.count;
  return total;
}

double NodeLog::monitored_hours() const noexcept {
  // Pair each START with the first END after it.  A START superseded by
  // another START before any END (hard reboot) contributes zero, per the
  // paper's conservative accounting.
  double hours = 0.0;
  std::size_t e = 0;
  for (std::size_t s = 0; s < starts_.size(); ++s) {
    while (e < ends_.size() && ends_[e].time < starts_[s].time) ++e;
    const TimePoint next_start =
        s + 1 < starts_.size() ? starts_[s + 1].time : 0;
    if (e < ends_.size() &&
        (s + 1 >= starts_.size() || ends_[e].time <= next_start)) {
      hours += static_cast<double>(ends_[e].time - starts_[s].time) /
               kSecondsPerHour;
      ++e;
    }
    // else: reboot case - no matching END before the next START.
  }
  return hours;
}

double NodeLog::terabyte_hours() const noexcept {
  constexpr double kBytesPerTb = 1099511627776.0;  // 2^40
  double tbh = 0.0;
  std::size_t e = 0;
  for (std::size_t s = 0; s < starts_.size(); ++s) {
    while (e < ends_.size() && ends_[e].time < starts_[s].time) ++e;
    const TimePoint next_start =
        s + 1 < starts_.size() ? starts_[s + 1].time : 0;
    if (e < ends_.size() &&
        (s + 1 >= starts_.size() || ends_[e].time <= next_start)) {
      const double hours =
          static_cast<double>(ends_[e].time - starts_[s].time) / kSecondsPerHour;
      tbh += hours * static_cast<double>(starts_[s].allocated_bytes) / kBytesPerTb;
      ++e;
    }
  }
  return tbh;
}

void NodeLog::append(const NodeLog& other) {
  starts_.insert(starts_.end(), other.starts_.begin(), other.starts_.end());
  ends_.insert(ends_.end(), other.ends_.begin(), other.ends_.end());
  alloc_fails_.insert(alloc_fails_.end(), other.alloc_fails_.begin(),
                      other.alloc_fails_.end());
  error_runs_.insert(error_runs_.end(), other.error_runs_.begin(),
                     other.error_runs_.end());
}

void NodeLog::sort_by_time() {
  // Stable so records sharing a timestamp (several addresses caught in one
  // scan pass) keep their stored order; parsing a serialized log must not
  // permute ties.  The simulator appends most categories in time order
  // already, so check first: a stable sort of a sorted range is the
  // identity, and skipping it skips stable_sort's scratch allocation too.
  const auto sort_if_needed = [](auto& v, auto cmp) {
    if (!std::is_sorted(v.begin(), v.end(), cmp)) {
      std::stable_sort(v.begin(), v.end(), cmp);
    }
  };
  auto by_time = [](const auto& a, const auto& b) { return a.time < b.time; };
  sort_if_needed(starts_, by_time);
  sort_if_needed(ends_, by_time);
  sort_if_needed(alloc_fails_, by_time);
  sort_if_needed(error_runs_, [](const ErrorRun& a, const ErrorRun& b) {
    return a.first.time < b.first.time;
  });
}

std::uint64_t CampaignArchive::total_raw_errors() const noexcept {
  std::uint64_t total = 0;
  for (const auto& log : logs_) total += log.raw_error_count();
  return total;
}

double CampaignArchive::total_monitored_hours() const noexcept {
  double total = 0.0;
  for (const auto& log : logs_) total += log.monitored_hours();
  return total;
}

double CampaignArchive::total_terabyte_hours() const noexcept {
  double total = 0.0;
  for (const auto& log : logs_) total += log.terabyte_hours();
  return total;
}

}  // namespace unp::telemetry
