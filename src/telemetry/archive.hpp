// Per-node log files and the campaign-wide archive.
//
// The original tool kept one log file per node; analyses then merged them.
// NodeLog collects a node's records in time order; CampaignArchive owns one
// NodeLog per study node plus campaign-level metadata, and is the single
// input to the whole analysis pipeline.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/topology.hpp"
#include "common/civil_time.hpp"
#include "telemetry/record.hpp"
#include "telemetry/sink.hpp"

namespace unp::telemetry {

/// Time-ordered log of a single node.
class NodeLog {
 public:
  void add_start(const StartRecord& r) { starts_.push_back(r); }
  void add_end(const EndRecord& r) { ends_.push_back(r); }
  void add_alloc_fail(const AllocFailRecord& r) { alloc_fails_.push_back(r); }
  void add_error_run(const ErrorRun& r) { error_runs_.push_back(r); }
  void add_error(const ErrorRecord& r) { error_runs_.push_back(ErrorRun{r, 0, 1}); }

  // Capacity hints for decoders that know record counts up front.
  void reserve_starts(std::size_t n) { starts_.reserve(starts_.size() + n); }
  void reserve_ends(std::size_t n) { ends_.reserve(ends_.size() + n); }
  void reserve_alloc_fails(std::size_t n) { alloc_fails_.reserve(alloc_fails_.size() + n); }
  void reserve_error_runs(std::size_t n) { error_runs_.reserve(error_runs_.size() + n); }

  [[nodiscard]] const std::vector<StartRecord>& starts() const noexcept { return starts_; }
  [[nodiscard]] const std::vector<EndRecord>& ends() const noexcept { return ends_; }
  [[nodiscard]] const std::vector<AllocFailRecord>& alloc_fails() const noexcept {
    return alloc_fails_;
  }
  [[nodiscard]] const std::vector<ErrorRun>& error_runs() const noexcept {
    return error_runs_;
  }

  /// Total number of raw ERROR log lines represented (runs expanded).
  [[nodiscard]] std::uint64_t raw_error_count() const noexcept;

  /// Scanning hours implied by START/END pairing.  Follows the paper's
  /// conservative rule: a START followed by another START (hard reboot, END
  /// lost) contributes zero hours.
  [[nodiscard]] double monitored_hours() const noexcept;

  /// Terabyte-hours scanned, weighting each complete session by its
  /// allocation size.  Same conservative pairing rule as monitored_hours.
  [[nodiscard]] double terabyte_hours() const noexcept;

  /// Sort all record vectors by time (builders normally append in order).
  void sort_by_time();

  [[nodiscard]] bool empty() const noexcept {
    return starts_.empty() && ends_.empty() && alloc_fails_.empty() &&
           error_runs_.empty();
  }

  /// Drop all records but keep vector capacity — arena reuse across nodes.
  void clear() noexcept {
    starts_.clear();
    ends_.clear();
    alloc_fails_.clear();
    error_runs_.clear();
  }

  /// Append every record of `other` in stored order.
  void append(const NodeLog& other);

 private:
  std::vector<StartRecord> starts_;
  std::vector<EndRecord> ends_;
  std::vector<AllocFailRecord> alloc_fails_;
  std::vector<ErrorRun> error_runs_;
};

/// The whole campaign's telemetry, indexed by node.  Also a RecordSink: a
/// producer can stream straight into the archive (records route to the log
/// of the node they carry), making "materialize everything" just one sink
/// choice among several.
class CampaignArchive final : public RecordSink {
 public:
  explicit CampaignArchive(CampaignWindow window = CampaignWindow{})
      : window_(window), logs_(static_cast<std::size_t>(cluster::kStudyNodeSlots)) {}

  // RecordSink: adopt the producer's window, append records by node.
  void begin_campaign(const CampaignWindow& window) override { window_ = window; }
  void on_start(const StartRecord& r) override { log(r.node).add_start(r); }
  void on_end(const EndRecord& r) override { log(r.node).add_end(r); }
  void on_alloc_fail(const AllocFailRecord& r) override {
    log(r.node).add_alloc_fail(r);
  }
  void on_error_run(const ErrorRun& r) override { log(r.first.node).add_error_run(r); }
  // Bulk path: splice the node's whole log in one append instead of one
  // virtual call per record.  Leaves wants_encoded_node_log() false — the
  // archive routes records, so the producer never encodes bytes for it.
  void on_node_log(EncodedNodeLog& enc) override {
    log(enc.node()).append(enc.log());
  }

  [[nodiscard]] NodeLog& log(cluster::NodeId id) {
    return logs_[static_cast<std::size_t>(cluster::node_index(id))];
  }
  [[nodiscard]] const NodeLog& log(cluster::NodeId id) const {
    return logs_[static_cast<std::size_t>(cluster::node_index(id))];
  }

  [[nodiscard]] const CampaignWindow& window() const noexcept { return window_; }

  /// Sum of raw ERROR lines across all nodes.
  [[nodiscard]] std::uint64_t total_raw_errors() const noexcept;

  /// Sum of monitored node-hours across all nodes.
  [[nodiscard]] double total_monitored_hours() const noexcept;

  /// Sum of terabyte-hours across all nodes.
  [[nodiscard]] double total_terabyte_hours() const noexcept;

 private:
  CampaignWindow window_;
  std::vector<NodeLog> logs_;
};

}  // namespace unp::telemetry
