// Text codec for telemetry streams.
//
// One record per line, in the spirit of the original tool's log files:
//
//   START 2015-02-01T00:12:03 host=07-03 bytes=3221225472 temp=33.4
//   ERROR 2015-02-01T04:55:41 host=07-03 vaddr=0x12345678 expected=0xffffffff
//         actual=0xffff7bff temp=34.1 page=0x00012345
//   ERRRUN <...same fields...> period=90 count=12000
//   END   2015-02-01T06:00:00 host=07-03 temp=33.9
//   ALLOCFAIL 2015-02-02T10:00:00 host=07-03
//
// Fields are space-separated key=value pairs after the kind and timestamp;
// `temp` is omitted for records predating the sensors.  The parser is strict:
// unknown kinds or malformed fields throw ContractViolation.
#pragma once

#include <iosfwd>
#include <string>

#include "telemetry/archive.hpp"
#include "telemetry/record.hpp"

namespace unp::telemetry {

[[nodiscard]] std::string serialize(const StartRecord& r);
[[nodiscard]] std::string serialize(const EndRecord& r);
[[nodiscard]] std::string serialize(const AllocFailRecord& r);
[[nodiscard]] std::string serialize(const ErrorRecord& r);
[[nodiscard]] std::string serialize(const ErrorRun& r);

/// Write every record of a node log, one line each, in time order per
/// record class (the on-disk format mirrors the per-node files).
void write_node_log(std::ostream& os, const NodeLog& log);

/// Parse one line into `log`.  Empty lines and '#' comments are ignored.
/// Returns false for ignored lines, true when a record was added.
bool parse_line(const std::string& line, NodeLog& log);

/// Parse a whole stream into a node log.
[[nodiscard]] NodeLog read_node_log(std::istream& is);

}  // namespace unp::telemetry
