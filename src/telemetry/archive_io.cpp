#include "telemetry/archive_io.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "common/require.hpp"
#include "telemetry/binary_codec.hpp"
#include "telemetry/kernels/kernels.hpp"

namespace unp::telemetry {

namespace {

constexpr char kStreamMagic[4] = {'U', 'N', 'P', 'S'};
constexpr std::uint8_t kStreamVersion = 1;
/// Node-index sentinel opening the end frame (no valid node carries it).
constexpr std::uint64_t kEndFrame =
    static_cast<std::uint64_t>(cluster::kStudyNodeSlots);

void write_varint(std::ostream& os, std::uint64_t value) {
  std::string buf;
  put_varint(buf, value);
  os.write(buf.data(), static_cast<std::streamsize>(buf.size()));
  UNP_REQUIRE(os.good());
}

/// Stream offset for decode-error context; 0 when the stream cannot tell
/// (already failed, or not seekable).
std::uint64_t stream_offset(std::istream& is) {
  const std::streamoff off = is.rdstate() ? -1 : std::streamoff(is.tellg());
  return off < 0 ? 0 : static_cast<std::uint64_t>(off);
}

std::uint64_t read_varint(std::istream& is) {
  const std::uint64_t start = stream_offset(is);
  std::uint64_t value = 0;
  int shift = 0;
  for (;;) {
    const int c = is.get();
    if (c == std::char_traits<char>::eof())
      throw DecodeError("truncated varint", start);
    if (shift >= 64)
      throw DecodeError("varint overflow (> 10 bytes)", start);
    if (shift == 63 && (c & 0x7E) != 0)
      throw DecodeError("varint overflow (bits beyond 64)", start);
    value |= static_cast<std::uint64_t>(c & 0x7F) << shift;
    if ((c & 0x80) == 0) return value;
    shift += 7;
  }
}

std::string read_exact(std::istream& is, std::uint64_t size) {
  const std::uint64_t start = stream_offset(is);
  std::string body(size, '\0');
  is.read(body.data(), static_cast<std::streamsize>(size));
  if (static_cast<std::uint64_t>(is.gcount()) != size)
    throw DecodeError("truncated block (wanted " + std::to_string(size) +
                          " bytes, got " + std::to_string(is.gcount()) + ")",
                      start);
  return body;
}

}  // namespace

ArchiveWriter::ArchiveWriter(std::ostream& os,
                             const kernels::EncodeKernels* encode)
    : os_(&os),
      encode_(encode != nullptr ? encode : &kernels::active_encode_kernels()) {}

void ArchiveWriter::begin_campaign(const CampaignWindow& window) {
  UNP_REQUIRE(!header_written_);
  os_->write(kStreamMagic, sizeof kStreamMagic);
  os_->put(static_cast<char>(kStreamVersion));
  write_varint(*os_, zigzag_encode(window.start));
  write_varint(*os_, zigzag_encode(window.end));
  UNP_REQUIRE(os_->good());
  header_written_ = true;
}

void ArchiveWriter::begin_node(cluster::NodeId node) {
  UNP_REQUIRE(header_written_ && !finished_ && !node_open_);
  (void)node;
  pending_.clear();  // keep capacity across frames
  bulk_ = false;
  node_open_ = true;
}

void ArchiveWriter::on_start(const StartRecord& r) {
  UNP_REQUIRE(node_open_);
  pending_.add_start(r);
}

void ArchiveWriter::on_end(const EndRecord& r) {
  UNP_REQUIRE(node_open_);
  pending_.add_end(r);
}

void ArchiveWriter::on_alloc_fail(const AllocFailRecord& r) {
  UNP_REQUIRE(node_open_);
  pending_.add_alloc_fail(r);
}

void ArchiveWriter::on_error_run(const ErrorRun& r) {
  UNP_REQUIRE(node_open_);
  pending_.add_error_run(r);
}

void ArchiveWriter::on_node_log(EncodedNodeLog& log) {
  // A bulk frame replaces the per-record collection: no records may have
  // been pushed into this frame already, and none may follow.
  UNP_REQUIRE(node_open_ && pending_.empty());
  bulk_ = true;
  if (log.empty()) return;  // empty frames are elided
  write_varint(*os_,
               static_cast<std::uint64_t>(cluster::node_index(log.node())));
  const std::string& body = log.bytes();
  write_varint(*os_, body.size());
  os_->write(body.data(), static_cast<std::streamsize>(body.size()));
  UNP_REQUIRE(os_->good());
  ++frames_;
}

void ArchiveWriter::end_node(cluster::NodeId node) {
  UNP_REQUIRE(node_open_);
  node_open_ = false;
  if (bulk_) {  // frame already written (or elided) by on_node_log
    bulk_ = false;
    return;
  }
  // Empty frames are elided, mirroring encode_archive's non-empty-only rule.
  if (pending_.empty()) return;
  write_varint(*os_, static_cast<std::uint64_t>(cluster::node_index(node)));
  body_.clear();
  encode_node_log_into(pending_, body_, *encode_, &arena_);
  write_varint(*os_, body_.size());
  os_->write(body_.data(), static_cast<std::streamsize>(body_.size()));
  UNP_REQUIRE(os_->good());
  pending_.clear();
  ++frames_;
}

void ArchiveWriter::finish() {
  if (finished_) return;
  UNP_REQUIRE(header_written_ && !node_open_);
  write_varint(*os_, kEndFrame);
  write_varint(*os_, frames_);
  os_->flush();
  UNP_REQUIRE(os_->good());
  finished_ = true;
}

ArchiveReader::ArchiveReader(std::istream& is) : is_(&is) {
  const std::string magic = read_exact(is, sizeof kStreamMagic);
  if (std::memcmp(magic.data(), kStreamMagic, sizeof kStreamMagic) != 0)
    throw DecodeError("bad UNPS magic", 0);
  const int version = is.get();
  if (version != kStreamVersion)
    throw DecodeError("unsupported UNPS version " + std::to_string(version),
                      sizeof kStreamMagic);
  window_.start = zigzag_decode(read_varint(is));
  window_.end = zigzag_decode(read_varint(is));
}

bool ArchiveReader::next(cluster::NodeId& node, NodeLog& log) {
  if (done_) return false;
  const std::uint64_t frame_offset = stream_offset(*is_);
  const std::uint64_t index = read_varint(*is_);
  if (index == kEndFrame) {
    const std::uint64_t declared = read_varint(*is_);
    if (declared != frames_)
      throw DecodeError("frame count mismatch (declared " +
                            std::to_string(declared) + ", read " +
                            std::to_string(frames_) + ")",
                        frame_offset);
    done_ = true;
    return false;
  }
  if (index > kEndFrame)
    throw DecodeError("node index out of range", frame_offset);
  node = cluster::node_from_index(static_cast<int>(index));
  const std::uint64_t size = read_varint(*is_);
  const std::uint64_t body_offset = stream_offset(*is_);
  const std::string body = read_exact(*is_, size);
  std::size_t pos = 0;
  try {
    log = decode_node_log(body, pos, node);
  } catch (const DecodeError& e) {
    // Re-anchor the body-relative offset to the stream position.
    throw DecodeError("node frame for " + cluster::node_name(node) + ": " +
                          e.detail(),
                      body_offset + e.byte_offset());
  }
  if (pos != body.size())
    throw DecodeError("node frame body size mismatch", body_offset + pos);
  ++frames_;
  return true;
}

void ArchiveReader::drain(RecordSink& sink) {
  sink.begin_campaign(window_);
  cluster::NodeId node;
  NodeLog log;
  std::string scratch;
  EncodeArena arena;
  const auto& kernels = kernels::active_encode_kernels();
  while (next(node, log)) {
    sink.begin_node(node);
    // Bulk delivery: record-oriented sinks replay (same stream as before),
    // byte-oriented sinks re-encode once into the reused scratch buffer.
    EncodedNodeLog enc(node, log, scratch, kernels, &arena);
    sink.on_node_log(enc);
    sink.end_node(node);
  }
  sink.end_campaign();
}

void save_archive_stream(const CampaignArchive& archive, const std::string& path) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  UNP_REQUIRE(os.good());
  ArchiveWriter writer(os);
  writer.begin_campaign(archive.window());
  std::string scratch;
  EncodeArena arena;
  const auto& kernels = kernels::active_encode_kernels();
  for (int i = 0; i < cluster::kStudyNodeSlots; ++i) {
    const cluster::NodeId node = cluster::node_from_index(i);
    writer.begin_node(node);
    EncodedNodeLog enc(node, archive.log(node), scratch, kernels, &arena);
    writer.on_node_log(enc);
    writer.end_node(node);
  }
  writer.finish();
  UNP_REQUIRE(os.good());
}

CampaignArchive load_archive_stream(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  UNP_REQUIRE(is.good());
  ArchiveReader reader(is);
  CampaignArchive archive(reader.window());
  // Decoded logs are moved in whole; replaying record-by-record through the
  // sink interface would double the work.
  cluster::NodeId node{};
  NodeLog log;
  while (reader.next(node, log)) archive.log(node) = std::move(log);
  return archive;
}

}  // namespace unp::telemetry
