#include "cluster/topology.hpp"

#include <gtest/gtest.h>

#include "common/require.hpp"

namespace unp::cluster {
namespace {

TEST(Topology, GeometryConstants) {
  EXPECT_EQ(kTotalBlades, 72);
  EXPECT_EQ(kTotalNodes, 1080);
  EXPECT_EQ(kStudyBlades, 63);
  EXPECT_EQ(kStudyNodeSlots, 945);
  EXPECT_EQ(kNodeMemoryBytes, 4ULL << 30);
  EXPECT_EQ(kScannableBytes, 3ULL << 30);
}

TEST(Topology, NodeIndexRoundTrip) {
  for (int i = 0; i < kStudyNodeSlots; ++i) {
    EXPECT_EQ(node_index(node_from_index(i)), i);
  }
}

TEST(Topology, NodeNameFormat) {
  EXPECT_EQ(node_name({2, 4}), "02-04");
  EXPECT_EQ(node_name({58, 2}), "58-02");
  EXPECT_EQ(parse_node_name("02-04"), (NodeId{2, 4}));
  EXPECT_EQ(parse_node_name("62-14"), (NodeId{62, 14}));
}

TEST(Topology, ParseRejectsOutOfRange) {
  EXPECT_THROW((void)parse_node_name("63-00"), ContractViolation);
  EXPECT_THROW((void)parse_node_name("00-15"), ContractViolation);
  EXPECT_THROW((void)parse_node_name("junk"), ContractViolation);
}

TEST(Topology, MonitoredPopulationIs923) {
  const Topology topo;
  EXPECT_EQ(topo.monitored_count(), 923);  // 945 - 9 login - 13 dead
}

TEST(Topology, LoginNodesAreFirstSocOfFirstBlades) {
  const Topology topo;
  for (int blade = 0; blade < 9; ++blade) {
    EXPECT_EQ(topo.role({blade, 0}), NodeRole::kLogin);
  }
  EXPECT_EQ(topo.role({9, 0}), NodeRole::kCompute);
}

TEST(Topology, DeadNodeCountMatchesConfig) {
  const Topology topo;
  int dead = 0;
  for (int i = 0; i < kStudyNodeSlots; ++i) {
    if (topo.role(node_from_index(i)) == NodeRole::kDeadOnArrival) ++dead;
  }
  EXPECT_EQ(dead, 13);
}

TEST(Topology, DeterministicAcrossInstances) {
  const Topology a, b;
  for (int i = 0; i < kStudyNodeSlots; ++i) {
    EXPECT_EQ(a.role(node_from_index(i)), b.role(node_from_index(i)));
  }
}

TEST(Topology, DifferentSeedMovesDeadNodes) {
  Topology::Config config;
  config.seed = 1234;
  const Topology a, b(config);
  bool moved = false;
  for (int i = 0; i < kStudyNodeSlots; ++i) {
    moved |= a.role(node_from_index(i)) != b.role(node_from_index(i));
  }
  EXPECT_TRUE(moved);
}

TEST(Topology, OverheatingColumn) {
  EXPECT_TRUE(Topology::is_overheating_slot({10, 12}));
  EXPECT_FALSE(Topology::is_overheating_slot({10, 11}));
}

TEST(Topology, ChassisAndRack) {
  EXPECT_EQ(Topology::chassis_of({0, 0}), 0);
  EXPECT_EQ(Topology::chassis_of({8, 0}), 0);
  EXPECT_EQ(Topology::chassis_of({9, 0}), 1);
  EXPECT_EQ(Topology::rack_of({0, 0}), 0);
  EXPECT_EQ(Topology::rack_of({35, 0}), 0);
  EXPECT_EQ(Topology::rack_of({36, 0}), 1);
}

TEST(Topology, MonitoredListSortedAndConsistent) {
  const Topology topo;
  const auto& nodes = topo.monitored_nodes();
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    EXPECT_LT(node_index(nodes[i - 1]), node_index(nodes[i]));
  }
  for (const auto& n : nodes) EXPECT_TRUE(topo.is_monitored(n));
}

TEST(Topology, RoleNames) {
  EXPECT_STREQ(to_string(NodeRole::kCompute), "compute");
  EXPECT_STREQ(to_string(NodeRole::kLogin), "login");
  EXPECT_STREQ(to_string(NodeRole::kDeadOnArrival), "dead");
}

}  // namespace
}  // namespace unp::cluster
