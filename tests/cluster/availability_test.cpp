#include "cluster/availability.hpp"

#include <gtest/gtest.h>

#include "common/require.hpp"
#include "common/rng.hpp"

namespace unp::cluster {
namespace {

TEST(Timeline, RejectsOverlapsAndEmpties) {
  EXPECT_THROW(AvailabilityTimeline({{10, 10}}), ContractViolation);
  EXPECT_THROW(AvailabilityTimeline({{10, 20}, {15, 30}}), ContractViolation);
  EXPECT_NO_THROW(AvailabilityTimeline({{10, 20}, {20, 30}}));
}

TEST(Timeline, IsAvailable) {
  const AvailabilityTimeline t({{10, 20}, {30, 40}});
  EXPECT_FALSE(t.is_available(9));
  EXPECT_TRUE(t.is_available(10));
  EXPECT_TRUE(t.is_available(19));
  EXPECT_FALSE(t.is_available(20));
  EXPECT_FALSE(t.is_available(25));
  EXPECT_TRUE(t.is_available(35));
  EXPECT_FALSE(t.is_available(40));
}

TEST(Timeline, TotalSeconds) {
  const AvailabilityTimeline t({{0, 100}, {200, 250}});
  EXPECT_EQ(t.total_seconds(), 150);
  EXPECT_NEAR(t.total_hours(), 150.0 / 3600.0, 1e-12);
}

TEST(Timeline, SubtractMiddleSplits) {
  AvailabilityTimeline t({{0, 100}});
  t.subtract({40, 60});
  ASSERT_EQ(t.intervals().size(), 2u);
  EXPECT_EQ(t.intervals()[0], (Interval{0, 40}));
  EXPECT_EQ(t.intervals()[1], (Interval{60, 100}));
}

TEST(Timeline, SubtractEdgesAndBeyond) {
  AvailabilityTimeline t({{10, 20}, {30, 40}});
  t.subtract({0, 12});   // clips the head
  t.subtract({38, 99});  // clips the tail
  t.subtract({50, 60});  // outside: no-op
  t.subtract({5, 3});    // empty cut: no-op
  ASSERT_EQ(t.intervals().size(), 2u);
  EXPECT_EQ(t.intervals()[0], (Interval{12, 20}));
  EXPECT_EQ(t.intervals()[1], (Interval{30, 38}));
}

TEST(Timeline, SubtractWholeInterval) {
  AvailabilityTimeline t({{10, 20}, {30, 40}});
  t.subtract({10, 20});
  ASSERT_EQ(t.intervals().size(), 1u);
  EXPECT_EQ(t.intervals()[0], (Interval{30, 40}));
}

TEST(Timeline, Clip) {
  const AvailabilityTimeline t({{0, 100}, {200, 300}});
  const auto clipped = t.clip({50, 250});
  ASSERT_EQ(clipped.size(), 2u);
  EXPECT_EQ(clipped[0], (Interval{50, 100}));
  EXPECT_EQ(clipped[1], (Interval{200, 250}));
}

TEST(Timeline, SubtractPropertyTotalNeverGrows) {
  RngStream rng(77);
  AvailabilityTimeline t({{0, 1000000}});
  std::int64_t previous = t.total_seconds();
  for (int i = 0; i < 200; ++i) {
    const auto start = static_cast<TimePoint>(rng.uniform_u64(1000000));
    const auto len = static_cast<std::int64_t>(rng.uniform_u64(5000));
    t.subtract({start, start + len});
    const std::int64_t now = t.total_seconds();
    EXPECT_LE(now, previous);
    EXPECT_GE(now, previous - len);
    previous = now;
    // Invariant: sorted, disjoint, non-empty.
    for (std::size_t k = 0; k < t.intervals().size(); ++k) {
      EXPECT_LT(t.intervals()[k].start, t.intervals()[k].end);
      if (k > 0) {
        EXPECT_GE(t.intervals()[k].start, t.intervals()[k - 1].end);
      }
    }
  }
}

TEST(Model, FullWindowForOrdinaryNode) {
  AvailabilityModel::Config config;
  config.maintenance_gaps_mean = 0.0;
  const AvailabilityModel model(config);
  const AvailabilityTimeline t = model.build({20, 5});
  EXPECT_EQ(t.total_seconds(), config.window.duration_seconds());
}

TEST(Model, OverheatingSlotLosesSecondHalf) {
  AvailabilityModel::Config config;
  config.maintenance_gaps_mean = 0.0;
  const AvailabilityModel model(config);
  const AvailabilityTimeline t = model.build({20, kOverheatingSoc});
  EXPECT_LT(t.total_seconds(), config.window.duration_seconds() / 2);
  EXPECT_FALSE(t.is_available(from_civil_utc({2015, 8, 1, 0, 0, 0})));
  EXPECT_TRUE(t.is_available(from_civil_utc({2015, 3, 1, 0, 0, 0})));
  // The October re-test window is powered.
  EXPECT_TRUE(t.is_available(from_civil_utc({2015, 10, 7, 12, 0, 0})));
}

TEST(Model, FailedBladeShutsDown) {
  AvailabilityModel::Config config;
  config.maintenance_gaps_mean = 0.0;
  const AvailabilityModel model(config);
  const AvailabilityTimeline t = model.build({config.failed_blade, 3});
  EXPECT_TRUE(t.is_available(from_civil_utc({2015, 4, 1, 0, 0, 0})));
  EXPECT_FALSE(t.is_available(from_civil_utc({2015, 7, 1, 0, 0, 0})));
}

TEST(Model, ExtraOutagesApplied) {
  AvailabilityModel::Config config;
  config.maintenance_gaps_mean = 0.0;
  const Interval outage{from_civil_utc({2015, 11, 26, 0, 0, 0}),
                        from_civil_utc({2015, 12, 12, 0, 0, 0})};
  config.extra_outages.push_back({NodeId{2, 4}, outage});
  const AvailabilityModel model(config);
  EXPECT_FALSE(model.build({2, 4}).is_available(
      from_civil_utc({2015, 12, 1, 0, 0, 0})));
  EXPECT_TRUE(model.build({2, 5}).is_available(
      from_civil_utc({2015, 12, 1, 0, 0, 0})));
}

TEST(Model, MaintenanceGapsReduceUptime) {
  const AvailabilityModel model;  // default: ~3 gaps/node
  double reduced = 0;
  int nodes = 0;
  for (int blade = 10; blade < 20; ++blade) {
    const AvailabilityTimeline t = model.build({blade, 5});
    reduced += static_cast<double>(t.total_seconds());
    ++nodes;
  }
  const auto full =
      static_cast<double>(AvailabilityModel::Config{}.window.duration_seconds());
  EXPECT_LT(reduced / nodes, full);
  EXPECT_GT(reduced / nodes, full * 0.9);  // gaps are days, not months
}

TEST(Model, DeterministicPerNode) {
  const AvailabilityModel model;
  EXPECT_EQ(model.build({7, 7}).intervals(), model.build({7, 7}).intervals());
}

}  // namespace
}  // namespace unp::cluster
