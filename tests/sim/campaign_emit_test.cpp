// CampaignEmitOptions matrix: the record stream a campaign emits must be
// byte-identical (UNPS) and record-identical (archive) across the optimized
// bulk/arena path, the legacy per-record/no-reuse path, every thread count,
// and every encode kernel set.  This is the contract that lets the perf
// bench compare those configurations as pure speed, not behavior.
#include "sim/campaign.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/simd_dispatch.hpp"
#include "telemetry/archive_io.hpp"
#include "telemetry/kernels/kernels.hpp"

namespace unp::sim {
namespace {

CampaignConfig short_config(std::uint64_t seed = 5) {
  CampaignConfig config;
  config.seed = seed;
  config.window.start = from_civil_utc({2015, 9, 1, 0, 0, 0});
  config.window.end = from_civil_utc({2015, 9, 8, 0, 0, 0});
  return config;
}

std::string stream_bytes(const CampaignEmitOptions& emit, std::size_t threads) {
  std::ostringstream os(std::ios::binary);
  telemetry::ArchiveWriter writer(os, emit.encode);
  std::vector<telemetry::RecordSink*> sinks{&writer};
  run_campaign_streaming(short_config(), sinks, threads, emit);
  return os.str();
}

TEST(CampaignEmit, StreamBytesIdenticalAcrossEmitMatrix) {
  // Baseline: legacy per-record replay, no buffer reuse, scalar kernels, one
  // thread — the configuration the throughput bench measures as "before".
  CampaignEmitOptions legacy;
  legacy.reuse_buffers = false;
  legacy.bulk_node_logs = false;
  legacy.encode =
      &telemetry::kernels::encode_kernels_for(simd::Isa::kScalar);
  const std::string expect = stream_bytes(legacy, 1);
  ASSERT_GT(expect.size(), 1u << 12);

  for (const simd::Isa isa : simd::supported_isas()) {
    for (const bool reuse : {true, false}) {
      for (const bool bulk : {true, false}) {
        for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
          CampaignEmitOptions emit;
          emit.reuse_buffers = reuse;
          emit.bulk_node_logs = bulk;
          emit.encode = &telemetry::kernels::encode_kernels_for(isa);
          EXPECT_EQ(stream_bytes(emit, threads), expect)
              << simd::to_string(isa) << " reuse=" << reuse << " bulk=" << bulk
              << " threads=" << threads;
        }
      }
    }
  }
}

TEST(CampaignEmit, ArchiveContentsIdenticalAcrossBulkAndReplay) {
  // CampaignArchive takes the record-routing path under bulk emission (it
  // never wants encoded bytes); its contents must match per-record replay.
  auto materialize = [](const CampaignEmitOptions& emit, std::size_t threads) {
    telemetry::CampaignArchive archive;
    std::vector<telemetry::RecordSink*> sinks{&archive};
    run_campaign_streaming(short_config(), sinks, threads, emit);
    return archive;
  };
  CampaignEmitOptions legacy;
  legacy.reuse_buffers = false;
  legacy.bulk_node_logs = false;
  const telemetry::CampaignArchive expect = materialize(legacy, 1);
  ASSERT_GT(expect.total_raw_errors(), 0u);

  const telemetry::CampaignArchive bulk = materialize({}, 4);
  EXPECT_EQ(bulk.total_raw_errors(), expect.total_raw_errors());
  EXPECT_DOUBLE_EQ(bulk.total_monitored_hours(), expect.total_monitored_hours());
  for (int i = 0; i < cluster::kStudyNodeSlots; ++i) {
    const cluster::NodeId node = cluster::node_from_index(i);
    ASSERT_EQ(bulk.log(node).starts(), expect.log(node).starts()) << i;
    ASSERT_EQ(bulk.log(node).ends(), expect.log(node).ends()) << i;
    ASSERT_EQ(bulk.log(node).alloc_fails(), expect.log(node).alloc_fails()) << i;
    ASSERT_EQ(bulk.log(node).error_runs(), expect.log(node).error_runs()) << i;
  }
}

TEST(CampaignEmit, MixedSinksShareOneEncodedBody) {
  // A byte sink (ArchiveWriter) and a record sink (CampaignArchive) fed from
  // the same streaming run: the writer's stream must equal a writer-only run
  // and the archive must equal an archive-only run — one encode per node
  // serves both.
  CampaignEmitOptions emit;  // optimized defaults
  std::ostringstream solo_os(std::ios::binary);
  {
    telemetry::ArchiveWriter writer(solo_os);
    std::vector<telemetry::RecordSink*> sinks{&writer};
    run_campaign_streaming(short_config(), sinks, 2, emit);
  }

  std::ostringstream os(std::ios::binary);
  telemetry::ArchiveWriter writer(os);
  telemetry::CampaignArchive archive;
  std::vector<telemetry::RecordSink*> sinks{&writer, &archive};
  run_campaign_streaming(short_config(), sinks, 2, emit);

  EXPECT_EQ(os.str(), solo_os.str());

  telemetry::CampaignArchive solo_archive;
  std::vector<telemetry::RecordSink*> archive_sinks{&solo_archive};
  run_campaign_streaming(short_config(), archive_sinks, 1, emit);
  EXPECT_EQ(archive.total_raw_errors(), solo_archive.total_raw_errors());
  EXPECT_DOUBLE_EQ(archive.total_terabyte_hours(),
                   solo_archive.total_terabyte_hours());
}

}  // namespace
}  // namespace unp::sim
