#include "sim/session_sim.hpp"

#include <gtest/gtest.h>

namespace unp::sim {
namespace {

using faults::FaultEvent;
using faults::Mechanism;
using faults::Persistence;

const TimePoint kT0 = from_civil_utc({2015, 5, 1, 0, 0, 0});

sched::ScanPlan one_session(TimePoint start, std::int64_t seconds,
                            scanner::PatternKind pattern =
                                scanner::PatternKind::kAlternating,
                            std::int64_t period = 100) {
  sched::ScanPlan plan;
  sched::ScanSession s;
  s.window = {start, start + seconds};
  s.pattern = pattern;
  s.allocated_bytes = cluster::kScannableBytes;
  s.pass_period_s = period;
  plan.sessions.push_back(s);
  return plan;
}

FaultEvent transient_at(TimePoint t, std::uint64_t word, Word mask,
                        Word stuck = 0) {
  FaultEvent ev;
  ev.time = t;
  ev.node = {4, 4};
  ev.mechanism = Mechanism::kBackgroundTransient;
  ev.persistence = Persistence::kTransient;
  ev.words.push_back({word, dram::WordCorruption{mask, stuck}});
  return ev;
}

SessionSimConfig config_with_sensors_always_on() {
  SessionSimConfig config;
  config.sensors_online = 0;
  return config;
}

TEST(SessionSim, StartAndEndRecords) {
  const auto plan = one_session(kT0, 1000);
  const auto log = simulate_node(SessionSimConfig{}, {4, 4}, plan, {}, false, 1);
  ASSERT_EQ(log.starts().size(), 1u);
  ASSERT_EQ(log.ends().size(), 1u);
  EXPECT_EQ(log.starts()[0].time, kT0);
  EXPECT_EQ(log.ends()[0].time, kT0 + 1000);
  EXPECT_EQ(log.starts()[0].allocated_bytes, cluster::kScannableBytes);
}

TEST(SessionSim, EndLostOmitsEnd) {
  auto plan = one_session(kT0, 1000);
  plan.sessions[0].end_lost = true;
  const auto log = simulate_node(SessionSimConfig{}, {4, 4}, plan, {}, false, 1);
  EXPECT_EQ(log.starts().size(), 1u);
  EXPECT_TRUE(log.ends().empty());
}

TEST(SessionSim, AllocFailuresLogged) {
  auto plan = one_session(kT0, 1000);
  plan.failures.push_back({kT0 + 5000});
  const auto log = simulate_node(SessionSimConfig{}, {4, 4}, plan, {}, false, 1);
  ASSERT_EQ(log.alloc_fails().size(), 1u);
  EXPECT_EQ(log.alloc_fails()[0].time, kT0 + 5000);
}

TEST(SessionSim, DischargeDetectedAtNextCheckOfVisiblePhase) {
  // Fault at t0+150 corrupts the value written at iteration 1 (0xFFFFFFFF,
  // stored during [100, 200)); the check at t0+200 sees it.
  const auto plan = one_session(kT0, 1000);
  const auto ev = transient_at(kT0 + 150, 42, 0x00000011u);
  const auto log =
      simulate_node(SessionSimConfig{}, {4, 4}, plan, {ev}, false, 1);
  ASSERT_EQ(log.error_runs().size(), 1u);
  const auto& err = log.error_runs()[0].first;
  EXPECT_EQ(err.time, kT0 + 200);
  EXPECT_EQ(err.expected, 0xFFFFFFFFu);
  EXPECT_EQ(err.actual, 0xFFFFFFEEu);
  EXPECT_EQ(err.virtual_address, 42u * 4);
}

TEST(SessionSim, DischargeDuringZeroPhaseInvisible) {
  // Fault at t0+50: iteration 0 wrote 0x00000000; discharging cells that
  // hold 0 changes nothing, and the next write repairs them silently.
  const auto plan = one_session(kT0, 1000);
  const auto ev = transient_at(kT0 + 50, 42, 0x00000011u);
  const auto log =
      simulate_node(SessionSimConfig{}, {4, 4}, plan, {ev}, false, 1);
  EXPECT_TRUE(log.error_runs().empty());
}

TEST(SessionSim, ChargeGainVisibleInZeroPhase) {
  const auto plan = one_session(kT0, 1000);
  const auto ev = transient_at(kT0 + 50, 42, 0x1u, 0x1u);
  const auto log =
      simulate_node(SessionSimConfig{}, {4, 4}, plan, {ev}, false, 1);
  ASSERT_EQ(log.error_runs().size(), 1u);
  EXPECT_EQ(log.error_runs()[0].first.expected, 0x00000000u);
  EXPECT_EQ(log.error_runs()[0].first.actual, 0x00000001u);
  EXPECT_EQ(log.error_runs()[0].first.time, kT0 + 100);
}

TEST(SessionSim, EventAfterLastCheckIsMissed) {
  const auto plan = one_session(kT0, 1000);  // checks at +100..+900
  const auto ev = transient_at(kT0 + 950, 42, 0xFFu);
  const auto log =
      simulate_node(SessionSimConfig{}, {4, 4}, plan, {ev}, false, 1);
  EXPECT_TRUE(log.error_runs().empty());
}

TEST(SessionSim, EventOutsideSessionsIsMissed) {
  const auto plan = one_session(kT0, 1000);
  const auto ev = transient_at(kT0 + 100000, 42, 0xFFu);
  const auto log =
      simulate_node(SessionSimConfig{}, {4, 4}, plan, {ev}, false, 1);
  EXPECT_TRUE(log.error_runs().empty());
}

TEST(SessionSim, MultiWordEventSharesTimestamp) {
  const auto plan = one_session(kT0, 1000);
  FaultEvent ev = transient_at(kT0 + 150, 10, 0x1u);
  ev.words.push_back({20, dram::WordCorruption{0x2u, 0}});
  ev.words.push_back({30, dram::WordCorruption{0x4u, 0}});
  const auto log =
      simulate_node(SessionSimConfig{}, {4, 4}, plan, {ev}, false, 1);
  ASSERT_EQ(log.error_runs().size(), 3u);
  for (const auto& run : log.error_runs()) {
    EXPECT_EQ(run.first.time, kT0 + 200);  // the simultaneity signature
  }
}

TEST(SessionSim, StuckFaultProducesRunEveryOtherCheck) {
  // Session of 2000 s, checks at +100..+1900 (19 checks).  A stuck-at-0
  // cell from the session start is visible at even checks (expect
  // 0xFFFFFFFF): 200, 400, ..., 1800 -> 9 logs, period 200.
  const auto plan = one_session(kT0, 2000);
  FaultEvent ev;
  ev.time = kT0;
  ev.node = {4, 4};
  ev.persistence = Persistence::kStuck;
  ev.active_until = kT0 + 100000;
  ev.words.push_back({7, dram::CellLeakModel::all_discharge(0x1u)});
  const auto log =
      simulate_node(SessionSimConfig{}, {4, 4}, plan, {ev}, false, 1);
  ASSERT_EQ(log.error_runs().size(), 1u);
  const auto& run = log.error_runs()[0];
  EXPECT_EQ(run.first.time, kT0 + 200);
  EXPECT_EQ(run.period_s, 200);
  EXPECT_EQ(run.count, 9u);
  EXPECT_EQ(run.first.expected, 0xFFFFFFFFu);
  EXPECT_EQ(run.first.actual, 0xFFFFFFFEu);
}

TEST(SessionSim, StuckMixedDirectionsYieldTwoPhaseRuns) {
  // One cell stuck at 0 and one stuck at 1 in the same word: both phases
  // are corrupted, so two interleaved runs appear.
  const auto plan = one_session(kT0, 2000);
  FaultEvent ev;
  ev.time = kT0;
  ev.node = {4, 4};
  ev.persistence = Persistence::kStuck;
  ev.active_until = kT0 + 100000;
  ev.words.push_back({7, dram::WordCorruption{0x3u, 0x2u}});
  const auto log =
      simulate_node(SessionSimConfig{}, {4, 4}, plan, {ev}, false, 1);
  ASSERT_EQ(log.error_runs().size(), 2u);
  std::uint64_t total = 0;
  for (const auto& run : log.error_runs()) total += run.count;
  EXPECT_EQ(total, 19u);  // every check reports something
}

TEST(SessionSim, StuckFaultEndsAtActiveUntil) {
  const auto plan = one_session(kT0, 2000);
  FaultEvent ev;
  ev.time = kT0;
  ev.node = {4, 4};
  ev.persistence = Persistence::kStuck;
  ev.active_until = kT0 + 500;  // heals mid-session
  ev.words.push_back({7, dram::CellLeakModel::all_discharge(0x1u)});
  const auto log =
      simulate_node(SessionSimConfig{}, {4, 4}, plan, {ev}, false, 1);
  ASSERT_EQ(log.error_runs().size(), 1u);
  EXPECT_EQ(log.error_runs()[0].count, 2u);  // checks at 200 and 400 only
}

TEST(SessionSim, StuckFaultSpansSessions) {
  sched::ScanPlan plan = one_session(kT0, 1000);
  plan.sessions.push_back(plan.sessions[0]);
  plan.sessions[1].window = {kT0 + 5000, kT0 + 6000};
  FaultEvent ev;
  ev.time = kT0;
  ev.node = {4, 4};
  ev.persistence = Persistence::kStuck;
  ev.active_until = kT0 + 100000;
  ev.words.push_back({7, dram::CellLeakModel::all_discharge(0x1u)});
  const auto log =
      simulate_node(SessionSimConfig{}, {4, 4}, plan, {ev}, false, 1);
  EXPECT_EQ(log.error_runs().size(), 2u);  // one run per session
}

TEST(SessionSim, CounterSessionDetectsCollidingValues) {
  // Counter pattern with exact per-check evaluation: a stuck-at-0 low bit
  // collides with every odd counter value.
  const auto plan =
      one_session(kT0, 1000, scanner::PatternKind::kCounter);
  FaultEvent ev;
  ev.time = kT0;
  ev.node = {4, 4};
  ev.persistence = Persistence::kStuck;
  ev.active_until = kT0 + 100000;
  ev.words.push_back({7, dram::CellLeakModel::all_discharge(0x1u)});
  const auto log =
      simulate_node(SessionSimConfig{}, {4, 4}, plan, {ev}, false, 1);
  // Checks i=1..9 expect counter values 1..9; odd values 1,3,5,7,9 collide.
  ASSERT_EQ(log.error_runs().size(), 5u);
  EXPECT_EQ(log.error_runs()[0].first.expected, 0x1u);
  EXPECT_EQ(log.error_runs()[0].first.actual, 0x0u);
}

TEST(SessionSim, TemperatureOnlyAfterSensorsOnline) {
  SessionSimConfig config;  // sensors online April 2015
  const TimePoint before = from_civil_utc({2015, 3, 1, 0, 0, 0});
  const TimePoint after = from_civil_utc({2015, 6, 1, 0, 0, 0});
  const auto plan_before = one_session(before, 1000);
  const auto plan_after = one_session(after, 1000);
  const auto log_before =
      simulate_node(config, {4, 4}, plan_before, {}, false, 1);
  const auto log_after = simulate_node(config, {4, 4}, plan_after, {}, false, 1);
  EXPECT_FALSE(telemetry::has_temperature(log_before.starts()[0].temperature_c));
  EXPECT_TRUE(telemetry::has_temperature(log_after.starts()[0].temperature_c));
}

TEST(SessionSim, OverheatingNodesRunHot) {
  const auto config = config_with_sensors_always_on();
  const auto plan = one_session(kT0, 1000);
  const auto hot = simulate_node(config, {4, 12}, plan, {}, true, 1);
  const auto cool = simulate_node(config, {4, 4}, plan, {}, false, 1);
  EXPECT_GT(hot.starts()[0].temperature_c,
            cool.starts()[0].temperature_c + 15.0);
}

}  // namespace
}  // namespace unp::sim
