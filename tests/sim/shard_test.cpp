// Partition invariants of the sharded campaign fabric: shard ownership is
// disjoint/exhaustive/ascending, and the streaming merge of K shard
// archives reproduces the monolithic record stream byte for byte for any
// shard count.
#include "sim/shard.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "telemetry/archive_io.hpp"
#include "telemetry/shard_merge.hpp"

namespace unp::sim {
namespace {

CampaignConfig short_config(std::uint64_t seed = 5) {
  CampaignConfig config;
  config.seed = seed;
  config.window.start = from_civil_utc({2015, 9, 1, 0, 0, 0});
  config.window.end = from_civil_utc({2015, 9, 15, 0, 0, 0});
  return config;
}

constexpr std::uint64_t kFingerprint = 0x5eedf00d;

/// Simulate one shard into a self-describing UNPH archive at `path`.
void write_shard_file(const std::string& path, const CampaignConfig& config,
                      const ShardSpec& spec) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(os.good());
  telemetry::write_shard_header(
      os, {static_cast<std::uint32_t>(spec.count),
           static_cast<std::uint32_t>(spec.index), kFingerprint});
  telemetry::ArchiveWriter writer(os);
  (void)run_campaign_shard(config, spec, {&writer});
}

TEST(Shard, PartitionIsDisjointExhaustiveAscending) {
  const cluster::Topology topology(cluster::Topology::Config{});
  const std::vector<cluster::NodeId>& monitored = topology.monitored_nodes();
  for (const int count : {1, 2, 8}) {
    SCOPED_TRACE(testing::Message() << "count=" << count);
    std::set<cluster::NodeId> seen;
    for (int index = 0; index < count; ++index) {
      const std::vector<cluster::NodeId> owned =
          shard_nodes(topology, ShardSpec{count, index});
      for (std::size_t j = 1; j < owned.size(); ++j) {
        EXPECT_LT(cluster::node_index(owned[j - 1]),
                  cluster::node_index(owned[j]));
      }
      for (const cluster::NodeId& node : owned) {
        EXPECT_TRUE(seen.insert(node).second) << "node owned twice";
      }
    }
    EXPECT_EQ(seen.size(), monitored.size());
  }
  // The ownership rule itself: position j of the monitored list -> j % K.
  for (std::size_t j = 0; j < monitored.size(); ++j) {
    const std::vector<cluster::NodeId> owned = shard_nodes(
        topology, ShardSpec{8, static_cast<int>(j % 8)});
    EXPECT_NE(std::find(owned.begin(), owned.end(), monitored[j]),
              owned.end());
  }
}

TEST(Shard, MonolithicSpecIsRunCampaignStreaming) {
  const CampaignConfig config = short_config();
  std::ostringstream via_shard;
  std::ostringstream via_streaming;
  {
    telemetry::ArchiveWriter writer(via_shard);
    (void)run_campaign_shard(config, ShardSpec{}, {&writer});
  }
  {
    telemetry::ArchiveWriter writer(via_streaming);
    (void)run_campaign_streaming(config, {&writer});
  }
  EXPECT_EQ(via_shard.view(), via_streaming.view());
}

// The tentpole invariant: for K in {1, 2, 8}, simulating the K shards
// independently and stream-merging their archives yields the exact bytes of
// the monolithic spill.
TEST(Shard, MergedStreamMatchesMonolithicForAnyShardCount) {
  const CampaignConfig config = short_config();
  std::ostringstream mono;
  {
    telemetry::ArchiveWriter writer(mono);
    (void)run_campaign_shard(config, ShardSpec{}, {&writer}, /*threads=*/2);
  }
  ASSERT_GT(mono.view().size(), 1000u);

  for (const int count : {1, 2, 8}) {
    SCOPED_TRACE(testing::Message() << "count=" << count);
    std::vector<std::string> paths;
    for (int index = 0; index < count; ++index) {
      const std::string path = ::testing::TempDir() + "shard_test_" +
                               std::to_string(count) + "_" +
                               std::to_string(index) + ".unph";
      write_shard_file(path, config, ShardSpec{count, index});
      paths.push_back(path);
    }

    std::ostringstream merged;
    telemetry::merge_shard_archives(paths, merged);
    ASSERT_EQ(merged.view().size(), mono.view().size());
    EXPECT_TRUE(merged.view() == mono.view());

    // Shard files are self-describing and stamp the ensemble id.
    std::ifstream is(paths.back(), std::ios::binary);
    const telemetry::ShardHeader header = telemetry::read_shard_header(is);
    EXPECT_EQ(header.shard_count, static_cast<std::uint32_t>(count));
    EXPECT_EQ(header.shard_index, static_cast<std::uint32_t>(count - 1));
    EXPECT_EQ(header.fingerprint, kFingerprint);

    for (const std::string& path : paths) std::remove(path.c_str());
  }
}

// Shard summaries are the monolithic summary filtered to owned nodes: the
// parts concatenate without loss or overlap.
TEST(Shard, SummariesPartitionTheMonolithicSummary) {
  const CampaignConfig config = short_config();

  class Discard final : public telemetry::RecordSink {
   public:
    void on_start(const telemetry::StartRecord&) override {}
    void on_end(const telemetry::EndRecord&) override {}
    void on_alloc_fail(const telemetry::AllocFailRecord&) override {}
    void on_error_run(const telemetry::ErrorRun&) override {}
  };

  Discard sink;
  const CampaignSummary mono = run_campaign_shard(config, ShardSpec{}, {&sink});

  std::size_t nodes = 0;
  std::size_t truth = 0;
  double hours = 0.0;
  for (int index = 0; index < 4; ++index) {
    const CampaignSummary part =
        run_campaign_shard(config, ShardSpec{4, index}, {&sink});
    nodes += part.accounting.size();
    truth += part.ground_truth.size();
    hours += part.total_scanned_hours();
  }
  EXPECT_EQ(nodes, mono.accounting.size());
  EXPECT_EQ(truth, mono.ground_truth.size());
  EXPECT_DOUBLE_EQ(hours, mono.total_scanned_hours());
}

}  // namespace
}  // namespace unp::sim
