#include "sim/campaign.hpp"

#include <gtest/gtest.h>

#include "analysis/extraction.hpp"

namespace unp::sim {
namespace {

CampaignConfig short_config(std::uint64_t seed = 5) {
  CampaignConfig config;
  config.seed = seed;
  config.window.start = from_civil_utc({2015, 9, 1, 0, 0, 0});
  config.window.end = from_civil_utc({2015, 9, 15, 0, 0, 0});
  return config;
}

TEST(Campaign, DeterministicAcrossRuns) {
  const CampaignResult a = run_campaign(short_config());
  const CampaignResult b = run_campaign(short_config());
  EXPECT_EQ(a.summary.ground_truth.size(), b.summary.ground_truth.size());
  EXPECT_DOUBLE_EQ(a.total_scanned_hours(), b.total_scanned_hours());
  EXPECT_EQ(a.archive.total_raw_errors(), b.archive.total_raw_errors());
}

TEST(Campaign, DeterministicAcrossThreadCounts) {
  const CampaignResult a = run_campaign(short_config(), 1);
  const CampaignResult b = run_campaign(short_config(), 4);
  EXPECT_EQ(a.archive.total_raw_errors(), b.archive.total_raw_errors());
  EXPECT_DOUBLE_EQ(a.total_terabyte_hours(), b.total_terabyte_hours());
  ASSERT_EQ(a.summary.ground_truth.size(), b.summary.ground_truth.size());
  for (std::size_t i = 0; i < a.summary.ground_truth.size(); ++i) {
    EXPECT_EQ(a.summary.ground_truth[i].time, b.summary.ground_truth[i].time);
    EXPECT_EQ(cluster::node_index(a.summary.ground_truth[i].node),
              cluster::node_index(b.summary.ground_truth[i].node));
  }
}

TEST(Campaign, SeedChangesOutcome) {
  const CampaignResult a = run_campaign(short_config(1));
  const CampaignResult b = run_campaign(short_config(2));
  EXPECT_NE(a.archive.total_raw_errors(), b.archive.total_raw_errors());
}

TEST(Campaign, AccountingCoversMonitoredFleet) {
  const CampaignResult result = run_campaign(short_config());
  EXPECT_EQ(result.summary.accounting.size(), 923u);
  double hours = 0.0;
  for (const auto& acc : result.summary.accounting) {
    EXPECT_GE(acc.scanned_hours, 0.0);
    hours += acc.scanned_hours;
  }
  EXPECT_NEAR(hours, result.total_scanned_hours(), 1e-6);
  EXPECT_GT(hours, 0.0);
}

TEST(Campaign, ArchiveAgreesWithAccounting) {
  // Hours derived from the telemetry (START/END pairs) must track the
  // planner's ground-truth hours (up to lost-END sessions).
  const CampaignResult result = run_campaign(short_config());
  const double archive_hours = result.archive.total_monitored_hours();
  EXPECT_NEAR(archive_hours, result.total_scanned_hours(),
              0.02 * result.total_scanned_hours());
}

TEST(Campaign, LoginAndDeadNodesNeverLog) {
  const CampaignResult result = run_campaign(short_config());
  for (int i = 0; i < cluster::kStudyNodeSlots; ++i) {
    const cluster::NodeId node = cluster::node_from_index(i);
    if (!result.summary.topology.is_monitored(node)) {
      EXPECT_EQ(result.archive.log(node).starts().size(), 0u);
      EXPECT_EQ(result.archive.log(node).raw_error_count(), 0u);
    }
  }
}

TEST(Campaign, GroundTruthSortedAndOnMonitoredNodes) {
  const CampaignResult result = run_campaign(short_config());
  for (std::size_t i = 0; i < result.summary.ground_truth.size(); ++i) {
    if (i > 0) {
      EXPECT_LE(result.summary.ground_truth[i - 1].time, result.summary.ground_truth[i].time);
    }
    EXPECT_TRUE(result.summary.topology.is_monitored(result.summary.ground_truth[i].node));
  }
}

TEST(Campaign, SpecialOutagesSilenceDegradingNodeInDecember) {
  CampaignConfig config;  // full campaign needed for the December window
  config.seed = 3;
  const CampaignResult result = run_campaign(config);
  const cluster::NodeId degrading = config.faults.degrading.node;
  const auto& log = result.archive.log(degrading);
  int december_sessions = 0;
  for (const auto& start : log.starts()) {
    const CivilDateTime c = to_civil_utc(start.time);
    if (c.year == 2015 && c.month == 12) ++december_sessions;
    // No session may begin inside the unmonitored stretch.
    EXPECT_FALSE(start.time >= from_civil_utc({2015, 11, 26, 12, 0, 0}) &&
                 start.time < from_civil_utc({2015, 12, 12, 9, 0, 0}))
        << format_iso8601(start.time);
  }
  EXPECT_GT(december_sessions, 0);  // the short re-test window
}

TEST(Campaign, PathologicalNodeStopsAtRemoval) {
  CampaignConfig config;
  config.seed = 3;
  const CampaignResult result = run_campaign(config);
  const auto& log = result.archive.log(config.faults.pathological.node);
  for (const auto& start : log.starts()) {
    EXPECT_LT(start.time, config.faults.pathological.removal);
  }
  EXPECT_GT(log.raw_error_count(), 1000000u);
}

}  // namespace
}  // namespace unp::sim
