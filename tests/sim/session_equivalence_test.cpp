// Property tests for the simulation's equivalence guarantees:
//
//   1. the analytic session simulator (sim/session_sim) must produce exactly
//      the ERROR stream that the real MemoryScanner would when driven
//      pass-by-pass over a fault-injected backend - the test that licenses
//      replacing 10^17 word operations with the analytic model;
//   2. the campaign driver must produce byte-identical archives and
//      accounting for any thread count - the test that licenses running
//      default_campaign() on all hardware threads.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hpp"
#include "scanner/scanner.hpp"
#include "scanner/sim_backend.hpp"
#include "sim/campaign.hpp"
#include "sim/session_sim.hpp"
#include "telemetry/binary_codec.hpp"

namespace unp::sim {
namespace {

struct Observation {
  TimePoint time;
  std::uint64_t vaddr;
  Word expected;
  Word actual;

  friend bool operator==(const Observation&, const Observation&) = default;
  friend auto operator<=>(const Observation&, const Observation&) = default;
};

class SessionEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SessionEquivalence, ScannerAndAnalyticModelAgree) {
  const std::uint64_t seed = GetParam();
  RngStream rng(seed);

  const TimePoint t0 = from_civil_utc({2015, 5, 1, 8, 0, 0});
  constexpr std::uint64_t kWords = 1 << 14;

  // Random plan: 2-4 sessions with random lengths/patterns.
  sched::ScanPlan plan;
  TimePoint cursor = t0;
  const auto sessions = 2 + rng.uniform_u64(3);
  for (std::uint64_t s = 0; s < sessions; ++s) {
    sched::ScanSession session;
    session.window = {cursor,
                      cursor + 400 + static_cast<TimePoint>(rng.uniform_u64(3000))};
    session.pattern = rng.bernoulli(0.3) ? scanner::PatternKind::kCounter
                                         : scanner::PatternKind::kAlternating;
    session.allocated_bytes = kWords * sizeof(Word);
    session.pass_period_s = 50 + static_cast<std::int64_t>(rng.uniform_u64(100));
    plan.sessions.push_back(session);
    cursor = session.window.end + static_cast<TimePoint>(rng.uniform_u64(5000));
  }

  // Random transient fault events, mostly inside sessions.
  std::vector<faults::FaultEvent> events;
  const auto fault_count = 10 + rng.uniform_u64(30);
  for (std::uint64_t f = 0; f < fault_count; ++f) {
    faults::FaultEvent ev;
    const auto& session = plan.sessions[rng.uniform_u64(plan.sessions.size())];
    ev.time = session.window.start +
              static_cast<TimePoint>(rng.uniform_u64(
                  static_cast<std::uint64_t>(session.window.seconds() + 200)));
    ev.node = {4, 4};
    ev.persistence = faults::Persistence::kTransient;
    const auto words = 1 + rng.uniform_u64(3);
    for (std::uint64_t w = 0; w < words; ++w) {
      Word mask = 0;
      const auto bits = 1 + rng.uniform_u64(4);
      for (std::uint64_t b = 0; b < bits; ++b) mask |= 1u << rng.uniform_u64(32);
      const Word stuck = rng.bernoulli(0.85) ? Word{0} : mask;
      ev.words.push_back({rng.uniform_u64(kWords), dram::WordCorruption{mask, stuck}});
    }
    events.push_back(ev);
  }

  // --- Analytic model ---
  SessionSimConfig config;
  config.sensors_online = from_civil_utc({2099, 1, 1, 0, 0, 0});  // no temps
  const telemetry::NodeLog analytic =
      simulate_node(config, {4, 4}, plan, events, false, seed);
  std::vector<Observation> expected_obs;
  for (const auto& run : analytic.error_runs()) {
    for (const auto& rec : run.expand()) {
      expected_obs.push_back(
          {rec.time, rec.virtual_address, rec.expected, rec.actual});
    }
  }

  // --- Real scanner, driven pass-by-pass ---
  std::vector<faults::FaultEvent> sorted = events;
  faults::sort_events(sorted);
  std::vector<Observation> scanner_obs;
  for (const auto& session : plan.sessions) {
    scanner::SimulatedMemoryBackend backend(kWords);
    telemetry::NodeLog log;
    scanner::NodeLogSink sink(log);
    scanner::ManualClock clock(session.window.start);
    scanner::FixedProbe probe(telemetry::kNoTemperature);
    scanner::MemoryScanner scan(backend, sink, clock, probe,
                                {{4, 4}, session.pattern, 0});
    scan.start();
    const std::uint64_t iterations = session.iterations();
    for (std::uint64_t i = 1; i <= iterations; ++i) {
      const TimePoint check_time =
          session.window.start +
          static_cast<TimePoint>(i) * session.pass_period_s;
      if (check_time >= session.window.end) break;
      // Inject every event whose strike time falls before this check and
      // after the previous one.
      const TimePoint window_lo =
          session.window.start +
          static_cast<TimePoint>(i - 1) * session.pass_period_s;
      for (const auto& ev : sorted) {
        if (ev.time >= window_lo && ev.time < check_time &&
            session.window.contains(ev.time)) {
          for (const auto& wf : ev.words) {
            backend.inject_transient(wf.word_index, wf.corruption);
          }
        }
      }
      clock.set(check_time);
      scan.step();
    }
    for (const auto& run : log.error_runs()) {
      scanner_obs.push_back({run.first.time, run.first.virtual_address,
                             run.first.expected, run.first.actual});
    }
  }

  std::sort(expected_obs.begin(), expected_obs.end());
  std::sort(scanner_obs.begin(), scanner_obs.end());
  EXPECT_EQ(expected_obs, scanner_obs) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SessionEquivalence,
                         ::testing::Range<std::uint64_t>(1, 25));

// Campaign-level determinism: thread counts {1, 2, 8} must produce
// byte-identical archives (compared through the canonical binary encoding)
// and identical accounting, including the block-streamed sink emission.
TEST(CampaignThreadEquivalence, ArchivesAndAccountingAreByteIdentical) {
  CampaignConfig config;
  config.seed = 7;
  config.window.start = from_civil_utc({2015, 9, 1, 0, 0, 0});
  config.window.end = from_civil_utc({2015, 9, 22, 0, 0, 0});

  const CampaignResult reference = run_campaign(config, 1);
  const std::string reference_bytes =
      telemetry::encode_archive(reference.archive);
  EXPECT_GT(reference.archive.total_raw_errors(), 0u);

  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    const CampaignResult other = run_campaign(config, threads);
    EXPECT_EQ(telemetry::encode_archive(other.archive), reference_bytes)
        << threads << " threads";

    ASSERT_EQ(other.summary.accounting.size(), reference.summary.accounting.size());
    for (std::size_t i = 0; i < reference.summary.accounting.size(); ++i) {
      const NodeAccounting& a = reference.summary.accounting[i];
      const NodeAccounting& b = other.summary.accounting[i];
      ASSERT_EQ(a.node, b.node);
      ASSERT_EQ(a.scanned_hours, b.scanned_hours);  // bitwise, not NEAR
      ASSERT_EQ(a.terabyte_hours, b.terabyte_hours);
      ASSERT_EQ(a.sessions, b.sessions);
    }

    ASSERT_EQ(other.summary.ground_truth.size(), reference.summary.ground_truth.size());
    for (std::size_t i = 0; i < reference.summary.ground_truth.size(); ++i) {
      ASSERT_EQ(other.summary.ground_truth[i].time, reference.summary.ground_truth[i].time);
      ASSERT_EQ(other.summary.ground_truth[i].node, reference.summary.ground_truth[i].node);
      ASSERT_EQ(other.summary.ground_truth[i].words, reference.summary.ground_truth[i].words);
    }
  }
}

}  // namespace
}  // namespace unp::sim
