// Acceptance invariant of the hammer subsystem: a hammer-enabled campaign's
// record stream is byte-identical across {1, 2, 8} threads and across
// {1, 4}-way sharding, and the hammer events actually reach the stream.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/campaign.hpp"
#include "sim/shard.hpp"
#include "telemetry/archive_io.hpp"
#include "telemetry/shard_merge.hpp"

namespace unp::sim {
namespace {

/// One-month hammer-heavy campaign: short enough for a unit test, loud
/// enough that several nodes hammer.
CampaignConfig hammer_config() {
  CampaignConfig config;
  config.seed = 17;
  config.window.start = from_civil_utc({2015, 9, 1, 0, 0, 0});
  config.window.end = from_civil_utc({2015, 10, 1, 0, 0, 0});
  config.faults.enable_hammer = true;
  config.faults.hammer.hammered_node_fraction = 0.10;
  config.faults.hammer.episodes_per_node_mean = 2.0;
  return config;
}

TEST(HammerCampaign, EmitsRowhammerGroundTruth) {
  std::ostringstream sink_bytes;
  telemetry::ArchiveWriter writer(sink_bytes);
  const CampaignSummary summary =
      run_campaign_streaming(hammer_config(), {&writer});
  std::uint64_t hammer_events = 0;
  for (const auto& ev : summary.ground_truth) {
    if (ev.mechanism == faults::Mechanism::kRowhammer) ++hammer_events;
  }
  EXPECT_GT(hammer_events, 50u);
}

TEST(HammerCampaign, RecordStreamByteIdenticalAcrossThreadCounts) {
  const CampaignConfig config = hammer_config();
  std::string reference;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    SCOPED_TRACE(testing::Message() << "threads=" << threads);
    std::ostringstream bytes;
    {
      telemetry::ArchiveWriter writer(bytes);
      (void)run_campaign_streaming(config, {&writer}, threads);
    }
    ASSERT_GT(bytes.view().size(), 1000u);
    if (reference.empty()) {
      reference = bytes.str();
    } else {
      EXPECT_TRUE(bytes.view() == reference);
    }
  }
}

TEST(HammerCampaign, MergedShardsByteIdenticalToMonolithic) {
  const CampaignConfig config = hammer_config();
  std::ostringstream mono;
  {
    telemetry::ArchiveWriter writer(mono);
    (void)run_campaign_shard(config, ShardSpec{}, {&writer}, /*threads=*/2);
  }

  for (const int count : {1, 4}) {
    SCOPED_TRACE(testing::Message() << "count=" << count);
    std::vector<std::string> paths;
    for (int index = 0; index < count; ++index) {
      const std::string path = ::testing::TempDir() + "hammer_shard_" +
                               std::to_string(count) + "_" +
                               std::to_string(index) + ".unph";
      std::ofstream os(path, std::ios::binary | std::ios::trunc);
      ASSERT_TRUE(os.good());
      telemetry::write_shard_header(
          os, {static_cast<std::uint32_t>(count),
               static_cast<std::uint32_t>(index), /*fingerprint=*/0xA77});
      telemetry::ArchiveWriter writer(os);
      (void)run_campaign_shard(config, ShardSpec{count, index}, {&writer});
      paths.push_back(path);
    }
    std::ostringstream merged;
    telemetry::merge_shard_archives(paths, merged);
    ASSERT_EQ(merged.view().size(), mono.view().size());
    EXPECT_TRUE(merged.view() == mono.view());
    for (const std::string& path : paths) std::remove(path.c_str());
  }
}

}  // namespace
}  // namespace unp::sim
