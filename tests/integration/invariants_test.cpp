// Cross-cutting invariants over the full default campaign: conservation
// laws and structural guarantees that must hold regardless of calibration.
#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/extraction.hpp"
#include "analysis/grouping.hpp"
#include "sim/campaign.hpp"
#include "telemetry/binary_codec.hpp"

namespace unp {
namespace {

const sim::CampaignResult& campaign() { return sim::default_campaign(); }

TEST(Invariants, RawLogConservationThroughExtraction) {
  // Every raw ERROR line is either attributed to a fault or removed with a
  // pathological node - none invented, none lost.
  const analysis::ExtractionResult extraction =
      analysis::extract_faults(campaign().archive);
  std::uint64_t attributed = 0;
  for (const auto& f : extraction.faults) attributed += f.raw_logs;
  EXPECT_EQ(attributed + extraction.removed_raw_logs, extraction.total_raw_logs);
}

TEST(Invariants, ErrorRecordsLieInsideSessions) {
  // Every ERROR timestamp must fall between a START and its END; the
  // scanner cannot observe anything while a job owns the memory.
  for (int i = 0; i < cluster::kStudyNodeSlots; ++i) {
    const auto& log = campaign().archive.log(cluster::node_from_index(i));
    if (log.error_runs().empty()) continue;

    // Build session intervals with the conservative pairing.
    std::vector<std::pair<TimePoint, TimePoint>> sessions;
    std::size_t e = 0;
    const auto& starts = log.starts();
    const auto& ends = log.ends();
    for (std::size_t s = 0; s < starts.size(); ++s) {
      while (e < ends.size() && ends[e].time < starts[s].time) ++e;
      if (e < ends.size()) sessions.emplace_back(starts[s].time, ends[e].time);
    }
    for (const auto& run : log.error_runs()) {
      const TimePoint first = run.first.time;
      const TimePoint last = run.last_time();
      const bool inside = std::any_of(
          sessions.begin(), sessions.end(), [&](const auto& w) {
            return first > w.first && last <= w.second;
          });
      // END-lost sessions have no recorded end; allow errors after the last
      // session start as well.
      const bool after_open_start =
          !starts.empty() && first > starts.back().time;
      EXPECT_TRUE(inside || after_open_start)
          << cluster::node_name(cluster::node_from_index(i)) << " error at "
          << format_iso8601(first);
    }
  }
}

TEST(Invariants, TemperaturePresenceMatchesSensorEpoch) {
  const TimePoint sensors = sim::SessionSimConfig{}.sensors_online;
  for (int i = 0; i < cluster::kStudyNodeSlots; ++i) {
    const auto& log = campaign().archive.log(cluster::node_from_index(i));
    for (const auto& run : log.error_runs()) {
      EXPECT_EQ(telemetry::has_temperature(run.first.temperature_c),
                run.first.time >= sensors)
          << format_iso8601(run.first.time);
    }
    for (const auto& start : log.starts()) {
      EXPECT_EQ(telemetry::has_temperature(start.temperature_c),
                start.time >= sensors);
    }
  }
}

TEST(Invariants, ErrorsCarryTheirNodeIdentity) {
  for (int i = 0; i < cluster::kStudyNodeSlots; ++i) {
    const cluster::NodeId node = cluster::node_from_index(i);
    const auto& log = campaign().archive.log(node);
    for (const auto& run : log.error_runs()) {
      EXPECT_EQ(run.first.node, node);
    }
  }
}

TEST(Invariants, VirtualAddressesInsideScanBuffer) {
  for (int i = 0; i < cluster::kStudyNodeSlots; ++i) {
    const auto& log = campaign().archive.log(cluster::node_from_index(i));
    for (const auto& run : log.error_runs()) {
      EXPECT_LT(run.first.virtual_address, cluster::kScannableBytes);
      EXPECT_EQ(run.first.virtual_address % sizeof(Word), 0u);
      EXPECT_EQ(run.first.physical_page, run.first.virtual_address >> 12);
    }
  }
}

TEST(Invariants, ObservedValueAlwaysDiffersFromExpected) {
  for (int i = 0; i < cluster::kStudyNodeSlots; ++i) {
    const auto& log = campaign().archive.log(cluster::node_from_index(i));
    for (const auto& run : log.error_runs()) {
      EXPECT_NE(run.first.expected, run.first.actual);
      EXPECT_GE(run.first.flipped_bits(), 1);
    }
  }
}

TEST(Invariants, BinaryArchiveRoundTripsTheWholeCampaign) {
  const std::string bytes = telemetry::encode_archive(campaign().archive);
  const telemetry::CampaignArchive loaded = telemetry::decode_archive(bytes);
  EXPECT_EQ(loaded.total_raw_errors(), campaign().archive.total_raw_errors());
  EXPECT_DOUBLE_EQ(loaded.total_monitored_hours(),
                   campaign().archive.total_monitored_hours());

  // The analysis pipeline must be insensitive to the round trip.
  const auto a = analysis::extract_faults(campaign().archive);
  const auto b = analysis::extract_faults(loaded);
  ASSERT_EQ(a.faults.size(), b.faults.size());
  for (std::size_t k = 0; k < a.faults.size(); k += 997) {
    EXPECT_EQ(a.faults[k].first_seen, b.faults[k].first_seen);
    EXPECT_EQ(a.faults[k].virtual_address, b.faults[k].virtual_address);
    EXPECT_EQ(a.faults[k].raw_logs, b.faults[k].raw_logs);
  }
}

TEST(Invariants, GroupingConservesFaults) {
  const analysis::ExtractionResult extraction =
      analysis::extract_faults(campaign().archive);
  const auto groups = analysis::group_simultaneous(extraction.faults);
  std::size_t members = 0;
  for (const auto& g : groups) {
    EXPECT_GE(g.members.size(), 1u);
    members += g.members.size();
    for (const auto* f : g.members) {
      EXPECT_EQ(f->first_seen, g.time);
      EXPECT_EQ(f->node, g.node);
    }
  }
  EXPECT_EQ(members, extraction.faults.size());
}

TEST(Invariants, FullCampaignThreadParity) {
  // The default campaign must be bit-identical however many threads run it.
  sim::CampaignConfig config;
  const sim::CampaignResult parallel = sim::run_campaign(config, 4);
  EXPECT_EQ(parallel.archive.total_raw_errors(),
            campaign().archive.total_raw_errors());
  EXPECT_DOUBLE_EQ(parallel.total_terabyte_hours(),
                   campaign().total_terabyte_hours());
  EXPECT_EQ(parallel.summary.ground_truth.size(), campaign().summary.ground_truth.size());
  const std::string a = telemetry::encode_archive(parallel.archive);
  const std::string b = telemetry::encode_archive(campaign().archive);
  EXPECT_EQ(a, b);  // byte-for-byte identical telemetry
}

TEST(Invariants, MonitoredHoursNeverExceedWallClock) {
  const double wall_hours =
      static_cast<double>(campaign().archive.window().duration_seconds()) /
      kSecondsPerHour;
  for (int i = 0; i < cluster::kStudyNodeSlots; ++i) {
    const double hours =
        campaign().archive.log(cluster::node_from_index(i)).monitored_hours();
    EXPECT_GE(hours, 0.0);
    EXPECT_LE(hours, wall_hours + 1e-6);
  }
}

}  // namespace
}  // namespace unp
